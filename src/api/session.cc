#include "api/session.h"

#include "obs/metrics.h"

namespace recdb {

std::unique_ptr<Session> RecDB::CreateSession() {
  return std::unique_ptr<Session>(
      new Session(this, next_session_id_.fetch_add(1)));
}

Session::Session(RecDB* db, uint64_t id) : db_(db), id_(id) {
  obs::Count(obs::Counter::kSessionsOpened);
  obs::AddGauge(obs::Gauge::kSessionsActive, 1);
}

Session::~Session() {
  obs::Count(obs::Counter::kSessionsClosed);
  obs::AddGauge(obs::Gauge::kSessionsActive, -1);
}

Result<ResultSet> Session::Execute(const std::string& sql) {
  statements_.fetch_add(1);
  obs::Count(obs::Counter::kSessionStatements);
  return db_->Execute(sql);
}

Result<std::string> Session::Explain(const std::string& sql) {
  return db_->Explain(sql);
}

}  // namespace recdb
