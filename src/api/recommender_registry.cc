#include "api/recommender_registry.h"

#include "common/string_util.h"

namespace recdb {

Result<Recommender*> RecommenderRegistry::Create(RecommenderConfig config) {
  std::string key = ToLower(config.name);
  if (recs_.count(key) > 0) {
    return Status::AlreadyExists("recommender " + config.name +
                                 " already exists");
  }
  auto rec = std::make_unique<Recommender>(std::move(config));
  Recommender* raw = rec.get();
  recs_[key] = std::move(rec);
  return raw;
}

Result<Recommender*> RecommenderRegistry::Get(const std::string& name) const {
  auto it = recs_.find(ToLower(name));
  if (it == recs_.end()) {
    return Status::NotFound("no recommender named " + name);
  }
  return it->second.get();
}

Result<Recommender*> RecommenderRegistry::Find(
    const std::string& ratings_table, RecAlgorithm algorithm) const {
  for (const auto& [key, rec] : recs_) {
    (void)key;
    if (EqualsIgnoreCase(rec->config().ratings_table, ratings_table) &&
        rec->algorithm() == algorithm) {
      return rec.get();
    }
  }
  return Status::NotFound(
      std::string("no ") + RecAlgorithmToString(algorithm) +
      " recommender exists on table " + ratings_table +
      "; CREATE RECOMMENDER first");
}

std::vector<Recommender*> RecommenderRegistry::FindAllOnTable(
    const std::string& ratings_table) const {
  std::vector<Recommender*> out;
  for (const auto& [key, rec] : recs_) {
    (void)key;
    if (EqualsIgnoreCase(rec->config().ratings_table, ratings_table)) {
      out.push_back(rec.get());
    }
  }
  return out;
}

Status RecommenderRegistry::Drop(const std::string& name) {
  auto it = recs_.find(ToLower(name));
  if (it == recs_.end()) {
    return Status::NotFound("no recommender named " + name);
  }
  recs_.erase(it);
  return Status::OK();
}

std::vector<std::string> RecommenderRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(recs_.size());
  for (const auto& [key, rec] : recs_) {
    (void)key;
    out.push_back(rec->name());
  }
  return out;
}

}  // namespace recdb
