// Database snapshots: save a RecDB instance to a single file and load it
// back — tables with all rows, and every recommender's configuration.
//
// Models are retrained on load rather than serialized: training is
// deterministic (fixed seeds), so a reloaded database answers queries
// identically, and the format stays independent of model internals.
//
// Format (little-endian binary):
//   magic "RECDBSNAP1"
//   u32 table count
//     per table: str name; u32 col count; per col: str name, u8 type;
//                u64 row count; per row: u32 byte size, serialized tuple
//   u32 recommender count
//     per recommender: str name, str ratings_table, str user/item/rating
//                      cols, u8 algorithm, f64 rebuild_threshold,
//                      i32 sim.top_k, i32 sim.min_overlap,
//                      i32 svd.factors, i32 svd.epochs, f64 svd.lr,
//                      f64 svd.lambda, u64 svd.seed, u8 svd.use_biases
#pragma once

#include <string>

#include "api/recdb.h"

namespace recdb {

/// Write the database (tables + recommender configs) to `path`.
Status SaveDatabase(RecDB* db, const std::string& path);

/// Load a snapshot into a fresh RecDB (recommender models are retrained).
Result<std::unique_ptr<RecDB>> LoadDatabase(const std::string& path,
                                            RecDBOptions options = {});

}  // namespace recdb
