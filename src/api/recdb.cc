#include "api/recdb.h"

#include <algorithm>
#include <cstring>

#include "common/bytes.h"
#include "common/string_util.h"
#include "common/task_scheduler.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "parser/parser.h"
#include "stats/analyzer.h"

namespace recdb {

namespace {

// --- catalog meta-page serialization ----------------------------------------
//
// File-backed databases persist the catalog (tables + recommender configs)
// in a chain of meta pages rooted at page 0, so Open(path) can re-attach
// heaps and deterministically re-train recommenders. Each meta page:
//   u32 magic "ATEM" | i32 next_page_id (kInvalidPageId ends the chain) |
//   u32 chunk_len | u32 reserved | chunk bytes
// The concatenated chunks form one payload:
//   magic "RECDBMETA1" | u32 table_count | tables | u32 rec_count | recs
//   [| u32 stats_count | (table name, TableStats)...]
// The trailing statistics section is optional: files written before ANALYZE
// existed simply end after the recommenders and load fine.

constexpr uint32_t kMetaPageMagic = 0x4154454Du;  // "META" little-endian
constexpr size_t kMetaPageHeader = 16;
constexpr size_t kMetaPageCapacity = kPageSize - kMetaPageHeader;
constexpr char kMetaMagic[] = "RECDBMETA1";
constexpr size_t kMetaMagicLen = sizeof(kMetaMagic) - 1;

// Promote per-query ExecStats into the process-wide registry so `\metrics`
// and MetricsJson() see executor activity without a ResultSet in hand.
void PublishExecStats(const ExecStats& stats) {
  obs::Count(obs::Counter::kExecTuplesScanned, stats.tuples_scanned);
  obs::Count(obs::Counter::kExecPredictions, stats.predictions);
  obs::Count(obs::Counter::kExecJoinProbes, stats.join_probes);
}

}  // namespace

RecDB::RecDB(RecDBOptions options, std::unique_ptr<DiskManager> disk)
    : options_(options),
      disk_(disk != nullptr ? std::move(disk)
                            : std::make_unique<InMemoryDiskManager>()),
      clock_(&default_clock_),
      trace_enabled_(options.trace) {
  if (options_.parallelism > 0) {
    TaskScheduler::SetGlobalParallelism(options_.parallelism);
  }
  pool_ = std::make_unique<BufferPool>(options_.buffer_pool_pages, disk_.get());
  catalog_ = std::make_unique<Catalog>(pool_.get());
  if (disk_->persistent() && disk_->NumPages() == 0) {
    // Reserve page 0 as the meta-chain root of a fresh database.
    page_id_t pid;
    auto guard = pool_->NewGuard(&pid);
    if (guard.ok() && pid == 0) {
      meta_pages_.push_back(pid);
      (void)guard.value().Drop();
    }
  }
}

RecDB::~RecDB() {
  if (disk_ != nullptr && disk_->persistent() && !closed_) (void)Close();
}

Result<std::unique_ptr<RecDB>> RecDB::Open(const std::string& path,
                                           RecDBOptions options) {
  RECDB_ASSIGN_OR_RETURN(auto disk, FileDiskManager::Open(path));
  bool existing = disk->NumPages() > 0;
  auto db = std::unique_ptr<RecDB>(new RecDB(options, std::move(disk)));
  if (existing) {
    Status st = db->LoadMeta();
    if (!st.ok()) {
      // A half-loaded database must never checkpoint: the destructor would
      // overwrite the on-disk catalog with the partial in-memory state.
      db->closed_ = true;
      return st;
    }
  }
  return db;
}

Status RecDB::Checkpoint() {
  if (!disk_->persistent() || closed_) return Status::OK();
  RECDB_RETURN_NOT_OK(PersistMeta());
  return pool_->FlushAll();
}

Status RecDB::Close() {
  if (closed_) return Status::OK();
  Status st = Checkpoint();
  closed_ = true;
  return st;
}

Status RecDB::PersistMeta() {
  ByteWriter w;
  w.Raw(kMetaMagic, kMetaMagicLen);

  auto table_names = catalog_->TableNames();
  w.Num(static_cast<uint32_t>(table_names.size()));
  for (const auto& name : table_names) {
    RECDB_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(name));
    w.Str(table->name);
    w.Num(static_cast<uint32_t>(table->schema.NumColumns()));
    for (const auto& col : table->schema.columns()) {
      w.Str(col.name);
      w.Num(static_cast<uint8_t>(col.type));
    }
    w.Num(static_cast<int32_t>(table->heap->first_page_id()));
    w.Num(static_cast<int32_t>(table->heap->last_page_id()));
    w.Num(static_cast<uint64_t>(table->heap->num_tuples()));
  }

  auto rec_names = registry_.Names();
  w.Num(static_cast<uint32_t>(rec_names.size()));
  for (const auto& name : rec_names) {
    RECDB_ASSIGN_OR_RETURN(Recommender * rec, registry_.Get(name));
    const RecommenderConfig& cfg = rec->config();
    w.Str(cfg.name);
    w.Str(cfg.ratings_table);
    w.Str(cfg.user_col);
    w.Str(cfg.item_col);
    w.Str(cfg.rating_col);
    w.Num(static_cast<uint8_t>(cfg.algorithm));
    w.Num(cfg.rebuild_threshold);
    w.Num(cfg.sim_opts.top_k);
    w.Num(cfg.sim_opts.min_overlap);
    w.Num(cfg.svd_opts.num_factors);
    w.Num(cfg.svd_opts.num_epochs);
    w.Num(cfg.svd_opts.learning_rate);
    w.Num(cfg.svd_opts.regularization);
    w.Num(cfg.svd_opts.seed);
    w.Num(static_cast<uint8_t>(cfg.svd_opts.use_biases ? 1 : 0));
  }

  // Optional trailing section: ANALYZE statistics, keyed by table name so
  // load order never matters.
  std::vector<const TableInfo*> analyzed;
  for (const auto& name : table_names) {
    RECDB_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(name));
    if (table->stats.has_value()) analyzed.push_back(table);
  }
  w.Num(static_cast<uint32_t>(analyzed.size()));
  for (const TableInfo* table : analyzed) {
    w.Str(table->name);
    table->stats->Serialize(&w);
  }

  const std::vector<uint8_t>& payload = w.bytes();
  size_t num_chunks =
      payload.empty() ? 1 : (payload.size() + kMetaPageCapacity - 1) /
                                kMetaPageCapacity;
  // Extend the chain if the catalog outgrew it (orphaned tail pages from a
  // shrinking catalog stay allocated; they are unreachable and harmless).
  while (meta_pages_.size() < num_chunks) {
    page_id_t pid;
    RECDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->NewGuard(&pid));
    RECDB_RETURN_NOT_OK(guard.Drop());
    meta_pages_.push_back(pid);
  }
  for (size_t i = 0; i < num_chunks; ++i) {
    size_t off = i * kMetaPageCapacity;
    size_t len = std::min(kMetaPageCapacity,
                          payload.size() > off ? payload.size() - off : 0);
    page_id_t next =
        i + 1 < num_chunks ? meta_pages_[i + 1] : kInvalidPageId;
    RECDB_ASSIGN_OR_RETURN(PageGuard guard,
                           pool_->FetchGuard(meta_pages_[i]));
    char* data = guard.data();
    std::memset(data, 0, kPageSize);
    std::memcpy(data, &kMetaPageMagic, sizeof(kMetaPageMagic));
    std::memcpy(data + 4, &next, sizeof(next));
    uint32_t len32 = static_cast<uint32_t>(len);
    std::memcpy(data + 8, &len32, sizeof(len32));
    if (len > 0) std::memcpy(data + kMetaPageHeader, payload.data() + off, len);
    guard.MarkDirty();
    RECDB_RETURN_NOT_OK(guard.Drop());
  }
  return Status::OK();
}

Status RecDB::LoadMeta() {
  std::vector<uint8_t> payload;
  meta_pages_.clear();
  page_id_t pid = 0;
  while (pid != kInvalidPageId) {
    RECDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchGuard(pid));
    const char* data = guard.data();
    uint32_t magic;
    std::memcpy(&magic, data, sizeof(magic));
    if (magic != kMetaPageMagic) {
      return Status::DataLoss("page " + std::to_string(pid) +
                              " is not a catalog meta page");
    }
    meta_pages_.push_back(pid);
    page_id_t next;
    uint32_t len;
    std::memcpy(&next, data + 4, sizeof(next));
    std::memcpy(&len, data + 8, sizeof(len));
    if (len > kMetaPageCapacity) {
      return Status::DataLoss("corrupt meta page length");
    }
    const auto* chunk =
        reinterpret_cast<const uint8_t*>(data + kMetaPageHeader);
    payload.insert(payload.end(), chunk, chunk + len);
    RECDB_RETURN_NOT_OK(guard.Drop());
    if (next != kInvalidPageId && meta_pages_.size() > disk_->NumPages()) {
      return Status::DataLoss("catalog meta chain forms a cycle");
    }
    pid = next;
  }
  if (payload.empty()) return Status::OK();  // fresh database, empty catalog

  ByteReader r(payload);
  char magic[kMetaMagicLen];
  RECDB_RETURN_NOT_OK(r.Raw(magic, kMetaMagicLen));
  if (std::memcmp(magic, kMetaMagic, kMetaMagicLen) != 0) {
    return Status::DataLoss("bad catalog metadata magic");
  }

  RECDB_ASSIGN_OR_RETURN(uint32_t num_tables, r.Num<uint32_t>());
  for (uint32_t t = 0; t < num_tables; ++t) {
    RECDB_ASSIGN_OR_RETURN(std::string name, r.Str());
    RECDB_ASSIGN_OR_RETURN(uint32_t ncols, r.Num<uint32_t>());
    std::vector<Column> cols;
    for (uint32_t c = 0; c < ncols; ++c) {
      RECDB_ASSIGN_OR_RETURN(std::string col_name, r.Str());
      RECDB_ASSIGN_OR_RETURN(uint8_t type, r.Num<uint8_t>());
      if (type > static_cast<uint8_t>(TypeId::kGeometry)) {
        return Status::DataLoss("catalog has unknown column type");
      }
      cols.emplace_back(std::move(col_name), static_cast<TypeId>(type));
    }
    RECDB_ASSIGN_OR_RETURN(int32_t first_pid, r.Num<int32_t>());
    RECDB_ASSIGN_OR_RETURN(int32_t last_pid, r.Num<int32_t>());
    RECDB_ASSIGN_OR_RETURN(uint64_t num_tuples, r.Num<uint64_t>());
    RECDB_RETURN_NOT_OK(
        catalog_
            ->AttachTable(name, Schema(std::move(cols)),
                          TableHeap::Attach(pool_.get(), first_pid, last_pid,
                                            static_cast<size_t>(num_tuples)))
            .status());
  }

  RECDB_ASSIGN_OR_RETURN(uint32_t num_recs, r.Num<uint32_t>());
  for (uint32_t i = 0; i < num_recs; ++i) {
    RecommenderConfig cfg;
    RECDB_ASSIGN_OR_RETURN(cfg.name, r.Str());
    RECDB_ASSIGN_OR_RETURN(cfg.ratings_table, r.Str());
    RECDB_ASSIGN_OR_RETURN(cfg.user_col, r.Str());
    RECDB_ASSIGN_OR_RETURN(cfg.item_col, r.Str());
    RECDB_ASSIGN_OR_RETURN(cfg.rating_col, r.Str());
    RECDB_ASSIGN_OR_RETURN(uint8_t algo, r.Num<uint8_t>());
    if (algo > static_cast<uint8_t>(RecAlgorithm::kSVD)) {
      return Status::DataLoss("catalog has unknown algorithm");
    }
    cfg.algorithm = static_cast<RecAlgorithm>(algo);
    RECDB_ASSIGN_OR_RETURN(cfg.rebuild_threshold, r.Num<double>());
    RECDB_ASSIGN_OR_RETURN(cfg.sim_opts.top_k, r.Num<int32_t>());
    RECDB_ASSIGN_OR_RETURN(cfg.sim_opts.min_overlap, r.Num<int32_t>());
    RECDB_ASSIGN_OR_RETURN(cfg.svd_opts.num_factors, r.Num<int32_t>());
    RECDB_ASSIGN_OR_RETURN(cfg.svd_opts.num_epochs, r.Num<int32_t>());
    RECDB_ASSIGN_OR_RETURN(cfg.svd_opts.learning_rate, r.Num<double>());
    RECDB_ASSIGN_OR_RETURN(cfg.svd_opts.regularization, r.Num<double>());
    RECDB_ASSIGN_OR_RETURN(cfg.svd_opts.seed, r.Num<uint64_t>());
    RECDB_ASSIGN_OR_RETURN(uint8_t biases, r.Num<uint8_t>());
    cfg.svd_opts.use_biases = biases != 0;
    RECDB_RETURN_NOT_OK(CreateRecommender(std::move(cfg)).status());
  }

  // Optional trailing section (absent in pre-ANALYZE files): persisted
  // table statistics.
  if (r.Remaining() > 0) {
    RECDB_ASSIGN_OR_RETURN(uint32_t num_stats, r.Num<uint32_t>());
    for (uint32_t i = 0; i < num_stats; ++i) {
      RECDB_ASSIGN_OR_RETURN(std::string name, r.Str());
      RECDB_ASSIGN_OR_RETURN(TableStats stats, TableStats::Deserialize(&r));
      RECDB_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(name));
      table->stats = std::move(stats);
    }
  }
  return Status::OK();
}

Result<ResultSet> RecDB::Execute(const std::string& sql) {
  if (closed_) return Status::InvalidArgument("database is closed");
  if (trace_enabled_) {
    active_tracer_ = std::make_unique<obs::Tracer>("query");
  }
  auto result = ExecuteScript(sql);
  if (active_tracer_ != nullptr) {
    // Render even on error so a failing query's partial trace is visible.
    active_tracer_->Finish();
    last_trace_ = active_tracer_->Render();
    active_tracer_.reset();
    if (result.ok()) result.value().trace = last_trace_;
  }
  return result;
}

std::string RecDB::MetricsJson() {
  return obs::MetricsRegistry::Global().ToJson();
}

Result<ResultSet> RecDB::ExecuteScript(const std::string& sql) {
  int parse_span = active_tracer_ != nullptr
                       ? active_tracer_->BeginSpan("parse")
                       : -1;
  auto parsed = Parser::Parse(sql);
  if (parse_span >= 0) active_tracer_->EndSpan(parse_span);
  RECDB_ASSIGN_OR_RETURN(auto stmts, std::move(parsed));
  uint64_t read_failures = disk_->num_read_failures();
  uint64_t write_failures = disk_->num_write_failures();
  uint64_t retries = disk_->num_retries();
  uint64_t checksum_failures = disk_->num_checksum_failures();
  ResultSet last;
  for (const auto& stmt : stmts) {
    obs::Count(obs::Counter::kQueryStatements);
    RECDB_ASSIGN_OR_RETURN(last, ExecuteStatement(*stmt));
  }
  last.stats.io_read_failures += disk_->num_read_failures() - read_failures;
  last.stats.io_write_failures += disk_->num_write_failures() - write_failures;
  last.stats.io_retries += disk_->num_retries() - retries;
  last.stats.io_checksum_failures +=
      disk_->num_checksum_failures() - checksum_failures;
  return last;
}

Result<std::string> RecDB::Explain(const std::string& sql) {
  RECDB_ASSIGN_OR_RETURN(auto stmt, Parser::ParseSingle(sql));
  if (stmt->kind != StatementKind::kSelect) {
    return Status::InvalidArgument("EXPLAIN supports SELECT only");
  }
  Planner planner(catalog_.get(), &registry_, options_.planner);
  RECDB_ASSIGN_OR_RETURN(
      auto planned, planner.PlanSelect(static_cast<SelectStatement&>(*stmt)));
  Optimizer optimizer(options_.planner);
  RECDB_ASSIGN_OR_RETURN(auto plan, optimizer.Optimize(std::move(planned.plan)));
  return PlannerOptionsSummary(options_.planner) + "\n" + plan->ToString();
}

Result<ResultSet> RecDB::ExecuteStatement(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return ExecuteSelect(static_cast<const SelectStatement&>(stmt));
    case StatementKind::kCreateTable:
      return ExecuteCreateTable(static_cast<const CreateTableStatement&>(stmt));
    case StatementKind::kDropTable: {
      const auto& drop = static_cast<const DropTableStatement&>(stmt);
      RECDB_RETURN_NOT_OK(catalog_->DropTable(drop.table_name));
      ResultSet rs;
      rs.message = "dropped table " + drop.table_name;
      return rs;
    }
    case StatementKind::kInsert:
      return ExecuteInsert(static_cast<const InsertStatement&>(stmt));
    case StatementKind::kDelete:
      return ExecuteDelete(static_cast<const DeleteStatement&>(stmt));
    case StatementKind::kUpdate:
      return ExecuteUpdate(static_cast<const UpdateStatement&>(stmt));
    case StatementKind::kExplain: {
      const auto& explain = static_cast<const ExplainStatement&>(stmt);
      Planner planner(catalog_.get(), &registry_, options_.planner);
      RECDB_ASSIGN_OR_RETURN(
          auto planned,
          planner.PlanSelect(
              static_cast<const SelectStatement&>(*explain.inner)));
      Optimizer optimizer(options_.planner);
      RECDB_ASSIGN_OR_RETURN(auto plan,
                             optimizer.Optimize(std::move(planned.plan)));
      ResultSet rs;
      rs.columns = {"plan"};
      std::string rendered;
      if (explain.analyze) {
        // EXPLAIN ANALYZE: run the query (discarding its rows) so each plan
        // node's actual emitted-row count appears next to its estimate.
        NotifyRecommendQuery(*plan);
        ExecContext ctx;
        RECDB_ASSIGN_OR_RETURN(auto exec, CreateExecutor(*plan, &ctx));
        RECDB_RETURN_NOT_OK(exec->Init());
        while (true) {
          RECDB_ASSIGN_OR_RETURN(auto next, exec->Next());
          if (!next.has_value()) break;
        }
        rs.stats = ctx.stats;
        PublishExecStats(ctx.stats);
        rendered = plan->ToString(0, &ctx.actual_rows);
      } else {
        rendered = plan->ToString();
      }
      rs.rows.push_back(
          Tuple({Value::String(PlannerOptionsSummary(options_.planner))}));
      for (const auto& line : Split(rendered, '\n')) {
        if (!line.empty()) rs.rows.push_back(Tuple({Value::String(line)}));
      }
      return rs;
    }
    case StatementKind::kCreateRecommender:
      return ExecuteCreateRecommender(
          static_cast<const CreateRecommenderStatement&>(stmt));
    case StatementKind::kDropRecommender: {
      const auto& drop = static_cast<const DropRecommenderStatement&>(stmt);
      cache_managers_.erase(ToLower(drop.name));
      RECDB_RETURN_NOT_OK(registry_.Drop(drop.name));
      ResultSet rs;
      rs.message = "dropped recommender " + drop.name;
      return rs;
    }
    case StatementKind::kSet:
      return ExecuteSet(static_cast<const SetStatement&>(stmt));
    case StatementKind::kAnalyze:
      return ExecuteAnalyze(static_cast<const AnalyzeStatement&>(stmt));
  }
  return Status::Internal("unhandled statement kind");
}

Result<ResultSet> RecDB::ExecuteAnalyze(const AnalyzeStatement& stmt) {
  Stopwatch watch;
  std::vector<std::string> names;
  if (!stmt.table_name.empty()) {
    names.push_back(stmt.table_name);
  } else {
    names = catalog_->TableNames();
  }
  for (const auto& name : names) {
    RECDB_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(name));
    RECDB_ASSIGN_OR_RETURN(TableStats stats, AnalyzeTable(*table));
    table->stats = std::move(stats);
  }
  ResultSet rs;
  rs.elapsed_seconds = watch.ElapsedSeconds();
  rs.message = StringFormat("analyzed %zu table%s", names.size(),
                            names.size() == 1 ? "" : "s");
  return rs;
}

Result<ResultSet> RecDB::ExecuteSet(const SetStatement& stmt) {
  if (stmt.option == "parallelism") {
    if (stmt.value.type() != TypeId::kInt64) {
      return Status::InvalidArgument(
          "SET parallelism expects an integer thread count");
    }
    int64_t n = stmt.value.AsInt();
    if (n < 1) {
      return Status::InvalidArgument(
          "SET parallelism requires a value >= 1, got " + std::to_string(n));
    }
    constexpr int64_t kMaxParallelism = 256;
    n = std::min(n, kMaxParallelism);
    TaskScheduler::SetGlobalParallelism(static_cast<size_t>(n));
    ResultSet rs;
    rs.message = "parallelism set to " + std::to_string(n);
    return rs;
  }
  if (stmt.option == "trace") {
    bool enable;
    if (stmt.value.type() == TypeId::kInt64) {
      enable = stmt.value.AsInt() != 0;
    } else if (stmt.value.type() == TypeId::kString) {
      std::string v = ToLower(stmt.value.AsString());
      if (v == "on" || v == "true" || v == "1") {
        enable = true;
      } else if (v == "off" || v == "false" || v == "0") {
        enable = false;
      } else {
        return Status::InvalidArgument(
            "SET trace expects on/off (got '" + stmt.value.AsString() + "')");
      }
    } else {
      return Status::InvalidArgument("SET trace expects on/off");
    }
    trace_enabled_ = enable;
    ResultSet rs;
    rs.message = std::string("trace ") + (enable ? "enabled" : "disabled");
    return rs;
  }
  return Status::InvalidArgument("unknown option in SET: " + stmt.option);
}

Result<ResultSet> RecDB::ExecuteSelect(const SelectStatement& stmt) {
  obs::Count(obs::Counter::kQuerySelects);
  Stopwatch watch;
  obs::Tracer* tracer = active_tracer_.get();
  int plan_span = tracer != nullptr ? tracer->BeginSpan("plan") : -1;
  Planner planner(catalog_.get(), &registry_, options_.planner);
  RECDB_ASSIGN_OR_RETURN(auto planned, planner.PlanSelect(stmt));
  Optimizer optimizer(options_.planner);
  RECDB_ASSIGN_OR_RETURN(auto plan, optimizer.Optimize(std::move(planned.plan)));
  if (plan_span >= 0) tracer->EndSpan(plan_span);

  NotifyRecommendQuery(*plan);

  int exec_span = tracer != nullptr ? tracer->BeginSpan("execute") : -1;
  ExecContext ctx;
  ctx.tracer = tracer;
  RECDB_ASSIGN_OR_RETURN(auto exec, CreateExecutor(*plan, &ctx));
  RECDB_RETURN_NOT_OK(exec->Init());

  ResultSet rs;
  rs.columns = std::move(planned.output_names);
  while (true) {
    RECDB_ASSIGN_OR_RETURN(auto next, exec->Next());
    if (!next.has_value()) break;
    rs.rows.push_back(std::move(*next));
  }
  if (exec_span >= 0) {
    // Materialize the per-executor spans (accumulated via RecordNode during
    // the drain) under the execute span, then close it.
    tracer->AttachPlan(*plan);
    tracer->EndSpan(exec_span);
  }
  // Rendered after the drain so est/act annotations are both available.
  rs.plan = plan->ToString(0, &ctx.actual_rows);
  rs.stats = ctx.stats;
  rs.elapsed_seconds = watch.ElapsedSeconds();
  PublishExecStats(ctx.stats);
  obs::Count(obs::Counter::kQueryRowsEmitted, rs.rows.size());
  obs::ObserveUs(obs::Histogram::kQueryLatencyUs, rs.elapsed_seconds * 1e6);
  return rs;
}

Result<ResultSet> RecDB::ExecuteCreateTable(const CreateTableStatement& stmt) {
  std::vector<Column> cols;
  for (const auto& [name, type_name] : stmt.columns) {
    RECDB_ASSIGN_OR_RETURN(TypeId type, TypeIdFromName(type_name));
    cols.emplace_back(name, type);
  }
  RECDB_RETURN_NOT_OK(
      catalog_->CreateTable(stmt.table_name, Schema(std::move(cols)))
          .status());
  ResultSet rs;
  rs.message = "created table " + stmt.table_name;
  return rs;
}

Result<ResultSet> RecDB::ExecuteInsert(const InsertStatement& stmt) {
  RECDB_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(stmt.table_name));
  const Schema& schema = table->schema;
  ExecSchema empty_schema;
  Tuple empty_tuple;
  size_t inserted = 0;
  for (const auto& row : stmt.rows) {
    if (row.size() != schema.NumColumns()) {
      return Status::InvalidArgument(StringFormat(
          "INSERT row has %zu values, table %s has %zu columns", row.size(),
          table->name.c_str(), schema.NumColumns()));
    }
    std::vector<Value> vals;
    vals.reserve(row.size());
    for (size_t i = 0; i < row.size(); ++i) {
      RECDB_ASSIGN_OR_RETURN(auto bound, BindExpr(*row[i], empty_schema));
      RECDB_ASSIGN_OR_RETURN(Value v, bound->Eval(empty_tuple));
      RECDB_ASSIGN_OR_RETURN(v, v.CastTo(schema.ColumnAt(i).type));
      vals.push_back(std::move(v));
    }
    Tuple tuple(std::move(vals));
    Status st = table->heap->Insert(tuple).status();
    if (st.ok()) {
      ++inserted;  // the row is in the table even if a later step fails
      st = NotifyInsert(table->name, schema, tuple);
    }
    if (!st.ok()) {
      // Partial failure: report how many rows actually reached the table so
      // the caller knows the statement's observable effect.
      return Status(st.code(),
                    StringFormat("%s (INSERT aborted: %zu of %zu rows "
                                 "applied to %s)",
                                 st.message().c_str(), inserted,
                                 stmt.rows.size(), table->name.c_str()));
    }
  }
  ResultSet rs;
  rs.message = StringFormat("inserted %zu rows into %s", inserted,
                            table->name.c_str());
  return rs;
}

Result<Recommender*> RecDB::CreateRecommender(RecommenderConfig config) {
  RECDB_ASSIGN_OR_RETURN(TableInfo * table,
                         catalog_->GetTable(config.ratings_table));
  const Schema& schema = table->schema;
  RECDB_ASSIGN_OR_RETURN(size_t user_idx, schema.IndexOf(config.user_col));
  RECDB_ASSIGN_OR_RETURN(size_t item_idx, schema.IndexOf(config.item_col));
  RECDB_ASSIGN_OR_RETURN(size_t rating_idx,
                         schema.IndexOf(config.rating_col));
  config.ratings_table = table->name;  // canonical spelling
  std::string name = config.name;
  RECDB_ASSIGN_OR_RETURN(Recommender * rec, registry_.Create(std::move(config)));

  // Load the ratings table into the recommender's live matrix.
  auto it = table->heap->Begin(schema.NumColumns());
  while (true) {
    auto next = it.Next();
    if (!next.ok()) {
      registry_.Drop(name);
      return next.status();
    }
    if (!next.value().has_value()) break;
    const Tuple& t = next.value()->second;
    const Value& u = t.At(user_idx);
    const Value& i = t.At(item_idx);
    const Value& r = t.At(rating_idx);
    if (u.is_null() || i.is_null() || r.is_null()) continue;
    if (u.type() != TypeId::kInt64 || i.type() != TypeId::kInt64 ||
        !r.is_numeric()) {
      registry_.Drop(name);
      return Status::InvalidArgument(
          "ratings table columns must be INT user id, INT item id, "
          "numeric rating");
    }
    rec->AddRating(u.AsInt(), i.AsInt(), r.AsNumeric());
  }

  auto build = rec->Build();
  if (!build.ok()) {
    registry_.Drop(name);
    return build.status();
  }
  return rec;
}

Result<ResultSet> RecDB::ExecuteCreateRecommender(
    const CreateRecommenderStatement& stmt) {
  RecommenderConfig config;
  config.name = stmt.name;
  config.ratings_table = stmt.ratings_table;
  config.user_col = stmt.user_col;
  config.item_col = stmt.item_col;
  config.rating_col = stmt.rating_col;
  config.rebuild_threshold = options_.rebuild_threshold;
  config.sim_opts = options_.sim_opts;
  config.svd_opts = options_.svd_opts;
  if (stmt.algorithm.has_value()) {
    RECDB_ASSIGN_OR_RETURN(config.algorithm,
                           RecAlgorithmFromString(*stmt.algorithm));
  }
  Stopwatch watch;
  RECDB_ASSIGN_OR_RETURN(Recommender * rec,
                         CreateRecommender(std::move(config)));
  ResultSet rs;
  rs.elapsed_seconds = watch.ElapsedSeconds();
  rs.message = StringFormat(
      "created recommender %s (%s) on %s: %zu ratings, built in %.3fs",
      rec->name().c_str(), RecAlgorithmToString(rec->algorithm()),
      rec->config().ratings_table.c_str(), rec->base_size(),
      rs.elapsed_seconds);
  return rs;
}

Result<std::vector<std::pair<Rid, Tuple>>> RecDB::CollectMatching(
    TableInfo* table, const Expr* where) {
  BoundExprPtr pred;
  if (where != nullptr) {
    ExecSchema schema;
    for (const auto& col : table->schema.columns()) {
      schema.Add(ExecColumn{table->name, col.name, col.type});
    }
    RECDB_ASSIGN_OR_RETURN(pred, BindExpr(*where, schema));
  }
  std::vector<std::pair<Rid, Tuple>> out;
  auto it = table->heap->Begin(table->schema.NumColumns());
  while (true) {
    RECDB_ASSIGN_OR_RETURN(auto next, it.Next());
    if (!next.has_value()) break;
    if (pred != nullptr) {
      RECDB_ASSIGN_OR_RETURN(bool pass, pred->EvalPredicate(next->second));
      if (!pass) continue;
    }
    out.push_back(std::move(*next));
  }
  return out;
}

Result<ResultSet> RecDB::ExecuteDelete(const DeleteStatement& stmt) {
  RECDB_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(stmt.table_name));
  RECDB_ASSIGN_OR_RETURN(auto victims,
                         CollectMatching(table, stmt.where.get()));
  for (const auto& [rid, tuple] : victims) {
    RECDB_RETURN_NOT_OK(table->heap->Delete(rid));
    RECDB_RETURN_NOT_OK(NotifyDelete(table->name, table->schema, tuple));
  }
  ResultSet rs;
  rs.message = StringFormat("deleted %zu rows from %s", victims.size(),
                            table->name.c_str());
  return rs;
}

Result<ResultSet> RecDB::ExecuteUpdate(const UpdateStatement& stmt) {
  RECDB_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(stmt.table_name));
  const Schema& schema = table->schema;
  ExecSchema exec_schema;
  for (const auto& col : schema.columns()) {
    exec_schema.Add(ExecColumn{table->name, col.name, col.type});
  }
  // Bind assignment targets and value expressions (values may reference the
  // row being updated, e.g. SET ratingval = ratingval + 1).
  std::vector<std::pair<size_t, BoundExprPtr>> assigns;
  for (const auto& [col, expr] : stmt.assignments) {
    RECDB_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(col));
    RECDB_ASSIGN_OR_RETURN(auto bound, BindExpr(*expr, exec_schema));
    assigns.emplace_back(idx, std::move(bound));
  }
  RECDB_ASSIGN_OR_RETURN(auto victims,
                         CollectMatching(table, stmt.where.get()));
  for (auto& [rid, tuple] : victims) {
    Tuple updated = tuple;
    for (const auto& [idx, expr] : assigns) {
      RECDB_ASSIGN_OR_RETURN(Value v, expr->Eval(tuple));
      RECDB_ASSIGN_OR_RETURN(v, v.CastTo(schema.ColumnAt(idx).type));
      updated.values()[idx] = std::move(v);
    }
    RECDB_RETURN_NOT_OK(table->heap->Update(rid, updated).status());
    // For ratings sources, the overwrite semantics of AddRating handle both
    // a changed rating value and changed user/item ids via delete + insert.
    RECDB_RETURN_NOT_OK(NotifyDelete(table->name, schema, tuple));
    RECDB_RETURN_NOT_OK(NotifyInsert(table->name, schema, updated));
  }
  ResultSet rs;
  rs.message = StringFormat("updated %zu rows in %s", victims.size(),
                            table->name.c_str());
  return rs;
}

Status RecDB::NotifyDelete(const std::string& table, const Schema& schema,
                           const Tuple& tuple) {
  for (Recommender* rec : registry_.FindAllOnTable(table)) {
    const RecommenderConfig& cfg = rec->config();
    auto u_idx = schema.IndexOf(cfg.user_col);
    auto i_idx = schema.IndexOf(cfg.item_col);
    if (!u_idx.ok() || !i_idx.ok()) continue;
    const Value& u = tuple.At(u_idx.value());
    const Value& i = tuple.At(i_idx.value());
    if (u.type() != TypeId::kInt64 || i.type() != TypeId::kInt64) continue;
    rec->RemoveRating(u.AsInt(), i.AsInt());
    auto cm = cache_managers_.find(ToLower(rec->name()));
    if (cm != cache_managers_.end()) {
      cm->second->RecordUpdate(i.AsInt());
    }
    if (options_.auto_maintain) {
      RECDB_RETURN_NOT_OK(rec->MaintainIfNeeded().status());
    }
  }
  return Status::OK();
}

Status RecDB::NotifyInsert(const std::string& table, const Schema& schema,
                           const Tuple& tuple) {
  for (Recommender* rec : registry_.FindAllOnTable(table)) {
    const RecommenderConfig& cfg = rec->config();
    auto u_idx = schema.IndexOf(cfg.user_col);
    auto i_idx = schema.IndexOf(cfg.item_col);
    auto r_idx = schema.IndexOf(cfg.rating_col);
    if (!u_idx.ok() || !i_idx.ok() || !r_idx.ok()) continue;
    const Value& u = tuple.At(u_idx.value());
    const Value& i = tuple.At(i_idx.value());
    const Value& r = tuple.At(r_idx.value());
    if (u.is_null() || i.is_null() || r.is_null()) continue;
    if (u.type() != TypeId::kInt64 || i.type() != TypeId::kInt64 ||
        !r.is_numeric()) {
      continue;
    }
    rec->AddRating(u.AsInt(), i.AsInt(), r.AsNumeric());
    auto cm = cache_managers_.find(ToLower(rec->name()));
    if (cm != cache_managers_.end()) {
      cm->second->RecordUpdate(i.AsInt());
    }
    if (options_.auto_maintain) {
      RECDB_RETURN_NOT_OK(rec->MaintainIfNeeded().status());
    }
  }
  return Status::OK();
}

void RecDB::NotifyRecommendQuery(const PlanNode& plan) {
  const std::vector<int64_t>* user_ids = nullptr;
  Recommender* rec = nullptr;
  switch (plan.type) {
    case PlanNodeType::kFilterRecommend: {
      const auto& node = static_cast<const RecommendPlan&>(plan);
      if (node.user_ids.has_value()) {
        user_ids = &*node.user_ids;
        rec = node.rec;
      }
      break;
    }
    case PlanNodeType::kJoinRecommend: {
      const auto& node = static_cast<const JoinRecommendPlan&>(plan);
      user_ids = &node.user_ids;
      rec = node.rec;
      break;
    }
    case PlanNodeType::kIndexRecommend: {
      const auto& node = static_cast<const IndexRecommendPlan&>(plan);
      user_ids = &node.user_ids;
      rec = node.rec;
      break;
    }
    default:
      break;
  }
  if (rec != nullptr && user_ids != nullptr) {
    auto cm = cache_managers_.find(ToLower(rec->name()));
    if (cm != cache_managers_.end()) {
      for (int64_t uid : *user_ids) cm->second->RecordQuery(uid);
    }
  }
  for (const auto& child : plan.children) NotifyRecommendQuery(*child);
}

Result<CacheManager*> RecDB::GetCacheManager(const std::string& recommender,
                                             double hotness_threshold) {
  std::string key = ToLower(recommender);
  auto it = cache_managers_.find(key);
  if (it != cache_managers_.end()) return it->second.get();
  RECDB_ASSIGN_OR_RETURN(Recommender * rec, registry_.Get(recommender));
  auto mgr =
      std::make_unique<CacheManager>(rec, clock_, hotness_threshold);
  CacheManager* raw = mgr.get();
  cache_managers_[key] = std::move(mgr);
  return raw;
}

Status RecDB::BulkInsert(const std::string& table,
                         const std::vector<std::vector<Value>>& rows) {
  RECDB_ASSIGN_OR_RETURN(TableInfo * info, catalog_->GetTable(table));
  const Schema& schema = info->schema;
  for (const auto& row : rows) {
    if (row.size() != schema.NumColumns()) {
      return Status::InvalidArgument("bulk row width mismatch");
    }
    std::vector<Value> vals;
    vals.reserve(row.size());
    for (size_t i = 0; i < row.size(); ++i) {
      RECDB_ASSIGN_OR_RETURN(Value v, row[i].CastTo(schema.ColumnAt(i).type));
      vals.push_back(std::move(v));
    }
    Tuple tuple(std::move(vals));
    RECDB_RETURN_NOT_OK(info->heap->Insert(tuple).status());
    RECDB_RETURN_NOT_OK(NotifyInsert(info->name, schema, tuple));
  }
  return Status::OK();
}

std::string ResultSet::ToString(size_t max_rows) const {
  std::string out;
  out += Join(columns, " | ");
  out += "\n";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += "-+-";
    out += std::string(columns[i].size(), '-');
  }
  out += "\n";
  size_t shown = 0;
  for (const auto& row : rows) {
    if (shown++ >= max_rows) {
      out += StringFormat("... (%zu rows total)\n", rows.size());
      break;
    }
    std::vector<std::string> cells;
    for (const auto& v : row.values()) cells.push_back(v.ToString());
    out += Join(cells, " | ");
    out += "\n";
  }
  if (!message.empty()) {
    out += message;
    out += "\n";
  }
  if (stats.predict_batches > 0) {
    out += StringFormat(
        "scoring: %llu predictions in %llu batches\n",
        static_cast<unsigned long long>(stats.predict_calls),
        static_cast<unsigned long long>(stats.predict_batches));
  }
  if (stats.tasks_spawned > 0) {
    out += StringFormat(
        "parallel: %llu morsels, %.2f ms worker time\n",
        static_cast<unsigned long long>(stats.tasks_spawned),
        stats.worker_time_ms);
  }
  if (stats.io_read_failures > 0 || stats.io_write_failures > 0 ||
      stats.io_retries > 0 || stats.io_checksum_failures > 0) {
    out += StringFormat(
        "io faults: %llu read failures, %llu write failures, %llu retries, "
        "%llu checksum failures\n",
        static_cast<unsigned long long>(stats.io_read_failures),
        static_cast<unsigned long long>(stats.io_write_failures),
        static_cast<unsigned long long>(stats.io_retries),
        static_cast<unsigned long long>(stats.io_checksum_failures));
  }
  return out;
}

}  // namespace recdb
