#include "api/recdb.h"

#include "common/string_util.h"
#include "common/timer.h"
#include "parser/parser.h"

namespace recdb {

RecDB::RecDB(RecDBOptions options)
    : options_(options), clock_(&default_clock_) {
  pool_ = std::make_unique<BufferPool>(options_.buffer_pool_pages, &disk_);
  catalog_ = std::make_unique<Catalog>(pool_.get());
}

RecDB::~RecDB() = default;

Result<ResultSet> RecDB::Execute(const std::string& sql) {
  RECDB_ASSIGN_OR_RETURN(auto stmts, Parser::Parse(sql));
  ResultSet last;
  for (const auto& stmt : stmts) {
    RECDB_ASSIGN_OR_RETURN(last, ExecuteStatement(*stmt));
  }
  return last;
}

Result<std::string> RecDB::Explain(const std::string& sql) {
  RECDB_ASSIGN_OR_RETURN(auto stmt, Parser::ParseSingle(sql));
  if (stmt->kind != StatementKind::kSelect) {
    return Status::InvalidArgument("EXPLAIN supports SELECT only");
  }
  Planner planner(catalog_.get(), &registry_, options_.planner);
  RECDB_ASSIGN_OR_RETURN(
      auto planned, planner.PlanSelect(static_cast<SelectStatement&>(*stmt)));
  Optimizer optimizer(options_.planner);
  RECDB_ASSIGN_OR_RETURN(auto plan, optimizer.Optimize(std::move(planned.plan)));
  return plan->ToString();
}

Result<ResultSet> RecDB::ExecuteStatement(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return ExecuteSelect(static_cast<const SelectStatement&>(stmt));
    case StatementKind::kCreateTable:
      return ExecuteCreateTable(static_cast<const CreateTableStatement&>(stmt));
    case StatementKind::kDropTable: {
      const auto& drop = static_cast<const DropTableStatement&>(stmt);
      RECDB_RETURN_NOT_OK(catalog_->DropTable(drop.table_name));
      ResultSet rs;
      rs.message = "dropped table " + drop.table_name;
      return rs;
    }
    case StatementKind::kInsert:
      return ExecuteInsert(static_cast<const InsertStatement&>(stmt));
    case StatementKind::kDelete:
      return ExecuteDelete(static_cast<const DeleteStatement&>(stmt));
    case StatementKind::kUpdate:
      return ExecuteUpdate(static_cast<const UpdateStatement&>(stmt));
    case StatementKind::kExplain: {
      const auto& explain = static_cast<const ExplainStatement&>(stmt);
      Planner planner(catalog_.get(), &registry_, options_.planner);
      RECDB_ASSIGN_OR_RETURN(
          auto planned,
          planner.PlanSelect(
              static_cast<const SelectStatement&>(*explain.inner)));
      Optimizer optimizer(options_.planner);
      RECDB_ASSIGN_OR_RETURN(auto plan,
                             optimizer.Optimize(std::move(planned.plan)));
      ResultSet rs;
      rs.columns = {"plan"};
      for (const auto& line : Split(plan->ToString(), '\n')) {
        if (!line.empty()) rs.rows.push_back(Tuple({Value::String(line)}));
      }
      return rs;
    }
    case StatementKind::kCreateRecommender:
      return ExecuteCreateRecommender(
          static_cast<const CreateRecommenderStatement&>(stmt));
    case StatementKind::kDropRecommender: {
      const auto& drop = static_cast<const DropRecommenderStatement&>(stmt);
      cache_managers_.erase(ToLower(drop.name));
      RECDB_RETURN_NOT_OK(registry_.Drop(drop.name));
      ResultSet rs;
      rs.message = "dropped recommender " + drop.name;
      return rs;
    }
  }
  return Status::Internal("unhandled statement kind");
}

Result<ResultSet> RecDB::ExecuteSelect(const SelectStatement& stmt) {
  Stopwatch watch;
  Planner planner(catalog_.get(), &registry_, options_.planner);
  RECDB_ASSIGN_OR_RETURN(auto planned, planner.PlanSelect(stmt));
  Optimizer optimizer(options_.planner);
  RECDB_ASSIGN_OR_RETURN(auto plan, optimizer.Optimize(std::move(planned.plan)));

  NotifyRecommendQuery(*plan);

  ExecContext ctx;
  RECDB_ASSIGN_OR_RETURN(auto exec, CreateExecutor(*plan, &ctx));
  RECDB_RETURN_NOT_OK(exec->Init());

  ResultSet rs;
  rs.columns = std::move(planned.output_names);
  rs.plan = plan->ToString();
  while (true) {
    RECDB_ASSIGN_OR_RETURN(auto next, exec->Next());
    if (!next.has_value()) break;
    rs.rows.push_back(std::move(*next));
  }
  rs.stats = ctx.stats;
  rs.elapsed_seconds = watch.ElapsedSeconds();
  return rs;
}

Result<ResultSet> RecDB::ExecuteCreateTable(const CreateTableStatement& stmt) {
  std::vector<Column> cols;
  for (const auto& [name, type_name] : stmt.columns) {
    RECDB_ASSIGN_OR_RETURN(TypeId type, TypeIdFromName(type_name));
    cols.emplace_back(name, type);
  }
  RECDB_RETURN_NOT_OK(
      catalog_->CreateTable(stmt.table_name, Schema(std::move(cols)))
          .status());
  ResultSet rs;
  rs.message = "created table " + stmt.table_name;
  return rs;
}

Result<ResultSet> RecDB::ExecuteInsert(const InsertStatement& stmt) {
  RECDB_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(stmt.table_name));
  const Schema& schema = table->schema;
  ExecSchema empty_schema;
  Tuple empty_tuple;
  size_t inserted = 0;
  for (const auto& row : stmt.rows) {
    if (row.size() != schema.NumColumns()) {
      return Status::InvalidArgument(StringFormat(
          "INSERT row has %zu values, table %s has %zu columns", row.size(),
          table->name.c_str(), schema.NumColumns()));
    }
    std::vector<Value> vals;
    vals.reserve(row.size());
    for (size_t i = 0; i < row.size(); ++i) {
      RECDB_ASSIGN_OR_RETURN(auto bound, BindExpr(*row[i], empty_schema));
      RECDB_ASSIGN_OR_RETURN(Value v, bound->Eval(empty_tuple));
      RECDB_ASSIGN_OR_RETURN(v, v.CastTo(schema.ColumnAt(i).type));
      vals.push_back(std::move(v));
    }
    Tuple tuple(std::move(vals));
    RECDB_RETURN_NOT_OK(table->heap->Insert(tuple).status());
    RECDB_RETURN_NOT_OK(NotifyInsert(table->name, schema, tuple));
    ++inserted;
  }
  ResultSet rs;
  rs.message = StringFormat("inserted %zu rows into %s", inserted,
                            table->name.c_str());
  return rs;
}

Result<Recommender*> RecDB::CreateRecommender(RecommenderConfig config) {
  RECDB_ASSIGN_OR_RETURN(TableInfo * table,
                         catalog_->GetTable(config.ratings_table));
  const Schema& schema = table->schema;
  RECDB_ASSIGN_OR_RETURN(size_t user_idx, schema.IndexOf(config.user_col));
  RECDB_ASSIGN_OR_RETURN(size_t item_idx, schema.IndexOf(config.item_col));
  RECDB_ASSIGN_OR_RETURN(size_t rating_idx,
                         schema.IndexOf(config.rating_col));
  config.ratings_table = table->name;  // canonical spelling
  std::string name = config.name;
  RECDB_ASSIGN_OR_RETURN(Recommender * rec, registry_.Create(std::move(config)));

  // Load the ratings table into the recommender's live matrix.
  auto it = table->heap->Begin(schema.NumColumns());
  while (true) {
    auto next = it.Next();
    if (!next.ok()) {
      registry_.Drop(name);
      return next.status();
    }
    if (!next.value().has_value()) break;
    const Tuple& t = next.value()->second;
    const Value& u = t.At(user_idx);
    const Value& i = t.At(item_idx);
    const Value& r = t.At(rating_idx);
    if (u.is_null() || i.is_null() || r.is_null()) continue;
    if (u.type() != TypeId::kInt64 || i.type() != TypeId::kInt64 ||
        !r.is_numeric()) {
      registry_.Drop(name);
      return Status::InvalidArgument(
          "ratings table columns must be INT user id, INT item id, "
          "numeric rating");
    }
    rec->AddRating(u.AsInt(), i.AsInt(), r.AsNumeric());
  }

  auto build = rec->Build();
  if (!build.ok()) {
    registry_.Drop(name);
    return build.status();
  }
  return rec;
}

Result<ResultSet> RecDB::ExecuteCreateRecommender(
    const CreateRecommenderStatement& stmt) {
  RecommenderConfig config;
  config.name = stmt.name;
  config.ratings_table = stmt.ratings_table;
  config.user_col = stmt.user_col;
  config.item_col = stmt.item_col;
  config.rating_col = stmt.rating_col;
  config.rebuild_threshold = options_.rebuild_threshold;
  config.sim_opts = options_.sim_opts;
  config.svd_opts = options_.svd_opts;
  if (stmt.algorithm.has_value()) {
    RECDB_ASSIGN_OR_RETURN(config.algorithm,
                           RecAlgorithmFromString(*stmt.algorithm));
  }
  Stopwatch watch;
  RECDB_ASSIGN_OR_RETURN(Recommender * rec,
                         CreateRecommender(std::move(config)));
  ResultSet rs;
  rs.elapsed_seconds = watch.ElapsedSeconds();
  rs.message = StringFormat(
      "created recommender %s (%s) on %s: %zu ratings, built in %.3fs",
      rec->name().c_str(), RecAlgorithmToString(rec->algorithm()),
      rec->config().ratings_table.c_str(), rec->base_size(),
      rs.elapsed_seconds);
  return rs;
}

Result<std::vector<std::pair<Rid, Tuple>>> RecDB::CollectMatching(
    TableInfo* table, const Expr* where) {
  BoundExprPtr pred;
  if (where != nullptr) {
    ExecSchema schema;
    for (const auto& col : table->schema.columns()) {
      schema.Add(ExecColumn{table->name, col.name, col.type});
    }
    RECDB_ASSIGN_OR_RETURN(pred, BindExpr(*where, schema));
  }
  std::vector<std::pair<Rid, Tuple>> out;
  auto it = table->heap->Begin(table->schema.NumColumns());
  while (true) {
    RECDB_ASSIGN_OR_RETURN(auto next, it.Next());
    if (!next.has_value()) break;
    if (pred != nullptr) {
      RECDB_ASSIGN_OR_RETURN(bool pass, pred->EvalPredicate(next->second));
      if (!pass) continue;
    }
    out.push_back(std::move(*next));
  }
  return out;
}

Result<ResultSet> RecDB::ExecuteDelete(const DeleteStatement& stmt) {
  RECDB_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(stmt.table_name));
  RECDB_ASSIGN_OR_RETURN(auto victims,
                         CollectMatching(table, stmt.where.get()));
  for (const auto& [rid, tuple] : victims) {
    RECDB_RETURN_NOT_OK(table->heap->Delete(rid));
    RECDB_RETURN_NOT_OK(NotifyDelete(table->name, table->schema, tuple));
  }
  ResultSet rs;
  rs.message = StringFormat("deleted %zu rows from %s", victims.size(),
                            table->name.c_str());
  return rs;
}

Result<ResultSet> RecDB::ExecuteUpdate(const UpdateStatement& stmt) {
  RECDB_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(stmt.table_name));
  const Schema& schema = table->schema;
  ExecSchema exec_schema;
  for (const auto& col : schema.columns()) {
    exec_schema.Add(ExecColumn{table->name, col.name, col.type});
  }
  // Bind assignment targets and value expressions (values may reference the
  // row being updated, e.g. SET ratingval = ratingval + 1).
  std::vector<std::pair<size_t, BoundExprPtr>> assigns;
  for (const auto& [col, expr] : stmt.assignments) {
    RECDB_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(col));
    RECDB_ASSIGN_OR_RETURN(auto bound, BindExpr(*expr, exec_schema));
    assigns.emplace_back(idx, std::move(bound));
  }
  RECDB_ASSIGN_OR_RETURN(auto victims,
                         CollectMatching(table, stmt.where.get()));
  for (auto& [rid, tuple] : victims) {
    Tuple updated = tuple;
    for (const auto& [idx, expr] : assigns) {
      RECDB_ASSIGN_OR_RETURN(Value v, expr->Eval(tuple));
      RECDB_ASSIGN_OR_RETURN(v, v.CastTo(schema.ColumnAt(idx).type));
      updated.values()[idx] = std::move(v);
    }
    RECDB_RETURN_NOT_OK(table->heap->Update(rid, updated).status());
    // For ratings sources, the overwrite semantics of AddRating handle both
    // a changed rating value and changed user/item ids via delete + insert.
    RECDB_RETURN_NOT_OK(NotifyDelete(table->name, schema, tuple));
    RECDB_RETURN_NOT_OK(NotifyInsert(table->name, schema, updated));
  }
  ResultSet rs;
  rs.message = StringFormat("updated %zu rows in %s", victims.size(),
                            table->name.c_str());
  return rs;
}

Status RecDB::NotifyDelete(const std::string& table, const Schema& schema,
                           const Tuple& tuple) {
  for (Recommender* rec : registry_.FindAllOnTable(table)) {
    const RecommenderConfig& cfg = rec->config();
    auto u_idx = schema.IndexOf(cfg.user_col);
    auto i_idx = schema.IndexOf(cfg.item_col);
    if (!u_idx.ok() || !i_idx.ok()) continue;
    const Value& u = tuple.At(u_idx.value());
    const Value& i = tuple.At(i_idx.value());
    if (u.type() != TypeId::kInt64 || i.type() != TypeId::kInt64) continue;
    rec->RemoveRating(u.AsInt(), i.AsInt());
    auto cm = cache_managers_.find(ToLower(rec->name()));
    if (cm != cache_managers_.end()) {
      cm->second->RecordUpdate(i.AsInt());
    }
    if (options_.auto_maintain) {
      RECDB_RETURN_NOT_OK(rec->MaintainIfNeeded().status());
    }
  }
  return Status::OK();
}

Status RecDB::NotifyInsert(const std::string& table, const Schema& schema,
                           const Tuple& tuple) {
  for (Recommender* rec : registry_.FindAllOnTable(table)) {
    const RecommenderConfig& cfg = rec->config();
    auto u_idx = schema.IndexOf(cfg.user_col);
    auto i_idx = schema.IndexOf(cfg.item_col);
    auto r_idx = schema.IndexOf(cfg.rating_col);
    if (!u_idx.ok() || !i_idx.ok() || !r_idx.ok()) continue;
    const Value& u = tuple.At(u_idx.value());
    const Value& i = tuple.At(i_idx.value());
    const Value& r = tuple.At(r_idx.value());
    if (u.is_null() || i.is_null() || r.is_null()) continue;
    if (u.type() != TypeId::kInt64 || i.type() != TypeId::kInt64 ||
        !r.is_numeric()) {
      continue;
    }
    rec->AddRating(u.AsInt(), i.AsInt(), r.AsNumeric());
    auto cm = cache_managers_.find(ToLower(rec->name()));
    if (cm != cache_managers_.end()) {
      cm->second->RecordUpdate(i.AsInt());
    }
    if (options_.auto_maintain) {
      RECDB_RETURN_NOT_OK(rec->MaintainIfNeeded().status());
    }
  }
  return Status::OK();
}

void RecDB::NotifyRecommendQuery(const PlanNode& plan) {
  const std::vector<int64_t>* user_ids = nullptr;
  Recommender* rec = nullptr;
  switch (plan.type) {
    case PlanNodeType::kFilterRecommend: {
      const auto& node = static_cast<const RecommendPlan&>(plan);
      if (node.user_ids.has_value()) {
        user_ids = &*node.user_ids;
        rec = node.rec;
      }
      break;
    }
    case PlanNodeType::kJoinRecommend: {
      const auto& node = static_cast<const JoinRecommendPlan&>(plan);
      user_ids = &node.user_ids;
      rec = node.rec;
      break;
    }
    case PlanNodeType::kIndexRecommend: {
      const auto& node = static_cast<const IndexRecommendPlan&>(plan);
      user_ids = &node.user_ids;
      rec = node.rec;
      break;
    }
    default:
      break;
  }
  if (rec != nullptr && user_ids != nullptr) {
    auto cm = cache_managers_.find(ToLower(rec->name()));
    if (cm != cache_managers_.end()) {
      for (int64_t uid : *user_ids) cm->second->RecordQuery(uid);
    }
  }
  for (const auto& child : plan.children) NotifyRecommendQuery(*child);
}

Result<CacheManager*> RecDB::GetCacheManager(const std::string& recommender,
                                             double hotness_threshold) {
  std::string key = ToLower(recommender);
  auto it = cache_managers_.find(key);
  if (it != cache_managers_.end()) return it->second.get();
  RECDB_ASSIGN_OR_RETURN(Recommender * rec, registry_.Get(recommender));
  auto mgr =
      std::make_unique<CacheManager>(rec, clock_, hotness_threshold);
  CacheManager* raw = mgr.get();
  cache_managers_[key] = std::move(mgr);
  return raw;
}

Status RecDB::BulkInsert(const std::string& table,
                         const std::vector<std::vector<Value>>& rows) {
  RECDB_ASSIGN_OR_RETURN(TableInfo * info, catalog_->GetTable(table));
  const Schema& schema = info->schema;
  for (const auto& row : rows) {
    if (row.size() != schema.NumColumns()) {
      return Status::InvalidArgument("bulk row width mismatch");
    }
    std::vector<Value> vals;
    vals.reserve(row.size());
    for (size_t i = 0; i < row.size(); ++i) {
      RECDB_ASSIGN_OR_RETURN(Value v, row[i].CastTo(schema.ColumnAt(i).type));
      vals.push_back(std::move(v));
    }
    Tuple tuple(std::move(vals));
    RECDB_RETURN_NOT_OK(info->heap->Insert(tuple).status());
    RECDB_RETURN_NOT_OK(NotifyInsert(info->name, schema, tuple));
  }
  return Status::OK();
}

std::string ResultSet::ToString(size_t max_rows) const {
  std::string out;
  out += Join(columns, " | ");
  out += "\n";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += "-+-";
    out += std::string(columns[i].size(), '-');
  }
  out += "\n";
  size_t shown = 0;
  for (const auto& row : rows) {
    if (shown++ >= max_rows) {
      out += StringFormat("... (%zu rows total)\n", rows.size());
      break;
    }
    std::vector<std::string> cells;
    for (const auto& v : row.values()) cells.push_back(v.ToString());
    out += Join(cells, " | ");
    out += "\n";
  }
  if (!message.empty()) {
    out += message;
    out += "\n";
  }
  return out;
}

}  // namespace recdb
