#include "api/recdb.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/bytes.h"
#include "common/shard.h"
#include "common/string_util.h"
#include "common/task_scheduler.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "parser/parser.h"
#include "stats/analyzer.h"

namespace recdb {

namespace {

// --- catalog meta-page serialization ----------------------------------------
//
// File-backed databases persist the catalog (tables + recommender configs)
// in a chain of meta pages rooted at page 0, so Open(path) can re-attach
// heaps and deterministically re-train recommenders. Each meta page:
//   u32 magic "ATEM" | i32 next_page_id (kInvalidPageId ends the chain) |
//   u32 chunk_len | u32 reserved | chunk bytes
// The concatenated chunks form one payload:
//   magic "RECDBMETA1" | u32 table_count | tables | u32 rec_count | recs
//   [| u32 stats_count | (table name, TableStats)...]
// The trailing statistics section is optional: files written before ANALYZE
// existed simply end after the recommenders and load fine.

constexpr uint32_t kMetaPageMagic = 0x4154454Du;  // "META" little-endian
constexpr size_t kMetaPageHeader = 16;
constexpr size_t kMetaPageCapacity = kPageSize - kMetaPageHeader;
constexpr char kMetaMagic[] = "RECDBMETA1";
constexpr size_t kMetaMagicLen = sizeof(kMetaMagic) - 1;

// Promote per-query ExecStats into the process-wide registry so `\metrics`
// and MetricsJson() see executor activity without a ResultSet in hand.
void PublishExecStats(const ExecStats& stats) {
  obs::Count(obs::Counter::kExecTuplesScanned, stats.tuples_scanned);
  obs::Count(obs::Counter::kExecPredictions, stats.predictions);
  obs::Count(obs::Counter::kExecJoinProbes, stats.join_probes);
}

// Statements that mutate engine state run under the exclusive lock and are
// the only ones that may append WAL records. SET and ANALYZE are exclusive
// but unlogged: SET is runtime configuration, and ANALYZE statistics are
// recomputable and persist with the next checkpoint.
bool IsWriteStatement(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
    case StatementKind::kExplain:
      return false;
    default:
      return true;
  }
}

// RecommenderConfig wire format, shared by the catalog meta pages and
// kCreateRecommender WAL records so the two can never drift.
void WriteRecommenderConfig(ByteWriter* w, const RecommenderConfig& cfg) {
  w->Str(cfg.name);
  w->Str(cfg.ratings_table);
  w->Str(cfg.user_col);
  w->Str(cfg.item_col);
  w->Str(cfg.rating_col);
  w->Num(static_cast<uint8_t>(cfg.algorithm));
  w->Num(cfg.rebuild_threshold);
  w->Num(cfg.sim_opts.top_k);
  w->Num(cfg.sim_opts.min_overlap);
  w->Num(cfg.svd_opts.num_factors);
  w->Num(cfg.svd_opts.num_epochs);
  w->Num(cfg.svd_opts.learning_rate);
  w->Num(cfg.svd_opts.regularization);
  w->Num(cfg.svd_opts.seed);
  w->Num(static_cast<uint8_t>(cfg.svd_opts.use_biases ? 1 : 0));
}

Result<RecommenderConfig> ReadRecommenderConfig(ByteReader* r) {
  RecommenderConfig cfg;
  RECDB_ASSIGN_OR_RETURN(cfg.name, r->Str());
  RECDB_ASSIGN_OR_RETURN(cfg.ratings_table, r->Str());
  RECDB_ASSIGN_OR_RETURN(cfg.user_col, r->Str());
  RECDB_ASSIGN_OR_RETURN(cfg.item_col, r->Str());
  RECDB_ASSIGN_OR_RETURN(cfg.rating_col, r->Str());
  RECDB_ASSIGN_OR_RETURN(uint8_t algo, r->Num<uint8_t>());
  if (algo > static_cast<uint8_t>(RecAlgorithm::kSVD)) {
    return Status::DataLoss("catalog has unknown algorithm");
  }
  cfg.algorithm = static_cast<RecAlgorithm>(algo);
  RECDB_ASSIGN_OR_RETURN(cfg.rebuild_threshold, r->Num<double>());
  RECDB_ASSIGN_OR_RETURN(cfg.sim_opts.top_k, r->Num<int32_t>());
  RECDB_ASSIGN_OR_RETURN(cfg.sim_opts.min_overlap, r->Num<int32_t>());
  RECDB_ASSIGN_OR_RETURN(cfg.svd_opts.num_factors, r->Num<int32_t>());
  RECDB_ASSIGN_OR_RETURN(cfg.svd_opts.num_epochs, r->Num<int32_t>());
  RECDB_ASSIGN_OR_RETURN(cfg.svd_opts.learning_rate, r->Num<double>());
  RECDB_ASSIGN_OR_RETURN(cfg.svd_opts.regularization, r->Num<double>());
  RECDB_ASSIGN_OR_RETURN(cfg.svd_opts.seed, r->Num<uint64_t>());
  RECDB_ASSIGN_OR_RETURN(uint8_t biases, r->Num<uint8_t>());
  cfg.svd_opts.use_biases = biases != 0;
  return cfg;
}

// kCreateTable WAL payload: name | column list | first heap page.
std::vector<uint8_t> EncodeCreateTableRecord(const TableInfo& table) {
  ByteWriter w;
  w.Str(table.name);
  w.Num(static_cast<uint32_t>(table.schema.NumColumns()));
  for (const auto& col : table.schema.columns()) {
    w.Str(col.name);
    w.Num(static_cast<uint8_t>(col.type));
  }
  w.Num(static_cast<int32_t>(table.heap->first_page_id()));
  return w.bytes();
}

// Single-string WAL payloads (kDropTable, kDropRecommender).
std::vector<uint8_t> EncodeNameRecord(const std::string& name) {
  ByteWriter w;
  w.Str(name);
  return w.bytes();
}

}  // namespace

RecDB::RecDB(RecDBOptions options, std::unique_ptr<DiskManager> disk)
    : options_(options),
      disk_(disk != nullptr ? std::move(disk)
                            : std::make_unique<InMemoryDiskManager>()),
      clock_(&default_clock_),
      trace_enabled_(options.trace) {
  // The constructor cannot return a Status; an out-of-range shard config is
  // remembered and surfaced by Execute/BulkInsert (never silently clamped).
  options_status_ = ValidateShardOptions(options_);
  background_refresh_.store(options_.background_refresh);
  if (options_.parallelism > 0) {
    TaskScheduler::SetGlobalParallelism(options_.parallelism);
  }
  pool_ = std::make_unique<BufferPool>(options_.buffer_pool_pages, disk_.get());
  catalog_ = std::make_unique<Catalog>(pool_.get());
  if (disk_->persistent() && disk_->NumPages() == 0) {
    // Reserve page 0 as the meta-chain root of a fresh database.
    page_id_t pid;
    auto guard = pool_->NewGuard(&pid);
    if (guard.ok() && pid == 0) {
      meta_pages_.push_back(pid);
      (void)guard.value().Drop();
    }
  }
}

RecDB::~RecDB() {
  // A queued background refresh captures `this`; it must finish (or see
  // closed_ and bail) before any member is torn down — even for in-memory
  // databases that never Close().
  const bool was_closed = closed_.exchange(true);
  TaskScheduler::Global().DrainBackground();
  if (disk_ != nullptr && disk_->persistent() && !was_closed) {
    closed_.store(false);
    (void)Close();
  }
}

Status ValidateShardOptions(const RecDBOptions& options) {
  if (options.shard_count < 1 ||
      options.shard_count > static_cast<size_t>(kMaxShardCount)) {
    return Status::InvalidArgument(
        "shard_count must be in [1, " + std::to_string(kMaxShardCount) +
        "], got " + std::to_string(options.shard_count));
  }
  if (options.shard_index >= options.shard_count) {
    return Status::InvalidArgument(
        "shard_index must be in [0, shard_count), got " +
        std::to_string(options.shard_index) + " with shard_count " +
        std::to_string(options.shard_count));
  }
  return Status::OK();
}

Result<std::unique_ptr<RecDB>> RecDB::Open(const std::string& path,
                                           RecDBOptions options) {
  RECDB_RETURN_NOT_OK(ValidateShardOptions(options));
  RECDB_ASSIGN_OR_RETURN(auto data, FileDiskManager::Open(path));
  RECDB_ASSIGN_OR_RETURN(auto wal, FileDiskManager::Open(path + ".wal"));
  return OpenWithDisks(std::move(data), std::move(wal), options);
}

Result<std::unique_ptr<RecDB>> RecDB::OpenWithDisks(
    std::unique_ptr<DiskManager> data, std::unique_ptr<DiskManager> wal,
    RecDBOptions options) {
  RECDB_RETURN_NOT_OK(ValidateShardOptions(options));
  bool existing = data != nullptr && data->NumPages() > 0;
  auto db = std::unique_ptr<RecDB>(new RecDB(options, std::move(data)));
  if (wal != nullptr) {
    auto log = LogManager::Open(std::move(wal));
    if (!log.ok()) {
      db->closed_ = true;
      return log.status();
    }
    db->log_ = std::move(log.value());
    db->pool_->SetWal(db->log_.get());
  }
  Status st = db->Recover(existing);
  if (!st.ok()) {
    // A half-recovered database must never checkpoint: the destructor would
    // overwrite the on-disk catalog with the partial in-memory state.
    db->closed_ = true;
    return st;
  }
  return db;
}

Status RecDB::Recover(bool existing) {
  std::vector<RecommenderConfig> configs;
  if (existing) RECDB_RETURN_NOT_OK(LoadMeta(&configs));
  size_t replayed = 0;
  bool repaired = false;
  if (log_ != nullptr) {
    RECDB_RETURN_NOT_OK(
        Redo(log_->TakeRecoveredRecords(), &configs, &replayed));
    // Tail repair reads every heap's last page, so only do it when the log
    // proves the previous process crashed (a post-checkpoint page can only
    // have reached disk after its records were durable — the WAL rule). A
    // cleanly-closed file keeps the lazy-read contract: a corrupt heap page
    // surfaces when the table is scanned, not at open.
    if (existing && replayed > 0) {
      RECDB_RETURN_NOT_OK(RepairHeapTails(&repaired));
    }
  }
  // Train recommenders only now, over the final recovered heaps, so a
  // reopened database answers RECOMMEND queries identically to the
  // pre-crash one (training is deterministic). A config whose ratings table
  // was dropped later in the log trains against nothing: skip it.
  //
  // Recommenders sharing one ratings source (same table + column triplet)
  // share a single heap scan and CSR freeze: the first loads a template
  // matrix, the rest copy it — a copy carries the frozen CSR, so their
  // Build() goes straight to model training without another build pass.
  std::unordered_map<std::string, std::shared_ptr<RatingMatrix>> loaded;
  for (auto& cfg : configs) {
    std::string key = ToLower(cfg.ratings_table) + '\0' + cfg.user_col + '\0' +
                      cfg.item_col + '\0' + cfg.rating_col;
    std::shared_ptr<RatingMatrix> preloaded;
    auto it = loaded.find(key);
    if (it != loaded.end()) {
      preloaded = std::make_shared<RatingMatrix>(*it->second);
    } else {
      auto tmpl = LoadRatingsMatrix(cfg);
      if (!tmpl.ok()) {
        if (tmpl.status().code() == StatusCode::kNotFound) continue;
        return tmpl.status();
      }
      preloaded = tmpl.value();
      loaded.emplace(std::move(key), std::move(tmpl).value());
    }
    auto rec = CreateRecommenderLocked(std::move(cfg), /*write_log=*/false,
                                       std::move(preloaded));
    if (!rec.ok() && rec.status().code() != StatusCode::kNotFound) {
      return rec.status();
    }
  }
  AttachWalToHeaps();
  if (replayed > 0 || repaired) {
    // Fold the replayed suffix into a fresh checkpoint so the next open
    // starts from a truncated log.
    RECDB_RETURN_NOT_OK(CheckpointLocked());
  }
  return Status::OK();
}

Status RecDB::Redo(std::vector<WalRecord> records,
                   std::vector<RecommenderConfig>* configs, size_t* replayed) {
  for (const WalRecord& rec : records) {
    // Records at or below the checkpoint are already reflected in the
    // catalog snapshot (a truncation failure can leave them in the log).
    if (rec.lsn <= checkpoint_lsn_) continue;
    switch (rec.type) {
      case WalRecordType::kInsert:
      case WalRecordType::kDelete:
      case WalRecordType::kUpdate: {
        RECDB_ASSIGN_OR_RETURN(WalTupleRecord t,
                               DecodeWalTupleRecord(rec.payload));
        RECDB_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(t.table));
        if (rec.type == WalRecordType::kInsert) {
          RECDB_RETURN_NOT_OK(table->heap->RedoInsert(t.rid, t.bytes, rec.lsn));
        } else if (rec.type == WalRecordType::kDelete) {
          RECDB_RETURN_NOT_OK(table->heap->RedoDelete(t.rid, rec.lsn));
        } else {
          RECDB_RETURN_NOT_OK(table->heap->RedoUpdate(t.rid, t.bytes, rec.lsn));
        }
        break;
      }
      case WalRecordType::kCreateTable: {
        ByteReader r(rec.payload);
        RECDB_ASSIGN_OR_RETURN(std::string name, r.Str());
        RECDB_ASSIGN_OR_RETURN(uint32_t ncols, r.Num<uint32_t>());
        std::vector<Column> cols;
        for (uint32_t c = 0; c < ncols; ++c) {
          RECDB_ASSIGN_OR_RETURN(std::string col_name, r.Str());
          RECDB_ASSIGN_OR_RETURN(uint8_t type, r.Num<uint8_t>());
          if (type > static_cast<uint8_t>(TypeId::kGeometry)) {
            return Status::DataLoss("WAL create-table has unknown type");
          }
          cols.emplace_back(std::move(col_name), static_cast<TypeId>(type));
        }
        RECDB_ASSIGN_OR_RETURN(int32_t first_pid, r.Num<int32_t>());
        // The heap's first page may never have reached the data file.
        pool_->EnsureAllocated(first_pid);
        {
          RECDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchGuard(first_pid));
          TablePage tp(guard.page());
          if (!tp.initialized()) {
            tp.Init();
            guard.MarkDirty();
          }
          RECDB_RETURN_NOT_OK(guard.Drop());
        }
        RECDB_RETURN_NOT_OK(
            catalog_
                ->AttachTable(name, Schema(std::move(cols)),
                              TableHeap::Attach(pool_.get(), first_pid,
                                                first_pid, 0))
                .status());
        break;
      }
      case WalRecordType::kDropTable: {
        ByteReader r(rec.payload);
        RECDB_ASSIGN_OR_RETURN(std::string name, r.Str());
        RECDB_RETURN_NOT_OK(catalog_->DropTable(name));
        break;
      }
      case WalRecordType::kCreateRecommender: {
        ByteReader r(rec.payload);
        RECDB_ASSIGN_OR_RETURN(RecommenderConfig cfg,
                               ReadRecommenderConfig(&r));
        configs->push_back(std::move(cfg));
        break;
      }
      case WalRecordType::kDropRecommender: {
        ByteReader r(rec.payload);
        RECDB_ASSIGN_OR_RETURN(std::string name, r.Str());
        std::string key = ToLower(name);
        configs->erase(std::remove_if(configs->begin(), configs->end(),
                                      [&](const RecommenderConfig& cfg) {
                                        return ToLower(cfg.name) == key;
                                      }),
                       configs->end());
        break;
      }
    }
    ++*replayed;
    obs::Count(obs::Counter::kWalRecordsReplayed);
  }
  return Status::OK();
}

Status RecDB::RepairHeapTails(bool* repaired) {
  for (const auto& name : catalog_->TableNames()) {
    RECDB_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(name));
    RECDB_RETURN_NOT_OK(table->heap->RepairTail(repaired));
  }
  return Status::OK();
}

void RecDB::AttachWalToHeaps() {
  if (log_ == nullptr) return;
  for (const auto& name : catalog_->TableNames()) {
    auto table = catalog_->GetTable(name);
    if (table.ok()) {
      table.value()->heap->EnableLogging(log_.get(), table.value()->name);
    }
  }
}

Status RecDB::Checkpoint() {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  return CheckpointLocked();
}

Status RecDB::CheckpointLocked() {
  if (!disk_->persistent() || closed_) return Status::OK();
  Lsn cp = log_ != nullptr ? log_->newest_lsn() : 0;
  // Crash-safety ordering: (1) data pages first — the buffer pool's WAL
  // rule makes the log durable up to each page's LSN before writing it
  // back; (2) the catalog snapshot naming `cp`; (3) flush the snapshot;
  // (4) only then may the log truncate. A crash between any two steps
  // leaves either the old checkpoint + full log or the new checkpoint +
  // (possibly stale, filtered-on-replay) log.
  RECDB_RETURN_NOT_OK(pool_->FlushAll());
  RECDB_RETURN_NOT_OK(PersistMeta(cp));
  RECDB_RETURN_NOT_OK(pool_->FlushAll());
  if (log_ != nullptr) RECDB_RETURN_NOT_OK(log_->Reset(cp));
  checkpoint_lsn_ = cp;
  return Status::OK();
}

Status RecDB::Close() {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  if (closed_) return Status::OK();
  // Leave the database open (and retryable) if the checkpoint failed —
  // marking it closed here would silently drop the un-checkpointed state.
  RECDB_RETURN_NOT_OK(CheckpointLocked());
  closed_.store(true);
  return Status::OK();
}

Status RecDB::CommitWal() {
  if (log_ == nullptr) return Status::OK();
  Lsn target = log_->newest_lsn();
  if (target == 0) return Status::OK();
  return log_->Commit(target);
}

Status RecDB::PersistMeta(Lsn checkpoint_lsn) {
  ByteWriter w;
  w.Raw(kMetaMagic, kMetaMagicLen);

  auto table_names = catalog_->TableNames();
  w.Num(static_cast<uint32_t>(table_names.size()));
  for (const auto& name : table_names) {
    RECDB_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(name));
    w.Str(table->name);
    w.Num(static_cast<uint32_t>(table->schema.NumColumns()));
    for (const auto& col : table->schema.columns()) {
      w.Str(col.name);
      w.Num(static_cast<uint8_t>(col.type));
    }
    w.Num(static_cast<int32_t>(table->heap->first_page_id()));
    w.Num(static_cast<int32_t>(table->heap->last_page_id()));
    w.Num(static_cast<uint64_t>(table->heap->num_tuples()));
  }

  auto rec_names = registry_.Names();
  w.Num(static_cast<uint32_t>(rec_names.size()));
  for (const auto& name : rec_names) {
    RECDB_ASSIGN_OR_RETURN(Recommender * rec, registry_.Get(name));
    WriteRecommenderConfig(&w, rec->config());
  }

  // Optional trailing section: ANALYZE statistics, keyed by table name so
  // load order never matters.
  std::vector<const TableInfo*> analyzed;
  for (const auto& name : table_names) {
    RECDB_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(name));
    if (table->stats.has_value()) analyzed.push_back(table);
  }
  w.Num(static_cast<uint32_t>(analyzed.size()));
  for (const TableInfo* table : analyzed) {
    w.Str(table->name);
    table->stats->Serialize(&w);
  }

  // Trailing since the WAL existed: the log position this snapshot covers.
  // REDO skips records at or below it. Absent in older files (reads as 0).
  w.Num(static_cast<uint64_t>(checkpoint_lsn));

  const std::vector<uint8_t>& payload = w.bytes();
  size_t num_chunks =
      payload.empty() ? 1 : (payload.size() + kMetaPageCapacity - 1) /
                                kMetaPageCapacity;
  // Extend the chain if the catalog outgrew it (orphaned tail pages from a
  // shrinking catalog stay allocated; they are unreachable and harmless).
  while (meta_pages_.size() < num_chunks) {
    page_id_t pid;
    RECDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->NewGuard(&pid));
    RECDB_RETURN_NOT_OK(guard.Drop());
    meta_pages_.push_back(pid);
  }
  for (size_t i = 0; i < num_chunks; ++i) {
    size_t off = i * kMetaPageCapacity;
    size_t len = std::min(kMetaPageCapacity,
                          payload.size() > off ? payload.size() - off : 0);
    page_id_t next =
        i + 1 < num_chunks ? meta_pages_[i + 1] : kInvalidPageId;
    RECDB_ASSIGN_OR_RETURN(PageGuard guard,
                           pool_->FetchGuard(meta_pages_[i]));
    char* data = guard.data();
    std::memset(data, 0, kPageSize);
    std::memcpy(data, &kMetaPageMagic, sizeof(kMetaPageMagic));
    std::memcpy(data + 4, &next, sizeof(next));
    uint32_t len32 = static_cast<uint32_t>(len);
    std::memcpy(data + 8, &len32, sizeof(len32));
    if (len > 0) std::memcpy(data + kMetaPageHeader, payload.data() + off, len);
    guard.MarkDirty();
    RECDB_RETURN_NOT_OK(guard.Drop());
  }
  return Status::OK();
}

Status RecDB::LoadMeta(std::vector<RecommenderConfig>* configs) {
  std::vector<uint8_t> payload;
  meta_pages_.clear();
  page_id_t pid = 0;
  while (pid != kInvalidPageId) {
    RECDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchGuard(pid));
    const char* data = guard.data();
    uint32_t magic;
    std::memcpy(&magic, data, sizeof(magic));
    if (magic != kMetaPageMagic) {
      if (pid == 0 && magic == 0) {
        // Crash before the first checkpoint: heap write-backs extended the
        // data file but page 0 was never written (reads as zeros). The
        // catalog is empty; REDO rebuilds everything from the log.
        meta_pages_.assign(1, 0);
        return guard.Drop();
      }
      return Status::DataLoss("page " + std::to_string(pid) +
                              " is not a catalog meta page");
    }
    meta_pages_.push_back(pid);
    page_id_t next;
    uint32_t len;
    std::memcpy(&next, data + 4, sizeof(next));
    std::memcpy(&len, data + 8, sizeof(len));
    if (len > kMetaPageCapacity) {
      return Status::DataLoss("corrupt meta page length");
    }
    const auto* chunk =
        reinterpret_cast<const uint8_t*>(data + kMetaPageHeader);
    payload.insert(payload.end(), chunk, chunk + len);
    RECDB_RETURN_NOT_OK(guard.Drop());
    if (next != kInvalidPageId && meta_pages_.size() > disk_->NumPages()) {
      return Status::DataLoss("catalog meta chain forms a cycle");
    }
    pid = next;
  }
  if (payload.empty()) return Status::OK();  // fresh database, empty catalog

  ByteReader r(payload);
  char magic[kMetaMagicLen];
  RECDB_RETURN_NOT_OK(r.Raw(magic, kMetaMagicLen));
  if (std::memcmp(magic, kMetaMagic, kMetaMagicLen) != 0) {
    return Status::DataLoss("bad catalog metadata magic");
  }

  RECDB_ASSIGN_OR_RETURN(uint32_t num_tables, r.Num<uint32_t>());
  for (uint32_t t = 0; t < num_tables; ++t) {
    RECDB_ASSIGN_OR_RETURN(std::string name, r.Str());
    RECDB_ASSIGN_OR_RETURN(uint32_t ncols, r.Num<uint32_t>());
    std::vector<Column> cols;
    for (uint32_t c = 0; c < ncols; ++c) {
      RECDB_ASSIGN_OR_RETURN(std::string col_name, r.Str());
      RECDB_ASSIGN_OR_RETURN(uint8_t type, r.Num<uint8_t>());
      if (type > static_cast<uint8_t>(TypeId::kGeometry)) {
        return Status::DataLoss("catalog has unknown column type");
      }
      cols.emplace_back(std::move(col_name), static_cast<TypeId>(type));
    }
    RECDB_ASSIGN_OR_RETURN(int32_t first_pid, r.Num<int32_t>());
    RECDB_ASSIGN_OR_RETURN(int32_t last_pid, r.Num<int32_t>());
    RECDB_ASSIGN_OR_RETURN(uint64_t num_tuples, r.Num<uint64_t>());
    RECDB_RETURN_NOT_OK(
        catalog_
            ->AttachTable(name, Schema(std::move(cols)),
                          TableHeap::Attach(pool_.get(), first_pid, last_pid,
                                            static_cast<size_t>(num_tuples)))
            .status());
  }

  RECDB_ASSIGN_OR_RETURN(uint32_t num_recs, r.Num<uint32_t>());
  for (uint32_t i = 0; i < num_recs; ++i) {
    // Collected, not created: recovery trains models only after REDO has
    // restored the final heap contents.
    RECDB_ASSIGN_OR_RETURN(RecommenderConfig cfg, ReadRecommenderConfig(&r));
    configs->push_back(std::move(cfg));
  }

  // Optional trailing section (absent in pre-ANALYZE files): persisted
  // table statistics.
  if (r.Remaining() > 0) {
    RECDB_ASSIGN_OR_RETURN(uint32_t num_stats, r.Num<uint32_t>());
    for (uint32_t i = 0; i < num_stats; ++i) {
      RECDB_ASSIGN_OR_RETURN(std::string name, r.Str());
      RECDB_ASSIGN_OR_RETURN(TableStats stats, TableStats::Deserialize(&r));
      RECDB_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(name));
      table->stats = std::move(stats);
    }
  }
  // Optional trailing checkpoint LSN (absent in pre-WAL files).
  if (r.Remaining() >= sizeof(uint64_t)) {
    RECDB_ASSIGN_OR_RETURN(uint64_t cp, r.Num<uint64_t>());
    checkpoint_lsn_ = cp;
  }
  return Status::OK();
}

Result<ResultSet> RecDB::Execute(const std::string& sql) {
  if (closed_.load()) return Status::InvalidArgument("database is closed");
  RECDB_RETURN_NOT_OK(options_status_);
  if (trace_enabled_.load()) return ExecuteTraced(sql);
  RECDB_ASSIGN_OR_RETURN(auto stmts, Parser::Parse(sql));
  bool writer = false;
  for (const auto& stmt : stmts) {
    if (IsWriteStatement(*stmt)) writer = true;
  }
  Result<ResultSet> result = [&]() -> Result<ResultSet> {
    if (writer) {
      std::unique_lock<std::shared_mutex> lock(state_mu_);
      return RunStatements(stmts);
    }
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    return RunStatements(stmts);
  }();
  if (writer) {
    // Group-commit outside the lock: the fsync never blocks readers, and a
    // concurrent writer's commit piggybacks on the same flush. On a
    // mid-script statement error the committed prefix still matches the
    // in-memory state, so the records are committed rather than dropped;
    // the statement error keeps reporting priority.
    Status commit = CommitWal();
    if (!commit.ok() && result.ok()) return commit;
  }
  return result;
}

Result<ResultSet> RecDB::ExecuteTraced(const std::string& sql) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  active_tracer_ = std::make_unique<obs::Tracer>("query");
  int parse_span = active_tracer_->BeginSpan("parse");
  auto parsed = Parser::Parse(sql);
  active_tracer_->EndSpan(parse_span);
  Result<ResultSet> result = parsed.ok()
                                 ? RunStatements(parsed.value())
                                 : Result<ResultSet>(parsed.status());
  // Render even on error so a failing query's partial trace is visible.
  active_tracer_->Finish();
  last_trace_ = active_tracer_->Render();
  active_tracer_.reset();
  if (result.ok()) result.value().trace = last_trace_;
  lock.unlock();
  Status commit = CommitWal();
  if (!commit.ok() && result.ok()) return commit;
  return result;
}

std::string RecDB::MetricsJson() {
  return obs::MetricsRegistry::Global().ToJson();
}

Result<ResultSet> RecDB::RunStatements(
    const std::vector<std::unique_ptr<Statement>>& stmts) {
  if (closed_.load()) return Status::InvalidArgument("database is closed");
  uint64_t read_failures = disk_->num_read_failures();
  uint64_t write_failures = disk_->num_write_failures();
  uint64_t retries = disk_->num_retries();
  uint64_t checksum_failures = disk_->num_checksum_failures();
  ResultSet last;
  for (const auto& stmt : stmts) {
    obs::Count(obs::Counter::kQueryStatements);
    RECDB_ASSIGN_OR_RETURN(last, ExecuteStatement(*stmt));
  }
  last.stats.io_read_failures += disk_->num_read_failures() - read_failures;
  last.stats.io_write_failures += disk_->num_write_failures() - write_failures;
  last.stats.io_retries += disk_->num_retries() - retries;
  last.stats.io_checksum_failures +=
      disk_->num_checksum_failures() - checksum_failures;
  return last;
}

Result<std::string> RecDB::Explain(const std::string& sql) {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  RECDB_ASSIGN_OR_RETURN(auto stmt, Parser::ParseSingle(sql));
  if (stmt->kind != StatementKind::kSelect) {
    return Status::InvalidArgument("EXPLAIN supports SELECT only");
  }
  Planner planner(catalog_.get(), &registry_, options_.planner);
  RECDB_ASSIGN_OR_RETURN(
      auto planned, planner.PlanSelect(static_cast<SelectStatement&>(*stmt)));
  Optimizer optimizer(options_.planner);
  RECDB_ASSIGN_OR_RETURN(auto plan, optimizer.Optimize(std::move(planned.plan)));
  return PlannerOptionsSummary(options_.planner) + "\n" + plan->ToString();
}

Result<ResultSet> RecDB::ExecuteStatement(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return ExecuteSelect(static_cast<const SelectStatement&>(stmt));
    case StatementKind::kCreateTable:
      return ExecuteCreateTable(static_cast<const CreateTableStatement&>(stmt));
    case StatementKind::kDropTable: {
      const auto& drop = static_cast<const DropTableStatement&>(stmt);
      RECDB_RETURN_NOT_OK(catalog_->DropTable(drop.table_name));
      if (log_ != nullptr) {
        log_->Append(WalRecordType::kDropTable,
                     EncodeNameRecord(drop.table_name));
      }
      ResultSet rs;
      rs.message = "dropped table " + drop.table_name;
      return rs;
    }
    case StatementKind::kInsert:
      return ExecuteInsert(static_cast<const InsertStatement&>(stmt));
    case StatementKind::kDelete:
      return ExecuteDelete(static_cast<const DeleteStatement&>(stmt));
    case StatementKind::kUpdate:
      return ExecuteUpdate(static_cast<const UpdateStatement&>(stmt));
    case StatementKind::kExplain: {
      const auto& explain = static_cast<const ExplainStatement&>(stmt);
      Planner planner(catalog_.get(), &registry_, options_.planner);
      RECDB_ASSIGN_OR_RETURN(
          auto planned,
          planner.PlanSelect(
              static_cast<const SelectStatement&>(*explain.inner)));
      Optimizer optimizer(options_.planner);
      RECDB_ASSIGN_OR_RETURN(auto plan,
                             optimizer.Optimize(std::move(planned.plan)));
      ResultSet rs;
      rs.columns = {"plan"};
      std::string rendered;
      if (explain.analyze) {
        // EXPLAIN ANALYZE: run the query (discarding its rows) so each plan
        // node's actual emitted-row count appears next to its estimate.
        NotifyRecommendQuery(*plan);
        ExecContext ctx;
        ctx.shard_count = static_cast<uint32_t>(options_.shard_count);
        ctx.shard_index = static_cast<uint32_t>(options_.shard_index);
        RECDB_ASSIGN_OR_RETURN(auto exec, CreateExecutor(*plan, &ctx));
        RECDB_RETURN_NOT_OK(exec->Init());
        while (true) {
          RECDB_ASSIGN_OR_RETURN(auto next, exec->Next());
          if (!next.has_value()) break;
        }
        rs.stats = ctx.stats;
        PublishExecStats(ctx.stats);
        rendered = plan->ToString(0, &ctx.actual_rows);
      } else {
        rendered = plan->ToString();
      }
      rs.rows.push_back(
          Tuple({Value::String(PlannerOptionsSummary(options_.planner))}));
      for (const auto& line : Split(rendered, '\n')) {
        if (!line.empty()) rs.rows.push_back(Tuple({Value::String(line)}));
      }
      if (explain.analyze &&
          (rs.stats.candidates_generated > 0 || rs.stats.blocks_skipped > 0 ||
           rs.stats.items_pruned > 0)) {
        rs.rows.push_back(Tuple({Value::String(StringFormat(
            "pruning: %llu candidates generated, %llu blocks skipped, "
            "%llu items pruned",
            static_cast<unsigned long long>(rs.stats.candidates_generated),
            static_cast<unsigned long long>(rs.stats.blocks_skipped),
            static_cast<unsigned long long>(rs.stats.items_pruned)))}));
      }
      return rs;
    }
    case StatementKind::kCreateRecommender:
      return ExecuteCreateRecommender(
          static_cast<const CreateRecommenderStatement&>(stmt));
    case StatementKind::kDropRecommender: {
      const auto& drop = static_cast<const DropRecommenderStatement&>(stmt);
      cache_managers_.erase(ToLower(drop.name));
      RECDB_RETURN_NOT_OK(registry_.Drop(drop.name));
      if (log_ != nullptr) {
        log_->Append(WalRecordType::kDropRecommender,
                     EncodeNameRecord(drop.name));
      }
      ResultSet rs;
      rs.message = "dropped recommender " + drop.name;
      return rs;
    }
    case StatementKind::kSet:
      return ExecuteSet(static_cast<const SetStatement&>(stmt));
    case StatementKind::kAnalyze:
      return ExecuteAnalyze(static_cast<const AnalyzeStatement&>(stmt));
  }
  return Status::Internal("unhandled statement kind");
}

Result<ResultSet> RecDB::ExecuteAnalyze(const AnalyzeStatement& stmt) {
  Stopwatch watch;
  std::vector<std::string> names;
  if (!stmt.table_name.empty()) {
    names.push_back(stmt.table_name);
  } else {
    names = catalog_->TableNames();
  }
  for (const auto& name : names) {
    RECDB_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(name));
    RECDB_ASSIGN_OR_RETURN(TableStats stats, AnalyzeTable(*table));
    table->stats = std::move(stats);
  }
  ResultSet rs;
  rs.elapsed_seconds = watch.ElapsedSeconds();
  rs.message = StringFormat("analyzed %zu table%s", names.size(),
                            names.size() == 1 ? "" : "s");
  return rs;
}

Result<ResultSet> RecDB::ExecuteSet(const SetStatement& stmt) {
  if (stmt.option == "parallelism") {
    if (stmt.value.type() != TypeId::kInt64) {
      return Status::InvalidArgument(
          "SET parallelism expects an integer thread count");
    }
    int64_t n = stmt.value.AsInt();
    if (n < 1) {
      return Status::InvalidArgument(
          "SET parallelism requires a value >= 1, got " + std::to_string(n));
    }
    constexpr int64_t kMaxParallelism = 256;
    n = std::min(n, kMaxParallelism);
    TaskScheduler::SetGlobalParallelism(static_cast<size_t>(n));
    ResultSet rs;
    rs.message = "parallelism set to " + std::to_string(n);
    return rs;
  }
  if (stmt.option == "trace") {
    bool enable;
    if (stmt.value.type() == TypeId::kInt64) {
      enable = stmt.value.AsInt() != 0;
    } else if (stmt.value.type() == TypeId::kString) {
      std::string v = ToLower(stmt.value.AsString());
      if (v == "on" || v == "true" || v == "1") {
        enable = true;
      } else if (v == "off" || v == "false" || v == "0") {
        enable = false;
      } else {
        return Status::InvalidArgument(
            "SET trace expects on/off (got '" + stmt.value.AsString() + "')");
      }
    } else {
      return Status::InvalidArgument("SET trace expects on/off");
    }
    trace_enabled_ = enable;
    ResultSet rs;
    rs.message = std::string("trace ") + (enable ? "enabled" : "disabled");
    return rs;
  }
  if (stmt.option == "background_refresh") {
    bool enable;
    if (stmt.value.type() == TypeId::kInt64) {
      enable = stmt.value.AsInt() != 0;
    } else if (stmt.value.type() == TypeId::kString) {
      std::string v = ToLower(stmt.value.AsString());
      if (v == "on" || v == "true" || v == "1") {
        enable = true;
      } else if (v == "off" || v == "false" || v == "0") {
        enable = false;
      } else {
        return Status::InvalidArgument(
            "SET background_refresh expects on/off (got '" +
            stmt.value.AsString() + "')");
      }
    } else {
      return Status::InvalidArgument("SET background_refresh expects on/off");
    }
    background_refresh_.store(enable);
    ResultSet rs;
    rs.message =
        std::string("background_refresh ") + (enable ? "enabled" : "disabled");
    return rs;
  }
  if (stmt.option == "shard_count" || stmt.option == "shard_index") {
    if (stmt.value.type() != TypeId::kInt64) {
      return Status::InvalidArgument("SET " + stmt.option +
                                     " expects an integer value");
    }
    const int64_t n = stmt.value.AsInt();
    RecDBOptions candidate = options_;
    if (stmt.option == "shard_count") {
      if (n < 1 || static_cast<uint64_t>(n) > kMaxShardCount) {
        return Status::InvalidArgument(
            "SET shard_count requires a value in [1, " +
            std::to_string(kMaxShardCount) + "], got " + std::to_string(n));
      }
      candidate.shard_count = static_cast<size_t>(n);
      // Shrinking the shard space below the configured index is as invalid
      // as setting the index out of range directly.
      if (candidate.shard_index >= candidate.shard_count) {
        return Status::InvalidArgument(
            "SET shard_count = " + std::to_string(n) +
            " would strand shard_index " +
            std::to_string(candidate.shard_index) +
            "; lower shard_index first");
      }
    } else {
      if (n < 0 || static_cast<uint64_t>(n) >= candidate.shard_count) {
        return Status::InvalidArgument(
            "SET shard_index requires a value in [0, " +
            std::to_string(candidate.shard_count - 1) +
            "] (shard_count = " + std::to_string(candidate.shard_count) +
            "), got " + std::to_string(n));
      }
      candidate.shard_index = static_cast<size_t>(n);
    }
    RECDB_RETURN_NOT_OK(ValidateShardOptions(candidate));
    options_.shard_count = candidate.shard_count;
    options_.shard_index = candidate.shard_index;
    ResultSet rs;
    rs.message = stmt.option + " set to " + std::to_string(n);
    return rs;
  }
  return Status::InvalidArgument("unknown option in SET: " + stmt.option);
}

Result<ResultSet> RecDB::ExecuteSelect(const SelectStatement& stmt) {
  obs::Count(obs::Counter::kQuerySelects);
  Stopwatch watch;
  obs::Tracer* tracer = active_tracer_.get();
  int plan_span = tracer != nullptr ? tracer->BeginSpan("plan") : -1;
  Planner planner(catalog_.get(), &registry_, options_.planner);
  RECDB_ASSIGN_OR_RETURN(auto planned, planner.PlanSelect(stmt));
  Optimizer optimizer(options_.planner);
  RECDB_ASSIGN_OR_RETURN(auto plan, optimizer.Optimize(std::move(planned.plan)));
  if (plan_span >= 0) tracer->EndSpan(plan_span);

  NotifyRecommendQuery(*plan);

  int exec_span = tracer != nullptr ? tracer->BeginSpan("execute") : -1;
  ExecContext ctx;
  ctx.tracer = tracer;
  ctx.shard_count = static_cast<uint32_t>(options_.shard_count);
  ctx.shard_index = static_cast<uint32_t>(options_.shard_index);
  RECDB_ASSIGN_OR_RETURN(auto exec, CreateExecutor(*plan, &ctx));
  RECDB_RETURN_NOT_OK(exec->Init());

  ResultSet rs;
  rs.columns = std::move(planned.output_names);
  while (true) {
    RECDB_ASSIGN_OR_RETURN(auto next, exec->Next());
    if (!next.has_value()) break;
    rs.rows.push_back(std::move(*next));
  }
  if (exec_span >= 0) {
    // Materialize the per-executor spans (accumulated via RecordNode during
    // the drain) under the execute span, then close it.
    tracer->AttachPlan(*plan);
    tracer->EndSpan(exec_span);
  }
  // Rendered after the drain so est/act annotations are both available.
  rs.plan = plan->ToString(0, &ctx.actual_rows);
  rs.stats = ctx.stats;
  rs.elapsed_seconds = watch.ElapsedSeconds();
  PublishExecStats(ctx.stats);
  obs::Count(obs::Counter::kQueryRowsEmitted, rs.rows.size());
  obs::ObserveUs(obs::Histogram::kQueryLatencyUs, rs.elapsed_seconds * 1e6);
  return rs;
}

Result<ResultSet> RecDB::ExecuteCreateTable(const CreateTableStatement& stmt) {
  std::vector<Column> cols;
  for (const auto& [name, type_name] : stmt.columns) {
    RECDB_ASSIGN_OR_RETURN(TypeId type, TypeIdFromName(type_name));
    cols.emplace_back(name, type);
  }
  RECDB_ASSIGN_OR_RETURN(
      TableInfo * table,
      catalog_->CreateTable(stmt.table_name, Schema(std::move(cols))));
  if (log_ != nullptr) {
    table->heap->EnableLogging(log_.get(), table->name);
    log_->Append(WalRecordType::kCreateTable, EncodeCreateTableRecord(*table));
  }
  ResultSet rs;
  rs.message = "created table " + stmt.table_name;
  return rs;
}

namespace {

// Serving-layer ownership test (DESIGN.md §14). Rows of a partitioned table
// whose user id is NULL or non-INT cannot be hashed; they live on shard 0
// only, so exactly one shard stores each row.
bool ShardOwnsRow(const RecDBOptions& options, const Tuple& row,
                  size_t user_idx) {
  if (user_idx == SIZE_MAX) return true;
  const Value& u = row.At(user_idx);
  if (u.is_null() || u.type() != TypeId::kInt64) {
    return options.shard_index == 0;
  }
  return ShardOfUser(u.AsInt(), static_cast<uint32_t>(options.shard_count)) ==
         options.shard_index;
}

}  // namespace

size_t RecDB::PartitionUserIndexLocked(const TableInfo& table) const {
  if (options_.shard_count <= 1) return SIZE_MAX;
  auto part = partitioned_tables_.find(ToLower(table.name));
  if (part == partitioned_tables_.end()) return SIZE_MAX;
  auto idx = table.schema.IndexOf(part->second);
  return idx.ok() ? idx.value() : SIZE_MAX;
}

Result<ResultSet> RecDB::ExecuteInsert(const InsertStatement& stmt) {
  RECDB_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(stmt.table_name));
  const Schema& schema = table->schema;
  ExecSchema empty_schema;
  Tuple empty_tuple;
  // Serving-layer partition filter: when this engine is one shard behind the
  // router, a broadcast INSERT lands only its owned rows in the heap (and
  // therefore this shard's WAL) but feeds EVERY row to the recommenders, so
  // all shards apply the identical global rating stream in identical order
  // (replicated model plane, partitioned storage plane).
  const size_t part_user_idx = PartitionUserIndexLocked(*table);
  // Land every row in the heap first, then feed the recommenders once: a
  // multi-row INSERT becomes one versioned delta batch instead of N.
  std::vector<Tuple> applied;
  applied.reserve(stmt.rows.size());
  Status st = Status::OK();
  for (const auto& row : stmt.rows) {
    if (row.size() != schema.NumColumns()) {
      st = Status::InvalidArgument(StringFormat(
          "INSERT row has %zu values, table %s has %zu columns", row.size(),
          table->name.c_str(), schema.NumColumns()));
      break;
    }
    auto build = [&]() -> Result<Tuple> {
      std::vector<Value> vals;
      vals.reserve(row.size());
      for (size_t i = 0; i < row.size(); ++i) {
        RECDB_ASSIGN_OR_RETURN(auto bound, BindExpr(*row[i], empty_schema));
        RECDB_ASSIGN_OR_RETURN(Value v, bound->Eval(empty_tuple));
        RECDB_ASSIGN_OR_RETURN(v, v.CastTo(schema.ColumnAt(i).type));
        vals.push_back(std::move(v));
      }
      return Tuple(std::move(vals));
    }();
    if (!build.ok()) {
      st = build.status();
      break;
    }
    if (ShardOwnsRow(options_, build.value(), part_user_idx)) {
      st = table->heap->Insert(build.value()).status();
      if (!st.ok()) break;
      if (part_user_idx != SIZE_MAX) {
        obs::Count(obs::Counter::kServingDmlRowsRouted);
      }
    } else {
      obs::Count(obs::Counter::kServingDmlRowsFiltered);
    }
    applied.push_back(std::move(build).value());
  }
  // Notify every processed row — including ones the ownership filter kept
  // out of the heap — even on failure: recommender state must match the
  // global statement's observable contents on every shard.
  std::vector<RatingRowOp> ops;
  ops.reserve(applied.size());
  for (const Tuple& t : applied) ops.push_back({/*remove=*/false, &t});
  Status notify = NotifyRatingOps(table->name, schema, ops);
  if (st.ok()) st = notify;
  if (!st.ok()) {
    // Partial failure: report how many rows actually reached the table so
    // the caller knows the statement's observable effect.
    return Status(st.code(),
                  StringFormat("%s (INSERT aborted: %zu of %zu rows "
                               "applied to %s)",
                               st.message().c_str(), applied.size(),
                               stmt.rows.size(), table->name.c_str()));
  }
  ResultSet rs;
  rs.message = StringFormat("inserted %zu rows into %s", applied.size(),
                            table->name.c_str());
  return rs;
}

Result<Recommender*> RecDB::CreateRecommender(RecommenderConfig config) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  auto rec = CreateRecommenderLocked(std::move(config), /*write_log=*/true);
  lock.unlock();
  Status commit = CommitWal();
  if (!commit.ok() && rec.ok()) return commit;
  return rec;
}

Result<Recommender*> RecDB::CreateRecommenderWithMatrix(
    RecommenderConfig config, std::shared_ptr<RatingMatrix> matrix) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  if (closed_.load()) return Status::InvalidArgument("database is closed");
  auto rec = CreateRecommenderLocked(std::move(config), /*write_log=*/true,
                                     std::move(matrix));
  lock.unlock();
  Status commit = CommitWal();
  if (!commit.ok() && rec.ok()) return commit;
  return rec;
}

Status RecDB::DeclarePartitionedTable(const std::string& table,
                                      const std::string& user_col) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  if (closed_.load()) return Status::InvalidArgument("database is closed");
  RECDB_ASSIGN_OR_RETURN(TableInfo * info, catalog_->GetTable(table));
  RECDB_RETURN_NOT_OK(info->schema.IndexOf(user_col).status());
  partitioned_tables_[ToLower(info->name)] = user_col;
  return Status::OK();
}

Status RecDB::ApplyRatingFeed(const std::string& table,
                              const std::vector<ResultSet::RatingFeedOp>& ops) {
  if (ops.empty()) return Status::OK();
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  if (closed_.load()) return Status::InvalidArgument("database is closed");
  RECDB_ASSIGN_OR_RETURN(TableInfo * info, catalog_->GetTable(table));
  const Schema& schema = info->schema;
  std::vector<Tuple> tuples;
  tuples.reserve(ops.size());
  for (const auto& op : ops) {
    if (op.values.size() != schema.NumColumns()) {
      return Status::InvalidArgument("rating feed row width mismatch for " +
                                     info->name);
    }
    tuples.emplace_back(op.values);
  }
  std::vector<RatingRowOp> row_ops;
  row_ops.reserve(ops.size());
  for (size_t k = 0; k < ops.size(); ++k) {
    row_ops.push_back({ops[k].remove, &tuples[k]});
  }
  obs::Count(obs::Counter::kServingFeedOps, ops.size());
  return NotifyRatingOps(info->name, schema, row_ops);
}

Result<Recommender*> RecDB::CreateRecommenderLocked(
    RecommenderConfig config, bool write_log,
    std::shared_ptr<RatingMatrix> preloaded) {
  RECDB_ASSIGN_OR_RETURN(TableInfo * table,
                         catalog_->GetTable(config.ratings_table));
  const Schema& schema = table->schema;
  RECDB_ASSIGN_OR_RETURN(size_t user_idx, schema.IndexOf(config.user_col));
  RECDB_ASSIGN_OR_RETURN(size_t item_idx, schema.IndexOf(config.item_col));
  RECDB_ASSIGN_OR_RETURN(size_t rating_idx,
                         schema.IndexOf(config.rating_col));
  config.ratings_table = table->name;  // canonical spelling
  std::string name = config.name;
  RECDB_ASSIGN_OR_RETURN(Recommender * rec, registry_.Create(std::move(config)));

  if (preloaded != nullptr) {
    // Recovery path: adopt an already-loaded (and typically frozen) matrix
    // instead of re-scanning the heap for every recommender on the table.
    rec->SeedMatrix(std::move(preloaded));
  } else {
    // Load the ratings table into the recommender's matrix.
    auto it = table->heap->Begin(schema.NumColumns());
    while (true) {
      auto next = it.Next();
      if (!next.ok()) {
        registry_.Drop(name);
        return next.status();
      }
      if (!next.value().has_value()) break;
      const Tuple& t = next.value()->second;
      const Value& u = t.At(user_idx);
      const Value& i = t.At(item_idx);
      const Value& r = t.At(rating_idx);
      if (u.is_null() || i.is_null() || r.is_null()) continue;
      if (u.type() != TypeId::kInt64 || i.type() != TypeId::kInt64 ||
          !r.is_numeric()) {
        registry_.Drop(name);
        return Status::InvalidArgument(
            "ratings table columns must be INT user id, INT item id, "
            "numeric rating");
      }
      rec->AddRating(u.AsInt(), i.AsInt(), r.AsNumeric());
    }
  }

  auto build = rec->Build();
  if (!build.ok()) {
    registry_.Drop(name);
    return build.status();
  }
  if (write_log && log_ != nullptr) {
    // The record carries the full (canonicalized) config; replay re-trains
    // deterministically from the recovered ratings table.
    ByteWriter w;
    WriteRecommenderConfig(&w, rec->config());
    log_->Append(WalRecordType::kCreateRecommender, w.bytes());
  }
  return rec;
}

Result<std::shared_ptr<RatingMatrix>> RecDB::LoadRatingsMatrix(
    const RecommenderConfig& config) {
  RECDB_ASSIGN_OR_RETURN(TableInfo * table,
                         catalog_->GetTable(config.ratings_table));
  const Schema& schema = table->schema;
  RECDB_ASSIGN_OR_RETURN(size_t user_idx, schema.IndexOf(config.user_col));
  RECDB_ASSIGN_OR_RETURN(size_t item_idx, schema.IndexOf(config.item_col));
  RECDB_ASSIGN_OR_RETURN(size_t rating_idx,
                         schema.IndexOf(config.rating_col));
  auto matrix = std::make_shared<RatingMatrix>();
  auto it = table->heap->Begin(schema.NumColumns());
  while (true) {
    RECDB_ASSIGN_OR_RETURN(auto next, it.Next());
    if (!next.has_value()) break;
    const Tuple& t = next->second;
    const Value& u = t.At(user_idx);
    const Value& i = t.At(item_idx);
    const Value& r = t.At(rating_idx);
    if (u.is_null() || i.is_null() || r.is_null()) continue;
    if (u.type() != TypeId::kInt64 || i.type() != TypeId::kInt64 ||
        !r.is_numeric()) {
      return Status::InvalidArgument(
          "ratings table columns must be INT user id, INT item id, "
          "numeric rating");
    }
    matrix->Add(u.AsInt(), i.AsInt(), r.AsNumeric());
  }
  matrix->Freeze();
  return matrix;
}

void RecDB::ScheduleBackgroundRefresh(const std::string& name) {
  auto rec = registry_.Get(name);
  if (!rec.ok()) return;
  // One in-flight job per recommender; the flag clears when it finishes.
  if (!rec.value()->TryMarkRefreshScheduled()) return;
  obs::Count(obs::Counter::kIngestRefreshesScheduled);
  TaskScheduler::Global().Submit([this, name] { BackgroundRefreshJob(name); });
}

void RecDB::BackgroundRefreshJob(const std::string& name) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    Recommender::RefreshPlan plan;
    {
      std::shared_lock<std::shared_mutex> lock(state_mu_);
      if (closed_.load()) return;
      // Re-resolve by name under every lock acquisition: the recommender
      // may have been DROPped (and destroyed) while this job was queued.
      auto rec = registry_.Get(name);
      if (!rec.ok()) return;
      auto prepared = rec.value()->PrepareRefresh();
      if (!prepared.ok() || !prepared.value().valid) {
        // Nothing to merge (a foreground refresh beat us) or the prepare
        // failed; either way the slot frees up for the next trigger.
        rec.value()->ClearRefreshScheduled();
        return;
      }
      plan = std::move(prepared).value();
    }
    std::unique_lock<std::shared_mutex> lock(state_mu_);
    if (closed_.load()) return;
    auto rec = registry_.Get(name);
    if (!rec.ok()) return;
    if (rec.value()->CommitRefresh(std::move(plan))) {
      rec.value()->ClearRefreshScheduled();
      return;
    }
    // Version conflict: writes landed between prepare and commit. Retry
    // once off-lock, then give up racing and merge under the writer lock.
  }
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  auto rec = registry_.Get(name);
  if (!rec.ok()) return;
  rec.value()->ClearRefreshScheduled();
  if (closed_.load()) return;
  (void)rec.value()->Refresh();
}

Result<bool> RecDB::RefreshRecommender(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  if (closed_.load()) return Status::InvalidArgument("database is closed");
  RECDB_ASSIGN_OR_RETURN(Recommender * rec, registry_.Get(name));
  return rec->Refresh();
}

void RecDB::DrainBackgroundWork() { TaskScheduler::Global().DrainBackground(); }

Result<ResultSet> RecDB::ExecuteCreateRecommender(
    const CreateRecommenderStatement& stmt) {
  RecommenderConfig config;
  config.name = stmt.name;
  config.ratings_table = stmt.ratings_table;
  config.user_col = stmt.user_col;
  config.item_col = stmt.item_col;
  config.rating_col = stmt.rating_col;
  config.rebuild_threshold = options_.rebuild_threshold;
  config.refresh_threshold = options_.refresh_threshold;
  config.min_refresh_ops = options_.min_refresh_ops;
  config.sim_opts = options_.sim_opts;
  config.svd_opts = options_.svd_opts;
  if (stmt.algorithm.has_value()) {
    RECDB_ASSIGN_OR_RETURN(config.algorithm,
                           RecAlgorithmFromString(*stmt.algorithm));
  }
  Stopwatch watch;
  // Already under the exclusive lock (CREATE RECOMMENDER is a write
  // statement); the script-level commit covers the appended record.
  RECDB_ASSIGN_OR_RETURN(
      Recommender * rec,
      CreateRecommenderLocked(std::move(config), /*write_log=*/true));
  ResultSet rs;
  rs.elapsed_seconds = watch.ElapsedSeconds();
  rs.message = StringFormat(
      "created recommender %s (%s) on %s: %zu ratings, built in %.3fs",
      rec->name().c_str(), RecAlgorithmToString(rec->algorithm()),
      rec->config().ratings_table.c_str(), rec->base_size(),
      rs.elapsed_seconds);
  return rs;
}

Result<std::vector<std::pair<Rid, Tuple>>> RecDB::CollectMatching(
    TableInfo* table, const Expr* where) {
  BoundExprPtr pred;
  if (where != nullptr) {
    ExecSchema schema;
    for (const auto& col : table->schema.columns()) {
      schema.Add(ExecColumn{table->name, col.name, col.type});
    }
    RECDB_ASSIGN_OR_RETURN(pred, BindExpr(*where, schema));
  }
  std::vector<std::pair<Rid, Tuple>> out;
  auto it = table->heap->Begin(table->schema.NumColumns());
  while (true) {
    RECDB_ASSIGN_OR_RETURN(auto next, it.Next());
    if (!next.has_value()) break;
    if (pred != nullptr) {
      RECDB_ASSIGN_OR_RETURN(bool pass, pred->EvalPredicate(next->second));
      if (!pass) continue;
    }
    out.push_back(std::move(*next));
  }
  return out;
}

Result<ResultSet> RecDB::ExecuteDelete(const DeleteStatement& stmt) {
  RECDB_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(stmt.table_name));
  RECDB_ASSIGN_OR_RETURN(auto victims,
                         CollectMatching(table, stmt.where.get()));
  std::vector<RatingRowOp> ops;
  ops.reserve(victims.size());
  // When this table is partitioned across shards, export each removed row so
  // the router can cross-feed the other shards' (replicated) models — their
  // heaps never held these rows, but their models did.
  const bool export_ops = PartitionUserIndexLocked(*table) != SIZE_MAX;
  ResultSet rs;
  for (const auto& [rid, tuple] : victims) {
    RECDB_RETURN_NOT_OK(table->heap->Delete(rid));
    ops.push_back({/*remove=*/true, &tuple});
    if (export_ops) {
      rs.rating_ops.push_back({/*remove=*/true, tuple.values()});
    }
  }
  RECDB_RETURN_NOT_OK(NotifyRatingOps(table->name, table->schema, ops));
  rs.message = StringFormat("deleted %zu rows from %s", victims.size(),
                            table->name.c_str());
  return rs;
}

Result<ResultSet> RecDB::ExecuteUpdate(const UpdateStatement& stmt) {
  RECDB_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(stmt.table_name));
  const Schema& schema = table->schema;
  ExecSchema exec_schema;
  for (const auto& col : schema.columns()) {
    exec_schema.Add(ExecColumn{table->name, col.name, col.type});
  }
  // Bind assignment targets and value expressions (values may reference the
  // row being updated, e.g. SET ratingval = ratingval + 1).
  std::vector<std::pair<size_t, BoundExprPtr>> assigns;
  for (const auto& [col, expr] : stmt.assignments) {
    RECDB_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(col));
    RECDB_ASSIGN_OR_RETURN(auto bound, BindExpr(*expr, exec_schema));
    assigns.emplace_back(idx, std::move(bound));
  }
  RECDB_ASSIGN_OR_RETURN(auto victims,
                         CollectMatching(table, stmt.where.get()));
  std::vector<Tuple> replacements;
  replacements.reserve(victims.size());
  for (auto& [rid, tuple] : victims) {
    Tuple updated = tuple;
    for (const auto& [idx, expr] : assigns) {
      RECDB_ASSIGN_OR_RETURN(Value v, expr->Eval(tuple));
      RECDB_ASSIGN_OR_RETURN(v, v.CastTo(schema.ColumnAt(idx).type));
      updated.values()[idx] = std::move(v);
    }
    RECDB_RETURN_NOT_OK(table->heap->Update(rid, updated).status());
    replacements.push_back(std::move(updated));
  }
  // For ratings sources, delete-then-insert per row (in statement order,
  // one batch) handles both a changed rating value and changed user/item
  // ids; AddRating's overwrite semantics cover the common same-cell case.
  std::vector<RatingRowOp> ops;
  ops.reserve(victims.size() * 2);
  // Partitioned tables: export the remove+insert pairs so the router can
  // cross-feed every other shard's model with the same mutations.
  const bool export_ops = PartitionUserIndexLocked(*table) != SIZE_MAX;
  ResultSet rs;
  for (size_t k = 0; k < victims.size(); ++k) {
    ops.push_back({/*remove=*/true, &victims[k].second});
    ops.push_back({/*remove=*/false, &replacements[k]});
    if (export_ops) {
      rs.rating_ops.push_back({/*remove=*/true, victims[k].second.values()});
      rs.rating_ops.push_back({/*remove=*/false, replacements[k].values()});
    }
  }
  RECDB_RETURN_NOT_OK(NotifyRatingOps(table->name, schema, ops));
  rs.message = StringFormat("updated %zu rows in %s", victims.size(),
                            table->name.c_str());
  return rs;
}

Status RecDB::NotifyRatingOps(const std::string& table, const Schema& schema,
                              const std::vector<RatingRowOp>& ops) {
  if (ops.empty()) return Status::OK();
  for (Recommender* rec : registry_.FindAllOnTable(table)) {
    const RecommenderConfig& cfg = rec->config();
    auto u_idx = schema.IndexOf(cfg.user_col);
    auto i_idx = schema.IndexOf(cfg.item_col);
    auto r_idx = schema.IndexOf(cfg.rating_col);
    if (!u_idx.ok() || !i_idx.ok()) continue;
    std::vector<RatingMatrix::BatchRatingOp> batch;
    batch.reserve(ops.size());
    for (const RatingRowOp& op : ops) {
      const Value& u = op.tuple->At(u_idx.value());
      const Value& i = op.tuple->At(i_idx.value());
      if (u.type() != TypeId::kInt64 || i.type() != TypeId::kInt64) continue;
      RatingMatrix::BatchRatingOp b;
      b.remove = op.remove;
      b.user_id = u.AsInt();
      b.item_id = i.AsInt();
      if (!op.remove) {
        if (!r_idx.ok()) continue;
        const Value& r = op.tuple->At(r_idx.value());
        if (u.is_null() || i.is_null() || r.is_null() || !r.is_numeric()) {
          continue;
        }
        b.rating = r.AsNumeric();
      }
      batch.push_back(b);
    }
    if (batch.empty()) continue;
    rec->ApplyRatingBatch(batch);
    auto cm = cache_managers_.find(ToLower(rec->name()));
    if (cm != cache_managers_.end()) {
      for (const auto& b : batch) cm->second->RecordUpdate(b.item_id);
    }
    if (options_.auto_maintain) {
      RECDB_RETURN_NOT_OK(rec->MaintainIfNeeded().status());
    } else if (background_refresh_.load() && rec->NeedsRefresh()) {
      ScheduleBackgroundRefresh(rec->name());
    }
  }
  return Status::OK();
}

void RecDB::NotifyRecommendQuery(const PlanNode& plan) {
  // Readers hold state_mu_ shared, but demand recording mutates cache-
  // manager histograms; funnel concurrent RECOMMEND scans through here.
  std::lock_guard<std::mutex> lock(demand_mu_);
  NotifyRecommendQueryLocked(plan);
}

void RecDB::NotifyRecommendQueryLocked(const PlanNode& plan) {
  const std::vector<int64_t>* user_ids = nullptr;
  Recommender* rec = nullptr;
  switch (plan.type) {
    case PlanNodeType::kFilterRecommend: {
      const auto& node = static_cast<const RecommendPlan&>(plan);
      if (node.user_ids.has_value()) {
        user_ids = &*node.user_ids;
        rec = node.rec;
      }
      break;
    }
    case PlanNodeType::kJoinRecommend: {
      const auto& node = static_cast<const JoinRecommendPlan&>(plan);
      user_ids = &node.user_ids;
      rec = node.rec;
      break;
    }
    case PlanNodeType::kIndexRecommend: {
      const auto& node = static_cast<const IndexRecommendPlan&>(plan);
      user_ids = &node.user_ids;
      rec = node.rec;
      break;
    }
    default:
      break;
  }
  if (rec != nullptr && user_ids != nullptr) {
    auto cm = cache_managers_.find(ToLower(rec->name()));
    if (cm != cache_managers_.end()) {
      for (int64_t uid : *user_ids) {
        // Serving filter: cache demand is partitioned with the users — a
        // shard only records demand for users it can actually serve.
        if (options_.shard_count > 1 &&
            ShardOfUser(uid, static_cast<uint32_t>(options_.shard_count)) !=
                options_.shard_index) {
          continue;
        }
        cm->second->RecordQuery(uid);
      }
    }
  }
  for (const auto& child : plan.children) NotifyRecommendQueryLocked(*child);
}

Result<CacheManager*> RecDB::GetCacheManager(const std::string& recommender,
                                             double hotness_threshold) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  std::string key = ToLower(recommender);
  auto it = cache_managers_.find(key);
  if (it != cache_managers_.end()) return it->second.get();
  RECDB_ASSIGN_OR_RETURN(Recommender * rec, registry_.Get(recommender));
  auto mgr =
      std::make_unique<CacheManager>(rec, clock_, hotness_threshold);
  CacheManager* raw = mgr.get();
  // Ingest invalidations feed the manager's lazy re-materialization queue.
  // DROP RECOMMENDER erases the manager and the recommender together, so
  // the captured pointer cannot outlive its target.
  rec->SetInvalidationListener(
      [raw](const std::vector<std::pair<int64_t, int64_t>>& pairs) {
        raw->NotifyInvalidated(pairs);
      });
  cache_managers_[key] = std::move(mgr);
  return raw;
}

Status RecDB::BulkInsert(const std::string& table,
                         const std::vector<std::vector<Value>>& rows) {
  Status st = [&]() -> Status {
    std::unique_lock<std::shared_mutex> lock(state_mu_);
    RECDB_RETURN_NOT_OK(options_status_);
    RECDB_ASSIGN_OR_RETURN(TableInfo * info, catalog_->GetTable(table));
    const Schema& schema = info->schema;
    // Same ownership filter as ExecuteInsert: owned rows reach the heap,
    // every row reaches the recommenders (replicated model plane).
    const size_t part_user_idx = PartitionUserIndexLocked(*info);
    std::vector<Tuple> applied;
    applied.reserve(rows.size());
    for (const auto& row : rows) {
      if (row.size() != schema.NumColumns()) {
        return Status::InvalidArgument("bulk row width mismatch");
      }
      std::vector<Value> vals;
      vals.reserve(row.size());
      for (size_t i = 0; i < row.size(); ++i) {
        RECDB_ASSIGN_OR_RETURN(Value v, row[i].CastTo(schema.ColumnAt(i).type));
        vals.push_back(std::move(v));
      }
      Tuple tuple(std::move(vals));
      if (ShardOwnsRow(options_, tuple, part_user_idx)) {
        RECDB_RETURN_NOT_OK(info->heap->Insert(tuple).status());
        if (part_user_idx != SIZE_MAX) {
          obs::Count(obs::Counter::kServingDmlRowsRouted);
        }
      } else {
        obs::Count(obs::Counter::kServingDmlRowsFiltered);
      }
      applied.push_back(std::move(tuple));
    }
    std::vector<RatingRowOp> ops;
    ops.reserve(applied.size());
    for (const Tuple& t : applied) ops.push_back({/*remove=*/false, &t});
    return NotifyRatingOps(info->name, schema, ops);
  }();
  // Commit whatever was appended even on partial failure: the applied rows
  // are live in memory and must stay durable-consistent with it.
  Status commit = CommitWal();
  return st.ok() ? commit : st;
}

std::string ResultSet::ToString(size_t max_rows) const {
  std::string out;
  out += Join(columns, " | ");
  out += "\n";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += "-+-";
    out += std::string(columns[i].size(), '-');
  }
  out += "\n";
  size_t shown = 0;
  for (const auto& row : rows) {
    if (shown++ >= max_rows) {
      out += StringFormat("... (%zu rows total)\n", rows.size());
      break;
    }
    std::vector<std::string> cells;
    for (const auto& v : row.values()) cells.push_back(v.ToString());
    out += Join(cells, " | ");
    out += "\n";
  }
  if (!message.empty()) {
    out += message;
    out += "\n";
  }
  if (stats.predict_batches > 0) {
    out += StringFormat(
        "scoring: %llu predictions in %llu batches\n",
        static_cast<unsigned long long>(stats.predict_calls),
        static_cast<unsigned long long>(stats.predict_batches));
  }
  if (stats.candidates_generated > 0 || stats.items_pruned > 0) {
    out += StringFormat(
        "pruning: %llu candidates, %llu blocks skipped, %llu items pruned\n",
        static_cast<unsigned long long>(stats.candidates_generated),
        static_cast<unsigned long long>(stats.blocks_skipped),
        static_cast<unsigned long long>(stats.items_pruned));
  }
  if (stats.tasks_spawned > 0) {
    out += StringFormat(
        "parallel: %llu morsels, %.2f ms worker time\n",
        static_cast<unsigned long long>(stats.tasks_spawned),
        stats.worker_time_ms);
  }
  if (stats.io_read_failures > 0 || stats.io_write_failures > 0 ||
      stats.io_retries > 0 || stats.io_checksum_failures > 0) {
    out += StringFormat(
        "io faults: %llu read failures, %llu write failures, %llu retries, "
        "%llu checksum failures\n",
        static_cast<unsigned long long>(stats.io_read_failures),
        static_cast<unsigned long long>(stats.io_write_failures),
        static_cast<unsigned long long>(stats.io_retries),
        static_cast<unsigned long long>(stats.io_checksum_failures));
  }
  return out;
}

}  // namespace recdb
