// Session: a per-caller handle onto a shared RecDB for concurrent use.
//
//   auto db = RecDB::Open("ratings.db").value();
//   auto s1 = db->CreateSession();   // e.g. an ingest thread
//   auto s2 = db->CreateSession();   // e.g. a serving thread
//   // s1 and s2 may Execute() concurrently from different threads.
//
// Sessions carry no transactional state; they are named endpoints into the
// database's reader-writer discipline (see RecDB::Execute): SELECT/EXPLAIN
// scripts from any number of sessions run concurrently under the shared
// lock, mutating scripts serialize under the exclusive lock, and WAL group
// commit happens outside both — so one session's INSERT fsync never blocks
// another session's RECOMMEND scan.
//
// An INSERT/DELETE on a ratings table is the online-ingest path: after the
// heap write is WAL-logged, the statement lands the rating in each mapped
// recommender's delta overlay (no model retrain, no CSR invalidation) and,
// past the refresh trigger, hands the merge to the background re-freeze
// lane — concurrent RECOMMENDs keep scoring through the merge view the
// whole time (DESIGN.md §12).
//
// A Session must not outlive its RecDB. Each session is itself single-
// threaded (use one session per thread); the `session.*` metrics in
// docs/OPERATIONS.md track the open population and statement volume.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "api/recdb.h"

namespace recdb {

class Session {
 public:
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parse and execute a script under the database's reader-writer
  /// discipline; returns the last statement's result.
  Result<ResultSet> Execute(const std::string& sql);

  /// Plan a SELECT without executing (EXPLAIN).
  Result<std::string> Explain(const std::string& sql);

  /// Identifier unique within the owning RecDB (1-based, creation order).
  uint64_t id() const { return id_; }

  /// Scripts executed through this session so far.
  uint64_t statements() const { return statements_.load(); }

  /// The shared database this session is a handle onto.
  RecDB* db() const { return db_; }

 private:
  friend class RecDB;
  Session(RecDB* db, uint64_t id);

  RecDB* db_;
  uint64_t id_;
  std::atomic<uint64_t> statements_{0};
};

}  // namespace recdb
