#include "api/snapshot.h"

#include <cstdint>
#include <fstream>

namespace recdb {

namespace {

constexpr char kMagic[] = "RECDBSNAP1";
constexpr size_t kMagicLen = sizeof(kMagic) - 1;

class Writer {
 public:
  explicit Writer(const std::string& path)
      : out_(path, std::ios::binary | std::ios::trunc) {}

  bool ok() const { return static_cast<bool>(out_); }

  template <typename T>
  void Raw(T v) {
    out_.write(reinterpret_cast<const char*>(&v), sizeof(T));
  }
  void Str(const std::string& s) {
    Raw(static_cast<uint32_t>(s.size()));
    out_.write(s.data(), static_cast<std::streamsize>(s.size()));
  }
  void Bytes(const std::vector<uint8_t>& b) {
    Raw(static_cast<uint32_t>(b.size()));
    out_.write(reinterpret_cast<const char*>(b.data()),
               static_cast<std::streamsize>(b.size()));
  }
  void Magic() { out_.write(kMagic, kMagicLen); }

 private:
  std::ofstream out_;
};

class Reader {
 public:
  explicit Reader(const std::string& path)
      : in_(path, std::ios::binary) {}

  bool open() const { return static_cast<bool>(in_); }

  template <typename T>
  Result<T> Raw() {
    T v;
    if (!in_.read(reinterpret_cast<char*>(&v), sizeof(T))) {
      return Status::IOError("snapshot truncated");
    }
    return v;
  }
  Result<std::string> Str() {
    RECDB_ASSIGN_OR_RETURN(uint32_t n, Raw<uint32_t>());
    if (n > (1u << 20)) return Status::IOError("snapshot string too large");
    std::string s(n, '\0');
    if (!in_.read(s.data(), n)) return Status::IOError("snapshot truncated");
    return s;
  }
  Result<std::vector<uint8_t>> Bytes() {
    RECDB_ASSIGN_OR_RETURN(uint32_t n, Raw<uint32_t>());
    if (n > (64u << 20)) return Status::IOError("snapshot blob too large");
    std::vector<uint8_t> b(n);
    if (!in_.read(reinterpret_cast<char*>(b.data()), n)) {
      return Status::IOError("snapshot truncated");
    }
    return b;
  }
  Status Magic() {
    char buf[kMagicLen];
    if (!in_.read(buf, kMagicLen) ||
        std::string(buf, kMagicLen) != kMagic) {
      return Status::IOError("not a recdb snapshot");
    }
    return Status::OK();
  }

 private:
  std::ifstream in_;
};

}  // namespace

Status SaveDatabase(RecDB* db, const std::string& path) {
  Writer w(path);
  if (!w.ok()) return Status::IOError("cannot open " + path + " for write");
  w.Magic();

  auto table_names = db->catalog()->TableNames();
  w.Raw(static_cast<uint32_t>(table_names.size()));
  for (const auto& name : table_names) {
    RECDB_ASSIGN_OR_RETURN(TableInfo * table, db->catalog()->GetTable(name));
    w.Str(table->name);
    w.Raw(static_cast<uint32_t>(table->schema.NumColumns()));
    for (const auto& col : table->schema.columns()) {
      w.Str(col.name);
      w.Raw(static_cast<uint8_t>(col.type));
    }
    w.Raw(static_cast<uint64_t>(table->heap->num_tuples()));
    auto it = table->heap->Begin(table->schema.NumColumns());
    std::vector<uint8_t> bytes;
    while (true) {
      RECDB_ASSIGN_OR_RETURN(auto next, it.Next());
      if (!next.has_value()) break;
      bytes.clear();
      next->second.SerializeTo(&bytes);
      w.Bytes(bytes);
    }
  }

  auto rec_names = db->registry()->Names();
  w.Raw(static_cast<uint32_t>(rec_names.size()));
  for (const auto& name : rec_names) {
    RECDB_ASSIGN_OR_RETURN(Recommender * rec, db->registry()->Get(name));
    const RecommenderConfig& cfg = rec->config();
    w.Str(cfg.name);
    w.Str(cfg.ratings_table);
    w.Str(cfg.user_col);
    w.Str(cfg.item_col);
    w.Str(cfg.rating_col);
    w.Raw(static_cast<uint8_t>(cfg.algorithm));
    w.Raw(cfg.rebuild_threshold);
    w.Raw(cfg.sim_opts.top_k);
    w.Raw(cfg.sim_opts.min_overlap);
    w.Raw(cfg.svd_opts.num_factors);
    w.Raw(cfg.svd_opts.num_epochs);
    w.Raw(cfg.svd_opts.learning_rate);
    w.Raw(cfg.svd_opts.regularization);
    w.Raw(cfg.svd_opts.seed);
    w.Raw(static_cast<uint8_t>(cfg.svd_opts.use_biases ? 1 : 0));
  }
  if (!w.ok()) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<std::unique_ptr<RecDB>> LoadDatabase(const std::string& path,
                                            RecDBOptions options) {
  Reader r(path);
  if (!r.open()) return Status::IOError("cannot open " + path);
  RECDB_RETURN_NOT_OK(r.Magic());

  auto db = std::make_unique<RecDB>(options);

  RECDB_ASSIGN_OR_RETURN(uint32_t num_tables, r.Raw<uint32_t>());
  for (uint32_t t = 0; t < num_tables; ++t) {
    RECDB_ASSIGN_OR_RETURN(std::string name, r.Str());
    RECDB_ASSIGN_OR_RETURN(uint32_t ncols, r.Raw<uint32_t>());
    std::vector<Column> cols;
    for (uint32_t c = 0; c < ncols; ++c) {
      RECDB_ASSIGN_OR_RETURN(std::string col_name, r.Str());
      RECDB_ASSIGN_OR_RETURN(uint8_t type, r.Raw<uint8_t>());
      if (type > static_cast<uint8_t>(TypeId::kGeometry)) {
        return Status::IOError("snapshot has unknown column type");
      }
      cols.emplace_back(std::move(col_name), static_cast<TypeId>(type));
    }
    RECDB_ASSIGN_OR_RETURN(
        TableInfo * table,
        db->catalog()->CreateTable(name, Schema(std::move(cols))));
    RECDB_ASSIGN_OR_RETURN(uint64_t nrows, r.Raw<uint64_t>());
    for (uint64_t row = 0; row < nrows; ++row) {
      RECDB_ASSIGN_OR_RETURN(auto bytes, r.Bytes());
      RECDB_ASSIGN_OR_RETURN(
          Tuple tuple,
          Tuple::DeserializeFrom(bytes.data(), bytes.size(),
                                 table->schema.NumColumns()));
      RECDB_RETURN_NOT_OK(table->heap->Insert(tuple).status());
    }
  }

  RECDB_ASSIGN_OR_RETURN(uint32_t num_recs, r.Raw<uint32_t>());
  for (uint32_t i = 0; i < num_recs; ++i) {
    RecommenderConfig cfg;
    RECDB_ASSIGN_OR_RETURN(cfg.name, r.Str());
    RECDB_ASSIGN_OR_RETURN(cfg.ratings_table, r.Str());
    RECDB_ASSIGN_OR_RETURN(cfg.user_col, r.Str());
    RECDB_ASSIGN_OR_RETURN(cfg.item_col, r.Str());
    RECDB_ASSIGN_OR_RETURN(cfg.rating_col, r.Str());
    RECDB_ASSIGN_OR_RETURN(uint8_t algo, r.Raw<uint8_t>());
    if (algo > static_cast<uint8_t>(RecAlgorithm::kSVD)) {
      return Status::IOError("snapshot has unknown algorithm");
    }
    cfg.algorithm = static_cast<RecAlgorithm>(algo);
    RECDB_ASSIGN_OR_RETURN(cfg.rebuild_threshold, r.Raw<double>());
    RECDB_ASSIGN_OR_RETURN(cfg.sim_opts.top_k, r.Raw<int32_t>());
    RECDB_ASSIGN_OR_RETURN(cfg.sim_opts.min_overlap, r.Raw<int32_t>());
    RECDB_ASSIGN_OR_RETURN(cfg.svd_opts.num_factors, r.Raw<int32_t>());
    RECDB_ASSIGN_OR_RETURN(cfg.svd_opts.num_epochs, r.Raw<int32_t>());
    RECDB_ASSIGN_OR_RETURN(cfg.svd_opts.learning_rate, r.Raw<double>());
    RECDB_ASSIGN_OR_RETURN(cfg.svd_opts.regularization, r.Raw<double>());
    RECDB_ASSIGN_OR_RETURN(cfg.svd_opts.seed, r.Raw<uint64_t>());
    RECDB_ASSIGN_OR_RETURN(uint8_t biases, r.Raw<uint8_t>());
    cfg.svd_opts.use_biases = biases != 0;
    RECDB_RETURN_NOT_OK(db->CreateRecommender(std::move(cfg)).status());
  }
  return db;
}

}  // namespace recdb
