// RecDB: the embedded database facade — the library's main entry point.
//
//   recdb::RecDB db;
//   db.Execute("CREATE TABLE Ratings (uid INT, iid INT, ratingval DOUBLE)");
//   db.Execute("INSERT INTO Ratings VALUES (1, 1, 4.5), (2, 1, 3.0)");
//   db.Execute("CREATE RECOMMENDER GeneralRec ON Ratings USERS FROM uid "
//              "ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF");
//   auto rs = db.Execute("SELECT R.iid, R.ratingval FROM Ratings AS R "
//                        "RECOMMEND R.iid TO R.uid ON R.ratingval "
//                        "USING ItemCosCF WHERE R.uid = 1 "
//                        "ORDER BY R.ratingval DESC LIMIT 10");
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "api/recommender_registry.h"
#include "cache/cache_manager.h"
#include "common/status.h"
#include "execution/executor.h"
#include "obs/tracer.h"
#include "planner/optimizer.h"
#include "planner/planner.h"
#include "storage/catalog.h"

namespace recdb {

struct RecDBOptions {
  /// Buffer-pool frames (pages of kPageSize bytes).
  size_t buffer_pool_pages = 4096;
  /// Planner / optimizer rule toggles.
  PlannerOptions planner;
  /// Maintenance threshold (the paper's N%) used for new recommenders.
  double rebuild_threshold = 0.10;
  /// Model hyperparameters for new recommenders.
  SimilarityOptions sim_opts;
  SvdOptions svd_opts;
  /// Check the rebuild threshold after every ratings insert.
  bool auto_maintain = false;
  /// Worker threads for morsel-parallel scoring and model builds; 0 leaves
  /// the process-wide scheduler unchanged (it defaults to 1 = serial).
  /// Runtime-adjustable via `SET parallelism = N`.
  size_t parallelism = 0;
  /// Record a per-query span tree (parse -> plan -> execute with one span
  /// per executor node) into ResultSet::trace / last_trace(). Runtime-
  /// adjustable via `SET trace = on|off`. Off by default: the executor hot
  /// path then skips all timing and allocates nothing for tracing.
  bool trace = false;
};

/// Result of one executed statement.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Tuple> rows;
  /// For DDL/DML statements: a human-readable confirmation.
  std::string message;
  /// Optimized physical plan (SELECT only).
  std::string plan;
  /// Rendered span tree of the script (non-empty only under SET trace = on).
  std::string trace;
  ExecStats stats;
  double elapsed_seconds = 0;

  size_t NumRows() const { return rows.size(); }
  const Value& At(size_t row, size_t col) const { return rows[row].At(col); }
  /// Tabular rendering (up to `max_rows` rows).
  std::string ToString(size_t max_rows = 20) const;
};

class RecDB {
 public:
  /// In-memory database by default; pass a DiskManager (e.g. a
  /// FileDiskManager or a FaultInjectingDiskManager) to run over a
  /// different device.
  explicit RecDB(RecDBOptions options = {},
                 std::unique_ptr<DiskManager> disk = nullptr);
  ~RecDB();

  RecDB(const RecDB&) = delete;
  RecDB& operator=(const RecDB&) = delete;

  /// Open (or create) a file-backed database at `path`. Reopening a file
  /// restores every table and re-trains every recommender from its
  /// persisted catalog (training is deterministic, so a reopened database
  /// answers RECOMMEND queries identically). Corrupt pages surface as
  /// kDataLoss.
  static Result<std::unique_ptr<RecDB>> Open(const std::string& path,
                                             RecDBOptions options = {});

  /// Flush dirty pages, persist the catalog + recommender registry, and
  /// issue the durability barrier. No-op for in-memory databases.
  Status Checkpoint();

  /// Checkpoint and release the storage file. The destructor calls this
  /// best-effort; call it explicitly to observe failures.
  Status Close();

  /// Parse and execute a script; returns the last statement's result.
  Result<ResultSet> Execute(const std::string& sql);

  /// Plan a SELECT without executing (EXPLAIN).
  Result<std::string> Explain(const std::string& sql);

  /// JSON snapshot of the process-wide MetricsRegistry (every counter,
  /// gauge, and histogram in src/obs/metric_names.h) for programmatic
  /// scrapes; see docs/OPERATIONS.md for the field reference.
  static std::string MetricsJson();

  /// Rendered span tree of the most recent traced Execute() call (empty
  /// until a statement runs under `SET trace = on`).
  const std::string& last_trace() const { return last_trace_; }

  // --- direct access for tools, tests and benchmarks ---
  Catalog* catalog() { return catalog_.get(); }
  RecommenderRegistry* registry() { return &registry_; }
  BufferPool* buffer_pool() { return pool_.get(); }
  DiskManager* disk() { return disk_.get(); }
  PlannerOptions* mutable_planner_options() { return &options_.planner; }
  const RecDBOptions& options() const { return options_; }

  /// Recommender by name.
  Result<Recommender*> GetRecommender(const std::string& name) {
    return registry_.Get(name);
  }

  /// Programmatic CREATE RECOMMENDER: registers the recommender, loads the
  /// configured ratings table into it, and trains the model. The SQL path
  /// uses this too; call it directly to set non-default hyperparameters.
  Result<Recommender*> CreateRecommender(RecommenderConfig config);

  /// Cache manager for a recommender (created lazily, shared clock).
  Result<CacheManager*> GetCacheManager(const std::string& recommender,
                                        double hotness_threshold = 0.5);

  /// The clock used by cache managers; swap in a ManualClock for
  /// deterministic experiments (must outlive the RecDB).
  void set_clock(const Clock* clock) { clock_ = clock; }

  /// Fast bulk-insert path used by data loaders: appends tuples directly
  /// (values must already match the table schema) and feeds recommenders.
  Status BulkInsert(const std::string& table,
                    const std::vector<std::vector<Value>>& rows);

 private:
  /// Execute() body; split out so the caller can finish/render the tracer
  /// on every path, including mid-script errors.
  Result<ResultSet> ExecuteScript(const std::string& sql);
  Result<ResultSet> ExecuteStatement(const Statement& stmt);
  Result<ResultSet> ExecuteSelect(const SelectStatement& stmt);
  Result<ResultSet> ExecuteCreateTable(const CreateTableStatement& stmt);
  Result<ResultSet> ExecuteInsert(const InsertStatement& stmt);
  Result<ResultSet> ExecuteCreateRecommender(
      const CreateRecommenderStatement& stmt);
  Result<ResultSet> ExecuteDelete(const DeleteStatement& stmt);
  Result<ResultSet> ExecuteUpdate(const UpdateStatement& stmt);
  Result<ResultSet> ExecuteSet(const SetStatement& stmt);
  Result<ResultSet> ExecuteAnalyze(const AnalyzeStatement& stmt);

  /// Rows of a table matching an optional WHERE (shared by DELETE/UPDATE).
  Result<std::vector<std::pair<Rid, Tuple>>> CollectMatching(
      TableInfo* table, const Expr* where);

  /// Feed one inserted ratings row to every recommender on `table` and to
  /// their cache managers' item histograms.
  Status NotifyInsert(const std::string& table, const Schema& schema,
                      const Tuple& tuple);

  /// Reflect a deleted ratings row in every recommender on `table`.
  Status NotifyDelete(const std::string& table, const Schema& schema,
                      const Tuple& tuple);

  /// Record query demand (user histogram) for a RECOMMEND query.
  void NotifyRecommendQuery(const PlanNode& plan);

  /// Serialize the catalog + recommender configs into the meta-page chain
  /// rooted at page 0 (file-backed databases only).
  Status PersistMeta();

  /// Rebuild catalog and recommenders from the meta-page chain.
  Status LoadMeta();

  RecDBOptions options_;
  std::unique_ptr<DiskManager> disk_;
  std::vector<page_id_t> meta_pages_;
  bool closed_ = false;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<Catalog> catalog_;
  RecommenderRegistry registry_;
  SystemClock default_clock_;
  const Clock* clock_;
  std::unordered_map<std::string, std::unique_ptr<CacheManager>>
      cache_managers_;
  /// `SET trace = on` state; seeded from RecDBOptions::trace.
  bool trace_enabled_ = false;
  /// Live tracer for the Execute() call in flight (null when tracing off).
  std::unique_ptr<obs::Tracer> active_tracer_;
  std::string last_trace_;
};

}  // namespace recdb
