// RecDB: the embedded database facade — the library's main entry point.
//
//   recdb::RecDB db;
//   db.Execute("CREATE TABLE Ratings (uid INT, iid INT, ratingval DOUBLE)");
//   db.Execute("INSERT INTO Ratings VALUES (1, 1, 4.5), (2, 1, 3.0)");
//   db.Execute("CREATE RECOMMENDER GeneralRec ON Ratings USERS FROM uid "
//              "ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF");
//   auto rs = db.Execute("SELECT R.iid, R.ratingval FROM Ratings AS R "
//                        "RECOMMEND R.iid TO R.uid ON R.ratingval "
//                        "USING ItemCosCF WHERE R.uid = 1 "
//                        "ORDER BY R.ratingval DESC LIMIT 10");
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/recommender_registry.h"
#include "cache/cache_manager.h"
#include "common/status.h"
#include "execution/executor.h"
#include "obs/tracer.h"
#include "planner/optimizer.h"
#include "planner/planner.h"
#include "storage/catalog.h"
#include "storage/log_manager.h"

namespace recdb {

class Session;

struct RecDBOptions {
  /// Buffer-pool frames (pages of kPageSize bytes).
  size_t buffer_pool_pages = 4096;
  /// Planner / optimizer rule toggles.
  PlannerOptions planner;
  /// Maintenance threshold (the paper's N%) used for new recommenders.
  double rebuild_threshold = 0.10;
  /// Model hyperparameters for new recommenders.
  SimilarityOptions sim_opts;
  SvdOptions svd_opts;
  /// Check the rebuild threshold after every ratings insert. Since PR 7
  /// reaching it triggers an incremental refresh (delta merge + model row
  /// updates), never a full retrain.
  bool auto_maintain = false;
  /// Hand re-freeze/merge work to the TaskScheduler's background lane when
  /// a recommender's delta log reaches its refresh trigger (ignored when
  /// auto_maintain already refreshes inline). Runtime-adjustable via
  /// `SET background_refresh = on|off`. Off by default: tests and
  /// single-threaded embedders keep fully deterministic timing.
  bool background_refresh = false;
  /// Background refresh trigger for new recommenders: refresh once the
  /// delta log reaches max(min_refresh_ops, refresh_threshold * base).
  double refresh_threshold = 0.05;
  size_t min_refresh_ops = 32;
  /// Worker threads for morsel-parallel scoring and model builds; 0 leaves
  /// the process-wide scheduler unchanged (it defaults to 1 = serial).
  /// Runtime-adjustable via `SET parallelism = N`.
  size_t parallelism = 0;
  /// Record a per-query span tree (parse -> plan -> execute with one span
  /// per executor node) into ResultSet::trace / last_trace(). Runtime-
  /// adjustable via `SET trace = on|off`. Off by default: the executor hot
  /// path then skips all timing and allocates nothing for tracing.
  bool trace = false;
  /// Serving-layer user partition (DESIGN.md §14, docs/SCALING.md). With
  /// shard_count > 1 this engine is one shard of a ShardedRecDB: RECOMMEND
  /// executors score only the users `shard_index` owns (ShardOfUser), DML
  /// on tables declared partitioned lands only owned rows in the heap/WAL,
  /// and cache demand is recorded for owned users only. The model plane
  /// stays replicated — every shard's RatingMatrix sees the full rating
  /// stream — so per-shard scores are bit-identical to single-node.
  /// Runtime-adjustable via `SET shard_count` / `SET shard_index`; both
  /// reject out-of-range values (shard_count in [1, kMaxShardCount],
  /// shard_index in [0, shard_count)) instead of clamping.
  size_t shard_count = 1;
  size_t shard_index = 0;
};

/// Range-check the shard/serving knobs. Invalid combinations surface as
/// InvalidArgument here (and from Open / SET / the first Execute) rather
/// than being silently clamped.
Status ValidateShardOptions(const RecDBOptions& options);

/// Result of one executed statement.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Tuple> rows;
  /// For DDL/DML statements: a human-readable confirmation.
  std::string message;
  /// Optimized physical plan (SELECT only).
  std::string plan;
  /// Rendered span tree of the script (non-empty only under SET trace = on).
  std::string trace;
  ExecStats stats;
  double elapsed_seconds = 0;
  /// One ratings-row mutation observed by a DELETE/UPDATE on a partitioned
  /// table (sharded engines only; empty otherwise). The ShardedRecDB router
  /// cross-feeds these to the other shards' replicated models via
  /// ApplyRatingFeed, since only the owning shard's heap scan could observe
  /// the rows.
  struct RatingFeedOp {
    bool remove = false;
    std::vector<Value> values;  // full row, in table-schema order
  };
  std::vector<RatingFeedOp> rating_ops;

  size_t NumRows() const { return rows.size(); }
  const Value& At(size_t row, size_t col) const { return rows[row].At(col); }
  /// Tabular rendering (up to `max_rows` rows).
  std::string ToString(size_t max_rows = 20) const;
};

class RecDB {
 public:
  /// In-memory database by default; pass a DiskManager (e.g. a
  /// FileDiskManager or a FaultInjectingDiskManager) to run over a
  /// different device.
  explicit RecDB(RecDBOptions options = {},
                 std::unique_ptr<DiskManager> disk = nullptr);
  ~RecDB();

  RecDB(const RecDB&) = delete;
  RecDB& operator=(const RecDB&) = delete;

  /// Open (or create) a file-backed database at `path`, with its WAL at
  /// `path + ".wal"`. Reopening a file restores every table from its
  /// persisted catalog, REDO-replays the durable log suffix over the last
  /// checkpoint, and re-trains every recommender from the recovered heaps
  /// (training is deterministic, so a reopened database answers RECOMMEND
  /// queries identically). Corrupt pages surface as kDataLoss.
  static Result<std::unique_ptr<RecDB>> Open(const std::string& path,
                                             RecDBOptions options = {});

  /// Open over explicit devices — how fault tests wrap both the data file
  /// and the WAL in FaultInjectingDiskManagers. `wal` may be null for a
  /// log-less database (in-memory semantics over any device).
  static Result<std::unique_ptr<RecDB>> OpenWithDisks(
      std::unique_ptr<DiskManager> data, std::unique_ptr<DiskManager> wal,
      RecDBOptions options = {});

  /// Flush dirty pages, persist the catalog + recommender registry, and
  /// issue the durability barrier. No-op for in-memory databases.
  Status Checkpoint();

  /// Checkpoint and release the storage file. The destructor calls this
  /// best-effort; call it explicitly to observe failures.
  Status Close();

  /// Parse and execute a script; returns the last statement's result.
  ///
  /// Concurrency: scripts containing only SELECT/EXPLAIN run under a shared
  /// lock (any number in parallel); scripts with any mutating statement
  /// take the exclusive lock. WAL group commit happens after the lock is
  /// released, so an INSERT's fsync never blocks concurrent RECOMMEND
  /// scans — they read the consistent pre- or post-statement snapshot.
  Result<ResultSet> Execute(const std::string& sql);

  /// A per-caller handle for concurrent use; see api/session.h. Sessions
  /// share this RecDB's state and must not outlive it.
  std::unique_ptr<Session> CreateSession();

  /// Plan a SELECT without executing (EXPLAIN).
  Result<std::string> Explain(const std::string& sql);

  /// JSON snapshot of the process-wide MetricsRegistry (every counter,
  /// gauge, and histogram in src/obs/metric_names.h) for programmatic
  /// scrapes; see docs/OPERATIONS.md for the field reference.
  static std::string MetricsJson();

  /// Rendered span tree of the most recent traced Execute() call (empty
  /// until a statement runs under `SET trace = on`).
  const std::string& last_trace() const { return last_trace_; }

  // --- direct access for tools, tests and benchmarks ---
  Catalog* catalog() { return catalog_.get(); }
  RecommenderRegistry* registry() { return &registry_; }
  BufferPool* buffer_pool() { return pool_.get(); }
  DiskManager* disk() { return disk_.get(); }
  LogManager* wal() { return log_.get(); }
  PlannerOptions* mutable_planner_options() { return &options_.planner; }
  const RecDBOptions& options() const { return options_; }

  /// Recommender by name.
  Result<Recommender*> GetRecommender(const std::string& name) {
    return registry_.Get(name);
  }

  /// Programmatic CREATE RECOMMENDER: registers the recommender, loads the
  /// configured ratings table into it, and trains the model. The SQL path
  /// uses this too; call it directly to set non-default hyperparameters.
  Result<Recommender*> CreateRecommender(RecommenderConfig config);

  /// Cache manager for a recommender (created lazily, shared clock). Also
  /// wires the recommender's invalidation listener so ingest-staled index
  /// entries are queued for lazy re-materialization.
  Result<CacheManager*> GetCacheManager(const std::string& recommender,
                                        double hotness_threshold = 0.5);

  /// Merge a recommender's pending delta into a fresh frozen base and
  /// incrementally update its model (two-phase: prepare under the shared
  /// lock, commit under the exclusive lock). Returns whether a merge
  /// happened. The background refresh job runs exactly this.
  Result<bool> RefreshRecommender(const std::string& name);

  /// Block until the background-refresh lane is idle (tests).
  void DrainBackgroundWork();

  /// The clock used by cache managers; swap in a ManualClock for
  /// deterministic experiments (must outlive the RecDB).
  void set_clock(const Clock* clock) { clock_ = clock; }

  /// Fast bulk-insert path used by data loaders: appends tuples directly
  /// (values must already match the table schema) and feeds recommenders.
  Status BulkInsert(const std::string& table,
                    const std::vector<std::vector<Value>>& rows);

  // --- sharded serving hooks (DESIGN.md §14; driven by ShardedRecDB) ---

  /// Declare `table` user-partitioned on `user_col`: with shard_count > 1,
  /// INSERT/BulkInsert land only rows owned by this shard's index in the
  /// heap (and thus the WAL), while every row still feeds the replicated
  /// models. The router broadcasts this to all shards before loading.
  Status DeclarePartitionedTable(const std::string& table,
                                 const std::string& user_col);

  /// Apply another shard's DELETE/UPDATE rating mutations to this shard's
  /// replicated models (matrix delta + cache update pressure + maintenance
  /// check). The local heap is untouched — the owning shard already holds
  /// the rows.
  Status ApplyRatingFeed(const std::string& table,
                         const std::vector<ResultSet::RatingFeedOp>& ops);

  /// CREATE RECOMMENDER over a pre-built (frozen) ratings matrix instead of
  /// scanning this shard's heap. The router's gather path uses this so every
  /// shard trains from the identical canonically-ordered matrix even though
  /// each heap holds only its own partition.
  Result<Recommender*> CreateRecommenderWithMatrix(
      RecommenderConfig config, std::shared_ptr<RatingMatrix> matrix);

 private:
  friend class Session;

  /// Tracing path of Execute(): always exclusive (the tracer is shared
  /// state), parses inside the lock so the parse span lands in the trace.
  Result<ResultSet> ExecuteTraced(const std::string& sql);
  /// Statement loop + per-script I/O fault deltas. Caller holds state_mu_.
  Result<ResultSet> RunStatements(
      const std::vector<std::unique_ptr<Statement>>& stmts);
  Result<ResultSet> ExecuteStatement(const Statement& stmt);
  Result<ResultSet> ExecuteSelect(const SelectStatement& stmt);
  Result<ResultSet> ExecuteCreateTable(const CreateTableStatement& stmt);
  Result<ResultSet> ExecuteInsert(const InsertStatement& stmt);
  Result<ResultSet> ExecuteCreateRecommender(
      const CreateRecommenderStatement& stmt);
  Result<ResultSet> ExecuteDelete(const DeleteStatement& stmt);
  Result<ResultSet> ExecuteUpdate(const UpdateStatement& stmt);
  Result<ResultSet> ExecuteSet(const SetStatement& stmt);
  Result<ResultSet> ExecuteAnalyze(const AnalyzeStatement& stmt);

  /// Rows of a table matching an optional WHERE (shared by DELETE/UPDATE).
  Result<std::vector<std::pair<Rid, Tuple>>> CollectMatching(
      TableInfo* table, const Expr* where);

  /// One ratings-row mutation of a DML statement (insert or delete; an
  /// UPDATE contributes a delete of the old row then an insert of the new).
  struct RatingRowOp {
    bool remove = false;
    const Tuple* tuple = nullptr;  // borrowed; alive for the statement
  };

  /// Feed one statement's ratings-row mutations to every recommender on
  /// `table` as a single versioned delta batch (one version bump, one
  /// invalidation callback, one maintenance check per recommender), and to
  /// their cache managers' item histograms.
  Status NotifyRatingOps(const std::string& table, const Schema& schema,
                         const std::vector<RatingRowOp>& ops);

  /// Column index of `table`'s declared partition user column, or SIZE_MAX
  /// when the serving filter is inactive (single shard / undeclared table).
  size_t PartitionUserIndexLocked(const TableInfo& table) const;

  /// Record query demand (user histogram) for a RECOMMEND query. Takes
  /// demand_mu_: concurrent shared-lock readers funnel through here.
  void NotifyRecommendQuery(const PlanNode& plan);
  void NotifyRecommendQueryLocked(const PlanNode& plan);

  /// CreateRecommender body; caller holds the exclusive lock. With
  /// `write_log`, appends a kCreateRecommender WAL record on success
  /// (recovery passes false — replayed records must not re-log). Recovery
  /// may pass a `preloaded` ratings matrix (already frozen) so recommenders
  /// sharing one ratings table share one CSR build instead of re-scanning
  /// and re-freezing per model.
  Result<Recommender*> CreateRecommenderLocked(
      RecommenderConfig config, bool write_log,
      std::shared_ptr<RatingMatrix> preloaded = nullptr);

  /// Load a ratings table into a fresh matrix (recovery fast path).
  Result<std::shared_ptr<RatingMatrix>> LoadRatingsMatrix(
      const RecommenderConfig& config);

  /// Queue a background re-freeze for `name` if none is in flight.
  void ScheduleBackgroundRefresh(const std::string& name);
  /// Background lane body: two-phase refresh with optimistic retry.
  void BackgroundRefreshJob(const std::string& name);

  /// Serialize the catalog + recommender configs into the meta-page chain
  /// rooted at page 0 (file-backed databases only). `checkpoint_lsn` names
  /// the log position this snapshot covers; recovery skips records at or
  /// below it.
  Status PersistMeta(Lsn checkpoint_lsn);

  /// Rebuild the catalog from the meta-page chain. Recommender configs are
  /// collected into `configs` rather than created: recovery trains models
  /// only after REDO has restored the final heap contents.
  Status LoadMeta(std::vector<RecommenderConfig>* configs);

  /// Post-LoadMeta recovery: REDO the recovered log suffix, repair dangling
  /// heap tail links, train recommenders over the final heaps, and
  /// checkpoint if anything changed.
  Status Recover(bool existing);
  Status Redo(std::vector<WalRecord> records,
              std::vector<RecommenderConfig>* configs, size_t* replayed);
  Status RepairHeapTails(bool* repaired);
  void AttachWalToHeaps();

  /// Checkpoint body; caller holds the exclusive lock. Order matters for
  /// crash safety: data pages flush first, then the catalog snapshot naming
  /// `checkpoint_lsn` becomes durable, and only then may the log truncate.
  Status CheckpointLocked();

  /// Group-commit every record up to the log's current newest LSN. Called
  /// after the exclusive lock is released so the fsync never blocks
  /// readers.
  Status CommitWal();

  RecDBOptions options_;
  /// ValidateShardOptions result for directly-constructed engines (the
  /// constructor cannot return a Status); Execute/BulkInsert surface it.
  Status options_status_ = Status::OK();
  /// Tables declared user-partitioned: lower(table) -> user column name.
  std::unordered_map<std::string, std::string> partitioned_tables_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<LogManager> log_;
  std::vector<page_id_t> meta_pages_;
  /// Log position covered by the on-disk catalog snapshot.
  Lsn checkpoint_lsn_ = 0;
  std::atomic<bool> closed_{false};
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<Catalog> catalog_;
  RecommenderRegistry registry_;
  SystemClock default_clock_;
  const Clock* clock_;
  std::unordered_map<std::string, std::unique_ptr<CacheManager>>
      cache_managers_;

  /// Reader-writer discipline over all engine state: SELECT/EXPLAIN scripts
  /// hold it shared, anything mutating holds it exclusive. WAL commit
  /// (fsync) happens outside it. Lock order: state_mu_ -> pool mutex ->
  /// log mutex; never the reverse.
  mutable std::shared_mutex state_mu_;
  /// Serializes cache-manager demand recording among concurrent readers.
  std::mutex demand_mu_;
  std::atomic<uint64_t> next_session_id_{1};

  /// `SET background_refresh = on|off` state; seeded from RecDBOptions.
  std::atomic<bool> background_refresh_{false};
  /// `SET trace = on` state; seeded from RecDBOptions::trace.
  std::atomic<bool> trace_enabled_{false};
  /// Live tracer for the Execute() call in flight (null when tracing off;
  /// guarded by the exclusive lock — tracing scripts never run shared).
  std::unique_ptr<obs::Tracer> active_tracer_;
  std::string last_trace_;
};

}  // namespace recdb
