// Registry of recommenders created via CREATE RECOMMENDER.
//
// The paper's query model: a RECOMMEND clause names a ratings table and an
// algorithm; the engine locates the recommender that was created on that
// table with that algorithm (e.g. Query 2 "figures that an ItemCosCF
// recommender, i.e. GeneralRec, is already created").
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "recommender/recommender.h"

namespace recdb {

class RecommenderRegistry {
 public:
  /// Register a recommender; AlreadyExists on duplicate name.
  Result<Recommender*> Create(RecommenderConfig config);

  /// Look up by name (case-insensitive).
  Result<Recommender*> Get(const std::string& name) const;

  /// Locate the recommender built on `ratings_table` with `algorithm`
  /// (the RECOMMEND clause's resolution rule). NotFound when absent.
  Result<Recommender*> Find(const std::string& ratings_table,
                            RecAlgorithm algorithm) const;

  /// All recommenders whose source is `ratings_table` (insert fan-out).
  std::vector<Recommender*> FindAllOnTable(
      const std::string& ratings_table) const;

  Status Drop(const std::string& name);

  std::vector<std::string> Names() const;
  size_t Count() const { return recs_.size(); }

 private:
  std::unordered_map<std::string, std::unique_ptr<Recommender>> recs_;
};

}  // namespace recdb
