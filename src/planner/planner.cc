#include "planner/planner.h"

#include "common/string_util.h"
#include "common/task_scheduler.h"

namespace recdb {

std::string PlannerOptionsSummary(const PlannerOptions& options) {
  auto onoff = [](bool b) { return b ? "on" : "off"; };
  return StringFormat(
      "options: filter_recommend=%s join_recommend=%s index_recommend=%s "
      "hash_join=%s cost_based=%s pruned_topn=%s parallelism=%zu",
      onoff(options.enable_filter_recommend),
      onoff(options.enable_join_recommend),
      onoff(options.enable_index_recommend), onoff(options.enable_hash_join),
      onoff(options.enable_cost_based), onoff(options.enable_pruned_topn),
      TaskScheduler::Global().num_threads());
}

namespace {

/// Aggregate function name -> kind (lower-cased names; parser lower-cases
/// function names).
std::optional<AggKind> AggKindFromName(const std::string& name) {
  if (name == "count") return AggKind::kCount;
  if (name == "sum") return AggKind::kSum;
  if (name == "avg") return AggKind::kAvg;
  if (name == "min") return AggKind::kMin;
  if (name == "max") return AggKind::kMax;
  return std::nullopt;
}

bool ContainsAggregate(const Expr& e) {
  if (e.kind == ExprKind::kFunctionCall &&
      AggKindFromName(e.func_name).has_value()) {
    return true;
  }
  if (e.left && ContainsAggregate(*e.left)) return true;
  if (e.right && ContainsAggregate(*e.right)) return true;
  for (const auto& a : e.args) {
    if (ContainsAggregate(*a)) return true;
  }
  return false;
}

/// State threaded through the aggregation rewrite: the GROUP BY expression
/// strings and the aggregate calls collected so far (deduplicated by their
/// textual form).
struct AggRewrite {
  std::vector<std::string> group_strs;
  std::vector<bool> group_is_colref;
  std::vector<std::pair<AggKind, ExprPtr>> aggs;  // arg null for COUNT(*)
  std::vector<std::string> agg_strs;
};

/// Rewrite an expression for evaluation above the Aggregate node: GROUP BY
/// subexpressions become references to the group columns, aggregate calls
/// become references to the synthetic __aggN columns.
Status RewriteForAggregation(ExprPtr* ep, AggRewrite* rw) {
  Expr& e = **ep;
  std::string text = e.ToString();
  for (size_t k = 0; k < rw->group_strs.size(); ++k) {
    if (text == rw->group_strs[k]) {
      // Plain column refs survive (the aggregate output keeps their name);
      // computed group keys are renamed to their synthetic column.
      if (!rw->group_is_colref[k]) {
        *ep = Expr::MakeColumnRef("", "__grp" + std::to_string(k));
      }
      return Status::OK();
    }
  }
  if (e.kind == ExprKind::kFunctionCall) {
    if (auto kind = AggKindFromName(e.func_name)) {
      if (e.args.size() != 1) {
        return Status::BindError(e.func_name + " expects one argument");
      }
      bool star = e.args[0]->kind == ExprKind::kColumnRef &&
                  e.args[0]->column == "*";
      if (star && *kind != AggKind::kCount) {
        return Status::BindError("'*' argument is only valid in COUNT(*)");
      }
      if (!star && ContainsAggregate(*e.args[0])) {
        return Status::BindError("nested aggregate functions");
      }
      size_t idx;
      for (idx = 0; idx < rw->agg_strs.size(); ++idx) {
        if (rw->agg_strs[idx] == text) break;
      }
      if (idx == rw->agg_strs.size()) {
        rw->agg_strs.push_back(text);
        rw->aggs.emplace_back(star ? AggKind::kCountStar : *kind,
                              star ? nullptr : e.args[0]->Clone());
      }
      *ep = Expr::MakeColumnRef("", "__agg" + std::to_string(idx));
      return Status::OK();
    }
  }
  if (e.left) RECDB_RETURN_NOT_OK(RewriteForAggregation(&e.left, rw));
  if (e.right) RECDB_RETURN_NOT_OK(RewriteForAggregation(&e.right, rw));
  for (auto& a : e.args) RECDB_RETURN_NOT_OK(RewriteForAggregation(&a, rw));
  return Status::OK();
}

}  // namespace

Result<size_t> Planner::FindRecommendTarget(
    const SelectStatement& stmt) const {
  RECDB_DCHECK(stmt.recommend.has_value());
  const RecommendClause& rc = *stmt.recommend;
  // The clause's three column refs must agree on their qualifier.
  const std::string& q = rc.user_col->qualifier;
  if (rc.item_col->qualifier != q || rc.rating_col->qualifier != q) {
    return Status::BindError(
        "RECOMMEND clause columns must reference the same table");
  }
  if (q.empty()) {
    if (stmt.from.size() != 1) {
      return Status::BindError(
          "unqualified RECOMMEND columns are ambiguous with multiple tables");
    }
    return size_t{0};
  }
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    if (EqualsIgnoreCase(stmt.from[i].EffectiveAlias(), q)) return i;
  }
  return Status::BindError("RECOMMEND clause references unknown alias " + q);
}

Result<PlanNodePtr> Planner::PlanTableRef(const SelectStatement& stmt,
                                          const TableRef& ref,
                                          bool is_recommend_target) {
  RECDB_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(ref.table_name));
  // The table's schema, with this reference's alias on every column.
  ExecSchema schema;
  for (const auto& col : table->schema.columns()) {
    schema.Add(ExecColumn{ref.EffectiveAlias(), col.name, col.type});
  }

  if (!is_recommend_target) {
    auto scan = std::make_unique<SeqScanPlan>();
    scan->table = table;
    scan->alias = ref.EffectiveAlias();
    scan->schema = std::move(schema);
    return PlanNodePtr(std::move(scan));
  }

  const RecommendClause& rc = *stmt.recommend;
  RecAlgorithm algo = kDefaultAlgorithm;
  if (rc.algorithm.has_value()) {
    RECDB_ASSIGN_OR_RETURN(algo, RecAlgorithmFromString(*rc.algorithm));
  }
  RECDB_ASSIGN_OR_RETURN(Recommender * rec,
                         registry_->Find(ref.table_name, algo));
  if (rec->model() == nullptr) {
    return Status::PlanError("recommender " + rec->name() +
                             " has not been initialized");
  }

  auto node = std::make_unique<RecommendPlan>();
  node->rec = rec;
  node->table = table;
  node->alias = ref.EffectiveAlias();
  node->include_rated = options_.include_rated;
  RECDB_ASSIGN_OR_RETURN(node->user_col_idx,
                         table->schema.IndexOf(rc.user_col->column));
  RECDB_ASSIGN_OR_RETURN(node->item_col_idx,
                         table->schema.IndexOf(rc.item_col->column));
  RECDB_ASSIGN_OR_RETURN(node->rating_col_idx,
                         table->schema.IndexOf(rc.rating_col->column));
  // Predicted scores are doubles regardless of the stored rating type.
  {
    std::vector<ExecColumn> cols = schema.columns();
    cols[node->rating_col_idx].type = TypeId::kDouble;
    node->schema = ExecSchema(std::move(cols));
  }
  return PlanNodePtr(std::move(node));
}

Result<PlannedQuery> Planner::PlanSelect(const SelectStatement& stmt) {
  if (stmt.from.empty()) {
    return Status::PlanError("FROM clause is required");
  }
  // Reject duplicate aliases.
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    for (size_t j = i + 1; j < stmt.from.size(); ++j) {
      if (EqualsIgnoreCase(stmt.from[i].EffectiveAlias(),
                           stmt.from[j].EffectiveAlias())) {
        return Status::BindError("duplicate table alias " +
                                 stmt.from[i].EffectiveAlias());
      }
    }
  }

  size_t rec_target = stmt.from.size();  // sentinel: none
  if (stmt.recommend.has_value()) {
    RECDB_ASSIGN_OR_RETURN(rec_target, FindRecommendTarget(stmt));
  }

  // Base inputs, combined left-deep with cross joins (predicates arrive via
  // WHERE and are pushed down by the optimizer).
  PlanNodePtr root;
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    RECDB_ASSIGN_OR_RETURN(
        auto input, PlanTableRef(stmt, stmt.from[i], i == rec_target));
    if (root == nullptr) {
      root = std::move(input);
    } else {
      auto join = std::make_unique<NestedLoopJoinPlan>();
      join->schema = ExecSchema::Concat(root->schema, input->schema);
      join->children.push_back(std::move(root));
      join->children.push_back(std::move(input));
      root = std::move(join);
    }
  }

  if (stmt.where != nullptr) {
    auto filter = std::make_unique<FilterPlan>();
    RECDB_ASSIGN_OR_RETURN(filter->predicate,
                           BindExpr(*stmt.where, root->schema));
    filter->schema = root->schema;
    filter->children.push_back(std::move(root));
    root = std::move(filter);
  }

  // Aggregation stage: triggered by GROUP BY or by aggregate calls in the
  // select list / ORDER BY. Select-list and ORDER BY expressions are
  // rewritten to reference the Aggregate node's output columns.
  bool has_agg = !stmt.group_by.empty();
  for (const auto& item : stmt.items) {
    if (item.expr != nullptr && ContainsAggregate(*item.expr)) has_agg = true;
  }
  for (const auto& ob : stmt.order_by) {
    if (ContainsAggregate(*ob.expr)) has_agg = true;
  }
  if (stmt.having != nullptr && !has_agg) {
    return Status::BindError(
        "HAVING requires GROUP BY or aggregate functions");
  }
  std::vector<ExprPtr> rewritten_items;   // parallel to stmt.items
  std::vector<ExprPtr> rewritten_order;   // parallel to stmt.order_by
  ExprPtr rewritten_having;
  if (has_agg) {
    AggRewrite rw;
    auto agg = std::make_unique<AggregatePlan>();
    ExecSchema agg_schema;
    for (size_t k = 0; k < stmt.group_by.size(); ++k) {
      const Expr& g = *stmt.group_by[k];
      rw.group_strs.push_back(g.ToString());
      rw.group_is_colref.push_back(g.kind == ExprKind::kColumnRef);
      RECDB_ASSIGN_OR_RETURN(auto bound, BindExpr(g, root->schema));
      if (g.kind == ExprKind::kColumnRef) {
        agg_schema.Add(root->schema.ColumnAt(bound->column_idx));
      } else {
        agg_schema.Add(
            ExecColumn{"", "__grp" + std::to_string(k), TypeId::kNull});
      }
      agg->group_keys.push_back(std::move(bound));
    }
    for (const auto& item : stmt.items) {
      if (item.is_star) {
        return Status::BindError("SELECT * cannot be combined with GROUP BY "
                                 "or aggregate functions");
      }
      ExprPtr clone = item.expr->Clone();
      RECDB_RETURN_NOT_OK(RewriteForAggregation(&clone, &rw));
      rewritten_items.push_back(std::move(clone));
    }
    for (const auto& ob : stmt.order_by) {
      ExprPtr clone = ob.expr->Clone();
      RECDB_RETURN_NOT_OK(RewriteForAggregation(&clone, &rw));
      rewritten_order.push_back(std::move(clone));
    }
    if (stmt.having != nullptr) {
      rewritten_having = stmt.having->Clone();
      RECDB_RETURN_NOT_OK(RewriteForAggregation(&rewritten_having, &rw));
    }
    for (size_t i = 0; i < rw.aggs.size(); ++i) {
      auto& [kind, arg_ast] = rw.aggs[i];
      AggregatePlan::Agg spec;
      spec.kind = kind;
      if (arg_ast != nullptr) {
        RECDB_ASSIGN_OR_RETURN(spec.arg, BindExpr(*arg_ast, root->schema));
      }
      TypeId out_type =
          (kind == AggKind::kCount || kind == AggKind::kCountStar)
              ? TypeId::kInt64
              : (kind == AggKind::kSum || kind == AggKind::kAvg
                     ? TypeId::kDouble
                     : TypeId::kNull);
      agg_schema.Add(ExecColumn{"", "__agg" + std::to_string(i), out_type});
      agg->aggs.push_back(std::move(spec));
    }
    agg->schema = std::move(agg_schema);
    agg->children.push_back(std::move(root));
    root = std::move(agg);

    if (stmt.having != nullptr) {
      // HAVING was rewritten against the aggregate's output like the select
      // list; it becomes a plain filter above the Aggregate node.
      auto having_filter = std::make_unique<FilterPlan>();
      RECDB_ASSIGN_OR_RETURN(having_filter->predicate,
                             BindExpr(*rewritten_having, root->schema));
      having_filter->schema = root->schema;
      having_filter->children.push_back(std::move(root));
      root = std::move(having_filter);
    }
  }

  // ORDER BY / LIMIT before projection, so sort keys can reference columns
  // the projection drops.
  if (!stmt.order_by.empty()) {
    std::vector<SortKey> keys;
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      const auto& ob = stmt.order_by[i];
      const Expr& expr = has_agg ? *rewritten_order[i] : *ob.expr;
      SortKey k;
      RECDB_ASSIGN_OR_RETURN(k.expr, BindExpr(expr, root->schema));
      k.desc = ob.desc;
      keys.push_back(std::move(k));
    }
    // With DISTINCT, the limit must apply after duplicate elimination
    // (which happens in the projection), so it is planned above the
    // projection below; use a full sort here instead of TopN.
    if (stmt.limit.has_value() && !stmt.distinct) {
      auto topn = std::make_unique<TopNPlan>();
      topn->keys = std::move(keys);
      topn->n = static_cast<size_t>(*stmt.limit);
      topn->schema = root->schema;
      topn->children.push_back(std::move(root));
      root = std::move(topn);
    } else {
      auto sort = std::make_unique<SortPlan>();
      sort->keys = std::move(keys);
      sort->schema = root->schema;
      sort->children.push_back(std::move(root));
      root = std::move(sort);
    }
  } else if (stmt.limit.has_value() && !stmt.distinct) {
    auto limit = std::make_unique<LimitPlan>();
    limit->n = static_cast<size_t>(*stmt.limit);
    limit->schema = root->schema;
    limit->children.push_back(std::move(root));
    root = std::move(limit);
  }

  // Projection.
  auto project = std::make_unique<ProjectPlan>();
  std::vector<std::string> names;
  ExecSchema out_schema;
  for (size_t item_idx = 0; item_idx < stmt.items.size(); ++item_idx) {
    const auto& item = stmt.items[item_idx];
    if (item.is_star) {
      for (size_t i = 0; i < root->schema.NumColumns(); ++i) {
        const auto& col = root->schema.ColumnAt(i);
        project->exprs.push_back(BoundExpr::MakeColumn(i));
        names.push_back(col.name);
        out_schema.Add(col);
      }
      continue;
    }
    const Expr& to_bind =
        has_agg ? *rewritten_items[item_idx] : *item.expr;
    RECDB_ASSIGN_OR_RETURN(auto bound, BindExpr(to_bind, root->schema));
    std::string name = item.alias;
    if (name.empty()) {
      name = item.expr->kind == ExprKind::kColumnRef ? item.expr->column
                                                     : item.expr->ToString();
    }
    TypeId type = TypeId::kNull;
    if (bound->kind == BoundExprKind::kColumn) {
      type = root->schema.ColumnAt(bound->column_idx).type;
    } else if (bound->kind == BoundExprKind::kConstant) {
      type = bound->constant.type();
    }
    project->exprs.push_back(std::move(bound));
    names.push_back(std::move(name));
    out_schema.Add(ExecColumn{"", names.back(), type});
  }
  project->schema = std::move(out_schema);
  project->distinct = stmt.distinct;
  project->children.push_back(std::move(root));
  PlanNodePtr top = std::move(project);

  // DISTINCT + LIMIT: the limit goes above the de-duplicating projection.
  if (stmt.distinct && stmt.limit.has_value()) {
    auto limit = std::make_unique<LimitPlan>();
    limit->n = static_cast<size_t>(*stmt.limit);
    limit->schema = top->schema;
    limit->children.push_back(std::move(top));
    top = std::move(limit);
  }

  PlannedQuery out;
  out.plan = std::move(top);
  out.output_names = std::move(names);
  return out;
}

}  // namespace recdb
