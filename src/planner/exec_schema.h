// ExecSchema: the name-resolution schema flowing between plan nodes.
//
// Unlike the storage Schema, every column carries the table alias it came
// from, so `R.uid` and `M.iid` resolve unambiguously after joins.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "types/value.h"

namespace recdb {

struct ExecColumn {
  std::string table_alias;  // may be empty for computed columns
  std::string name;
  TypeId type = TypeId::kNull;
};

class ExecSchema {
 public:
  ExecSchema() = default;
  explicit ExecSchema(std::vector<ExecColumn> cols) : cols_(std::move(cols)) {}

  size_t NumColumns() const { return cols_.size(); }
  const ExecColumn& ColumnAt(size_t i) const { return cols_[i]; }
  const std::vector<ExecColumn>& columns() const { return cols_; }
  void Add(ExecColumn col) { cols_.push_back(std::move(col)); }

  /// Resolve a (possibly unqualified) column reference.
  /// - qualified (alias non-empty): exact alias+name match.
  /// - unqualified: unique name match across all aliases; ambiguity errors.
  Result<size_t> Resolve(const std::string& alias,
                         const std::string& name) const;

  static ExecSchema Concat(const ExecSchema& a, const ExecSchema& b);

  /// "alias.name TYPE, ..."
  std::string ToString() const;

 private:
  std::vector<ExecColumn> cols_;
};

}  // namespace recdb
