// Rule-based plan optimizer.
//
// Rules (paper Section IV-B's query-plan rewrites):
//   - merge stacked filters; push filter conjuncts below joins
//   - convert equality nested-loop joins to hash joins
//   - push uid/iid predicates into RECOMMEND  -> FILTERRECOMMEND
//   - rewrite item-equality joins over RECOMMEND -> JOINRECOMMEND
//   - rewrite top-k-by-predicted-score       -> INDEXRECOMMEND
// Each rule can be disabled via PlannerOptions for ablation studies.
#pragma once

#include "planner/plan_node.h"
#include "planner/planner.h"

namespace recdb {

class Optimizer {
 public:
  explicit Optimizer(const PlannerOptions& options) : options_(options) {}

  /// Rewrite to fixpoint (bounded passes).
  Result<PlanNodePtr> Optimize(PlanNodePtr plan);

 private:
  /// One post-order pass; sets *changed when any rule fired.
  Result<PlanNodePtr> RewritePass(PlanNodePtr node, bool* changed);

  /// Local rules; each returns the (possibly replaced) node.
  Result<PlanNodePtr> MergeFilters(PlanNodePtr node, bool* changed);
  Result<PlanNodePtr> PushFilterThroughJoin(PlanNodePtr node, bool* changed);
  Result<PlanNodePtr> PushFilterIntoRecommend(PlanNodePtr node, bool* changed);
  Result<PlanNodePtr> NljToHashJoin(PlanNodePtr node, bool* changed);
  Result<PlanNodePtr> JoinToJoinRecommend(PlanNodePtr node, bool* changed);
  Result<PlanNodePtr> TopNToIndexRecommend(PlanNodePtr node, bool* changed);

  PlannerOptions options_;
};

/// Split an AND-tree into conjuncts (ownership moves out).
std::vector<BoundExprPtr> SplitConjuncts(BoundExprPtr expr);

/// AND-combine conjuncts; nullptr when the list is empty.
BoundExprPtr CombineConjuncts(std::vector<BoundExprPtr> conjuncts);

}  // namespace recdb
