// Two-phase plan optimizer.
//
// Phase 1 — normalization rewrites (paper Section IV-B's query-plan rules):
//   - merge stacked filters; push filter conjuncts below joins
//   - convert equality nested-loop joins to hash joins
//   - push uid/iid predicates into RECOMMEND  -> FILTERRECOMMEND
//   - rewrite item-equality joins over RECOMMEND -> JOINRECOMMEND
//   - rewrite top-k-by-predicted-score       -> INDEXRECOMMEND
// Each rule can be disabled via PlannerOptions for ablation studies.
//
// Phase 2 — cost-based reconsideration (PlannerOptions::enable_cost_based):
// using ANALYZE statistics and live recommender state, the optimizer may
// undo a phase-1 rewrite when the costed alternative is cheaper:
//   - FILTERRECOMMEND item pushdown -> RECOMMEND + residual filter when the
//     item list covers most of the catalog (paper Fig. 6's crossover)
//   - JOINRECOMMEND -> HashJoin(FILTERRECOMMEND, outer) when the outer
//     relation produces more rows than there are items to score
//   - INDEXRECOMMEND -> RECOMMEND when index coverage of the queried users
//     is too low to beat recomputing from the model
// It also orders conjunctive filter predicates by estimated selectivity and
// annotates every node with est_rows / est_cost for EXPLAIN.
#pragma once

#include "planner/cost_model.h"
#include "planner/plan_node.h"
#include "planner/planner.h"

namespace recdb {

class Optimizer {
 public:
  explicit Optimizer(const PlannerOptions& options) : options_(options) {}

  /// Phase 1 to fixpoint (bounded passes), then phase 2 when enabled.
  Result<PlanNodePtr> Optimize(PlanNodePtr plan);

 private:
  /// One post-order pass; sets *changed when any rule fired.
  Result<PlanNodePtr> RewritePass(PlanNodePtr node, bool* changed);

  /// Phase-1 local rules; each returns the (possibly replaced) node.
  Result<PlanNodePtr> MergeFilters(PlanNodePtr node, bool* changed);
  Result<PlanNodePtr> PushFilterThroughJoin(PlanNodePtr node, bool* changed);
  Result<PlanNodePtr> PushFilterIntoRecommend(PlanNodePtr node, bool* changed);
  Result<PlanNodePtr> NljToHashJoin(PlanNodePtr node, bool* changed);
  Result<PlanNodePtr> JoinToJoinRecommend(PlanNodePtr node, bool* changed);
  Result<PlanNodePtr> TopNToIndexRecommend(PlanNodePtr node, bool* changed);

  /// Phase-2: post-order cost-based reconsideration.
  Result<PlanNodePtr> CostPass(PlanNodePtr node);
  Result<PlanNodePtr> ReconsiderItemPushdown(PlanNodePtr node);
  Result<PlanNodePtr> ReconsiderJoinRecommend(PlanNodePtr node);
  Result<PlanNodePtr> ReconsiderIndexRecommend(PlanNodePtr node);
  /// Sublinear Top-N: flip (Filter)Recommend / IndexRecommend under a
  /// score-ordered TopN into pruned candidate-walk mode — and JoinRecommend
  /// into candidate-bitmap mode — when ANALYZE-grounded CandidateIndex
  /// statistics say the walk beats the exhaustive scan. Results unchanged.
  Result<PlanNodePtr> ReconsiderPrunedTopN(PlanNodePtr node);
  /// Reorder a Filter's conjuncts by ascending estimated selectivity so the
  /// most selective (cheapest to fail) predicates run first.
  void OrderFilterConjuncts(PlanNode* node);

  PlannerOptions options_;
  CostEnv cost_env_;
};

/// Split an AND-tree into conjuncts (ownership moves out).
std::vector<BoundExprPtr> SplitConjuncts(BoundExprPtr expr);

/// AND-combine conjuncts; nullptr when the list is empty.
BoundExprPtr CombineConjuncts(std::vector<BoundExprPtr> conjuncts);

}  // namespace recdb
