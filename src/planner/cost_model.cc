#include "planner/cost_model.h"

#include <algorithm>
#include <cmath>

namespace recdb {

namespace {

double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

/// Mirror a comparison when the constant is on the left (5 < x  ==  x > 5).
BinaryOp MirrorOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;
  }
}

bool IsRangeOp(BinaryOp op) {
  return op == BinaryOp::kLt || op == BinaryOp::kLe || op == BinaryOp::kGt ||
         op == BinaryOp::kGe;
}

size_t CountConjuncts(const BoundExpr& e) {
  if (e.kind == BoundExprKind::kBinary && e.op == BinaryOp::kAnd) {
    return CountConjuncts(*e.left) + CountConjuncts(*e.right);
  }
  return 1;
}

double ChildRows(PlanNode& node, size_t i, const CostEnv& env) {
  return i < node.children.size() ? node.children[i]->EstimateRows(env) : 0;
}

double ChildCost(PlanNode& node, size_t i, const CostEnv& env) {
  return i < node.children.size() ? node.children[i]->EstimateCost(env) : 0;
}

}  // namespace

RecStats RecStats::From(const Recommender& rec) {
  RecStats s;
  const RatingMatrix& m = rec.live();
  s.num_users = static_cast<double>(m.NumUsers());
  s.num_items = static_cast<double>(m.NumItems());
  s.num_ratings = static_cast<double>(m.NumRatings());
  if (s.num_users > 0 && s.num_items > 0) {
    s.density = s.num_ratings / (s.num_users * s.num_items);
    s.avg_user_ratings = s.num_ratings / s.num_users;
    s.avg_unseen = std::max(0.0, s.num_items - s.avg_user_ratings);
  }
  return s;
}

double PrunedTopNCost(const CandidateIndex::Stats& stats, double users,
                      const CostParams& p) {
  return users * (stats.avg_gen_ops * p.scan_row +
                  stats.avg_candidates *
                      (p.bound_check + p.prune_loose * p.predict));
}

double IndexCoverageFraction(const Recommender& rec,
                             const std::vector<int64_t>& users) {
  const RecScoreIndex& idx = rec.score_index();
  if (!users.empty()) {
    size_t covered = 0;
    for (int64_t u : users) covered += idx.HasUser(u) ? 1 : 0;
    return static_cast<double>(covered) / static_cast<double>(users.size());
  }
  size_t total = rec.live().NumUsers();
  if (total == 0) return 0.0;
  return std::min(1.0, static_cast<double>(idx.NumUsers()) /
                           static_cast<double>(total));
}

const ColumnStats* ResolveColumnStats(const PlanNode& node, size_t col_idx) {
  switch (node.type) {
    case PlanNodeType::kSeqScan: {
      const auto& s = static_cast<const SeqScanPlan&>(node);
      if (s.table != nullptr && s.table->stats.has_value() &&
          col_idx < s.table->stats->columns.size()) {
        return &s.table->stats->columns[col_idx];
      }
      return nullptr;
    }
    case PlanNodeType::kRecommend:
    case PlanNodeType::kFilterRecommend: {
      // Output is shaped like the ratings table, but the rating column
      // holds *predicted* scores — its stored statistics don't apply.
      const auto& r = static_cast<const RecommendPlan&>(node);
      if (col_idx == r.rating_col_idx) return nullptr;
      if (r.table != nullptr && r.table->stats.has_value() &&
          col_idx < r.table->stats->columns.size()) {
        return &r.table->stats->columns[col_idx];
      }
      return nullptr;
    }
    case PlanNodeType::kFilter:
    case PlanNodeType::kSort:
    case PlanNodeType::kTopN:
    case PlanNodeType::kLimit:
      return node.children.empty()
                 ? nullptr
                 : ResolveColumnStats(*node.children[0], col_idx);
    case PlanNodeType::kNestedLoopJoin:
    case PlanNodeType::kHashJoin: {
      if (node.children.size() != 2) return nullptr;
      size_t left_w = node.children[0]->schema.NumColumns();
      if (col_idx < left_w) {
        return ResolveColumnStats(*node.children[0], col_idx);
      }
      return ResolveColumnStats(*node.children[1], col_idx - left_w);
    }
    case PlanNodeType::kJoinRecommend: {
      // Schema is rec-columns ++ outer-columns; children[0] is the outer.
      if (node.children.empty()) return nullptr;
      size_t outer_w = node.children[0]->schema.NumColumns();
      size_t rec_w = node.schema.NumColumns() - outer_w;
      if (col_idx >= rec_w) {
        return ResolveColumnStats(*node.children[0], col_idx - rec_w);
      }
      return nullptr;
    }
    default:
      // Project / Aggregate compute fresh columns; no stats flow through.
      return nullptr;
  }
}

double EstimateSelectivity(const BoundExpr& pred, const PlanNode& input) {
  switch (pred.kind) {
    case BoundExprKind::kConstant:
      // Constant predicates are almost always TRUE leftovers of rewrites.
      return pred.constant.is_null() ? 0.0 : 1.0;
    case BoundExprKind::kNot:
      return Clamp01(1.0 - EstimateSelectivity(*pred.left, input));
    case BoundExprKind::kInList: {
      double sel;
      const ColumnStats* cs =
          (pred.left != nullptr && pred.left->kind == BoundExprKind::kColumn)
              ? ResolveColumnStats(input, pred.left->column_idx)
              : nullptr;
      if (cs != nullptr) {
        sel = cs->InListSelectivity(pred.in_values.size());
      } else {
        sel = std::min(
            1.0, static_cast<double>(pred.in_values.size()) *
                     kDefaultEqSelectivity);
      }
      return pred.negated ? Clamp01(1.0 - sel) : sel;
    }
    case BoundExprKind::kBinary: {
      if (pred.op == BinaryOp::kAnd) {
        return Clamp01(EstimateSelectivity(*pred.left, input) *
                       EstimateSelectivity(*pred.right, input));
      }
      if (pred.op == BinaryOp::kOr) {
        double a = EstimateSelectivity(*pred.left, input);
        double b = EstimateSelectivity(*pred.right, input);
        return Clamp01(a + b - a * b);
      }
      // Comparison: look for column-vs-constant in either order.
      const BoundExpr* col = nullptr;
      const BoundExpr* cst = nullptr;
      bool flipped = false;
      if (pred.left != nullptr && pred.right != nullptr) {
        if (pred.left->kind == BoundExprKind::kColumn &&
            pred.right->kind == BoundExprKind::kConstant) {
          col = pred.left.get();
          cst = pred.right.get();
        } else if (pred.right->kind == BoundExprKind::kColumn &&
                   pred.left->kind == BoundExprKind::kConstant) {
          col = pred.right.get();
          cst = pred.left.get();
          flipped = true;
        }
      }
      if (col == nullptr || cst == nullptr || cst->constant.is_null()) {
        return kDefaultSelectivity;
      }
      BinaryOp op = flipped ? MirrorOp(pred.op) : pred.op;
      const ColumnStats* cs = ResolveColumnStats(input, col->column_idx);
      if (op == BinaryOp::kEq) {
        return cs != nullptr ? cs->EqSelectivity() : kDefaultEqSelectivity;
      }
      if (op == BinaryOp::kNe) {
        double eq =
            cs != nullptr ? cs->EqSelectivity() : kDefaultEqSelectivity;
        return Clamp01(1.0 - eq);
      }
      if (IsRangeOp(op)) {
        if (cs != nullptr && cst->constant.is_numeric()) {
          return cs->RangeSelectivity(op, cst->constant.AsNumeric());
        }
        return kDefaultRangeSelectivity;
      }
      return kDefaultSelectivity;
    }
    default:
      return kDefaultSelectivity;
  }
}

double PlanNode::EstimateRows(const CostEnv& env) {
  if (est_rows >= 0) return est_rows;
  double rows = 0;
  switch (type) {
    case PlanNodeType::kSeqScan: {
      const auto& s = static_cast<const SeqScanPlan&>(*this);
      rows = (s.table != nullptr && s.table->stats.has_value())
                 ? static_cast<double>(s.table->stats->row_count)
                 : kDefaultTableRows;
      break;
    }
    case PlanNodeType::kRecommend:
    case PlanNodeType::kFilterRecommend: {
      const auto& r = static_cast<const RecommendPlan&>(*this);
      RecStats rs = RecStats::From(*r.rec);
      double users = r.user_ids.has_value()
                         ? static_cast<double>(r.user_ids->size())
                         : rs.num_users;
      double per_user = r.include_rated ? rs.num_items : rs.avg_unseen;
      if (r.item_ids.has_value()) {
        per_user =
            std::min(per_user, static_cast<double>(r.item_ids->size()));
      }
      if (r.prune && r.prune_limit > 0) {
        // Pruned Top-K emits at most prune_limit rows per user.
        per_user =
            std::min(per_user, static_cast<double>(r.prune_limit));
      }
      rows = users * per_user;
      break;
    }
    case PlanNodeType::kJoinRecommend: {
      const auto& j = static_cast<const JoinRecommendPlan&>(*this);
      rows = ChildRows(*this, 0, env) *
             static_cast<double>(std::max<size_t>(1, j.user_ids.size()));
      break;
    }
    case PlanNodeType::kIndexRecommend: {
      const auto& ix = static_cast<const IndexRecommendPlan&>(*this);
      RecStats rs = RecStats::From(*ix.rec);
      double per_user = rs.avg_unseen;
      if (ix.per_user_limit > 0) {
        per_user =
            std::min(per_user, static_cast<double>(ix.per_user_limit));
      }
      if (ix.item_ids.has_value()) {
        per_user =
            std::min(per_user, static_cast<double>(ix.item_ids->size()));
      }
      rows = static_cast<double>(std::max<size_t>(1, ix.user_ids.size())) *
             per_user;
      break;
    }
    case PlanNodeType::kFilter: {
      const auto& f = static_cast<const FilterPlan&>(*this);
      double in = ChildRows(*this, 0, env);
      double sel = (f.predicate != nullptr && !children.empty())
                       ? EstimateSelectivity(*f.predicate, *children[0])
                       : 1.0;
      rows = in * sel;
      break;
    }
    case PlanNodeType::kProject:
      rows = ChildRows(*this, 0, env);
      break;
    case PlanNodeType::kAggregate: {
      const auto& a = static_cast<const AggregatePlan&>(*this);
      double in = ChildRows(*this, 0, env);
      rows = a.group_keys.empty() ? 1.0 : std::max(1.0, in / 10.0);
      break;
    }
    case PlanNodeType::kNestedLoopJoin: {
      const auto& nlj = static_cast<const NestedLoopJoinPlan&>(*this);
      double l = ChildRows(*this, 0, env);
      double r = ChildRows(*this, 1, env);
      double sel = nlj.predicate != nullptr
                       ? EstimateSelectivity(*nlj.predicate, *this)
                       : 1.0;
      rows = l * r * sel;
      break;
    }
    case PlanNodeType::kHashJoin: {
      const auto& hj = static_cast<const HashJoinPlan&>(*this);
      double l = ChildRows(*this, 0, env);
      double r = ChildRows(*this, 1, env);
      // Equi-join: |L x R| / max(distinct of either key); FK-join fallback
      // min(L, R) when neither key column has statistics.
      double distinct = 0;
      for (const BoundExpr* key :
           {hj.left_key.get(), hj.right_key.get()}) {
        if (key == nullptr || key->kind != BoundExprKind::kColumn) continue;
        size_t child_i = key == hj.left_key.get() ? 0 : 1;
        if (child_i >= children.size()) continue;
        const ColumnStats* cs =
            ResolveColumnStats(*children[child_i], key->column_idx);
        if (cs != nullptr && cs->distinct_count > 0) {
          distinct =
              std::max(distinct, static_cast<double>(cs->distinct_count));
        }
      }
      rows = distinct > 0 ? (l * r) / distinct : std::min(l, r);
      if (hj.residual != nullptr) rows *= kDefaultSelectivity;
      break;
    }
    case PlanNodeType::kSort:
      rows = ChildRows(*this, 0, env);
      break;
    case PlanNodeType::kTopN: {
      const auto& t = static_cast<const TopNPlan&>(*this);
      rows = std::min(static_cast<double>(t.n), ChildRows(*this, 0, env));
      break;
    }
    case PlanNodeType::kLimit: {
      const auto& lim = static_cast<const LimitPlan&>(*this);
      rows = std::min(static_cast<double>(lim.n), ChildRows(*this, 0, env));
      break;
    }
  }
  est_rows = std::max(0.0, rows);
  return est_rows;
}

double PlanNode::EstimateCost(const CostEnv& env) {
  if (est_cost >= 0) return est_cost;
  const CostParams& p = env.params;
  double children_cost = 0;
  for (size_t i = 0; i < children.size(); ++i) {
    children_cost += ChildCost(*this, i, env);
  }
  double own = 0;
  switch (type) {
    case PlanNodeType::kSeqScan:
      own = EstimateRows(env) * p.scan_row;
      break;
    case PlanNodeType::kRecommend:
    case PlanNodeType::kFilterRecommend: {
      const auto& r = static_cast<const RecommendPlan&>(*this);
      RecStats rs = RecStats::From(*r.rec);
      double users = r.user_ids.has_value()
                         ? static_cast<double>(r.user_ids->size())
                         : rs.num_users;
      if (r.item_ids.has_value()) {
        // Explicit item list: each (user, item) pair is probed and scored.
        own = users * static_cast<double>(r.item_ids->size()) *
              (p.predict + p.item_probe);
      } else if (r.prune) {
        auto index = r.rec->candidate_index();
        if (index != nullptr && index->prunable()) {
          own = PrunedTopNCost(index->stats(), users, p);
        } else {
          // Prune flag without a usable index: executor falls back to the
          // exact scan, so price it as such.
          double per_user = r.include_rated ? rs.num_items : rs.avg_unseen;
          own = users * per_user * p.predict;
        }
      } else {
        double per_user = r.include_rated ? rs.num_items : rs.avg_unseen;
        own = users * per_user * p.predict;
      }
      break;
    }
    case PlanNodeType::kJoinRecommend: {
      const auto& j = static_cast<const JoinRecommendPlan&>(*this);
      own = ChildRows(*this, 0, env) *
            static_cast<double>(std::max<size_t>(1, j.user_ids.size())) *
            (p.predict + p.item_probe);
      break;
    }
    case PlanNodeType::kIndexRecommend: {
      const auto& ix = static_cast<const IndexRecommendPlan&>(*this);
      RecStats rs = RecStats::From(*ix.rec);
      double coverage = IndexCoverageFraction(*ix.rec, ix.user_ids);
      double users =
          static_cast<double>(std::max<size_t>(1, ix.user_ids.size()));
      double served = rs.avg_unseen;
      if (ix.per_user_limit > 0) {
        served = std::min(served, static_cast<double>(ix.per_user_limit));
      }
      // Covered users serve `served` entries from the index; uncovered
      // users fall back to the model (predict all unseen, then insert).
      double miss = rs.avg_unseen * (p.predict + p.index_entry);
      own = users * (coverage * served * p.index_entry +
                     (1.0 - coverage) * miss);
      break;
    }
    case PlanNodeType::kFilter: {
      const auto& f = static_cast<const FilterPlan&>(*this);
      size_t conjuncts =
          f.predicate != nullptr ? CountConjuncts(*f.predicate) : 0;
      own = ChildRows(*this, 0, env) * p.filter_eval *
            static_cast<double>(std::max<size_t>(1, conjuncts));
      break;
    }
    case PlanNodeType::kProject:
      own = ChildRows(*this, 0, env) * p.filter_eval;
      break;
    case PlanNodeType::kAggregate:
      own = ChildRows(*this, 0, env) * p.hash_probe;
      break;
    case PlanNodeType::kNestedLoopJoin:
      own = ChildRows(*this, 0, env) * ChildRows(*this, 1, env) *
            p.filter_eval;
      break;
    case PlanNodeType::kHashJoin:
      own = (ChildRows(*this, 0, env) + ChildRows(*this, 1, env)) *
            p.hash_probe;
      break;
    case PlanNodeType::kSort: {
      double n = ChildRows(*this, 0, env);
      own = n * p.sort_entry * std::log2(std::max(2.0, n));
      break;
    }
    case PlanNodeType::kTopN:
      own = ChildRows(*this, 0, env) * p.topn_entry;
      break;
    case PlanNodeType::kLimit:
      own = 0;
      break;
  }
  est_cost = children_cost + own;
  return est_cost;
}

void AnnotatePlan(PlanNode* root, const CostEnv& env) {
  if (root == nullptr) return;
  for (auto& c : root->children) AnnotatePlan(c.get(), env);
  root->EstimateRows(env);
  root->EstimateCost(env);
}

}  // namespace recdb
