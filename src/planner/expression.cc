#include "planner/expression.h"

#include <cmath>

#include "common/string_util.h"
#include "spatial/geometry.h"

namespace recdb {

namespace {

Result<Value> EvalArith(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.is_numeric() || !b.is_numeric()) {
    return Status::ExecutionError("arithmetic on non-numeric values");
  }
  // Integer arithmetic stays integral except division.
  if (a.type() == TypeId::kInt64 && b.type() == TypeId::kInt64 &&
      op != BinaryOp::kDiv) {
    int64_t x = a.AsInt(), y = b.AsInt();
    switch (op) {
      case BinaryOp::kAdd:
        return Value::Int(x + y);
      case BinaryOp::kSub:
        return Value::Int(x - y);
      case BinaryOp::kMul:
        return Value::Int(x * y);
      default:
        break;
    }
  }
  double x = a.AsNumeric(), y = b.AsNumeric();
  switch (op) {
    case BinaryOp::kAdd:
      return Value::Double(x + y);
    case BinaryOp::kSub:
      return Value::Double(x - y);
    case BinaryOp::kMul:
      return Value::Double(x * y);
    case BinaryOp::kDiv:
      if (y == 0) return Status::ExecutionError("division by zero");
      return Value::Double(x / y);
    default:
      return Status::Internal("not an arithmetic op");
  }
}

Result<Value> EvalCompare(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  int c = a.Compare(b);
  switch (op) {
    case BinaryOp::kEq:
      return Value::Bool(c == 0);
    case BinaryOp::kNe:
      return Value::Bool(c != 0);
    case BinaryOp::kLt:
      return Value::Bool(c < 0);
    case BinaryOp::kLe:
      return Value::Bool(c <= 0);
    case BinaryOp::kGt:
      return Value::Bool(c > 0);
    case BinaryOp::kGe:
      return Value::Bool(c >= 0);
    default:
      return Status::Internal("not a comparison op");
  }
}

/// Coerce a value to geometry: pass geometry through, parse WKT strings.
Result<spatial::Geometry> AsGeom(const Value& v) {
  if (v.type() == TypeId::kGeometry) return v.AsGeometry();
  if (v.type() == TypeId::kString) {
    return spatial::Geometry::FromString(v.AsString());
  }
  return Status::ExecutionError("expected geometry, got " +
                                std::string(TypeIdToString(v.type())));
}

}  // namespace

Result<Value> BoundExpr::Eval(const Tuple& tuple) const {
  switch (kind) {
    case BoundExprKind::kConstant:
      return constant;
    case BoundExprKind::kColumn:
      if (column_idx >= tuple.NumValues()) {
        return Status::Internal("column index out of range");
      }
      return tuple.At(column_idx);
    case BoundExprKind::kBinary: {
      if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
        RECDB_ASSIGN_OR_RETURN(bool l, left->EvalPredicate(tuple));
        if (op == BinaryOp::kAnd && !l) return Value::Bool(false);
        if (op == BinaryOp::kOr && l) return Value::Bool(true);
        RECDB_ASSIGN_OR_RETURN(bool r, right->EvalPredicate(tuple));
        return Value::Bool(r);
      }
      RECDB_ASSIGN_OR_RETURN(Value l, left->Eval(tuple));
      RECDB_ASSIGN_OR_RETURN(Value r, right->Eval(tuple));
      switch (op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
          return EvalArith(op, l, r);
        default:
          return EvalCompare(op, l, r);
      }
    }
    case BoundExprKind::kNot: {
      RECDB_ASSIGN_OR_RETURN(bool v, left->EvalPredicate(tuple));
      return Value::Bool(!v);
    }
    case BoundExprKind::kNegate: {
      RECDB_ASSIGN_OR_RETURN(Value v, left->Eval(tuple));
      if (v.is_null()) return Value::Null();
      if (v.type() == TypeId::kInt64) return Value::Int(-v.AsInt());
      if (v.type() == TypeId::kDouble) return Value::Double(-v.AsDouble());
      return Status::ExecutionError("cannot negate non-numeric value");
    }
    case BoundExprKind::kFunction: {
      std::vector<Value> vals;
      vals.reserve(args.size());
      for (const auto& a : args) {
        RECDB_ASSIGN_OR_RETURN(Value v, a->Eval(tuple));
        vals.push_back(std::move(v));
      }
      switch (func) {
        case ScalarFunction::kStContains: {
          RECDB_ASSIGN_OR_RETURN(auto g1, AsGeom(vals[0]));
          RECDB_ASSIGN_OR_RETURN(auto g2, AsGeom(vals[1]));
          return Value::Bool(spatial::STContains(g1, g2));
        }
        case ScalarFunction::kStDWithin: {
          RECDB_ASSIGN_OR_RETURN(auto g1, AsGeom(vals[0]));
          RECDB_ASSIGN_OR_RETURN(auto g2, AsGeom(vals[1]));
          if (!vals[2].is_numeric()) {
            return Status::ExecutionError("ST_DWithin distance not numeric");
          }
          return Value::Bool(
              spatial::STDWithin(g1, g2, vals[2].AsNumeric()));
        }
        case ScalarFunction::kStDistance: {
          RECDB_ASSIGN_OR_RETURN(auto g1, AsGeom(vals[0]));
          RECDB_ASSIGN_OR_RETURN(auto g2, AsGeom(vals[1]));
          return Value::Double(spatial::STDistance(g1, g2));
        }
        case ScalarFunction::kStPoint: {
          if (!vals[0].is_numeric() || !vals[1].is_numeric()) {
            return Status::ExecutionError("ST_Point needs numeric args");
          }
          return Value::Geometry(spatial::Geometry::MakePoint(
              vals[0].AsNumeric(), vals[1].AsNumeric()));
        }
        case ScalarFunction::kCScore: {
          // Combined rating/proximity score (paper Query 8): monotone up in
          // predicted rating, down in distance.
          if (!vals[0].is_numeric() || !vals[1].is_numeric()) {
            return Status::ExecutionError("CScore needs numeric args");
          }
          double rating = vals[0].AsNumeric();
          double dist = vals[1].AsNumeric();
          if (dist < 0) return Status::ExecutionError("negative distance");
          return Value::Double(rating / (1.0 + dist));
        }
        case ScalarFunction::kAbs: {
          if (vals[0].is_null()) return Value::Null();
          if (vals[0].type() == TypeId::kInt64) {
            return Value::Int(std::llabs(vals[0].AsInt()));
          }
          if (vals[0].type() == TypeId::kDouble) {
            return Value::Double(std::fabs(vals[0].AsDouble()));
          }
          return Status::ExecutionError("ABS needs a numeric arg");
        }
      }
      return Status::Internal("unhandled function");
    }
    case BoundExprKind::kInList: {
      RECDB_ASSIGN_OR_RETURN(Value needle, left->Eval(tuple));
      if (needle.is_null()) return Value::Null();
      for (const auto& v : in_values) {
        if (needle.SqlEquals(v)) return Value::Bool(!negated);
      }
      return Value::Bool(negated);
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> BoundExpr::EvalPredicate(const Tuple& tuple) const {
  RECDB_ASSIGN_OR_RETURN(Value v, Eval(tuple));
  return v.IsTruthy();
}

BoundExprPtr BoundExpr::Clone() const {
  auto e = std::make_unique<BoundExpr>();
  e->kind = kind;
  e->constant = constant;
  e->column_idx = column_idx;
  e->op = op;
  e->func = func;
  e->in_values = in_values;
  e->negated = negated;
  if (left) e->left = left->Clone();
  if (right) e->right = right->Clone();
  e->args.reserve(args.size());
  for (const auto& a : args) e->args.push_back(a->Clone());
  return e;
}

void BoundExpr::CollectColumns(std::vector<size_t>* out) const {
  if (kind == BoundExprKind::kColumn) out->push_back(column_idx);
  if (left) left->CollectColumns(out);
  if (right) right->CollectColumns(out);
  for (const auto& a : args) a->CollectColumns(out);
}

Status BoundExpr::RemapColumns(const std::vector<int>& mapping) {
  if (kind == BoundExprKind::kColumn) {
    if (column_idx >= mapping.size() || mapping[column_idx] < 0) {
      return Status::Internal("column remap out of range");
    }
    column_idx = static_cast<size_t>(mapping[column_idx]);
  }
  if (left) RECDB_RETURN_NOT_OK(left->RemapColumns(mapping));
  if (right) RECDB_RETURN_NOT_OK(right->RemapColumns(mapping));
  for (const auto& a : args) RECDB_RETURN_NOT_OK(a->RemapColumns(mapping));
  return Status::OK();
}

BoundExprPtr BoundExpr::MakeConstant(Value v) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = BoundExprKind::kConstant;
  e->constant = std::move(v);
  return e;
}

BoundExprPtr BoundExpr::MakeColumn(size_t idx) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = BoundExprKind::kColumn;
  e->column_idx = idx;
  return e;
}

BoundExprPtr BoundExpr::MakeBinary(BinaryOp op, BoundExprPtr l,
                                   BoundExprPtr r) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = BoundExprKind::kBinary;
  e->op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

Result<BoundExprPtr> BindExpr(const Expr& expr, const ExecSchema& schema) {
  auto out = std::make_unique<BoundExpr>();
  switch (expr.kind) {
    case ExprKind::kLiteral:
      out->kind = BoundExprKind::kConstant;
      out->constant = expr.literal;
      return out;
    case ExprKind::kColumnRef: {
      RECDB_ASSIGN_OR_RETURN(size_t idx,
                             schema.Resolve(expr.qualifier, expr.column));
      out->kind = BoundExprKind::kColumn;
      out->column_idx = idx;
      return out;
    }
    case ExprKind::kBinary: {
      out->kind = BoundExprKind::kBinary;
      out->op = expr.op;
      RECDB_ASSIGN_OR_RETURN(out->left, BindExpr(*expr.left, schema));
      RECDB_ASSIGN_OR_RETURN(out->right, BindExpr(*expr.right, schema));
      return out;
    }
    case ExprKind::kNot: {
      out->kind = BoundExprKind::kNot;
      RECDB_ASSIGN_OR_RETURN(out->left, BindExpr(*expr.left, schema));
      return out;
    }
    case ExprKind::kNegate: {
      out->kind = BoundExprKind::kNegate;
      RECDB_ASSIGN_OR_RETURN(out->left, BindExpr(*expr.left, schema));
      return out;
    }
    case ExprKind::kFunctionCall: {
      out->kind = BoundExprKind::kFunction;
      struct FuncDef {
        const char* name;
        ScalarFunction fn;
        size_t arity;
      };
      static const FuncDef kFuncs[] = {
          {"st_contains", ScalarFunction::kStContains, 2},
          {"st_dwithin", ScalarFunction::kStDWithin, 3},
          {"st_distance", ScalarFunction::kStDistance, 2},
          {"st_point", ScalarFunction::kStPoint, 2},
          {"cscore", ScalarFunction::kCScore, 2},
          {"abs", ScalarFunction::kAbs, 1},
      };
      const FuncDef* def = nullptr;
      for (const auto& f : kFuncs) {
        if (expr.func_name == f.name) {
          def = &f;
          break;
        }
      }
      if (def == nullptr) {
        return Status::BindError("unknown function " + expr.func_name);
      }
      if (expr.args.size() != def->arity) {
        return Status::BindError(
            expr.func_name + " expects " + std::to_string(def->arity) +
            " arguments, got " + std::to_string(expr.args.size()));
      }
      out->func = def->fn;
      for (const auto& a : expr.args) {
        RECDB_ASSIGN_OR_RETURN(auto bound, BindExpr(*a, schema));
        out->args.push_back(std::move(bound));
      }
      return out;
    }
    case ExprKind::kInList: {
      out->kind = BoundExprKind::kInList;
      out->negated = expr.negated;
      RECDB_ASSIGN_OR_RETURN(out->left, BindExpr(*expr.left, schema));
      for (const auto& item : expr.args) {
        if (item->kind != ExprKind::kLiteral) {
          return Status::BindError("IN list elements must be literals");
        }
        out->in_values.push_back(item->literal);
      }
      return out;
    }
  }
  return Status::Internal("unhandled AST expression kind");
}

}  // namespace recdb
