// Physical plan nodes. The planner builds this tree, the optimizer rewrites
// it (predicate pushdown, recommendation-aware operator selection), and the
// executor factory turns each node into a Volcano iterator.
//
// The recommendation-aware family mirrors the paper's operators:
//   kRecommend       — full RECOMMEND: scores every (user, unseen item) pair
//   kFilterRecommend — user/item/rating predicates pushed into scoring
//   kJoinRecommend   — outer relation drives which items get scored
//   kIndexRecommend  — serves from the pre-computed RecScoreIndex
#pragma once

#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "planner/exec_schema.h"
#include "planner/expression.h"
#include "recommender/recommender.h"
#include "storage/catalog.h"

namespace recdb {

enum class PlanNodeType {
  kSeqScan,
  kRecommend,
  kFilterRecommend,
  kJoinRecommend,
  kIndexRecommend,
  kFilter,
  kProject,
  kAggregate,
  kNestedLoopJoin,
  kHashJoin,
  kSort,
  kTopN,
  kLimit,
};

const char* PlanNodeTypeToString(PlanNodeType t);

struct PlanNode;
using PlanNodePtr = std::unique_ptr<PlanNode>;

struct SortKey {
  BoundExprPtr expr;
  bool desc = false;
};

/// Cost-model environment (defined in cost_model.h): constant cost
/// parameters plus live recommender statistics.
struct CostEnv;

/// EXPLAIN ANALYZE: per-plan-node actual emitted-row counters, keyed by the
/// node's address (nodes are heap-allocated and stable for a query's life).
using ActualRowMap = std::unordered_map<const PlanNode*, uint64_t>;

struct PlanNode {
  explicit PlanNode(PlanNodeType t) : type(t) {}
  virtual ~PlanNode() = default;

  PlanNodeType type;
  ExecSchema schema;
  std::vector<PlanNodePtr> children;

  /// Cost-phase annotations (negative = not annotated; EXPLAIN omits them).
  double est_rows = -1;
  double est_cost = -1;

  /// Estimated output cardinality / cumulative cost, computed bottom-up and
  /// cached in est_rows / est_cost (implemented in cost_model.cc).
  double EstimateRows(const CostEnv& env);
  double EstimateCost(const CostEnv& env);

  /// One-line operator description (EXPLAIN output).
  virtual std::string Describe() const;

  /// Multi-line indented plan rendering. With `actual`, each node line gains
  /// `(est=N act=M)` (EXPLAIN ANALYZE); otherwise annotated nodes show
  /// `(est=N)` only.
  std::string ToString(int indent = 0,
                       const ActualRowMap* actual = nullptr) const;
};

/// Sequential heap scan of a base table.
struct SeqScanPlan : PlanNode {
  SeqScanPlan() : PlanNode(PlanNodeType::kSeqScan) {}
  TableInfo* table = nullptr;
  std::string alias;
  std::string Describe() const override;
};

/// RECOMMEND operator family (kRecommend / kFilterRecommend). Emits tuples
/// shaped like the ratings table: user id, item id and predicted score at
/// their column positions, NULL elsewhere.
struct RecommendPlan : PlanNode {
  explicit RecommendPlan(PlanNodeType t = PlanNodeType::kRecommend)
      : PlanNode(t) {}
  Recommender* rec = nullptr;
  /// Ratings table backing the recommender (for ANALYZE statistics).
  TableInfo* table = nullptr;
  std::string alias;
  /// Column positions inside `schema` for uid / iid / predicted rating.
  size_t user_col_idx = 0;
  size_t item_col_idx = 0;
  size_t rating_col_idx = 0;
  /// Emit already-rated items with their actual rating (Algorithm 1's
  /// literal behaviour) instead of skipping them.
  bool include_rated = false;
  // FilterRecommend pushdowns (empty optional = unconstrained).
  std::optional<std::vector<int64_t>> user_ids;
  std::optional<std::vector<int64_t>> item_ids;
  /// Sublinear Top-N mode (set by the optimizer's cost pass when a TopN
  /// parent makes per-user pruning profitable): emit only each user's
  /// top-`prune_limit` unseen items, enumerated through the CandidateIndex
  /// postings and bound blocks instead of the full catalog. Result set is
  /// bit-identical to the exact path under the parent TopN.
  bool prune = false;
  size_t prune_limit = 0;
  std::string Describe() const override;
};

/// JOINRECOMMEND: children[0] is the outer relation; for each outer tuple
/// the operator scores (user, outer.item) only. Output schema is
/// recommend-columns ++ outer-columns.
struct JoinRecommendPlan : PlanNode {
  JoinRecommendPlan() : PlanNode(PlanNodeType::kJoinRecommend) {}
  Recommender* rec = nullptr;
  std::string alias;
  size_t user_col_idx = 0;
  size_t item_col_idx = 0;
  size_t rating_col_idx = 0;
  bool include_rated = false;
  std::vector<int64_t> user_ids;   // querying users (non-empty)
  size_t outer_item_col = 0;       // item-id column in the outer schema
  /// Candidate-set zero-fill (CF families): probe-window items outside a
  /// user's candidate set are provably scored 0.0 and skip the model call.
  bool prune = false;
  std::string Describe() const override;
};

/// INDEXRECOMMEND: serves pre-computed scores from the RecScoreIndex
/// best-first (paper Algorithm 3). Falls back to the model for users whose
/// scores are not materialized (cache miss).
struct IndexRecommendPlan : PlanNode {
  IndexRecommendPlan() : PlanNode(PlanNodeType::kIndexRecommend) {}
  Recommender* rec = nullptr;
  std::string alias;
  size_t user_col_idx = 0;
  size_t item_col_idx = 0;
  size_t rating_col_idx = 0;
  std::vector<int64_t> user_ids;  // uPred (non-empty)
  double min_score = -std::numeric_limits<double>::infinity();  // rPred
  std::optional<std::vector<int64_t>> item_ids;                 // iPred
  /// Per-user emission cap (the ORDER BY score DESC LIMIT k rewrite);
  /// 0 = unlimited.
  size_t per_user_limit = 0;
  /// Threshold-prune the model fallback on cache misses (requires
  /// per_user_limit > 0 and no item pushdown).
  bool prune = false;
  std::string Describe() const override;
};

struct FilterPlan : PlanNode {
  FilterPlan() : PlanNode(PlanNodeType::kFilter) {}
  BoundExprPtr predicate;
  std::string Describe() const override;
};

struct ProjectPlan : PlanNode {
  ProjectPlan() : PlanNode(PlanNodeType::kProject) {}
  std::vector<BoundExprPtr> exprs;
  /// SELECT DISTINCT: suppress duplicate output rows (first occurrence
  /// wins, so sorted input stays sorted).
  bool distinct = false;
  std::string Describe() const override;
};

enum class AggKind { kCountStar, kCount, kSum, kAvg, kMin, kMax };

const char* AggKindToString(AggKind k);

/// Hash aggregation: one output tuple per distinct group-key vector, laid
/// out as [group keys..., aggregate results...]. With no group keys, exactly
/// one row is produced (even on empty input, per SQL).
struct AggregatePlan : PlanNode {
  AggregatePlan() : PlanNode(PlanNodeType::kAggregate) {}
  struct Agg {
    AggKind kind = AggKind::kCountStar;
    BoundExprPtr arg;  // null for COUNT(*)
  };
  std::vector<BoundExprPtr> group_keys;
  std::vector<Agg> aggs;
  std::string Describe() const override;
};

struct NestedLoopJoinPlan : PlanNode {
  NestedLoopJoinPlan() : PlanNode(PlanNodeType::kNestedLoopJoin) {}
  BoundExprPtr predicate;  // over concat(left, right); null = cross product
  std::string Describe() const override;
};

struct HashJoinPlan : PlanNode {
  HashJoinPlan() : PlanNode(PlanNodeType::kHashJoin) {}
  BoundExprPtr left_key;   // over left schema
  BoundExprPtr right_key;  // over right schema
  BoundExprPtr residual;   // over concat schema; may be null
  std::string Describe() const override;
};

struct SortPlan : PlanNode {
  SortPlan() : PlanNode(PlanNodeType::kSort) {}
  std::vector<SortKey> keys;
  std::string Describe() const override;
};

struct TopNPlan : PlanNode {
  TopNPlan() : PlanNode(PlanNodeType::kTopN) {}
  std::vector<SortKey> keys;
  size_t n = 0;
  std::string Describe() const override;
};

struct LimitPlan : PlanNode {
  LimitPlan() : PlanNode(PlanNodeType::kLimit) {}
  size_t n = 0;
  std::string Describe() const override;
};

}  // namespace recdb
