// Bound, evaluable expressions: the output of binding an AST Expr against an
// ExecSchema. Column references hold tuple indices; scalar functions
// (ST_Contains, ST_DWithin, ST_Distance, ST_Point, CScore, ABS) are compiled
// to an enum dispatch.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "parser/ast.h"
#include "planner/exec_schema.h"
#include "types/tuple.h"

namespace recdb {

enum class ScalarFunction {
  kStContains,
  kStDWithin,
  kStDistance,
  kStPoint,
  kCScore,  // combined rating/proximity score: rating / (1 + distance)
  kAbs,
};

enum class BoundExprKind {
  kConstant,
  kColumn,
  kBinary,
  kNot,
  kNegate,
  kFunction,
  kInList,
};

class BoundExpr;
using BoundExprPtr = std::unique_ptr<BoundExpr>;

class BoundExpr {
 public:
  BoundExprKind kind;

  // kConstant
  Value constant;

  // kColumn
  size_t column_idx = 0;

  // kBinary
  BinaryOp op = BinaryOp::kEq;
  BoundExprPtr left;   // also operand for kNot / kNegate and needle for kInList
  BoundExprPtr right;

  // kFunction
  ScalarFunction func = ScalarFunction::kAbs;
  std::vector<BoundExprPtr> args;

  // kInList: constants to match against (all literals after binding)
  std::vector<Value> in_values;
  bool negated = false;

  /// Evaluate against a tuple.
  Result<Value> Eval(const Tuple& tuple) const;

  /// Evaluate as a boolean predicate (SQL truthiness; NULL -> false).
  Result<bool> EvalPredicate(const Tuple& tuple) const;

  BoundExprPtr Clone() const;

  /// All column indices referenced (for pushdown analysis).
  void CollectColumns(std::vector<size_t>* out) const;

  /// Rewrite every column index through `mapping` (old index -> new index);
  /// indices absent from the mapping are an internal error.
  Status RemapColumns(const std::vector<int>& mapping);

  static BoundExprPtr MakeConstant(Value v);
  static BoundExprPtr MakeColumn(size_t idx);
  static BoundExprPtr MakeBinary(BinaryOp op, BoundExprPtr l, BoundExprPtr r);
};

/// Bind an AST expression against a schema. Errors on unknown/ambiguous
/// columns, unknown functions, or wrong arity.
Result<BoundExprPtr> BindExpr(const Expr& expr, const ExecSchema& schema);

}  // namespace recdb
