#include "planner/optimizer.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "obs/metrics.h"
#include "planner/cost_model.h"

namespace recdb {

std::vector<BoundExprPtr> SplitConjuncts(BoundExprPtr expr) {
  std::vector<BoundExprPtr> out;
  if (expr == nullptr) return out;
  if (expr->kind == BoundExprKind::kBinary && expr->op == BinaryOp::kAnd) {
    auto left = SplitConjuncts(std::move(expr->left));
    auto right = SplitConjuncts(std::move(expr->right));
    for (auto& e : left) out.push_back(std::move(e));
    for (auto& e : right) out.push_back(std::move(e));
    return out;
  }
  out.push_back(std::move(expr));
  return out;
}

BoundExprPtr CombineConjuncts(std::vector<BoundExprPtr> conjuncts) {
  BoundExprPtr result;
  for (auto& c : conjuncts) {
    if (result == nullptr) {
      result = std::move(c);
    } else {
      result = BoundExpr::MakeBinary(BinaryOp::kAnd, std::move(result),
                                     std::move(c));
    }
  }
  return result;
}

namespace {

/// Column-index span classification for join pushdown.
enum class Side { kLeft, kRight, kBoth, kNone };

Side ClassifyColumns(const BoundExpr& e, size_t left_width) {
  std::vector<size_t> cols;
  e.CollectColumns(&cols);
  if (cols.empty()) return Side::kNone;
  bool has_left = false, has_right = false;
  for (size_t c : cols) {
    if (c < left_width)
      has_left = true;
    else
      has_right = true;
  }
  if (has_left && has_right) return Side::kBoth;
  return has_left ? Side::kLeft : Side::kRight;
}

/// Identity mapping shifted by -offset (for pushing right-side predicates).
std::vector<int> ShiftMapping(size_t width, size_t offset) {
  std::vector<int> m(width, -1);
  for (size_t i = offset; i < width; ++i) {
    m[i] = static_cast<int>(i - offset);
  }
  return m;
}

/// Wrap `child` in a Filter with `pred` (merging if child is a Filter).
PlanNodePtr WrapFilter(PlanNodePtr child, BoundExprPtr pred) {
  if (pred == nullptr) return child;
  if (child->type == PlanNodeType::kFilter) {
    auto* f = static_cast<FilterPlan*>(child.get());
    f->predicate = BoundExpr::MakeBinary(BinaryOp::kAnd,
                                         std::move(f->predicate),
                                         std::move(pred));
    return child;
  }
  auto filter = std::make_unique<FilterPlan>();
  filter->predicate = std::move(pred);
  filter->schema = child->schema;
  filter->children.push_back(std::move(child));
  return filter;
}

/// Match `expr` as  Column(col) = <int const>  (either operand order).
/// Returns the constant on success.
std::optional<int64_t> MatchColumnEqConst(const BoundExpr& expr,
                                          size_t col) {
  if (expr.kind != BoundExprKind::kBinary || expr.op != BinaryOp::kEq) {
    return std::nullopt;
  }
  const BoundExpr* col_side = nullptr;
  const BoundExpr* const_side = nullptr;
  if (expr.left->kind == BoundExprKind::kColumn &&
      expr.right->kind == BoundExprKind::kConstant) {
    col_side = expr.left.get();
    const_side = expr.right.get();
  } else if (expr.right->kind == BoundExprKind::kColumn &&
             expr.left->kind == BoundExprKind::kConstant) {
    col_side = expr.right.get();
    const_side = expr.left.get();
  } else {
    return std::nullopt;
  }
  if (col_side->column_idx != col) return std::nullopt;
  if (const_side->constant.type() != TypeId::kInt64) return std::nullopt;
  return const_side->constant.AsInt();
}

/// Match `expr` as  Column(col) IN (int consts...), not negated.
std::optional<std::vector<int64_t>> MatchColumnInList(const BoundExpr& expr,
                                                      size_t col) {
  if (expr.kind != BoundExprKind::kInList || expr.negated) return std::nullopt;
  if (expr.left->kind != BoundExprKind::kColumn ||
      expr.left->column_idx != col) {
    return std::nullopt;
  }
  std::vector<int64_t> out;
  for (const auto& v : expr.in_values) {
    if (v.type() != TypeId::kInt64) return std::nullopt;
    out.push_back(v.AsInt());
  }
  return out;
}

/// Intersect `current` (unset = universe) with `incoming`.
void IntersectIds(std::optional<std::vector<int64_t>>* current,
                  std::vector<int64_t> incoming) {
  std::sort(incoming.begin(), incoming.end());
  incoming.erase(std::unique(incoming.begin(), incoming.end()),
                 incoming.end());
  if (!current->has_value()) {
    *current = std::move(incoming);
    return;
  }
  std::unordered_set<int64_t> keep(incoming.begin(), incoming.end());
  auto& cur = **current;
  cur.erase(std::remove_if(cur.begin(), cur.end(),
                           [&](int64_t v) { return keep.count(v) == 0; }),
            cur.end());
}

}  // namespace

Result<PlanNodePtr> Optimizer::Optimize(PlanNodePtr plan) {
  for (int pass = 0; pass < 12; ++pass) {
    bool changed = false;
    RECDB_ASSIGN_OR_RETURN(plan, RewritePass(std::move(plan), &changed));
    if (!changed) break;
  }
  if (options_.enable_cost_based) {
    RECDB_ASSIGN_OR_RETURN(plan, CostPass(std::move(plan)));
    AnnotatePlan(plan.get(), cost_env_);
  }
  return plan;
}

Result<PlanNodePtr> Optimizer::RewritePass(PlanNodePtr node, bool* changed) {
  // Apply local rules at this node first (they may create children that the
  // recursion below then visits).
  RECDB_ASSIGN_OR_RETURN(node, MergeFilters(std::move(node), changed));
  RECDB_ASSIGN_OR_RETURN(node, PushFilterThroughJoin(std::move(node), changed));
  if (options_.enable_filter_recommend) {
    RECDB_ASSIGN_OR_RETURN(node,
                           PushFilterIntoRecommend(std::move(node), changed));
  }
  if (options_.enable_hash_join) {
    RECDB_ASSIGN_OR_RETURN(node, NljToHashJoin(std::move(node), changed));
  }
  if (options_.enable_join_recommend) {
    RECDB_ASSIGN_OR_RETURN(node, JoinToJoinRecommend(std::move(node), changed));
  }
  if (options_.enable_index_recommend) {
    RECDB_ASSIGN_OR_RETURN(node,
                           TopNToIndexRecommend(std::move(node), changed));
  }
  for (auto& child : node->children) {
    RECDB_ASSIGN_OR_RETURN(child, RewritePass(std::move(child), changed));
  }
  return node;
}

Result<PlanNodePtr> Optimizer::MergeFilters(PlanNodePtr node, bool* changed) {
  if (node->type != PlanNodeType::kFilter) return node;
  auto* filter = static_cast<FilterPlan*>(node.get());
  if (filter->children[0]->type != PlanNodeType::kFilter) return node;
  auto* inner = static_cast<FilterPlan*>(filter->children[0].get());
  filter->predicate = BoundExpr::MakeBinary(BinaryOp::kAnd,
                                            std::move(filter->predicate),
                                            std::move(inner->predicate));
  PlanNodePtr grandchild = std::move(inner->children[0]);
  filter->children[0] = std::move(grandchild);
  *changed = true;
  obs::Count(obs::Counter::kPlannerRuleMergeFilters);
  return node;
}

Result<PlanNodePtr> Optimizer::PushFilterThroughJoin(PlanNodePtr node,
                                                     bool* changed) {
  if (node->type != PlanNodeType::kFilter) return node;
  auto* filter = static_cast<FilterPlan*>(node.get());
  PlanNode* child = filter->children[0].get();
  if (child->type != PlanNodeType::kNestedLoopJoin &&
      child->type != PlanNodeType::kHashJoin) {
    return node;
  }
  size_t left_width = child->children[0]->schema.NumColumns();
  size_t total_width = child->schema.NumColumns();

  auto conjuncts = SplitConjuncts(std::move(filter->predicate));
  std::vector<BoundExprPtr> left_preds, right_preds, join_preds, keep;
  for (auto& c : conjuncts) {
    switch (ClassifyColumns(*c, left_width)) {
      case Side::kLeft:
        left_preds.push_back(std::move(c));
        break;
      case Side::kRight: {
        RECDB_RETURN_NOT_OK(
            c->RemapColumns(ShiftMapping(total_width, left_width)));
        right_preds.push_back(std::move(c));
        break;
      }
      case Side::kBoth:
        join_preds.push_back(std::move(c));
        break;
      case Side::kNone:
        keep.push_back(std::move(c));  // constant predicate: leave on top
        break;
    }
  }
  if (left_preds.empty() && right_preds.empty() && join_preds.empty()) {
    filter->predicate = CombineConjuncts(std::move(keep));
    return node;
  }
  *changed = true;
  obs::Count(obs::Counter::kPlannerRuleFilterPushdown);

  if (!left_preds.empty()) {
    child->children[0] = WrapFilter(std::move(child->children[0]),
                                    CombineConjuncts(std::move(left_preds)));
  }
  if (!right_preds.empty()) {
    child->children[1] = WrapFilter(std::move(child->children[1]),
                                    CombineConjuncts(std::move(right_preds)));
  }
  if (!join_preds.empty()) {
    if (child->type == PlanNodeType::kNestedLoopJoin) {
      auto* nlj = static_cast<NestedLoopJoinPlan*>(child);
      if (nlj->predicate != nullptr) {
        join_preds.push_back(std::move(nlj->predicate));
      }
      nlj->predicate = CombineConjuncts(std::move(join_preds));
    } else {
      auto* hj = static_cast<HashJoinPlan*>(child);
      if (hj->residual != nullptr) {
        join_preds.push_back(std::move(hj->residual));
      }
      hj->residual = CombineConjuncts(std::move(join_preds));
    }
  }

  PlanNodePtr join = std::move(filter->children[0]);
  if (keep.empty()) return join;
  return WrapFilter(std::move(join), CombineConjuncts(std::move(keep)));
}

Result<PlanNodePtr> Optimizer::PushFilterIntoRecommend(PlanNodePtr node,
                                                       bool* changed) {
  if (node->type != PlanNodeType::kFilter) return node;
  auto* filter = static_cast<FilterPlan*>(node.get());
  PlanNode* child = filter->children[0].get();
  if (child->type != PlanNodeType::kRecommend &&
      child->type != PlanNodeType::kFilterRecommend) {
    return node;
  }
  auto* rec = static_cast<RecommendPlan*>(child);

  auto conjuncts = SplitConjuncts(std::move(filter->predicate));
  std::vector<BoundExprPtr> keep;
  bool pushed = false;
  for (auto& c : conjuncts) {
    if (auto v = MatchColumnEqConst(*c, rec->user_col_idx)) {
      IntersectIds(&rec->user_ids, {*v});
      pushed = true;
      continue;
    }
    if (auto vs = MatchColumnInList(*c, rec->user_col_idx)) {
      IntersectIds(&rec->user_ids, std::move(*vs));
      pushed = true;
      continue;
    }
    if (auto v = MatchColumnEqConst(*c, rec->item_col_idx)) {
      IntersectIds(&rec->item_ids, {*v});
      pushed = true;
      continue;
    }
    if (auto vs = MatchColumnInList(*c, rec->item_col_idx)) {
      IntersectIds(&rec->item_ids, std::move(*vs));
      pushed = true;
      continue;
    }
    keep.push_back(std::move(c));
  }
  if (!pushed) {
    filter->predicate = CombineConjuncts(std::move(keep));
    return node;
  }
  *changed = true;
  obs::Count(obs::Counter::kPlannerRuleFilterRecommend);
  rec->type = PlanNodeType::kFilterRecommend;
  PlanNodePtr rec_node = std::move(filter->children[0]);
  return WrapFilter(std::move(rec_node), CombineConjuncts(std::move(keep)));
}

Result<PlanNodePtr> Optimizer::NljToHashJoin(PlanNodePtr node, bool* changed) {
  if (node->type != PlanNodeType::kNestedLoopJoin) return node;
  auto* nlj = static_cast<NestedLoopJoinPlan*>(node.get());
  if (nlj->predicate == nullptr) return node;

  size_t left_width = nlj->children[0]->schema.NumColumns();
  auto conjuncts = SplitConjuncts(std::move(nlj->predicate));
  // Find one equi-conjunct with one side entirely-left, other entirely-right.
  int eq_idx = -1;
  bool left_is_first = true;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    const BoundExpr& c = *conjuncts[i];
    if (c.kind != BoundExprKind::kBinary || c.op != BinaryOp::kEq) continue;
    Side ls = ClassifyColumns(*c.left, left_width);
    Side rs = ClassifyColumns(*c.right, left_width);
    if (ls == Side::kLeft && rs == Side::kRight) {
      eq_idx = static_cast<int>(i);
      left_is_first = true;
      break;
    }
    if (ls == Side::kRight && rs == Side::kLeft) {
      eq_idx = static_cast<int>(i);
      left_is_first = false;
      break;
    }
  }
  if (eq_idx < 0) {
    nlj->predicate = CombineConjuncts(std::move(conjuncts));
    return node;
  }
  *changed = true;
  obs::Count(obs::Counter::kPlannerRuleHashJoin);

  auto hj = std::make_unique<HashJoinPlan>();
  hj->schema = nlj->schema;
  BoundExprPtr eq = std::move(conjuncts[eq_idx]);
  conjuncts.erase(conjuncts.begin() + eq_idx);
  hj->residual = CombineConjuncts(std::move(conjuncts));
  BoundExprPtr lkey = left_is_first ? std::move(eq->left) : std::move(eq->right);
  BoundExprPtr rkey = left_is_first ? std::move(eq->right) : std::move(eq->left);
  // Keys are evaluated against the child schemas: remap the right key.
  RECDB_RETURN_NOT_OK(rkey->RemapColumns(
      ShiftMapping(nlj->schema.NumColumns(), left_width)));
  hj->left_key = std::move(lkey);
  hj->right_key = std::move(rkey);
  hj->children = std::move(nlj->children);
  return PlanNodePtr(std::move(hj));
}

Result<PlanNodePtr> Optimizer::JoinToJoinRecommend(PlanNodePtr node,
                                                   bool* changed) {
  if (node->type != PlanNodeType::kHashJoin) return node;
  auto* hj = static_cast<HashJoinPlan*>(node.get());
  if (hj->left_key->kind != BoundExprKind::kColumn ||
      hj->right_key->kind != BoundExprKind::kColumn) {
    return node;
  }

  // Which side is a (Filter)Recommend keyed on its item column?
  auto is_rec_side = [](const PlanNode& n, const BoundExpr& key) {
    if (n.type != PlanNodeType::kRecommend &&
        n.type != PlanNodeType::kFilterRecommend) {
      return false;
    }
    const auto& rec = static_cast<const RecommendPlan&>(n);
    return key.column_idx == rec.item_col_idx;
  };

  int rec_side = -1;
  if (is_rec_side(*hj->children[0], *hj->left_key)) rec_side = 0;
  else if (is_rec_side(*hj->children[1], *hj->right_key)) rec_side = 1;
  if (rec_side < 0) return node;

  auto* rec = static_cast<RecommendPlan*>(hj->children[rec_side].get());
  // JOINRECOMMEND targets specific querying users (paper Section IV-B.2);
  // without a user filter, scoring is driven per-user anyway — require the
  // pushed-down user list. Item pushdowns would conflict with the outer
  // relation driving item choice; bail out in that case.
  if (!rec->user_ids.has_value() || rec->user_ids->empty()) return node;
  if (rec->item_ids.has_value()) return node;
  *changed = true;
  obs::Count(obs::Counter::kPlannerRuleJoinRecommend);

  size_t rec_width = rec->schema.NumColumns();
  PlanNodePtr outer = std::move(hj->children[1 - rec_side]);
  size_t outer_width = outer->schema.NumColumns();
  const BoundExpr& outer_key =
      rec_side == 0 ? *hj->right_key : *hj->left_key;

  auto jr = std::make_unique<JoinRecommendPlan>();
  jr->rec = rec->rec;
  jr->alias = rec->alias;
  jr->user_col_idx = rec->user_col_idx;
  jr->item_col_idx = rec->item_col_idx;
  jr->rating_col_idx = rec->rating_col_idx;
  jr->include_rated = rec->include_rated;
  jr->user_ids = *rec->user_ids;
  jr->outer_item_col = outer_key.column_idx;
  jr->schema = ExecSchema::Concat(rec->schema, outer->schema);
  jr->children.push_back(std::move(outer));

  BoundExprPtr residual = std::move(hj->residual);
  PlanNodePtr result = std::move(jr);

  if (rec_side == 0) {
    // Output order rec ++ outer matches the join's left ++ right directly.
    result = WrapFilter(std::move(result), std::move(residual));
    return result;
  }
  // Join output was outer ++ rec; JoinRecommend emits rec ++ outer. Remap the
  // residual and add a permutation projection restoring the original order.
  size_t total = rec_width + outer_width;
  if (residual != nullptr) {
    std::vector<int> mapping(total, -1);
    for (size_t i = 0; i < outer_width; ++i) {
      mapping[i] = static_cast<int>(rec_width + i);
    }
    for (size_t i = 0; i < rec_width; ++i) {
      mapping[outer_width + i] = static_cast<int>(i);
    }
    RECDB_RETURN_NOT_OK(residual->RemapColumns(mapping));
    result = WrapFilter(std::move(result), std::move(residual));
  }
  auto proj = std::make_unique<ProjectPlan>();
  proj->schema = hj->schema;  // original outer ++ rec order
  for (size_t i = 0; i < outer_width; ++i) {
    proj->exprs.push_back(BoundExpr::MakeColumn(rec_width + i));
  }
  for (size_t i = 0; i < rec_width; ++i) {
    proj->exprs.push_back(BoundExpr::MakeColumn(i));
  }
  proj->children.push_back(std::move(result));
  return PlanNodePtr(std::move(proj));
}

Result<PlanNodePtr> Optimizer::TopNToIndexRecommend(PlanNodePtr node,
                                                    bool* changed) {
  if (node->type != PlanNodeType::kTopN) return node;
  auto* topn = static_cast<TopNPlan*>(node.get());
  if (topn->n == 0 || topn->keys.size() != 1 || !topn->keys[0].desc) {
    return node;
  }
  const BoundExpr& key = *topn->keys[0].expr;
  if (key.kind != BoundExprKind::kColumn) return node;
  PlanNode* child = topn->children[0].get();
  if (child->type != PlanNodeType::kRecommend &&
      child->type != PlanNodeType::kFilterRecommend) {
    return node;
  }
  auto* rec = static_cast<RecommendPlan*>(child);
  if (key.column_idx != rec->rating_col_idx) return node;
  if (rec->include_rated) return node;  // index stores unseen items only
  // An empty index can serve nobody: every lookup would fall back to the
  // model anyway, so keep the Recommend plan. (With materialized scores the
  // cost pass still weighs per-user coverage before committing.)
  if (rec->rec->score_index()->NumUsers() == 0) return node;
  *changed = true;
  obs::Count(obs::Counter::kPlannerRuleIndexRecommend);

  auto ir = std::make_unique<IndexRecommendPlan>();
  ir->rec = rec->rec;
  ir->alias = rec->alias;
  ir->user_col_idx = rec->user_col_idx;
  ir->item_col_idx = rec->item_col_idx;
  ir->rating_col_idx = rec->rating_col_idx;
  ir->schema = rec->schema;
  if (rec->user_ids.has_value()) ir->user_ids = *rec->user_ids;
  ir->item_ids = rec->item_ids;
  ir->per_user_limit = topn->n;
  topn->children[0] = std::move(ir);
  return node;
}

// ----------------------------------------------------------------------
// Phase 2: cost-based reconsideration
// ----------------------------------------------------------------------

namespace {

void CheckGrounded(const PlanNode& n, bool* any_scan, bool* all_analyzed) {
  if (n.type == PlanNodeType::kSeqScan) {
    *any_scan = true;
    const auto& s = static_cast<const SeqScanPlan&>(n);
    if (s.table == nullptr || !s.table->stats.has_value()) {
      *all_analyzed = false;
    }
  }
  for (const auto& c : n.children) CheckGrounded(*c, any_scan, all_analyzed);
}

/// True when every base table under `node` has ANALYZE statistics (and
/// there is at least one): the cardinality estimate is grounded in data,
/// not in the blind kDefaultTableRows guess.
bool EstimatesGrounded(const PlanNode& node) {
  bool any_scan = false, all_analyzed = true;
  CheckGrounded(node, &any_scan, &all_analyzed);
  return any_scan && all_analyzed;
}

}  // namespace

Result<PlanNodePtr> Optimizer::CostPass(PlanNodePtr node) {
  for (auto& child : node->children) {
    RECDB_ASSIGN_OR_RETURN(child, CostPass(std::move(child)));
  }
  RECDB_ASSIGN_OR_RETURN(node, ReconsiderItemPushdown(std::move(node)));
  RECDB_ASSIGN_OR_RETURN(node, ReconsiderJoinRecommend(std::move(node)));
  RECDB_ASSIGN_OR_RETURN(node, ReconsiderIndexRecommend(std::move(node)));
  RECDB_ASSIGN_OR_RETURN(node, ReconsiderPrunedTopN(std::move(node)));
  OrderFilterConjuncts(node.get());
  return node;
}

Result<PlanNodePtr> Optimizer::ReconsiderItemPushdown(PlanNodePtr node) {
  if (node->type != PlanNodeType::kFilterRecommend) return node;
  auto* rec = static_cast<RecommendPlan*>(node.get());
  if (!rec->item_ids.has_value() || rec->item_ids->empty()) return node;
  // Only reconsider once ANALYZE has run on the ratings table; without
  // statistics the plan must match the rule-only optimizer exactly.
  if (rec->table == nullptr || !rec->table->stats.has_value()) return node;

  const CostParams& p = cost_env_.params;
  RecStats rs = RecStats::From(*rec->rec);
  double users = rec->user_ids.has_value()
                     ? static_cast<double>(rec->user_ids->size())
                     : rs.num_users;
  users = std::max(1.0, users);
  double n_items = static_cast<double>(rec->item_ids->size());
  double per_user = rec->include_rated ? rs.num_items : rs.avg_unseen;
  // Pushed-down item list: probe + predict each listed item. Alternative:
  // predict every candidate once and filter the output (paper Fig. 6 —
  // FILTERRECOMMEND loses once the predicate stops being selective).
  double cost_push = users * n_items * (p.predict + p.item_probe);
  double cost_scan = users * per_user * (p.predict + p.filter_eval);
  if (cost_push <= cost_scan) return node;
  obs::Count(obs::Counter::kPlannerCostFlips);

  auto pred = std::make_unique<BoundExpr>();
  pred->kind = BoundExprKind::kInList;
  pred->left = BoundExpr::MakeColumn(rec->item_col_idx);
  for (int64_t id : *rec->item_ids) pred->in_values.push_back(Value::Int(id));
  rec->item_ids.reset();
  if (!rec->user_ids.has_value()) rec->type = PlanNodeType::kRecommend;
  rec->est_rows = rec->est_cost = -1;
  return WrapFilter(std::move(node), std::move(pred));
}

Result<PlanNodePtr> Optimizer::ReconsiderJoinRecommend(PlanNodePtr node) {
  if (node->type != PlanNodeType::kJoinRecommend) return node;
  auto* jr = static_cast<JoinRecommendPlan*>(node.get());
  if (jr->children.empty()) return node;
  PlanNode& outer = *jr->children[0];
  if (!EstimatesGrounded(outer)) return node;

  const CostParams& p = cost_env_.params;
  RecStats rs = RecStats::From(*jr->rec);
  double outer_rows = outer.EstimateRows(cost_env_);
  double users = static_cast<double>(std::max<size_t>(1, jr->user_ids.size()));
  // JoinRecommend predicts once per (outer row, user); the hash-join
  // alternative predicts each unseen item once and probes.
  double cost_join = outer_rows * users * (p.predict + p.item_probe);
  double cost_hash = users * rs.avg_unseen * p.predict +
                     (outer_rows + users * rs.avg_unseen) * p.hash_probe;
  if (cost_join <= cost_hash) return node;
  obs::Count(obs::Counter::kPlannerCostFlips);

  size_t outer_w = outer.schema.NumColumns();
  size_t rec_w = jr->schema.NumColumns() - outer_w;
  std::vector<ExecColumn> rec_cols(jr->schema.columns().begin(),
                                   jr->schema.columns().begin() + rec_w);
  auto rec = std::make_unique<RecommendPlan>(PlanNodeType::kFilterRecommend);
  rec->rec = jr->rec;
  rec->alias = jr->alias;
  rec->user_col_idx = jr->user_col_idx;
  rec->item_col_idx = jr->item_col_idx;
  rec->rating_col_idx = jr->rating_col_idx;
  rec->include_rated = jr->include_rated;
  rec->user_ids = jr->user_ids;
  rec->schema = ExecSchema(std::move(rec_cols));

  auto hj = std::make_unique<HashJoinPlan>();
  hj->schema = jr->schema;
  hj->left_key = BoundExpr::MakeColumn(jr->item_col_idx);
  hj->right_key = BoundExpr::MakeColumn(jr->outer_item_col);
  hj->children.push_back(std::move(rec));
  hj->children.push_back(std::move(jr->children[0]));
  return PlanNodePtr(std::move(hj));
}

Result<PlanNodePtr> Optimizer::ReconsiderIndexRecommend(PlanNodePtr node) {
  if (node->type != PlanNodeType::kIndexRecommend) return node;
  auto* ix = static_cast<IndexRecommendPlan*>(node.get());

  const CostParams& p = cost_env_.params;
  RecStats rs = RecStats::From(*ix->rec);
  double users = static_cast<double>(std::max<size_t>(1, ix->user_ids.size()));
  double coverage = IndexCoverageFraction(*ix->rec, ix->user_ids);
  double served = rs.avg_unseen;
  if (ix->per_user_limit > 0) {
    served = std::min(served, static_cast<double>(ix->per_user_limit));
  }
  if (ix->item_ids.has_value()) {
    served = std::min(served, static_cast<double>(ix->item_ids->size()));
  }
  // Covered users stream `served` entries from the index; uncovered users
  // fall back to the model (predict all unseen, then insert the scores).
  double cost_index =
      users * (coverage * served * p.index_entry +
               (1.0 - coverage) * rs.avg_unseen * (p.predict + p.index_entry));
  double cost_model = users * rs.avg_unseen * (p.predict + p.topn_entry);
  if (cost_index <= cost_model) return node;
  obs::Count(obs::Counter::kPlannerCostFlips);

  // Decline the index: recompute from the model; the TopN above still
  // applies the per-user limit.
  bool has_users = !ix->user_ids.empty();
  bool has_items = ix->item_ids.has_value();
  auto rec = std::make_unique<RecommendPlan>(
      has_users || has_items ? PlanNodeType::kFilterRecommend
                             : PlanNodeType::kRecommend);
  rec->rec = ix->rec;
  rec->alias = ix->alias;
  rec->user_col_idx = ix->user_col_idx;
  rec->item_col_idx = ix->item_col_idx;
  rec->rating_col_idx = ix->rating_col_idx;
  rec->schema = ix->schema;
  if (has_users) rec->user_ids = ix->user_ids;
  rec->item_ids = ix->item_ids;
  return PlanNodePtr(std::move(rec));
}

Result<PlanNodePtr> Optimizer::ReconsiderPrunedTopN(PlanNodePtr node) {
  if (!options_.enable_pruned_topn) return node;
  const CostParams& p = cost_env_.params;

  // JoinRecommend: candidate bitmaps let FillWindow skip the model for
  // provably-zero (outer row, user) pairs. Priced against the walk cost.
  if (node->type == PlanNodeType::kJoinRecommend) {
    auto* jr = static_cast<JoinRecommendPlan*>(node.get());
    if (jr->prune || jr->children.empty()) return node;
    if (!EstimatesGrounded(*jr->children[0])) return node;
    auto index = jr->rec->candidate_index();
    if (index == nullptr || !index->prunable()) return node;
    RecStats rs = RecStats::From(*jr->rec);
    if (rs.num_items <= 0) return node;
    const CandidateIndex::Stats& st = index->stats();
    double outer_rows = jr->children[0]->EstimateRows(cost_env_);
    double users =
        static_cast<double>(std::max<size_t>(1, jr->user_ids.size()));
    double cand_frac = std::min(1.0, st.avg_candidates / rs.num_items);
    double cost_exact = outer_rows * users * p.predict;
    double cost_prune =
        users * st.avg_gen_ops * p.scan_row +
        outer_rows * users * (p.bound_check + cand_frac * p.predict);
    if (cost_prune < cost_exact) {
      jr->prune = true;
      jr->est_rows = jr->est_cost = -1;
      obs::Count(obs::Counter::kPrunePlanChosen);
    } else {
      obs::Count(obs::Counter::kPrunePlanDeclined);
    }
    return node;
  }

  if (node->type != PlanNodeType::kTopN) return node;
  auto* topn = static_cast<TopNPlan*>(node.get());
  if (topn->n == 0 || topn->keys.size() != 1 || !topn->keys[0].desc) {
    return node;
  }
  const BoundExpr& key = *topn->keys[0].expr;
  if (key.kind != BoundExprKind::kColumn) return node;
  PlanNode* child = topn->children[0].get();

  // IndexRecommend: pruning only changes the index-miss fallback, so weigh
  // it against exact fallback scoring for the uncovered user fraction.
  if (child->type == PlanNodeType::kIndexRecommend) {
    auto* ix = static_cast<IndexRecommendPlan*>(child);
    if (ix->prune || key.column_idx != ix->rating_col_idx) return node;
    if (ix->item_ids.has_value() || ix->per_user_limit == 0) return node;
    auto index = ix->rec->candidate_index();
    if (index == nullptr || !index->prunable()) return node;
    RecStats rs = RecStats::From(*ix->rec);
    double users =
        static_cast<double>(std::max<size_t>(1, ix->user_ids.size()));
    double misses = (1.0 - IndexCoverageFraction(*ix->rec, ix->user_ids)) *
                    users;
    if (misses <= 0) return node;  // fully covered: fallback never runs
    double cost_exact = misses * rs.avg_unseen * p.predict;
    double cost_prune = PrunedTopNCost(index->stats(), misses, p);
    if (cost_prune < cost_exact) {
      ix->prune = true;
      ix->est_rows = ix->est_cost = -1;
      obs::Count(obs::Counter::kPrunePlanChosen);
    } else {
      obs::Count(obs::Counter::kPrunePlanDeclined);
    }
    return node;
  }

  if (child->type != PlanNodeType::kRecommend &&
      child->type != PlanNodeType::kFilterRecommend) {
    return node;
  }
  auto* rec = static_cast<RecommendPlan*>(child);
  if (rec->prune || key.column_idx != rec->rating_col_idx) return node;
  if (rec->include_rated || rec->item_ids.has_value()) return node;
  // Only commit once ANALYZE has run on the ratings table: without grounded
  // statistics the plan must match the rule-only optimizer exactly.
  if (rec->table == nullptr || !rec->table->stats.has_value()) return node;
  auto index = rec->rec->candidate_index();
  if (index == nullptr || !index->prunable()) return node;

  RecStats rs = RecStats::From(*rec->rec);
  double users = rec->user_ids.has_value()
                     ? static_cast<double>(rec->user_ids->size())
                     : rs.num_users;
  users = std::max(1.0, users);
  double cost_exact = users * rs.avg_unseen * (p.predict + p.topn_entry);
  double cost_prune = PrunedTopNCost(index->stats(), users, p);
  if (cost_prune < cost_exact) {
    rec->prune = true;
    rec->prune_limit = topn->n;
    rec->est_rows = rec->est_cost = -1;
    topn->est_rows = topn->est_cost = -1;
    obs::Count(obs::Counter::kPrunePlanChosen);
  } else {
    obs::Count(obs::Counter::kPrunePlanDeclined);
  }
  return node;
}

void Optimizer::OrderFilterConjuncts(PlanNode* node) {
  if (node->type != PlanNodeType::kFilter || node->children.empty()) return;
  auto* f = static_cast<FilterPlan*>(node);
  if (f->predicate == nullptr) return;
  auto conjuncts = SplitConjuncts(std::move(f->predicate));
  if (conjuncts.size() > 1) {
    const PlanNode& input = *node->children[0];
    std::vector<double> sel(conjuncts.size());
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      sel[i] = EstimateSelectivity(*conjuncts[i], input);
    }
    std::vector<size_t> order(conjuncts.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) { return sel[a] < sel[b]; });
    std::vector<BoundExprPtr> sorted;
    sorted.reserve(conjuncts.size());
    for (size_t i : order) sorted.push_back(std::move(conjuncts[i]));
    conjuncts = std::move(sorted);
  }
  f->predicate = CombineConjuncts(std::move(conjuncts));
}

}  // namespace recdb
