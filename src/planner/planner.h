// Planner: binds a parsed SELECT against the catalog and recommender
// registry and produces an executable plan tree.
//
// Plan shape before optimization:
//   Project( [TopN|Sort|Limit]( Filter( cross-join of scans/recommends ) ) )
// The RECOMMEND clause replaces the ratings table's scan with a Recommend
// node whose output is shaped like the ratings table (paper Section IV-B:
// the operator is always pushed to the bottom of the pipeline).
#pragma once

#include "api/recommender_registry.h"
#include "parser/ast.h"
#include "planner/plan_node.h"
#include "storage/catalog.h"

namespace recdb {

struct PlannerOptions {
  /// Push uid/iid predicates into the RECOMMEND operator (FilterRecommend).
  bool enable_filter_recommend = true;
  /// Rewrite item-equality joins over RECOMMEND into JoinRecommend.
  bool enable_join_recommend = true;
  /// Rewrite top-k-by-score over RECOMMEND into IndexRecommend.
  bool enable_index_recommend = true;
  /// Convert equality nested-loop joins into hash joins.
  bool enable_hash_join = true;
  /// Emit already-rated items with their actual rating (Algorithm 1's
  /// literal behaviour). Default: unseen items only (paper prose).
  bool include_rated = false;
  /// Phase-2 cost-based reconsideration: using ANALYZE statistics and live
  /// recommender state, undo a rule rewrite when the alternative is cheaper,
  /// order filter conjuncts by selectivity, and annotate EXPLAIN with
  /// est_rows/est_cost. Off = rule-only planning (pre-cost behaviour).
  bool enable_cost_based = true;
  /// Sublinear Top-N: let the cost pass turn TopN-over-Recommend into a
  /// pruned per-user Top-K (CandidateIndex postings + WAND-style block
  /// bounds) when ANALYZE-grounded estimates favor it. Result sets are
  /// bit-identical to the exact plan; off = always score the full catalog.
  bool enable_pruned_topn = true;
};

/// One-line summary of the active options for the EXPLAIN header, e.g.
/// "options: filter_recommend=on join_recommend=on index_recommend=on
///  hash_join=on cost_based=on parallelism=4".
std::string PlannerOptionsSummary(const PlannerOptions& options);

struct PlannedQuery {
  PlanNodePtr plan;
  std::vector<std::string> output_names;
};

class Planner {
 public:
  Planner(Catalog* catalog, RecommenderRegistry* registry,
          PlannerOptions options = {})
      : catalog_(catalog), registry_(registry), options_(options) {}

  /// Bind + plan (no optimization; see Optimizer).
  Result<PlannedQuery> PlanSelect(const SelectStatement& stmt);

  const PlannerOptions& options() const { return options_; }

 private:
  /// Build the base input for one FROM entry: a SeqScan, or a Recommend
  /// node when the RECOMMEND clause targets this table reference.
  Result<PlanNodePtr> PlanTableRef(const SelectStatement& stmt,
                                   const TableRef& ref,
                                   bool is_recommend_target);

  /// Which FROM entry the RECOMMEND clause applies to.
  Result<size_t> FindRecommendTarget(const SelectStatement& stmt) const;

  Catalog* catalog_;
  RecommenderRegistry* registry_;
  PlannerOptions options_;
};

}  // namespace recdb
