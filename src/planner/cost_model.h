// Cost model for recommendation-aware plan selection.
//
// Two statistic sources feed the model:
//   - ANALYZE statistics (stats/table_stats.h) persisted in the catalog:
//     row counts, per-column distinct/min-max and equi-width histograms.
//     Used for predicate selectivity and base-table cardinality.
//   - Live recommender state (rating matrix + RecScoreIndex): matrix
//     density, average ratings per user, and index coverage of the queried
//     users. Always available, even before any ANALYZE.
//
// PlanNode::EstimateRows / EstimateCost (declared in plan_node.h) are
// implemented here; they recurse bottom-up and cache their results in
// est_rows / est_cost for EXPLAIN rendering.
#pragma once

#include <cstdint>
#include <vector>

#include "planner/plan_node.h"
#include "stats/table_stats.h"

namespace recdb {

/// Per-row cost constants (arbitrary units; only ratios matter). Chosen so
/// the paper's selectivity crossovers (Figs 6-9) fall out: one model
/// prediction is ~40x a predicate evaluation, and serving a pre-computed
/// index entry is ~16x cheaper than predicting.
struct CostParams {
  double scan_row = 1.0;     // heap scan, per row emitted
  double predict = 8.0;      // one model prediction (user, item)
  double item_probe = 2.0;   // per-item overhead of an explicit item list
  double index_entry = 0.5;  // serving one pre-computed score-index entry
  double filter_eval = 0.2;  // evaluating one predicate conjunct on one row
  double hash_probe = 1.2;   // hash-table build or probe, per row
  double sort_entry = 0.5;   // full-sort work per row (log factor applied)
  double topn_entry = 0.2;   // bounded-heap work per row
  // Sublinear Top-N (CandidateIndex + threshold pruning):
  double bound_check = 0.05;  // per-candidate block/bound bookkeeping
  double prune_loose = 0.4;   // fraction of candidates the threshold
                              // fails to prune (still model-scored)
};

/// Rows assumed for a base table that has never been ANALYZEd.
inline constexpr double kDefaultTableRows = 1000.0;

/// Live statistics of one recommender's rating matrix.
struct RecStats {
  double num_users = 0;
  double num_items = 0;
  double num_ratings = 0;
  double density = 0;           // ratings / (users * items)
  double avg_user_ratings = 0;  // ratings per distinct user
  double avg_unseen = 0;        // items an average user has NOT rated

  static RecStats From(const Recommender& rec);
};

/// Fraction of `users` whose scores are materialized in the RecScoreIndex.
/// An empty user list counts every known user (full-table recommendation).
double IndexCoverageFraction(const Recommender& rec,
                             const std::vector<int64_t>& users);

/// Cost of the pruned per-user Top-K loop for `users` querying users,
/// priced from the CandidateIndex's ANALYZE-style walk statistics: the
/// generation walk touches avg_gen_ops postings entries per user, every
/// candidate pays the block-bound bookkeeping, and the threshold leaves
/// ~prune_loose of them to be model-scored. The exact alternative is
/// users * avg_unseen * predict.
double PrunedTopNCost(const CandidateIndex::Stats& stats, double users,
                      const CostParams& p);

/// Environment threaded through EstimateRows / EstimateCost.
struct CostEnv {
  CostParams params;
};

/// Selectivity of `pred` against the output of `input`, using ANALYZE
/// statistics when the referenced columns resolve to an analyzed base table
/// and falling back to the fixed defaults in stats/table_stats.h otherwise.
/// Always in [0, 1]; never divides by zero on empty/degenerate stats.
double EstimateSelectivity(const BoundExpr& pred, const PlanNode& input);

/// Column statistics for `col_idx` of `node`'s output schema, walking
/// through pass-through operators and join concatenation down to an
/// analyzed base table. nullptr when unknown (projection, aggregation,
/// recommender-computed columns, or no ANALYZE stats).
const ColumnStats* ResolveColumnStats(const PlanNode& node, size_t col_idx);

/// Annotate the whole tree with est_rows / est_cost (EXPLAIN rendering).
void AnnotatePlan(PlanNode* root, const CostEnv& env);

}  // namespace recdb
