#include "planner/plan_node.h"

#include "common/string_util.h"

namespace recdb {

const char* PlanNodeTypeToString(PlanNodeType t) {
  switch (t) {
    case PlanNodeType::kSeqScan:
      return "SeqScan";
    case PlanNodeType::kRecommend:
      return "Recommend";
    case PlanNodeType::kFilterRecommend:
      return "FilterRecommend";
    case PlanNodeType::kJoinRecommend:
      return "JoinRecommend";
    case PlanNodeType::kIndexRecommend:
      return "IndexRecommend";
    case PlanNodeType::kFilter:
      return "Filter";
    case PlanNodeType::kProject:
      return "Project";
    case PlanNodeType::kAggregate:
      return "Aggregate";
    case PlanNodeType::kNestedLoopJoin:
      return "NestedLoopJoin";
    case PlanNodeType::kHashJoin:
      return "HashJoin";
    case PlanNodeType::kSort:
      return "Sort";
    case PlanNodeType::kTopN:
      return "TopN";
    case PlanNodeType::kLimit:
      return "Limit";
  }
  return "?";
}

std::string PlanNode::Describe() const { return PlanNodeTypeToString(type); }

std::string PlanNode::ToString(int indent, const ActualRowMap* actual) const {
  std::string out(indent * 2, ' ');
  out += Describe();
  if (est_rows >= 0) {
    out += StringFormat(" (est=%.0f", est_rows);
    if (actual != nullptr) {
      auto it = actual->find(this);
      uint64_t act = it == actual->end() ? 0 : it->second;
      out += StringFormat(" act=%llu", static_cast<unsigned long long>(act));
    }
    out += ")";
  }
  out += "\n";
  for (const auto& c : children) out += c->ToString(indent + 1, actual);
  return out;
}

std::string SeqScanPlan::Describe() const {
  return StringFormat("SeqScan %s as %s", table->name.c_str(), alias.c_str());
}

namespace {
std::string IdList(const std::optional<std::vector<int64_t>>& ids) {
  if (!ids.has_value()) return "*";
  if (ids->size() > 4) return std::to_string(ids->size()) + " ids";
  std::vector<std::string> parts;
  for (int64_t v : *ids) parts.push_back(std::to_string(v));
  return Join(parts, ",");
}
}  // namespace

std::string RecommendPlan::Describe() const {
  std::string out = StringFormat(
      "%s %s using %s", PlanNodeTypeToString(type), rec->name().c_str(),
      RecAlgorithmToString(rec->algorithm()));
  if (type == PlanNodeType::kFilterRecommend) {
    out += " users=" + IdList(user_ids) + " items=" + IdList(item_ids);
  }
  if (prune) {
    out += StringFormat(" mode=pruned(k=%zu) candidates=inverted",
                        prune_limit);
  }
  return out;
}

std::string JoinRecommendPlan::Describe() const {
  std::string out = StringFormat("JoinRecommend %s using %s users=%s",
                                 rec->name().c_str(),
                                 RecAlgorithmToString(rec->algorithm()),
                                 IdList(user_ids).c_str());
  if (prune) out += " mode=pruned candidates=inverted";
  return out;
}

std::string IndexRecommendPlan::Describe() const {
  std::string out = StringFormat("IndexRecommend %s users=%s",
                                 rec->name().c_str(),
                                 IdList(user_ids).c_str());
  if (per_user_limit > 0) {
    out += " top " + std::to_string(per_user_limit);
  }
  if (prune) out += " fallback=pruned";
  return out;
}

std::string FilterPlan::Describe() const { return "Filter"; }

std::string ProjectPlan::Describe() const {
  return StringFormat("Project%s %zu cols", distinct ? " DISTINCT" : "",
                      exprs.size());
}

const char* AggKindToString(AggKind k) {
  switch (k) {
    case AggKind::kCountStar:
      return "count(*)";
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
  }
  return "?";
}

std::string AggregatePlan::Describe() const {
  return StringFormat("Aggregate %zu groups x %zu aggs", group_keys.size(),
                      aggs.size());
}

std::string NestedLoopJoinPlan::Describe() const {
  return predicate ? "NestedLoopJoin" : "NestedLoopJoin (cross)";
}

std::string HashJoinPlan::Describe() const { return "HashJoin"; }

std::string SortPlan::Describe() const {
  return StringFormat("Sort %zu keys", keys.size());
}

std::string TopNPlan::Describe() const {
  return StringFormat("TopN %zu", n);
}

std::string LimitPlan::Describe() const {
  return StringFormat("Limit %zu", n);
}

}  // namespace recdb
