#include "planner/exec_schema.h"

#include "common/string_util.h"

namespace recdb {

Result<size_t> ExecSchema::Resolve(const std::string& alias,
                                   const std::string& name) const {
  if (!alias.empty()) {
    for (size_t i = 0; i < cols_.size(); ++i) {
      if (EqualsIgnoreCase(cols_[i].table_alias, alias) &&
          EqualsIgnoreCase(cols_[i].name, name)) {
        return i;
      }
    }
    return Status::BindError("unknown column " + alias + "." + name);
  }
  size_t found = cols_.size();
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (EqualsIgnoreCase(cols_[i].name, name)) {
      if (found != cols_.size()) {
        return Status::BindError("ambiguous column name " + name);
      }
      found = i;
    }
  }
  if (found == cols_.size()) {
    return Status::BindError("unknown column " + name);
  }
  return found;
}

ExecSchema ExecSchema::Concat(const ExecSchema& a, const ExecSchema& b) {
  std::vector<ExecColumn> cols = a.columns();
  cols.insert(cols.end(), b.columns().begin(), b.columns().end());
  return ExecSchema(std::move(cols));
}

std::string ExecSchema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(cols_.size());
  for (const auto& c : cols_) {
    std::string q = c.table_alias.empty() ? c.name : c.table_alias + "." + c.name;
    parts.push_back(q + " " + TypeIdToString(c.type));
  }
  return Join(parts, ", ");
}

}  // namespace recdb
