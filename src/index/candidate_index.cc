#include "index/candidate_index.h"

#include <algorithm>
#include <numeric>

#include "common/timer.h"
#include "obs/metrics.h"

namespace recdb {

namespace {

/// Copy one CSR orientation's adjacency (offsets + column indices, ratings
/// dropped) into the index's own arrays, so the postings stay valid however
/// the matrix base moves afterwards.
void LowerAdjacency(const FlatCsr& csr, std::vector<int64_t>* offsets,
                    std::vector<int32_t>* ids) {
  *offsets = csr.offsets;
  *ids = csr.idx;
  if (offsets->empty()) offsets->push_back(0);
}

}  // namespace

std::shared_ptr<CandidateIndex> CandidateIndex::Build(
    const RatingMatrix& matrix, const RecModel& model) {
  auto index = Lower(matrix.user_csr(), matrix.item_csr(), matrix.item_ids(),
                     matrix.version());
  index->FinalizeBounds(model);
  return index;
}

std::shared_ptr<CandidateIndex> CandidateIndex::Lower(
    const FlatCsr& user_csr, const FlatCsr& item_csr,
    const std::vector<int64_t>& item_ids, uint64_t version) {
  Stopwatch watch;
  auto index = std::shared_ptr<CandidateIndex>(new CandidateIndex());
  LowerAdjacency(user_csr, &index->user_offsets_, &index->user_items_);
  LowerAdjacency(item_csr, &index->item_offsets_, &index->item_users_);
  index->version_ = version;

  // Tie-break order of the IndexRecommend fallback: base item indices by
  // ascending external id. item_ids may already know entities newer than
  // the CSR rows; those are out-of-band and merged in by the executor.
  const size_t ni = index->num_items();
  index->order_by_id_.resize(ni);
  std::iota(index->order_by_id_.begin(), index->order_by_id_.end(), 0);
  std::sort(index->order_by_id_.begin(), index->order_by_id_.end(),
            [&](int32_t a, int32_t b) { return item_ids[a] < item_ids[b]; });

  index->ComputeStats();
  obs::Count(obs::Counter::kPruneIndexBuilds);
  obs::ObserveUs(obs::Histogram::kPruneIndexBuildUs,
                 static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6));
  return index;
}

void CandidateIndex::ComputeStats() {
  // Deterministic sample: every stride-th user, stride chosen so at most
  // ~64 users are walked. Counts the exact work the CF candidate walk
  // would do against a delta-free overlay — the estimate the cost model
  // compares against full-catalog scoring.
  const size_t nu = num_users();
  stats_ = Stats{};
  if (nu == 0) return;
  const size_t stride = std::max<size_t>(1, nu / 64);
  std::vector<uint32_t> item_stamp(num_items(), 0);
  std::vector<uint32_t> user_stamp(nu, 0);
  uint32_t epoch = 0;
  double total_candidates = 0, total_ops = 0;
  size_t sampled = 0;
  for (size_t u = 0; u < nu; u += stride) {
    ++epoch;
    size_t candidates = 0, ops = 0;
    const Postings rated = RatedItems(static_cast<int32_t>(u));
    ops += rated.n;
    for (size_t a = 0; a < rated.n; ++a) {
      const Postings raters = Raters(rated.idx[a]);
      ops += raters.n;
      for (size_t b = 0; b < raters.n; ++b) {
        const int32_t v = raters.idx[b];
        if (user_stamp[v] == epoch) continue;
        user_stamp[v] = epoch;
        const Postings co = RatedItems(v);
        ops += co.n;
        for (size_t c = 0; c < co.n; ++c) {
          if (item_stamp[co.idx[c]] == epoch) continue;
          item_stamp[co.idx[c]] = epoch;
          ++candidates;
        }
      }
    }
    total_candidates += static_cast<double>(candidates);
    total_ops += static_cast<double>(ops);
    ++sampled;
  }
  stats_.sampled_users = sampled;
  stats_.avg_candidates = total_candidates / static_cast<double>(sampled);
  stats_.avg_gen_ops = total_ops / static_cast<double>(sampled);
}

void CandidateIndex::FinalizeBounds(const RecModel& model) {
  prunable_ = model.ComputePruneBounds(&bounds_);
  if (!prunable_) return;
  const size_t n = bounds_.item_scale.size();
  const bool has_offset = !bounds_.item_offset.empty();
  // Catalog-sweep families generate no candidate sets: the cost model
  // prices their pruned loop over the full bound table instead.
  if (!bounds_.candidate_generation) {
    stats_.avg_candidates = static_cast<double>(n);
    stats_.avg_gen_ops = 0;
  }

  order_.resize(n);
  std::iota(order_.begin(), order_.end(), 0);
  auto key = [&](int32_t i) {
    return bounds_.item_scale[i] + (has_offset ? bounds_.item_offset[i] : 0.0);
  };
  std::sort(order_.begin(), order_.end(), [&](int32_t a, int32_t b) {
    double ka = key(a), kb = key(b);
    if (ka != kb) return ka > kb;
    return a < b;
  });

  block_of_.assign(n, 0);
  blocks_.clear();
  for (size_t begin = 0; begin < n; begin += kBlockSize) {
    Block blk;
    blk.begin = static_cast<uint32_t>(begin);
    blk.end = static_cast<uint32_t>(std::min(n, begin + kBlockSize));
    for (uint32_t p = blk.begin; p < blk.end; ++p) {
      const int32_t i = order_[p];
      blk.max_scale = std::max(blk.max_scale, bounds_.item_scale[i]);
      if (has_offset) {
        blk.max_offset = std::max(blk.max_offset, bounds_.item_offset[i]);
      }
      block_of_[i] = static_cast<int32_t>(blocks_.size());
    }
    blocks_.push_back(blk);
  }
  // Suffix maxima: bounds are sorted by scale+offset, but scale and offset
  // separately need not be monotone across blocks, so "no later block can
  // win" must consult the suffix maxima, not just the next block.
  double suf_scale = 0, suf_offset = 0;
  for (size_t b = blocks_.size(); b-- > 0;) {
    suf_scale = std::max(suf_scale, blocks_[b].max_scale);
    suf_offset = std::max(suf_offset, blocks_[b].max_offset);
    blocks_[b].suffix_scale = suf_scale;
    blocks_[b].suffix_offset = suf_offset;
  }
}

size_t CandidateIndex::ApproxBytes() const {
  return sizeof(CandidateIndex) +
         (user_offsets_.capacity() + item_offsets_.capacity()) *
             sizeof(int64_t) +
         (user_items_.capacity() + item_users_.capacity() +
          order_.capacity() + order_by_id_.capacity() + block_of_.capacity()) *
             sizeof(int32_t) +
         (bounds_.item_scale.capacity() + bounds_.item_offset.capacity()) *
             sizeof(double) +
         blocks_.capacity() * sizeof(Block);
}

}  // namespace recdb
