#include "index/rec_score_index.h"

#include <limits>

#include "obs/metrics.h"

namespace recdb {
namespace {

void PublishSizeGauges(size_t users, size_t entries) {
  obs::SetGauge(obs::Gauge::kRecIndexUsers, static_cast<int64_t>(users));
  obs::SetGauge(obs::Gauge::kRecIndexEntries, static_cast<int64_t>(entries));
}

}  // namespace

void RecScoreIndex::Put(int64_t user_id, int64_t item_id, double score) {
  auto& entry = users_[user_id];
  if (entry.tree == nullptr) {
    entry.tree = std::make_unique<Tree>(fanout_);
  }
  auto it = entry.item_scores.find(item_id);
  if (it != entry.item_scores.end()) {
    entry.tree->Erase(RecScoreKey{it->second, item_id});
    it->second = score;
  } else {
    entry.item_scores.emplace(item_id, score);
    ++num_entries_;
  }
  entry.tree->Insert(RecScoreKey{score, item_id}, 0);
  obs::Count(obs::Counter::kRecIndexPuts);
  PublishSizeGauges(users_.size(), num_entries_);
}

bool RecScoreIndex::Erase(int64_t user_id, int64_t item_id) {
  auto uit = users_.find(user_id);
  if (uit == users_.end()) return false;
  auto& entry = uit->second;
  auto it = entry.item_scores.find(item_id);
  if (it == entry.item_scores.end()) return false;
  entry.tree->Erase(RecScoreKey{it->second, item_id});
  entry.item_scores.erase(it);
  --num_entries_;
  if (entry.item_scores.empty()) users_.erase(uit);
  obs::Count(obs::Counter::kRecIndexErases);
  PublishSizeGauges(users_.size(), num_entries_);
  return true;
}

void RecScoreIndex::EraseUser(int64_t user_id) {
  auto uit = users_.find(user_id);
  if (uit == users_.end()) return;
  const size_t dropped = uit->second.item_scores.size();
  num_entries_ -= dropped;
  users_.erase(uit);
  obs::Count(obs::Counter::kRecIndexErases, dropped);
  PublishSizeGauges(users_.size(), num_entries_);
}

std::vector<std::pair<int64_t, int64_t>> RecScoreIndex::EraseUserCollect(
    int64_t user_id) {
  std::vector<std::pair<int64_t, int64_t>> erased;
  auto uit = users_.find(user_id);
  if (uit == users_.end()) return erased;
  erased.reserve(uit->second.item_scores.size());
  for (const auto& [item_id, score] : uit->second.item_scores) {
    erased.emplace_back(user_id, item_id);
  }
  num_entries_ -= erased.size();
  users_.erase(uit);
  obs::Count(obs::Counter::kRecIndexErases, erased.size());
  PublishSizeGauges(users_.size(), num_entries_);
  return erased;
}

std::vector<std::pair<int64_t, int64_t>> RecScoreIndex::EraseItem(
    int64_t item_id) {
  std::vector<std::pair<int64_t, int64_t>> erased;
  for (auto uit = users_.begin(); uit != users_.end();) {
    auto& entry = uit->second;
    auto it = entry.item_scores.find(item_id);
    if (it == entry.item_scores.end()) {
      ++uit;
      continue;
    }
    entry.tree->Erase(RecScoreKey{it->second, item_id});
    entry.item_scores.erase(it);
    --num_entries_;
    erased.emplace_back(uit->first, item_id);
    if (entry.item_scores.empty()) {
      uit = users_.erase(uit);
    } else {
      ++uit;
    }
  }
  if (!erased.empty()) {
    obs::Count(obs::Counter::kRecIndexErases, erased.size());
    PublishSizeGauges(users_.size(), num_entries_);
  }
  return erased;
}

std::optional<double> RecScoreIndex::GetScore(int64_t user_id,
                                              int64_t item_id) const {
  auto uit = users_.find(user_id);
  if (uit == users_.end()) return std::nullopt;
  auto it = uit->second.item_scores.find(item_id);
  if (it == uit->second.item_scores.end()) return std::nullopt;
  return it->second;
}

size_t RecScoreIndex::UserEntryCount(int64_t user_id) const {
  auto uit = users_.find(user_id);
  if (uit == users_.end()) return 0;
  return uit->second.item_scores.size();
}

void RecScoreIndex::Scan(
    int64_t user_id, double min_score,
    const std::function<bool(int64_t, double)>& fn) const {
  auto uit = users_.find(user_id);
  if (uit == users_.end()) return;
  for (auto it = uit->second.tree->Begin(); it.Valid(); it.Next()) {
    const RecScoreKey& k = it.key();
    if (k.score < min_score) break;  // descending order: nothing better left
    if (!fn(k.item_id, k.score)) break;
  }
}

std::vector<std::pair<int64_t, double>> RecScoreIndex::TopK(
    int64_t user_id, size_t k,
    const std::function<bool(int64_t)>& item_filter) const {
  std::vector<std::pair<int64_t, double>> out;
  Scan(user_id, -std::numeric_limits<double>::infinity(),
       [&](int64_t item, double score) {
         if (item_filter == nullptr || item_filter(item)) {
           out.emplace_back(item, score);
         }
         return out.size() < k;
       });
  return out;
}

void RecScoreIndex::ForEach(
    const std::function<void(int64_t, int64_t, double)>& fn) const {
  for (const auto& [user_id, entry] : users_) {
    for (const auto& [item_id, score] : entry.item_scores) {
      fn(user_id, item_id, score);
    }
  }
}

size_t RecScoreIndex::ApproxBytes() const {
  // Per entry: tree key (16B) + leaf overhead (~8B) + hash map node (~48B).
  constexpr size_t kPerEntry = 16 + 8 + 48;
  constexpr size_t kPerUser = 128;  // tree root + hash bucket
  return num_entries_ * kPerEntry + users_.size() * kPerUser;
}

}  // namespace recdb
