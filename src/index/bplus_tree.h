// In-memory B+-tree with unique keys, ordered iteration, and range scans.
//
// Backs the paper's RecScoreIndex (Figure 4): per-user trees keyed by
// (descending predicted score, item id), leaves chained for sorted scans so
// INDEXRECOMMEND can emit top-k items without touching the model.
//
// Runtime-configurable max node occupancy (>= 3) so tests can parameterize
// over fanouts and exercise every split/merge path.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"

namespace recdb {

template <typename K, typename V, typename Compare = std::less<K>>
class BPlusTree {
 public:
  explicit BPlusTree(size_t max_keys = 64, Compare cmp = Compare())
      : max_keys_(max_keys < 3 ? 3 : max_keys), cmp_(cmp) {
    root_ = NewNode(/*leaf=*/true);
  }

  ~BPlusTree() { FreeNode(root_); }

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Insert or overwrite. Returns true if the key was new.
  bool Insert(const K& key, V value) {
    InsertResult res = InsertInto(root_, key, std::move(value));
    if (res.split) {
      Node* new_root = NewNode(/*leaf=*/false);
      new_root->keys.push_back(res.split_key);
      new_root->children.push_back(root_);
      new_root->children.push_back(res.right);
      root_ = new_root;
    }
    if (res.inserted) ++size_;
    return res.inserted;
  }

  /// Value for key, if present.
  std::optional<V> Find(const K& key) const {
    const Node* n = root_;
    while (!n->leaf) {
      n = n->children[ChildIndex(n, key)];
    }
    size_t i = LowerBound(n, key);
    if (i < n->keys.size() && !cmp_(key, n->keys[i])) return n->values[i];
    return std::nullopt;
  }

  bool Contains(const K& key) const { return Find(key).has_value(); }

  /// Remove a key. Returns true if it was present.
  bool Erase(const K& key) {
    bool erased = EraseFrom(root_, key);
    if (!root_->leaf && root_->children.size() == 1) {
      Node* old = root_;
      root_ = root_->children[0];
      old->children.clear();
      delete old;
    }
    if (erased) --size_;
    return erased;
  }

  /// Forward iterator over (key, value) in key order.
  class Iterator {
   public:
    Iterator() = default;
    Iterator(const BPlusTree* tree, const typename BPlusTree::Node* node,
             size_t pos)
        : tree_(tree), node_(node), pos_(pos) {}

    bool Valid() const { return node_ != nullptr; }
    const K& key() const { return node_->keys[pos_]; }
    const V& value() const { return node_->values[pos_]; }

    void Next() {
      RECDB_DCHECK(Valid());
      ++pos_;
      if (pos_ >= node_->keys.size()) {
        node_ = node_->next;
        pos_ = 0;
      }
    }

   private:
    const BPlusTree* tree_ = nullptr;
    const typename BPlusTree::Node* node_ = nullptr;
    size_t pos_ = 0;
  };

  /// Iterator at the smallest key.
  Iterator Begin() const {
    const Node* n = root_;
    while (!n->leaf) n = n->children[0];
    if (n->keys.empty()) return Iterator(this, nullptr, 0);
    return Iterator(this, n, 0);
  }

  /// Iterator at the first key >= `key`.
  Iterator LowerBoundIter(const K& key) const {
    const Node* n = root_;
    while (!n->leaf) n = n->children[ChildIndex(n, key)];
    size_t i = LowerBound(n, key);
    if (i >= n->keys.size()) {
      n = n->next;
      i = 0;
      if (n == nullptr || n->keys.empty())
        return Iterator(this, nullptr, 0);
    }
    return Iterator(this, n, i);
  }

  /// Height (levels), for structural assertions in tests.
  size_t Height() const {
    size_t h = 1;
    const Node* n = root_;
    while (!n->leaf) {
      n = n->children[0];
      ++h;
    }
    return h;
  }

  /// Structural invariants: ordering within nodes, occupancy bounds,
  /// leaf-chain order, separator correctness. Test aid.
  bool CheckInvariants() const {
    bool ok = true;
    CheckNode(root_, nullptr, nullptr, /*is_root=*/true, &ok);
    // Leaf chain must be globally sorted.
    Iterator it = Begin();
    if (it.Valid()) {
      K prev = it.key();
      it.Next();
      while (it.Valid()) {
        if (!cmp_(prev, it.key())) return false;
        prev = it.key();
        it.Next();
      }
    }
    return ok;
  }

 private:
  struct Node {
    bool leaf = true;
    std::vector<K> keys;
    std::vector<V> values;           // leaf only; parallel with keys
    std::vector<Node*> children;     // internal only; keys.size()+1
    Node* next = nullptr;            // leaf chain
  };
  friend class Iterator;

  Node* NewNode(bool leaf) {
    Node* n = new Node();
    n->leaf = leaf;
    return n;
  }

  void FreeNode(Node* n) {
    if (n == nullptr) return;
    for (Node* c : n->children) FreeNode(c);
    delete n;
  }

  size_t LowerBound(const Node* n, const K& key) const {
    size_t lo = 0, hi = n->keys.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cmp_(n->keys[mid], key))
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  }

  /// Child to descend into for `key`: first separator > key goes left of it.
  size_t ChildIndex(const Node* n, const K& key) const {
    size_t i = LowerBound(n, key);
    // Separator keys equal to `key` route right (separator = first key of
    // the right subtree for leaves).
    if (i < n->keys.size() && !cmp_(key, n->keys[i])) return i + 1;
    return i;
  }

  struct InsertResult {
    bool inserted = false;
    bool split = false;
    K split_key{};
    Node* right = nullptr;
  };

  InsertResult InsertInto(Node* n, const K& key, V value) {
    InsertResult res;
    if (n->leaf) {
      size_t i = LowerBound(n, key);
      if (i < n->keys.size() && !cmp_(key, n->keys[i])) {
        n->values[i] = std::move(value);  // overwrite
        return res;
      }
      n->keys.insert(n->keys.begin() + i, key);
      n->values.insert(n->values.begin() + i, std::move(value));
      res.inserted = true;
      if (n->keys.size() > max_keys_) SplitLeaf(n, &res);
      return res;
    }
    size_t ci = ChildIndex(n, key);
    InsertResult child_res = InsertInto(n->children[ci], key, std::move(value));
    res.inserted = child_res.inserted;
    if (child_res.split) {
      n->keys.insert(n->keys.begin() + ci, child_res.split_key);
      n->children.insert(n->children.begin() + ci + 1, child_res.right);
      if (n->keys.size() > max_keys_) SplitInternal(n, &res);
    }
    return res;
  }

  void SplitLeaf(Node* n, InsertResult* res) {
    Node* right = NewNode(/*leaf=*/true);
    size_t mid = n->keys.size() / 2;
    right->keys.assign(n->keys.begin() + mid, n->keys.end());
    right->values.assign(std::make_move_iterator(n->values.begin() + mid),
                         std::make_move_iterator(n->values.end()));
    n->keys.resize(mid);
    n->values.resize(mid);
    right->next = n->next;
    n->next = right;
    res->split = true;
    res->split_key = right->keys.front();
    res->right = right;
  }

  void SplitInternal(Node* n, InsertResult* res) {
    Node* right = NewNode(/*leaf=*/false);
    size_t mid = n->keys.size() / 2;
    res->split = true;
    res->split_key = n->keys[mid];
    right->keys.assign(n->keys.begin() + mid + 1, n->keys.end());
    right->children.assign(n->children.begin() + mid + 1, n->children.end());
    n->keys.resize(mid);
    n->children.resize(mid + 1);
    res->right = right;
  }

  size_t MinKeys() const { return max_keys_ / 2; }

  bool EraseFrom(Node* n, const K& key) {
    if (n->leaf) {
      size_t i = LowerBound(n, key);
      if (i >= n->keys.size() || cmp_(key, n->keys[i])) return false;
      n->keys.erase(n->keys.begin() + i);
      n->values.erase(n->values.begin() + i);
      return true;
    }
    size_t ci = ChildIndex(n, key);
    Node* child = n->children[ci];
    bool erased = EraseFrom(child, key);
    if (erased && child->keys.size() < MinKeys()) Rebalance(n, ci);
    return erased;
  }

  void Rebalance(Node* parent, size_t ci) {
    Node* child = parent->children[ci];
    Node* left = ci > 0 ? parent->children[ci - 1] : nullptr;
    Node* right =
        ci + 1 < parent->children.size() ? parent->children[ci + 1] : nullptr;

    if (left != nullptr && left->keys.size() > MinKeys()) {
      // Borrow from left sibling.
      if (child->leaf) {
        child->keys.insert(child->keys.begin(), left->keys.back());
        child->values.insert(child->values.begin(),
                             std::move(left->values.back()));
        left->keys.pop_back();
        left->values.pop_back();
        parent->keys[ci - 1] = child->keys.front();
      } else {
        child->keys.insert(child->keys.begin(), parent->keys[ci - 1]);
        parent->keys[ci - 1] = left->keys.back();
        left->keys.pop_back();
        child->children.insert(child->children.begin(),
                               left->children.back());
        left->children.pop_back();
      }
      return;
    }
    if (right != nullptr && right->keys.size() > MinKeys()) {
      // Borrow from right sibling.
      if (child->leaf) {
        child->keys.push_back(right->keys.front());
        child->values.push_back(std::move(right->values.front()));
        right->keys.erase(right->keys.begin());
        right->values.erase(right->values.begin());
        parent->keys[ci] = right->keys.front();
      } else {
        child->keys.push_back(parent->keys[ci]);
        parent->keys[ci] = right->keys.front();
        right->keys.erase(right->keys.begin());
        child->children.push_back(right->children.front());
        right->children.erase(right->children.begin());
      }
      return;
    }
    // Merge with a sibling.
    if (left != nullptr) {
      MergeChildren(parent, ci - 1);
    } else if (right != nullptr) {
      MergeChildren(parent, ci);
    }
  }

  /// Merge children[i+1] into children[i]; drops separator keys[i].
  void MergeChildren(Node* parent, size_t i) {
    Node* l = parent->children[i];
    Node* r = parent->children[i + 1];
    if (l->leaf) {
      l->keys.insert(l->keys.end(), r->keys.begin(), r->keys.end());
      l->values.insert(l->values.end(),
                       std::make_move_iterator(r->values.begin()),
                       std::make_move_iterator(r->values.end()));
      l->next = r->next;
    } else {
      l->keys.push_back(parent->keys[i]);
      l->keys.insert(l->keys.end(), r->keys.begin(), r->keys.end());
      l->children.insert(l->children.end(), r->children.begin(),
                         r->children.end());
      r->children.clear();
    }
    parent->keys.erase(parent->keys.begin() + i);
    parent->children.erase(parent->children.begin() + i + 1);
    delete r;
  }

  void CheckNode(const Node* n, const K* lo, const K* hi, bool is_root,
                 bool* ok) const {
    for (size_t i = 0; i + 1 < n->keys.size(); ++i) {
      if (!cmp_(n->keys[i], n->keys[i + 1])) *ok = false;
    }
    for (const K& k : n->keys) {
      if (lo != nullptr && cmp_(k, *lo)) *ok = false;
      if (hi != nullptr && !cmp_(k, *hi)) *ok = false;
    }
    if (!is_root && n->keys.size() < MinKeys() && !n->leaf) *ok = false;
    if (n->keys.size() > max_keys_) *ok = false;
    if (!n->leaf) {
      if (n->children.size() != n->keys.size() + 1) {
        *ok = false;
        return;
      }
      for (size_t i = 0; i < n->children.size(); ++i) {
        const K* clo = i == 0 ? lo : &n->keys[i - 1];
        const K* chi = i == n->keys.size() ? hi : &n->keys[i];
        CheckNode(n->children[i], clo, chi, false, ok);
      }
    }
  }

  size_t max_keys_;
  Compare cmp_;
  Node* root_;
  size_t size_ = 0;
};

}  // namespace recdb
