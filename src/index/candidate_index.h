// CandidateIndex: the sublinear Top-N support structure (DESIGN.md §13).
//
// Two cooperating layers, both lowered from the frozen CSR base:
//
//  (1) Inverted postings — item → rater indices and user → rated-item
//      indices, index-only copies of the base CSR adjacency. For the CF
//      families a score can be nonzero only for items sharing at least one
//      co-rated item with the query user *as of model build* (a nonzero
//      similarity requires a nonzero dot, which requires a shared
//      dimension), so a two-hop walk over these postings — union-merged
//      with the delta overlay's side rows for rows touched since the
//      freeze — enumerates an exact candidate superset: every
//      non-candidate provably scores 0.0.
//
//  (2) WAND-style block bounds — the model's PruneBoundTable (per-item
//      static upper-bound terms) ordered descending and cut into blocks of
//      kBlockSize, each carrying its max scale/offset plus suffix maxima,
//      so a Top-N loop can skip whole blocks (and stop entirely) once no
//      remaining bound can beat the running k-th score.
//
// Lifecycle mirrors the matrix base: built at Recommender::Build() right
// after the freeze, and rebuilt at CommitRefresh — postings lowered
// off-lock from the merged-CSR candidate (Lower), bounds finalized under
// the writer lock after the model rows are patched (FinalizeBounds), so
// the published index always matches the (base, model) pair queries see.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "recommender/model.h"
#include "recommender/rating_matrix.h"

namespace recdb {

class CandidateIndex {
 public:
  static constexpr size_t kBlockSize = 128;

  /// A contiguous run of order(): items [begin, end) sorted by descending
  /// static bound, with block maxima and suffix (this-and-later) maxima.
  struct Block {
    uint32_t begin = 0;
    uint32_t end = 0;
    double max_scale = 0;
    double max_offset = 0;
    double suffix_scale = 0;
    double suffix_offset = 0;
  };

  /// Deterministically sampled candidate-walk statistics, the ANALYZE-side
  /// grounding the cost model prices pruned plans with.
  struct Stats {
    double avg_candidates = 0;  ///< mean candidate-set size per user
    double avg_gen_ops = 0;     ///< mean postings entries walked per user
    size_t sampled_users = 0;
  };

  /// Index-only view of one postings row.
  struct Postings {
    const int32_t* idx = nullptr;
    size_t n = 0;
  };

  /// Build-time path: lower postings and finalize bounds in one step
  /// against a just-frozen matrix (base == merged). Returns the index even
  /// when the model cannot bound its scores (prunable() is then false and
  /// the planner never chooses pruning).
  static std::shared_ptr<CandidateIndex> Build(const RatingMatrix& matrix,
                                               const RecModel& model);

  /// Refresh path, phase 1 (off the writer lock): lower postings and walk
  /// stats from a merged-CSR re-freeze candidate. Model-independent.
  static std::shared_ptr<CandidateIndex> Lower(
      const FlatCsr& user_csr, const FlatCsr& item_csr,
      const std::vector<int64_t>& item_ids, uint64_t version);

  /// Refresh path, phase 2 (under the writer lock, after ApplyDeltaUpdate):
  /// compute the bound table from the now-patched model and build the
  /// block structure. Must be called exactly once before publishing.
  void FinalizeBounds(const RecModel& model);

  /// False when the model family cannot bound its scores — postings are
  /// still usable, but no pruned plan may be chosen.
  bool prunable() const { return prunable_; }
  const PruneBoundTable& bounds() const { return bounds_; }
  /// Number of items covered by the bound table; item indices at or above
  /// this are out-of-band (interned after the build) and are handled by
  /// the bounds().oob_must_score policy.
  size_t bound_table_size() const { return bounds_.item_scale.size(); }

  const std::vector<Block>& blocks() const { return blocks_; }
  /// Item indices sorted by descending static bound (blocks index this).
  const std::vector<int32_t>& order() const { return order_; }
  /// Item indices sorted by ascending external id — the tie-break order of
  /// the IndexRecommend fallback's zero-score merge.
  const std::vector<int32_t>& order_by_id() const { return order_by_id_; }
  /// Block id of each item index (bound_table_size() entries).
  const std::vector<int32_t>& block_of() const { return block_of_; }

  /// Base adjacency the index was lowered from.
  size_t num_users() const {
    return user_offsets_.empty() ? 0 : user_offsets_.size() - 1;
  }
  size_t num_items() const {
    return item_offsets_.empty() ? 0 : item_offsets_.size() - 1;
  }
  Postings RatedItems(int32_t user_idx) const {
    if (user_idx < 0 || static_cast<size_t>(user_idx) >= num_users()) {
      return {};
    }
    int64_t b = user_offsets_[user_idx];
    return {user_items_.data() + b,
            static_cast<size_t>(user_offsets_[user_idx + 1] - b)};
  }
  Postings Raters(int32_t item_idx) const {
    if (item_idx < 0 || static_cast<size_t>(item_idx) >= num_items()) {
      return {};
    }
    int64_t b = item_offsets_[item_idx];
    return {item_users_.data() + b,
            static_cast<size_t>(item_offsets_[item_idx + 1] - b)};
  }

  /// Matrix version the postings were lowered at (the base they mirror).
  uint64_t version() const { return version_; }
  const Stats& stats() const { return stats_; }
  size_t ApproxBytes() const;

 private:
  CandidateIndex() = default;

  void ComputeStats();

  // Inverted postings, index-only SoA copies of the base CSR adjacency.
  std::vector<int64_t> user_offsets_;
  std::vector<int32_t> user_items_;
  std::vector<int64_t> item_offsets_;
  std::vector<int32_t> item_users_;

  bool prunable_ = false;
  PruneBoundTable bounds_;
  std::vector<int32_t> order_;
  std::vector<int32_t> order_by_id_;
  std::vector<int32_t> block_of_;
  std::vector<Block> blocks_;

  uint64_t version_ = 0;
  Stats stats_;
};

}  // namespace recdb
