// RecScoreIndex (paper Figure 4): hash table keyed by user id, each entry
// pointing to a B+-tree of that user's pre-computed predicted rating scores.
// Tree keys order by *descending* score (item id breaks ties), so leaf-order
// iteration yields items best-first and top-k queries stop after k leaves.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "index/bplus_tree.h"

namespace recdb {

/// One pre-computed (score, item) entry key. Orders score-descending.
struct RecScoreKey {
  double score = 0;
  int64_t item_id = 0;
};

struct RecScoreKeyLess {
  bool operator()(const RecScoreKey& a, const RecScoreKey& b) const {
    if (a.score != b.score) return a.score > b.score;  // higher score first
    return a.item_id < b.item_id;
  }
};

class RecScoreIndex {
 public:
  using Tree = BPlusTree<RecScoreKey, char, RecScoreKeyLess>;

  explicit RecScoreIndex(size_t tree_fanout = 64) : fanout_(tree_fanout) {}

  /// Insert or refresh the predicted score of (user, item).
  void Put(int64_t user_id, int64_t item_id, double score);

  /// Drop (user, item); returns true if it was materialized.
  bool Erase(int64_t user_id, int64_t item_id);

  /// Drop every entry of a user.
  void EraseUser(int64_t user_id);

  /// Drop every entry of a user, returning the (user, item) pairs removed
  /// — ingest invalidation hands these to the cache manager so hot users
  /// can be lazily re-materialized.
  std::vector<std::pair<int64_t, int64_t>> EraseUserCollect(int64_t user_id);

  /// Drop an item's entry from every user, returning the (user, item)
  /// pairs removed. Walks all materialized users (invalidation-path only).
  std::vector<std::pair<int64_t, int64_t>> EraseItem(int64_t item_id);

  /// Pre-computed score, if materialized.
  std::optional<double> GetScore(int64_t user_id, int64_t item_id) const;

  bool HasUser(int64_t user_id) const {
    return users_.count(user_id) > 0;
  }

  /// Entries a user has materialized (0 when absent).
  size_t UserEntryCount(int64_t user_id) const;

  size_t NumUsers() const { return users_.size(); }
  size_t NumEntries() const { return num_entries_; }

  /// Visit a user's entries best-score-first; `fn` returns false to stop
  /// (e.g. after collecting k items). `min_score`: skip entries below it
  /// (the paper's Phase II ratingval predicate; descending order means we
  /// simply stop at the first score below the bound).
  void Scan(int64_t user_id, double min_score,
            const std::function<bool(int64_t item_id, double score)>& fn) const;

  /// Convenience: top-k item ids with scores, best first, optionally
  /// filtered by an item predicate (the paper's Phase III iPred).
  std::vector<std::pair<int64_t, double>> TopK(
      int64_t user_id, size_t k,
      const std::function<bool(int64_t)>& item_filter = nullptr) const;

  /// Visit every materialized (user, item, score) entry, e.g. for the cache
  /// manager's stale-entry sweep. Iteration order is unspecified.
  void ForEach(
      const std::function<void(int64_t user_id, int64_t item_id, double score)>&
          fn) const;

  /// Rough memory footprint in bytes (for the scalability ablation).
  size_t ApproxBytes() const;

 private:
  struct UserEntry {
    std::unique_ptr<Tree> tree;
    // item -> current score, so Erase/Put can locate tree keys.
    std::unordered_map<int64_t, double> item_scores;
  };

  size_t fanout_;
  std::unordered_map<int64_t, UserEntry> users_;
  size_t num_entries_ = 0;
};

}  // namespace recdb
