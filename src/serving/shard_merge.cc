#include "serving/shard_merge.h"

#include <algorithm>

#include "obs/metrics.h"

namespace recdb {

uint64_t ShardMergeExecutor::RankOf(const Tuple& row) const {
  if (spec_.user_col == SIZE_MAX || user_rank_ == nullptr) return 0;
  if (spec_.user_col >= row.NumValues()) return UINT64_MAX;
  const Value& u = row.At(spec_.user_col);
  if (u.is_null() || u.type() != TypeId::kInt64) return UINT64_MAX;
  auto it = user_rank_->find(u.AsInt());
  // Users the router never routed a rating for (e.g. rated only through a
  // pre-load) sort after every ranked user, mirroring matrix interning.
  return it == user_rank_->end() ? UINT64_MAX : it->second;
}

bool ShardMergeExecutor::RowLess(const Tuple& a, uint64_t rank_a, size_t seq_a,
                                 size_t leg_a, const Tuple& b, uint64_t rank_b,
                                 size_t seq_b, size_t leg_b) const {
  for (const MergeSpec::Key& key : spec_.order_by) {
    if (key.col >= a.NumValues() || key.col >= b.NumValues()) break;
    const int c = a.At(key.col).Compare(b.At(key.col));
    if (c != 0) return key.desc ? c > 0 : c < 0;
  }
  // ORDER BY tie (or no ORDER BY): reconstruct the single-node emission
  // order. Rows of different users order by global first-seen rank; rows of
  // the same user live on one shard, where the leg sequence is exactly the
  // single-node slot order.
  if (rank_a != rank_b) return rank_a < rank_b;
  if (leg_a == leg_b) return seq_a < seq_b;
  if (seq_a != seq_b) return seq_a < seq_b;
  return leg_a < leg_b;
}

Status ShardMergeExecutor::Merge(const std::vector<ResultSet>& legs,
                                 ResultSet* out) const {
  const size_t n = legs.size();
  std::vector<size_t> pos(n, 0);
  std::vector<uint64_t> front_rank(n, 0);
  auto load_front = [&](size_t k) {
    if (pos[k] < legs[k].rows.size()) {
      front_rank[k] = RankOf(legs[k].rows[pos[k]]);
    }
  };
  for (size_t k = 0; k < n; ++k) load_front(k);

  const uint64_t limit = spec_.limit.has_value() && *spec_.limit >= 0
                             ? static_cast<uint64_t>(*spec_.limit)
                             : UINT64_MAX;
  uint64_t emitted = 0;
  uint64_t consumed = 0;
  while (emitted < limit) {
    size_t best = SIZE_MAX;
    for (size_t k = 0; k < n; ++k) {
      if (pos[k] >= legs[k].rows.size()) continue;
      if (best == SIZE_MAX ||
          RowLess(legs[k].rows[pos[k]], front_rank[k], pos[k], k,
                  legs[best].rows[pos[best]], front_rank[best], pos[best],
                  best)) {
        best = k;
      }
    }
    if (best == SIZE_MAX) break;  // every leg drained
    out->rows.push_back(legs[best].rows[pos[best]]);
    ++pos[best];
    ++consumed;
    ++emitted;
    load_front(best);
  }

  obs::Count(obs::Counter::kServingRowsMerged, consumed);
  obs::Count(obs::Counter::kServingRowsEmitted, emitted);
  size_t depth = 0;
  for (size_t k = 0; k < n; ++k) depth = std::max(depth, pos[k]);
  obs::SetGauge(obs::Gauge::kServingMergeDepth, static_cast<int64_t>(depth));
  return Status::OK();
}

}  // namespace recdb
