#include "serving/sharded_recdb.h"

#include <algorithm>
#include <cstdint>
#include <set>
#include <utility>

#include "common/shard.h"
#include "common/string_util.h"
#include "common/task_scheduler.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "parser/parser.h"
#include "recommender/recommender.h"
#include "serving/shard_merge.h"

namespace recdb {

namespace {

constexpr size_t kMaxRouterShards = 64;

/// Evaluate a constant integer expression (literal or negated literal) —
/// the shapes INSERT VALUES and WHERE predicates carry.
bool LiteralInt(const Expr& e, int64_t* out) {
  if (e.kind == ExprKind::kLiteral && e.literal.type() == TypeId::kInt64) {
    *out = e.literal.AsInt();
    return true;
  }
  if (e.kind == ExprKind::kNegate && e.left != nullptr &&
      LiteralInt(*e.left, out)) {
    *out = -*out;
    return true;
  }
  return false;
}

bool IsUserColRef(const Expr& e, const std::string& user_col_lower) {
  return e.kind == ExprKind::kColumnRef && ToLower(e.column) == user_col_lower;
}

/// Extract the exact user-id set a WHERE clause pins the query to, or
/// nullopt when the predicate does not restrict the user column to known
/// literals. Conservative in the safe direction: a conjunct that pins ids is
/// exact (any other conjunct only narrows further), a disjunction must pin
/// on both sides.
std::optional<std::vector<int64_t>> ExtractUserIds(
    const Expr* e, const std::string& user_col_lower) {
  if (e == nullptr) return std::nullopt;
  if (e->kind == ExprKind::kBinary) {
    if (e->op == BinaryOp::kEq) {
      int64_t v;
      if (e->left != nullptr && e->right != nullptr) {
        if (IsUserColRef(*e->left, user_col_lower) && LiteralInt(*e->right, &v))
          return std::vector<int64_t>{v};
        if (IsUserColRef(*e->right, user_col_lower) && LiteralInt(*e->left, &v))
          return std::vector<int64_t>{v};
      }
      return std::nullopt;
    }
    if (e->op == BinaryOp::kAnd) {
      auto l = ExtractUserIds(e->left.get(), user_col_lower);
      auto r = ExtractUserIds(e->right.get(), user_col_lower);
      if (l.has_value() && r.has_value()) {
        std::set<int64_t> rs(r->begin(), r->end());
        std::vector<int64_t> both;
        for (int64_t v : *l) {
          if (rs.count(v)) both.push_back(v);
        }
        return both;
      }
      return l.has_value() ? l : r;
    }
    if (e->op == BinaryOp::kOr) {
      auto l = ExtractUserIds(e->left.get(), user_col_lower);
      auto r = ExtractUserIds(e->right.get(), user_col_lower);
      if (l.has_value() && r.has_value()) {
        l->insert(l->end(), r->begin(), r->end());
        return l;
      }
      return std::nullopt;
    }
    return std::nullopt;
  }
  if (e->kind == ExprKind::kInList && !e->negated && e->left != nullptr &&
      IsUserColRef(*e->left, user_col_lower)) {
    std::vector<int64_t> vals;
    vals.reserve(e->args.size());
    for (const auto& arg : e->args) {
      int64_t v;
      if (arg == nullptr || !LiteralInt(*arg, &v)) return std::nullopt;
      vals.push_back(v);
    }
    return vals;
  }
  return std::nullopt;
}

/// Resolve a (qualifier, name) column reference against a result header:
/// exact match, qualified match, or dot-suffix match, case-insensitive.
size_t ResolveColumn(const std::vector<std::string>& columns,
                     const std::string& qualifier, const std::string& name) {
  const std::string want = ToLower(name);
  const std::string qualified =
      qualifier.empty() ? "" : ToLower(qualifier) + "." + want;
  for (size_t i = 0; i < columns.size(); ++i) {
    const std::string col = ToLower(columns[i]);
    if (col == want || (!qualified.empty() && col == qualified)) return i;
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    const std::string col = ToLower(columns[i]);
    if (col.size() > want.size() + 1 &&
        col.compare(col.size() - want.size() - 1, want.size() + 1,
                    "." + want) == 0) {
      return i;
    }
  }
  return SIZE_MAX;
}

void AccumulateStats(const ExecStats& in, ExecStats* out) {
  out->tuples_scanned += in.tuples_scanned;
  out->predictions += in.predictions;
  out->predict_calls += in.predict_calls;
  out->predict_batches += in.predict_batches;
  out->index_hits += in.index_hits;
  out->index_misses += in.index_misses;
  out->join_probes += in.join_probes;
  out->candidates_generated += in.candidates_generated;
  out->blocks_skipped += in.blocks_skipped;
  out->items_pruned += in.items_pruned;
  out->tasks_spawned += in.tasks_spawned;
  out->worker_time_ms += in.worker_time_ms;
  out->io_read_failures += in.io_read_failures;
  out->io_write_failures += in.io_write_failures;
  out->io_retries += in.io_retries;
  out->io_checksum_failures += in.io_checksum_failures;
}

uint64_t ElapsedUs(const Stopwatch& watch) {
  return static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6);
}

}  // namespace

ShardedRecDB::~ShardedRecDB() = default;

Status ShardedRecDB::ValidateOptions(const ShardedRecDBOptions& options) {
  if (options.num_shards < 1 || options.num_shards > kMaxRouterShards) {
    return Status::InvalidArgument(
        "ShardedRecDBOptions::num_shards must be in [1, " +
        std::to_string(kMaxRouterShards) + "], got " +
        std::to_string(options.num_shards));
  }
  return Status::OK();
}

Result<std::unique_ptr<ShardedRecDB>> ShardedRecDB::Create(
    ShardedRecDBOptions options) {
  RECDB_RETURN_NOT_OK(ValidateOptions(options));
  auto db = std::unique_ptr<ShardedRecDB>(new ShardedRecDB());
  for (size_t k = 0; k < options.num_shards; ++k) {
    RecDBOptions opts = options.shard_options;
    opts.shard_count = options.num_shards;
    opts.shard_index = k;
    db->shards_.push_back(std::make_unique<RecDB>(opts));
  }
  obs::SetGauge(obs::Gauge::kServingShards,
                static_cast<int64_t>(options.num_shards));
  return db;
}

Result<std::unique_ptr<ShardedRecDB>> ShardedRecDB::Open(
    const std::string& path, ShardedRecDBOptions options) {
  RECDB_RETURN_NOT_OK(ValidateOptions(options));
  auto db = std::unique_ptr<ShardedRecDB>(new ShardedRecDB());
  for (size_t k = 0; k < options.num_shards; ++k) {
    RecDBOptions opts = options.shard_options;
    opts.shard_count = options.num_shards;
    opts.shard_index = k;
    RECDB_ASSIGN_OR_RETURN(
        auto shard, RecDB::Open(path + ".shard" + std::to_string(k), opts));
    db->shards_.push_back(std::move(shard));
  }
  obs::SetGauge(obs::Gauge::kServingShards,
                static_cast<int64_t>(options.num_shards));
  return db;
}

ShardedRecDB::PartitionInfo* ShardedRecDB::FindPartition(
    const std::string& table) {
  auto it = partitions_.find(ToLower(table));
  return it == partitions_.end() ? nullptr : &it->second;
}

void ShardedRecDB::RecordRoutedUser(PartitionInfo* info, int64_t user_id) {
  if (info->user_rank.find(user_id) == info->user_rank.end()) {
    info->user_rank[user_id] = info->next_rank++;
  }
  const uint32_t owner =
      ShardOfUser(user_id, static_cast<uint32_t>(shards_.size()));
  if (owner < info->routed_rows.size()) ++info->routed_rows[owner];
}

void ShardedRecDB::PublishSkew(const PartitionInfo& info) {
  uint64_t total = 0;
  uint64_t max = 0;
  for (uint64_t c : info.routed_rows) {
    total += c;
    max = std::max(max, c);
  }
  if (total == 0 || info.routed_rows.empty()) return;
  const double mean =
      static_cast<double>(total) / static_cast<double>(info.routed_rows.size());
  const double skew = (static_cast<double>(max) - mean) / mean * 100.0;
  obs::SetGauge(obs::Gauge::kServingShardSkewPct,
                static_cast<int64_t>(skew + 0.5));
}

Result<ResultSet> ShardedRecDB::Execute(const std::string& sql) {
  Stopwatch watch;
  obs::Count(obs::Counter::kServingQueries);
  RECDB_ASSIGN_OR_RETURN(auto stmts, Parser::Parse(sql));
  if (stmts.size() != 1) {
    return Status::InvalidArgument(
        "ShardedRecDB executes one statement per call; got " +
        std::to_string(stmts.size()));
  }
  const Statement& stmt = *stmts[0];

  auto finish = [&](Result<ResultSet> r) -> Result<ResultSet> {
    if (r.ok()) {
      obs::ObserveUs(obs::Histogram::kServingQueryUs, ElapsedUs(watch));
      r.value().elapsed_seconds = watch.ElapsedSeconds();
    }
    return r;
  };

  switch (stmt.kind) {
    case StatementKind::kSelect: {
      std::shared_lock<std::shared_mutex> lock(router_mu_);
      return finish(
          ExecuteSelect(sql, static_cast<const SelectStatement&>(stmt)));
    }
    case StatementKind::kExplain: {
      // Plans are identical on every shard (same catalog, same statistics
      // pipeline); shard 0 speaks for the fleet.
      std::shared_lock<std::shared_mutex> lock(router_mu_);
      obs::Count(obs::Counter::kServingSingleShardQueries);
      return finish(shards_[0]->Execute(sql));
    }
    case StatementKind::kSet: {
      const auto& set = static_cast<const SetStatement&>(stmt);
      if (set.option == "shard_count" || set.option == "shard_index") {
        return Status::InvalidArgument(
            "SET " + set.option +
            " is managed by the ShardedRecDB router (fixed at " +
            std::to_string(shards_.size()) + " shards)");
      }
      std::unique_lock<std::shared_mutex> lock(router_mu_);
      return finish(BroadcastWrite(sql, stmt));
    }
    case StatementKind::kCreateRecommender: {
      const auto& create = static_cast<const CreateRecommenderStatement&>(stmt);
      std::unique_lock<std::shared_mutex> lock(router_mu_);
      PartitionInfo* info = FindPartition(create.ratings_table);
      if (info != nullptr) return finish(GatherCreateRecommender(create, info));
      // Non-partitioned ratings tables are fully replicated: every shard
      // scans an identical heap and trains an identical model.
      return finish(BroadcastWrite(sql, stmt));
    }
    default: {
      std::unique_lock<std::shared_mutex> lock(router_mu_);
      return finish(BroadcastWrite(sql, stmt));
    }
  }
}

Result<ResultSet> ShardedRecDB::ExecuteSelect(const std::string& sql,
                                              const SelectStatement& stmt) {
  PartitionInfo* info = nullptr;
  for (const TableRef& ref : stmt.from) {
    info = FindPartition(ref.table_name);
    if (info != nullptr) break;
  }
  if (info == nullptr || shards_.size() == 1) {
    // Non-partitioned data is fully replicated (and with one shard there is
    // nothing to merge): any shard answers alone; use shard 0.
    obs::Count(obs::Counter::kServingSingleShardQueries);
    return shards_[0]->Execute(sql);
  }
  if (!stmt.group_by.empty() || stmt.having != nullptr || stmt.distinct) {
    return Status::InvalidArgument(
        "ShardedRecDB does not support GROUP BY / HAVING / DISTINCT over "
        "partitioned tables; run the aggregate per shard via shard(k)");
  }

  // Owner-targeted routing: a WHERE clause that pins the recommendation
  // users to literals only needs those users' owners.
  std::string user_col = info->user_col;
  if (stmt.recommend.has_value() && stmt.recommend->user_col != nullptr &&
      stmt.recommend->user_col->kind == ExprKind::kColumnRef) {
    user_col = stmt.recommend->user_col->column;
  }
  std::vector<size_t> targets;
  auto pinned = ExtractUserIds(stmt.where.get(), ToLower(user_col));
  if (pinned.has_value()) {
    std::set<size_t> owners;
    for (int64_t uid : *pinned) {
      owners.insert(ShardOfUser(uid, static_cast<uint32_t>(shards_.size())));
    }
    targets.assign(owners.begin(), owners.end());
    if (targets.empty()) {
      // WHERE pins an empty user set (e.g. contradictory conjuncts): any
      // single shard produces the empty result with the right header.
      targets.push_back(0);
    }
  } else {
    targets.resize(shards_.size());
    for (size_t k = 0; k < shards_.size(); ++k) targets[k] = k;
  }
  return ScatterSelect(sql, stmt, info, targets);
}

Result<ResultSet> ShardedRecDB::ScatterSelect(const std::string& sql,
                                              const SelectStatement& stmt,
                                              PartitionInfo* info,
                                              const std::vector<size_t>& targets) {
  obs::Count(targets.size() > 1 ? obs::Counter::kServingScatterQueries
                                : obs::Counter::kServingSingleShardQueries);
  obs::Count(obs::Counter::kServingFanoutLegs, targets.size());

  // Scatter: each leg re-parses and executes the statement on its shard via
  // the shared morsel scheduler. A leg that lands while the pool is busy
  // (or inside another morsel) runs inline — see TaskScheduler's nested /
  // contended contract — so the fan-out can never deadlock against engine
  // parallelism.
  std::vector<ResultSet> legs(targets.size());
  std::vector<Status> leg_status(targets.size(), Status::OK());
  Stopwatch scatter_watch;
  TaskScheduler::Global().ParallelFor(
      targets.size(), 1, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          auto r = shards_[targets[i]]->Execute(sql);
          if (r.ok()) {
            legs[i] = std::move(r).value();
          } else {
            leg_status[i] = r.status();
          }
        }
      });
  obs::ObserveUs(obs::Histogram::kServingScatterUs, ElapsedUs(scatter_watch));
  for (const Status& st : leg_status) RECDB_RETURN_NOT_OK(st);

  ResultSet out;
  out.columns = legs[0].columns;
  for (const ResultSet& leg : legs) AccumulateStats(leg.stats, &out.stats);

  MergeSpec spec;
  spec.limit = stmt.limit;
  if (stmt.recommend.has_value() && stmt.recommend->user_col != nullptr &&
      stmt.recommend->user_col->kind == ExprKind::kColumnRef) {
    const Expr& u = *stmt.recommend->user_col;
    spec.user_col = ResolveColumn(out.columns, u.qualifier, u.column);
  } else {
    spec.user_col = ResolveColumn(out.columns, "", info->user_col);
  }
  for (const OrderByItem& item : stmt.order_by) {
    if (item.expr == nullptr || item.expr->kind != ExprKind::kColumnRef) {
      return Status::InvalidArgument(
          "ShardedRecDB requires ORDER BY over named output columns for "
          "scattered queries (got expression '" +
          (item.expr != nullptr ? item.expr->ToString() : std::string("?")) +
          "')");
    }
    const size_t idx =
        ResolveColumn(out.columns, item.expr->qualifier, item.expr->column);
    if (idx == SIZE_MAX) {
      return Status::InvalidArgument(
          "ORDER BY column '" + item.expr->column +
          "' is not in the scattered query's output columns");
    }
    spec.order_by.push_back({idx, item.desc});
  }

  Stopwatch merge_watch;
  ShardMergeExecutor merger(std::move(spec), &info->user_rank);
  RECDB_RETURN_NOT_OK(merger.Merge(legs, &out));
  obs::ObserveUs(obs::Histogram::kServingMergeUs, ElapsedUs(merge_watch));
  return out;
}

Result<ResultSet> ShardedRecDB::BroadcastWrite(const std::string& sql,
                                               const Statement& stmt) {
  obs::Count(obs::Counter::kServingDmlBroadcasts);

  // Rank bookkeeping: INSERTed partitioned rows intern their user ids in
  // statement order — the same order every shard's replicated matrix interns
  // them — before the broadcast touches any shard.
  if (stmt.kind == StatementKind::kInsert) {
    const auto& ins = static_cast<const InsertStatement&>(stmt);
    PartitionInfo* info = FindPartition(ins.table_name);
    if (info != nullptr) {
      auto table = shards_[0]->catalog()->GetTable(ins.table_name);
      if (table.ok()) {
        auto idx = table.value()->schema.IndexOf(info->user_col);
        if (idx.ok()) {
          for (const auto& row : ins.rows) {
            int64_t uid;
            if (idx.value() < row.size() && row[idx.value()] != nullptr &&
                LiteralInt(*row[idx.value()], &uid)) {
              RecordRoutedUser(info, uid);
            }
          }
          PublishSkew(*info);
        }
      }
    }
  }

  // Broadcast in shard order. Identical SQL + identical replicated model
  // state means every shard applies the same model mutations; heaps diverge
  // by design (ownership filter).
  ResultSet first;
  std::vector<std::vector<ResultSet::RatingFeedOp>> feeds(shards_.size());
  for (size_t k = 0; k < shards_.size(); ++k) {
    auto r = shards_[k]->Execute(sql);
    RECDB_RETURN_NOT_OK(r.status());
    feeds[k] = std::move(r.value().rating_ops);
    if (k == 0) first = std::move(r).value();
  }

  // Cross-feed DELETE/UPDATE mutations: only the owning shard's heap scan
  // observed the affected rows; its exported ops bring every other shard's
  // replicated model to the same state.
  std::string fed_table;
  if (stmt.kind == StatementKind::kDelete) {
    fed_table = static_cast<const DeleteStatement&>(stmt).table_name;
  } else if (stmt.kind == StatementKind::kUpdate) {
    fed_table = static_cast<const UpdateStatement&>(stmt).table_name;
  }
  if (!fed_table.empty()) {
    PartitionInfo* info = FindPartition(fed_table);
    size_t user_idx = SIZE_MAX;
    std::string canonical_table = fed_table;
    if (info != nullptr) {
      auto table = shards_[0]->catalog()->GetTable(fed_table);
      if (table.ok()) {
        canonical_table = table.value()->name;
        auto idx = table.value()->schema.IndexOf(info->user_col);
        if (idx.ok()) user_idx = idx.value();
      }
    }
    if (info != nullptr && shards_.size() > 1) {
      // Each shard only saw (and reported) its own victims; the router's
      // confirmation must match what a single node would say for the whole
      // statement. DELETE exports one remove op per victim, UPDATE a
      // remove+insert pair.
      size_t exported = 0;
      for (const auto& f : feeds) exported += f.size();
      if (stmt.kind == StatementKind::kDelete) {
        first.message = StringFormat("deleted %zu rows from %s", exported,
                                     canonical_table.c_str());
      } else {
        first.message = StringFormat("updated %zu rows in %s", exported / 2,
                                     canonical_table.c_str());
      }
    }
    for (size_t k = 0; k < shards_.size(); ++k) {
      if (feeds[k].empty()) continue;
      if (info != nullptr && user_idx != SIZE_MAX) {
        // UPDATE may introduce user ids the router has never routed; intern
        // them so the merge can rank their rows. (New ids should arrive via
        // INSERT — see docs/SCALING.md for the ordering caveat.)
        for (const auto& op : feeds[k]) {
          if (op.remove || user_idx >= op.values.size()) continue;
          const Value& u = op.values[user_idx];
          if (!u.is_null() && u.type() == TypeId::kInt64 &&
              info->user_rank.find(u.AsInt()) == info->user_rank.end()) {
            info->user_rank[u.AsInt()] = info->next_rank++;
          }
        }
      }
      for (size_t j = 0; j < shards_.size(); ++j) {
        if (j == k) continue;
        RECDB_RETURN_NOT_OK(shards_[j]->ApplyRatingFeed(fed_table, feeds[k]));
      }
    }
  }
  return first;
}

Result<ResultSet> ShardedRecDB::GatherCreateRecommender(
    const CreateRecommenderStatement& stmt, PartitionInfo* info) {
  obs::Count(obs::Counter::kServingDmlBroadcasts);
  Stopwatch watch;

  // Gather every shard's partition of (user, item, rating) and sort it into
  // the canonical (uid, iid) order. The canonical order is shard-count-
  // invariant, so any fleet size trains the identical model — and a
  // single-node reference loaded in this order answers bit-identically.
  struct GatheredRow {
    int64_t user;
    int64_t item;
    double rating;
  };
  std::vector<GatheredRow> rows;
  const std::string gather_sql = "SELECT " + stmt.user_col + ", " +
                                 stmt.item_col + ", " + stmt.rating_col +
                                 " FROM " + stmt.ratings_table;
  for (size_t k = 0; k < shards_.size(); ++k) {
    RECDB_ASSIGN_OR_RETURN(ResultSet part, shards_[k]->Execute(gather_sql));
    rows.reserve(rows.size() + part.rows.size());
    for (const Tuple& t : part.rows) {
      const Value& u = t.At(0);
      const Value& i = t.At(1);
      const Value& r = t.At(2);
      if (u.is_null() || i.is_null() || r.is_null()) continue;
      if (u.type() != TypeId::kInt64 || i.type() != TypeId::kInt64 ||
          !r.is_numeric()) {
        continue;
      }
      rows.push_back({u.AsInt(), i.AsInt(), r.AsNumeric()});
    }
  }
  // stable: duplicate (uid, iid) cells keep their within-shard heap order
  // (all copies of a cell live on the owner), so last-wins matches a
  // single-node load of the same sorted stream.
  std::stable_sort(rows.begin(), rows.end(),
                   [](const GatheredRow& a, const GatheredRow& b) {
                     if (a.user != b.user) return a.user < b.user;
                     return a.item < b.item;
                   });

  RecommenderConfig config;
  config.name = stmt.name;
  config.ratings_table = stmt.ratings_table;
  config.user_col = stmt.user_col;
  config.item_col = stmt.item_col;
  config.rating_col = stmt.rating_col;
  const RecDBOptions& opts = shards_[0]->options();
  config.rebuild_threshold = opts.rebuild_threshold;
  config.refresh_threshold = opts.refresh_threshold;
  config.min_refresh_ops = opts.min_refresh_ops;
  config.sim_opts = opts.sim_opts;
  config.svd_opts = opts.svd_opts;
  if (stmt.algorithm.has_value()) {
    RECDB_ASSIGN_OR_RETURN(config.algorithm,
                           RecAlgorithmFromString(*stmt.algorithm));
  }

  Recommender* last = nullptr;
  for (size_t k = 0; k < shards_.size(); ++k) {
    // One frozen matrix per shard (shards must not share mutable delta
    // state), all built from the identical canonical stream.
    auto matrix = std::make_shared<RatingMatrix>();
    for (const GatheredRow& row : rows) {
      matrix->Add(row.user, row.item, row.rating);
    }
    matrix->Freeze();
    RECDB_ASSIGN_OR_RETURN(
        last, shards_[k]->CreateRecommenderWithMatrix(config,
                                                      std::move(matrix)));
  }

  // The matrices now intern users in canonical sorted order; reset the rank
  // map to match so the merge keeps mirroring emission order.
  info->user_rank.clear();
  info->next_rank = 0;
  for (const GatheredRow& row : rows) {
    if (info->user_rank.find(row.user) == info->user_rank.end()) {
      info->user_rank[row.user] = info->next_rank++;
    }
  }

  ResultSet rs;
  rs.elapsed_seconds = watch.ElapsedSeconds();
  rs.message = StringFormat(
      "created recommender %s (%s) on %s: %zu ratings, built in %.3fs",
      last->name().c_str(), RecAlgorithmToString(last->algorithm()),
      last->config().ratings_table.c_str(), last->base_size(),
      rs.elapsed_seconds);
  return rs;
}

Status ShardedRecDB::ReseedTableLocked(const std::string& table,
                                       PartitionInfo* info) {
  // Recommenders a reopened shard re-trained during recovery saw only its
  // own partition of the heap — drop and re-create them from the gathered
  // canonical stream.
  std::vector<RecommenderConfig> configs;
  for (Recommender* rec : shards_[0]->registry()->FindAllOnTable(table)) {
    configs.push_back(rec->config());
  }
  for (const RecommenderConfig& config : configs) {
    for (size_t k = 0; k < shards_.size(); ++k) {
      RECDB_ASSIGN_OR_RETURN(
          ResultSet dropped,
          shards_[k]->Execute("DROP RECOMMENDER " + config.name));
      (void)dropped;
    }
    CreateRecommenderStatement create;
    create.name = config.name;
    create.ratings_table = config.ratings_table;
    create.user_col = config.user_col;
    create.item_col = config.item_col;
    create.rating_col = config.rating_col;
    create.algorithm = RecAlgorithmToString(config.algorithm);
    RECDB_RETURN_NOT_OK(GatherCreateRecommender(create, info).status());
  }
  if (configs.empty()) {
    // No recommenders yet (fresh declaration): seed the rank map and skew
    // counters from whatever rows already landed, in canonical order.
    info->user_rank.clear();
    info->next_rank = 0;
    auto table_info = shards_[0]->catalog()->GetTable(table);
    if (!table_info.ok()) return Status::OK();
    std::vector<int64_t> users;
    for (size_t k = 0; k < shards_.size(); ++k) {
      RECDB_ASSIGN_OR_RETURN(
          ResultSet part,
          shards_[k]->Execute("SELECT " + info->user_col + " FROM " + table));
      for (const Tuple& t : part.rows) {
        const Value& u = t.At(0);
        if (!u.is_null() && u.type() == TypeId::kInt64) {
          users.push_back(u.AsInt());
          ++info->routed_rows[k];
        }
      }
    }
    std::sort(users.begin(), users.end());
    for (int64_t uid : users) {
      if (info->user_rank.find(uid) == info->user_rank.end()) {
        info->user_rank[uid] = info->next_rank++;
      }
    }
    PublishSkew(*info);
  }
  return Status::OK();
}

Status ShardedRecDB::DeclarePartitionedTable(const std::string& table,
                                             const std::string& user_col) {
  std::unique_lock<std::shared_mutex> lock(router_mu_);
  for (size_t k = 0; k < shards_.size(); ++k) {
    RECDB_RETURN_NOT_OK(shards_[k]->DeclarePartitionedTable(table, user_col));
  }
  PartitionInfo& info = partitions_[ToLower(table)];
  info.user_col = user_col;
  info.user_rank.clear();
  info.next_rank = 0;
  info.routed_rows.assign(shards_.size(), 0);
  return ReseedTableLocked(table, &info);
}

Status ShardedRecDB::BulkInsert(const std::string& table,
                                const std::vector<std::vector<Value>>& rows) {
  std::unique_lock<std::shared_mutex> lock(router_mu_);
  obs::Count(obs::Counter::kServingDmlBroadcasts);
  PartitionInfo* info = FindPartition(table);
  if (info != nullptr) {
    auto table_info = shards_[0]->catalog()->GetTable(table);
    if (table_info.ok()) {
      auto idx = table_info.value()->schema.IndexOf(info->user_col);
      if (idx.ok()) {
        for (const auto& row : rows) {
          if (idx.value() < row.size()) {
            const Value& u = row[idx.value()];
            if (!u.is_null() && u.type() == TypeId::kInt64) {
              RecordRoutedUser(info, u.AsInt());
            }
          }
        }
        PublishSkew(*info);
      }
    }
  }
  for (size_t k = 0; k < shards_.size(); ++k) {
    RECDB_RETURN_NOT_OK(shards_[k]->BulkInsert(table, rows));
  }
  return Status::OK();
}

Result<bool> ShardedRecDB::RefreshAll(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(router_mu_);
  bool any = false;
  for (size_t k = 0; k < shards_.size(); ++k) {
    RECDB_ASSIGN_OR_RETURN(bool merged, shards_[k]->RefreshRecommender(name));
    any = any || merged;
  }
  return any;
}

void ShardedRecDB::DrainBackgroundWork() {
  for (auto& shard : shards_) shard->DrainBackgroundWork();
}

Status ShardedRecDB::Checkpoint() {
  std::unique_lock<std::shared_mutex> lock(router_mu_);
  for (auto& shard : shards_) RECDB_RETURN_NOT_OK(shard->Checkpoint());
  return Status::OK();
}

Status ShardedRecDB::Close() {
  std::unique_lock<std::shared_mutex> lock(router_mu_);
  Status first = Status::OK();
  for (auto& shard : shards_) {
    Status st = shard->Close();
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

}  // namespace recdb
