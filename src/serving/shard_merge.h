// Scatter-gather merge for the sharded serving layer (DESIGN.md §14).
//
// Each engine shard answers a fanned-out SELECT with the subsequence of the
// single-node result belonging to the users it owns, already sorted under
// the query's ORDER BY. ShardMergeExecutor reassembles the exact single-node
// output with a k-way merge: rows are compared first on the ORDER BY keys
// (per-key direction), then on the user's global first-seen rank (which
// mirrors the rating matrix's interning order, i.e. the executors' user-major
// emission order), then on the row's arrival sequence within its leg. Because
// every leg is sorted under this same comparator, the merge is a linear
// k-way front scan that can stop as soon as LIMIT rows have been emitted —
// the per-shard streams act as their own merge thresholds (each shard's
// top-k is a superset of its contribution to the global top-k, the PR-8
// bound argument applied across shards).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "api/recdb.h"
#include "common/status.h"

namespace recdb {

/// How to compare rows of one scattered SELECT's result streams.
struct MergeSpec {
  struct Key {
    size_t col = 0;     // index into ResultSet::columns
    bool desc = false;  // ORDER BY direction
  };
  std::vector<Key> order_by;  // empty = merge purely on (rank, seq)
  /// Column carrying the recommendation user id, or SIZE_MAX when the query
  /// has no usable user column (plain partitioned scans): ties then break on
  /// leg arrival order and shard index.
  size_t user_col = SIZE_MAX;
  std::optional<int64_t> limit;
};

class ShardMergeExecutor {
 public:
  /// `user_rank` maps user id -> global first-seen rank (the router's
  /// PartitionInfo); unknown users rank after all known ones. Borrowed, may
  /// be null (all users rank equal).
  ShardMergeExecutor(MergeSpec spec,
                     const std::unordered_map<int64_t, uint64_t>* user_rank)
      : spec_(std::move(spec)), user_rank_(user_rank) {}

  /// Merge the per-shard result streams (`legs`, in shard order) into `out`
  /// (rows appended; columns/stats untouched). Counts serving.rows_merged /
  /// serving.rows_emitted and updates the serving.merge_depth gauge.
  Status Merge(const std::vector<ResultSet>& legs, ResultSet* out) const;

 private:
  /// true when leg `a`'s front row sorts strictly before leg `b`'s.
  bool RowLess(const Tuple& a, uint64_t rank_a, size_t seq_a, size_t leg_a,
               const Tuple& b, uint64_t rank_b, size_t seq_b,
               size_t leg_b) const;
  uint64_t RankOf(const Tuple& row) const;

  MergeSpec spec_;
  const std::unordered_map<int64_t, uint64_t>* user_rank_;
};

}  // namespace recdb
