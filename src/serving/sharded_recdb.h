// ShardedRecDB: hash-partitioned scatter-gather serving over N in-process
// RecDB engine shards (DESIGN.md §14, docs/SCALING.md).
//
// Partitioning model — replicated model plane, partitioned serving plane:
//   * Every shard's rating matrix and CF/SVD model are fed the FULL rating
//     stream in identical statement order, so model state (similarities,
//     factors, global interning) is bit-identical on every shard. Models are
//     interning-order-sensitive, so replication is what keeps a K-shard
//     deployment's scores equal to single-node's.
//   * Heap rows of declared partitioned tables, their WAL records, the
//     RecScoreIndex contents, and cache demand land only on the shard that
//     owns the row's user (ShardOfUser hash) — the per-user state that
//     dominates memory and maintenance cost scales out 1/K per shard.
//
// Query path: RECOMMEND SELECTs over partitioned tables fan out on the
// global TaskScheduler to the owning shards (all shards, or the owners of
// the user ids pinned by the WHERE clause); each shard emits the
// order-preserving subsequence of the single-node result for its users, and
// ShardMergeExecutor reassembles the exact single-node output. DML broadcasts
// to every shard in shard order: each shard persists only its owned rows but
// feeds its models every row; DELETE/UPDATE mutations observed by the owning
// shard's heap scan are cross-fed to the other shards' models afterwards.
//
// The router executes ONE statement per Execute() call (no scripts) and
// owns the shard_count/shard_index knobs — `SET shard_count` through the
// router is rejected.
#pragma once

#include <cstddef>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/recdb.h"
#include "common/status.h"

namespace recdb {

struct ShardedRecDBOptions {
  /// Engine shards behind the router, in [1, 64].
  size_t num_shards = 2;
  /// Template for every shard's options; shard_count/shard_index are
  /// overwritten per shard by the router.
  RecDBOptions shard_options;
};

class ShardedRecDB {
 public:
  ~ShardedRecDB();

  ShardedRecDB(const ShardedRecDB&) = delete;
  ShardedRecDB& operator=(const ShardedRecDB&) = delete;

  /// In-memory router over `options.num_shards` fresh engine shards.
  static Result<std::unique_ptr<ShardedRecDB>> Create(
      ShardedRecDBOptions options = {});

  /// File-backed router: shard k lives at `path + ".shard<k>"` with its own
  /// WAL. Reopening recovers every shard independently; call
  /// DeclarePartitionedTable again for each partitioned table afterwards —
  /// it re-seeds the recovered recommenders from a gathered canonical
  /// matrix (each recovered heap holds only its partition, so the models a
  /// shard re-trained locally during recovery are discarded).
  static Result<std::unique_ptr<ShardedRecDB>> Open(
      const std::string& path, ShardedRecDBOptions options = {});

  /// Execute one SQL statement through the router. SELECT/EXPLAIN run under
  /// a shared router lock; everything else is exclusive.
  Result<ResultSet> Execute(const std::string& sql);

  /// Partition-aware bulk load: owned rows land in their owning shard's
  /// heap, every row feeds every shard's models, and the router's user-rank
  /// map records global first-seen order.
  Status BulkInsert(const std::string& table,
                    const std::vector<std::vector<Value>>& rows);

  /// Declare `table` user-partitioned on `user_col` on every shard, and (on
  /// a reopened router) rebuild the user-rank map and re-seed existing
  /// recommenders on the table from a gathered canonical matrix.
  Status DeclarePartitionedTable(const std::string& table,
                                 const std::string& user_col);

  /// Refresh one recommender on every shard (merge pending deltas).
  /// Returns true when any shard merged.
  Result<bool> RefreshAll(const std::string& name);

  /// Block until every shard's background-refresh lane is idle.
  void DrainBackgroundWork();

  Status Checkpoint();
  Status Close();

  size_t num_shards() const { return shards_.size(); }
  RecDB* shard(size_t k) { return shards_[k].get(); }

 private:
  /// Per partitioned table: the declared user column and the global
  /// first-seen rank of every routed user id — the router-side mirror of
  /// the replicated matrices' interning order, used by the merge to restore
  /// single-node emission order and by the skew gauge.
  struct PartitionInfo {
    std::string user_col;
    std::unordered_map<int64_t, uint64_t> user_rank;
    uint64_t next_rank = 0;
    std::vector<uint64_t> routed_rows;  // per shard, for serving.shard_skew_pct
  };

  ShardedRecDB() = default;

  static Status ValidateOptions(const ShardedRecDBOptions& options);

  /// Statement dispatch; caller classified and holds the right lock.
  Result<ResultSet> ExecuteSelect(const std::string& sql,
                                  const SelectStatement& stmt);
  Result<ResultSet> ScatterSelect(const std::string& sql,
                                  const SelectStatement& stmt,
                                  PartitionInfo* info,
                                  const std::vector<size_t>& targets);
  Result<ResultSet> BroadcastWrite(const std::string& sql,
                                   const Statement& stmt);
  Result<ResultSet> GatherCreateRecommender(
      const CreateRecommenderStatement& stmt, PartitionInfo* info);

  /// Re-seed every recommender on `table` (and rebuild `info`'s rank map)
  /// from a gathered, (uid,iid)-sorted canonical matrix. Caller holds the
  /// exclusive router lock.
  Status ReseedTableLocked(const std::string& table, PartitionInfo* info);

  PartitionInfo* FindPartition(const std::string& table);
  /// Record one routed rating row for rank/skew bookkeeping.
  void RecordRoutedUser(PartitionInfo* info, int64_t user_id);
  void PublishSkew(const PartitionInfo& info);

  mutable std::shared_mutex router_mu_;
  std::vector<std::unique_ptr<RecDB>> shards_;
  std::unordered_map<std::string, PartitionInfo> partitions_;  // lower(table)
};

}  // namespace recdb
