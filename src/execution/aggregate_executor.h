// Hash-aggregation executor (COUNT / SUM / AVG / MIN / MAX with GROUP BY).
#pragma once

#include <unordered_map>
#include <vector>

#include "execution/executor.h"

namespace recdb {

class HashAggregateExecutor : public Executor {
 public:
  HashAggregateExecutor(const AggregatePlan& plan, ExecutorPtr child,
                        ExecContext* ctx)
      : Executor(plan, ctx),
        plan_(plan), child_(std::move(child)), ctx_(ctx) {}

  Status Init() override;
  Result<std::optional<Tuple>> NextImpl() override;

 private:
  struct AggState {
    uint64_t count = 0;   // rows (COUNT(*)) or non-null args (others)
    double sum = 0;
    Value min;
    Value max;
    bool has_value = false;
  };
  struct Group {
    std::vector<Value> keys;
    std::vector<AggState> states;
  };

  Status Accumulate(const Tuple& row, std::vector<AggState>* states);
  Tuple Finalize(const Group& group) const;

  const AggregatePlan& plan_;
  ExecutorPtr child_;
  ExecContext* ctx_;
  std::vector<Group> groups_;
  size_t pos_ = 0;
};

}  // namespace recdb
