// Volcano (iterator-model) executor interface.
//
// All operators — including the RECOMMEND family — are non-blocking
// iterators (paper Section IV-B): Init() prepares state, Next() produces one
// tuple at a time so downstream operators can consume results before the
// recommendation operator finishes all predictions.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <unordered_map>

#include "common/shard.h"
#include "common/status.h"
#include "obs/tracer.h"
#include "planner/plan_node.h"
#include "types/tuple.h"

namespace recdb {

/// Counters shared by all executors of one query execution.
struct ExecStats {
  uint64_t tuples_scanned = 0;      // base-table tuples read
  uint64_t predictions = 0;         // candidate scores computed by the model
  uint64_t predict_calls = 0;       // candidates scored via PredictBatch
  uint64_t predict_batches = 0;     // PredictBatch invocations (hot paths)
  uint64_t index_hits = 0;          // users served from RecScoreIndex
  uint64_t index_misses = 0;        // users that fell back to the model
  uint64_t join_probes = 0;
  // Sublinear Top-N (CandidateIndex + TopKPruner) during the statement.
  uint64_t candidates_generated = 0;  // items reached by the postings walk
  uint64_t blocks_skipped = 0;        // bound blocks pruned below threshold
  uint64_t items_pruned = 0;          // items never scored thanks to pruning
  // Morsel-parallel execution (TaskScheduler) during the statement.
  uint64_t tasks_spawned = 0;  // morsels executed by the scheduler
  double worker_time_ms = 0;   // summed worker busy time across morsels
  // I/O fault behaviour observed during the statement (DiskManager deltas).
  uint64_t io_read_failures = 0;    // reads that failed after retries
  uint64_t io_write_failures = 0;   // writes that failed after retries
  uint64_t io_retries = 0;          // transient-fault retries performed
  uint64_t io_checksum_failures = 0;  // pages that failed CRC verification
};

struct ExecContext {
  ExecStats stats;
  /// Actual rows emitted per plan node (EXPLAIN ANALYZE), keyed by node
  /// address; filled by the Executor::Next wrapper as tuples flow.
  ActualRowMap actual_rows;
  /// Non-null when `SET trace = on`: the Next wrapper times each NextImpl
  /// call and accumulates per-node inclusive durations into the tracer.
  /// Null (the default) keeps the hot path untimed and allocation-free.
  obs::Tracer* tracer = nullptr;
  /// Serving-layer user partition (DESIGN.md §14), seeded from
  /// RecDBOptions::shard_count / shard_index. When shard_count > 1 the
  /// RECOMMEND executors restrict their candidate-user lists to the users
  /// this engine shard owns; the emission order of the surviving users is
  /// unchanged, so each shard's stream is an order-preserving subsequence
  /// of the single-node stream and the router's merge can reassemble the
  /// exact single-node output.
  uint32_t shard_count = 1;
  uint32_t shard_index = 0;

  bool ShardFilterActive() const { return shard_count > 1; }
  bool OwnsUser(int64_t user_id) const {
    return shard_count <= 1 || ShardOfUser(user_id, shard_count) == shard_index;
  }
};

class Executor {
 public:
  Executor(const PlanNode& node, ExecContext* ctx)
      : node_(&node), exec_ctx_(ctx) {}
  virtual ~Executor() = default;

  /// Prepare (or re-prepare) the iterator. Must be callable repeatedly.
  virtual Status Init() = 0;

  /// Produce the next tuple, or nullopt when exhausted. Counts emitted
  /// tuples into ExecContext::actual_rows for EXPLAIN ANALYZE, and — when a
  /// tracer is attached — accumulates this node's inclusive NextImpl time
  /// for the per-executor trace spans.
  Result<std::optional<Tuple>> Next() {
    if (exec_ctx_ != nullptr && exec_ctx_->tracer != nullptr) {
      return TracedNext();
    }
    auto r = NextImpl();
    if (r.ok() && r.value().has_value() && exec_ctx_ != nullptr) {
      ++exec_ctx_->actual_rows[node_];
    }
    return r;
  }

 protected:
  virtual Result<std::optional<Tuple>> NextImpl() = 0;

 private:
  Result<std::optional<Tuple>> TracedNext() {
    const auto start = std::chrono::steady_clock::now();
    auto r = NextImpl();
    const uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    const bool produced = r.ok() && r.value().has_value();
    exec_ctx_->tracer->RecordNode(node_, ns, produced);
    if (produced) ++exec_ctx_->actual_rows[node_];
    return r;
  }

  const PlanNode* node_;
  ExecContext* exec_ctx_;
};

using ExecutorPtr = std::unique_ptr<Executor>;

/// Instantiate the executor tree for a physical plan.
Result<ExecutorPtr> CreateExecutor(const PlanNode& plan, ExecContext* ctx);

}  // namespace recdb
