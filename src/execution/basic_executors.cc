#include "execution/basic_executors.h"

#include <algorithm>

namespace recdb {

// ---------------------------------------------------------------- SeqScan

Status SeqScanExecutor::Init() {
  iter_.emplace(plan_.table->heap->Begin(plan_.table->schema.NumColumns()));
  return Status::OK();
}

Result<std::optional<Tuple>> SeqScanExecutor::NextImpl() {
  RECDB_ASSIGN_OR_RETURN(auto next, iter_->Next());
  if (!next.has_value()) return std::optional<Tuple>{};
  ++ctx_->stats.tuples_scanned;
  return std::make_optional(std::move(next->second));
}

// ----------------------------------------------------------------- Filter

Result<std::optional<Tuple>> FilterExecutor::NextImpl() {
  while (true) {
    RECDB_ASSIGN_OR_RETURN(auto next, child_->Next());
    if (!next.has_value()) return std::optional<Tuple>{};
    RECDB_ASSIGN_OR_RETURN(bool pass, plan_.predicate->EvalPredicate(*next));
    if (pass) return next;
  }
}

// ---------------------------------------------------------------- Project

Result<std::optional<Tuple>> ProjectExecutor::NextImpl() {
  while (true) {
    RECDB_ASSIGN_OR_RETURN(auto next, child_->Next());
    if (!next.has_value()) return std::optional<Tuple>{};
    std::vector<Value> out;
    out.reserve(plan_.exprs.size());
    for (const auto& e : plan_.exprs) {
      RECDB_ASSIGN_OR_RETURN(Value v, e->Eval(*next));
      out.push_back(std::move(v));
    }
    Tuple row(std::move(out));
    if (plan_.distinct) {
      size_t h = 0x9e3779b97f4a7c15ULL;
      for (const auto& v : row.values()) {
        h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      }
      bool dup = false;
      auto [lo, hi] = seen_.equal_range(h);
      for (auto it = lo; it != hi; ++it) {
        if (it->second == row) {
          dup = true;
          break;
        }
      }
      if (dup) continue;
      seen_.emplace(h, row);
    }
    return std::make_optional(std::move(row));
  }
}

// ---------------------------------------------------------- NestedLoopJoin

Status NestedLoopJoinExecutor::Init() {
  RECDB_RETURN_NOT_OK(left_->Init());
  RECDB_RETURN_NOT_OK(right_->Init());
  inner_.clear();
  while (true) {
    RECDB_ASSIGN_OR_RETURN(auto next, right_->Next());
    if (!next.has_value()) break;
    inner_.push_back(std::move(*next));
  }
  outer_tuple_.reset();
  inner_pos_ = 0;
  return Status::OK();
}

Result<std::optional<Tuple>> NestedLoopJoinExecutor::NextImpl() {
  while (true) {
    if (!outer_tuple_.has_value()) {
      RECDB_ASSIGN_OR_RETURN(auto next, left_->Next());
      if (!next.has_value()) return std::optional<Tuple>{};
      outer_tuple_ = std::move(next);
      inner_pos_ = 0;
    }
    while (inner_pos_ < inner_.size()) {
      const Tuple& inner = inner_[inner_pos_++];
      Tuple joined = *outer_tuple_;
      joined.Append(inner);
      ++ctx_->stats.join_probes;
      if (plan_.predicate != nullptr) {
        RECDB_ASSIGN_OR_RETURN(bool pass,
                               plan_.predicate->EvalPredicate(joined));
        if (!pass) continue;
      }
      return std::make_optional(std::move(joined));
    }
    outer_tuple_.reset();
  }
}

// ---------------------------------------------------------------- HashJoin

Status HashJoinExecutor::Init() {
  RECDB_RETURN_NOT_OK(left_->Init());
  RECDB_RETURN_NOT_OK(right_->Init());
  table_.clear();
  while (true) {
    RECDB_ASSIGN_OR_RETURN(auto next, right_->Next());
    if (!next.has_value()) break;
    RECDB_ASSIGN_OR_RETURN(Value key, plan_.right_key->Eval(*next));
    if (key.is_null()) continue;  // NULL never joins
    table_.emplace(std::move(key), std::move(*next));
  }
  probe_tuple_.reset();
  matches_.clear();
  match_pos_ = 0;
  return Status::OK();
}

Result<std::optional<Tuple>> HashJoinExecutor::NextImpl() {
  while (true) {
    while (match_pos_ < matches_.size()) {
      const Tuple* inner = matches_[match_pos_++];
      Tuple joined = *probe_tuple_;
      joined.Append(*inner);
      if (plan_.residual != nullptr) {
        RECDB_ASSIGN_OR_RETURN(bool pass,
                               plan_.residual->EvalPredicate(joined));
        if (!pass) continue;
      }
      return std::make_optional(std::move(joined));
    }
    RECDB_ASSIGN_OR_RETURN(auto next, left_->Next());
    if (!next.has_value()) return std::optional<Tuple>{};
    probe_tuple_ = std::move(next);
    ++ctx_->stats.join_probes;
    matches_.clear();
    match_pos_ = 0;
    RECDB_ASSIGN_OR_RETURN(Value key, plan_.left_key->Eval(*probe_tuple_));
    if (key.is_null()) continue;
    auto [lo, hi] = table_.equal_range(key);
    for (auto it = lo; it != hi; ++it) matches_.push_back(&it->second);
  }
}

// ------------------------------------------------------------- Sort / TopN

Result<std::vector<Value>> EvalSortKeys(const std::vector<SortKey>& keys,
                                        const Tuple& t) {
  std::vector<Value> out;
  out.reserve(keys.size());
  for (const auto& k : keys) {
    RECDB_ASSIGN_OR_RETURN(Value v, k.expr->Eval(t));
    out.push_back(std::move(v));
  }
  return out;
}

bool SortKeyVectorLess(const std::vector<SortKey>& keys,
                       const std::vector<Value>& a,
                       const std::vector<Value>& b) {
  for (size_t i = 0; i < keys.size(); ++i) {
    int c = a[i].Compare(b[i]);
    if (c == 0) continue;
    return keys[i].desc ? c > 0 : c < 0;
  }
  return false;
}

namespace {

struct KeyedRow {
  std::vector<Value> keys;
  // Arrival order, used as the final comparator key: pruning with
  // nth_element shuffles rows, so a trailing stable_sort alone cannot
  // restore arrival order among key ties — the tie-break must be explicit
  // for Top-N output to be deterministic regardless of pruning.
  uint64_t seq = 0;
  Tuple tuple;
};

Result<std::vector<Tuple>> DrainSorted(Executor* child,
                                       const std::vector<SortKey>& keys,
                                       size_t bound) {
  std::vector<KeyedRow> rows;
  // Total order: sort keys first, arrival order as tie-break.
  auto less = [&](const KeyedRow& x, const KeyedRow& y) {
    if (SortKeyVectorLess(keys, x.keys, y.keys)) return true;
    if (SortKeyVectorLess(keys, y.keys, x.keys)) return false;
    return x.seq < y.seq;
  };
  uint64_t seq = 0;
  while (true) {
    RECDB_ASSIGN_OR_RETURN(auto next, child->Next());
    if (!next.has_value()) break;
    RECDB_ASSIGN_OR_RETURN(auto kv, EvalSortKeys(keys, *next));
    rows.push_back(KeyedRow{std::move(kv), seq++, std::move(*next)});
    // Bounded selection: when far past the bound, prune to the best `bound`.
    if (bound > 0 && rows.size() >= bound * 2 + 16) {
      std::nth_element(rows.begin(), rows.begin() + bound - 1, rows.end(),
                       less);
      rows.resize(bound);
    }
  }
  std::sort(rows.begin(), rows.end(), less);
  if (bound > 0 && rows.size() > bound) rows.resize(bound);
  std::vector<Tuple> out;
  out.reserve(rows.size());
  for (auto& r : rows) out.push_back(std::move(r.tuple));
  return out;
}

}  // namespace

Status SortExecutor::Init() {
  RECDB_RETURN_NOT_OK(child_->Init());
  RECDB_ASSIGN_OR_RETURN(rows_, DrainSorted(child_.get(), plan_.keys, 0));
  pos_ = 0;
  return Status::OK();
}

Result<std::optional<Tuple>> SortExecutor::NextImpl() {
  if (pos_ >= rows_.size()) return std::optional<Tuple>{};
  return std::make_optional(std::move(rows_[pos_++]));
}

Status TopNExecutor::Init() {
  RECDB_RETURN_NOT_OK(child_->Init());
  rows_.clear();
  pos_ = 0;
  if (plan_.n == 0) return Status::OK();  // LIMIT 0
  RECDB_ASSIGN_OR_RETURN(rows_,
                         DrainSorted(child_.get(), plan_.keys, plan_.n));
  return Status::OK();
}

Result<std::optional<Tuple>> TopNExecutor::NextImpl() {
  if (pos_ >= rows_.size()) return std::optional<Tuple>{};
  return std::make_optional(std::move(rows_[pos_++]));
}

// ------------------------------------------------------------------ Limit

Result<std::optional<Tuple>> LimitExecutor::NextImpl() {
  if (emitted_ >= plan_.n) return std::optional<Tuple>{};
  RECDB_ASSIGN_OR_RETURN(auto next, child_->Next());
  if (!next.has_value()) return std::optional<Tuple>{};
  ++emitted_;
  return next;
}

}  // namespace recdb
