// Recommendation-aware executors (paper Section IV):
//   RecommendExecutor       — RECOMMEND / FILTERRECOMMEND (Algorithms 1 & 2;
//                             pushed-down user/item predicates prune scoring)
//   JoinRecommendExecutor   — JOINRECOMMEND (outer relation drives scoring)
//   IndexRecommendExecutor  — INDEXRECOMMEND (Algorithm 3 over RecScoreIndex,
//                             with model fallback on cache miss)
//
// All scoring goes through RecModel::PredictBatch: each executor resolves a
// user's candidate set first, scores the unrated candidates in one batch
// call, and only then emits tuples — per-candidate model->Predict() calls
// do not appear on any hot path.
#pragma once

#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "execution/executor.h"
#include "execution/topk_pruner.h"

namespace recdb {

/// One user's scores over a positional range of candidate items: rated
/// positions carry the stored rating, the rest the PredictBatch result.
struct UserRowScores {
  std::vector<double> score;   // per position
  std::vector<uint8_t> rated;  // per position: 1 = user already rated it
  uint64_t predicted = 0;      // candidates that went through the model
  uint64_t batches = 0;        // PredictBatch calls issued (0 or 1)
};

/// Per-executor engine for the sublinear Top-N paths (DESIGN.md §13):
/// candidate generation over the CandidateIndex postings (union-merged with
/// the delta overlay's side rows for rows touched since the freeze), the
/// must-score partition for items whose static bound cannot be trusted,
/// the WAND-style block sweep against a TopKPruner threshold, and the
/// zero-score merge that restores the provably-0.0 tail in tie-break
/// order. Scratch arrays are epoch-stamped and reused across users. Not
/// thread-safe — parallel paths construct one engine per morsel.
class PruneEngine {
 public:
  /// rank_by_id chooses the tie-break domain: false = item position
  /// (RecommendExecutor under a TopN), true = external item id (the
  /// IndexRecommend fallback's sort order).
  PruneEngine(const RecModel* model, const RatingMatrix& snapshot,
              const CandidateIndex& index, bool rank_by_id);

  /// One user's exact top-k over unseen items, best-first (score desc,
  /// rank asc). Bit-identical to batch-scoring the full catalog and
  /// keeping the k best under the same order. `floor` models the plan's
  /// min_score (use -inf when absent).
  std::vector<TopKPruner::Entry> UserTopK(int64_t user_id, size_t k,
                                          double floor);

  /// JoinRecommend zero-fill support: sets mark[i] = 1 for every item
  /// index in the user's candidate superset; every unmarked item provably
  /// scores exactly 0.0 for this user.
  void CandidateBitmap(int64_t user_id, std::vector<uint8_t>* mark);

  /// Add the accumulated counters into `stats` (may be null) and the
  /// global prune.* metrics, then zero them.
  void FlushStats(ExecStats* stats);

  // Accumulated across calls until FlushStats (parallel morsels read these
  // directly and fold them into atomics instead).
  uint64_t candidates_generated = 0;
  uint64_t blocks_skipped = 0;
  uint64_t items_pruned = 0;
  uint64_t predictions = 0;
  uint64_t batches = 0;

 private:
  /// Two-hop walk: start items = merged row of u (∪ base row, covering the
  /// user-based families whose similarities are anchored to the base),
  /// raters from the base postings, candidate items = base ∪ side rows of
  /// each rater. Fills candidates_ (deduplicated via walk_stamp_).
  void GenerateCandidates(int32_t u);
  void ScoreBatch(int64_t user_id, const std::vector<int32_t>& items,
                  TopKPruner* pruner);
  /// Zero-merge modes: kAllUnrated offers every unrated item (all-zero
  /// users), kSkipConsumed skips consume-stamped items (candidate
  /// families), kSkipInBounds skips the bound table's domain (catalog-
  /// sweep families, where every in-bounds item was scored or pruned).
  enum class MergeMode { kAllUnrated, kSkipConsumed, kSkipInBounds };
  void ZeroMerge(int64_t user_id, int32_t u, MergeMode mode,
                 TopKPruner* pruner);
  /// Float-safe upper bound for a block: the model's slack pads the
  /// magnitude of every term, plus an absolute epsilon.
  double PaddedBound(double scale_u, double offset_u, double max_scale,
                     double max_offset) const;
  bool Rated(int32_t u, int32_t item_idx) const;

  const RecModel* model_;
  const RatingMatrix& snapshot_;
  const CandidateIndex& index_;
  const bool rank_by_id_;
  const size_t num_items_;  // catalog size captured at construction

  std::vector<uint32_t> walk_stamp_;     // per item: candidate-walk dedup
  std::vector<uint32_t> consume_stamp_;  // per item: scored/pruned/rated
  std::vector<uint32_t> user_stamp_;     // per base user: rater dedup
  uint32_t epoch_ = 0;
  std::vector<int32_t> start_;
  std::vector<int32_t> candidates_;
  std::vector<int32_t> must_score_;
  std::vector<std::vector<int32_t>> block_items_;
  std::vector<int32_t> touched_blocks_;
  std::vector<int64_t> batch_ids_;
  std::vector<double> batch_pred_;
  /// Items interned after the base the postings were lowered from, sorted
  /// by external id — merged with index.order_by_id() for the id-ordered
  /// zero-merge.
  std::vector<std::pair<int64_t, int32_t>> oob_by_id_;
};

class RecommendExecutor : public Executor {
 public:
  RecommendExecutor(const RecommendPlan& plan, ExecContext* ctx)
      : Executor(plan, ctx),
        plan_(plan), ctx_(ctx) {}
  Status Init() override;
  Result<std::optional<Tuple>> NextImpl() override;

 private:
  /// Morsel-parallel scoring over the flattened (user, item) candidate
  /// space: workers claim pair ranges, batch-score each user run inside
  /// the range, emit into per-morsel slots, and the slots are concatenated
  /// in range order — bit-identical to the serial emission order under any
  /// thread count.
  Status ScoreAllParallel();
  /// Pruned Top-K mode: per-user top-prune_limit via PruneEngine (morsel-
  /// parallel over users), each user's survivors emitted in item-position
  /// order — the exact emission order restricted to the surviving subset,
  /// so the parent TopN's result is bit-identical.
  Status ScorePruned();

  const RecommendPlan& plan_;
  ExecContext* ctx_;
  bool prune_active_ = false;
  std::shared_ptr<const CandidateIndex> cindex_;
  // Candidate id lists resolved at Init (filters applied).
  std::vector<int64_t> users_;
  std::vector<int64_t> items_;
  size_t user_pos_ = 0;
  size_t item_pos_ = 0;
  // Serial mode: the current user's batched row of scores.
  UserRowScores row_;
  bool row_ready_ = false;
  // Parallel mode: results materialized at Init, drained by Next.
  bool buffered_ = false;
  std::vector<Tuple> buffer_;
  size_t buffer_pos_ = 0;
};

class JoinRecommendExecutor : public Executor {
 public:
  JoinRecommendExecutor(const JoinRecommendPlan& plan, ExecutorPtr outer,
                        ExecContext* ctx)
      : Executor(plan, ctx),
        plan_(plan), outer_(std::move(outer)), ctx_(ctx) {}
  Status Init() override;
  Result<std::optional<Tuple>> NextImpl() override;

 private:
  /// Pull the next window of outer tuples and batch-score it: one
  /// PredictBatch per user over the window's valid unrated items, instead
  /// of one scalar Predict per (outer tuple, user) probe.
  Status FillWindow();
  /// True when the item may score nonzero for valid_users_[user_slot]
  /// (candidate-set membership; conservative for unresolvable items).
  bool IsWindowCandidate(size_t user_slot, const RatingMatrix& snapshot,
                         int64_t item_id) const;

  const JoinRecommendPlan& plan_;
  ExecutorPtr outer_;
  ExecContext* ctx_;
  // Pushed-down users known to the model, in plan order (resolved once).
  std::vector<int64_t> valid_users_;
  // CF zero-fill: per valid user, candidate-item bitmap over item indices;
  // window items outside it provably score 0.0 and skip the model.
  bool prune_active_ = false;
  std::shared_ptr<const CandidateIndex> cindex_;
  std::vector<std::vector<uint8_t>> user_candidates_;
  bool outer_done_ = false;
  // Current probe window. Scores/skip flags are flattened [user][slot].
  std::vector<Tuple> window_;
  std::vector<int64_t> window_items_;
  std::vector<uint8_t> window_known_;  // item id valid & known to the model
  std::vector<double> window_scores_;
  std::vector<uint8_t> window_skip_;
  size_t window_slot_ = 0;  // emission cursor: outer tuple within window
  size_t window_user_ = 0;  // emission cursor: user within slot
};

class IndexRecommendExecutor : public Executor {
 public:
  IndexRecommendExecutor(const IndexRecommendPlan& plan, ExecContext* ctx)
      : Executor(plan, ctx),
        plan_(plan), ctx_(ctx) {}
  ~IndexRecommendExecutor() override;
  Status Init() override;
  Result<std::optional<Tuple>> NextImpl() override;

 private:
  /// Load the (item, score) list for users_[user_pos_], from the index when
  /// materialized (hit) or by batch-scoring through the model (miss).
  Status LoadCurrentUser();

  const IndexRecommendPlan& plan_;
  ExecContext* ctx_;
  // Pushed-down item ids as a hash set (O(1) membership instead of a per-
  // candidate std::find) plus a deduplicated list for the cache-miss scan,
  // so duplicated IN-list entries cannot emit duplicate tuples.
  std::optional<std::unordered_set<int64_t>> item_filter_;
  std::vector<int64_t> item_list_;
  std::vector<int64_t> users_;
  size_t user_pos_ = 0;
  std::vector<std::pair<int64_t, double>> current_;  // best-first
  size_t current_pos_ = 0;
  bool loaded_ = false;
  // Threshold-pruned cache-miss fallback (external-id tie-break, floor =
  // min_score); lazily constructed at the first miss.
  bool prune_active_ = false;
  std::shared_ptr<const CandidateIndex> cindex_;
  std::unique_ptr<PruneEngine> engine_;
};

}  // namespace recdb
