// Recommendation-aware executors (paper Section IV):
//   RecommendExecutor       — RECOMMEND / FILTERRECOMMEND (Algorithms 1 & 2;
//                             pushed-down user/item predicates prune scoring)
//   JoinRecommendExecutor   — JOINRECOMMEND (outer relation drives scoring)
//   IndexRecommendExecutor  — INDEXRECOMMEND (Algorithm 3 over RecScoreIndex,
//                             with model fallback on cache miss)
#pragma once

#include <vector>

#include "execution/executor.h"

namespace recdb {

class RecommendExecutor : public Executor {
 public:
  RecommendExecutor(const RecommendPlan& plan, ExecContext* ctx)
      : plan_(plan), ctx_(ctx) {}
  Status Init() override;
  Result<std::optional<Tuple>> Next() override;

 private:
  /// Advance (user_pos_, item_pos_) to the next candidate pair; fills the
  /// output fields. Returns false when exhausted.
  Result<std::optional<Tuple>> Emit(int64_t user_id, int64_t item_id,
                                    double score) const;

  const RecommendPlan& plan_;
  ExecContext* ctx_;
  // Candidate id lists resolved at Init (filters applied).
  std::vector<int64_t> users_;
  std::vector<int64_t> items_;
  size_t user_pos_ = 0;
  size_t item_pos_ = 0;
};

class JoinRecommendExecutor : public Executor {
 public:
  JoinRecommendExecutor(const JoinRecommendPlan& plan, ExecutorPtr outer,
                        ExecContext* ctx)
      : plan_(plan), outer_(std::move(outer)), ctx_(ctx) {}
  Status Init() override;
  Result<std::optional<Tuple>> Next() override;

 private:
  const JoinRecommendPlan& plan_;
  ExecutorPtr outer_;
  ExecContext* ctx_;
  std::optional<Tuple> outer_tuple_;
  size_t user_pos_ = 0;
};

class IndexRecommendExecutor : public Executor {
 public:
  IndexRecommendExecutor(const IndexRecommendPlan& plan, ExecContext* ctx)
      : plan_(plan), ctx_(ctx) {}
  Status Init() override;
  Result<std::optional<Tuple>> Next() override;

 private:
  /// Load the (item, score) list for users_[user_pos_], from the index when
  /// materialized (hit) or by scoring through the model (miss).
  Status LoadCurrentUser();

  const IndexRecommendPlan& plan_;
  ExecContext* ctx_;
  std::vector<int64_t> users_;
  size_t user_pos_ = 0;
  std::vector<std::pair<int64_t, double>> current_;  // best-first
  size_t current_pos_ = 0;
  bool loaded_ = false;
};

}  // namespace recdb
