// Recommendation-aware executors (paper Section IV):
//   RecommendExecutor       — RECOMMEND / FILTERRECOMMEND (Algorithms 1 & 2;
//                             pushed-down user/item predicates prune scoring)
//   JoinRecommendExecutor   — JOINRECOMMEND (outer relation drives scoring)
//   IndexRecommendExecutor  — INDEXRECOMMEND (Algorithm 3 over RecScoreIndex,
//                             with model fallback on cache miss)
#pragma once

#include <optional>
#include <unordered_set>
#include <vector>

#include "execution/executor.h"

namespace recdb {

class RecommendExecutor : public Executor {
 public:
  RecommendExecutor(const RecommendPlan& plan, ExecContext* ctx)
      : Executor(plan, ctx),
        plan_(plan), ctx_(ctx) {}
  Status Init() override;
  Result<std::optional<Tuple>> NextImpl() override;

 private:
  /// Morsel-parallel scoring over the flattened (user, item) candidate
  /// space: workers claim pair ranges, emit into per-morsel slots, and the
  /// slots are concatenated in range order — bit-identical to the serial
  /// emission order under any thread count.
  Status ScoreAllParallel();

  const RecommendPlan& plan_;
  ExecContext* ctx_;
  // Candidate id lists resolved at Init (filters applied).
  std::vector<int64_t> users_;
  std::vector<int64_t> items_;
  size_t user_pos_ = 0;
  size_t item_pos_ = 0;
  // Parallel mode: results materialized at Init, drained by Next.
  bool buffered_ = false;
  std::vector<Tuple> buffer_;
  size_t buffer_pos_ = 0;
};

class JoinRecommendExecutor : public Executor {
 public:
  JoinRecommendExecutor(const JoinRecommendPlan& plan, ExecutorPtr outer,
                        ExecContext* ctx)
      : Executor(plan, ctx),
        plan_(plan), outer_(std::move(outer)), ctx_(ctx) {}
  Status Init() override;
  Result<std::optional<Tuple>> NextImpl() override;

 private:
  const JoinRecommendPlan& plan_;
  ExecutorPtr outer_;
  ExecContext* ctx_;
  std::optional<Tuple> outer_tuple_;
  size_t user_pos_ = 0;
};

class IndexRecommendExecutor : public Executor {
 public:
  IndexRecommendExecutor(const IndexRecommendPlan& plan, ExecContext* ctx)
      : Executor(plan, ctx),
        plan_(plan), ctx_(ctx) {}
  Status Init() override;
  Result<std::optional<Tuple>> NextImpl() override;

 private:
  /// Load the (item, score) list for users_[user_pos_], from the index when
  /// materialized (hit) or by scoring through the model (miss).
  Status LoadCurrentUser();

  const IndexRecommendPlan& plan_;
  ExecContext* ctx_;
  // Pushed-down item ids as a hash set (O(1) membership instead of a per-
  // candidate std::find) plus a deduplicated list for the cache-miss scan,
  // so duplicated IN-list entries cannot emit duplicate tuples.
  std::optional<std::unordered_set<int64_t>> item_filter_;
  std::vector<int64_t> item_list_;
  std::vector<int64_t> users_;
  size_t user_pos_ = 0;
  std::vector<std::pair<int64_t, double>> current_;  // best-first
  size_t current_pos_ = 0;
  bool loaded_ = false;
};

}  // namespace recdb
