// Recommendation-aware executors (paper Section IV):
//   RecommendExecutor       — RECOMMEND / FILTERRECOMMEND (Algorithms 1 & 2;
//                             pushed-down user/item predicates prune scoring)
//   JoinRecommendExecutor   — JOINRECOMMEND (outer relation drives scoring)
//   IndexRecommendExecutor  — INDEXRECOMMEND (Algorithm 3 over RecScoreIndex,
//                             with model fallback on cache miss)
//
// All scoring goes through RecModel::PredictBatch: each executor resolves a
// user's candidate set first, scores the unrated candidates in one batch
// call, and only then emits tuples — per-candidate model->Predict() calls
// do not appear on any hot path.
#pragma once

#include <optional>
#include <unordered_set>
#include <vector>

#include "execution/executor.h"

namespace recdb {

/// One user's scores over a positional range of candidate items: rated
/// positions carry the stored rating, the rest the PredictBatch result.
struct UserRowScores {
  std::vector<double> score;   // per position
  std::vector<uint8_t> rated;  // per position: 1 = user already rated it
  uint64_t predicted = 0;      // candidates that went through the model
  uint64_t batches = 0;        // PredictBatch calls issued (0 or 1)
};

class RecommendExecutor : public Executor {
 public:
  RecommendExecutor(const RecommendPlan& plan, ExecContext* ctx)
      : Executor(plan, ctx),
        plan_(plan), ctx_(ctx) {}
  Status Init() override;
  Result<std::optional<Tuple>> NextImpl() override;

 private:
  /// Morsel-parallel scoring over the flattened (user, item) candidate
  /// space: workers claim pair ranges, batch-score each user run inside
  /// the range, emit into per-morsel slots, and the slots are concatenated
  /// in range order — bit-identical to the serial emission order under any
  /// thread count.
  Status ScoreAllParallel();

  const RecommendPlan& plan_;
  ExecContext* ctx_;
  // Candidate id lists resolved at Init (filters applied).
  std::vector<int64_t> users_;
  std::vector<int64_t> items_;
  size_t user_pos_ = 0;
  size_t item_pos_ = 0;
  // Serial mode: the current user's batched row of scores.
  UserRowScores row_;
  bool row_ready_ = false;
  // Parallel mode: results materialized at Init, drained by Next.
  bool buffered_ = false;
  std::vector<Tuple> buffer_;
  size_t buffer_pos_ = 0;
};

class JoinRecommendExecutor : public Executor {
 public:
  JoinRecommendExecutor(const JoinRecommendPlan& plan, ExecutorPtr outer,
                        ExecContext* ctx)
      : Executor(plan, ctx),
        plan_(plan), outer_(std::move(outer)), ctx_(ctx) {}
  Status Init() override;
  Result<std::optional<Tuple>> NextImpl() override;

 private:
  /// Pull the next window of outer tuples and batch-score it: one
  /// PredictBatch per user over the window's valid unrated items, instead
  /// of one scalar Predict per (outer tuple, user) probe.
  Status FillWindow();

  const JoinRecommendPlan& plan_;
  ExecutorPtr outer_;
  ExecContext* ctx_;
  // Pushed-down users known to the model, in plan order (resolved once).
  std::vector<int64_t> valid_users_;
  bool outer_done_ = false;
  // Current probe window. Scores/skip flags are flattened [user][slot].
  std::vector<Tuple> window_;
  std::vector<int64_t> window_items_;
  std::vector<uint8_t> window_known_;  // item id valid & known to the model
  std::vector<double> window_scores_;
  std::vector<uint8_t> window_skip_;
  size_t window_slot_ = 0;  // emission cursor: outer tuple within window
  size_t window_user_ = 0;  // emission cursor: user within slot
};

class IndexRecommendExecutor : public Executor {
 public:
  IndexRecommendExecutor(const IndexRecommendPlan& plan, ExecContext* ctx)
      : Executor(plan, ctx),
        plan_(plan), ctx_(ctx) {}
  Status Init() override;
  Result<std::optional<Tuple>> NextImpl() override;

 private:
  /// Load the (item, score) list for users_[user_pos_], from the index when
  /// materialized (hit) or by batch-scoring through the model (miss).
  Status LoadCurrentUser();

  const IndexRecommendPlan& plan_;
  ExecContext* ctx_;
  // Pushed-down item ids as a hash set (O(1) membership instead of a per-
  // candidate std::find) plus a deduplicated list for the cache-miss scan,
  // so duplicated IN-list entries cannot emit duplicate tuples.
  std::optional<std::unordered_set<int64_t>> item_filter_;
  std::vector<int64_t> item_list_;
  std::vector<int64_t> users_;
  size_t user_pos_ = 0;
  std::vector<std::pair<int64_t, double>> current_;  // best-first
  size_t current_pos_ = 0;
  bool loaded_ = false;
};

}  // namespace recdb
