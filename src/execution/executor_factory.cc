#include "execution/aggregate_executor.h"
#include "execution/basic_executors.h"
#include "execution/executor.h"
#include "execution/recommend_executors.h"

namespace recdb {

Result<ExecutorPtr> CreateExecutor(const PlanNode& plan, ExecContext* ctx) {
  switch (plan.type) {
    case PlanNodeType::kSeqScan:
      return ExecutorPtr(std::make_unique<SeqScanExecutor>(
          static_cast<const SeqScanPlan&>(plan), ctx));
    case PlanNodeType::kRecommend:
    case PlanNodeType::kFilterRecommend:
      return ExecutorPtr(std::make_unique<RecommendExecutor>(
          static_cast<const RecommendPlan&>(plan), ctx));
    case PlanNodeType::kJoinRecommend: {
      RECDB_ASSIGN_OR_RETURN(auto outer,
                             CreateExecutor(*plan.children[0], ctx));
      return ExecutorPtr(std::make_unique<JoinRecommendExecutor>(
          static_cast<const JoinRecommendPlan&>(plan), std::move(outer), ctx));
    }
    case PlanNodeType::kIndexRecommend:
      return ExecutorPtr(std::make_unique<IndexRecommendExecutor>(
          static_cast<const IndexRecommendPlan&>(plan), ctx));
    case PlanNodeType::kFilter: {
      RECDB_ASSIGN_OR_RETURN(auto child,
                             CreateExecutor(*plan.children[0], ctx));
      return ExecutorPtr(std::make_unique<FilterExecutor>(
          static_cast<const FilterPlan&>(plan), std::move(child), ctx));
    }
    case PlanNodeType::kProject: {
      RECDB_ASSIGN_OR_RETURN(auto child,
                             CreateExecutor(*plan.children[0], ctx));
      return ExecutorPtr(std::make_unique<ProjectExecutor>(
          static_cast<const ProjectPlan&>(plan), std::move(child), ctx));
    }
    case PlanNodeType::kAggregate: {
      RECDB_ASSIGN_OR_RETURN(auto child,
                             CreateExecutor(*plan.children[0], ctx));
      return ExecutorPtr(std::make_unique<HashAggregateExecutor>(
          static_cast<const AggregatePlan&>(plan), std::move(child), ctx));
    }
    case PlanNodeType::kNestedLoopJoin: {
      RECDB_ASSIGN_OR_RETURN(auto left, CreateExecutor(*plan.children[0], ctx));
      RECDB_ASSIGN_OR_RETURN(auto right,
                             CreateExecutor(*plan.children[1], ctx));
      return ExecutorPtr(std::make_unique<NestedLoopJoinExecutor>(
          static_cast<const NestedLoopJoinPlan&>(plan), std::move(left),
          std::move(right), ctx));
    }
    case PlanNodeType::kHashJoin: {
      RECDB_ASSIGN_OR_RETURN(auto left, CreateExecutor(*plan.children[0], ctx));
      RECDB_ASSIGN_OR_RETURN(auto right,
                             CreateExecutor(*plan.children[1], ctx));
      return ExecutorPtr(std::make_unique<HashJoinExecutor>(
          static_cast<const HashJoinPlan&>(plan), std::move(left),
          std::move(right), ctx));
    }
    case PlanNodeType::kSort: {
      RECDB_ASSIGN_OR_RETURN(auto child,
                             CreateExecutor(*plan.children[0], ctx));
      return ExecutorPtr(std::make_unique<SortExecutor>(
          static_cast<const SortPlan&>(plan), std::move(child), ctx));
    }
    case PlanNodeType::kTopN: {
      RECDB_ASSIGN_OR_RETURN(auto child,
                             CreateExecutor(*plan.children[0], ctx));
      return ExecutorPtr(std::make_unique<TopNExecutor>(
          static_cast<const TopNPlan&>(plan), std::move(child), ctx));
    }
    case PlanNodeType::kLimit: {
      RECDB_ASSIGN_OR_RETURN(auto child,
                             CreateExecutor(*plan.children[0], ctx));
      return ExecutorPtr(std::make_unique<LimitExecutor>(
          static_cast<const LimitPlan&>(plan), std::move(child), ctx));
    }
  }
  return Status::Internal("unhandled plan node type");
}

}  // namespace recdb
