// Relational executors: scan, filter, project, joins, sort, top-n, limit.
#pragma once

#include <unordered_map>
#include <vector>

#include "execution/executor.h"

namespace recdb {

class SeqScanExecutor : public Executor {
 public:
  SeqScanExecutor(const SeqScanPlan& plan, ExecContext* ctx)
      : Executor(plan, ctx),
        plan_(plan), ctx_(ctx) {}
  Status Init() override;
  Result<std::optional<Tuple>> NextImpl() override;

 private:
  const SeqScanPlan& plan_;
  ExecContext* ctx_;
  std::optional<TableHeap::Iterator> iter_;
};

class FilterExecutor : public Executor {
 public:
  FilterExecutor(const FilterPlan& plan, ExecutorPtr child, ExecContext* ctx)
      : Executor(plan, ctx),
        plan_(plan), child_(std::move(child)), ctx_(ctx) {}
  Status Init() override { return child_->Init(); }
  Result<std::optional<Tuple>> NextImpl() override;

 private:
  const FilterPlan& plan_;
  ExecutorPtr child_;
  ExecContext* ctx_;
};

class ProjectExecutor : public Executor {
 public:
  ProjectExecutor(const ProjectPlan& plan, ExecutorPtr child, ExecContext* ctx)
      : Executor(plan, ctx),
        plan_(plan), child_(std::move(child)), ctx_(ctx) {}
  Status Init() override {
    seen_.clear();
    return child_->Init();
  }
  Result<std::optional<Tuple>> NextImpl() override;

 private:
  const ProjectPlan& plan_;
  ExecutorPtr child_;
  ExecContext* ctx_;
  // DISTINCT state: hash -> produced rows with that hash.
  std::unordered_multimap<size_t, Tuple> seen_;
};

/// Nested-loop join with a materialized inner (right) side.
class NestedLoopJoinExecutor : public Executor {
 public:
  NestedLoopJoinExecutor(const NestedLoopJoinPlan& plan, ExecutorPtr left,
                         ExecutorPtr right, ExecContext* ctx)
      : Executor(plan, ctx),
        plan_(plan),
        left_(std::move(left)),
        right_(std::move(right)),
        ctx_(ctx) {}
  Status Init() override;
  Result<std::optional<Tuple>> NextImpl() override;

 private:
  const NestedLoopJoinPlan& plan_;
  ExecutorPtr left_;
  ExecutorPtr right_;
  ExecContext* ctx_;
  std::vector<Tuple> inner_;
  std::optional<Tuple> outer_tuple_;
  size_t inner_pos_ = 0;
};

/// Hash join: builds on the right input, probes with the left.
class HashJoinExecutor : public Executor {
 public:
  HashJoinExecutor(const HashJoinPlan& plan, ExecutorPtr left,
                   ExecutorPtr right, ExecContext* ctx)
      : Executor(plan, ctx),
        plan_(plan),
        left_(std::move(left)),
        right_(std::move(right)),
        ctx_(ctx) {}
  Status Init() override;
  Result<std::optional<Tuple>> NextImpl() override;

 private:
  const HashJoinPlan& plan_;
  ExecutorPtr left_;
  ExecutorPtr right_;
  ExecContext* ctx_;
  std::unordered_multimap<Value, Tuple, ValueHash> table_;
  std::optional<Tuple> probe_tuple_;
  std::vector<const Tuple*> matches_;
  size_t match_pos_ = 0;
};

/// Full in-memory sort.
class SortExecutor : public Executor {
 public:
  SortExecutor(const SortPlan& plan, ExecutorPtr child, ExecContext* ctx)
      : Executor(plan, ctx),
        plan_(plan), child_(std::move(child)), ctx_(ctx) {}
  Status Init() override;
  Result<std::optional<Tuple>> NextImpl() override;

 private:
  const SortPlan& plan_;
  ExecutorPtr child_;
  ExecContext* ctx_;
  std::vector<Tuple> rows_;
  size_t pos_ = 0;
};

/// Top-N via bounded selection (drains child, keeps best n).
class TopNExecutor : public Executor {
 public:
  TopNExecutor(const TopNPlan& plan, ExecutorPtr child, ExecContext* ctx)
      : Executor(plan, ctx),
        plan_(plan), child_(std::move(child)), ctx_(ctx) {}
  Status Init() override;
  Result<std::optional<Tuple>> NextImpl() override;

 private:
  const TopNPlan& plan_;
  ExecutorPtr child_;
  ExecContext* ctx_;
  std::vector<Tuple> rows_;
  size_t pos_ = 0;
};

class LimitExecutor : public Executor {
 public:
  LimitExecutor(const LimitPlan& plan, ExecutorPtr child, ExecContext* ctx)
      : Executor(plan, ctx),
        plan_(plan), child_(std::move(child)), ctx_(ctx) {}
  Status Init() override {
    emitted_ = 0;
    return child_->Init();
  }
  Result<std::optional<Tuple>> NextImpl() override;

 private:
  const LimitPlan& plan_;
  ExecutorPtr child_;
  ExecContext* ctx_;
  size_t emitted_ = 0;
};

/// Evaluate sort keys for a tuple (shared by Sort and TopN). Sorting then
/// compares the precomputed key vectors, so evaluation errors surface once
/// per row instead of inside a comparator.
Result<std::vector<Value>> EvalSortKeys(const std::vector<SortKey>& keys,
                                        const Tuple& t);

/// Compare precomputed key vectors under the keys' asc/desc flags.
bool SortKeyVectorLess(const std::vector<SortKey>& keys,
                       const std::vector<Value>& a,
                       const std::vector<Value>& b);

}  // namespace recdb
