#include "execution/aggregate_executor.h"

namespace recdb {

namespace {

size_t HashKeys(const std::vector<Value>& keys) {
  size_t h = 0x9e3779b97f4a7c15ULL;
  for (const auto& v : keys) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

bool KeysEqual(const std::vector<Value>& a, const std::vector<Value>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].Compare(b[i]) != 0) return false;
  }
  return true;
}

}  // namespace

Status HashAggregateExecutor::Accumulate(const Tuple& row,
                                         std::vector<AggState>* states) {
  for (size_t i = 0; i < plan_.aggs.size(); ++i) {
    const auto& agg = plan_.aggs[i];
    AggState& s = (*states)[i];
    if (agg.kind == AggKind::kCountStar) {
      ++s.count;
      continue;
    }
    RECDB_ASSIGN_OR_RETURN(Value v, agg.arg->Eval(row));
    if (v.is_null()) continue;  // SQL: aggregates skip NULLs
    ++s.count;
    switch (agg.kind) {
      case AggKind::kCount:
        break;
      case AggKind::kSum:
      case AggKind::kAvg:
        if (!v.is_numeric()) {
          return Status::ExecutionError("SUM/AVG over non-numeric value");
        }
        s.sum += v.AsNumeric();
        break;
      case AggKind::kMin:
        if (!s.has_value || v.Compare(s.min) < 0) s.min = v;
        break;
      case AggKind::kMax:
        if (!s.has_value || v.Compare(s.max) > 0) s.max = v;
        break;
      case AggKind::kCountStar:
        break;
    }
    s.has_value = true;
  }
  return Status::OK();
}

Tuple HashAggregateExecutor::Finalize(const Group& group) const {
  std::vector<Value> out = group.keys;
  for (size_t i = 0; i < plan_.aggs.size(); ++i) {
    const AggState& s = group.states[i];
    switch (plan_.aggs[i].kind) {
      case AggKind::kCountStar:
      case AggKind::kCount:
        out.push_back(Value::Int(static_cast<int64_t>(s.count)));
        break;
      case AggKind::kSum:
        out.push_back(s.has_value ? Value::Double(s.sum) : Value::Null());
        break;
      case AggKind::kAvg:
        out.push_back(s.has_value
                          ? Value::Double(s.sum / static_cast<double>(s.count))
                          : Value::Null());
        break;
      case AggKind::kMin:
        out.push_back(s.has_value ? s.min : Value::Null());
        break;
      case AggKind::kMax:
        out.push_back(s.has_value ? s.max : Value::Null());
        break;
    }
  }
  return Tuple(std::move(out));
}

Status HashAggregateExecutor::Init() {
  RECDB_RETURN_NOT_OK(child_->Init());
  groups_.clear();
  pos_ = 0;
  // Group index: hash of key vector -> indices into groups_.
  std::unordered_multimap<size_t, size_t> index;

  while (true) {
    RECDB_ASSIGN_OR_RETURN(auto next, child_->Next());
    if (!next.has_value()) break;
    std::vector<Value> keys;
    keys.reserve(plan_.group_keys.size());
    for (const auto& k : plan_.group_keys) {
      RECDB_ASSIGN_OR_RETURN(Value v, k->Eval(*next));
      keys.push_back(std::move(v));
    }
    size_t h = HashKeys(keys);
    Group* group = nullptr;
    auto [lo, hi] = index.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      if (KeysEqual(groups_[it->second].keys, keys)) {
        group = &groups_[it->second];
        break;
      }
    }
    if (group == nullptr) {
      index.emplace(h, groups_.size());
      groups_.push_back(
          Group{std::move(keys), std::vector<AggState>(plan_.aggs.size())});
      group = &groups_.back();
    }
    RECDB_RETURN_NOT_OK(Accumulate(*next, &group->states));
  }

  // Global aggregation over zero rows still yields one row.
  if (groups_.empty() && plan_.group_keys.empty()) {
    groups_.push_back(Group{{}, std::vector<AggState>(plan_.aggs.size())});
  }
  return Status::OK();
}

Result<std::optional<Tuple>> HashAggregateExecutor::NextImpl() {
  if (pos_ >= groups_.size()) return std::optional<Tuple>{};
  return std::make_optional(Finalize(groups_[pos_++]));
}

}  // namespace recdb
