#include "execution/recommend_executors.h"

#include <algorithm>
#include <atomic>

#include "common/task_scheduler.h"

namespace recdb {

namespace {

/// Tuple shaped like the ratings table: user id, item id and score at their
/// column positions, NULL for any other ratings-table column.
Tuple MakeRecTuple(const ExecSchema& schema, size_t user_idx, size_t item_idx,
                   size_t rating_idx, int64_t user_id, int64_t item_id,
                   double score) {
  std::vector<Value> vals(schema.NumColumns(), Value::Null());
  vals[user_idx] = Value::Int(user_id);
  vals[item_idx] = Value::Int(item_id);
  vals[rating_idx] = Value::Double(score);
  return Tuple(std::move(vals));
}

/// Resolve the candidate user list: pushed-down ids filtered to users the
/// model knows, or every user in the snapshot.
std::vector<int64_t> ResolveUsers(
    const RatingMatrix& snapshot,
    const std::optional<std::vector<int64_t>>& pushed) {
  if (!pushed.has_value()) return snapshot.user_ids();
  std::vector<int64_t> out;
  out.reserve(pushed->size());
  for (int64_t id : *pushed) {
    if (snapshot.UserIndex(id).has_value()) out.push_back(id);
  }
  return out;
}

std::vector<int64_t> ResolveItems(
    const RatingMatrix& snapshot,
    const std::optional<std::vector<int64_t>>& pushed) {
  if (!pushed.has_value()) return snapshot.item_ids();
  std::vector<int64_t> out;
  out.reserve(pushed->size());
  for (int64_t id : *pushed) {
    if (snapshot.ItemIndex(id).has_value()) out.push_back(id);
  }
  return out;
}

/// Below this many candidate pairs a parallel fan-out costs more than it
/// saves; stay on the streaming serial path.
constexpr size_t kMinPairsForParallel = 256;

}  // namespace

// -------------------------------------------------- Recommend / FilterRec

Status RecommendExecutor::Init() {
  if (plan_.rec->model() == nullptr) {
    return Status::ExecutionError("recommender " + plan_.rec->name() +
                                  " has no built model");
  }
  const RatingMatrix& snapshot = plan_.rec->model()->ratings();
  users_ = ResolveUsers(snapshot, plan_.user_ids);
  items_ = ResolveItems(snapshot, plan_.item_ids);
  user_pos_ = 0;
  item_pos_ = 0;
  buffered_ = false;
  buffer_.clear();
  buffer_pos_ = 0;
  if (TaskScheduler::Global().num_threads() > 1 &&
      users_.size() * items_.size() >= kMinPairsForParallel) {
    RECDB_RETURN_NOT_OK(ScoreAllParallel());
    buffered_ = true;
  }
  return Status::OK();
}

Status RecommendExecutor::ScoreAllParallel() {
  const RecModel* model = plan_.rec->model();
  const RatingMatrix& snapshot = model->ratings();
  TaskScheduler& sched = TaskScheduler::Global();
  const size_t num_items = items_.size();
  const size_t num_pairs = users_.size() * num_items;
  // Morsel size balances claim overhead against tail imbalance; correctness
  // does not depend on it (per-pair output is order-preserving).
  const size_t morsel = std::clamp<size_t>(
      num_pairs / (sched.num_threads() * 8), 64, 8192);
  const size_t num_slots = (num_pairs + morsel - 1) / morsel;
  std::vector<std::vector<Tuple>> slots(num_slots);
  std::atomic<uint64_t> predictions{0};
  TaskRunStats run = sched.ParallelFor(
      num_pairs, morsel, [&](size_t begin, size_t end) {
        std::vector<Tuple>& out = slots[begin / morsel];
        uint64_t local_predictions = 0;
        for (size_t p = begin; p < end; ++p) {
          int64_t user_id = users_[p / num_items];
          int64_t item_id = items_[p % num_items];
          auto rated = snapshot.Get(user_id, item_id);
          double score;
          if (rated.has_value()) {
            if (!plan_.include_rated) continue;
            score = *rated;
          } else {
            score = model->Predict(user_id, item_id);
            ++local_predictions;
          }
          out.push_back(
              MakeRecTuple(plan_.schema, plan_.user_col_idx,
                           plan_.item_col_idx, plan_.rating_col_idx, user_id,
                           item_id, score));
        }
        predictions.fetch_add(local_predictions, std::memory_order_relaxed);
      });
  size_t total = 0;
  for (const auto& s : slots) total += s.size();
  buffer_.reserve(total);
  // Slot order == ascending pair order == the serial emission order.
  for (auto& s : slots) {
    for (auto& t : s) buffer_.push_back(std::move(t));
  }
  ctx_->stats.predictions += predictions.load(std::memory_order_relaxed);
  ctx_->stats.tasks_spawned += run.tasks_spawned;
  ctx_->stats.worker_time_ms += run.worker_time_ms;
  return Status::OK();
}

Result<std::optional<Tuple>> RecommendExecutor::NextImpl() {
  if (buffered_) {
    if (buffer_pos_ >= buffer_.size()) return std::optional<Tuple>{};
    return std::make_optional(std::move(buffer_[buffer_pos_++]));
  }
  const RecModel* model = plan_.rec->model();
  const RatingMatrix& snapshot = model->ratings();
  while (user_pos_ < users_.size()) {
    if (item_pos_ >= items_.size()) {
      ++user_pos_;
      item_pos_ = 0;
      continue;
    }
    int64_t user_id = users_[user_pos_];
    int64_t item_id = items_[item_pos_++];
    auto rated = snapshot.Get(user_id, item_id);
    double score;
    if (rated.has_value()) {
      if (!plan_.include_rated) continue;  // default: unseen items only
      score = *rated;                      // Algorithm 1 line 8
    } else {
      score = model->Predict(user_id, item_id);
      ++ctx_->stats.predictions;
    }
    return std::make_optional(
        MakeRecTuple(plan_.schema, plan_.user_col_idx, plan_.item_col_idx,
                     plan_.rating_col_idx, user_id, item_id, score));
  }
  return std::optional<Tuple>{};
}

// -------------------------------------------------------- JoinRecommend

Status JoinRecommendExecutor::Init() {
  if (plan_.rec->model() == nullptr) {
    return Status::ExecutionError("recommender " + plan_.rec->name() +
                                  " has no built model");
  }
  RECDB_RETURN_NOT_OK(outer_->Init());
  outer_tuple_.reset();
  user_pos_ = 0;
  return Status::OK();
}

Result<std::optional<Tuple>> JoinRecommendExecutor::NextImpl() {
  const RecModel* model = plan_.rec->model();
  const RatingMatrix& snapshot = model->ratings();
  while (true) {
    if (!outer_tuple_.has_value()) {
      RECDB_ASSIGN_OR_RETURN(auto next, outer_->Next());
      if (!next.has_value()) return std::optional<Tuple>{};
      outer_tuple_ = std::move(next);
      user_pos_ = 0;
      ++ctx_->stats.join_probes;
    }
    const Value& item_val = outer_tuple_->At(plan_.outer_item_col);
    if (item_val.is_null() || item_val.type() != TypeId::kInt64) {
      outer_tuple_.reset();
      continue;
    }
    int64_t item_id = item_val.AsInt();
    if (!snapshot.ItemIndex(item_id).has_value()) {
      outer_tuple_.reset();  // item unknown to the model: no score
      continue;
    }
    while (user_pos_ < plan_.user_ids.size()) {
      int64_t user_id = plan_.user_ids[user_pos_++];
      if (!snapshot.UserIndex(user_id).has_value()) continue;
      auto rated = snapshot.Get(user_id, item_id);
      double score;
      if (rated.has_value()) {
        if (!plan_.include_rated) continue;
        score = *rated;
      } else {
        score = model->Predict(user_id, item_id);
        ++ctx_->stats.predictions;
      }
      // 〈recommend columns〉 ++ 〈outer tuple〉 (paper: tup concatenated).
      Tuple rec_part = MakeRecTuple(
          plan_.schema, plan_.user_col_idx, plan_.item_col_idx,
          plan_.rating_col_idx, user_id, item_id, score);
      // rec_part currently has the full output width; overwrite the tail
      // with the outer tuple's values.
      size_t outer_start = plan_.schema.NumColumns() -
                           outer_tuple_->NumValues();
      for (size_t i = 0; i < outer_tuple_->NumValues(); ++i) {
        rec_part.values()[outer_start + i] = outer_tuple_->At(i);
      }
      return std::make_optional(std::move(rec_part));
    }
    outer_tuple_.reset();
  }
}

// ------------------------------------------------------- IndexRecommend

Status IndexRecommendExecutor::Init() {
  if (plan_.rec->model() == nullptr) {
    return Status::ExecutionError("recommender " + plan_.rec->name() +
                                  " has no built model");
  }
  const RatingMatrix& snapshot = plan_.rec->model()->ratings();
  if (plan_.user_ids.empty()) {
    users_ = snapshot.user_ids();
  } else {
    users_.clear();
    for (int64_t id : plan_.user_ids) {
      if (snapshot.UserIndex(id).has_value()) users_.push_back(id);
    }
  }
  // Hash the pushed-down item ids once (the per-candidate std::find was
  // O(|items|^2) across a user's scan) and keep a deduplicated list so a
  // duplicated IN-list entry cannot emit the same tuple twice on the
  // cache-miss path.
  item_filter_.reset();
  item_list_.clear();
  if (plan_.item_ids.has_value()) {
    item_filter_.emplace();
    item_filter_->reserve(plan_.item_ids->size());
    for (int64_t id : *plan_.item_ids) {
      if (item_filter_->insert(id).second) item_list_.push_back(id);
    }
  }
  user_pos_ = 0;
  current_.clear();
  current_pos_ = 0;
  loaded_ = false;
  return Status::OK();
}

Status IndexRecommendExecutor::LoadCurrentUser() {
  current_.clear();
  current_pos_ = 0;
  loaded_ = true;
  int64_t user_id = users_[user_pos_];
  const RecScoreIndex& index = *plan_.rec->score_index();

  auto item_ok = [&](int64_t item) {
    return !item_filter_.has_value() || item_filter_->count(item) > 0;
  };

  if (index.HasUser(user_id)) {
    // Phase II/III of Algorithm 3: walk the user's RecTree best-first,
    // stopping at the rating bound; filter items; cap at the limit.
    ++ctx_->stats.index_hits;
    index.Scan(user_id, plan_.min_score, [&](int64_t item, double score) {
      if (item_ok(item)) current_.emplace_back(item, score);
      return plan_.per_user_limit == 0 ||
             current_.size() < plan_.per_user_limit;
    });
    return Status::OK();
  }

  // Cache miss: fall back to the model (score, sort, cap).
  ++ctx_->stats.index_misses;
  const RecModel* model = plan_.rec->model();
  const RatingMatrix& snapshot = model->ratings();
  const std::vector<int64_t>& items =
      item_filter_.has_value() ? item_list_ : snapshot.item_ids();
  for (int64_t item : items) {
    if (!snapshot.ItemIndex(item).has_value()) continue;
    if (snapshot.Get(user_id, item).has_value()) continue;  // unseen only
    double score = model->Predict(user_id, item);
    ++ctx_->stats.predictions;
    if (score >= plan_.min_score) current_.emplace_back(item, score);
  }
  std::sort(current_.begin(), current_.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (plan_.per_user_limit > 0 && current_.size() > plan_.per_user_limit) {
    current_.resize(plan_.per_user_limit);
  }
  return Status::OK();
}

Result<std::optional<Tuple>> IndexRecommendExecutor::NextImpl() {
  while (user_pos_ < users_.size()) {
    if (!loaded_) {
      RECDB_RETURN_NOT_OK(LoadCurrentUser());
    }
    if (current_pos_ < current_.size()) {
      const auto& [item, score] = current_[current_pos_++];
      return std::make_optional(
          MakeRecTuple(plan_.schema, plan_.user_col_idx, plan_.item_col_idx,
                       plan_.rating_col_idx, users_[user_pos_], item, score));
    }
    ++user_pos_;
    loaded_ = false;
  }
  return std::optional<Tuple>{};
}

}  // namespace recdb
