#include "execution/recommend_executors.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <span>

#include "common/task_scheduler.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace recdb {

namespace {

/// Tuple shaped like the ratings table: user id, item id and score at their
/// column positions, NULL for any other ratings-table column.
Tuple MakeRecTuple(const ExecSchema& schema, size_t user_idx, size_t item_idx,
                   size_t rating_idx, int64_t user_id, int64_t item_id,
                   double score) {
  std::vector<Value> vals(schema.NumColumns(), Value::Null());
  vals[user_idx] = Value::Int(user_id);
  vals[item_idx] = Value::Int(item_id);
  vals[rating_idx] = Value::Double(score);
  return Tuple(std::move(vals));
}

/// Resolve the candidate user list: pushed-down ids filtered to users the
/// model knows, or every user in the snapshot.
std::vector<int64_t> ResolveUsers(
    const RatingMatrix& snapshot,
    const std::optional<std::vector<int64_t>>& pushed) {
  if (!pushed.has_value()) return snapshot.user_ids();
  std::vector<int64_t> out;
  out.reserve(pushed->size());
  for (int64_t id : *pushed) {
    if (snapshot.UserIndex(id).has_value()) out.push_back(id);
  }
  return out;
}

std::vector<int64_t> ResolveItems(
    const RatingMatrix& snapshot,
    const std::optional<std::vector<int64_t>>& pushed) {
  if (!pushed.has_value()) return snapshot.item_ids();
  std::vector<int64_t> out;
  out.reserve(pushed->size());
  for (int64_t id : *pushed) {
    if (snapshot.ItemIndex(id).has_value()) out.push_back(id);
  }
  return out;
}

/// Below this many candidate pairs a parallel fan-out costs more than it
/// saves; stay on the streaming serial path.
constexpr size_t kMinPairsForParallel = 256;

/// Outer tuples batched per JoinRecommend probe window. Bounds both the
/// emission latency (tuples are held until the window is scored) and the
/// per-window score matrix (|users| × window doubles).
constexpr size_t kJoinProbeWindow = 64;

/// Score one user over items[begin, end): rated items keep their stored
/// rating (and set the rated flag), the rest go through one PredictBatch.
void ScoreUserRange(const RecModel* model, const RatingMatrix& snapshot,
                    int64_t user_id, const std::vector<int64_t>& items,
                    size_t begin, size_t end, UserRowScores* out) {
  const size_t n = end - begin;
  out->score.assign(n, 0.0);
  out->rated.assign(n, 0);
  out->predicted = 0;
  out->batches = 0;
  std::vector<int64_t> cand;
  std::vector<size_t> cand_pos;
  cand.reserve(n);
  cand_pos.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    auto rated = snapshot.Get(user_id, items[begin + k]);
    if (rated.has_value()) {
      out->score[k] = *rated;  // Algorithm 1 line 8
      out->rated[k] = 1;
    } else {
      cand.push_back(items[begin + k]);
      cand_pos.push_back(k);
    }
  }
  if (cand.empty()) return;
  std::vector<double> pred(cand.size(), 0.0);
  model->PredictBatch(user_id, cand, pred);
  for (size_t k = 0; k < cand.size(); ++k) out->score[cand_pos[k]] = pred[k];
  out->predicted = cand.size();
  out->batches = 1;
}

}  // namespace

// ------------------------------------------------------------ PruneEngine

PruneEngine::PruneEngine(const RecModel* model, const RatingMatrix& snapshot,
                         const CandidateIndex& index, bool rank_by_id)
    : model_(model),
      snapshot_(snapshot),
      index_(index),
      rank_by_id_(rank_by_id),
      num_items_(snapshot.NumItems()) {
  walk_stamp_.assign(num_items_, 0);
  consume_stamp_.assign(num_items_, 0);
  user_stamp_.assign(index.num_users(), 0);
  block_items_.resize(index.blocks().size());
  if (rank_by_id_) {
    // Items interned after the base: out-of-band for order_by_id(), merged
    // in by external id during the zero-merge.
    for (size_t i = index.num_items(); i < num_items_; ++i) {
      oob_by_id_.emplace_back(snapshot.ItemIdAt(static_cast<int32_t>(i)),
                              static_cast<int32_t>(i));
    }
    std::sort(oob_by_id_.begin(), oob_by_id_.end());
  }
}

bool PruneEngine::Rated(int32_t u, int32_t item_idx) const {
  return snapshot_.GetByIndex(u, item_idx).has_value();
}

double PruneEngine::PaddedBound(double scale_u, double offset_u,
                                double max_scale, double max_offset) const {
  const double core = scale_u * max_scale + offset_u + max_offset;
  const double pad =
      index_.bounds().slack * (std::fabs(scale_u * max_scale) +
                               std::fabs(offset_u) + std::fabs(max_offset));
  return core + pad + 1e-12;
}

void PruneEngine::GenerateCandidates(int32_t u) {
  candidates_.clear();
  start_.clear();
  const uint32_t e = epoch_;
  auto mark = [&](int32_t i) {
    if (i < 0 || static_cast<size_t>(i) >= num_items_) return false;
    if (walk_stamp_[i] == e) return false;
    walk_stamp_[i] = e;
    candidates_.push_back(i);
    return true;
  };
  // Start items: the user's base row plus, when the delta overlay touched
  // the row, its full merged side row (covers ratings added since the
  // freeze — their item-based similarities anchor to the base, and the
  // user-based families need the base row, which the side row contains
  // unless removed; removed base items cannot seed a nonzero similarity
  // for item families and are re-covered below for user families via the
  // base postings).
  const CandidateIndex::Postings base_row = index_.RatedItems(u);
  for (size_t a = 0; a < base_row.n; ++a) {
    if (mark(base_row.idx[a])) start_.push_back(base_row.idx[a]);
  }
  if (snapshot_.IsUserRowTouched(u)) {
    const CsrRow side = snapshot_.UserCsrRow(u);
    for (size_t a = 0; a < side.n; ++a) {
      if (mark(side.idx[a])) start_.push_back(side.idx[a]);
    }
  }
  // Two-hop: raters come from the base postings only — a nonzero
  // similarity requires a base co-rating, so delta-only raters cannot
  // contribute a nonzero score.
  for (int32_t j : start_) {
    const CandidateIndex::Postings raters = index_.Raters(j);
    for (size_t b = 0; b < raters.n; ++b) {
      const int32_t v = raters.idx[b];
      if (static_cast<size_t>(v) >= user_stamp_.size() ||
          user_stamp_[v] == e) {
        continue;
      }
      user_stamp_[v] = e;
      const CandidateIndex::Postings co = index_.RatedItems(v);
      for (size_t c = 0; c < co.n; ++c) mark(co.idx[c]);
      if (snapshot_.IsUserRowTouched(v)) {
        const CsrRow vside = snapshot_.UserCsrRow(v);
        for (size_t c = 0; c < vside.n; ++c) mark(vside.idx[c]);
      }
    }
  }
  candidates_generated += candidates_.size();
}

void PruneEngine::ScoreBatch(int64_t user_id,
                             const std::vector<int32_t>& items,
                             TopKPruner* pruner) {
  if (items.empty()) return;
  batch_ids_.clear();
  for (int32_t c : items) batch_ids_.push_back(snapshot_.ItemIdAt(c));
  batch_pred_.assign(batch_ids_.size(), 0.0);
  model_->PredictBatch(user_id, batch_ids_, batch_pred_);
  for (size_t k = 0; k < items.size(); ++k) {
    const int64_t rank = rank_by_id_ ? batch_ids_[k] : items[k];
    pruner->Offer(batch_pred_[k], rank, batch_ids_[k]);
  }
  predictions += items.size();
  ++batches;
}

void PruneEngine::ZeroMerge(int64_t user_id, int32_t u, MergeMode mode,
                            TopKPruner* pruner) {
  (void)user_id;
  const size_t bts = index_.bound_table_size();
  // Offer 0.0 for every still-unconsumed unrated item in rank order; all
  // offers carry the same score with ascending rank, so the first
  // rejection ends the merge.
  auto offer = [&](int32_t c, int64_t rank, int64_t id) {
    if (!pruner->WouldAccept(0.0, rank)) return false;
    if (mode == MergeMode::kSkipConsumed && consume_stamp_[c] == epoch_) {
      return true;
    }
    if (mode == MergeMode::kSkipInBounds && static_cast<size_t>(c) < bts) {
      return true;
    }
    if (Rated(u, c)) return true;
    pruner->Offer(0.0, rank, id);
    return true;
  };
  if (!rank_by_id_) {
    for (size_t c = 0; c < num_items_; ++c) {
      const int32_t idx = static_cast<int32_t>(c);
      if (!offer(idx, idx, snapshot_.ItemIdAt(idx))) return;
    }
    return;
  }
  // External-id order: merge the base items (order_by_id) with the items
  // interned after the base (oob_by_id_), both id-ascending.
  const std::vector<int32_t>& by_id = index_.order_by_id();
  const std::vector<int64_t>& ids = snapshot_.item_ids();
  size_t a = 0, b = 0;
  while (a < by_id.size() || b < oob_by_id_.size()) {
    bool take_base;
    if (a >= by_id.size()) {
      take_base = false;
    } else if (b >= oob_by_id_.size()) {
      take_base = true;
    } else {
      take_base = ids[by_id[a]] < oob_by_id_[b].first;
    }
    const int32_t c = take_base ? by_id[a++] : oob_by_id_[b++].second;
    const int64_t id = ids[c];
    if (!offer(c, id, id)) return;
  }
}

std::vector<TopKPruner::Entry> PruneEngine::UserTopK(int64_t user_id,
                                                     size_t k, double floor) {
  TopKPruner pruner(k, floor);
  auto uopt = snapshot_.UserIndex(user_id);
  if (!uopt.has_value()) return {};
  const int32_t u = *uopt;
  const PruneBoundTable& bt = index_.bounds();
  const bool has_offset = !bt.item_offset.empty();
  ++epoch_;

  // All-zero users (empty row / empty neighborhood / unknown to the
  // model): every prediction is exactly 0.0, so the whole catalog goes
  // through the zero-merge.
  bool pure_zero = model_->PruneUserAllZero(u);
  double scale_u = 0, offset_u = 0;
  if (!pure_zero) {
    scale_u = model_->PruneUserScale(u);
    offset_u = model_->PruneUserOffset(u);
    if (scale_u == 0.0 && offset_u == 0.0 && !has_offset) pure_zero = true;
  }
  if (pure_zero) {
    ZeroMerge(user_id, u, MergeMode::kAllUnrated, &pruner);
    return pruner.DrainBestFirst();
  }

  const size_t bts = index_.bound_table_size();
  const std::vector<CandidateIndex::Block>& blocks = index_.blocks();
  must_score_.clear();
  touched_blocks_.clear();

  if (bt.candidate_generation) {
    GenerateCandidates(u);
    // Partition: rated items are consumed (never emitted); out-of-bound
    // items either must be scored (no trustable bound) or are provably
    // 0.0 and stay for the zero-merge; delta-touched item rows with
    // rating-dependent bounds must be scored; the rest bucket per block.
    const std::vector<int32_t>& block_of = index_.block_of();
    for (int32_t c : candidates_) {
      if (Rated(u, c)) {
        consume_stamp_[c] = epoch_;
        continue;
      }
      if (static_cast<size_t>(c) >= bts) {
        if (bt.oob_must_score) {
          must_score_.push_back(c);
          consume_stamp_[c] = epoch_;
        }
        continue;
      }
      if (bt.rating_dependent && snapshot_.IsItemRowTouched(c)) {
        must_score_.push_back(c);
        consume_stamp_[c] = epoch_;
        continue;
      }
      const int32_t blk = block_of[c];
      if (block_items_[blk].empty()) touched_blocks_.push_back(blk);
      block_items_[blk].push_back(c);
      consume_stamp_[c] = epoch_;  // scored, or provably below threshold
    }
    ScoreBatch(user_id, must_score_, &pruner);
    std::sort(touched_blocks_.begin(), touched_blocks_.end());
    for (size_t t = 0; t < touched_blocks_.size(); ++t) {
      const int32_t blk = touched_blocks_[t];
      const CandidateIndex::Block& B = blocks[blk];
      if (pruner.CanSkip(
              PaddedBound(scale_u, offset_u, B.suffix_scale,
                          B.suffix_offset))) {
        // No later block can beat the threshold either.
        for (size_t t2 = t; t2 < touched_blocks_.size(); ++t2) {
          items_pruned += block_items_[touched_blocks_[t2]].size();
          ++blocks_skipped;
        }
        break;
      }
      if (pruner.CanSkip(
              PaddedBound(scale_u, offset_u, B.max_scale, B.max_offset))) {
        items_pruned += block_items_[blk].size();
        ++blocks_skipped;
        continue;
      }
      ScoreBatch(user_id, block_items_[blk], &pruner);
    }
    for (int32_t blk : touched_blocks_) block_items_[blk].clear();
    ZeroMerge(user_id, u, MergeMode::kSkipConsumed, &pruner);
    return pruner.DrainBestFirst();
  }

  // Catalog-sweep families (e.g. SVD): no candidate sets — sweep the bound
  // blocks in descending static-bound order, batch-scoring the unrated
  // items of each surviving block.
  std::vector<int32_t>& blk_cand = must_score_;  // reuse scratch
  const std::vector<int32_t>& order = index_.order();
  for (size_t bi = 0; bi < blocks.size(); ++bi) {
    const CandidateIndex::Block& B = blocks[bi];
    if (pruner.CanSkip(PaddedBound(scale_u, offset_u, B.suffix_scale,
                                   B.suffix_offset))) {
      for (size_t b2 = bi; b2 < blocks.size(); ++b2) {
        items_pruned += blocks[b2].end - blocks[b2].begin;
        ++blocks_skipped;
      }
      break;
    }
    if (pruner.CanSkip(
            PaddedBound(scale_u, offset_u, B.max_scale, B.max_offset))) {
      items_pruned += B.end - B.begin;
      ++blocks_skipped;
      continue;
    }
    blk_cand.clear();
    for (uint32_t p = B.begin; p < B.end; ++p) {
      const int32_t c = order[p];
      if (static_cast<size_t>(c) >= num_items_) continue;
      if (!Rated(u, c)) blk_cand.push_back(c);
    }
    ScoreBatch(user_id, blk_cand, &pruner);
  }
  ZeroMerge(user_id, u, MergeMode::kSkipInBounds, &pruner);
  return pruner.DrainBestFirst();
}

void PruneEngine::CandidateBitmap(int64_t user_id,
                                  std::vector<uint8_t>* mark) {
  mark->assign(num_items_, 0);
  auto uopt = snapshot_.UserIndex(user_id);
  if (!uopt.has_value()) return;
  ++epoch_;
  GenerateCandidates(*uopt);
  for (int32_t c : candidates_) (*mark)[c] = 1;
}

void PruneEngine::FlushStats(ExecStats* stats) {
  if (stats != nullptr) {
    stats->candidates_generated += candidates_generated;
    stats->blocks_skipped += blocks_skipped;
    stats->items_pruned += items_pruned;
    stats->predictions += predictions;
    stats->predict_calls += predictions;
    stats->predict_batches += batches;
  }
  obs::Count(obs::Counter::kPruneCandidatesGenerated, candidates_generated);
  obs::Count(obs::Counter::kPruneBlocksSkipped, blocks_skipped);
  obs::Count(obs::Counter::kPruneItemsPruned, items_pruned);
  candidates_generated = blocks_skipped = items_pruned = 0;
  predictions = batches = 0;
}

// -------------------------------------------------- Recommend / FilterRec

Status RecommendExecutor::Init() {
  if (plan_.rec->model() == nullptr) {
    return Status::ExecutionError("recommender " + plan_.rec->name() +
                                  " has no built model");
  }
  const RatingMatrix& snapshot = plan_.rec->model()->ratings();
  users_ = ResolveUsers(snapshot, plan_.user_ids);
  // Serving filter: a sharded engine only scores the users it owns. The
  // erase preserves relative order, so the shard's emission stays a
  // subsequence of the single-node stream (DESIGN.md §14).
  if (ctx_->ShardFilterActive()) {
    std::erase_if(users_, [&](int64_t u) { return !ctx_->OwnsUser(u); });
  }
  items_ = ResolveItems(snapshot, plan_.item_ids);
  user_pos_ = 0;
  item_pos_ = 0;
  row_ready_ = false;
  buffered_ = false;
  buffer_.clear();
  buffer_pos_ = 0;
  // Pruned Top-K mode: only under the optimizer's preconditions (no item
  // pushdown so item position tie-breaks survive, unseen-only emission)
  // and only when the recommender published a prunable CandidateIndex.
  prune_active_ = false;
  if (plan_.prune && plan_.prune_limit > 0 && !plan_.include_rated &&
      !plan_.item_ids.has_value()) {
    cindex_ = plan_.rec->candidate_index();
    prune_active_ = cindex_ != nullptr && cindex_->prunable();
  }
  if (prune_active_) {
    RECDB_RETURN_NOT_OK(ScorePruned());
    buffered_ = true;
    return Status::OK();
  }
  if (TaskScheduler::Global().num_threads() > 1 &&
      users_.size() * items_.size() >= kMinPairsForParallel) {
    RECDB_RETURN_NOT_OK(ScoreAllParallel());
    buffered_ = true;
  }
  return Status::OK();
}

Status RecommendExecutor::ScorePruned() {
  const RecModel* model = plan_.rec->model();
  const RatingMatrix& snapshot = model->ratings();
  const CandidateIndex& index = *cindex_;
  const size_t k = plan_.prune_limit;
  obs::Count(obs::Counter::kPruneTopkQueries);
  Stopwatch watch;
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<std::vector<Tuple>> per_user(users_.size());
  std::atomic<uint64_t> cand{0}, skipped{0}, pruned{0};
  std::atomic<uint64_t> preds{0}, batches{0};
  auto score_range = [&](size_t begin, size_t end) {
    PruneEngine engine(model, snapshot, index, /*rank_by_id=*/false);
    for (size_t ui = begin; ui < end; ++ui) {
      auto entries = engine.UserTopK(users_[ui], k, kNegInf);
      // Within a user, emit survivors in item-position order — the exact
      // path's emission order restricted to the surviving subset, so the
      // parent TopN's arrival tie-break sees an order-preserving
      // subsequence.
      std::sort(entries.begin(), entries.end(),
                [](const TopKPruner::Entry& a, const TopKPruner::Entry& b) {
                  return a.rank < b.rank;
                });
      std::vector<Tuple>& out = per_user[ui];
      out.reserve(entries.size());
      for (const TopKPruner::Entry& e : entries) {
        out.push_back(MakeRecTuple(plan_.schema, plan_.user_col_idx,
                                   plan_.item_col_idx, plan_.rating_col_idx,
                                   users_[ui], e.item_id, e.score));
      }
    }
    cand.fetch_add(engine.candidates_generated, std::memory_order_relaxed);
    skipped.fetch_add(engine.blocks_skipped, std::memory_order_relaxed);
    pruned.fetch_add(engine.items_pruned, std::memory_order_relaxed);
    preds.fetch_add(engine.predictions, std::memory_order_relaxed);
    batches.fetch_add(engine.batches, std::memory_order_relaxed);
  };
  TaskScheduler& sched = TaskScheduler::Global();
  if (sched.num_threads() > 1 && users_.size() > 1) {
    const size_t morsel = std::clamp<size_t>(
        users_.size() / (sched.num_threads() * 4), 1, 1024);
    TaskRunStats run = sched.ParallelFor(users_.size(), morsel, score_range);
    ctx_->stats.tasks_spawned += run.tasks_spawned;
    ctx_->stats.worker_time_ms += run.worker_time_ms;
  } else {
    score_range(0, users_.size());
  }
  size_t total = 0;
  for (const auto& s : per_user) total += s.size();
  buffer_.reserve(total);
  for (auto& s : per_user) {
    for (auto& t : s) buffer_.push_back(std::move(t));
  }
  const uint64_t predicted = preds.load(std::memory_order_relaxed);
  ctx_->stats.predictions += predicted;
  ctx_->stats.predict_calls += predicted;
  ctx_->stats.predict_batches += batches.load(std::memory_order_relaxed);
  ctx_->stats.candidates_generated +=
      cand.load(std::memory_order_relaxed);
  ctx_->stats.blocks_skipped += skipped.load(std::memory_order_relaxed);
  ctx_->stats.items_pruned += pruned.load(std::memory_order_relaxed);
  obs::Count(obs::Counter::kPruneCandidatesGenerated,
             cand.load(std::memory_order_relaxed));
  obs::Count(obs::Counter::kPruneBlocksSkipped,
             skipped.load(std::memory_order_relaxed));
  obs::Count(obs::Counter::kPruneItemsPruned,
             pruned.load(std::memory_order_relaxed));
  obs::ObserveUs(obs::Histogram::kPruneGenUs,
                 static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6));
  return Status::OK();
}

Status RecommendExecutor::ScoreAllParallel() {
  const RecModel* model = plan_.rec->model();
  const RatingMatrix& snapshot = model->ratings();
  TaskScheduler& sched = TaskScheduler::Global();
  const size_t num_items = items_.size();
  const size_t num_pairs = users_.size() * num_items;
  // Morsel size balances claim overhead against tail imbalance; correctness
  // does not depend on it (per-pair output is order-preserving and each
  // score depends only on its own pair, not on how the batch was cut).
  const size_t morsel = std::clamp<size_t>(
      num_pairs / (sched.num_threads() * 8), 64, 8192);
  const size_t num_slots = (num_pairs + morsel - 1) / morsel;
  std::vector<std::vector<Tuple>> slots(num_slots);
  std::atomic<uint64_t> predictions{0};
  std::atomic<uint64_t> batches{0};
  TaskRunStats run = sched.ParallelFor(
      num_pairs, morsel, [&](size_t begin, size_t end) {
        std::vector<Tuple>& out = slots[begin / morsel];
        uint64_t local_predictions = 0;
        uint64_t local_batches = 0;
        UserRowScores row;
        // A morsel spans one or more per-user runs of contiguous items;
        // each run is scored with one PredictBatch.
        size_t p = begin;
        while (p < end) {
          const size_t u = p / num_items;
          const size_t run_end = std::min(end, (u + 1) * num_items);
          const int64_t user_id = users_[u];
          ScoreUserRange(model, snapshot, user_id, items_, p % num_items,
                         p % num_items + (run_end - p), &row);
          local_predictions += row.predicted;
          local_batches += row.batches;
          for (size_t k = 0; k < run_end - p; ++k) {
            if (row.rated[k] && !plan_.include_rated) continue;
            out.push_back(MakeRecTuple(
                plan_.schema, plan_.user_col_idx, plan_.item_col_idx,
                plan_.rating_col_idx, user_id, items_[p % num_items + k],
                row.score[k]));
          }
          p = run_end;
        }
        predictions.fetch_add(local_predictions, std::memory_order_relaxed);
        batches.fetch_add(local_batches, std::memory_order_relaxed);
      });
  size_t total = 0;
  for (const auto& s : slots) total += s.size();
  buffer_.reserve(total);
  // Slot order == ascending pair order == the serial emission order.
  for (auto& s : slots) {
    for (auto& t : s) buffer_.push_back(std::move(t));
  }
  const uint64_t predicted = predictions.load(std::memory_order_relaxed);
  ctx_->stats.predictions += predicted;
  ctx_->stats.predict_calls += predicted;
  ctx_->stats.predict_batches += batches.load(std::memory_order_relaxed);
  ctx_->stats.tasks_spawned += run.tasks_spawned;
  ctx_->stats.worker_time_ms += run.worker_time_ms;
  return Status::OK();
}

Result<std::optional<Tuple>> RecommendExecutor::NextImpl() {
  if (buffered_) {
    if (buffer_pos_ >= buffer_.size()) return std::optional<Tuple>{};
    return std::make_optional(std::move(buffer_[buffer_pos_++]));
  }
  const RecModel* model = plan_.rec->model();
  const RatingMatrix& snapshot = model->ratings();
  while (user_pos_ < users_.size()) {
    if (!row_ready_) {
      // Batch-score the whole item list for this user up front; Next()
      // then streams out of the precomputed row.
      ScoreUserRange(model, snapshot, users_[user_pos_], items_, 0,
                     items_.size(), &row_);
      ctx_->stats.predictions += row_.predicted;
      ctx_->stats.predict_calls += row_.predicted;
      ctx_->stats.predict_batches += row_.batches;
      row_ready_ = true;
      item_pos_ = 0;
    }
    while (item_pos_ < items_.size()) {
      const size_t k = item_pos_++;
      if (row_.rated[k] && !plan_.include_rated) continue;  // unseen only
      return std::make_optional(
          MakeRecTuple(plan_.schema, plan_.user_col_idx, plan_.item_col_idx,
                       plan_.rating_col_idx, users_[user_pos_], items_[k],
                       row_.score[k]));
    }
    ++user_pos_;
    row_ready_ = false;
  }
  return std::optional<Tuple>{};
}

// -------------------------------------------------------- JoinRecommend

Status JoinRecommendExecutor::Init() {
  if (plan_.rec->model() == nullptr) {
    return Status::ExecutionError("recommender " + plan_.rec->name() +
                                  " has no built model");
  }
  RECDB_RETURN_NOT_OK(outer_->Init());
  const RatingMatrix& snapshot = plan_.rec->model()->ratings();
  valid_users_.clear();
  valid_users_.reserve(plan_.user_ids.size());
  for (int64_t id : plan_.user_ids) {
    if (!snapshot.UserIndex(id).has_value()) continue;
    // Serving filter: on a sharded engine, non-owned users produce no join
    // output here — their rows come from the owning shard (DESIGN.md §14).
    if (ctx_->ShardFilterActive() && !ctx_->OwnsUser(id)) continue;
    valid_users_.push_back(id);
  }
  // Candidate zero-fill (CF families): precompute each user's candidate
  // bitmap once; probe items outside it provably score exactly 0.0.
  prune_active_ = false;
  user_candidates_.clear();
  if (plan_.prune) {
    cindex_ = plan_.rec->candidate_index();
    if (cindex_ != nullptr && cindex_->prunable() &&
        cindex_->bounds().candidate_generation) {
      PruneEngine engine(plan_.rec->model(), snapshot, *cindex_,
                         /*rank_by_id=*/false);
      user_candidates_.resize(valid_users_.size());
      for (size_t u = 0; u < valid_users_.size(); ++u) {
        engine.CandidateBitmap(valid_users_[u], &user_candidates_[u]);
      }
      engine.FlushStats(&ctx_->stats);
      prune_active_ = true;
    }
  }
  outer_done_ = false;
  window_.clear();
  window_slot_ = 0;
  window_user_ = 0;
  return Status::OK();
}

Status JoinRecommendExecutor::FillWindow() {
  const RecModel* model = plan_.rec->model();
  const RatingMatrix& snapshot = model->ratings();
  window_.clear();
  window_items_.clear();
  window_known_.clear();
  window_scores_.clear();
  window_skip_.clear();
  window_slot_ = 0;
  window_user_ = 0;
  // Stats and window state are committed only once the fill completes: an
  // outer error mid-fill must leave neither a partial window (whose score/
  // skip arrays still have the previous window's size — a retrying caller
  // would emit garbage or read out of bounds) nor already-counted probes
  // (a re-Init re-run sharing this ExecContext would double-count them).
  uint64_t probes = 0;
  while (window_.size() < kJoinProbeWindow) {
    auto next = outer_->Next();
    if (!next.ok()) {
      window_.clear();
      window_items_.clear();
      window_known_.clear();
      return next.status();
    }
    if (!next.value().has_value()) {
      outer_done_ = true;
      break;
    }
    ++probes;
    const Value& item_val = next.value()->At(plan_.outer_item_col);
    int64_t item_id = 0;
    bool known = false;
    if (!item_val.is_null() && item_val.type() == TypeId::kInt64) {
      item_id = item_val.AsInt();
      known = snapshot.ItemIndex(item_id).has_value();
    }
    window_.push_back(std::move(*next.value()));
    window_items_.push_back(item_id);
    window_known_.push_back(known ? 1 : 0);
  }
  ctx_->stats.join_probes += probes;
  const size_t w = window_.size();
  window_scores_.assign(valid_users_.size() * w, 0.0);
  window_skip_.assign(valid_users_.size() * w, 0);
  if (w == 0) return Status::OK();
  // One PredictBatch per user across the window's unrated known items —
  // the probe-batch amortization: the user context is resolved once for
  // up to kJoinProbeWindow probes instead of once per (probe, user) pair.
  std::vector<int64_t> cand;
  std::vector<size_t> cand_slot;
  std::vector<double> pred;
  uint64_t zero_filled = 0;
  for (size_t u = 0; u < valid_users_.size(); ++u) {
    const int64_t user_id = valid_users_[u];
    cand.clear();
    cand_slot.clear();
    for (size_t s = 0; s < w; ++s) {
      if (!window_known_[s]) {
        window_skip_[u * w + s] = 1;  // unknown item: no score, no tuple
        continue;
      }
      auto rated = snapshot.Get(user_id, window_items_[s]);
      if (rated.has_value()) {
        if (plan_.include_rated) {
          window_scores_[u * w + s] = *rated;
        } else {
          window_skip_[u * w + s] = 1;
        }
      } else if (prune_active_ &&
                 !IsWindowCandidate(u, snapshot, window_items_[s])) {
        // Outside the candidate set: provably 0.0 — the score array's
        // fill value — without a model call.
        ++zero_filled;
      } else {
        cand.push_back(window_items_[s]);
        cand_slot.push_back(s);
      }
    }
    if (cand.empty()) continue;
    pred.assign(cand.size(), 0.0);
    model->PredictBatch(user_id, cand, pred);
    for (size_t k = 0; k < cand.size(); ++k) {
      window_scores_[u * w + cand_slot[k]] = pred[k];
    }
    ctx_->stats.predictions += cand.size();
    ctx_->stats.predict_calls += cand.size();
    ++ctx_->stats.predict_batches;
  }
  if (zero_filled > 0) {
    ctx_->stats.items_pruned += zero_filled;
    obs::Count(obs::Counter::kPruneItemsPruned, zero_filled);
  }
  return Status::OK();
}

bool JoinRecommendExecutor::IsWindowCandidate(size_t user_slot,
                                              const RatingMatrix& snapshot,
                                              int64_t item_id) const {
  auto idx = snapshot.ItemIndex(item_id);
  if (!idx.has_value()) return true;  // resolved by the model's own guards
  const std::vector<uint8_t>& mark = user_candidates_[user_slot];
  if (static_cast<size_t>(*idx) >= mark.size()) return true;
  return mark[*idx] != 0;
}

Result<std::optional<Tuple>> JoinRecommendExecutor::NextImpl() {
  while (true) {
    if (window_slot_ >= window_.size()) {
      if (outer_done_) return std::optional<Tuple>{};
      RECDB_RETURN_NOT_OK(FillWindow());
      if (window_.empty()) return std::optional<Tuple>{};
      continue;
    }
    const size_t w = window_.size();
    const size_t s = window_slot_;
    while (window_user_ < valid_users_.size()) {
      const size_t u = window_user_++;
      if (window_skip_[u * w + s]) continue;
      // 〈recommend columns〉 ++ 〈outer tuple〉 (paper: tup concatenated).
      Tuple rec_part = MakeRecTuple(
          plan_.schema, plan_.user_col_idx, plan_.item_col_idx,
          plan_.rating_col_idx, valid_users_[u], window_items_[s],
          window_scores_[u * w + s]);
      // rec_part currently has the full output width; overwrite the tail
      // with the outer tuple's values.
      const Tuple& outer_tuple = window_[s];
      size_t outer_start =
          plan_.schema.NumColumns() - outer_tuple.NumValues();
      for (size_t i = 0; i < outer_tuple.NumValues(); ++i) {
        rec_part.values()[outer_start + i] = outer_tuple.At(i);
      }
      return std::make_optional(std::move(rec_part));
    }
    ++window_slot_;
    window_user_ = 0;
  }
}

// ------------------------------------------------------- IndexRecommend

IndexRecommendExecutor::~IndexRecommendExecutor() = default;

Status IndexRecommendExecutor::Init() {
  if (plan_.rec->model() == nullptr) {
    return Status::ExecutionError("recommender " + plan_.rec->name() +
                                  " has no built model");
  }
  const RatingMatrix& snapshot = plan_.rec->model()->ratings();
  if (plan_.user_ids.empty()) {
    users_ = snapshot.user_ids();
  } else {
    users_.clear();
    for (int64_t id : plan_.user_ids) {
      if (snapshot.UserIndex(id).has_value()) users_.push_back(id);
    }
  }
  // Serving filter (DESIGN.md §14): index-served users partition exactly
  // like model-scored ones — only the owner materializes and serves them.
  if (ctx_->ShardFilterActive()) {
    std::erase_if(users_, [&](int64_t u) { return !ctx_->OwnsUser(u); });
  }
  // Hash the pushed-down item ids once (the per-candidate std::find was
  // O(|items|^2) across a user's scan) and keep a deduplicated list so a
  // duplicated IN-list entry cannot emit the same tuple twice on the
  // cache-miss path.
  item_filter_.reset();
  item_list_.clear();
  if (plan_.item_ids.has_value()) {
    item_filter_.emplace();
    item_filter_->reserve(plan_.item_ids->size());
    for (int64_t id : *plan_.item_ids) {
      if (item_filter_->insert(id).second) item_list_.push_back(id);
    }
  }
  user_pos_ = 0;
  current_.clear();
  current_pos_ = 0;
  loaded_ = false;
  // Threshold-pruned fallback: needs a per-user cap (the threshold's k)
  // and the full catalog (an item pushdown already bounds the miss scan).
  prune_active_ = false;
  engine_.reset();
  if (plan_.prune && plan_.per_user_limit > 0 &&
      !plan_.item_ids.has_value()) {
    cindex_ = plan_.rec->candidate_index();
    prune_active_ = cindex_ != nullptr && cindex_->prunable();
  }
  return Status::OK();
}

Status IndexRecommendExecutor::LoadCurrentUser() {
  current_.clear();
  current_pos_ = 0;
  loaded_ = true;
  int64_t user_id = users_[user_pos_];
  const RecScoreIndex& index = *plan_.rec->score_index();

  auto item_ok = [&](int64_t item) {
    return !item_filter_.has_value() || item_filter_->count(item) > 0;
  };

  if (index.HasUser(user_id)) {
    // Phase II/III of Algorithm 3: walk the user's RecTree best-first,
    // stopping at the rating bound; filter items; cap at the limit.
    ++ctx_->stats.index_hits;
    obs::Count(obs::Counter::kRecIndexUserHits);
    index.Scan(user_id, plan_.min_score, [&](int64_t item, double score) {
      if (item_ok(item)) current_.emplace_back(item, score);
      return plan_.per_user_limit == 0 ||
             current_.size() < plan_.per_user_limit;
    });
    return Status::OK();
  }

  // Cache miss: fall back to the model — collect the user's unseen
  // candidates, score them in one batch, then sort and cap.
  ++ctx_->stats.index_misses;
  obs::Count(obs::Counter::kRecIndexUserMisses);
  const RecModel* model = plan_.rec->model();
  const RatingMatrix& snapshot = model->ratings();
  if (prune_active_) {
    // Threshold-pruned miss: exact top-per_user_limit under the fallback's
    // (score desc, id asc) order with min_score as the pruner floor —
    // identical to scoring the full catalog, filtering and capping.
    if (engine_ == nullptr) {
      obs::Count(obs::Counter::kPruneTopkQueries);
      engine_ = std::make_unique<PruneEngine>(model, snapshot, *cindex_,
                                              /*rank_by_id=*/true);
    }
    auto entries =
        engine_->UserTopK(user_id, plan_.per_user_limit, plan_.min_score);
    current_.reserve(entries.size());
    for (const TopKPruner::Entry& e : entries) {
      current_.emplace_back(e.item_id, e.score);
    }
    engine_->FlushStats(&ctx_->stats);
    return Status::OK();
  }
  const std::vector<int64_t>& items =
      item_filter_.has_value() ? item_list_ : snapshot.item_ids();
  std::vector<int64_t> cand;
  cand.reserve(items.size());
  for (int64_t item : items) {
    if (!snapshot.ItemIndex(item).has_value()) continue;
    if (snapshot.Get(user_id, item).has_value()) continue;  // unseen only
    cand.push_back(item);
  }
  if (!cand.empty()) {
    std::vector<double> pred(cand.size(), 0.0);
    model->PredictBatch(user_id, cand, pred);
    ctx_->stats.predictions += cand.size();
    ctx_->stats.predict_calls += cand.size();
    ++ctx_->stats.predict_batches;
    for (size_t k = 0; k < cand.size(); ++k) {
      if (pred[k] >= plan_.min_score) current_.emplace_back(cand[k], pred[k]);
    }
  }
  std::sort(current_.begin(), current_.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (plan_.per_user_limit > 0 && current_.size() > plan_.per_user_limit) {
    current_.resize(plan_.per_user_limit);
  }
  return Status::OK();
}

Result<std::optional<Tuple>> IndexRecommendExecutor::NextImpl() {
  while (user_pos_ < users_.size()) {
    if (!loaded_) {
      RECDB_RETURN_NOT_OK(LoadCurrentUser());
    }
    if (current_pos_ < current_.size()) {
      const auto& [item, score] = current_[current_pos_++];
      return std::make_optional(
          MakeRecTuple(plan_.schema, plan_.user_col_idx, plan_.item_col_idx,
                       plan_.rating_col_idx, users_[user_pos_], item, score));
    }
    ++user_pos_;
    loaded_ = false;
  }
  return std::optional<Tuple>{};
}

}  // namespace recdb
