#include "execution/recommend_executors.h"

#include <algorithm>
#include <atomic>
#include <span>

#include "common/task_scheduler.h"
#include "obs/metrics.h"

namespace recdb {

namespace {

/// Tuple shaped like the ratings table: user id, item id and score at their
/// column positions, NULL for any other ratings-table column.
Tuple MakeRecTuple(const ExecSchema& schema, size_t user_idx, size_t item_idx,
                   size_t rating_idx, int64_t user_id, int64_t item_id,
                   double score) {
  std::vector<Value> vals(schema.NumColumns(), Value::Null());
  vals[user_idx] = Value::Int(user_id);
  vals[item_idx] = Value::Int(item_id);
  vals[rating_idx] = Value::Double(score);
  return Tuple(std::move(vals));
}

/// Resolve the candidate user list: pushed-down ids filtered to users the
/// model knows, or every user in the snapshot.
std::vector<int64_t> ResolveUsers(
    const RatingMatrix& snapshot,
    const std::optional<std::vector<int64_t>>& pushed) {
  if (!pushed.has_value()) return snapshot.user_ids();
  std::vector<int64_t> out;
  out.reserve(pushed->size());
  for (int64_t id : *pushed) {
    if (snapshot.UserIndex(id).has_value()) out.push_back(id);
  }
  return out;
}

std::vector<int64_t> ResolveItems(
    const RatingMatrix& snapshot,
    const std::optional<std::vector<int64_t>>& pushed) {
  if (!pushed.has_value()) return snapshot.item_ids();
  std::vector<int64_t> out;
  out.reserve(pushed->size());
  for (int64_t id : *pushed) {
    if (snapshot.ItemIndex(id).has_value()) out.push_back(id);
  }
  return out;
}

/// Below this many candidate pairs a parallel fan-out costs more than it
/// saves; stay on the streaming serial path.
constexpr size_t kMinPairsForParallel = 256;

/// Outer tuples batched per JoinRecommend probe window. Bounds both the
/// emission latency (tuples are held until the window is scored) and the
/// per-window score matrix (|users| × window doubles).
constexpr size_t kJoinProbeWindow = 64;

/// Score one user over items[begin, end): rated items keep their stored
/// rating (and set the rated flag), the rest go through one PredictBatch.
void ScoreUserRange(const RecModel* model, const RatingMatrix& snapshot,
                    int64_t user_id, const std::vector<int64_t>& items,
                    size_t begin, size_t end, UserRowScores* out) {
  const size_t n = end - begin;
  out->score.assign(n, 0.0);
  out->rated.assign(n, 0);
  out->predicted = 0;
  out->batches = 0;
  std::vector<int64_t> cand;
  std::vector<size_t> cand_pos;
  cand.reserve(n);
  cand_pos.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    auto rated = snapshot.Get(user_id, items[begin + k]);
    if (rated.has_value()) {
      out->score[k] = *rated;  // Algorithm 1 line 8
      out->rated[k] = 1;
    } else {
      cand.push_back(items[begin + k]);
      cand_pos.push_back(k);
    }
  }
  if (cand.empty()) return;
  std::vector<double> pred(cand.size(), 0.0);
  model->PredictBatch(user_id, cand, pred);
  for (size_t k = 0; k < cand.size(); ++k) out->score[cand_pos[k]] = pred[k];
  out->predicted = cand.size();
  out->batches = 1;
}

}  // namespace

// -------------------------------------------------- Recommend / FilterRec

Status RecommendExecutor::Init() {
  if (plan_.rec->model() == nullptr) {
    return Status::ExecutionError("recommender " + plan_.rec->name() +
                                  " has no built model");
  }
  const RatingMatrix& snapshot = plan_.rec->model()->ratings();
  users_ = ResolveUsers(snapshot, plan_.user_ids);
  items_ = ResolveItems(snapshot, plan_.item_ids);
  user_pos_ = 0;
  item_pos_ = 0;
  row_ready_ = false;
  buffered_ = false;
  buffer_.clear();
  buffer_pos_ = 0;
  if (TaskScheduler::Global().num_threads() > 1 &&
      users_.size() * items_.size() >= kMinPairsForParallel) {
    RECDB_RETURN_NOT_OK(ScoreAllParallel());
    buffered_ = true;
  }
  return Status::OK();
}

Status RecommendExecutor::ScoreAllParallel() {
  const RecModel* model = plan_.rec->model();
  const RatingMatrix& snapshot = model->ratings();
  TaskScheduler& sched = TaskScheduler::Global();
  const size_t num_items = items_.size();
  const size_t num_pairs = users_.size() * num_items;
  // Morsel size balances claim overhead against tail imbalance; correctness
  // does not depend on it (per-pair output is order-preserving and each
  // score depends only on its own pair, not on how the batch was cut).
  const size_t morsel = std::clamp<size_t>(
      num_pairs / (sched.num_threads() * 8), 64, 8192);
  const size_t num_slots = (num_pairs + morsel - 1) / morsel;
  std::vector<std::vector<Tuple>> slots(num_slots);
  std::atomic<uint64_t> predictions{0};
  std::atomic<uint64_t> batches{0};
  TaskRunStats run = sched.ParallelFor(
      num_pairs, morsel, [&](size_t begin, size_t end) {
        std::vector<Tuple>& out = slots[begin / morsel];
        uint64_t local_predictions = 0;
        uint64_t local_batches = 0;
        UserRowScores row;
        // A morsel spans one or more per-user runs of contiguous items;
        // each run is scored with one PredictBatch.
        size_t p = begin;
        while (p < end) {
          const size_t u = p / num_items;
          const size_t run_end = std::min(end, (u + 1) * num_items);
          const int64_t user_id = users_[u];
          ScoreUserRange(model, snapshot, user_id, items_, p % num_items,
                         p % num_items + (run_end - p), &row);
          local_predictions += row.predicted;
          local_batches += row.batches;
          for (size_t k = 0; k < run_end - p; ++k) {
            if (row.rated[k] && !plan_.include_rated) continue;
            out.push_back(MakeRecTuple(
                plan_.schema, plan_.user_col_idx, plan_.item_col_idx,
                plan_.rating_col_idx, user_id, items_[p % num_items + k],
                row.score[k]));
          }
          p = run_end;
        }
        predictions.fetch_add(local_predictions, std::memory_order_relaxed);
        batches.fetch_add(local_batches, std::memory_order_relaxed);
      });
  size_t total = 0;
  for (const auto& s : slots) total += s.size();
  buffer_.reserve(total);
  // Slot order == ascending pair order == the serial emission order.
  for (auto& s : slots) {
    for (auto& t : s) buffer_.push_back(std::move(t));
  }
  const uint64_t predicted = predictions.load(std::memory_order_relaxed);
  ctx_->stats.predictions += predicted;
  ctx_->stats.predict_calls += predicted;
  ctx_->stats.predict_batches += batches.load(std::memory_order_relaxed);
  ctx_->stats.tasks_spawned += run.tasks_spawned;
  ctx_->stats.worker_time_ms += run.worker_time_ms;
  return Status::OK();
}

Result<std::optional<Tuple>> RecommendExecutor::NextImpl() {
  if (buffered_) {
    if (buffer_pos_ >= buffer_.size()) return std::optional<Tuple>{};
    return std::make_optional(std::move(buffer_[buffer_pos_++]));
  }
  const RecModel* model = plan_.rec->model();
  const RatingMatrix& snapshot = model->ratings();
  while (user_pos_ < users_.size()) {
    if (!row_ready_) {
      // Batch-score the whole item list for this user up front; Next()
      // then streams out of the precomputed row.
      ScoreUserRange(model, snapshot, users_[user_pos_], items_, 0,
                     items_.size(), &row_);
      ctx_->stats.predictions += row_.predicted;
      ctx_->stats.predict_calls += row_.predicted;
      ctx_->stats.predict_batches += row_.batches;
      row_ready_ = true;
      item_pos_ = 0;
    }
    while (item_pos_ < items_.size()) {
      const size_t k = item_pos_++;
      if (row_.rated[k] && !plan_.include_rated) continue;  // unseen only
      return std::make_optional(
          MakeRecTuple(plan_.schema, plan_.user_col_idx, plan_.item_col_idx,
                       plan_.rating_col_idx, users_[user_pos_], items_[k],
                       row_.score[k]));
    }
    ++user_pos_;
    row_ready_ = false;
  }
  return std::optional<Tuple>{};
}

// -------------------------------------------------------- JoinRecommend

Status JoinRecommendExecutor::Init() {
  if (plan_.rec->model() == nullptr) {
    return Status::ExecutionError("recommender " + plan_.rec->name() +
                                  " has no built model");
  }
  RECDB_RETURN_NOT_OK(outer_->Init());
  const RatingMatrix& snapshot = plan_.rec->model()->ratings();
  valid_users_.clear();
  valid_users_.reserve(plan_.user_ids.size());
  for (int64_t id : plan_.user_ids) {
    if (snapshot.UserIndex(id).has_value()) valid_users_.push_back(id);
  }
  outer_done_ = false;
  window_.clear();
  window_slot_ = 0;
  window_user_ = 0;
  return Status::OK();
}

Status JoinRecommendExecutor::FillWindow() {
  const RecModel* model = plan_.rec->model();
  const RatingMatrix& snapshot = model->ratings();
  window_.clear();
  window_items_.clear();
  window_known_.clear();
  window_scores_.clear();
  window_skip_.clear();
  window_slot_ = 0;
  window_user_ = 0;
  // Stats and window state are committed only once the fill completes: an
  // outer error mid-fill must leave neither a partial window (whose score/
  // skip arrays still have the previous window's size — a retrying caller
  // would emit garbage or read out of bounds) nor already-counted probes
  // (a re-Init re-run sharing this ExecContext would double-count them).
  uint64_t probes = 0;
  while (window_.size() < kJoinProbeWindow) {
    auto next = outer_->Next();
    if (!next.ok()) {
      window_.clear();
      window_items_.clear();
      window_known_.clear();
      return next.status();
    }
    if (!next.value().has_value()) {
      outer_done_ = true;
      break;
    }
    ++probes;
    const Value& item_val = next.value()->At(plan_.outer_item_col);
    int64_t item_id = 0;
    bool known = false;
    if (!item_val.is_null() && item_val.type() == TypeId::kInt64) {
      item_id = item_val.AsInt();
      known = snapshot.ItemIndex(item_id).has_value();
    }
    window_.push_back(std::move(*next.value()));
    window_items_.push_back(item_id);
    window_known_.push_back(known ? 1 : 0);
  }
  ctx_->stats.join_probes += probes;
  const size_t w = window_.size();
  window_scores_.assign(valid_users_.size() * w, 0.0);
  window_skip_.assign(valid_users_.size() * w, 0);
  if (w == 0) return Status::OK();
  // One PredictBatch per user across the window's unrated known items —
  // the probe-batch amortization: the user context is resolved once for
  // up to kJoinProbeWindow probes instead of once per (probe, user) pair.
  std::vector<int64_t> cand;
  std::vector<size_t> cand_slot;
  std::vector<double> pred;
  for (size_t u = 0; u < valid_users_.size(); ++u) {
    const int64_t user_id = valid_users_[u];
    cand.clear();
    cand_slot.clear();
    for (size_t s = 0; s < w; ++s) {
      if (!window_known_[s]) {
        window_skip_[u * w + s] = 1;  // unknown item: no score, no tuple
        continue;
      }
      auto rated = snapshot.Get(user_id, window_items_[s]);
      if (rated.has_value()) {
        if (plan_.include_rated) {
          window_scores_[u * w + s] = *rated;
        } else {
          window_skip_[u * w + s] = 1;
        }
      } else {
        cand.push_back(window_items_[s]);
        cand_slot.push_back(s);
      }
    }
    if (cand.empty()) continue;
    pred.assign(cand.size(), 0.0);
    model->PredictBatch(user_id, cand, pred);
    for (size_t k = 0; k < cand.size(); ++k) {
      window_scores_[u * w + cand_slot[k]] = pred[k];
    }
    ctx_->stats.predictions += cand.size();
    ctx_->stats.predict_calls += cand.size();
    ++ctx_->stats.predict_batches;
  }
  return Status::OK();
}

Result<std::optional<Tuple>> JoinRecommendExecutor::NextImpl() {
  while (true) {
    if (window_slot_ >= window_.size()) {
      if (outer_done_) return std::optional<Tuple>{};
      RECDB_RETURN_NOT_OK(FillWindow());
      if (window_.empty()) return std::optional<Tuple>{};
      continue;
    }
    const size_t w = window_.size();
    const size_t s = window_slot_;
    while (window_user_ < valid_users_.size()) {
      const size_t u = window_user_++;
      if (window_skip_[u * w + s]) continue;
      // 〈recommend columns〉 ++ 〈outer tuple〉 (paper: tup concatenated).
      Tuple rec_part = MakeRecTuple(
          plan_.schema, plan_.user_col_idx, plan_.item_col_idx,
          plan_.rating_col_idx, valid_users_[u], window_items_[s],
          window_scores_[u * w + s]);
      // rec_part currently has the full output width; overwrite the tail
      // with the outer tuple's values.
      const Tuple& outer_tuple = window_[s];
      size_t outer_start =
          plan_.schema.NumColumns() - outer_tuple.NumValues();
      for (size_t i = 0; i < outer_tuple.NumValues(); ++i) {
        rec_part.values()[outer_start + i] = outer_tuple.At(i);
      }
      return std::make_optional(std::move(rec_part));
    }
    ++window_slot_;
    window_user_ = 0;
  }
}

// ------------------------------------------------------- IndexRecommend

Status IndexRecommendExecutor::Init() {
  if (plan_.rec->model() == nullptr) {
    return Status::ExecutionError("recommender " + plan_.rec->name() +
                                  " has no built model");
  }
  const RatingMatrix& snapshot = plan_.rec->model()->ratings();
  if (plan_.user_ids.empty()) {
    users_ = snapshot.user_ids();
  } else {
    users_.clear();
    for (int64_t id : plan_.user_ids) {
      if (snapshot.UserIndex(id).has_value()) users_.push_back(id);
    }
  }
  // Hash the pushed-down item ids once (the per-candidate std::find was
  // O(|items|^2) across a user's scan) and keep a deduplicated list so a
  // duplicated IN-list entry cannot emit the same tuple twice on the
  // cache-miss path.
  item_filter_.reset();
  item_list_.clear();
  if (plan_.item_ids.has_value()) {
    item_filter_.emplace();
    item_filter_->reserve(plan_.item_ids->size());
    for (int64_t id : *plan_.item_ids) {
      if (item_filter_->insert(id).second) item_list_.push_back(id);
    }
  }
  user_pos_ = 0;
  current_.clear();
  current_pos_ = 0;
  loaded_ = false;
  return Status::OK();
}

Status IndexRecommendExecutor::LoadCurrentUser() {
  current_.clear();
  current_pos_ = 0;
  loaded_ = true;
  int64_t user_id = users_[user_pos_];
  const RecScoreIndex& index = *plan_.rec->score_index();

  auto item_ok = [&](int64_t item) {
    return !item_filter_.has_value() || item_filter_->count(item) > 0;
  };

  if (index.HasUser(user_id)) {
    // Phase II/III of Algorithm 3: walk the user's RecTree best-first,
    // stopping at the rating bound; filter items; cap at the limit.
    ++ctx_->stats.index_hits;
    obs::Count(obs::Counter::kRecIndexUserHits);
    index.Scan(user_id, plan_.min_score, [&](int64_t item, double score) {
      if (item_ok(item)) current_.emplace_back(item, score);
      return plan_.per_user_limit == 0 ||
             current_.size() < plan_.per_user_limit;
    });
    return Status::OK();
  }

  // Cache miss: fall back to the model — collect the user's unseen
  // candidates, score them in one batch, then sort and cap.
  ++ctx_->stats.index_misses;
  obs::Count(obs::Counter::kRecIndexUserMisses);
  const RecModel* model = plan_.rec->model();
  const RatingMatrix& snapshot = model->ratings();
  const std::vector<int64_t>& items =
      item_filter_.has_value() ? item_list_ : snapshot.item_ids();
  std::vector<int64_t> cand;
  cand.reserve(items.size());
  for (int64_t item : items) {
    if (!snapshot.ItemIndex(item).has_value()) continue;
    if (snapshot.Get(user_id, item).has_value()) continue;  // unseen only
    cand.push_back(item);
  }
  if (!cand.empty()) {
    std::vector<double> pred(cand.size(), 0.0);
    model->PredictBatch(user_id, cand, pred);
    ctx_->stats.predictions += cand.size();
    ctx_->stats.predict_calls += cand.size();
    ++ctx_->stats.predict_batches;
    for (size_t k = 0; k < cand.size(); ++k) {
      if (pred[k] >= plan_.min_score) current_.emplace_back(cand[k], pred[k]);
    }
  }
  std::sort(current_.begin(), current_.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (plan_.per_user_limit > 0 && current_.size() > plan_.per_user_limit) {
    current_.resize(plan_.per_user_limit);
  }
  return Status::OK();
}

Result<std::optional<Tuple>> IndexRecommendExecutor::NextImpl() {
  while (user_pos_ < users_.size()) {
    if (!loaded_) {
      RECDB_RETURN_NOT_OK(LoadCurrentUser());
    }
    if (current_pos_ < current_.size()) {
      const auto& [item, score] = current_[current_pos_++];
      return std::make_optional(
          MakeRecTuple(plan_.schema, plan_.user_col_idx, plan_.item_col_idx,
                       plan_.rating_col_idx, users_[user_pos_], item, score));
    }
    ++user_pos_;
    loaded_ = false;
  }
  return std::optional<Tuple>{};
}

}  // namespace recdb
