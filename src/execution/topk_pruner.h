// TopKPruner: the threshold side of WAND-style Top-N pruning (DESIGN.md
// §13). A bounded top-k accumulator over (score desc, rank asc) — `rank`
// is the caller's tie-break domain (item position for Recommend, external
// item id for the IndexRecommend fallback) — that exposes the running
// k-th score as a skip threshold.
//
// Exactness contract: CanSkip(bound) is true only when no item whose true
// score is <= bound can change the final top-k set. The comparison is
// strict (`bound < worst.score`): an item scoring exactly the current
// worst score could still displace it on the rank tie-break, so equality
// never skips. The floor models the plan's rPred (min_score) — scores
// below it are rejected outright, and a bound below it prunes even while
// the heap is not yet full.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace recdb {

class TopKPruner {
 public:
  struct Entry {
    double score = 0;
    int64_t rank = 0;    // tie-break key, ascending = better
    int64_t item_id = 0; // payload: external item id
  };

  explicit TopKPruner(size_t k,
                      double floor = -std::numeric_limits<double>::infinity())
      : k_(k), floor_(floor) {}

  size_t k() const { return k_; }
  size_t size() const { return heap_.size(); }
  bool full() const { return heap_.size() >= k_; }

  /// Would Offer(score, rank, ·) change the heap? Used by the zero-merge
  /// loop: offers arrive with equal score and ascending rank, so the first
  /// rejection ends the loop.
  bool WouldAccept(double score, int64_t rank) const {
    if (score < floor_) return false;
    if (heap_.size() < k_) return true;
    return Better(score, rank, heap_.front());
  }

  void Offer(double score, int64_t rank, int64_t item_id) {
    if (score < floor_) return;
    if (heap_.size() < k_) {
      heap_.push_back({score, rank, item_id});
      std::push_heap(heap_.begin(), heap_.end(), BetterEntry);
      return;
    }
    if (!Better(score, rank, heap_.front())) return;
    std::pop_heap(heap_.begin(), heap_.end(), BetterEntry);
    heap_.back() = {score, rank, item_id};
    std::push_heap(heap_.begin(), heap_.end(), BetterEntry);
  }

  /// True when no item with true score <= bound can enter the top-k.
  bool CanSkip(double bound) const {
    if (bound < floor_) return true;
    return heap_.size() >= k_ && bound < heap_.front().score;
  }

  /// Running threshold: the k-th best score once full, else the floor.
  double Threshold() const {
    return heap_.size() >= k_ ? heap_.front().score : floor_;
  }

  /// Destructive drain, best-first: (score desc, rank asc).
  std::vector<Entry> DrainBestFirst() {
    std::vector<Entry> out = std::move(heap_);
    heap_.clear();
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.rank < b.rank;
    });
    return out;
  }

 private:
  /// (score, rank) strictly beats entry e.
  static bool Better(double score, int64_t rank, const Entry& e) {
    if (score != e.score) return score > e.score;
    return rank < e.rank;
  }
  /// Heap comparator: treat "better" as "less" so the front is the worst
  /// retained entry — the displacement target and the threshold source.
  static bool BetterEntry(const Entry& a, const Entry& b) {
    return Better(a.score, a.rank, b);
  }

  size_t k_;
  double floor_;
  std::vector<Entry> heap_;  // worst at front
};

}  // namespace recdb
