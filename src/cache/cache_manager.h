// CacheManager: the paper's recommendation materialization manager
// (Section IV-D, Algorithm 4).
//
// Tracks per-user demand (query counts) and per-item consumption (rating
// update counts), derives normalized rates, and on each Run() decides which
// (user, item) pairs to admit into / evict from the RecScoreIndex using the
// hotness ratio
//     Hot(u,i) = (D_u / D_max) * (P_i / P_max)
// against HOTNESS-THRESHOLD. Threshold 0 => full materialization;
// threshold 1 (or above any observed hotness) => no materialization.
//
// Rates are *windowed*: each Run() computes D_u and P_i from the activity
// inside [last_run_ts_, now] and recomputes D_MAX / P_MAX from scratch, so
// both rates and maxima track the current workload instead of decaying
// monotonically from lifetime counters. A final sweep re-examines entries
// already materialized in the RecScoreIndex, so pairs that have cooled
// below the threshold are evicted even when neither side was active in the
// window (skipped on fully idle windows, which carry no evidence).
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "recommender/recommender.h"

namespace recdb {

struct UserStats {
  uint64_t query_count = 0;   // QC_u (lifetime)
  uint64_t window_query_count = 0;  // queries since the last Run()
  double last_query_ts = 0;   // TS_u
  double demand_rate = 0;     // D_u, over the last window
};

struct ItemStats {
  uint64_t update_count = 0;  // UC_i (lifetime)
  uint64_t window_update_count = 0;  // updates since the last Run()
  double last_update_ts = 0;  // TS_i
  double consumption_rate = 0;  // P_i, over the last window
};

struct CacheDecision {
  std::vector<std::pair<int64_t, int64_t>> admitted;  // (user, item)
  std::vector<std::pair<int64_t, int64_t>> evicted;
};

class CacheManager {
 public:
  /// `clock` must outlive the manager. Does not own the recommender.
  CacheManager(Recommender* rec, const Clock* clock,
               double hotness_threshold = 0.5)
      : rec_(rec), clock_(clock), threshold_(hotness_threshold),
        last_run_ts_(clock->Now()) {}

  /// A user issued a recommendation query (updates QC_u, TS_u).
  void RecordQuery(int64_t user_id);

  /// A rating was inserted for an item (updates UC_i, TS_i).
  void RecordUpdate(int64_t item_id);

  /// Ingest invalidation hook (PR 7): (user, item) pairs whose cached
  /// scores were just evicted from the RecScoreIndex because a delta op or
  /// refresh commit staled them. They are queued, and the next Run()
  /// lazily re-materializes exactly the ones still hot under the current
  /// windowed rates — cold pairs stay evicted at zero cost.
  void NotifyInvalidated(const std::vector<std::pair<int64_t, int64_t>>& pairs);

  size_t pending_invalidated() const { return invalidated_.size(); }

  /// Algorithm 4: recompute windowed rates and maxima, then admit/evict
  /// (user, item) pairs in the recommender's RecScoreIndex. Admitted pairs
  /// get their score predicted through the model (batched in parallel via
  /// the TaskScheduler) and inserted; pairs below the threshold — including
  /// already-materialized entries whose user or item went quiet — are
  /// evicted. Returns what changed.
  Result<CacheDecision> Run();

  /// Inspection (tests reproduce the paper's Table I worked example).
  const UserStats* GetUserStats(int64_t user_id) const;
  const ItemStats* GetItemStats(int64_t item_id) const;
  double max_demand() const { return max_demand_; }
  double max_consumption() const { return max_consumption_; }
  double hotness_threshold() const { return threshold_; }
  void set_hotness_threshold(double t) { threshold_ = t; }

  /// Hotness ratio of a pair under current statistics (0 when rates are
  /// unknown or maxima are zero).
  double Hotness(int64_t user_id, int64_t item_id) const;

 private:
  Recommender* rec_;
  const Clock* clock_;
  double threshold_;
  double last_run_ts_;  // TS_mat: last cache-manager invocation
  std::unordered_map<int64_t, UserStats> users_;
  std::unordered_map<int64_t, ItemStats> items_;
  double max_demand_ = 0;       // D_MAX
  double max_consumption_ = 0;  // P_MAX
  // Pairs invalidated since the last Run(), pending a hotness re-check.
  // Ordered set: re-admission order is deterministic.
  std::set<std::pair<int64_t, int64_t>> invalidated_;
};

}  // namespace recdb
