#include "cache/cache_manager.h"

#include <algorithm>
#include <set>

#include "common/task_scheduler.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace recdb {

void CacheManager::RecordQuery(int64_t user_id) {
  auto& s = users_[user_id];
  ++s.query_count;
  ++s.window_query_count;
  s.last_query_ts = clock_->Now();
  obs::Count(obs::Counter::kCacheQueriesRecorded);
}

void CacheManager::RecordUpdate(int64_t item_id) {
  auto& s = items_[item_id];
  ++s.update_count;
  ++s.window_update_count;
  s.last_update_ts = clock_->Now();
  obs::Count(obs::Counter::kCacheUpdatesRecorded);
}

void CacheManager::NotifyInvalidated(
    const std::vector<std::pair<int64_t, int64_t>>& pairs) {
  invalidated_.insert(pairs.begin(), pairs.end());
}

const UserStats* CacheManager::GetUserStats(int64_t user_id) const {
  auto it = users_.find(user_id);
  return it == users_.end() ? nullptr : &it->second;
}

const ItemStats* CacheManager::GetItemStats(int64_t item_id) const {
  auto it = items_.find(item_id);
  return it == items_.end() ? nullptr : &it->second;
}

double CacheManager::Hotness(int64_t user_id, int64_t item_id) const {
  if (max_demand_ <= 0 || max_consumption_ <= 0) return 0;
  const UserStats* u = GetUserStats(user_id);
  const ItemStats* i = GetItemStats(item_id);
  if (u == nullptr || i == nullptr) return 0;
  return (u->demand_rate / max_demand_) *
         (i->consumption_rate / max_consumption_);
}

Result<CacheDecision> CacheManager::Run() {
  if (rec_->model() == nullptr) {
    return Status::ExecutionError(
        "cache manager requires an initialized recommender");
  }
  Stopwatch run_watch;
  // Pairs that moved from cold to hot this run (the reverse direction is
  // every eviction, by definition).
  uint64_t crossings_up = 0;
  const double now = clock_->Now();
  const double window = std::max(now - last_run_ts_, 1e-9);

  // STEP 1: windowed rates. Every tracked user/item gets its rate
  // recomputed from this window's activity alone — a quiet window drives
  // the rate to zero instead of letting a stale lifetime average linger —
  // and the maxima are recomputed from scratch so they can decrease when
  // the former peak user or item cools off.
  std::vector<int64_t> active_users, active_items;
  max_demand_ = 0;
  for (auto& [uid, s] : users_) {
    s.demand_rate = static_cast<double>(s.window_query_count) / window;
    if (s.window_query_count > 0) active_users.push_back(uid);
    s.window_query_count = 0;
    max_demand_ = std::max(max_demand_, s.demand_rate);
  }
  max_consumption_ = 0;
  for (auto& [iid, s] : items_) {
    s.consumption_rate = static_cast<double>(s.window_update_count) / window;
    if (s.window_update_count > 0) active_items.push_back(iid);
    s.window_update_count = 0;
    max_consumption_ = std::max(max_consumption_, s.consumption_rate);
  }
  last_run_ts_ = now;
  // Sorted so admission/eviction order (and Predict batching) is stable
  // regardless of hash-map iteration order.
  std::sort(active_users.begin(), active_users.end());
  std::sort(active_items.begin(), active_items.end());

  // STEP 2: hotness decision for every (active user, active item) pair.
  // Admissions are collected first, their scores predicted as one parallel
  // batch (Predict is a const read of the model), then inserted serially.
  CacheDecision decision;
  const RecModel* model = rec_->model();
  const RatingMatrix& snapshot = model->ratings();
  RecScoreIndex* index = rec_->score_index();
  std::set<std::pair<int64_t, int64_t>> examined;
  for (int64_t uid : active_users) {
    for (int64_t iid : active_items) {
      if (snapshot.Get(uid, iid).has_value()) continue;  // seen items skip
      examined.emplace(uid, iid);
      double hot = Hotness(uid, iid);
      if (hot >= threshold_) {
        if (!index->GetScore(uid, iid).has_value()) ++crossings_up;
        decision.admitted.emplace_back(uid, iid);
      } else if (index->GetScore(uid, iid).has_value()) {
        index->Erase(uid, iid);
        decision.evicted.emplace_back(uid, iid);
      }
    }
  }
  // STEP 2.5: lazy re-materialization (PR 7). Pairs evicted by ingest
  // invalidation since the last run get one hotness re-check under the
  // fresh windowed rates: still-hot pairs are re-admitted (scored with the
  // current merge-view matrix), cold ones stay out. Pairs the active×active
  // pass already decided are skipped; seen pairs never re-materialize.
  for (const auto& pair : invalidated_) {
    const auto& [uid, iid] = pair;
    if (examined.count(pair) > 0) continue;
    if (snapshot.Get(uid, iid).has_value()) continue;
    if (Hotness(uid, iid) >= threshold_) {
      if (!index->GetScore(uid, iid).has_value()) ++crossings_up;
      decision.admitted.emplace_back(uid, iid);
      examined.insert(pair);
    }
  }
  invalidated_.clear();

  // Admitted pairs are grouped by user (the STEP 2 loops run user-major
  // over sorted ids), so each morsel decomposes into per-user runs that
  // score through one PredictBatch each. A morsel boundary can split a run
  // in two; that cannot change results because every score depends only on
  // its own (user, item) pair.
  std::vector<double> scores(decision.admitted.size(), 0.0);
  TaskScheduler& sched = TaskScheduler::Global();
  const size_t morsel = std::clamp<size_t>(
      scores.size() / (sched.num_threads() * 4), 16, 4096);
  sched.ParallelFor(scores.size(), morsel, [&](size_t begin, size_t end) {
    std::vector<int64_t> run_items;
    size_t p = begin;
    while (p < end) {
      const int64_t uid = decision.admitted[p].first;
      size_t q = p;
      run_items.clear();
      while (q < end && decision.admitted[q].first == uid) {
        run_items.push_back(decision.admitted[q].second);
        ++q;
      }
      model->PredictBatch(uid, run_items,
                          std::span<double>(scores.data() + p, q - p));
      p = q;
    }
  });
  for (size_t i = 0; i < decision.admitted.size(); ++i) {
    const auto& [uid, iid] = decision.admitted[i];
    index->Put(uid, iid, scores[i]);
  }

  // STEP 3: stale sweep. Materialized entries whose user or item went
  // quiet are invisible to the active×active pass above, so their hotness
  // is re-evaluated here under the fresh windowed rates. A fully idle
  // window is skipped: it carries no evidence about any pair.
  if (!active_users.empty() || !active_items.empty()) {
    std::vector<std::pair<int64_t, int64_t>> stale;
    index->ForEach([&](int64_t uid, int64_t iid, double /*score*/) {
      if (examined.count({uid, iid}) > 0) return;  // decided in STEP 2
      if (Hotness(uid, iid) < threshold_) stale.emplace_back(uid, iid);
    });
    std::sort(stale.begin(), stale.end());
    for (const auto& [uid, iid] : stale) {
      index->Erase(uid, iid);
      decision.evicted.emplace_back(uid, iid);
    }
  }
  obs::Count(obs::Counter::kCacheRuns);
  obs::Count(obs::Counter::kCacheAdmissions, decision.admitted.size());
  obs::Count(obs::Counter::kCacheEvictions, decision.evicted.size());
  obs::Count(obs::Counter::kCacheHotnessCrossings,
             crossings_up + decision.evicted.size());
  obs::ObserveUs(obs::Histogram::kCacheRunUs,
                 static_cast<uint64_t>(run_watch.ElapsedSeconds() * 1e6));
  return decision;
}

}  // namespace recdb
