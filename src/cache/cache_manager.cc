#include "cache/cache_manager.h"

#include <algorithm>

namespace recdb {

void CacheManager::RecordQuery(int64_t user_id) {
  auto& s = users_[user_id];
  ++s.query_count;
  s.last_query_ts = clock_->Now();
}

void CacheManager::RecordUpdate(int64_t item_id) {
  auto& s = items_[item_id];
  ++s.update_count;
  s.last_update_ts = clock_->Now();
}

const UserStats* CacheManager::GetUserStats(int64_t user_id) const {
  auto it = users_.find(user_id);
  return it == users_.end() ? nullptr : &it->second;
}

const ItemStats* CacheManager::GetItemStats(int64_t item_id) const {
  auto it = items_.find(item_id);
  return it == items_.end() ? nullptr : &it->second;
}

double CacheManager::Hotness(int64_t user_id, int64_t item_id) const {
  if (max_demand_ <= 0 || max_consumption_ <= 0) return 0;
  const UserStats* u = GetUserStats(user_id);
  const ItemStats* i = GetItemStats(item_id);
  if (u == nullptr || i == nullptr) return 0;
  return (u->demand_rate / max_demand_) *
         (i->consumption_rate / max_consumption_);
}

Result<CacheDecision> CacheManager::Run() {
  if (rec_->model() == nullptr) {
    return Status::ExecutionError(
        "cache manager requires an initialized recommender");
  }
  const double now = clock_->Now();
  const double elapsed = std::max(now - init_ts_, 1e-9);

  // STEP 1: refresh rates for users/items active since the last run
  // (U' and I' in Algorithm 4), and maintain the maxima.
  std::vector<int64_t> active_users, active_items;
  for (auto& [uid, s] : users_) {
    if (s.last_query_ts >= last_run_ts_) {
      s.demand_rate = static_cast<double>(s.query_count) / elapsed;
      active_users.push_back(uid);
    }
    max_demand_ = std::max(max_demand_, s.demand_rate);
  }
  for (auto& [iid, s] : items_) {
    if (s.last_update_ts >= last_run_ts_) {
      s.consumption_rate = static_cast<double>(s.update_count) / elapsed;
      active_items.push_back(iid);
    }
    max_consumption_ = std::max(max_consumption_, s.consumption_rate);
  }
  last_run_ts_ = now;

  // STEP 2: hotness decision for every (active user, active item) pair.
  CacheDecision decision;
  const RecModel* model = rec_->model();
  const RatingMatrix& snapshot = model->ratings();
  RecScoreIndex* index = rec_->score_index();
  for (int64_t uid : active_users) {
    for (int64_t iid : active_items) {
      if (snapshot.Get(uid, iid).has_value()) continue;  // seen items skip
      double hot = Hotness(uid, iid);
      if (hot >= threshold_) {
        index->Put(uid, iid, model->Predict(uid, iid));
        decision.admitted.emplace_back(uid, iid);
      } else if (index->GetScore(uid, iid).has_value()) {
        index->Erase(uid, iid);
        decision.evicted.emplace_back(uid, iid);
      }
    }
  }
  return decision;
}

}  // namespace recdb
