#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace recdb {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(a[i]) != std::tolower(b[i])) return false;
  }
  return true;
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string StringFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int len = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (len > 0) {
    out.resize(static_cast<size_t>(len));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace recdb
