// TaskScheduler: a shared worker pool for morsel-driven parallelism
// (Leis et al., "Morsel-Driven Parallelism", SIGMOD 2014).
//
// Hot paths (RECOMMEND scoring, neighborhood model builds, RecScoreIndex
// batch admission) partition their work into fixed-size morsels; workers —
// the calling thread plus `parallelism - 1` pool threads — claim morsels
// from a shared atomic cursor, so fast workers naturally steal load from
// slow ones. Callers are responsible for keeping morsels independent
// (private output slots, per-morsel accumulators) so results stay
// bit-identical to serial execution under any thread count; see DESIGN.md
// for the determinism contract.
//
// The engine uses one process-wide scheduler (`TaskScheduler::Global()`),
// sized with `SET parallelism = N` or `RecDBOptions::parallelism`. One
// parallel loop owns the pool at a time; a ParallelFor issued while the
// pool is busy — from inside a morsel (the sharded router's scatter legs
// score through here) or from a concurrent root caller — degrades to a
// serial inline run of the whole range, which the determinism contract
// keeps bit-identical to the pooled execution.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace recdb {

/// What one ParallelFor invocation did (feeds ExecStats).
struct TaskRunStats {
  uint64_t tasks_spawned = 0;  // morsels executed
  double worker_time_ms = 0;   // summed busy time across participants
};

class TaskScheduler {
 public:
  /// `num_threads` is the total worker count including the calling thread;
  /// 1 (or 0) means fully serial with no pool threads.
  explicit TaskScheduler(size_t num_threads = 1);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  size_t num_threads() const { return num_threads_; }

  /// Re-size the pool. Must not be called while a ParallelFor is running.
  void Resize(size_t num_threads);

  /// Morsel-driven parallel loop over [0, n): participants atomically claim
  /// ranges of `morsel` indices and invoke fn(begin, end). Blocks until the
  /// whole range is processed. fn runs concurrently on different morsels and
  /// must only write state private to its range.
  TaskRunStats ParallelFor(size_t n, size_t morsel,
                           const std::function<void(size_t, size_t)>& fn);

  /// Background lane (PR 7): enqueue a job on a single dedicated thread,
  /// independent of the morsel pool — re-freeze/merge work runs here while
  /// the pool keeps serving query parallelism. Jobs run one at a time in
  /// submission order; a background job may itself issue a root-level
  /// ParallelFor (it serializes on the same submit lock as foreground
  /// loops). The thread starts lazily on the first Submit.
  void Submit(std::function<void()> job);

  /// Block until the background queue is empty and no job is running.
  /// Jobs submitted after the drain begins are waited on too.
  void DrainBackground();

  /// Background-lane introspection (tests).
  size_t background_pending() const;

  /// Lifetime counters (shell \stats).
  uint64_t total_tasks() const {
    return total_tasks_.load(std::memory_order_relaxed);
  }
  double total_worker_ms() const {
    return static_cast<double>(
               total_worker_nanos_.load(std::memory_order_relaxed)) /
           1e6;
  }

  /// The process-wide scheduler the engine's hot paths use. Starts serial
  /// (1 thread) until `SET parallelism = N` / SetGlobalParallelism.
  static TaskScheduler& Global();
  static void SetGlobalParallelism(size_t num_threads);

 private:
  struct Job {
    size_t n = 0;
    size_t morsel = 1;
    const std::function<void(size_t, size_t)>* fn = nullptr;
    std::atomic<size_t> next{0};
    std::atomic<uint64_t> tasks{0};
    std::atomic<uint64_t> worker_nanos{0};
  };

  void WorkerLoop();
  static void RunMorsels(Job* job);
  void StopWorkers();
  void StartWorkers();
  void BackgroundLoop();
  void StopBackground();

  std::mutex submit_mu_;  // serializes ParallelFor / Resize
  std::mutex mu_;         // guards job_, generation_, workers_active_
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  size_t num_threads_ = 1;
  Job* job_ = nullptr;
  uint64_t generation_ = 0;
  size_t workers_active_ = 0;
  bool shutdown_ = false;
  std::atomic<uint64_t> total_tasks_{0};
  std::atomic<uint64_t> total_worker_nanos_{0};

  // Background lane: one dedicated thread, lazily started.
  mutable std::mutex bg_mu_;
  std::condition_variable bg_cv_;       // queue became non-empty / shutdown
  std::condition_variable bg_done_cv_;  // queue drained and worker idle
  std::deque<std::function<void()>> bg_queue_;
  std::thread bg_thread_;
  bool bg_started_ = false;
  bool bg_busy_ = false;
  bool bg_shutdown_ = false;
};

}  // namespace recdb
