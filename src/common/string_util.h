// Small string helpers shared by the lexer, planner explainers and tools.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace recdb {

/// Lower-case an ASCII string (SQL keywords are case-insensitive).
std::string ToLower(std::string_view s);

/// Upper-case an ASCII string.
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Split on a delimiter character; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char delim);

/// Join strings with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Strip leading/trailing ASCII whitespace.
std::string Trim(std::string_view s);

/// printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...);

}  // namespace recdb
