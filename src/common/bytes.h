// ByteWriter / ByteReader: little helpers for length-prefixed binary
// serialization (catalog meta pages, persisted table statistics). Writers
// append into a growable buffer; readers bounds-check every access and
// surface truncation as kDataLoss.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace recdb {

class ByteWriter {
 public:
  void Raw(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  template <typename T>
  void Num(T v) {
    Raw(&v, sizeof(T));
  }
  void Str(const std::string& s) {
    Num(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  const std::vector<uint8_t>& bytes() const { return buf_; }

 private:
  std::vector<uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& buf) : buf_(buf) {}

  Status Raw(void* out, size_t n) {
    if (pos_ + n > buf_.size()) {
      return Status::DataLoss("catalog metadata truncated");
    }
    std::memcpy(out, buf_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }
  template <typename T>
  Result<T> Num() {
    T v{};
    RECDB_RETURN_NOT_OK(Raw(&v, sizeof(T)));
    return v;
  }
  Result<std::string> Str() {
    RECDB_ASSIGN_OR_RETURN(uint32_t n, Num<uint32_t>());
    if (n > (1u << 20)) return Status::DataLoss("catalog string too large");
    std::string s(n, '\0');
    RECDB_RETURN_NOT_OK(Raw(s.data(), n));
    return s;
  }
  /// Bytes left to read. Lets loaders skip optional trailing sections that
  /// older database files simply do not have.
  size_t Remaining() const { return buf_.size() - pos_; }

 private:
  const std::vector<uint8_t>& buf_;
  size_t pos_ = 0;
};

}  // namespace recdb
