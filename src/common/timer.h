// Wall-clock timing helpers for benchmarks and the cache manager's clock.
#pragma once

#include <chrono>
#include <cstdint>

namespace recdb {

/// Monotonic stopwatch returning elapsed seconds / milliseconds.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Clock abstraction so the cache manager's time-based statistics are
/// deterministic in tests (paper Algorithm 4 uses timestamps).
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in seconds since an arbitrary epoch.
  virtual double Now() const = 0;
};

/// Real wall-clock.
class SystemClock : public Clock {
 public:
  double Now() const override {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

/// Manually advanced clock for tests and the worked example in paper Table I.
class ManualClock : public Clock {
 public:
  explicit ManualClock(double start = 0) : now_(start) {}
  double Now() const override { return now_; }
  void Advance(double seconds) { now_ += seconds; }
  void Set(double t) { now_ = t; }

 private:
  double now_;
};

}  // namespace recdb
