#include "common/task_scheduler.h"

#include <algorithm>

#include "common/timer.h"
#include "obs/metrics.h"

namespace recdb {

namespace {
// True while this thread is inside a ParallelFor morsel (or an inline
// fallback). A ParallelFor issued from such a context must not touch
// submit_mu_ — the owning loop already holds it — so it degrades to a
// serial inline run instead of deadlocking. Bit-identity is unaffected:
// the determinism contract requires every loop body to produce the same
// result under any morselization, including one morsel on one thread.
thread_local bool tls_in_parallel_for = false;

struct ScopedInParallelFor {
  bool prev = tls_in_parallel_for;
  ScopedInParallelFor() { tls_in_parallel_for = true; }
  ~ScopedInParallelFor() { tls_in_parallel_for = prev; }
};
}  // namespace

TaskScheduler::TaskScheduler(size_t num_threads)
    : num_threads_(std::max<size_t>(num_threads, 1)) {
  StartWorkers();
}

TaskScheduler::~TaskScheduler() {
  // The background thread may issue ParallelFor, so it must die before the
  // morsel pool does.
  StopBackground();
  StopWorkers();
}

void TaskScheduler::StartWorkers() {
  for (size_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  obs::SetGauge(obs::Gauge::kSchedulerThreads,
                static_cast<int64_t>(num_threads_));
}

void TaskScheduler::StopWorkers() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = false;
  }
}

void TaskScheduler::Resize(size_t num_threads) {
  num_threads = std::max<size_t>(num_threads, 1);
  std::lock_guard<std::mutex> submit(submit_mu_);
  if (num_threads == num_threads_) return;
  StopWorkers();
  num_threads_ = num_threads;
  StartWorkers();
}

void TaskScheduler::WorkerLoop() {
  uint64_t seen_generation = 0;
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
      if (job == nullptr) continue;  // woke after the job already drained
      ++workers_active_;
    }
    RunMorsels(job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --workers_active_;
      if (workers_active_ == 0) done_cv_.notify_all();
    }
  }
}

void TaskScheduler::RunMorsels(Job* job) {
  ScopedInParallelFor scope;
  Stopwatch watch;
  uint64_t tasks = 0;
  while (true) {
    size_t begin = job->next.fetch_add(job->morsel, std::memory_order_relaxed);
    if (begin >= job->n) {
      obs::SetGauge(obs::Gauge::kSchedulerQueueDepth, 0);
      break;
    }
    size_t end = std::min(begin + job->morsel, job->n);
    // Morsels nobody has claimed yet; last-writer-wins across workers is
    // fine for a depth gauge.
    obs::SetGauge(obs::Gauge::kSchedulerQueueDepth,
                  static_cast<int64_t>((job->n - end + job->morsel - 1) /
                                       job->morsel));
    (*job->fn)(begin, end);
    ++tasks;
  }
  if (tasks > 0) {
    job->tasks.fetch_add(tasks, std::memory_order_relaxed);
    job->worker_nanos.fetch_add(
        static_cast<uint64_t>(watch.ElapsedSeconds() * 1e9),
        std::memory_order_relaxed);
  }
}

TaskRunStats TaskScheduler::ParallelFor(
    size_t n, size_t morsel, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return {};
  if (morsel == 0) morsel = 1;
  // Nested (same thread, from inside a morsel) or contended (another loop
  // holds the pool) ParallelFor runs inline serially instead of queueing:
  // the sharded scatter path issues per-shard legs through the pool, and a
  // leg's own scoring loops land here. Serial inline execution is
  // bit-identical by the determinism contract, and never deadlocks against
  // a lock held by whoever owns the pool right now.
  std::unique_lock<std::mutex> submit(submit_mu_, std::defer_lock);
  if (tls_in_parallel_for || !submit.try_lock()) {
    ScopedInParallelFor scope;
    Stopwatch watch;
    fn(0, n);
    TaskRunStats out;
    out.tasks_spawned = 1;
    out.worker_time_ms = watch.ElapsedSeconds() * 1e3;
    total_tasks_.fetch_add(1, std::memory_order_relaxed);
    total_worker_nanos_.fetch_add(
        static_cast<uint64_t>(out.worker_time_ms * 1e6),
        std::memory_order_relaxed);
    obs::Count(obs::Counter::kSchedulerLoops);
    obs::Count(obs::Counter::kSchedulerTasksSpawned, 1);
    obs::Count(obs::Counter::kSchedulerWorkerBusyUs,
               static_cast<uint64_t>(out.worker_time_ms * 1e3));
    return out;
  }
  Job job;
  job.n = n;
  job.morsel = morsel;
  job.fn = &fn;
  if (workers_.empty() || n <= morsel) {
    // Serial (or single-morsel) fast path: run on the caller, no wakeups.
    RunMorsels(&job);
  } else {
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = &job;
      ++generation_;
    }
    work_cv_.notify_all();
    RunMorsels(&job);  // the caller is a worker too
    std::unique_lock<std::mutex> lock(mu_);
    job_ = nullptr;  // late wakers must not touch the (stack) job
    done_cv_.wait(lock, [&] { return workers_active_ == 0; });
  }
  TaskRunStats out;
  out.tasks_spawned = job.tasks.load(std::memory_order_relaxed);
  out.worker_time_ms =
      static_cast<double>(job.worker_nanos.load(std::memory_order_relaxed)) /
      1e6;
  total_tasks_.fetch_add(out.tasks_spawned, std::memory_order_relaxed);
  total_worker_nanos_.fetch_add(
      job.worker_nanos.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  obs::Count(obs::Counter::kSchedulerLoops);
  obs::Count(obs::Counter::kSchedulerTasksSpawned, out.tasks_spawned);
  obs::Count(obs::Counter::kSchedulerWorkerBusyUs,
             job.worker_nanos.load(std::memory_order_relaxed) / 1000);
  return out;
}

void TaskScheduler::Submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    if (bg_shutdown_) return;
    if (!bg_started_) {
      bg_thread_ = std::thread([this] { BackgroundLoop(); });
      bg_started_ = true;
    }
    bg_queue_.push_back(std::move(job));
  }
  bg_cv_.notify_one();
}

void TaskScheduler::BackgroundLoop() {
  std::unique_lock<std::mutex> lock(bg_mu_);
  while (true) {
    bg_cv_.wait(lock, [&] { return bg_shutdown_ || !bg_queue_.empty(); });
    if (bg_shutdown_) return;  // queued jobs are dropped at shutdown
    std::function<void()> job = std::move(bg_queue_.front());
    bg_queue_.pop_front();
    bg_busy_ = true;
    lock.unlock();
    job();
    lock.lock();
    bg_busy_ = false;
    if (bg_queue_.empty()) bg_done_cv_.notify_all();
  }
}

void TaskScheduler::DrainBackground() {
  std::unique_lock<std::mutex> lock(bg_mu_);
  bg_done_cv_.wait(lock, [&] { return bg_queue_.empty() && !bg_busy_; });
}

size_t TaskScheduler::background_pending() const {
  std::lock_guard<std::mutex> lock(bg_mu_);
  return bg_queue_.size() + (bg_busy_ ? 1 : 0);
}

void TaskScheduler::StopBackground() {
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    bg_shutdown_ = true;
  }
  bg_cv_.notify_all();
  if (bg_thread_.joinable()) bg_thread_.join();
  {
    // Drop undrained jobs so a late DrainBackground cannot wait forever.
    std::lock_guard<std::mutex> lock(bg_mu_);
    bg_queue_.clear();
  }
  bg_done_cv_.notify_all();
}

TaskScheduler& TaskScheduler::Global() {
  // Intentionally leaked: pool threads must never outlive the scheduler, and
  // static destruction order across translation units cannot guarantee that.
  static TaskScheduler* global = new TaskScheduler(1);
  return *global;
}

void TaskScheduler::SetGlobalParallelism(size_t num_threads) {
  Global().Resize(num_threads);
}

}  // namespace recdb
