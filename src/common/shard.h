// User → shard ownership hash for the sharded serving layer (DESIGN.md §14).
//
// Every layer that partitions per-user state — the router, the engine's DML
// ownership filter, and the executors' serving filter — must agree on the
// owner of a user id, so the mapping lives here and nowhere else. The hash
// is a splitmix64-style finalizer: raw external ids are often dense and
// sequential, and `id % shards` would put every load-ordered run of users on
// the same shard; mixing first keeps the partition uniform for any id
// distribution while staying deterministic across processes and platforms.
#pragma once

#include <cstdint>

namespace recdb {

/// Hard cap on shard_count/shard_index engine options. Far above any
/// sensible in-process deployment; exists so SET validation can reject
/// nonsense with a clear error instead of clamping silently.
constexpr uint32_t kMaxShardCount = 1024;

/// splitmix64 finalizer (Steele et al.) — avalanche-mixes all 64 bits.
inline uint64_t MixUserId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// The shard that owns `user_id` (and all of its per-user state) when the
/// key space is partitioned `shard_count` ways.
inline uint32_t ShardOfUser(int64_t user_id, uint32_t shard_count) {
  if (shard_count <= 1) return 0;
  return static_cast<uint32_t>(MixUserId(static_cast<uint64_t>(user_id)) %
                               shard_count);
}

}  // namespace recdb
