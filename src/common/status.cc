#include "common/status.h"

namespace recdb {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kPlanError:
      return "PlanError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace recdb
