// Status / Result error-handling primitives.
//
// recdb follows the Arrow/RocksDB idiom: fallible operations return a Status
// (or a Result<T> carrying a value on success) instead of throwing across
// module boundaries. Exceptions are reserved for programmer errors
// (RECDB_DCHECK failures abort).
#pragma once

#include <cassert>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <variant>

namespace recdb {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIOError,
  kParseError,
  kBindError,
  kPlanError,
  kExecutionError,
  kNotImplemented,
  kInternal,
  kResourceExhausted,
  kUnavailable,  // transient fault; retrying the operation may succeed
  kDataLoss,     // unrecoverable corruption (e.g. page checksum mismatch)
};

/// Human-readable name of a StatusCode ("Ok", "ParseError", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status PlanError(std::string msg) {
    return Status(StatusCode::kPlanError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  /// Transient condition: the same operation may succeed if retried.
  bool IsTransient() const { return code_ == StatusCode::kUnavailable; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or a non-OK Status.
template <typename T>
class Result {
 public:
  /* implicit */ Result(T value) : var_(std::move(value)) {}
  /* implicit */ Result(Status status) : var_(std::move(status)) {
    assert(!std::get<Status>(var_).ok() && "Result(Status) must carry error");
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status kOkStatus = Status::OK();
    if (ok()) return kOkStatus;
    return std::get<Status>(var_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(var_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Value on success, `fallback` otherwise.
  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> var_;
};

// Propagate a non-OK Status to the caller.
#define RECDB_RETURN_NOT_OK(expr)              \
  do {                                         \
    ::recdb::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

// Evaluate a Result<T> expression; on error propagate its Status, otherwise
// bind the value to `lhs`. `lhs` may declare a new variable.
#define RECDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#define RECDB_ASSIGN_OR_RETURN(lhs, expr)                                  \
  RECDB_ASSIGN_OR_RETURN_IMPL(RECDB_CONCAT(_res_, __LINE__), lhs, expr)

#define RECDB_CONCAT_IMPL(a, b) a##b
#define RECDB_CONCAT(a, b) RECDB_CONCAT_IMPL(a, b)

// Programmer-error check, active in all build types.
#define RECDB_DCHECK(cond)                                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::cerr << "RECDB_DCHECK failed: " #cond " at " << __FILE__ << ":"   \
                << __LINE__ << std::endl;                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

}  // namespace recdb
