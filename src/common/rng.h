// Seeded random-number utilities used by the data generators and tests.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace recdb {

/// Thin wrapper around std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : gen_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(gen_);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(gen_);
  }

  /// Standard normal scaled by `stddev` around `mean`.
  double Gaussian(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(gen_);
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(gen_);
  }

  /// Pick k distinct values from [0, n) (k <= n). Order is random.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

/// Zipf(s) sampler over {0, ..., n-1} via inverse-CDF on precomputed weights.
///
/// Used to give synthetic datasets the popularity skew of real rating data
/// (a few blockbuster items collect most ratings).
class ZipfSampler {
 public:
  ZipfSampler(int64_t n, double s);

  /// Draw one rank (0 = most popular).
  int64_t Sample(Rng& rng) const;

  int64_t n() const { return n_; }

 private:
  int64_t n_;
  std::vector<double> cdf_;  // cumulative, normalized to 1.0
};

}  // namespace recdb
