#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/status.h"

namespace recdb {

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  RECDB_DCHECK(k <= n);
  // Floyd's algorithm for k << n; fall back to shuffle for dense draws.
  if (k * 3 >= n) {
    std::vector<int64_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    std::shuffle(all.begin(), all.end(), gen_);
    all.resize(k);
    return all;
  }
  std::vector<int64_t> out;
  out.reserve(k);
  std::vector<bool> seen;  // sparse set via sorted vector would also work
  seen.resize(n, false);
  for (int64_t j = n - k; j < n; ++j) {
    int64_t t = UniformInt(0, j);
    if (seen[t]) t = j;
    seen[t] = true;
    out.push_back(t);
  }
  std::shuffle(out.begin(), out.end(), gen_);
  return out;
}

ZipfSampler::ZipfSampler(int64_t n, double s) : n_(n) {
  RECDB_DCHECK(n > 0);
  cdf_.resize(n);
  double acc = 0;
  for (int64_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& v : cdf_) v /= acc;
}

int64_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.UniformDouble(0.0, 1.0);
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return it - cdf_.begin();
}

}  // namespace recdb
