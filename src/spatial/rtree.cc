#include "spatial/rtree.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace recdb::spatial {

namespace {

Rect MbrOfEntries(const std::vector<RTreeEntry>& entries) {
  Rect r{entries[0].point.x, entries[0].point.y, entries[0].point.x,
         entries[0].point.y};
  for (const auto& e : entries) {
    r.min_x = std::min(r.min_x, e.point.x);
    r.min_y = std::min(r.min_y, e.point.y);
    r.max_x = std::max(r.max_x, e.point.x);
    r.max_y = std::max(r.max_y, e.point.y);
  }
  return r;
}

}  // namespace

RTree::RTree(std::vector<RTreeEntry> entries, size_t max_fanout)
    : max_fanout_(max_fanout < 2 ? 2 : max_fanout), size_(entries.size()) {
  root_ = BulkLoad(std::move(entries));
}

std::unique_ptr<RTree::Node> RTree::BulkLoad(std::vector<RTreeEntry> entries) {
  if (entries.empty()) {
    auto node = std::make_unique<Node>();
    node->leaf = true;
    node->mbr = Rect{0, 0, 0, 0};
    return node;
  }
  // STR: sort by x, slice into vertical strips of ~sqrt(n/fanout) leaves,
  // sort each strip by y, chop into leaves.
  const size_t n = entries.size();
  const size_t num_leaves = (n + max_fanout_ - 1) / max_fanout_;
  const size_t num_strips =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const size_t strip_size = (n + num_strips - 1) / num_strips;

  std::sort(entries.begin(), entries.end(),
            [](const RTreeEntry& a, const RTreeEntry& b) {
              return a.point.x < b.point.x;
            });

  std::vector<std::unique_ptr<Node>> leaves;
  for (size_t s = 0; s < n; s += strip_size) {
    size_t end = std::min(s + strip_size, n);
    std::sort(entries.begin() + s, entries.begin() + end,
              [](const RTreeEntry& a, const RTreeEntry& b) {
                return a.point.y < b.point.y;
              });
    for (size_t i = s; i < end; i += max_fanout_) {
      size_t leaf_end = std::min(i + max_fanout_, end);
      auto leaf = std::make_unique<Node>();
      leaf->leaf = true;
      leaf->entries.assign(entries.begin() + i, entries.begin() + leaf_end);
      leaf->mbr = MbrOfEntries(leaf->entries);
      leaves.push_back(std::move(leaf));
    }
  }
  return PackLevel(std::move(leaves));
}

std::unique_ptr<RTree::Node> RTree::PackLevel(
    std::vector<std::unique_ptr<Node>> nodes) {
  if (nodes.size() == 1) return std::move(nodes[0]);
  // Recursively group nodes by x-center into parents of max_fanout_.
  std::sort(nodes.begin(), nodes.end(),
            [](const std::unique_ptr<Node>& a, const std::unique_ptr<Node>& b) {
              return a->mbr.min_x + a->mbr.max_x <
                     b->mbr.min_x + b->mbr.max_x;
            });
  std::vector<std::unique_ptr<Node>> parents;
  for (size_t i = 0; i < nodes.size(); i += max_fanout_) {
    size_t end = std::min(i + max_fanout_, nodes.size());
    auto parent = std::make_unique<Node>();
    parent->leaf = false;
    parent->mbr = nodes[i]->mbr;
    for (size_t j = i; j < end; ++j) {
      parent->mbr = parent->mbr.Union(nodes[j]->mbr);
      parent->children.push_back(std::move(nodes[j]));
    }
    parents.push_back(std::move(parent));
  }
  return PackLevel(std::move(parents));
}

size_t RTree::Height() const {
  size_t h = 1;
  const Node* n = root_.get();
  while (!n->leaf) {
    n = n->children[0].get();
    ++h;
  }
  return h;
}

void RTree::Visit(const Rect& rect,
                  const std::function<bool(const RTreeEntry&)>& fn) const {
  nodes_visited_ = 0;
  if (size_ == 0) return;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    ++nodes_visited_;
    if (!n->mbr.Intersects(rect)) continue;
    if (n->leaf) {
      for (const auto& e : n->entries) {
        if (rect.Contains(e.point)) {
          if (!fn(e)) return;
        }
      }
    } else {
      for (const auto& c : n->children) stack.push_back(c.get());
    }
  }
}

std::vector<int64_t> RTree::QueryRect(const Rect& rect) const {
  std::vector<int64_t> out;
  Visit(rect, [&](const RTreeEntry& e) {
    out.push_back(e.id);
    return true;
  });
  return out;
}

std::vector<int64_t> RTree::QueryRadius(const Point& center,
                                        double radius) const {
  Rect box{center.x - radius, center.y - radius, center.x + radius,
           center.y + radius};
  std::vector<int64_t> out;
  Visit(box, [&](const RTreeEntry& e) {
    if (Distance(e.point, center) <= radius) out.push_back(e.id);
    return true;
  });
  return out;
}

std::vector<int64_t> RTree::QueryPolygon(const Geometry& polygon) const {
  RECDB_DCHECK(polygon.type() == GeometryType::kPolygon);
  Rect box = polygon.Mbr();
  std::vector<int64_t> out;
  Visit(box, [&](const RTreeEntry& e) {
    if (STContains(polygon, Geometry::MakePoint(e.point.x, e.point.y))) {
      out.push_back(e.id);
    }
    return true;
  });
  return out;
}

}  // namespace recdb::spatial
