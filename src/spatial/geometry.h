// Geometry value types for the location-aware case study (paper Section V).
//
// recdb substitutes a small planar-geometry library for PostGIS: points and
// simple polygons, with the three predicates the paper's queries use
// (ST_Contains, ST_Distance, ST_DWithin). Coordinates are planar (x, y);
// distances are Euclidean.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace recdb::spatial {

/// A 2-D point.
struct Point {
  double x = 0;
  double y = 0;

  bool operator==(const Point& o) const { return x == o.x && y == o.y; }
};

/// Axis-aligned bounding rectangle.
struct Rect {
  double min_x = 0, min_y = 0, max_x = 0, max_y = 0;

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }
  bool Intersects(const Rect& o) const {
    return min_x <= o.max_x && o.min_x <= max_x && min_y <= o.max_y &&
           o.min_y <= max_y;
  }
  /// Smallest rectangle covering both.
  Rect Union(const Rect& o) const;
  double Area() const { return (max_x - min_x) * (max_y - min_y); }
  /// Minimum distance from the rectangle to a point (0 if inside).
  double MinDistance(const Point& p) const;
};

enum class GeometryType { kPoint, kPolygon };

/// Immutable geometry: a point or a simple (non-self-intersecting) polygon.
class Geometry {
 public:
  static Geometry MakePoint(double x, double y);
  /// Ring need not repeat the first vertex; at least 3 vertices required
  /// (RECDB_DCHECK'd).
  static Geometry MakePolygon(std::vector<Point> ring);

  GeometryType type() const { return type_; }
  const Point& point() const {
    RECDB_DCHECK(type_ == GeometryType::kPoint);
    return ring_[0];
  }
  const std::vector<Point>& ring() const { return ring_; }

  /// Minimum bounding rectangle.
  Rect Mbr() const;

  /// WKT-style rendering, e.g. "POINT(1 2)" / "POLYGON((0 0, 1 0, 1 1))".
  std::string ToString() const;

  /// Parse the subset of WKT produced by ToString().
  static Result<Geometry> FromString(const std::string& wkt);

  bool operator==(const Geometry& o) const {
    return type_ == o.type_ && ring_ == o.ring_;
  }

 private:
  Geometry(GeometryType type, std::vector<Point> ring)
      : type_(type), ring_(std::move(ring)) {}

  GeometryType type_;
  std::vector<Point> ring_;  // single point for kPoint
};

/// Euclidean distance between two points.
double Distance(const Point& a, const Point& b);

/// ST_Distance: minimum distance between two geometries. Point-point and
/// point-polygon (0 if inside, else distance to the boundary) are supported.
double STDistance(const Geometry& a, const Geometry& b);

/// ST_Contains(container, contained): does `a` contain `b`?
/// Supported: polygon contains point (ray casting; boundary counts as
/// contained), polygon contains polygon (all vertices inside).
bool STContains(const Geometry& a, const Geometry& b);

/// ST_DWithin: are the two geometries within `dist` of each other?
bool STDWithin(const Geometry& a, const Geometry& b, double dist);

}  // namespace recdb::spatial
