// STR-packed R-tree over points, used by the POI case study to filter
// candidates by region or radius before recommendation scoring.
//
// Built once from a point set (Sort-Tile-Recursive bulk load); supports
// rectangle queries, radius queries and contains-polygon queries. Entries
// carry an int64 payload (the POI's item id).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "spatial/geometry.h"

namespace recdb::spatial {

struct RTreeEntry {
  Point point;
  int64_t id = 0;
};

class RTree {
 public:
  /// Bulk-load from entries. `max_fanout` controls node capacity (>= 2).
  explicit RTree(std::vector<RTreeEntry> entries, size_t max_fanout = 16);

  size_t size() const { return size_; }
  size_t Height() const;

  /// All ids whose point lies inside `rect` (inclusive bounds).
  std::vector<int64_t> QueryRect(const Rect& rect) const;

  /// All ids within `radius` of `center`.
  std::vector<int64_t> QueryRadius(const Point& center, double radius) const;

  /// All ids inside `polygon`.
  std::vector<int64_t> QueryPolygon(const Geometry& polygon) const;

  /// Visit entries in the rectangle; `fn` returns false to stop early.
  void Visit(const Rect& rect,
             const std::function<bool(const RTreeEntry&)>& fn) const;

  /// Nodes touched by the last Query* call (work accounting for tests).
  size_t last_nodes_visited() const { return nodes_visited_; }

 private:
  struct Node {
    Rect mbr;
    bool leaf = true;
    std::vector<RTreeEntry> entries;           // leaf
    std::vector<std::unique_ptr<Node>> children;  // internal
  };

  std::unique_ptr<Node> BulkLoad(std::vector<RTreeEntry> entries);
  std::unique_ptr<Node> PackLevel(std::vector<std::unique_ptr<Node>> nodes);

  size_t max_fanout_;
  size_t size_;
  std::unique_ptr<Node> root_;
  mutable size_t nodes_visited_ = 0;
};

}  // namespace recdb::spatial
