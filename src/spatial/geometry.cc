#include "spatial/geometry.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/string_util.h"

namespace recdb::spatial {

Rect Rect::Union(const Rect& o) const {
  return Rect{std::min(min_x, o.min_x), std::min(min_y, o.min_y),
              std::max(max_x, o.max_x), std::max(max_y, o.max_y)};
}

double Rect::MinDistance(const Point& p) const {
  double dx = 0, dy = 0;
  if (p.x < min_x)
    dx = min_x - p.x;
  else if (p.x > max_x)
    dx = p.x - max_x;
  if (p.y < min_y)
    dy = min_y - p.y;
  else if (p.y > max_y)
    dy = p.y - max_y;
  return std::sqrt(dx * dx + dy * dy);
}

Geometry Geometry::MakePoint(double x, double y) {
  return Geometry(GeometryType::kPoint, {Point{x, y}});
}

Geometry Geometry::MakePolygon(std::vector<Point> ring) {
  // Drop a repeated closing vertex if the caller supplied one.
  if (ring.size() > 1 && ring.front() == ring.back()) ring.pop_back();
  RECDB_DCHECK(ring.size() >= 3);
  return Geometry(GeometryType::kPolygon, std::move(ring));
}

Rect Geometry::Mbr() const {
  Rect r{std::numeric_limits<double>::max(),
         std::numeric_limits<double>::max(),
         std::numeric_limits<double>::lowest(),
         std::numeric_limits<double>::lowest()};
  for (const auto& p : ring_) {
    r.min_x = std::min(r.min_x, p.x);
    r.min_y = std::min(r.min_y, p.y);
    r.max_x = std::max(r.max_x, p.x);
    r.max_y = std::max(r.max_y, p.y);
  }
  return r;
}

std::string Geometry::ToString() const {
  std::ostringstream os;
  os.precision(17);
  if (type_ == GeometryType::kPoint) {
    os << "POINT(" << ring_[0].x << " " << ring_[0].y << ")";
  } else {
    os << "POLYGON((";
    for (size_t i = 0; i < ring_.size(); ++i) {
      if (i > 0) os << ", ";
      os << ring_[i].x << " " << ring_[i].y;
    }
    os << "))";
  }
  return os.str();
}

Result<Geometry> Geometry::FromString(const std::string& wkt) {
  std::string s = Trim(wkt);
  auto parse_points = [](std::string_view body) -> Result<std::vector<Point>> {
    std::vector<Point> pts;
    for (const auto& pair : Split(body, ',')) {
      std::istringstream is(Trim(pair));
      Point p;
      if (!(is >> p.x >> p.y)) {
        return Status::ParseError("bad WKT coordinate pair: " +
                                  std::string(pair));
      }
      pts.push_back(p);
    }
    return pts;
  };
  std::string upper = ToUpper(s);
  if (upper.rfind("POINT(", 0) == 0 && s.back() == ')') {
    RECDB_ASSIGN_OR_RETURN(auto pts,
                           parse_points(std::string_view(s).substr(
                               6, s.size() - 7)));
    if (pts.size() != 1) return Status::ParseError("POINT needs 1 coordinate");
    return MakePoint(pts[0].x, pts[0].y);
  }
  if (upper.rfind("POLYGON((", 0) == 0 && s.size() > 11 &&
      s.substr(s.size() - 2) == "))") {
    RECDB_ASSIGN_OR_RETURN(auto pts,
                           parse_points(std::string_view(s).substr(
                               9, s.size() - 11)));
    if (pts.size() < 3) return Status::ParseError("POLYGON needs >=3 points");
    return MakePolygon(std::move(pts));
  }
  return Status::ParseError("unrecognized WKT: " + s);
}

double Distance(const Point& a, const Point& b) {
  double dx = a.x - b.x, dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

namespace {

/// Distance from point p to segment ab.
double PointSegmentDistance(const Point& p, const Point& a, const Point& b) {
  double abx = b.x - a.x, aby = b.y - a.y;
  double len2 = abx * abx + aby * aby;
  if (len2 == 0) return Distance(p, a);
  double t = ((p.x - a.x) * abx + (p.y - a.y) * aby) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return Distance(p, Point{a.x + t * abx, a.y + t * aby});
}

/// Ray-casting point-in-polygon; points on the boundary count as inside.
bool PointInPolygon(const Point& p, const std::vector<Point>& ring) {
  bool inside = false;
  size_t n = ring.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& a = ring[j];
    const Point& b = ring[i];
    if (PointSegmentDistance(p, a, b) < 1e-12) return true;  // on boundary
    if ((b.y > p.y) != (a.y > p.y)) {
      double x_int = (a.x - b.x) * (p.y - b.y) / (a.y - b.y) + b.x;
      if (p.x < x_int) inside = !inside;
    }
  }
  return inside;
}

double PointPolygonDistance(const Point& p, const std::vector<Point>& ring) {
  if (PointInPolygon(p, ring)) return 0;
  double best = std::numeric_limits<double>::max();
  size_t n = ring.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    best = std::min(best, PointSegmentDistance(p, ring[j], ring[i]));
  }
  return best;
}

}  // namespace

double STDistance(const Geometry& a, const Geometry& b) {
  if (a.type() == GeometryType::kPoint && b.type() == GeometryType::kPoint) {
    return Distance(a.point(), b.point());
  }
  if (a.type() == GeometryType::kPoint) {
    return PointPolygonDistance(a.point(), b.ring());
  }
  if (b.type() == GeometryType::kPoint) {
    return PointPolygonDistance(b.point(), a.ring());
  }
  // Polygon-polygon: min over vertex-to-other-polygon distances (0 when any
  // vertex lies inside the other). Sufficient for the disjoint/overlapping
  // cases the case-study queries generate.
  double best = std::numeric_limits<double>::max();
  for (const auto& p : a.ring())
    best = std::min(best, PointPolygonDistance(p, b.ring()));
  for (const auto& p : b.ring())
    best = std::min(best, PointPolygonDistance(p, a.ring()));
  return best;
}

bool STContains(const Geometry& a, const Geometry& b) {
  if (a.type() != GeometryType::kPolygon) return false;
  if (b.type() == GeometryType::kPoint) {
    return PointInPolygon(b.point(), a.ring());
  }
  for (const auto& p : b.ring()) {
    if (!PointInPolygon(p, a.ring())) return false;
  }
  return true;
}

bool STDWithin(const Geometry& a, const Geometry& b, double dist) {
  return STDistance(a, b) <= dist;
}

}  // namespace recdb::spatial
