#include "ontop/external_recommender.h"

namespace recdb::ontop {

Status ExternalRecommender::Build() {
  auto snapshot = std::make_shared<RatingMatrix>(*ratings_);
  switch (opts_.algorithm) {
    case RecAlgorithm::kItemCosCF:
      model_ = ItemCFModel::Build(snapshot, false, opts_.sim_opts);
      break;
    case RecAlgorithm::kItemPearCF:
      model_ = ItemCFModel::Build(snapshot, true, opts_.sim_opts);
      break;
    case RecAlgorithm::kUserCosCF:
      model_ = UserCFModel::Build(snapshot, false, opts_.sim_opts);
      break;
    case RecAlgorithm::kUserPearCF:
      model_ = UserCFModel::Build(snapshot, true, opts_.sim_opts);
      break;
    case RecAlgorithm::kSVD:
      model_ = SvdModel::Build(snapshot, opts_.svd_opts);
      break;
  }
  if (model_ == nullptr) return Status::Internal("external model build failed");
  return Status::OK();
}

double ExternalRecommender::Predict(int64_t user_id, int64_t item_id) const {
  RECDB_DCHECK(model_ != nullptr);
  return model_->Predict(user_id, item_id);
}

std::vector<std::pair<int64_t, double>> ExternalRecommender::ScoreAllForUser(
    int64_t user_id) const {
  RECDB_DCHECK(model_ != nullptr);
  const RatingMatrix& r = model_->ratings();
  std::vector<std::pair<int64_t, double>> out;
  auto u = r.UserIndex(user_id);
  if (!u) return out;
  const auto& rated = r.UserVector(*u);
  const size_t ni = r.NumItems();

  // Collect the user's unseen items, then score them in one PredictBatch —
  // the same batch kernels the in-engine operators use, so the RecDB /
  // OnTopDB comparison stays an architecture comparison.
  std::vector<int64_t> unseen;
  unseen.reserve(ni - rated.size());
  size_t rated_pos = 0;
  for (size_t i = 0; i < ni; ++i) {
    while (rated_pos < rated.size() &&
           rated[rated_pos].idx < static_cast<int32_t>(i)) {
      ++rated_pos;
    }
    if (rated_pos < rated.size() &&
        rated[rated_pos].idx == static_cast<int32_t>(i)) {
      continue;  // unseen items only
    }
    unseen.push_back(r.ItemIdAt(static_cast<int32_t>(i)));
  }
  std::vector<double> scores(unseen.size(), 0.0);
  model_->PredictBatch(user_id, unseen, scores);
  out.reserve(unseen.size());
  for (size_t i = 0; i < unseen.size(); ++i) {
    out.emplace_back(unseen[i], scores[i]);
  }
  return out;
}

}  // namespace recdb::ontop
