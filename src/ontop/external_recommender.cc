#include "ontop/external_recommender.h"

#include <cmath>

namespace recdb::ontop {

Status ExternalRecommender::Build() {
  auto snapshot = std::make_shared<RatingMatrix>(*ratings_);
  switch (opts_.algorithm) {
    case RecAlgorithm::kItemCosCF:
      model_ = ItemCFModel::Build(snapshot, false, opts_.sim_opts);
      break;
    case RecAlgorithm::kItemPearCF:
      model_ = ItemCFModel::Build(snapshot, true, opts_.sim_opts);
      break;
    case RecAlgorithm::kUserCosCF:
      model_ = UserCFModel::Build(snapshot, false, opts_.sim_opts);
      break;
    case RecAlgorithm::kUserPearCF:
      model_ = UserCFModel::Build(snapshot, true, opts_.sim_opts);
      break;
    case RecAlgorithm::kSVD:
      model_ = SvdModel::Build(snapshot, opts_.svd_opts);
      break;
  }
  if (model_ == nullptr) return Status::Internal("external model build failed");
  return Status::OK();
}

double ExternalRecommender::Predict(int64_t user_id, int64_t item_id) const {
  RECDB_DCHECK(model_ != nullptr);
  return model_->Predict(user_id, item_id);
}

std::vector<std::pair<int64_t, double>> ExternalRecommender::ScoreAllForUser(
    int64_t user_id) const {
  RECDB_DCHECK(model_ != nullptr);
  const RatingMatrix& r = model_->ratings();
  std::vector<std::pair<int64_t, double>> out;
  auto u = r.UserIndex(user_id);
  if (!u) return out;
  const auto& rated = r.UserVector(*u);
  const size_t ni = r.NumItems();

  std::vector<double> num(ni, 0.0), den(ni, 0.0);
  bool accumulated = false;

  switch (model_->algorithm()) {
    case RecAlgorithm::kItemCosCF:
    case RecAlgorithm::kItemPearCF: {
      // For each rated item l, scatter sim(i, l) * r_ul into every
      // neighbor i — one pass over Σ|N(l)| instead of per-pair intersection.
      const auto* m = static_cast<const ItemCFModel*>(model_.get());
      for (const auto& e : rated) {
        for (const auto& nb : m->NeighborhoodAt(e.idx)) {
          num[nb.idx] += static_cast<double>(nb.sim) * e.rating;
          den[nb.idx] += std::fabs(static_cast<double>(nb.sim));
        }
      }
      accumulated = true;
      break;
    }
    case RecAlgorithm::kUserCosCF:
    case RecAlgorithm::kUserPearCF: {
      // For each similar user v, scatter sim(u, v) * r_vi into every item v
      // rated.
      const auto* m = static_cast<const UserCFModel*>(model_.get());
      for (const auto& nb : m->NeighborhoodAt(*u)) {
        for (const auto& e : r.UserVector(nb.idx)) {
          num[e.idx] += static_cast<double>(nb.sim) * e.rating;
          den[e.idx] += std::fabs(static_cast<double>(nb.sim));
        }
      }
      accumulated = true;
      break;
    }
    case RecAlgorithm::kSVD:
      break;  // handled below: plain dot products
  }

  size_t rated_pos = 0;
  out.reserve(ni - rated.size());
  for (size_t i = 0; i < ni; ++i) {
    while (rated_pos < rated.size() &&
           rated[rated_pos].idx < static_cast<int32_t>(i)) {
      ++rated_pos;
    }
    if (rated_pos < rated.size() &&
        rated[rated_pos].idx == static_cast<int32_t>(i)) {
      continue;  // unseen items only
    }
    int64_t item_id = r.ItemIdAt(static_cast<int32_t>(i));
    double score;
    if (accumulated) {
      score = den[i] == 0 ? 0 : num[i] / den[i];
    } else {
      score = model_->Predict(user_id, item_id);
    }
    out.emplace_back(item_id, score);
  }
  return out;
}

}  // namespace recdb::ontop
