// ExternalRecommender: the standalone recommendation library that the
// OnTopDB baseline runs *outside* the database engine (the paper's
// LensKit/Mahout role).
//
// Deliberately shares recdb's model math (so RecDB-vs-OnTopDB comparisons
// isolate the *architecture* — where the computation runs and how much of it
// can be pruned — rather than implementation quality), but adds the batch
// per-user scoring an offline library would use.
#pragma once

#include <memory>
#include <vector>

#include "recommender/cf_model.h"
#include "recommender/svd_model.h"

namespace recdb::ontop {

struct ExternalRecommenderOptions {
  RecAlgorithm algorithm = RecAlgorithm::kItemCosCF;
  SimilarityOptions sim_opts;
  SvdOptions svd_opts;
};

class ExternalRecommender {
 public:
  explicit ExternalRecommender(ExternalRecommenderOptions opts = {})
      : opts_(opts), ratings_(std::make_shared<RatingMatrix>()) {}

  /// Ingest one extracted rating triple.
  void AddRating(int64_t user_id, int64_t item_id, double rating) {
    ratings_->Add(user_id, item_id, rating);
  }

  /// Train the model on everything ingested so far.
  Status Build();

  bool built() const { return model_ != nullptr; }
  const RatingMatrix& ratings() const { return *ratings_; }
  const RecModel* model() const { return model_.get(); }

  /// Single-pair prediction (same semantics as the in-engine operators).
  double Predict(int64_t user_id, int64_t item_id) const;

  /// Batch-score every item the user has not rated (the offline-library
  /// fast path: one accumulation pass instead of per-pair intersection).
  /// Returns (item id, score) pairs, item order unspecified.
  std::vector<std::pair<int64_t, double>> ScoreAllForUser(
      int64_t user_id) const;

 private:
  ExternalRecommenderOptions opts_;
  std::shared_ptr<RatingMatrix> ratings_;
  std::unique_ptr<RecModel> model_;
};

}  // namespace recdb::ontop
