#include "ontop/ontop_engine.h"

#include "common/string_util.h"

namespace recdb::ontop {

OnTopEngine::OnTopEngine(RecDB* db, std::string ratings_table,
                         std::string user_col, std::string item_col,
                         std::string rating_col, OnTopOptions options)
    : db_(db),
      ratings_table_(std::move(ratings_table)),
      user_col_(std::move(user_col)),
      item_col_(std::move(item_col)),
      rating_col_(std::move(rating_col)),
      options_(options),
      pred_table_(ratings_table_ + "_ontop_pred"),
      rec_(options.rec) {}

Status OnTopEngine::Extract() {
  // Step 1: pull every rating out through the SQL layer (full scan +
  // materialization — the extraction overhead the paper charges OnTopDB).
  rec_ = ExternalRecommender(options_.rec);
  RECDB_ASSIGN_OR_RETURN(
      ResultSet rows,
      db_->Execute(StringFormat("SELECT %s, %s, %s FROM %s",
                                user_col_.c_str(), item_col_.c_str(),
                                rating_col_.c_str(), ratings_table_.c_str())));
  for (const auto& row : rows.rows) {
    const Value& u = row.At(0);
    const Value& i = row.At(1);
    const Value& r = row.At(2);
    if (u.is_null() || i.is_null() || r.is_null()) continue;
    rec_.AddRating(u.AsInt(), i.AsInt(), r.AsNumeric());
  }
  return Status::OK();
}

Status OnTopEngine::BuildModel() {
  RECDB_RETURN_NOT_OK(Extract());
  RECDB_RETURN_NOT_OK(rec_.Build());
  model_ready_ = true;
  return Status::OK();
}

Status OnTopEngine::RecomputeAndLoad() {
  if (!model_ready_) {
    return Status::ExecutionError("OnTopEngine: BuildModel() first");
  }
  // Step 3 staging: (re)create the predictions table.
  (void)db_->catalog()->DropTable(pred_table_);
  RECDB_RETURN_NOT_OK(
      db_->Execute(StringFormat("CREATE TABLE %s (%s INT, %s INT, %s DOUBLE)",
                                pred_table_.c_str(), user_col_.c_str(),
                                item_col_.c_str(), rating_col_.c_str()))
          .status());
  // Step 2: the external library scores every user over every unseen item —
  // it has no way to know which users/items the SQL on top will keep.
  std::vector<std::vector<Value>> batch;
  batch.reserve(4096);
  for (int64_t user_id : rec_.ratings().user_ids()) {
    for (const auto& [item_id, score] : rec_.ScoreAllForUser(user_id)) {
      batch.push_back(
          {Value::Int(user_id), Value::Int(item_id), Value::Double(score)});
      if (batch.size() >= 4096) {
        RECDB_RETURN_NOT_OK(db_->BulkInsert(pred_table_, batch));
        batch.clear();
      }
    }
  }
  if (!batch.empty()) {
    RECDB_RETURN_NOT_OK(db_->BulkInsert(pred_table_, batch));
  }
  return Status::OK();
}

Result<ResultSet> OnTopEngine::Execute(const std::string& residual_sql) {
  if (options_.rebuild_per_query || !model_ready_) {
    RECDB_RETURN_NOT_OK(BuildModel());
  }
  RECDB_RETURN_NOT_OK(RecomputeAndLoad());
  // Step 4: the residual relational work runs inside the database.
  return db_->Execute(residual_sql);
}

}  // namespace recdb::ontop
