// OnTopEngine: the classic "recommendation on top of the DBMS" architecture
// the paper benchmarks RecDB against (Section I / VI).
//
// Per recommendation request it performs the full OnTopDB workflow:
//   1. EXTRACT  — pull the ratings table out of the database via SQL
//   2. COMPUTE  — run the external recommender over *all* users and items
//                 (the library cannot see the query's filters)
//   3. LOAD     — bulk-insert every predicted score back into a database
//                 table (<ratings_table>_ontop_pred)
//   4. QUERY    — run the request's residual SQL over that table
// RecDB answers the same request with a single recommendation-aware query
// plan; the latency gap between the two paths is the paper's headline
// result.
#pragma once

#include <string>

#include "api/recdb.h"
#include "ontop/external_recommender.h"

namespace recdb::ontop {

struct OnTopOptions {
  ExternalRecommenderOptions rec;
  /// Re-extract and rebuild the model on every request (fully stateless
  /// OnTopDB). When false, extraction/build happen once and each request
  /// pays compute + load + query only — the favourable-to-baseline setting
  /// our benchmarks use.
  bool rebuild_per_query = false;
};

class OnTopEngine {
 public:
  /// `db` must outlive the engine. Column names identify the ratings data.
  OnTopEngine(RecDB* db, std::string ratings_table, std::string user_col,
              std::string item_col, std::string rating_col,
              OnTopOptions options = {});

  /// The table predictions get loaded into; residual SQL queries this.
  /// Schema: (user_col INT, item_col INT, rating_col DOUBLE).
  const std::string& predictions_table() const { return pred_table_; }

  /// Steps 1-2 (extract + build). Safe to call again after new inserts.
  Status BuildModel();

  /// Execute one recommendation request end-to-end (steps 1-4 as
  /// configured). `residual_sql` must reference predictions_table().
  Result<ResultSet> Execute(const std::string& residual_sql);

  /// Steps 2-3 only: recompute every user's scores and reload the
  /// predictions table. Exposed so benchmarks can time phases separately.
  Status RecomputeAndLoad();

  const ExternalRecommender& recommender() const { return rec_; }

 private:
  Status Extract();

  RecDB* db_;
  std::string ratings_table_;
  std::string user_col_;
  std::string item_col_;
  std::string rating_col_;
  OnTopOptions options_;
  std::string pred_table_;
  ExternalRecommender rec_;
  bool model_ready_ = false;
};

}  // namespace recdb::ontop
