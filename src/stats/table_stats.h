// Table statistics for cost-based planning (collected by ANALYZE).
//
// Per table: row count at analysis time. Per column: null count, distinct
// count, numeric min/max and an equi-width histogram. The planner turns
// these into predicate selectivities; every estimator degrades to a sane
// constant when statistics are missing, empty, or stale, and none of them
// can divide by zero.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "parser/ast.h"  // BinaryOp

namespace recdb {

/// Equi-width histogram over a numeric column's non-null values.
class Histogram {
 public:
  static constexpr size_t kDefaultBuckets = 32;

  /// Build from raw values (empty input yields an empty histogram).
  static Histogram Build(const std::vector<double>& values,
                         size_t num_buckets = kDefaultBuckets);

  bool empty() const { return total_ == 0; }
  double min() const { return min_; }
  double max() const { return max_; }
  uint64_t total() const { return total_; }
  const std::vector<uint64_t>& buckets() const { return buckets_; }

  /// Estimated fraction of values strictly below `x` (linear interpolation
  /// inside the containing bucket). Clamped to [0, 1]; 0 on an empty
  /// histogram.
  double FractionBelow(double x) const;

  /// Estimated fraction of values equal to `x` (its bucket's share spread
  /// over the bucket width); falls back to 0 outside the range.
  double FractionEqual(double x) const;

  void Serialize(ByteWriter* w) const;
  static Result<Histogram> Deserialize(ByteReader* r);

 private:
  double min_ = 0;
  double max_ = 0;
  uint64_t total_ = 0;
  std::vector<uint64_t> buckets_;
};

/// Statistics of one column, as of the last ANALYZE.
struct ColumnStats {
  uint64_t num_rows = 0;  // rows scanned (table row count at ANALYZE time)
  uint64_t null_count = 0;
  uint64_t distinct_count = 0;
  bool has_range = false;  // numeric min/max below are valid
  double min = 0;
  double max = 0;
  std::optional<Histogram> histogram;  // numeric columns with values only

  double NonNullFraction() const {
    if (num_rows == 0) return 1.0;
    return static_cast<double>(num_rows - null_count) /
           static_cast<double>(num_rows);
  }

  /// Selectivity of `col = const`. Uniformity over distinct values.
  double EqSelectivity() const;

  /// Selectivity of `col <op> x` for </<=/>/>= against a numeric constant.
  double RangeSelectivity(BinaryOp op, double x) const;

  /// Selectivity of `col IN (n values)` (n * eq, capped).
  double InListSelectivity(size_t n) const;

  void Serialize(ByteWriter* w) const;
  static Result<ColumnStats> Deserialize(ByteReader* r);
};

/// Statistics of one table (parallel to its schema's columns).
struct TableStats {
  uint64_t row_count = 0;
  std::vector<ColumnStats> columns;

  void Serialize(ByteWriter* w) const;
  static Result<TableStats> Deserialize(ByteReader* r);
};

/// Default selectivities used when no statistics apply.
inline constexpr double kDefaultEqSelectivity = 0.1;
inline constexpr double kDefaultRangeSelectivity = 1.0 / 3.0;
inline constexpr double kDefaultSelectivity = 0.25;

}  // namespace recdb
