// ANALYZE: one sequential scan of a table heap that collects TableStats
// (row count; per-column nulls, distincts, min/max, equi-width histogram).
#pragma once

#include "stats/table_stats.h"
#include "storage/catalog.h"

namespace recdb {

/// Scan `table`'s heap once and compute fresh statistics.
Result<TableStats> AnalyzeTable(const TableInfo& table);

}  // namespace recdb
