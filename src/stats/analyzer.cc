#include "stats/analyzer.h"

#include <unordered_set>

#include "types/value.h"

namespace recdb {

Result<TableStats> AnalyzeTable(const TableInfo& table) {
  const size_t ncols = table.schema.NumColumns();
  TableStats stats;
  stats.columns.resize(ncols);

  // Distinct tracking and numeric value collection per column.
  std::vector<std::unordered_set<Value, ValueHash>> distinct(ncols);
  std::vector<std::vector<double>> numerics(ncols);

  auto it = table.heap->Begin(ncols);
  while (true) {
    RECDB_ASSIGN_OR_RETURN(auto next, it.Next());
    if (!next.has_value()) break;
    const Tuple& t = next->second;
    ++stats.row_count;
    for (size_t c = 0; c < ncols; ++c) {
      const Value& v = t.At(c);
      if (v.is_null()) {
        ++stats.columns[c].null_count;
        continue;
      }
      distinct[c].insert(v);
      if (v.is_numeric()) numerics[c].push_back(v.AsNumeric());
    }
  }

  for (size_t c = 0; c < ncols; ++c) {
    ColumnStats& col = stats.columns[c];
    col.num_rows = stats.row_count;
    col.distinct_count = distinct[c].size();
    if (!numerics[c].empty()) {
      Histogram h = Histogram::Build(numerics[c]);
      col.has_range = true;
      col.min = h.min();
      col.max = h.max();
      col.histogram = std::move(h);
    }
  }
  return stats;
}

}  // namespace recdb
