#include "stats/table_stats.h"

#include <algorithm>
#include <cmath>

namespace recdb {

Histogram Histogram::Build(const std::vector<double>& values,
                           size_t num_buckets) {
  Histogram h;
  if (values.empty() || num_buckets == 0) return h;
  auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  h.min_ = *lo;
  h.max_ = *hi;
  h.total_ = values.size();
  if (h.min_ == h.max_) {
    // Single-value column: one bucket holding everything. Width-zero ranges
    // would otherwise divide by zero in the interpolators.
    h.buckets_.assign(1, h.total_);
    return h;
  }
  h.buckets_.assign(num_buckets, 0);
  double width = (h.max_ - h.min_) / static_cast<double>(num_buckets);
  for (double v : values) {
    size_t b = static_cast<size_t>((v - h.min_) / width);
    if (b >= num_buckets) b = num_buckets - 1;  // v == max
    ++h.buckets_[b];
  }
  return h;
}

double Histogram::FractionBelow(double x) const {
  if (total_ == 0) return 0;
  if (x <= min_) return 0;
  if (x > max_) return 1.0;
  if (min_ == max_) return 0;  // all values equal; x in (min, max] => none below
  double width = (max_ - min_) / static_cast<double>(buckets_.size());
  size_t b = static_cast<size_t>((x - min_) / width);
  if (b >= buckets_.size()) b = buckets_.size() - 1;
  uint64_t below = 0;
  for (size_t i = 0; i < b; ++i) below += buckets_[i];
  double in_bucket_frac = (x - (min_ + b * width)) / width;
  double est = static_cast<double>(below) +
               in_bucket_frac * static_cast<double>(buckets_[b]);
  return std::clamp(est / static_cast<double>(total_), 0.0, 1.0);
}

double Histogram::FractionEqual(double x) const {
  if (total_ == 0) return 0;
  if (x < min_ || x > max_) return 0;
  if (min_ == max_) return 1.0;
  double width = (max_ - min_) / static_cast<double>(buckets_.size());
  size_t b = static_cast<size_t>((x - min_) / width);
  if (b >= buckets_.size()) b = buckets_.size() - 1;
  // The bucket's mass spread uniformly across its width, one "point" worth.
  double bucket_frac =
      static_cast<double>(buckets_[b]) / static_cast<double>(total_);
  return std::clamp(bucket_frac / std::max(width, 1.0), 0.0, 1.0);
}

void Histogram::Serialize(ByteWriter* w) const {
  w->Num(min_);
  w->Num(max_);
  w->Num(total_);
  w->Num(static_cast<uint32_t>(buckets_.size()));
  for (uint64_t b : buckets_) w->Num(b);
}

Result<Histogram> Histogram::Deserialize(ByteReader* r) {
  Histogram h;
  RECDB_ASSIGN_OR_RETURN(h.min_, r->Num<double>());
  RECDB_ASSIGN_OR_RETURN(h.max_, r->Num<double>());
  RECDB_ASSIGN_OR_RETURN(h.total_, r->Num<uint64_t>());
  RECDB_ASSIGN_OR_RETURN(uint32_t n, r->Num<uint32_t>());
  if (n > (1u << 16)) return Status::DataLoss("histogram too wide");
  h.buckets_.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    RECDB_ASSIGN_OR_RETURN(h.buckets_[i], r->Num<uint64_t>());
  }
  return h;
}

double ColumnStats::EqSelectivity() const {
  if (num_rows == 0) return 1.0;  // empty table: anything * 0 rows is 0
  if (distinct_count == 0) return kDefaultEqSelectivity;
  return NonNullFraction() / static_cast<double>(distinct_count);
}

double ColumnStats::RangeSelectivity(BinaryOp op, double x) const {
  if (num_rows == 0) return 1.0;
  double below;
  if (histogram.has_value() && !histogram->empty()) {
    below = histogram->FractionBelow(x);
  } else if (has_range && max > min) {
    below = std::clamp((x - min) / (max - min), 0.0, 1.0);
  } else if (has_range) {
    below = x > min ? 1.0 : 0.0;  // single-value column
  } else {
    return kDefaultRangeSelectivity;
  }
  double eq = histogram.has_value() ? histogram->FractionEqual(x) : 0.0;
  double frac;
  switch (op) {
    case BinaryOp::kLt:
      frac = below;
      break;
    case BinaryOp::kLe:
      frac = below + eq;
      break;
    case BinaryOp::kGt:
      frac = 1.0 - below - eq;
      break;
    case BinaryOp::kGe:
      frac = 1.0 - below;
      break;
    default:
      return kDefaultRangeSelectivity;
  }
  return std::clamp(frac, 0.0, 1.0) * NonNullFraction();
}

double ColumnStats::InListSelectivity(size_t n) const {
  return std::min(1.0, static_cast<double>(n) * EqSelectivity());
}

void ColumnStats::Serialize(ByteWriter* w) const {
  w->Num(num_rows);
  w->Num(null_count);
  w->Num(distinct_count);
  w->Num(static_cast<uint8_t>(has_range ? 1 : 0));
  w->Num(min);
  w->Num(max);
  w->Num(static_cast<uint8_t>(histogram.has_value() ? 1 : 0));
  if (histogram.has_value()) histogram->Serialize(w);
}

Result<ColumnStats> ColumnStats::Deserialize(ByteReader* r) {
  ColumnStats c;
  RECDB_ASSIGN_OR_RETURN(c.num_rows, r->Num<uint64_t>());
  RECDB_ASSIGN_OR_RETURN(c.null_count, r->Num<uint64_t>());
  RECDB_ASSIGN_OR_RETURN(c.distinct_count, r->Num<uint64_t>());
  RECDB_ASSIGN_OR_RETURN(uint8_t has_range, r->Num<uint8_t>());
  c.has_range = has_range != 0;
  RECDB_ASSIGN_OR_RETURN(c.min, r->Num<double>());
  RECDB_ASSIGN_OR_RETURN(c.max, r->Num<double>());
  RECDB_ASSIGN_OR_RETURN(uint8_t has_hist, r->Num<uint8_t>());
  if (has_hist != 0) {
    RECDB_ASSIGN_OR_RETURN(auto h, Histogram::Deserialize(r));
    c.histogram = std::move(h);
  }
  return c;
}

void TableStats::Serialize(ByteWriter* w) const {
  w->Num(row_count);
  w->Num(static_cast<uint32_t>(columns.size()));
  for (const auto& c : columns) c.Serialize(w);
}

Result<TableStats> TableStats::Deserialize(ByteReader* r) {
  TableStats t;
  RECDB_ASSIGN_OR_RETURN(t.row_count, r->Num<uint64_t>());
  RECDB_ASSIGN_OR_RETURN(uint32_t n, r->Num<uint32_t>());
  if (n > (1u << 12)) return Status::DataLoss("table stats too wide");
  for (uint32_t i = 0; i < n; ++i) {
    RECDB_ASSIGN_OR_RETURN(auto c, ColumnStats::Deserialize(r));
    t.columns.push_back(std::move(c));
  }
  return t;
}

}  // namespace recdb
