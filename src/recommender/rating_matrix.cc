#include "recommender/rating_matrix.h"

#include <algorithm>
#include <utility>

namespace recdb {

int32_t RatingMatrix::InternUser(int64_t user_id) {
  auto it = user_index_.find(user_id);
  if (it != user_index_.end()) return it->second;
  int32_t idx = static_cast<int32_t>(user_ids_.size());
  user_ids_.push_back(user_id);
  user_index_[user_id] = idx;
  by_user_.emplace_back();
  return idx;
}

int32_t RatingMatrix::InternItem(int64_t item_id) {
  auto it = item_index_.find(item_id);
  if (it != item_index_.end()) return it->second;
  int32_t idx = static_cast<int32_t>(item_ids_.size());
  item_ids_.push_back(item_id);
  item_index_[item_id] = idx;
  by_item_.emplace_back();
  return idx;
}

void RatingMatrix::Upsert(std::vector<RatingEntry>* vec, int32_t idx,
                          double rating, bool* was_new) {
  auto it = std::lower_bound(
      vec->begin(), vec->end(), idx,
      [](const RatingEntry& e, int32_t i) { return e.idx < i; });
  if (it != vec->end() && it->idx == idx) {
    it->rating = rating;
    *was_new = false;
    return;
  }
  vec->insert(it, RatingEntry{idx, rating});
  *was_new = true;
}

namespace {

FlatCsr BuildCsr(const std::vector<std::vector<RatingEntry>>& rows) {
  FlatCsr csr;
  size_t nnz = 0;
  for (const auto& row : rows) nnz += row.size();
  csr.offsets.reserve(rows.size() + 1);
  csr.idx.reserve(nnz);
  csr.rating.reserve(nnz);
  csr.offsets.push_back(0);
  for (const auto& row : rows) {
    for (const auto& e : row) {
      csr.idx.push_back(e.idx);
      csr.rating.push_back(e.rating);
    }
    csr.offsets.push_back(static_cast<int64_t>(csr.idx.size()));
  }
  return csr;
}

}  // namespace

void RatingMatrix::Freeze() {
  if (frozen_) {
    // An already-frozen matrix with a pending overlay merges it; without
    // one there is nothing to do (full rebuilds call Freeze first so they
    // always train over flat merged state).
    if (has_delta()) Refreeze();
    return;
  }
  user_csr_ = BuildCsr(by_user_);
  item_csr_ = BuildCsr(by_item_);
  frozen_ = true;
  obs::Count(obs::Counter::kIngestCsrBuilds);
}

RatingMatrix::MergedCsr RatingMatrix::BuildMergedCsr() const {
  MergedCsr merged;
  merged.user = BuildCsr(by_user_);
  merged.item = BuildCsr(by_item_);
  merged.version = version_;
  obs::Count(obs::Counter::kIngestCsrBuilds);
  return merged;
}

bool RatingMatrix::CommitRefreeze(MergedCsr&& merged) {
  if (merged.version != version_) return false;
  user_csr_ = std::move(merged.user);
  item_csr_ = std::move(merged.item);
  frozen_ = true;
  ClearOverlay();
  return true;
}

void RatingMatrix::Refreeze() {
  if (frozen_ && !has_delta()) return;
  user_csr_ = BuildCsr(by_user_);
  item_csr_ = BuildCsr(by_item_);
  frozen_ = true;
  ClearOverlay();
  obs::Count(obs::Counter::kIngestCsrBuilds);
}

void RatingMatrix::ClearOverlay() {
  overlay_active_ = false;
  user_side_.clear();
  item_side_.clear();
  tombstones_.clear();
  delta_ops_.clear();
}

void RatingMatrix::RefreshUserSideRow(int32_t user_idx) {
  overlay_active_ = true;
  SideRow& ur = user_side_[user_idx];
  const auto& uvec = by_user_[user_idx];
  ur.idx.resize(uvec.size());
  ur.rating.resize(uvec.size());
  for (size_t k = 0; k < uvec.size(); ++k) {
    ur.idx[k] = uvec[k].idx;
    ur.rating[k] = uvec[k].rating;
  }
}

void RatingMatrix::RefreshItemSideRow(int32_t item_idx) {
  overlay_active_ = true;
  SideRow& ir = item_side_[item_idx];
  const auto& ivec = by_item_[item_idx];
  ir.idx.resize(ivec.size());
  ir.rating.resize(ivec.size());
  for (size_t k = 0; k < ivec.size(); ++k) {
    ir.idx[k] = ivec[k].idx;
    ir.rating[k] = ivec[k].rating;
  }
}

void RatingMatrix::RefreshSideRows(int32_t user_idx, int32_t item_idx) {
  RefreshUserSideRow(user_idx);
  RefreshItemSideRow(item_idx);
}

RatingChange RatingMatrix::DoAdd(int64_t user_id, int64_t item_id,
                                 double rating, int32_t* out_u,
                                 int32_t* out_i) {
  int32_t u = InternUser(user_id);
  int32_t i = InternItem(item_id);
  *out_u = u;
  *out_i = i;
  auto existing = GetByIndex(u, i);
  if (existing && *existing == rating) {
    // Same-value overwrite: a complete no-op. Critically this must not
    // invalidate frozen state, and must not touch rating_sum_ — in IEEE
    // arithmetic (sum - old) + new can differ from sum even when old == new,
    // so "adjusting by zero" would silently drift GlobalMean().
    return RatingChange::kUnchanged;
  }
  bool new_in_user = false, new_in_item = false;
  Upsert(&by_user_[u], i, rating, &new_in_user);
  Upsert(&by_item_[i], u, rating, &new_in_item);
  RECDB_DCHECK(new_in_user == new_in_item);
  if (new_in_user) {
    ++num_ratings_;
    rating_sum_ += rating;
  } else {
    // Overwrite with a different value: subtract old, add new.
    rating_sum_ += rating - *existing;
  }
  if (frozen_) {
    delta_ops_.push_back(DeltaOp{new_in_user ? DeltaOp::Kind::kAdd
                                             : DeltaOp::Kind::kOverwrite,
                                 u, i});
    tombstones_.erase(PairKey(u, i));  // a re-add revives a removed pair
  }
  return new_in_user ? RatingChange::kInserted : RatingChange::kOverwritten;
}

RatingChange RatingMatrix::Add(int64_t user_id, int64_t item_id,
                               double rating) {
  int32_t u = -1, i = -1;
  RatingChange change = DoAdd(user_id, item_id, rating, &u, &i);
  if (change == RatingChange::kUnchanged) return change;
  ++version_;
  if (frozen_) RefreshSideRows(u, i);
  return change;
}

bool RatingMatrix::DoRemove(int64_t user_id, int64_t item_id, int32_t* out_u,
                            int32_t* out_i) {
  // A Remove of an absent pair mutates nothing: the frozen state stays
  // valid and no delta op is logged.
  auto u = UserIndex(user_id);
  auto i = ItemIndex(item_id);
  if (!u || !i) return false;
  *out_u = *u;
  *out_i = *i;
  auto erase_from = [](std::vector<RatingEntry>* vec, int32_t idx) {
    auto it = std::lower_bound(
        vec->begin(), vec->end(), idx,
        [](const RatingEntry& e, int32_t v) { return e.idx < v; });
    if (it == vec->end() || it->idx != idx) return false;
    vec->erase(it);
    return true;
  };
  auto existing = GetByIndex(*u, *i);
  if (!existing) return false;
  bool a = erase_from(&by_user_[*u], *i);
  bool b = erase_from(&by_item_[*i], *u);
  RECDB_DCHECK(a && b);
  --num_ratings_;
  rating_sum_ -= *existing;
  if (frozen_) {
    delta_ops_.push_back(DeltaOp{DeltaOp::Kind::kRemove, *u, *i});
    tombstones_.insert(PairKey(*u, *i));
  }
  return true;
}

bool RatingMatrix::Remove(int64_t user_id, int64_t item_id) {
  int32_t u = -1, i = -1;
  if (!DoRemove(user_id, item_id, &u, &i)) return false;
  ++version_;
  if (frozen_) RefreshSideRows(u, i);
  return true;
}

RatingMatrix::BatchResult RatingMatrix::ApplyBatch(
    const std::vector<BatchRatingOp>& ops) {
  BatchResult res;
  res.effective.assign(ops.size(), 0);
  std::vector<int32_t> users, items;
  for (size_t k = 0; k < ops.size(); ++k) {
    const BatchRatingOp& op = ops[k];
    int32_t u = -1, i = -1;
    bool effective = false;
    if (op.remove) {
      effective = DoRemove(op.user_id, op.item_id, &u, &i);
      if (effective) ++res.removed;
    } else {
      switch (DoAdd(op.user_id, op.item_id, op.rating, &u, &i)) {
        case RatingChange::kInserted:
          ++res.inserted;
          effective = true;
          break;
        case RatingChange::kOverwritten:
          ++res.overwritten;
          effective = true;
          break;
        case RatingChange::kUnchanged:
          break;
      }
    }
    if (!effective) {
      ++res.noops;
      continue;
    }
    res.effective[k] = 1;
    users.push_back(u);
    items.push_back(i);
  }
  if (res.effective_ops() == 0) return res;
  // One version bump and one side-row copy per touched row for the whole
  // statement — the point of the batched path. Side rows are full merged
  // copies, so refreshing them once against the final state is identical
  // to refreshing after every op.
  ++version_;
  if (frozen_) {
    std::sort(users.begin(), users.end());
    users.erase(std::unique(users.begin(), users.end()), users.end());
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    for (int32_t u : users) RefreshUserSideRow(u);
    for (int32_t i : items) RefreshItemSideRow(i);
  }
  return res;
}

std::optional<int32_t> RatingMatrix::UserIndex(int64_t user_id) const {
  auto it = user_index_.find(user_id);
  if (it == user_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<int32_t> RatingMatrix::ItemIndex(int64_t item_id) const {
  auto it = item_index_.find(item_id);
  if (it == item_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<double> RatingMatrix::GetByIndex(int32_t user_idx,
                                               int32_t item_idx) const {
  const auto& vec = by_user_[user_idx];
  auto it = std::lower_bound(
      vec.begin(), vec.end(), item_idx,
      [](const RatingEntry& e, int32_t i) { return e.idx < i; });
  if (it != vec.end() && it->idx == item_idx) return it->rating;
  return std::nullopt;
}

std::optional<double> RatingMatrix::Get(int64_t user_id,
                                        int64_t item_id) const {
  auto u = UserIndex(user_id);
  auto i = ItemIndex(item_id);
  if (!u || !i) return std::nullopt;
  return GetByIndex(*u, *i);
}

double RatingMatrix::GlobalMean() const {
  if (num_ratings_ == 0) return 0;
  return rating_sum_ / static_cast<double>(num_ratings_);
}

double RatingMatrix::UserMean(int32_t user_idx) const {
  const auto& vec = by_user_[user_idx];
  if (vec.empty()) return 0;
  double s = 0;
  for (const auto& e : vec) s += e.rating;
  return s / static_cast<double>(vec.size());
}

double RatingMatrix::ItemMean(int32_t item_idx) const {
  const auto& vec = by_item_[item_idx];
  if (vec.empty()) return 0;
  double s = 0;
  for (const auto& e : vec) s += e.rating;
  return s / static_cast<double>(vec.size());
}

size_t RatingMatrix::CsrApproxBytes() const {
  if (!frozen_) return 0;
  size_t total = user_csr_.ApproxBytes() + item_csr_.ApproxBytes();
  for (const auto& [idx, row] : user_side_) {
    total += sizeof(int32_t) + row.idx.capacity() * sizeof(int32_t) +
             row.rating.capacity() * sizeof(double);
  }
  for (const auto& [idx, row] : item_side_) {
    total += sizeof(int32_t) + row.idx.capacity() * sizeof(int32_t) +
             row.rating.capacity() * sizeof(double);
  }
  total += delta_ops_.capacity() * sizeof(DeltaOp) +
           tombstones_.size() * sizeof(uint64_t);
  return total;
}

}  // namespace recdb
