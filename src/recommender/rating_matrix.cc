#include "recommender/rating_matrix.h"

#include <algorithm>

namespace recdb {

int32_t RatingMatrix::InternUser(int64_t user_id) {
  auto it = user_index_.find(user_id);
  if (it != user_index_.end()) return it->second;
  int32_t idx = static_cast<int32_t>(user_ids_.size());
  user_ids_.push_back(user_id);
  user_index_[user_id] = idx;
  by_user_.emplace_back();
  return idx;
}

int32_t RatingMatrix::InternItem(int64_t item_id) {
  auto it = item_index_.find(item_id);
  if (it != item_index_.end()) return it->second;
  int32_t idx = static_cast<int32_t>(item_ids_.size());
  item_ids_.push_back(item_id);
  item_index_[item_id] = idx;
  by_item_.emplace_back();
  return idx;
}

void RatingMatrix::Upsert(std::vector<RatingEntry>* vec, int32_t idx,
                          double rating, bool* was_new) {
  auto it = std::lower_bound(
      vec->begin(), vec->end(), idx,
      [](const RatingEntry& e, int32_t i) { return e.idx < i; });
  if (it != vec->end() && it->idx == idx) {
    it->rating = rating;
    *was_new = false;
    return;
  }
  vec->insert(it, RatingEntry{idx, rating});
  *was_new = true;
}

namespace {

FlatCsr BuildCsr(const std::vector<std::vector<RatingEntry>>& rows) {
  FlatCsr csr;
  size_t nnz = 0;
  for (const auto& row : rows) nnz += row.size();
  csr.offsets.reserve(rows.size() + 1);
  csr.idx.reserve(nnz);
  csr.rating.reserve(nnz);
  csr.offsets.push_back(0);
  for (const auto& row : rows) {
    for (const auto& e : row) {
      csr.idx.push_back(e.idx);
      csr.rating.push_back(e.rating);
    }
    csr.offsets.push_back(static_cast<int64_t>(csr.idx.size()));
  }
  return csr;
}

}  // namespace

void RatingMatrix::Freeze() {
  if (frozen_) return;
  user_csr_ = BuildCsr(by_user_);
  item_csr_ = BuildCsr(by_item_);
  frozen_ = true;
}

void RatingMatrix::Add(int64_t user_id, int64_t item_id, double rating) {
  frozen_ = false;
  int32_t u = InternUser(user_id);
  int32_t i = InternItem(item_id);
  bool new_in_user = false, new_in_item = false;
  double old = 0;
  if (auto existing = GetByIndex(u, i)) old = *existing;
  Upsert(&by_user_[u], i, rating, &new_in_user);
  Upsert(&by_item_[i], u, rating, &new_in_item);
  RECDB_DCHECK(new_in_user == new_in_item);
  if (new_in_user) {
    ++num_ratings_;
    rating_sum_ += rating;
  } else {
    rating_sum_ += rating - old;
  }
}

bool RatingMatrix::Remove(int64_t user_id, int64_t item_id) {
  // Un-freeze only after the rating is actually erased: a Remove of an
  // absent pair mutates nothing, so the CSR snapshot stays valid and the
  // models reading it must keep doing so.
  auto u = UserIndex(user_id);
  auto i = ItemIndex(item_id);
  if (!u || !i) return false;
  auto erase_from = [](std::vector<RatingEntry>* vec, int32_t idx) {
    auto it = std::lower_bound(
        vec->begin(), vec->end(), idx,
        [](const RatingEntry& e, int32_t v) { return e.idx < v; });
    if (it == vec->end() || it->idx != idx) return false;
    vec->erase(it);
    return true;
  };
  auto existing = GetByIndex(*u, *i);
  if (!existing) return false;
  frozen_ = false;
  bool a = erase_from(&by_user_[*u], *i);
  bool b = erase_from(&by_item_[*i], *u);
  RECDB_DCHECK(a && b);
  --num_ratings_;
  rating_sum_ -= *existing;
  return true;
}

std::optional<int32_t> RatingMatrix::UserIndex(int64_t user_id) const {
  auto it = user_index_.find(user_id);
  if (it == user_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<int32_t> RatingMatrix::ItemIndex(int64_t item_id) const {
  auto it = item_index_.find(item_id);
  if (it == item_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<double> RatingMatrix::GetByIndex(int32_t user_idx,
                                               int32_t item_idx) const {
  const auto& vec = by_user_[user_idx];
  auto it = std::lower_bound(
      vec.begin(), vec.end(), item_idx,
      [](const RatingEntry& e, int32_t i) { return e.idx < i; });
  if (it != vec.end() && it->idx == item_idx) return it->rating;
  return std::nullopt;
}

std::optional<double> RatingMatrix::Get(int64_t user_id,
                                        int64_t item_id) const {
  auto u = UserIndex(user_id);
  auto i = ItemIndex(item_id);
  if (!u || !i) return std::nullopt;
  return GetByIndex(*u, *i);
}

double RatingMatrix::GlobalMean() const {
  if (num_ratings_ == 0) return 0;
  return rating_sum_ / static_cast<double>(num_ratings_);
}

double RatingMatrix::UserMean(int32_t user_idx) const {
  const auto& vec = by_user_[user_idx];
  if (vec.empty()) return 0;
  double s = 0;
  for (const auto& e : vec) s += e.rating;
  return s / static_cast<double>(vec.size());
}

double RatingMatrix::ItemMean(int32_t item_idx) const {
  const auto& vec = by_item_[item_idx];
  if (vec.empty()) return 0;
  double s = 0;
  for (const auto& e : vec) s += e.rating;
  return s / static_cast<double>(vec.size());
}

}  // namespace recdb
