// RatingMatrix: the in-memory user/item ratings store a model is built
// from (paper input: users U, items I, ratings R).
//
// External ids are arbitrary int64 (as stored in the ratings table); they are
// mapped to dense indices. Both user-major and item-major views are kept so
// item-item and user-user algorithms each get their natural access pattern.
//
// Freeze contract (PR 7): Freeze() builds a flat-CSR base for both
// orientations. After that, Add/Remove no longer invalidate the frozen state;
// instead they maintain a *delta overlay* — per-orientation side rows (full
// merged copies of every touched row, in SoA form), a tombstone set for
// removals, and an append-only op log. CsrRow access becomes a merge view:
// rows with delta entries resolve to their side row, untouched rows to the
// base CSR, so batch kernels see exactly what a rebuilt CSR would contain,
// byte for byte. A background re-freeze (BuildMergedCsr + CommitRefreeze)
// folds the overlay back into a fresh base and clears it.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace recdb {

/// One (item, rating) pair inside a user vector, or (user, rating) inside an
/// item vector. `idx` is a dense index, not an external id.
struct RatingEntry {
  int32_t idx = 0;
  double rating = 0;
};

/// Frozen flat-CSR form of one orientation: row r's entries live at
/// [offsets[r], offsets[r+1]) in the parallel `idx`/`rating` arrays, sorted
/// by idx. One contiguous allocation per array — batch scoring kernels walk
/// rows without chasing a pointer per row.
struct FlatCsr {
  std::vector<int64_t> offsets;  // size = rows + 1
  std::vector<int32_t> idx;
  std::vector<double> rating;

  size_t ApproxBytes() const {
    return sizeof(FlatCsr) + offsets.capacity() * sizeof(int64_t) +
           idx.capacity() * sizeof(int32_t) +
           rating.capacity() * sizeof(double);
  }
};

/// A view of one CSR row: `n` entries, idx-ascending, contiguous.
struct CsrRow {
  const int32_t* idx = nullptr;
  const double* rating = nullptr;
  size_t n = 0;
};

/// What Add() actually did — callers use this to keep maintenance pressure
/// and the paper's GlobalMean bookkeeping honest.
enum class RatingChange {
  kInserted,     // a new (user, item) pair
  kOverwritten,  // existing pair, different value
  kUnchanged,    // existing pair, same value: a complete no-op
};

/// One entry of the delta op log kept while the matrix is frozen. Indices
/// are dense (valid against the merged matrix); the log is what incremental
/// model maintenance scopes its touched-row sets from.
struct DeltaOp {
  enum class Kind : uint8_t { kAdd, kOverwrite, kRemove };
  Kind kind = Kind::kAdd;
  int32_t user_idx = 0;
  int32_t item_idx = 0;
};

class RatingMatrix {
 public:
  RatingMatrix() = default;

  /// Add one rating. A repeated (user, item) pair overwrites the old rating;
  /// overwriting with the *same* value is a complete no-op (no version bump,
  /// no delta op, no sum adjustment — see RatingChange). While frozen, the
  /// mutation lands in the delta overlay instead of invalidating the CSR.
  RatingChange Add(int64_t user_id, int64_t item_id, double rating);

  /// Remove a rating; returns false if it was not present. Interned ids
  /// remain (a user/item with no ratings keeps an empty vector). While
  /// frozen, the removal lands in the overlay (side rows + tombstone).
  bool Remove(int64_t user_id, int64_t item_id);

  /// One op of a multi-row statement fed to ApplyBatch.
  struct BatchRatingOp {
    bool remove = false;
    int64_t user_id = 0;
    int64_t item_id = 0;
    double rating = 0;
  };

  /// Outcome of ApplyBatch: per-kind effective-op counts plus a flag per
  /// input op (1 when it changed the matrix), aligned with the input order.
  struct BatchResult {
    size_t inserted = 0;
    size_t overwritten = 0;
    size_t removed = 0;
    size_t noops = 0;
    std::vector<uint8_t> effective;

    size_t effective_ops() const { return inserted + overwritten + removed; }
  };

  /// Apply one statement's rating mutations as a single versioned delta
  /// batch: ops land in order (each still logs its own DeltaOp, so model
  /// maintenance sees every mutation), but the version counter bumps once
  /// and each touched overlay side row is re-copied once per batch instead
  /// of once per row — the batched path a multi-row INSERT/UPDATE/DELETE
  /// takes. Equivalent to the per-op loop in everything but work done.
  BatchResult ApplyBatch(const std::vector<BatchRatingOp>& ops);

  size_t NumUsers() const { return user_ids_.size(); }
  size_t NumItems() const { return item_ids_.size(); }
  size_t NumRatings() const { return num_ratings_; }

  /// Dense index of an external id, if known.
  std::optional<int32_t> UserIndex(int64_t user_id) const;
  std::optional<int32_t> ItemIndex(int64_t item_id) const;

  int64_t UserIdAt(int32_t idx) const { return user_ids_[idx]; }
  int64_t ItemIdAt(int32_t idx) const { return item_ids_[idx]; }

  /// A user's ratings, sorted by item index (the paper's UserVector row).
  /// Always authoritative — includes delta entries while frozen.
  const std::vector<RatingEntry>& UserVector(int32_t user_idx) const {
    return by_user_[user_idx];
  }
  /// An item's ratings, sorted by user index (the paper's ItemVector row).
  const std::vector<RatingEntry>& ItemVector(int32_t item_idx) const {
    return by_item_[item_idx];
  }

  /// Rating of (user, item) by dense index, if present.
  std::optional<double> GetByIndex(int32_t user_idx, int32_t item_idx) const;

  /// Rating of (user, item) by external id, if present.
  std::optional<double> Get(int64_t user_id, int64_t item_id) const;

  /// Mean of all ratings (0 when empty).
  double GlobalMean() const;

  /// Mean of one user's / item's ratings (0 when empty).
  double UserMean(int32_t user_idx) const;
  double ItemMean(int32_t item_idx) const;

  /// All external item ids (for operators that enumerate candidates).
  const std::vector<int64_t>& item_ids() const { return item_ids_; }
  const std::vector<int64_t>& user_ids() const { return user_ids_; }

  /// Build the flat-CSR form of both orientations. First call freezes the
  /// matrix; on an already-frozen matrix with a pending delta this merges
  /// the overlay into a fresh base (Refreeze), and with no delta it is a
  /// no-op. Model factories call this at build time so batch kernels can
  /// assume flat storage.
  void Freeze();
  bool frozen() const { return frozen_; }

  // --- delta overlay -------------------------------------------------------

  /// True when mutations have landed in the overlay since the last freeze.
  bool has_delta() const { return !delta_ops_.empty(); }
  /// Number of ops in the delta log since the last (re)freeze.
  size_t delta_size() const { return delta_ops_.size(); }
  /// The op log itself (model maintenance scopes touched rows from it).
  const std::vector<DeltaOp>& delta_ops() const { return delta_ops_; }
  /// True if (user_idx, item_idx) was removed since the last freeze and not
  /// re-added — the overlay's tombstone set.
  bool IsTombstoned(int32_t user_idx, int32_t item_idx) const {
    return tombstones_.count(PairKey(user_idx, item_idx)) > 0;
  }
  size_t NumTombstones() const { return tombstones_.size(); }

  /// Monotonic mutation counter: bumps on every effective Add/Remove (once
  /// per ApplyBatch). A re-freeze prepared against version V commits only
  /// if the matrix is still at V (optimistic two-phase refresh).
  uint64_t version() const { return version_; }

  /// True when the row has an overlay side row (was touched by delta ops
  /// since the last freeze) — candidate generation and bound pruning use
  /// this to route delta-touched rows through the merge view.
  bool IsUserRowTouched(int32_t user_idx) const {
    return overlay_active_ && user_side_.count(user_idx) > 0;
  }
  bool IsItemRowTouched(int32_t item_idx) const {
    return overlay_active_ && item_side_.count(item_idx) > 0;
  }

  /// Row counts of the frozen base (what the CSR arrays cover); the overlay
  /// may know more users/items than the base.
  size_t base_num_users() const {
    return user_csr_.offsets.empty() ? 0 : user_csr_.offsets.size() - 1;
  }
  size_t base_num_items() const {
    return item_csr_.offsets.empty() ? 0 : item_csr_.offsets.size() - 1;
  }

  /// A re-freeze candidate: both orientations rebuilt from the merged rows,
  /// stamped with the matrix version it was built from. Const — safe to run
  /// under a shared lock while readers score through the overlay.
  struct MergedCsr {
    FlatCsr user;
    FlatCsr item;
    uint64_t version = 0;
  };
  MergedCsr BuildMergedCsr() const;

  /// Swap a prepared MergedCsr in as the new base and clear the overlay.
  /// Returns false (and changes nothing) if the matrix version moved since
  /// the candidate was built — the caller retries or falls back to an
  /// exclusive Refreeze().
  bool CommitRefreeze(MergedCsr&& merged);

  /// Merge the overlay into a fresh base in one step (caller holds the
  /// writer lock). No-op when there is no delta.
  void Refreeze();

  /// CSR row views — the merge view. Rows touched by the delta overlay
  /// resolve to their side row (a full merged copy, byte-identical to what
  /// a rebuilt CSR would hold); untouched rows resolve to the frozen base.
  /// The guard is a real check: when the matrix is not frozen (or the row is
  /// unknown to base and overlay) the row reads as empty instead of as
  /// out-of-bounds garbage.
  CsrRow UserCsrRow(int32_t user_idx) const {
    if (!frozen_ || user_idx < 0) return {};
    if (overlay_active_) {
      auto it = user_side_.find(user_idx);
      if (it != user_side_.end()) {
        obs::Count(obs::Counter::kIngestDeltaRowHits);
        return {it->second.idx.data(), it->second.rating.data(),
                it->second.idx.size()};
      }
      obs::Count(obs::Counter::kIngestDeltaRowMisses);
    }
    if (static_cast<size_t>(user_idx) + 1 >= user_csr_.offsets.size()) {
      return {};
    }
    int64_t b = user_csr_.offsets[user_idx];
    return {user_csr_.idx.data() + b, user_csr_.rating.data() + b,
            static_cast<size_t>(user_csr_.offsets[user_idx + 1] - b)};
  }
  CsrRow ItemCsrRow(int32_t item_idx) const {
    if (!frozen_ || item_idx < 0) return {};
    if (overlay_active_) {
      auto it = item_side_.find(item_idx);
      if (it != item_side_.end()) {
        obs::Count(obs::Counter::kIngestDeltaRowHits);
        return {it->second.idx.data(), it->second.rating.data(),
                it->second.idx.size()};
      }
      obs::Count(obs::Counter::kIngestDeltaRowMisses);
    }
    if (static_cast<size_t>(item_idx) + 1 >= item_csr_.offsets.size()) {
      return {};
    }
    int64_t b = item_csr_.offsets[item_idx];
    return {item_csr_.idx.data() + b, item_csr_.rating.data() + b,
            static_cast<size_t>(item_csr_.offsets[item_idx + 1] - b)};
  }

  /// Base-only row views (no overlay resolution) — incremental maintenance
  /// and tests compare base vs merged state through these.
  CsrRow BaseUserCsrRow(int32_t user_idx) const {
    if (!frozen_ || user_idx < 0 ||
        static_cast<size_t>(user_idx) + 1 >= user_csr_.offsets.size()) {
      return {};
    }
    int64_t b = user_csr_.offsets[user_idx];
    return {user_csr_.idx.data() + b, user_csr_.rating.data() + b,
            static_cast<size_t>(user_csr_.offsets[user_idx + 1] - b)};
  }
  CsrRow BaseItemCsrRow(int32_t item_idx) const {
    if (!frozen_ || item_idx < 0 ||
        static_cast<size_t>(item_idx) + 1 >= item_csr_.offsets.size()) {
      return {};
    }
    int64_t b = item_csr_.offsets[item_idx];
    return {item_csr_.idx.data() + b, item_csr_.rating.data() + b,
            static_cast<size_t>(item_csr_.offsets[item_idx + 1] - b)};
  }

  const FlatCsr& user_csr() const { return user_csr_; }
  const FlatCsr& item_csr() const { return item_csr_; }

  /// Footprint of the frozen CSR arrays plus the delta overlay (0 when not
  /// frozen) — model ApproxBytes implementations add this so memory
  /// accounting sees the flat storage.
  size_t CsrApproxBytes() const;

 private:
  /// One overlay side row: a full merged copy of a touched row, SoA like
  /// the CSR arrays so the CsrRow view is layout-identical.
  struct SideRow {
    std::vector<int32_t> idx;
    std::vector<double> rating;
  };

  static uint64_t PairKey(int32_t user_idx, int32_t item_idx) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(user_idx)) << 32) |
           static_cast<uint32_t>(item_idx);
  }

  int32_t InternUser(int64_t user_id);
  int32_t InternItem(int64_t item_id);
  static void Upsert(std::vector<RatingEntry>* vec, int32_t idx,
                     double rating, bool* was_new);
  /// Mutation cores shared by the per-row and batched paths: everything an
  /// Add/Remove does except the version bump and the side-row refresh,
  /// which the caller performs once (per op, or per batch).
  RatingChange DoAdd(int64_t user_id, int64_t item_id, double rating,
                     int32_t* out_u, int32_t* out_i);
  bool DoRemove(int64_t user_id, int64_t item_id, int32_t* out_u,
                int32_t* out_i);
  /// Copy the merged rows of (user_idx, item_idx) into the overlay side
  /// rows (both orientations) after a frozen-state mutation.
  void RefreshSideRows(int32_t user_idx, int32_t item_idx);
  void RefreshUserSideRow(int32_t user_idx);
  void RefreshItemSideRow(int32_t item_idx);
  void ClearOverlay();

  std::vector<int64_t> user_ids_;
  std::vector<int64_t> item_ids_;
  std::unordered_map<int64_t, int32_t> user_index_;
  std::unordered_map<int64_t, int32_t> item_index_;
  std::vector<std::vector<RatingEntry>> by_user_;
  std::vector<std::vector<RatingEntry>> by_item_;
  size_t num_ratings_ = 0;
  double rating_sum_ = 0;
  bool frozen_ = false;
  FlatCsr user_csr_;
  FlatCsr item_csr_;

  // Delta overlay state (meaningful only while frozen_).
  bool overlay_active_ = false;
  std::unordered_map<int32_t, SideRow> user_side_;
  std::unordered_map<int32_t, SideRow> item_side_;
  std::unordered_set<uint64_t> tombstones_;
  std::vector<DeltaOp> delta_ops_;
  uint64_t version_ = 0;
};

}  // namespace recdb
