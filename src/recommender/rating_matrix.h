// RatingMatrix: the in-memory user/item ratings snapshot a model is built
// from (paper input: users U, items I, ratings R).
//
// External ids are arbitrary int64 (as stored in the ratings table); they are
// mapped to dense indices. Both user-major and item-major views are kept so
// item-item and user-user algorithms each get their natural access pattern.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace recdb {

/// One (item, rating) pair inside a user vector, or (user, rating) inside an
/// item vector. `idx` is a dense index, not an external id.
struct RatingEntry {
  int32_t idx = 0;
  double rating = 0;
};

/// Frozen flat-CSR form of one orientation: row r's entries live at
/// [offsets[r], offsets[r+1]) in the parallel `idx`/`rating` arrays, sorted
/// by idx. One contiguous allocation per array — batch scoring kernels walk
/// rows without chasing a pointer per row.
struct FlatCsr {
  std::vector<int64_t> offsets;  // size = rows + 1
  std::vector<int32_t> idx;
  std::vector<double> rating;

  size_t ApproxBytes() const {
    return sizeof(FlatCsr) + offsets.capacity() * sizeof(int64_t) +
           idx.capacity() * sizeof(int32_t) +
           rating.capacity() * sizeof(double);
  }
};

/// A view of one CSR row: `n` entries, idx-ascending, contiguous.
struct CsrRow {
  const int32_t* idx = nullptr;
  const double* rating = nullptr;
  size_t n = 0;
};

class RatingMatrix {
 public:
  RatingMatrix() = default;

  /// Add one rating. A repeated (user, item) pair overwrites the old rating.
  void Add(int64_t user_id, int64_t item_id, double rating);

  /// Remove a rating; returns false if it was not present. Interned ids
  /// remain (a user/item with no ratings keeps an empty vector).
  bool Remove(int64_t user_id, int64_t item_id);

  size_t NumUsers() const { return user_ids_.size(); }
  size_t NumItems() const { return item_ids_.size(); }
  size_t NumRatings() const { return num_ratings_; }

  /// Dense index of an external id, if known.
  std::optional<int32_t> UserIndex(int64_t user_id) const;
  std::optional<int32_t> ItemIndex(int64_t item_id) const;

  int64_t UserIdAt(int32_t idx) const { return user_ids_[idx]; }
  int64_t ItemIdAt(int32_t idx) const { return item_ids_[idx]; }

  /// A user's ratings, sorted by item index (the paper's UserVector row).
  const std::vector<RatingEntry>& UserVector(int32_t user_idx) const {
    return by_user_[user_idx];
  }
  /// An item's ratings, sorted by user index (the paper's ItemVector row).
  const std::vector<RatingEntry>& ItemVector(int32_t item_idx) const {
    return by_item_[item_idx];
  }

  /// Rating of (user, item) by dense index, if present.
  std::optional<double> GetByIndex(int32_t user_idx, int32_t item_idx) const;

  /// Rating of (user, item) by external id, if present.
  std::optional<double> Get(int64_t user_id, int64_t item_id) const;

  /// Mean of all ratings (0 when empty).
  double GlobalMean() const;

  /// Mean of one user's / item's ratings (0 when empty).
  double UserMean(int32_t user_idx) const;
  double ItemMean(int32_t item_idx) const;

  /// All external item ids (for operators that enumerate candidates).
  const std::vector<int64_t>& item_ids() const { return item_ids_; }
  const std::vector<int64_t>& user_ids() const { return user_ids_; }

  /// Build the flat-CSR form of both orientations (idempotent). Model
  /// factories call this at build time so batch kernels can assume frozen
  /// storage; Add/Remove invalidate it (the mutable vector-of-vectors stays
  /// authoritative for incremental updates).
  void Freeze();
  bool frozen() const { return frozen_; }

  /// CSR row views. The guard is a real check, not a debug assertion: when
  /// the matrix is not frozen (or the row post-dates the snapshot) the CSR
  /// arrays are stale or empty, so the row reads as empty instead of as
  /// out-of-bounds garbage. Callers that must see fresh entries fall back
  /// to UserVector/ItemVector while !frozen().
  CsrRow UserCsrRow(int32_t user_idx) const {
    if (!frozen_ || user_idx < 0 ||
        static_cast<size_t>(user_idx) + 1 >= user_csr_.offsets.size()) {
      return {};
    }
    int64_t b = user_csr_.offsets[user_idx];
    return {user_csr_.idx.data() + b, user_csr_.rating.data() + b,
            static_cast<size_t>(user_csr_.offsets[user_idx + 1] - b)};
  }
  CsrRow ItemCsrRow(int32_t item_idx) const {
    if (!frozen_ || item_idx < 0 ||
        static_cast<size_t>(item_idx) + 1 >= item_csr_.offsets.size()) {
      return {};
    }
    int64_t b = item_csr_.offsets[item_idx];
    return {item_csr_.idx.data() + b, item_csr_.rating.data() + b,
            static_cast<size_t>(item_csr_.offsets[item_idx + 1] - b)};
  }

  const FlatCsr& user_csr() const { return user_csr_; }
  const FlatCsr& item_csr() const { return item_csr_; }

  /// Footprint of the frozen CSR arrays (0 when not frozen) — model
  /// ApproxBytes implementations add this so memory accounting sees the
  /// flat storage.
  size_t CsrApproxBytes() const {
    return frozen_ ? user_csr_.ApproxBytes() + item_csr_.ApproxBytes() : 0;
  }

 private:
  int32_t InternUser(int64_t user_id);
  int32_t InternItem(int64_t item_id);
  static void Upsert(std::vector<RatingEntry>* vec, int32_t idx,
                     double rating, bool* was_new);

  std::vector<int64_t> user_ids_;
  std::vector<int64_t> item_ids_;
  std::unordered_map<int64_t, int32_t> user_index_;
  std::unordered_map<int64_t, int32_t> item_index_;
  std::vector<std::vector<RatingEntry>> by_user_;
  std::vector<std::vector<RatingEntry>> by_item_;
  size_t num_ratings_ = 0;
  double rating_sum_ = 0;
  bool frozen_ = false;
  FlatCsr user_csr_;
  FlatCsr item_csr_;
};

}  // namespace recdb
