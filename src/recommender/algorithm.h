// Recommendation algorithms supported by CREATE RECOMMENDER / USING
// (paper Section III-A): item-item and user-user collaborative filtering
// with cosine or Pearson similarity, and regularized-SGD SVD.
#pragma once

#include <string>

#include "common/status.h"

namespace recdb {

enum class RecAlgorithm {
  kItemCosCF,
  kItemPearCF,
  kUserCosCF,
  kUserPearCF,
  kSVD,
};

/// Paper default when USING is omitted.
inline constexpr RecAlgorithm kDefaultAlgorithm = RecAlgorithm::kItemCosCF;

/// Canonical name ("ItemCosCF", ...).
const char* RecAlgorithmToString(RecAlgorithm a);

/// Case-insensitive parse of the names used in the paper's SQL.
Result<RecAlgorithm> RecAlgorithmFromString(const std::string& s);

/// Item-based algorithms scan ItemNeighborhood; user-based scan
/// UserNeighborhood (paper Section IV-A.1/2).
bool IsItemBased(RecAlgorithm a);
bool IsUserBased(RecAlgorithm a);

}  // namespace recdb
