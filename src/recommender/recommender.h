// Recommender: a named, registered recommender (paper CREATE RECOMMENDER).
//
// Owns one RatingMatrix (frozen base + delta overlay), the built RecModel,
// the pre-computation index (RecScoreIndex) and the maintenance policy.
// PR-7 lifecycle: ingest lands in the matrix's delta overlay without
// invalidating the frozen CSR, scoring reads the merge view, and
// maintenance is *incremental* — a two-phase refresh (PrepareRefresh off
// the writer lock, CommitRefresh under it) merges the overlay into a fresh
// base and patches only the model rows the delta touched. A full retrain
// happens only at Build() time (CREATE RECOMMENDER / recovery), never in
// response to a statement.
#pragma once

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "index/candidate_index.h"
#include "index/rec_score_index.h"
#include "recommender/cf_model.h"
#include "recommender/svd_model.h"

namespace recdb {

struct RecommenderConfig {
  std::string name;
  std::string ratings_table;
  std::string user_col;
  std::string item_col;
  std::string rating_col;
  RecAlgorithm algorithm = kDefaultAlgorithm;
  /// Maintain when pending updates / base model size >= this ratio
  /// (the paper's N% system parameter). Since PR 7 reaching it triggers an
  /// incremental refresh, not a retrain.
  double rebuild_threshold = 0.10;
  SimilarityOptions sim_opts;
  SvdOptions svd_opts;
  /// Background re-freeze trigger: refresh once the delta log reaches
  /// max(min_refresh_ops, refresh_threshold * base ratings). Tuning knobs
  /// only — intentionally not part of the persisted catalog record, so
  /// database files written before PR 7 load unchanged.
  double refresh_threshold = 0.05;
  size_t min_refresh_ops = 32;
};

class Recommender {
 public:
  /// (user, item) pairs whose cached scores a mutation invalidated —
  /// handed to the invalidation listener (CacheManager) for lazy
  /// re-materialization.
  using InvalidatedPairs = std::vector<std::pair<int64_t, int64_t>>;

  explicit Recommender(RecommenderConfig config)
      : config_(std::move(config)),
        matrix_(std::make_shared<RatingMatrix>()) {}

  const RecommenderConfig& config() const { return config_; }
  const std::string& name() const { return config_.name; }
  RecAlgorithm algorithm() const { return config_.algorithm; }

  /// Ingest one rating (does NOT rebuild the model). On a frozen matrix the
  /// mutation lands in the delta overlay and stale score-index entries for
  /// the affected predictions are evicted (scoped per algorithm family).
  void AddRating(int64_t user_id, int64_t item_id, double rating);

  /// Remove a rating (SQL DELETE on the ratings table); counts toward the
  /// maintenance threshold like an insert.
  void RemoveRating(int64_t user_id, int64_t item_id);

  /// Batched ingest: apply one statement's rating mutations as a single
  /// versioned delta batch (RatingMatrix::ApplyBatch), with one delta-
  /// pending gauge adjustment and one invalidation-listener callback for
  /// the whole statement. Per-op DeltaOps and maintenance pressure are
  /// identical to the per-row loop.
  void ApplyRatingBatch(const std::vector<RatingMatrix::BatchRatingOp>& ops);

  /// Recommender Initialization: merge any pending delta and train the
  /// model from scratch for the configured algorithm. Returns the build
  /// wall time. The only full-retrain entry point.
  Result<double> Build();

  /// True when pending updates have reached the paper's N% maintenance
  /// threshold (or no model exists yet).
  bool NeedsRebuild() const {
    if (model_ == nullptr) return true;
    if (base_size_ == 0) return pending_updates_ > 0;
    return static_cast<double>(pending_updates_) >=
           config_.rebuild_threshold * static_cast<double>(base_size_);
  }

  /// True when the delta log has reached the background re-freeze trigger.
  /// A model with no incremental form cannot absorb delta rows at all, so
  /// any pending op triggers immediately — a write must never sit silently
  /// unreflected until a threshold trips.
  bool NeedsRefresh() const {
    if (model_ == nullptr || !matrix_->has_delta()) return false;
    if (!model_->SupportsIncrementalUpdate()) return true;
    double by_ratio = config_.refresh_threshold *
                      static_cast<double>(base_size_);
    double trigger = std::max(static_cast<double>(config_.min_refresh_ops),
                              by_ratio);
    return static_cast<double>(matrix_->delta_size()) >= trigger;
  }

  /// Maintain if the paper's N% policy calls for it; returns whether any
  /// maintenance happened. With a built model this is an incremental
  /// Refresh() (bit-identical to a retrain for CF; fold-in for SVD) —
  /// statements never trigger a full retrain.
  Result<bool> MaintainIfNeeded() {
    if (!NeedsRebuild()) return false;
    if (model_ == nullptr) {
      RECDB_RETURN_NOT_OK(Build().status());
      return true;
    }
    return Refresh();
  }

  // --- two-phase incremental refresh ---------------------------------------

  /// Everything a re-freeze needs, prepared against one matrix version:
  /// the merged CSR candidate and the model row updates. Building it only
  /// reads, so it can run off the writer lock while readers score through
  /// the overlay.
  struct RefreshPlan {
    RatingMatrix::MergedCsr csr;
    ModelUpdate update;
    /// Postings lowered off-lock from `csr` (the future base); bounds are
    /// finalized at commit time, after the model rows are patched.
    std::shared_ptr<CandidateIndex> candidate_index;
    size_t ops = 0;
    bool valid = false;
  };

  /// Prepare a refresh plan (shared lock is enough). valid=false when
  /// there is nothing to do (no model or no delta).
  Result<RefreshPlan> PrepareRefresh() const;

  /// Install a prepared plan (writer lock required). Returns false without
  /// changing anything if the matrix version moved since the plan was
  /// prepared — the caller retries or falls back to Refresh().
  bool CommitRefresh(RefreshPlan&& plan);

  /// One-step refresh under the writer lock: prepare + commit. Returns
  /// whether a merge happened.
  Result<bool> Refresh();

  /// Dedup guard for the background scheduler: returns true if this call
  /// claimed the pending-refresh slot (no job was in flight).
  bool TryMarkRefreshScheduled() {
    bool expected = false;
    return refresh_scheduled_.compare_exchange_strong(expected, true);
  }
  void ClearRefreshScheduled() { refresh_scheduled_.store(false); }

  /// Recovery aid: adopt a pre-loaded (typically already frozen) matrix
  /// instead of re-ingesting the ratings table row by row. Must be called
  /// before Build().
  void SeedMatrix(std::shared_ptr<RatingMatrix> matrix) {
    matrix_ = std::move(matrix);
  }

  /// CacheManager hook: invoked with the (user, item) pairs each mutation
  /// or refresh commit evicted from the score index.
  void SetInvalidationListener(
      std::function<void(const InvalidatedPairs&)> listener) {
    invalidation_listener_ = std::move(listener);
  }

  /// Built model; null before the first Build().
  const RecModel* model() const { return model_.get(); }
  RecModel* mutable_model() { return model_.get(); }

  /// Test seam: install a model that did not come from Build() (e.g. a
  /// stub without incremental support). Resets maintenance pressure as a
  /// real build would and rebuilds the candidate index against it.
  void AdoptModelForTest(std::unique_ptr<RecModel> model) {
    matrix_->Freeze();
    model_ = std::move(model);
    base_size_ = matrix_->NumRatings();
    pending_updates_ = 0;
    candidate_index_ = CandidateIndex::Build(*matrix_, *model_);
  }

  /// Sublinear Top-N support (postings + bound blocks), rebuilt with the
  /// base at Build()/CommitRefresh; null before the first Build(). Shared
  /// so in-flight executors keep a coherent snapshot across a re-freeze.
  std::shared_ptr<const CandidateIndex> candidate_index() const {
    return candidate_index_;
  }

  /// The matrix scoring reads (frozen base + overlay merge view). The
  /// historical live/snapshot split collapsed into one matrix in PR 7;
  /// both accessors remain for call sites.
  std::shared_ptr<const RatingMatrix> snapshot() const { return matrix_; }
  const RatingMatrix& live() const { return *matrix_; }
  RatingMatrix* mutable_matrix() { return matrix_.get(); }

  size_t pending_updates() const { return pending_updates_; }
  size_t base_size() const { return base_size_; }

  /// Pre-computed score store (paper Section IV-C); populated by the cache
  /// manager or by full materialization.
  RecScoreIndex* score_index() { return &score_index_; }
  const RecScoreIndex& score_index() const { return score_index_; }

  /// Materialize predicted scores for every (user, unseen item) pair —
  /// HOTNESS-THRESHOLD = 0 behaviour. Expensive; benchmarks and tests use it
  /// to study the pre-computation upper bound.
  Status MaterializeAll();

  /// Materialize one user's scores for all unseen items (what the cache
  /// manager does for a hot user).
  Status MaterializeUser(int64_t user_id);

 private:
  /// Evict score-index entries staled by a mutation of (user, item),
  /// scoped to what the algorithm family can actually change, then notify
  /// the invalidation listener.
  void InvalidateForIngest(int64_t user_id, int64_t item_id);
  void CollectIngestInvalidations(int64_t user_id, int64_t item_id,
                                  InvalidatedPairs* out);
  void NotifyInvalidated(InvalidatedPairs&& pairs);

  RecommenderConfig config_;
  std::shared_ptr<RatingMatrix> matrix_;
  std::unique_ptr<RecModel> model_;
  std::shared_ptr<const CandidateIndex> candidate_index_;
  size_t base_size_ = 0;
  size_t pending_updates_ = 0;
  std::atomic<bool> refresh_scheduled_{false};
  std::function<void(const InvalidatedPairs&)> invalidation_listener_;
  RecScoreIndex score_index_;
};

}  // namespace recdb
