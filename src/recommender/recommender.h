// Recommender: a named, registered recommender (paper CREATE RECOMMENDER).
//
// Owns the live ratings snapshot, the built RecModel, the pre-computation
// index (RecScoreIndex) and the maintenance policy: the model is rebuilt
// only when new ratings reach N% of the entries used to build the current
// model (paper Section III-A, "Maintaining a Recommender").
#pragma once

#include <memory>
#include <string>

#include "index/rec_score_index.h"
#include "recommender/cf_model.h"
#include "recommender/svd_model.h"

namespace recdb {

struct RecommenderConfig {
  std::string name;
  std::string ratings_table;
  std::string user_col;
  std::string item_col;
  std::string rating_col;
  RecAlgorithm algorithm = kDefaultAlgorithm;
  /// Rebuild when pending updates / base model size >= this ratio
  /// (the paper's N% system parameter).
  double rebuild_threshold = 0.10;
  SimilarityOptions sim_opts;
  SvdOptions svd_opts;
};

class Recommender {
 public:
  explicit Recommender(RecommenderConfig config)
      : config_(std::move(config)),
        live_(std::make_shared<RatingMatrix>()) {}

  const RecommenderConfig& config() const { return config_; }
  const std::string& name() const { return config_.name; }
  RecAlgorithm algorithm() const { return config_.algorithm; }

  /// Ingest one rating into the live matrix (does NOT rebuild the model).
  void AddRating(int64_t user_id, int64_t item_id, double rating) {
    live_->Add(user_id, item_id, rating);
    ++pending_updates_;
  }

  /// Remove a rating from the live matrix (SQL DELETE on the ratings
  /// table); counts toward the rebuild threshold like an insert.
  void RemoveRating(int64_t user_id, int64_t item_id) {
    if (live_->Remove(user_id, item_id)) ++pending_updates_;
  }

  /// Recommender Initialization: snapshot the live ratings and train the
  /// model for the configured algorithm. Returns the build wall time.
  Result<double> Build();

  /// True when pending updates have reached the rebuild threshold.
  bool NeedsRebuild() const {
    if (model_ == nullptr) return true;
    if (base_size_ == 0) return pending_updates_ > 0;
    return static_cast<double>(pending_updates_) >=
           config_.rebuild_threshold * static_cast<double>(base_size_);
  }

  /// Rebuild if the maintenance policy calls for it; returns whether a
  /// rebuild happened.
  Result<bool> MaintainIfNeeded() {
    if (!NeedsRebuild()) return false;
    RECDB_RETURN_NOT_OK(Build().status());
    return true;
  }

  /// Built model; null before the first Build().
  const RecModel* model() const { return model_.get(); }

  /// Ratings snapshot the current model was built from (null before Build).
  std::shared_ptr<const RatingMatrix> snapshot() const { return snapshot_; }

  /// Live matrix including not-yet-modeled ratings.
  const RatingMatrix& live() const { return *live_; }

  size_t pending_updates() const { return pending_updates_; }
  size_t base_size() const { return base_size_; }

  /// Pre-computed score store (paper Section IV-C); populated by the cache
  /// manager or by full materialization.
  RecScoreIndex* score_index() { return &score_index_; }
  const RecScoreIndex& score_index() const { return score_index_; }

  /// Materialize predicted scores for every (user, unseen item) pair —
  /// HOTNESS-THRESHOLD = 0 behaviour. Expensive; benchmarks and tests use it
  /// to study the pre-computation upper bound.
  Status MaterializeAll();

  /// Materialize one user's scores for all unseen items (what the cache
  /// manager does for a hot user).
  Status MaterializeUser(int64_t user_id);

 private:
  RecommenderConfig config_;
  std::shared_ptr<RatingMatrix> live_;
  std::shared_ptr<const RatingMatrix> snapshot_;
  std::unique_ptr<RecModel> model_;
  size_t base_size_ = 0;
  size_t pending_updates_ = 0;
  RecScoreIndex score_index_;
};

}  // namespace recdb
