#include "recommender/recommender.h"

#include <algorithm>

#include "common/task_scheduler.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace recdb {

namespace {

std::unique_ptr<RecModel> BuildModel(RecAlgorithm algorithm,
                                     std::shared_ptr<RatingMatrix> matrix,
                                     const RecommenderConfig& config) {
  switch (algorithm) {
    case RecAlgorithm::kItemCosCF:
      return ItemCFModel::Build(std::move(matrix), /*centered=*/false,
                                config.sim_opts);
    case RecAlgorithm::kItemPearCF:
      return ItemCFModel::Build(std::move(matrix), /*centered=*/true,
                                config.sim_opts);
    case RecAlgorithm::kUserCosCF:
      return UserCFModel::Build(std::move(matrix), /*centered=*/false,
                                config.sim_opts);
    case RecAlgorithm::kUserPearCF:
      return UserCFModel::Build(std::move(matrix), /*centered=*/true,
                                config.sim_opts);
    case RecAlgorithm::kSVD:
      return SvdModel::Build(std::move(matrix), config.svd_opts);
  }
  return nullptr;
}

}  // namespace

void Recommender::AddRating(int64_t user_id, int64_t item_id, double rating) {
  const size_t delta_before = matrix_->delta_size();
  RatingChange change = matrix_->Add(user_id, item_id, rating);
  if (change == RatingChange::kUnchanged) return;
  ++pending_updates_;
  obs::Count(change == RatingChange::kInserted
                 ? obs::Counter::kIngestDeltaAdds
                 : obs::Counter::kIngestDeltaOverwrites);
  const size_t landed = matrix_->delta_size() - delta_before;
  if (landed > 0) {
    obs::AddGauge(obs::Gauge::kIngestDeltaPending,
                  static_cast<int64_t>(landed));
    InvalidateForIngest(user_id, item_id);
  }
}

void Recommender::RemoveRating(int64_t user_id, int64_t item_id) {
  const size_t delta_before = matrix_->delta_size();
  if (!matrix_->Remove(user_id, item_id)) return;
  ++pending_updates_;
  obs::Count(obs::Counter::kIngestDeltaRemoves);
  const size_t landed = matrix_->delta_size() - delta_before;
  if (landed > 0) {
    obs::AddGauge(obs::Gauge::kIngestDeltaPending,
                  static_cast<int64_t>(landed));
    InvalidateForIngest(user_id, item_id);
  }
}

void Recommender::ApplyRatingBatch(
    const std::vector<RatingMatrix::BatchRatingOp>& ops) {
  const size_t delta_before = matrix_->delta_size();
  RatingMatrix::BatchResult res = matrix_->ApplyBatch(ops);
  if (res.effective_ops() == 0) return;
  pending_updates_ += res.effective_ops();
  obs::Count(obs::Counter::kIngestDeltaAdds, res.inserted);
  obs::Count(obs::Counter::kIngestDeltaOverwrites, res.overwritten);
  obs::Count(obs::Counter::kIngestDeltaRemoves, res.removed);
  obs::Count(obs::Counter::kIngestBatches);
  obs::Count(obs::Counter::kIngestBatchOps, res.effective_ops());
  const size_t landed = matrix_->delta_size() - delta_before;
  if (landed == 0) return;
  obs::AddGauge(obs::Gauge::kIngestDeltaPending,
                static_cast<int64_t>(landed));
  // One invalidation sweep and one listener callback per statement.
  InvalidatedPairs pairs;
  for (size_t k = 0; k < ops.size(); ++k) {
    if (!res.effective[k]) continue;
    CollectIngestInvalidations(ops[k].user_id, ops[k].item_id, &pairs);
  }
  NotifyInvalidated(std::move(pairs));
}

void Recommender::InvalidateForIngest(int64_t user_id, int64_t item_id) {
  InvalidatedPairs pairs;
  CollectIngestInvalidations(user_id, item_id, &pairs);
  NotifyInvalidated(std::move(pairs));
}

void Recommender::CollectIngestInvalidations(int64_t user_id, int64_t item_id,
                                             InvalidatedPairs* out) {
  InvalidatedPairs pairs;
  switch (config_.algorithm) {
    case RecAlgorithm::kItemCosCF:
    case RecAlgorithm::kItemPearCF:
      // The user's own rated vector feeds every one of their predictions
      // (Eq. 2 gathers neighborhoods against it): all of u's cached scores
      // are stale. Other users' predictions depend on the neighborhood
      // table, which only moves at refresh time.
      pairs = score_index_.EraseUserCollect(user_id);
      break;
    case RecAlgorithm::kUserCosCF:
    case RecAlgorithm::kUserPearCF:
      // Item i's rater row feeds every user's prediction *for i*; u is not
      // its own neighbor, so u's scores for other items are untouched.
      pairs = score_index_.EraseItem(item_id);
      if (score_index_.Erase(user_id, item_id)) {
        pairs.emplace_back(user_id, item_id);
      }
      break;
    case RecAlgorithm::kSVD:
      // Factors only move at refresh (fold-in); the rating itself merely
      // makes (u, i) a seen pair.
      if (score_index_.Erase(user_id, item_id)) {
        pairs.emplace_back(user_id, item_id);
      }
      break;
  }
  out->insert(out->end(), pairs.begin(), pairs.end());
}

void Recommender::NotifyInvalidated(InvalidatedPairs&& pairs) {
  if (pairs.empty()) return;
  obs::Count(obs::Counter::kIngestIndexInvalidations, pairs.size());
  if (invalidation_listener_) invalidation_listener_(pairs);
}

Result<double> Recommender::Build() {
  Stopwatch watch;
  // Merge any pending delta first so the model trains over flat state,
  // then train in place: the overlay keeps later mutations from disturbing
  // the frozen base, so the old defensive matrix copy is gone.
  const size_t delta_cleared = matrix_->delta_size();
  matrix_->Freeze();
  std::unique_ptr<RecModel> model =
      BuildModel(config_.algorithm, matrix_, config_);
  if (model == nullptr) {
    return Status::Internal("model construction failed for " + config_.name);
  }
  model_ = std::move(model);
  candidate_index_ = CandidateIndex::Build(*matrix_, *model_);
  base_size_ = matrix_->NumRatings();
  pending_updates_ = 0;
  if (delta_cleared > 0) {
    obs::AddGauge(obs::Gauge::kIngestDeltaPending,
                  -static_cast<int64_t>(delta_cleared));
  }
  obs::Count(obs::Counter::kModelBuilds);
  obs::ObserveUs(obs::Histogram::kModelTrainUs,
                 static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6));
  return watch.ElapsedSeconds();
}

Result<Recommender::RefreshPlan> Recommender::PrepareRefresh() const {
  RefreshPlan plan;
  if (model_ == nullptr || !matrix_->has_delta()) return plan;
  Stopwatch watch;
  plan.csr = matrix_->BuildMergedCsr();
  plan.ops = matrix_->delta_size();
  auto update = model_->PrepareDeltaUpdate(matrix_->delta_ops());
  RECDB_RETURN_NOT_OK(update.status());
  plan.update = std::move(update).value();
  // Lower the candidate postings from the future base off-lock; bounds are
  // model-dependent and get finalized at commit, after ApplyDeltaUpdate.
  plan.candidate_index = CandidateIndex::Lower(
      plan.csr.user, plan.csr.item, matrix_->item_ids(), plan.csr.version);
  plan.valid = true;
  obs::ObserveUs(obs::Histogram::kIngestRefreshUs,
                 static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6));
  return plan;
}

bool Recommender::CommitRefresh(RefreshPlan&& plan) {
  if (!plan.valid) return false;
  Stopwatch watch;
  if (!matrix_->CommitRefreeze(std::move(plan.csr))) {
    obs::Count(obs::Counter::kIngestRefreshConflicts);
    return false;
  }
  InvalidatedPairs pairs;
  if (plan.update.full_rebuild) {
    // The model has no incremental form: retrain it from the merged (now
    // base) matrix and drop every cached score — nothing narrower is known
    // to be safe.
    std::vector<int64_t> users;
    score_index_.ForEach([&](int64_t user, int64_t, double) {
      if (users.empty() || users.back() != user) users.push_back(user);
    });
    std::sort(users.begin(), users.end());
    users.erase(std::unique(users.begin(), users.end()), users.end());
    for (int64_t user : users) {
      auto erased = score_index_.EraseUserCollect(user);
      pairs.insert(pairs.end(), erased.begin(), erased.end());
    }
    std::unique_ptr<RecModel> rebuilt =
        BuildModel(config_.algorithm, matrix_, config_);
    if (rebuilt != nullptr) model_ = std::move(rebuilt);
    obs::Count(obs::Counter::kIngestFullRebuilds);
    obs::Count(obs::Counter::kModelBuilds);
    candidate_index_ = CandidateIndex::Build(*matrix_, *model_);
  } else {
    for (int64_t user : plan.update.stale_users) {
      auto erased = score_index_.EraseUserCollect(user);
      pairs.insert(pairs.end(), erased.begin(), erased.end());
    }
    for (int64_t item : plan.update.stale_items) {
      auto erased = score_index_.EraseItem(item);
      pairs.insert(pairs.end(), erased.begin(), erased.end());
    }
    model_->ApplyDeltaUpdate(std::move(plan.update));
    // Publish the pre-lowered postings with bounds computed against the
    // just-patched model — the new (base, model, index) triple is coherent.
    plan.candidate_index->FinalizeBounds(*model_);
    candidate_index_ = std::move(plan.candidate_index);
  }
  base_size_ = matrix_->NumRatings();
  pending_updates_ = 0;
  obs::AddGauge(obs::Gauge::kIngestDeltaPending,
                -static_cast<int64_t>(plan.ops));
  obs::Count(obs::Counter::kIngestRefreshes);
  obs::ObserveUs(obs::Histogram::kIngestSwapUs,
                 static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6));
  NotifyInvalidated(std::move(pairs));
  return true;
}

Result<bool> Recommender::Refresh() {
  auto plan = PrepareRefresh();
  RECDB_RETURN_NOT_OK(plan.status());
  if (!plan.value().valid) return false;
  // Prepare and commit run back to back on one thread (writer lock held),
  // so the version cannot move and the commit cannot conflict.
  return CommitRefresh(std::move(plan).value());
}

Status Recommender::MaterializeUser(int64_t user_id) {
  if (model_ == nullptr) {
    return Status::ExecutionError("recommender " + config_.name +
                                  " has no built model");
  }
  Stopwatch watch;
  const RatingMatrix& r = *matrix_;
  auto uopt = r.UserIndex(user_id);
  if (!uopt) return Status::NotFound("unknown user");
  const auto& rated = r.UserVector(*uopt);
  // Collect the user's unseen items, predict their scores in parallel
  // (Predict is a const read of the model), then insert serially — the
  // score index is not thread-safe and insertion order is kept stable.
  std::vector<int64_t> unseen;
  unseen.reserve(r.NumItems() - rated.size());
  size_t rated_pos = 0;
  for (size_t i = 0; i < r.NumItems(); ++i) {
    // Skip items the user already rated (both lists are idx-sorted).
    while (rated_pos < rated.size() &&
           rated[rated_pos].idx < static_cast<int32_t>(i)) {
      ++rated_pos;
    }
    if (rated_pos < rated.size() &&
        rated[rated_pos].idx == static_cast<int32_t>(i)) {
      continue;
    }
    unseen.push_back(r.ItemIdAt(static_cast<int32_t>(i)));
  }
  std::vector<double> scores(unseen.size(), 0.0);
  TaskScheduler& sched = TaskScheduler::Global();
  const size_t morsel =
      std::clamp<size_t>(unseen.size() / (sched.num_threads() * 4), 32, 4096);
  sched.ParallelFor(unseen.size(), morsel, [&](size_t begin, size_t end) {
    // One PredictBatch per morsel: each score depends only on its own
    // (user, item) pair, so morsel boundaries cannot change results.
    model_->PredictBatch(
        user_id, std::span<const int64_t>(unseen.data() + begin, end - begin),
        std::span<double>(scores.data() + begin, end - begin));
  });
  for (size_t i = 0; i < unseen.size(); ++i) {
    score_index_.Put(user_id, unseen[i], scores[i]);
  }
  obs::ObserveUs(obs::Histogram::kCacheMaterializeUs,
                 static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6));
  return Status::OK();
}

Status Recommender::MaterializeAll() {
  if (model_ == nullptr) {
    return Status::ExecutionError("recommender " + config_.name +
                                  " has no built model");
  }
  const RatingMatrix& r = *matrix_;
  for (size_t u = 0; u < r.NumUsers(); ++u) {
    RECDB_RETURN_NOT_OK(
        MaterializeUser(r.UserIdAt(static_cast<int32_t>(u))));
  }
  return Status::OK();
}

}  // namespace recdb
