#include "recommender/recommender.h"

#include <algorithm>

#include "common/task_scheduler.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace recdb {

Result<double> Recommender::Build() {
  Stopwatch watch;
  // Snapshot the live matrix so later AddRating calls do not disturb the
  // model's input (copy is cheap relative to model building).
  auto snapshot = std::make_shared<RatingMatrix>(*live_);
  std::unique_ptr<RecModel> model;
  switch (config_.algorithm) {
    case RecAlgorithm::kItemCosCF:
      model = ItemCFModel::Build(snapshot, /*centered=*/false,
                                 config_.sim_opts);
      break;
    case RecAlgorithm::kItemPearCF:
      model = ItemCFModel::Build(snapshot, /*centered=*/true,
                                 config_.sim_opts);
      break;
    case RecAlgorithm::kUserCosCF:
      model = UserCFModel::Build(snapshot, /*centered=*/false,
                                 config_.sim_opts);
      break;
    case RecAlgorithm::kUserPearCF:
      model = UserCFModel::Build(snapshot, /*centered=*/true,
                                 config_.sim_opts);
      break;
    case RecAlgorithm::kSVD:
      model = SvdModel::Build(snapshot, config_.svd_opts);
      break;
  }
  if (model == nullptr) {
    return Status::Internal("model construction failed for " + config_.name);
  }
  snapshot_ = snapshot;
  model_ = std::move(model);
  base_size_ = snapshot->NumRatings();
  pending_updates_ = 0;
  obs::Count(obs::Counter::kModelBuilds);
  obs::ObserveUs(obs::Histogram::kModelTrainUs,
                 static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6));
  return watch.ElapsedSeconds();
}

Status Recommender::MaterializeUser(int64_t user_id) {
  if (model_ == nullptr) {
    return Status::ExecutionError("recommender " + config_.name +
                                  " has no built model");
  }
  Stopwatch watch;
  const RatingMatrix& r = *snapshot_;
  auto uopt = r.UserIndex(user_id);
  if (!uopt) return Status::NotFound("unknown user");
  const auto& rated = r.UserVector(*uopt);
  // Collect the user's unseen items, predict their scores in parallel
  // (Predict is a const read of the model), then insert serially — the
  // score index is not thread-safe and insertion order is kept stable.
  std::vector<int64_t> unseen;
  unseen.reserve(r.NumItems() - rated.size());
  size_t rated_pos = 0;
  for (size_t i = 0; i < r.NumItems(); ++i) {
    // Skip items the user already rated (both lists are idx-sorted).
    while (rated_pos < rated.size() &&
           rated[rated_pos].idx < static_cast<int32_t>(i)) {
      ++rated_pos;
    }
    if (rated_pos < rated.size() &&
        rated[rated_pos].idx == static_cast<int32_t>(i)) {
      continue;
    }
    unseen.push_back(r.ItemIdAt(static_cast<int32_t>(i)));
  }
  std::vector<double> scores(unseen.size(), 0.0);
  TaskScheduler& sched = TaskScheduler::Global();
  const size_t morsel =
      std::clamp<size_t>(unseen.size() / (sched.num_threads() * 4), 32, 4096);
  sched.ParallelFor(unseen.size(), morsel, [&](size_t begin, size_t end) {
    // One PredictBatch per morsel: each score depends only on its own
    // (user, item) pair, so morsel boundaries cannot change results.
    model_->PredictBatch(
        user_id, std::span<const int64_t>(unseen.data() + begin, end - begin),
        std::span<double>(scores.data() + begin, end - begin));
  });
  for (size_t i = 0; i < unseen.size(); ++i) {
    score_index_.Put(user_id, unseen[i], scores[i]);
  }
  obs::ObserveUs(obs::Histogram::kCacheMaterializeUs,
                 static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6));
  return Status::OK();
}

Status Recommender::MaterializeAll() {
  if (model_ == nullptr) {
    return Status::ExecutionError("recommender " + config_.name +
                                  " has no built model");
  }
  const RatingMatrix& r = *snapshot_;
  for (size_t u = 0; u < r.NumUsers(); ++u) {
    RECDB_RETURN_NOT_OK(
        MaterializeUser(r.UserIdAt(static_cast<int32_t>(u))));
  }
  return Status::OK();
}

}  // namespace recdb
