#include "recommender/svd_model.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace recdb {

namespace {

/// Deterministic pair hash for the holdout split.
uint64_t PairHash(int64_t u, int64_t i) {
  uint64_t h = static_cast<uint64_t>(u) * 0x9e3779b97f4a7c15ULL;
  h ^= static_cast<uint64_t>(i) + 0x7f4a7c159e3779b9ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

std::unique_ptr<SvdModel> SvdModel::Build(
    std::shared_ptr<const RatingMatrix> ratings, const SvdOptions& opts) {
  return BuildWithHoldout(std::move(ratings), opts, /*holdout_mod=*/0);
}

std::unique_ptr<SvdModel> SvdModel::BuildWithHoldout(
    std::shared_ptr<const RatingMatrix> ratings, const SvdOptions& opts,
    int32_t holdout_mod) {
  auto model = std::unique_ptr<SvdModel>(new SvdModel(std::move(ratings), opts));
  model->Train(holdout_mod);
  return model;
}

void SvdModel::Train(int32_t holdout_mod) {
  const RatingMatrix& r = *ratings_;
  const size_t nu = r.NumUsers();
  const size_t ni = r.NumItems();
  const int32_t f = opts_.num_factors;
  global_mean_ = r.GlobalMean();

  Rng rng(opts_.seed);
  const double init_scale = 1.0 / std::sqrt(static_cast<double>(f));
  user_factors_.assign(nu, std::vector<float>(f));
  item_factors_.assign(ni, std::vector<float>(f));
  for (auto& vec : user_factors_)
    for (auto& v : vec) v = static_cast<float>(rng.Gaussian(0, init_scale));
  for (auto& vec : item_factors_)
    for (auto& v : vec) v = static_cast<float>(rng.Gaussian(0, init_scale));
  user_bias_.assign(nu, 0.0f);
  item_bias_.assign(ni, 0.0f);

  // Flatten training triples; hold out a deterministic slice if requested.
  struct Triple {
    int32_t u, i;
    float rating;
  };
  std::vector<Triple> train, held;
  train.reserve(r.NumRatings());
  for (size_t u = 0; u < nu; ++u) {
    for (const auto& e : r.UserVector(static_cast<int32_t>(u))) {
      Triple t{static_cast<int32_t>(u), e.idx,
               static_cast<float>(e.rating)};
      bool hold =
          holdout_mod > 1 &&
          PairHash(r.UserIdAt(t.u), r.ItemIdAt(t.i)) % holdout_mod == 0;
      (hold ? held : train).push_back(t);
    }
  }

  const float lr = static_cast<float>(opts_.learning_rate);
  const float lambda = static_cast<float>(opts_.regularization);
  const bool biases = opts_.use_biases;
  const float mean = biases ? static_cast<float>(global_mean_) : 0.0f;

  epoch_rmse_.clear();
  for (int32_t epoch = 0; epoch < opts_.num_epochs; ++epoch) {
    std::shuffle(train.begin(), train.end(), rng.engine());
    double se = 0;
    for (const auto& t : train) {
      float* pu = user_factors_[t.u].data();
      float* qi = item_factors_[t.i].data();
      float pred = mean;
      if (biases) pred += user_bias_[t.u] + item_bias_[t.i];
      for (int32_t k = 0; k < f; ++k) pred += pu[k] * qi[k];
      float err = t.rating - pred;
      se += static_cast<double>(err) * err;
      if (biases) {
        user_bias_[t.u] += lr * (err - lambda * user_bias_[t.u]);
        item_bias_[t.i] += lr * (err - lambda * item_bias_[t.i]);
      }
      for (int32_t k = 0; k < f; ++k) {
        float puk = pu[k];
        pu[k] += lr * (err * qi[k] - lambda * puk);
        qi[k] += lr * (err * puk - lambda * qi[k]);
      }
    }
    epoch_rmse_.push_back(
        train.empty() ? 0 : std::sqrt(se / static_cast<double>(train.size())));
  }

  if (!held.empty()) {
    double se = 0;
    for (const auto& t : held) {
      double err = t.rating - PredictByIndex(t.u, t.i);
      se += err * err;
    }
    holdout_rmse_ = std::sqrt(se / static_cast<double>(held.size()));
  }
}

double SvdModel::PredictByIndex(int32_t u, int32_t i) const {
  const auto& pu = user_factors_[u];
  const auto& qi = item_factors_[i];
  double pred = 0;
  if (opts_.use_biases) {
    pred = global_mean_ + user_bias_[u] + item_bias_[i];
  }
  for (size_t k = 0; k < pu.size(); ++k) {
    pred += static_cast<double>(pu[k]) * qi[k];
  }
  return pred;
}

double SvdModel::Predict(int64_t user_id, int64_t item_id) const {
  auto u = ratings_->UserIndex(user_id);
  auto i = ratings_->ItemIndex(item_id);
  if (!u || !i) return 0;
  return PredictByIndex(*u, *i);
}

const std::vector<float>& SvdModel::UserFactors(int32_t user_idx) const {
  return user_factors_[user_idx];
}

const std::vector<float>& SvdModel::ItemFactors(int32_t item_idx) const {
  return item_factors_[item_idx];
}

size_t SvdModel::ApproxBytes() const {
  return (user_factors_.size() + item_factors_.size()) *
             (opts_.num_factors * sizeof(float) + 24) +
         (user_bias_.size() + item_bias_.size()) * sizeof(float);
}

}  // namespace recdb
