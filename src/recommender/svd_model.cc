#include "recommender/svd_model.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace recdb {

namespace {

/// Deterministic pair hash for the holdout split.
uint64_t PairHash(int64_t u, int64_t i) {
  uint64_t h = static_cast<uint64_t>(u) * 0x9e3779b97f4a7c15ULL;
  h ^= static_cast<uint64_t>(i) + 0x7f4a7c159e3779b9ULL + (h << 6) + (h >> 2);
  return h;
}

/// Fixed-association, auto-vectorizable dot product of two factor rows.
/// Eight independent float accumulators let the compiler emit SIMD adds and
/// multiplies (a single double accumulator is a serial dependency chain the
/// vectorizer may not reorder). The association — lane j sums the k ≡ j
/// (mod 8) terms, then a fixed reduction tree — is deterministic, and batch
/// and scalar prediction share this one kernel, so batch == scalar stays
/// bit-identical by construction.
inline double DotRows(const float* a, const float* b, int32_t n) {
  float acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  int32_t k = 0;
  for (; k + 8 <= n; k += 8) {
    for (int32_t j = 0; j < 8; ++j) acc[j] += a[k + j] * b[k + j];
  }
  for (; k < n; ++k) acc[k & 7] += a[k] * b[k];
  const float s01 = acc[0] + acc[1];
  const float s23 = acc[2] + acc[3];
  const float s45 = acc[4] + acc[5];
  const float s67 = acc[6] + acc[7];
  return static_cast<double>((s01 + s23) + (s45 + s67));
}

}  // namespace

std::unique_ptr<SvdModel> SvdModel::Build(
    std::shared_ptr<RatingMatrix> ratings, const SvdOptions& opts) {
  return BuildWithHoldout(std::move(ratings), opts, /*holdout_mod=*/0);
}

std::unique_ptr<SvdModel> SvdModel::BuildWithHoldout(
    std::shared_ptr<RatingMatrix> ratings, const SvdOptions& opts,
    int32_t holdout_mod) {
  ratings->Freeze();
  auto model = std::unique_ptr<SvdModel>(new SvdModel(std::move(ratings), opts));
  model->Train(holdout_mod);
  return model;
}

void SvdModel::Train(int32_t holdout_mod) {
  const RatingMatrix& r = *ratings_;
  const size_t nu = r.NumUsers();
  const size_t ni = r.NumItems();
  const int32_t f = opts_.num_factors;
  global_mean_ = r.GlobalMean();

  Rng rng(opts_.seed);
  const double init_scale = 1.0 / std::sqrt(static_cast<double>(f));
  // Same draw order as the old vector-of-vectors layout (entity-major, then
  // factor), so flattening does not change the trained model.
  user_factors_.assign(nu * static_cast<size_t>(f), 0.0f);
  item_factors_.assign(ni * static_cast<size_t>(f), 0.0f);
  for (auto& v : user_factors_)
    v = static_cast<float>(rng.Gaussian(0, init_scale));
  for (auto& v : item_factors_)
    v = static_cast<float>(rng.Gaussian(0, init_scale));
  user_bias_.assign(nu, 0.0f);
  item_bias_.assign(ni, 0.0f);

  // Flatten training triples; hold out a deterministic slice if requested.
  struct Triple {
    int32_t u, i;
    float rating;
  };
  std::vector<Triple> train, held;
  train.reserve(r.NumRatings());
  for (size_t u = 0; u < nu; ++u) {
    for (const auto& e : r.UserVector(static_cast<int32_t>(u))) {
      Triple t{static_cast<int32_t>(u), e.idx,
               static_cast<float>(e.rating)};
      bool hold =
          holdout_mod > 1 &&
          PairHash(r.UserIdAt(t.u), r.ItemIdAt(t.i)) % holdout_mod == 0;
      (hold ? held : train).push_back(t);
    }
  }

  const float lr = static_cast<float>(opts_.learning_rate);
  const float lambda = static_cast<float>(opts_.regularization);
  const bool biases = opts_.use_biases;
  const float mean = biases ? static_cast<float>(global_mean_) : 0.0f;

  epoch_rmse_.clear();
  for (int32_t epoch = 0; epoch < opts_.num_epochs; ++epoch) {
    std::shuffle(train.begin(), train.end(), rng.engine());
    double se = 0;
    for (const auto& t : train) {
      float* pu = user_factors_.data() + static_cast<size_t>(t.u) * f;
      float* qi = item_factors_.data() + static_cast<size_t>(t.i) * f;
      float pred = mean;
      if (biases) pred += user_bias_[t.u] + item_bias_[t.i];
      for (int32_t k = 0; k < f; ++k) pred += pu[k] * qi[k];
      float err = t.rating - pred;
      se += static_cast<double>(err) * err;
      if (biases) {
        user_bias_[t.u] += lr * (err - lambda * user_bias_[t.u]);
        item_bias_[t.i] += lr * (err - lambda * item_bias_[t.i]);
      }
      for (int32_t k = 0; k < f; ++k) {
        float puk = pu[k];
        pu[k] += lr * (err * qi[k] - lambda * puk);
        qi[k] += lr * (err * puk - lambda * qi[k]);
      }
    }
    epoch_rmse_.push_back(
        train.empty() ? 0 : std::sqrt(se / static_cast<double>(train.size())));
  }

  if (!held.empty()) {
    double se = 0;
    for (const auto& t : held) {
      double err = t.rating - PredictByIndex(t.u, t.i);
      se += err * err;
    }
    holdout_rmse_ = std::sqrt(se / static_cast<double>(held.size()));
  }
}

double SvdModel::PredictByIndex(int32_t u, int32_t i) const {
  const int32_t f = opts_.num_factors;
  if (u < 0 || static_cast<size_t>(u) >= NumUserRows() || i < 0 ||
      static_cast<size_t>(i) >= NumItemRows()) {
    // Interned after training and not yet folded in: no factor row.
    return 0;
  }
  const float* pu = user_factors_.data() + static_cast<size_t>(u) * f;
  const float* qi = item_factors_.data() + static_cast<size_t>(i) * f;
  double pred = 0;
  if (opts_.use_biases) {
    pred = global_mean_ + user_bias_[u] + item_bias_[i];
  }
  for (int32_t k = 0; k < f; ++k) {
    pred += static_cast<double>(pu[k]) * qi[k];
  }
  return pred;
}

void SvdModel::DoPredictBatch(int64_t user_id, std::span<const int64_t> items,
                            std::span<double> out) const {
  RECDB_DCHECK(items.size() == out.size());
  auto u = ratings_->UserIndex(user_id);
  if (!u || static_cast<size_t>(*u) >= NumUserRows()) {
    // Unknown user, or one interned after training whose factor row has
    // not been folded in yet.
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  // One hash lookup for the user, then two passes per chunk: resolve the
  // candidate ids first (independent hash probes overlap in the memory
  // pipeline instead of serializing one lookup per candidate as the scalar
  // path must), then a pure dot-product pass streaming the contiguous
  // row-major factor rows.
  const int32_t f = opts_.num_factors;
  const float* pu = user_factors_.data() + static_cast<size_t>(*u) * f;
  const float* qf = item_factors_.data();
  const bool biases = opts_.use_biases;
  const double user_base = biases ? global_mean_ + user_bias_[*u] : 0.0;
  constexpr size_t kChunk = 256;
  int32_t idx[kChunk];
  for (size_t base = 0; base < items.size(); base += kChunk) {
    const size_t n = std::min(kChunk, items.size() - base);
    for (size_t c = 0; c < n; ++c) {
      auto i = ratings_->ItemIndex(items[base + c]);
      // Items interned after training score 0 until folded in.
      idx[c] = (i && static_cast<size_t>(*i) < NumItemRows()) ? *i : -1;
    }
    for (size_t c = 0; c < n; ++c) {
      if (idx[c] < 0) {
        out[base + c] = 0;  // unknown item
        continue;
      }
      const float* qi = qf + static_cast<size_t>(idx[c]) * f;
      const double pred = biases ? user_base + item_bias_[idx[c]] : 0.0;
      out[base + c] = pred + DotRows(pu, qi, f);
    }
  }
}

std::span<const float> SvdModel::UserFactors(int32_t user_idx) const {
  const int32_t f = opts_.num_factors;
  return {user_factors_.data() + static_cast<size_t>(user_idx) * f,
          static_cast<size_t>(f)};
}

std::span<const float> SvdModel::ItemFactors(int32_t item_idx) const {
  const int32_t f = opts_.num_factors;
  return {item_factors_.data() + static_cast<size_t>(item_idx) * f,
          static_cast<size_t>(f)};
}

Result<ModelUpdate> SvdModel::PrepareDeltaUpdate(
    const std::vector<DeltaOp>& ops) const {
  (void)ops;  // fold-in scope is "every entity newer than the trained rows"
  ModelUpdate update;
  const RatingMatrix& r = *ratings_;
  update.num_users = r.NumUsers();
  update.num_items = r.NumItems();
  const int32_t f = opts_.num_factors;
  const size_t trained_users = NumUserRows();
  const size_t trained_items = NumItemRows();
  const float lr = static_cast<float>(opts_.learning_rate);
  const float lambda = static_cast<float>(opts_.regularization);
  const bool biases = opts_.use_biases;
  const float mean = biases ? static_cast<float>(global_mean_) : 0.0f;

  // Fold new users first, against trained item rows only: zero-init, then
  // fold_in_epochs deterministic SGD passes over the user's merged ratings
  // in ascending item order. Ratings of items that are themselves new are
  // skipped (no trained factor row to regress against).
  for (size_t u = trained_users; u < update.num_users; ++u) {
    std::vector<float> pu(static_cast<size_t>(f), 0.0f);
    for (int32_t epoch = 0; epoch < opts_.fold_in_epochs; ++epoch) {
      for (const auto& e : r.UserVector(static_cast<int32_t>(u))) {
        if (static_cast<size_t>(e.idx) >= trained_items) continue;
        const float* qi = item_factors_.data() + static_cast<size_t>(e.idx) * f;
        float pred = mean;
        if (biases) pred += item_bias_[e.idx];  // new user's bias stays 0
        for (int32_t k = 0; k < f; ++k) pred += pu[k] * qi[k];
        float err = static_cast<float>(e.rating) - pred;
        for (int32_t k = 0; k < f; ++k) {
          pu[k] += lr * (err * qi[k] - lambda * pu[k]);
        }
      }
    }
    update.user_rows.emplace_back(static_cast<int32_t>(u), std::move(pu));
    update.stale_users.push_back(r.UserIdAt(static_cast<int32_t>(u)));
  }

  // Then new items, against all user rows including the just-folded ones.
  auto user_row = [&](int32_t u) -> const float* {
    if (static_cast<size_t>(u) < trained_users) {
      return user_factors_.data() + static_cast<size_t>(u) * f;
    }
    size_t off = static_cast<size_t>(u) - trained_users;
    return off < update.user_rows.size() ? update.user_rows[off].second.data()
                                         : nullptr;
  };
  for (size_t i = trained_items; i < update.num_items; ++i) {
    std::vector<float> qi(static_cast<size_t>(f), 0.0f);
    for (int32_t epoch = 0; epoch < opts_.fold_in_epochs; ++epoch) {
      for (const auto& e : r.ItemVector(static_cast<int32_t>(i))) {
        const float* pu = user_row(e.idx);
        if (!pu) continue;
        float pred = mean;
        if (biases && static_cast<size_t>(e.idx) < trained_users) {
          pred += user_bias_[e.idx];  // new item's bias stays 0
        }
        for (int32_t k = 0; k < f; ++k) pred += pu[k] * qi[k];
        float err = static_cast<float>(e.rating) - pred;
        for (int32_t k = 0; k < f; ++k) {
          qi[k] += lr * (err * pu[k] - lambda * qi[k]);
        }
      }
    }
    update.item_rows.emplace_back(static_cast<int32_t>(i), std::move(qi));
    update.stale_items.push_back(r.ItemIdAt(static_cast<int32_t>(i)));
  }
  return update;
}

void SvdModel::ApplyDeltaUpdate(ModelUpdate&& update) {
  const size_t f = static_cast<size_t>(opts_.num_factors);
  if (update.num_users * f > user_factors_.size()) {
    user_factors_.resize(update.num_users * f, 0.0f);
    user_bias_.resize(update.num_users, 0.0f);
  }
  if (update.num_items * f > item_factors_.size()) {
    item_factors_.resize(update.num_items * f, 0.0f);
    item_bias_.resize(update.num_items, 0.0f);
  }
  size_t folded = 0;
  for (auto& [idx, row] : update.user_rows) {
    if (idx < 0 || static_cast<size_t>(idx) >= NumUserRows()) continue;
    std::copy(row.begin(), row.end(),
              user_factors_.begin() + static_cast<size_t>(idx) * f);
    ++folded;
  }
  for (auto& [idx, row] : update.item_rows) {
    if (idx < 0 || static_cast<size_t>(idx) >= NumItemRows()) continue;
    std::copy(row.begin(), row.end(),
              item_factors_.begin() + static_cast<size_t>(idx) * f);
    ++folded;
  }
  obs::Count(obs::Counter::kIngestSvdFoldIns, folded);
}

bool SvdModel::ComputePruneBounds(PruneBoundTable* out) const {
  const int32_t f = opts_.num_factors;
  const size_t ni = NumItemRows();
  out->item_scale.resize(ni);
  for (size_t i = 0; i < ni; ++i) {
    const float* qi = item_factors_.data() + i * static_cast<size_t>(f);
    double sq = 0;
    for (int32_t k = 0; k < f; ++k) {
      sq += static_cast<double>(qi[k]) * qi[k];
    }
    out->item_scale[i] = std::sqrt(sq);
  }
  out->item_offset.clear();
  if (opts_.use_biases) {
    out->item_offset.assign(item_bias_.begin(), item_bias_.begin() + ni);
  }
  // DotRows accumulates in float lanes; its result can exceed the
  // real-valued ‖p‖‖q‖ bound by O(f·eps_float) relative.
  out->slack = 1e-5;
  out->candidate_generation = false;
  out->rating_dependent = false;
  // Items without a factor row score exactly 0 until folded in.
  out->oob_must_score = false;
  return true;
}

double SvdModel::PruneUserScale(int32_t user_idx) const {
  if (user_idx < 0 || static_cast<size_t>(user_idx) >= NumUserRows()) {
    return 0.0;
  }
  const int32_t f = opts_.num_factors;
  const float* pu =
      user_factors_.data() + static_cast<size_t>(user_idx) * f;
  double sq = 0;
  for (int32_t k = 0; k < f; ++k) {
    sq += static_cast<double>(pu[k]) * pu[k];
  }
  return std::sqrt(sq);
}

double SvdModel::PruneUserOffset(int32_t user_idx) const {
  if (!opts_.use_biases || user_idx < 0 ||
      static_cast<size_t>(user_idx) >= NumUserRows()) {
    return 0.0;
  }
  return global_mean_ + static_cast<double>(user_bias_[user_idx]);
}

bool SvdModel::PruneUserAllZero(int32_t user_idx) const {
  // A user without a factor row is zero-filled by the kernel regardless of
  // biases, so the generic scale==0 inference would be wrong with biases on.
  return user_idx < 0 || static_cast<size_t>(user_idx) >= NumUserRows();
}

size_t SvdModel::ApproxBytes() const {
  return (user_factors_.capacity() + item_factors_.capacity()) *
             sizeof(float) +
         (user_bias_.capacity() + item_bias_.capacity()) * sizeof(float) +
         ratings_->CsrApproxBytes();
}

}  // namespace recdb
