// SvdModel: regularized matrix factorization trained with stochastic
// gradient descent (paper Section IV-A.3, Eq. 3).
//
// Learns user factor vectors p_u and item factor vectors q_i minimizing
//   Σ (r_ui - q_i·p_u)² + λ(‖q_i‖² + ‖p_u‖²)
// Prediction is the dot product q_i·p_u (paper Algorithm 2), optionally
// offset by global mean + biases (off by default to follow Eq. 3 literally).
#pragma once

#include <memory>
#include <vector>

#include "recommender/model.h"

namespace recdb {

struct SvdOptions {
  int32_t num_factors = 32;
  int32_t num_epochs = 25;
  double learning_rate = 0.01;
  double regularization = 0.05;  // λ in Eq. (3)
  uint64_t seed = 7;
  /// Add global mean + user/item bias terms to the model (Koren-style).
  /// Default false: the paper's Eq. (3) has factors only.
  bool use_biases = false;
  /// SGD passes used to fold in a user/item interned after training,
  /// holding the trained side fixed (incremental maintenance; a full
  /// retrain is never triggered by ingest). Not part of the wire format.
  int32_t fold_in_epochs = 10;
};

class SvdModel : public RecModel {
 public:
  /// Train on the full snapshot (frozen to flat CSR as a side effect).
  static std::unique_ptr<SvdModel> Build(
      std::shared_ptr<RatingMatrix> ratings,
      const SvdOptions& opts = {});

  /// Train while holding out every rating with (hash(u,i) % holdout_mod ==
  /// 0); held-out pairs are used for test RMSE only. holdout_mod <= 1 means
  /// no holdout. Accuracy-invariant tests use this.
  static std::unique_ptr<SvdModel> BuildWithHoldout(
      std::shared_ptr<RatingMatrix> ratings, const SvdOptions& opts,
      int32_t holdout_mod);

  RecAlgorithm algorithm() const override { return RecAlgorithm::kSVD; }

  /// The user's factor row is resolved once; each candidate is a dot
  /// product over contiguous row-major factor storage — a tight,
  /// auto-vectorizable inner loop (see RECDB_NATIVE in CMakeLists.txt).
  void DoPredictBatch(int64_t user_id, std::span<const int64_t> items,
                      std::span<double> out) const override;

  /// Training RMSE at the end of each epoch (monotonicity checks).
  const std::vector<double>& epoch_rmse() const { return epoch_rmse_; }

  /// RMSE over the held-out set (0 when no holdout was used).
  double holdout_rmse() const { return holdout_rmse_; }

  /// Factor row accessors (paper Figure 2's User/Item Factor tables).
  /// Views into the single row-major SoA buffer per side.
  std::span<const float> UserFactors(int32_t user_idx) const;
  std::span<const float> ItemFactors(int32_t item_idx) const;

  size_t ApproxBytes() const override;

  const SvdOptions& options() const { return opts_; }

  /// Number of factor rows currently held per side (grows via fold-in).
  size_t NumUserRows() const {
    return user_factors_.size() / static_cast<size_t>(opts_.num_factors);
  }
  size_t NumItemRows() const {
    return item_factors_.size() / static_cast<size_t>(opts_.num_factors);
  }

  /// Incremental maintenance: deterministically fold in factor rows for
  /// users/items interned since training — zero-initialized, then
  /// fold_in_epochs SGD passes against the frozen counterpart factors
  /// (new users first from trained item rows, then new items against all
  /// user rows including the just-folded ones). Trained rows never move.
  bool SupportsIncrementalUpdate() const override { return true; }
  Result<ModelUpdate> PrepareDeltaUpdate(
      const std::vector<DeltaOp>& ops) const override;
  void ApplyDeltaUpdate(ModelUpdate&& update) override;

  /// Cauchy–Schwarz bound: |p_u·q_i| <= ‖p_u‖·‖q_i‖, plus the exact bias
  /// offsets when use_biases (DESIGN.md §13). The slack covers the float
  /// lane accumulation in DotRows exceeding the real-valued bound.
  bool ComputePruneBounds(PruneBoundTable* out) const override;
  double PruneUserScale(int32_t user_idx) const override;
  double PruneUserOffset(int32_t user_idx) const override;
  bool PruneUserAllZero(int32_t user_idx) const override;

 private:
  SvdModel(std::shared_ptr<const RatingMatrix> ratings, SvdOptions opts)
      : RecModel(std::move(ratings)), opts_(opts) {}

  void Train(int32_t holdout_mod);
  double PredictByIndex(int32_t u, int32_t i) const;

  SvdOptions opts_;
  // Flat row-major factor matrices: entity e's row is
  // [e * num_factors, (e + 1) * num_factors) — one contiguous allocation
  // per side so candidate dot products never chase a per-row pointer.
  std::vector<float> user_factors_;
  std::vector<float> item_factors_;
  std::vector<float> user_bias_;
  std::vector<float> item_bias_;
  double global_mean_ = 0;
  std::vector<double> epoch_rmse_;
  double holdout_rmse_ = 0;
};

}  // namespace recdb
