#include "recommender/evaluation.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace recdb {

namespace {

/// Deterministic pair hash for the holdout split (same mixing as the SVD
/// trainer's holdout, different constant so the splits are independent).
uint64_t SplitHash(int64_t u, int64_t i) {
  uint64_t h = static_cast<uint64_t>(u) * 0xc2b2ae3d27d4eb4fULL;
  h ^= static_cast<uint64_t>(i) + 0x165667b19e3779f9ULL + (h << 6) + (h >> 2);
  return h;
}

std::unique_ptr<RecModel> BuildModel(std::shared_ptr<RatingMatrix> train,
                                     RecAlgorithm algo,
                                     const EvalOptions& options) {
  switch (algo) {
    case RecAlgorithm::kItemCosCF:
      return ItemCFModel::Build(train, false, options.sim_opts);
    case RecAlgorithm::kItemPearCF:
      return ItemCFModel::Build(train, true, options.sim_opts);
    case RecAlgorithm::kUserCosCF:
      return UserCFModel::Build(train, false, options.sim_opts);
    case RecAlgorithm::kUserPearCF:
      return UserCFModel::Build(train, true, options.sim_opts);
    case RecAlgorithm::kSVD:
      return SvdModel::Build(train, options.svd_opts);
  }
  return nullptr;
}

}  // namespace

Result<EvalResult> EvaluateAlgorithm(const RatingMatrix& full,
                                     RecAlgorithm algo,
                                     const EvalOptions& options) {
  if (options.holdout_mod < 2) {
    return Status::InvalidArgument("holdout_mod must be >= 2");
  }
  if (full.NumRatings() < 10) {
    return Status::InvalidArgument("too few ratings to evaluate");
  }

  struct TestRating {
    int64_t user, item;
    double rating;
  };
  auto train = std::make_shared<RatingMatrix>();
  std::vector<TestRating> test;
  for (size_t u = 0; u < full.NumUsers(); ++u) {
    int64_t uid = full.UserIdAt(static_cast<int32_t>(u));
    for (const auto& e : full.UserVector(static_cast<int32_t>(u))) {
      int64_t iid = full.ItemIdAt(e.idx);
      if (SplitHash(uid, iid) % options.holdout_mod == 0) {
        test.push_back({uid, iid, e.rating});
      } else {
        train->Add(uid, iid, e.rating);
      }
    }
  }
  if (test.empty() || train->NumRatings() == 0) {
    return Status::InvalidArgument("degenerate train/test split");
  }

  auto model = BuildModel(train, algo, options);
  if (model == nullptr) return Status::Internal("model build failed");

  EvalResult result;
  result.num_train_ratings = train->NumRatings();
  result.num_test_ratings = test.size();

  // Prediction-error metrics. Test triples are user-major (the split loop
  // walks users in order), so consecutive runs share a user and batch
  // through one PredictBatch each.
  double se = 0, ae = 0, base_se = 0;
  const double mean = train->GlobalMean();
  std::unordered_map<int64_t, std::vector<TestRating>> by_user;
  {
    std::vector<int64_t> run_items;
    std::vector<double> run_scores;
    size_t p = 0;
    while (p < test.size()) {
      const int64_t uid = test[p].user;
      size_t q = p;
      run_items.clear();
      while (q < test.size() && test[q].user == uid) {
        run_items.push_back(test[q].item);
        ++q;
      }
      run_scores.assign(run_items.size(), 0.0);
      model->PredictBatch(uid, run_items, run_scores);
      for (size_t k = 0; k < run_items.size(); ++k) {
        const TestRating& t = test[p + k];
        double pred = run_scores[k];
        se += (pred - t.rating) * (pred - t.rating);
        ae += std::fabs(pred - t.rating);
        base_se += (mean - t.rating) * (mean - t.rating);
        by_user[t.user].push_back(t);
      }
      p = q;
    }
  }
  const double n = static_cast<double>(test.size());
  result.rmse = std::sqrt(se / n);
  result.mae = ae / n;
  result.global_mean_rmse = std::sqrt(base_se / n);

  // Ranking metrics: per user, rank every item unseen in training and check
  // how many of the top-k are relevant held-out items.
  double prec_sum = 0, rec_sum = 0;
  for (const auto& [uid, items] : by_user) {
    size_t relevant = 0;
    std::unordered_map<int64_t, bool> is_relevant;
    for (const auto& t : items) {
      if (t.rating >= options.relevance_threshold) {
        is_relevant[t.item] = true;
        ++relevant;
      }
    }
    if (relevant == 0) continue;
    auto uidx = train->UserIndex(uid);
    if (!uidx) continue;  // user has no training ratings: cold start
    std::vector<int64_t> unseen;
    for (int64_t iid : train->item_ids()) {
      if (train->Get(uid, iid).has_value()) continue;  // seen in training
      unseen.push_back(iid);
    }
    std::vector<double> pred(unseen.size(), 0.0);
    model->PredictBatch(uid, unseen, pred);
    std::vector<std::pair<double, int64_t>> scored;
    scored.reserve(unseen.size());
    for (size_t j = 0; j < unseen.size(); ++j) {
      scored.emplace_back(pred[j], unseen[j]);
    }
    size_t k = std::min(options.k, scored.size());
    if (k == 0) continue;
    std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                      [](const auto& a, const auto& b) {
                        if (a.first != b.first) return a.first > b.first;
                        return a.second < b.second;
                      });
    size_t hits = 0;
    for (size_t j = 0; j < k; ++j) {
      if (is_relevant.count(scored[j].second) > 0) ++hits;
    }
    prec_sum += static_cast<double>(hits) / static_cast<double>(options.k);
    rec_sum += static_cast<double>(hits) / static_cast<double>(relevant);
    ++result.num_ranked_users;
  }
  if (result.num_ranked_users > 0) {
    result.precision_at_k =
        prec_sum / static_cast<double>(result.num_ranked_users);
    result.recall_at_k = rec_sum / static_cast<double>(result.num_ranked_users);
  }
  return result;
}

}  // namespace recdb
