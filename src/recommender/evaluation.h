// Offline evaluation harness for recommendation quality.
//
// The paper explicitly does not study accuracy ("RecDB does not introduce a
// novel recommendation model with higher accuracy"); this harness exists so
// library users can validate algorithm/hyperparameter choices the way
// LensKit-style toolkits do: a deterministic train/test split, rating-
// prediction error (RMSE/MAE) and ranking quality (precision/recall@k).
#pragma once

#include <cstdint>

#include "recommender/cf_model.h"
#include "recommender/svd_model.h"

namespace recdb {

struct EvalOptions {
  /// One in `holdout_mod` ratings (by deterministic pair hash) is held out
  /// as the test set; the rest train the model. Must be >= 2.
  int32_t holdout_mod = 5;
  /// Ranking cutoff for precision/recall.
  size_t k = 10;
  /// A held-out rating >= this counts as "relevant" for ranking metrics.
  double relevance_threshold = 4.0;
  /// Hyperparameters forwarded to the model builders.
  SimilarityOptions sim_opts;
  SvdOptions svd_opts;
};

struct EvalResult {
  double rmse = 0;
  double mae = 0;
  /// Mean precision@k / recall@k over users with >= 1 relevant test item.
  double precision_at_k = 0;
  double recall_at_k = 0;
  size_t num_train_ratings = 0;
  size_t num_test_ratings = 0;
  size_t num_ranked_users = 0;
  /// RMSE of always predicting the training global mean (baseline).
  double global_mean_rmse = 0;
};

/// Split `full` into train/test, build `algo` on the train slice, and score
/// the held-out ratings. Deterministic for fixed options.
Result<EvalResult> EvaluateAlgorithm(const RatingMatrix& full,
                                     RecAlgorithm algo,
                                     const EvalOptions& options = {});

}  // namespace recdb
