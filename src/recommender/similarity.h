// Neighborhood (similarity-list) computation for collaborative filtering.
//
// Cosine similarity follows paper Eq. (1): dot product over co-rated
// dimensions, normalized by the full vector norms. Pearson correlation is
// realized as mean-centered cosine (each vector centered by its own mean
// before Eq. (1)) — the "adjusted cosine" formulation used by LensKit and
// the common in-practice Pearson variant; see DESIGN.md.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "recommender/rating_matrix.h"

namespace recdb {

/// One neighbor in a similarity list: (neighbor dense index, SimScore).
struct Neighbor {
  int32_t idx = 0;
  float sim = 0;
};

struct SimilarityOptions {
  /// Center vectors by their own mean first (Pearson / adjusted cosine).
  bool centered = false;
  /// Keep only the top-k most similar neighbors per vector (by |sim|);
  /// 0 keeps the full similarity list, as the paper's model tables do.
  int32_t top_k = 0;
  /// Drop pairs with fewer co-rated dimensions than this (noise control).
  int32_t min_overlap = 1;
};

/// Compute per-item similarity lists (paper Item Neighborhood Table):
/// result[i] is item i's neighbors, sorted by descending similarity.
std::vector<std::vector<Neighbor>> BuildItemNeighborhoods(
    const RatingMatrix& ratings, const SimilarityOptions& opts);

/// Compute per-user similarity lists (paper User Neighborhood Table).
std::vector<std::vector<Neighbor>> BuildUserNeighborhoods(
    const RatingMatrix& ratings, const SimilarityOptions& opts);

/// Recompute a subset of item-neighborhood rows against the matrix's
/// current (merged) contents. Each returned pair is (item row index,
/// fresh neighbor list), bit-identical to the same row of a full
/// BuildItemNeighborhoods over the same matrix: products are accumulated
/// in the same ascending-dimension float order and the selection/top-k
/// logic is shared code. Row indices may exceed the caller's current
/// neighborhood table size (new items); out-of-range indices are ignored.
std::vector<std::pair<int32_t, std::vector<Neighbor>>>
RecomputeItemNeighborhoodRows(const RatingMatrix& ratings,
                              const SimilarityOptions& opts,
                              const std::vector<int32_t>& rows);

/// User-based counterpart of RecomputeItemNeighborhoodRows.
std::vector<std::pair<int32_t, std::vector<Neighbor>>>
RecomputeUserNeighborhoodRows(const RatingMatrix& ratings,
                              const SimilarityOptions& opts,
                              const std::vector<int32_t>& rows);

/// Pairwise similarity of two sparse vectors (sorted by idx), per Eq. (1).
/// Exposed for direct testing against hand-computed fixtures.
double PairwiseCosine(const std::vector<RatingEntry>& a,
                      const std::vector<RatingEntry>& b);

}  // namespace recdb
