// RecModel: a built recommendation model (paper Step I output), queried by
// the RECOMMEND operators to produce RecScore(u, i) (paper Step II).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "recommender/algorithm.h"
#include "recommender/rating_matrix.h"
#include "recommender/similarity.h"

namespace recdb {

/// Incremental model maintenance payload: the rows a model must replace to
/// become equivalent to a full rebuild over the matrix's merged contents.
/// Produced by PrepareDeltaUpdate (read-only, runs off the writer lock) and
/// installed by ApplyDeltaUpdate (cheap, runs under the writer lock).
struct ModelUpdate {
  /// CF: recomputed neighborhood rows as (row index, fresh neighbor list).
  std::vector<std::pair<int32_t, std::vector<Neighbor>>> rows;
  /// CF: total row count after the update (covers newly interned entities).
  size_t num_rows = 0;
  /// SVD: folded-in factor rows for users/items new since the last train.
  std::vector<std::pair<int32_t, std::vector<float>>> user_rows;
  std::vector<std::pair<int32_t, std::vector<float>>> item_rows;
  size_t num_users = 0;
  size_t num_items = 0;
  /// External ids whose cached scores the commit must invalidate: for
  /// item-based CF every user gains/loses neighbors through these items;
  /// for user-based CF these users' whole prediction rows changed.
  std::vector<int64_t> stale_users;
  std::vector<int64_t> stale_items;

  bool empty() const {
    return rows.empty() && user_rows.empty() && item_rows.empty();
  }
};

class RecModel {
 public:
  explicit RecModel(std::shared_ptr<const RatingMatrix> ratings)
      : ratings_(std::move(ratings)) {}
  virtual ~RecModel() = default;

  virtual RecAlgorithm algorithm() const = 0;

  /// RecScore(u, i) for a batch of candidate items of one user. The user
  /// context (id resolution, rated-vector scatter, factor row) is resolved
  /// once for the whole batch; out[k] is the score of items[k]. Unknown
  /// user/item or empty candidate overlap yields 0 (paper Algorithm 1).
  /// Each out[k] depends only on (user_id, items[k]) — never on the other
  /// batch members — so any batching of the same pairs is bit-identical.
  /// Thread-safe: const read of the model with thread-local scratch.
  ///
  /// Non-virtual choke point: every scoring path in the engine (executors,
  /// cache admission, materialization, evaluation, OnTop baseline) funnels
  /// through here, so this is where model.predict_calls/predict_batches are
  /// counted. Implementations override DoPredictBatch.
  void PredictBatch(int64_t user_id, std::span<const int64_t> items,
                    std::span<double> out) const {
    obs::Count(obs::Counter::kModelPredictCalls, items.size());
    obs::Count(obs::Counter::kModelPredictBatches);
    DoPredictBatch(user_id, items, out);
  }

  /// RecScore(u, i) for external ids: a thin wrapper over a batch of one.
  double Predict(int64_t user_id, int64_t item_id) const {
    double out = 0;
    PredictBatch(user_id, std::span<const int64_t>(&item_id, 1),
                 std::span<double>(&out, 1));
    return out;
  }

  /// Rough model footprint in bytes (scalability ablations).
  virtual size_t ApproxBytes() const = 0;

  /// Compute the row replacements needed to bring this model in sync with
  /// the matrix's merged contents given the delta ops accumulated since it
  /// was built. Read-only with respect to the model (safe under a shared
  /// lock); the result commits via ApplyDeltaUpdate. The base model has no
  /// incremental form and returns an empty update.
  virtual Result<ModelUpdate> PrepareDeltaUpdate(
      const std::vector<DeltaOp>& ops) const {
    (void)ops;
    return ModelUpdate{};
  }

  /// Install rows prepared by PrepareDeltaUpdate. Must run under the writer
  /// lock (mutates model state readers consult).
  virtual void ApplyDeltaUpdate(ModelUpdate&& update) { (void)update; }

  /// The snapshot the model was built from.
  const RatingMatrix& ratings() const { return *ratings_; }
  std::shared_ptr<const RatingMatrix> ratings_ptr() const { return ratings_; }

 protected:
  virtual void DoPredictBatch(int64_t user_id, std::span<const int64_t> items,
                              std::span<double> out) const = 0;

  std::shared_ptr<const RatingMatrix> ratings_;
};

}  // namespace recdb
