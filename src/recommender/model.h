// RecModel: a built recommendation model (paper Step I output), queried by
// the RECOMMEND operators to produce RecScore(u, i) (paper Step II).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "recommender/algorithm.h"
#include "recommender/rating_matrix.h"

namespace recdb {

class RecModel {
 public:
  explicit RecModel(std::shared_ptr<const RatingMatrix> ratings)
      : ratings_(std::move(ratings)) {}
  virtual ~RecModel() = default;

  virtual RecAlgorithm algorithm() const = 0;

  /// RecScore(u, i) for external ids. Semantics follow paper Algorithm 1:
  /// unknown user/item or empty candidate overlap yields 0.
  virtual double Predict(int64_t user_id, int64_t item_id) const = 0;

  /// Rough model footprint in bytes (scalability ablations).
  virtual size_t ApproxBytes() const = 0;

  /// The snapshot the model was built from.
  const RatingMatrix& ratings() const { return *ratings_; }
  std::shared_ptr<const RatingMatrix> ratings_ptr() const { return ratings_; }

 protected:
  std::shared_ptr<const RatingMatrix> ratings_;
};

}  // namespace recdb
