// RecModel: a built recommendation model (paper Step I output), queried by
// the RECOMMEND operators to produce RecScore(u, i) (paper Step II).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "recommender/algorithm.h"
#include "recommender/rating_matrix.h"
#include "recommender/similarity.h"

namespace recdb {

/// Incremental model maintenance payload: the rows a model must replace to
/// become equivalent to a full rebuild over the matrix's merged contents.
/// Produced by PrepareDeltaUpdate (read-only, runs off the writer lock) and
/// installed by ApplyDeltaUpdate (cheap, runs under the writer lock).
struct ModelUpdate {
  /// CF: recomputed neighborhood rows as (row index, fresh neighbor list).
  std::vector<std::pair<int32_t, std::vector<Neighbor>>> rows;
  /// CF: total row count after the update (covers newly interned entities).
  size_t num_rows = 0;
  /// SVD: folded-in factor rows for users/items new since the last train.
  std::vector<std::pair<int32_t, std::vector<float>>> user_rows;
  std::vector<std::pair<int32_t, std::vector<float>>> item_rows;
  size_t num_users = 0;
  size_t num_items = 0;
  /// External ids whose cached scores the commit must invalidate: for
  /// item-based CF every user gains/loses neighbors through these items;
  /// for user-based CF these users' whole prediction rows changed.
  std::vector<int64_t> stale_users;
  std::vector<int64_t> stale_items;
  /// Set by models with no incremental form: the commit must rebuild the
  /// model from scratch over the merged matrix (and invalidate the whole
  /// score index) instead of patching rows. Without this a base-class model
  /// would silently stay stale until the next full retrain.
  bool full_rebuild = false;

  bool empty() const {
    return rows.empty() && user_rows.empty() && item_rows.empty() &&
           !full_rebuild;
  }
};

/// Static per-item upper-bound tables for WAND-style Top-N pruning
/// (DESIGN.md §13). For every item index i < item_scale.size() the model
/// guarantees
///
///   score(u, i) <= PruneUserScale(u) * item_scale[i]
///                  + PruneUserOffset(u) + item_offset[i]
///
/// against the matrix state the table was computed from (delta-touched rows
/// are handled by the flags below). Families that cannot bound their scores
/// simply do not produce a table and are never pruned.
struct PruneBoundTable {
  std::vector<double> item_scale;
  /// Additive per-item term (e.g. SVD item bias); empty means all zero.
  std::vector<double> item_offset;
  /// Relative padding applied to bounds before a skip decision, covering
  /// float rounding in the scoring kernels (the bound math is double, the
  /// kernels accumulate in float lanes for SVD).
  double slack = 0.0;
  /// CF: a score can be nonzero only for items sharing a co-rated item with
  /// the query user (as of model build) — candidate generation through the
  /// CandidateIndex postings is exact, every non-candidate scores 0.0.
  bool candidate_generation = false;
  /// item_scale derives from the rating matrix (UserCF: max |r| of the
  /// item's rater row). Delta-touched item rows invalidate their entry and
  /// must be scored unconditionally until the next re-freeze.
  bool rating_dependent = false;
  /// Item index >= table size (interned after the table was built): true
  /// means the kernel may emit a nonzero score (score unconditionally);
  /// false means the kernel provably returns exactly 0.0 for it.
  bool oob_must_score = false;
};

class RecModel {
 public:
  explicit RecModel(std::shared_ptr<const RatingMatrix> ratings)
      : ratings_(std::move(ratings)) {}
  virtual ~RecModel() = default;

  virtual RecAlgorithm algorithm() const = 0;

  /// RecScore(u, i) for a batch of candidate items of one user. The user
  /// context (id resolution, rated-vector scatter, factor row) is resolved
  /// once for the whole batch; out[k] is the score of items[k]. Unknown
  /// user/item or empty candidate overlap yields 0 (paper Algorithm 1).
  /// Each out[k] depends only on (user_id, items[k]) — never on the other
  /// batch members — so any batching of the same pairs is bit-identical.
  /// Thread-safe: const read of the model with thread-local scratch.
  ///
  /// Non-virtual choke point: every scoring path in the engine (executors,
  /// cache admission, materialization, evaluation, OnTop baseline) funnels
  /// through here, so this is where model.predict_calls/predict_batches are
  /// counted. Implementations override DoPredictBatch.
  void PredictBatch(int64_t user_id, std::span<const int64_t> items,
                    std::span<double> out) const {
    obs::Count(obs::Counter::kModelPredictCalls, items.size());
    obs::Count(obs::Counter::kModelPredictBatches);
    DoPredictBatch(user_id, items, out);
  }

  /// RecScore(u, i) for external ids: a thin wrapper over a batch of one.
  double Predict(int64_t user_id, int64_t item_id) const {
    double out = 0;
    PredictBatch(user_id, std::span<const int64_t>(&item_id, 1),
                 std::span<double>(&out, 1));
    return out;
  }

  /// Rough model footprint in bytes (scalability ablations).
  virtual size_t ApproxBytes() const = 0;

  /// True when the model can patch itself row-by-row via
  /// PrepareDeltaUpdate/ApplyDeltaUpdate. Models without an incremental
  /// form (the base fallback) answer false, which makes the maintenance
  /// policy refresh them immediately on the first delta op — a write must
  /// never be silently unreflected until a threshold trips.
  virtual bool SupportsIncrementalUpdate() const { return false; }

  /// Compute the row replacements needed to bring this model in sync with
  /// the matrix's merged contents given the delta ops accumulated since it
  /// was built. Read-only with respect to the model (safe under a shared
  /// lock); the result commits via ApplyDeltaUpdate. The base model has no
  /// incremental form: it requests a full rebuild at commit time instead of
  /// returning an empty (and therefore silently stale) update.
  virtual Result<ModelUpdate> PrepareDeltaUpdate(
      const std::vector<DeltaOp>& ops) const {
    ModelUpdate update;
    update.full_rebuild = !ops.empty();
    return update;
  }

  /// Install rows prepared by PrepareDeltaUpdate. Must run under the writer
  /// lock (mutates model state readers consult).
  virtual void ApplyDeltaUpdate(ModelUpdate&& update) { (void)update; }

  /// Top-N pruning support (DESIGN.md §13): fill `out` with the per-item
  /// upper-bound table and return true, or return false when this family
  /// cannot bound its scores (pruning is then never planned).
  virtual bool ComputePruneBounds(PruneBoundTable* out) const {
    (void)out;
    return false;
  }

  /// Per-user multiplicative / additive bound terms (see PruneBoundTable).
  /// Evaluated live at query time against the merge view, so user-side
  /// delta (e.g. a new highest rating) is always reflected.
  virtual double PruneUserScale(int32_t user_idx) const {
    (void)user_idx;
    return std::numeric_limits<double>::infinity();
  }
  virtual double PruneUserOffset(int32_t user_idx) const {
    (void)user_idx;
    return 0.0;
  }

  /// True when every score this model can emit for the user is exactly 0.0
  /// (e.g. an SVD user with no factor row): the pruned path then skips all
  /// scoring and fills the Top-N from unrated items in tie-break order.
  virtual bool PruneUserAllZero(int32_t user_idx) const {
    (void)user_idx;
    return false;
  }

  /// The snapshot the model was built from.
  const RatingMatrix& ratings() const { return *ratings_; }
  std::shared_ptr<const RatingMatrix> ratings_ptr() const { return ratings_; }

 protected:
  virtual void DoPredictBatch(int64_t user_id, std::span<const int64_t> items,
                              std::span<double> out) const = 0;

  std::shared_ptr<const RatingMatrix> ratings_;
};

}  // namespace recdb
