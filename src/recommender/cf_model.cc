#include "recommender/cf_model.h"

#include <algorithm>
#include <cmath>

namespace recdb {

namespace {

/// Binary search a sorted RatingEntry vector for a dense index.
const RatingEntry* FindEntry(const std::vector<RatingEntry>& vec,
                             int32_t idx) {
  auto it = std::lower_bound(
      vec.begin(), vec.end(), idx,
      [](const RatingEntry& e, int32_t i) { return e.idx < i; });
  if (it != vec.end() && it->idx == idx) return &*it;
  return nullptr;
}

size_t NeighborhoodBytes(const std::vector<std::vector<Neighbor>>& nb) {
  size_t total = 0;
  for (const auto& row : nb) total += row.size() * sizeof(Neighbor) + 24;
  return total;
}

size_t NeighborhoodEntries(const std::vector<std::vector<Neighbor>>& nb) {
  size_t total = 0;
  for (const auto& row : nb) total += row.size();
  return total;
}

double SimilarityLookup(const std::vector<std::vector<Neighbor>>& nb,
                        int32_t a, int32_t b) {
  for (const auto& n : nb[a]) {
    if (n.idx == b) return n.sim;
  }
  return 0;
}

}  // namespace

std::unique_ptr<ItemCFModel> ItemCFModel::Build(
    std::shared_ptr<const RatingMatrix> ratings, bool centered,
    const SimilarityOptions& opts) {
  SimilarityOptions o = opts;
  o.centered = centered;
  auto neighborhoods = BuildItemNeighborhoods(*ratings, o);
  return std::unique_ptr<ItemCFModel>(
      new ItemCFModel(std::move(ratings), centered, std::move(neighborhoods)));
}

double ItemCFModel::Predict(int64_t user_id, int64_t item_id) const {
  auto u = ratings_->UserIndex(user_id);
  auto i = ratings_->ItemIndex(item_id);
  if (!u || !i) return 0;
  const auto& user_items = ratings_->UserVector(*u);
  if (user_items.empty()) return 0;
  // CandItems = ItemNeighbors(i) ∩ UserItems(u)  (Algorithm 1, line 10).
  double num = 0, den = 0;
  for (const auto& nb : neighborhoods_[*i]) {
    const RatingEntry* e = FindEntry(user_items, nb.idx);
    if (e == nullptr) continue;
    num += static_cast<double>(nb.sim) * e->rating;
    den += std::fabs(static_cast<double>(nb.sim));
  }
  if (den == 0) return 0;  // empty overlap -> 0 (Algorithm 1, line 14)
  return num / den;
}

double ItemCFModel::Similarity(int64_t item_a, int64_t item_b) const {
  auto a = ratings_->ItemIndex(item_a);
  auto b = ratings_->ItemIndex(item_b);
  if (!a || !b) return 0;
  return SimilarityLookup(neighborhoods_, *a, *b);
}

size_t ItemCFModel::ApproxBytes() const {
  return NeighborhoodBytes(neighborhoods_);
}

size_t ItemCFModel::NumNeighborEntries() const {
  return NeighborhoodEntries(neighborhoods_);
}

std::unique_ptr<UserCFModel> UserCFModel::Build(
    std::shared_ptr<const RatingMatrix> ratings, bool centered,
    const SimilarityOptions& opts) {
  SimilarityOptions o = opts;
  o.centered = centered;
  auto neighborhoods = BuildUserNeighborhoods(*ratings, o);
  return std::unique_ptr<UserCFModel>(
      new UserCFModel(std::move(ratings), centered, std::move(neighborhoods)));
}

double UserCFModel::Predict(int64_t user_id, int64_t item_id) const {
  auto u = ratings_->UserIndex(user_id);
  auto i = ratings_->ItemIndex(item_id);
  if (!u || !i) return 0;
  const auto& item_raters = ratings_->ItemVector(*i);
  if (item_raters.empty()) return 0;
  // Weighted average of similar users' ratings of item i.
  double num = 0, den = 0;
  for (const auto& nb : neighborhoods_[*u]) {
    const RatingEntry* e = FindEntry(item_raters, nb.idx);
    if (e == nullptr) continue;
    num += static_cast<double>(nb.sim) * e->rating;
    den += std::fabs(static_cast<double>(nb.sim));
  }
  if (den == 0) return 0;
  return num / den;
}

double UserCFModel::Similarity(int64_t user_a, int64_t user_b) const {
  auto a = ratings_->UserIndex(user_a);
  auto b = ratings_->UserIndex(user_b);
  if (!a || !b) return 0;
  return SimilarityLookup(neighborhoods_, *a, *b);
}

size_t UserCFModel::ApproxBytes() const {
  return NeighborhoodBytes(neighborhoods_);
}

size_t UserCFModel::NumNeighborEntries() const {
  return NeighborhoodEntries(neighborhoods_);
}

}  // namespace recdb
