#include "recommender/cf_model.h"

#include <algorithm>
#include <cmath>

namespace recdb {

namespace {

size_t NeighborhoodBytes(const std::vector<std::vector<Neighbor>>& nb) {
  size_t total = 0;
  for (const auto& row : nb) {
    total += sizeof(std::vector<Neighbor>) + row.capacity() * sizeof(Neighbor);
  }
  return total;
}

size_t NeighborhoodEntries(const std::vector<std::vector<Neighbor>>& nb) {
  size_t total = 0;
  for (const auto& row : nb) total += row.size();
  return total;
}

/// Idx-sorted copy of each row, so Similarity() can binary search instead
/// of scanning a sim-sorted list end to end.
std::vector<std::vector<Neighbor>> SortRowsByIdx(
    const std::vector<std::vector<Neighbor>>& nb) {
  std::vector<std::vector<Neighbor>> out = nb;
  for (auto& row : out) {
    std::sort(row.begin(), row.end(),
              [](const Neighbor& a, const Neighbor& b) { return a.idx < b.idx; });
  }
  return out;
}

double SimilarityLookup(const std::vector<std::vector<Neighbor>>& by_idx,
                        int32_t a, int32_t b) {
  const auto& row = by_idx[a];
  auto it = std::lower_bound(
      row.begin(), row.end(), b,
      [](const Neighbor& n, int32_t i) { return n.idx < i; });
  if (it != row.end() && it->idx == b) return it->sim;
  return 0;
}

/// Dense scatter target reused across PredictBatch calls on one thread.
/// Epoch stamps make Reset O(1): a slot is live only when its stamp matches
/// the current epoch, so no per-call clearing of the value array.
struct DenseScratch {
  std::vector<double> val;
  std::vector<uint32_t> stamp;
  uint32_t epoch = 0;

  void Reset(size_t n) {
    if (stamp.size() < n) {
      stamp.resize(n, 0);
      val.resize(n, 0);
    }
    if (++epoch == 0) {  // wrapped: stamps from 2^32 calls ago could alias
      std::fill(stamp.begin(), stamp.end(), 0);
      epoch = 1;
    }
  }
  void Set(int32_t i, double v) {
    val[i] = v;
    stamp[i] = epoch;
  }
  bool Get(int32_t i, double* v) const {
    if (stamp[i] != epoch) return false;
    *v = val[i];
    return true;
  }
};

DenseScratch& TlsScratch() {
  thread_local DenseScratch scratch;
  return scratch;
}

/// Item rows a delta op set can reach: for each op (u, i) that is item i
/// itself, every item sharing a rater with i (i's norm — and for Pearson
/// its mean — changed, which moves sim(i, j) for every pair with nonzero
/// dot), and every item rated by u (their dot with i gained or lost the
/// shared dimension; after a remove u may no longer appear in i's merged
/// rater list, so u is unioned in explicitly). Computed on the merged
/// matrix; an over-approximation is always safe, a miss never is.
std::vector<int32_t> TouchedItemRows(const RatingMatrix& m,
                                     const std::vector<DeltaOp>& ops) {
  std::vector<char> touched(m.NumItems(), 0);
  std::vector<char> user_done(m.NumUsers(), 0);
  auto mark_items_of = [&](int32_t v) {
    if (v < 0 || static_cast<size_t>(v) >= user_done.size() || user_done[v]) {
      return;
    }
    user_done[v] = 1;
    for (const auto& e : m.UserVector(v)) touched[e.idx] = 1;
  };
  for (const auto& op : ops) {
    if (op.item_idx >= 0 &&
        static_cast<size_t>(op.item_idx) < touched.size()) {
      touched[op.item_idx] = 1;
      for (const auto& e : m.ItemVector(op.item_idx)) mark_items_of(e.idx);
    }
    mark_items_of(op.user_idx);
  }
  std::vector<int32_t> rows;
  for (size_t i = 0; i < touched.size(); ++i) {
    if (touched[i]) rows.push_back(static_cast<int32_t>(i));
  }
  return rows;
}

/// User-side mirror of TouchedItemRows.
std::vector<int32_t> TouchedUserRows(const RatingMatrix& m,
                                     const std::vector<DeltaOp>& ops) {
  std::vector<char> touched(m.NumUsers(), 0);
  std::vector<char> item_done(m.NumItems(), 0);
  auto mark_raters_of = [&](int32_t j) {
    if (j < 0 || static_cast<size_t>(j) >= item_done.size() || item_done[j]) {
      return;
    }
    item_done[j] = 1;
    for (const auto& e : m.ItemVector(j)) touched[e.idx] = 1;
  };
  for (const auto& op : ops) {
    if (op.user_idx >= 0 &&
        static_cast<size_t>(op.user_idx) < touched.size()) {
      touched[op.user_idx] = 1;
      for (const auto& e : m.UserVector(op.user_idx)) mark_raters_of(e.idx);
    }
    mark_raters_of(op.item_idx);
  }
  std::vector<int32_t> rows;
  for (size_t u = 0; u < touched.size(); ++u) {
    if (touched[u]) rows.push_back(static_cast<int32_t>(u));
  }
  return rows;
}

/// Install recomputed rows into the sim-sorted table and its idx-sorted
/// shadow, growing both for entities interned since the model was built.
void InstallNeighborRows(std::vector<std::vector<Neighbor>>* nb,
                         std::vector<std::vector<Neighbor>>* by_idx,
                         ModelUpdate&& update) {
  if (update.num_rows > nb->size()) {
    nb->resize(update.num_rows);
    by_idx->resize(update.num_rows);
  }
  size_t installed = 0;
  for (auto& [idx, row] : update.rows) {
    if (idx < 0 || static_cast<size_t>(idx) >= nb->size()) continue;
    std::vector<Neighbor> sorted = row;
    std::sort(sorted.begin(), sorted.end(),
              [](const Neighbor& a, const Neighbor& b) {
                return a.idx < b.idx;
              });
    (*by_idx)[idx] = std::move(sorted);
    (*nb)[idx] = std::move(row);
    ++installed;
  }
  obs::Count(obs::Counter::kIngestRowUpdates, installed);
}

}  // namespace

ItemCFModel::ItemCFModel(std::shared_ptr<const RatingMatrix> ratings,
                         bool centered, const SimilarityOptions& opts,
                         std::vector<std::vector<Neighbor>> neighborhoods)
    : RecModel(std::move(ratings)),
      centered_(centered),
      opts_(opts),
      neighborhoods_(std::move(neighborhoods)),
      by_idx_(SortRowsByIdx(neighborhoods_)) {}

std::unique_ptr<ItemCFModel> ItemCFModel::Build(
    std::shared_ptr<RatingMatrix> ratings, bool centered,
    const SimilarityOptions& opts) {
  SimilarityOptions o = opts;
  o.centered = centered;
  ratings->Freeze();
  auto neighborhoods = BuildItemNeighborhoods(*ratings, o);
  return std::unique_ptr<ItemCFModel>(new ItemCFModel(
      std::move(ratings), centered, o, std::move(neighborhoods)));
}

void ItemCFModel::DoPredictBatch(int64_t user_id, std::span<const int64_t> items,
                               std::span<double> out) const {
  RECDB_DCHECK(items.size() == out.size());
  auto u = ratings_->UserIndex(user_id);
  if (!u) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  // Resolve the user once: scatter their rated items into a dense
  // accumulator, then gather per candidate. Addition order per candidate is
  // the candidate's neighborhood order — the same order the per-pair scalar
  // path always used, so results are bit-identical at any batch size.
  //
  // When the matrix has been updated since the model froze it, the CSR
  // snapshot is stale; fall back to the mutable row — same entries in the
  // same idx order, so the accumulation (and the result) is unchanged.
  DenseScratch& scratch = TlsScratch();
  scratch.Reset(ratings_->NumItems());
  size_t num_rated = 0;
  if (ratings_->frozen()) {
    const CsrRow rated = ratings_->UserCsrRow(*u);
    for (size_t k = 0; k < rated.n; ++k) {
      scratch.Set(rated.idx[k], rated.rating[k]);
    }
    num_rated = rated.n;
  } else {
    const auto& rated = ratings_->UserVector(*u);
    for (const auto& e : rated) scratch.Set(e.idx, e.rating);
    num_rated = rated.size();
  }
  for (size_t c = 0; c < items.size(); ++c) {
    auto i = ratings_->ItemIndex(items[c]);
    if (!i || num_rated == 0 ||
        static_cast<size_t>(*i) >= neighborhoods_.size()) {
      // Unknown candidate, nothing rated, or an item interned after this
      // model was built (no neighborhood yet).
      out[c] = 0;
      continue;
    }
    // CandItems = ItemNeighbors(i) ∩ UserItems(u)  (Algorithm 1, line 10).
    double num = 0, den = 0;
    for (const auto& nb : neighborhoods_[*i]) {
      double r;
      if (!scratch.Get(nb.idx, &r)) continue;
      num += static_cast<double>(nb.sim) * r;
      den += std::fabs(static_cast<double>(nb.sim));
    }
    out[c] = den == 0 ? 0 : num / den;  // empty overlap -> 0 (line 14)
  }
}

double ItemCFModel::Similarity(int64_t item_a, int64_t item_b) const {
  auto a = ratings_->ItemIndex(item_a);
  auto b = ratings_->ItemIndex(item_b);
  if (!a || !b) return 0;
  return SimilarityLookup(by_idx_, *a, *b);
}

size_t ItemCFModel::ApproxBytes() const {
  return NeighborhoodBytes(neighborhoods_) + NeighborhoodBytes(by_idx_) +
         ratings_->CsrApproxBytes();
}

size_t ItemCFModel::NumNeighborEntries() const {
  return NeighborhoodEntries(neighborhoods_);
}

Result<ModelUpdate> ItemCFModel::PrepareDeltaUpdate(
    const std::vector<DeltaOp>& ops) const {
  ModelUpdate update;
  update.num_rows = ratings_->NumItems();
  if (ops.empty()) return update;
  std::vector<int32_t> rows = TouchedItemRows(*ratings_, ops);
  update.rows = RecomputeItemNeighborhoodRows(*ratings_, opts_, rows);
  update.stale_items.reserve(update.rows.size());
  for (const auto& [idx, row] : update.rows) {
    update.stale_items.push_back(ratings_->ItemIdAt(idx));
  }
  return update;
}

void ItemCFModel::ApplyDeltaUpdate(ModelUpdate&& update) {
  InstallNeighborRows(&neighborhoods_, &by_idx_, std::move(update));
}

bool ItemCFModel::ComputePruneBounds(PruneBoundTable* out) const {
  out->item_scale.resize(neighborhoods_.size());
  for (size_t i = 0; i < neighborhoods_.size(); ++i) {
    out->item_scale[i] = neighborhoods_[i].empty() ? 0.0 : 1.0;
  }
  out->item_offset.clear();
  // The Eq. (2) ratio is exact in the reals; double rounding can nudge it
  // past max |r| by O(n·eps) relative, far below this padding.
  out->slack = 1e-9;
  out->candidate_generation = true;
  out->rating_dependent = false;
  // idx >= neighborhoods_ size has no neighborhood row: the kernel returns
  // exactly 0 for it.
  out->oob_must_score = false;
  return true;
}

double ItemCFModel::PruneUserScale(int32_t user_idx) const {
  // Live merge view: a delta op that raises the user's max rating raises
  // the bound with it.
  const CsrRow row = ratings_->UserCsrRow(user_idx);
  double max_abs = 0;
  for (size_t k = 0; k < row.n; ++k) {
    max_abs = std::max(max_abs, std::fabs(row.rating[k]));
  }
  return max_abs;
}

UserCFModel::UserCFModel(std::shared_ptr<const RatingMatrix> ratings,
                         bool centered, const SimilarityOptions& opts,
                         std::vector<std::vector<Neighbor>> neighborhoods)
    : RecModel(std::move(ratings)),
      centered_(centered),
      opts_(opts),
      neighborhoods_(std::move(neighborhoods)),
      by_idx_(SortRowsByIdx(neighborhoods_)) {}

std::unique_ptr<UserCFModel> UserCFModel::Build(
    std::shared_ptr<RatingMatrix> ratings, bool centered,
    const SimilarityOptions& opts) {
  SimilarityOptions o = opts;
  o.centered = centered;
  ratings->Freeze();
  auto neighborhoods = BuildUserNeighborhoods(*ratings, o);
  return std::unique_ptr<UserCFModel>(new UserCFModel(
      std::move(ratings), centered, o, std::move(neighborhoods)));
}

void UserCFModel::DoPredictBatch(int64_t user_id, std::span<const int64_t> items,
                               std::span<double> out) const {
  RECDB_DCHECK(items.size() == out.size());
  auto u = ratings_->UserIndex(user_id);
  if (!u) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  // Symmetric to ItemCF: the user's neighbor similarities are scattered
  // once, then each candidate item's contiguous rater row is gathered.
  // Addition order per candidate is the item's rater order (user-idx
  // ascending) — fixed per candidate, so independent of batch composition.
  if (static_cast<size_t>(*u) >= neighborhoods_.size()) {
    // A user interned after this model was built has no neighborhood yet.
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  const auto& neighbors = neighborhoods_[*u];
  DenseScratch& scratch = TlsScratch();
  scratch.Reset(ratings_->NumUsers());
  for (const auto& nb : neighbors) {
    scratch.Set(nb.idx, static_cast<double>(nb.sim));
  }
  // As in ItemCF, an unfrozen matrix routes through the mutable rows; the
  // per-candidate accumulation order (user-idx ascending) is identical.
  const bool frozen = ratings_->frozen();
  for (size_t c = 0; c < items.size(); ++c) {
    auto i = ratings_->ItemIndex(items[c]);
    if (!i) {
      out[c] = 0;
      continue;
    }
    double num = 0, den = 0;
    auto accumulate = [&](int32_t rater_idx, double rating) {
      double sim;
      if (!scratch.Get(rater_idx, &sim)) return;
      num += sim * rating;
      den += std::fabs(sim);
    };
    if (frozen) {
      const CsrRow raters = ratings_->ItemCsrRow(*i);
      for (size_t k = 0; k < raters.n; ++k) {
        accumulate(raters.idx[k], raters.rating[k]);
      }
    } else {
      for (const auto& e : ratings_->ItemVector(*i)) {
        accumulate(e.idx, e.rating);
      }
    }
    out[c] = den == 0 ? 0 : num / den;
  }
}

double UserCFModel::Similarity(int64_t user_a, int64_t user_b) const {
  auto a = ratings_->UserIndex(user_a);
  auto b = ratings_->UserIndex(user_b);
  if (!a || !b) return 0;
  return SimilarityLookup(by_idx_, *a, *b);
}

size_t UserCFModel::ApproxBytes() const {
  return NeighborhoodBytes(neighborhoods_) + NeighborhoodBytes(by_idx_) +
         ratings_->CsrApproxBytes();
}

size_t UserCFModel::NumNeighborEntries() const {
  return NeighborhoodEntries(neighborhoods_);
}

Result<ModelUpdate> UserCFModel::PrepareDeltaUpdate(
    const std::vector<DeltaOp>& ops) const {
  ModelUpdate update;
  update.num_rows = ratings_->NumUsers();
  if (ops.empty()) return update;
  std::vector<int32_t> rows = TouchedUserRows(*ratings_, ops);
  update.rows = RecomputeUserNeighborhoodRows(*ratings_, opts_, rows);
  update.stale_users.reserve(update.rows.size());
  for (const auto& [idx, row] : update.rows) {
    update.stale_users.push_back(ratings_->UserIdAt(idx));
  }
  return update;
}

void UserCFModel::ApplyDeltaUpdate(ModelUpdate&& update) {
  InstallNeighborRows(&neighborhoods_, &by_idx_, std::move(update));
}

bool UserCFModel::ComputePruneBounds(PruneBoundTable* out) const {
  // Computed at (re)build time, when base == merged (no delta yet); the
  // rating_dependent flag makes later delta-touched item rows re-score.
  const size_t n = ratings_->NumItems();
  out->item_scale.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const CsrRow row = ratings_->ItemCsrRow(static_cast<int32_t>(i));
    double max_abs = 0;
    for (size_t k = 0; k < row.n; ++k) {
      max_abs = std::max(max_abs, std::fabs(row.rating[k]));
    }
    out->item_scale[i] = max_abs;
  }
  out->item_offset.clear();
  out->slack = 1e-9;
  out->candidate_generation = true;
  out->rating_dependent = true;
  // An item interned after the table was built still scores through its
  // (delta-only) rater row: no bound exists, score it unconditionally.
  out->oob_must_score = true;
  return true;
}

double UserCFModel::PruneUserScale(int32_t user_idx) const {
  if (user_idx < 0 || static_cast<size_t>(user_idx) >= neighborhoods_.size()) {
    return 0.0;  // kernel zero-fills users interned after the build
  }
  return neighborhoods_[user_idx].empty() ? 0.0 : 1.0;
}

}  // namespace recdb
