#include "recommender/cf_model.h"

#include <algorithm>
#include <cmath>

namespace recdb {

namespace {

size_t NeighborhoodBytes(const std::vector<std::vector<Neighbor>>& nb) {
  size_t total = 0;
  for (const auto& row : nb) {
    total += sizeof(std::vector<Neighbor>) + row.capacity() * sizeof(Neighbor);
  }
  return total;
}

size_t NeighborhoodEntries(const std::vector<std::vector<Neighbor>>& nb) {
  size_t total = 0;
  for (const auto& row : nb) total += row.size();
  return total;
}

/// Idx-sorted copy of each row, so Similarity() can binary search instead
/// of scanning a sim-sorted list end to end.
std::vector<std::vector<Neighbor>> SortRowsByIdx(
    const std::vector<std::vector<Neighbor>>& nb) {
  std::vector<std::vector<Neighbor>> out = nb;
  for (auto& row : out) {
    std::sort(row.begin(), row.end(),
              [](const Neighbor& a, const Neighbor& b) { return a.idx < b.idx; });
  }
  return out;
}

double SimilarityLookup(const std::vector<std::vector<Neighbor>>& by_idx,
                        int32_t a, int32_t b) {
  const auto& row = by_idx[a];
  auto it = std::lower_bound(
      row.begin(), row.end(), b,
      [](const Neighbor& n, int32_t i) { return n.idx < i; });
  if (it != row.end() && it->idx == b) return it->sim;
  return 0;
}

/// Dense scatter target reused across PredictBatch calls on one thread.
/// Epoch stamps make Reset O(1): a slot is live only when its stamp matches
/// the current epoch, so no per-call clearing of the value array.
struct DenseScratch {
  std::vector<double> val;
  std::vector<uint32_t> stamp;
  uint32_t epoch = 0;

  void Reset(size_t n) {
    if (stamp.size() < n) {
      stamp.resize(n, 0);
      val.resize(n, 0);
    }
    if (++epoch == 0) {  // wrapped: stamps from 2^32 calls ago could alias
      std::fill(stamp.begin(), stamp.end(), 0);
      epoch = 1;
    }
  }
  void Set(int32_t i, double v) {
    val[i] = v;
    stamp[i] = epoch;
  }
  bool Get(int32_t i, double* v) const {
    if (stamp[i] != epoch) return false;
    *v = val[i];
    return true;
  }
};

DenseScratch& TlsScratch() {
  thread_local DenseScratch scratch;
  return scratch;
}

}  // namespace

ItemCFModel::ItemCFModel(std::shared_ptr<const RatingMatrix> ratings,
                         bool centered,
                         std::vector<std::vector<Neighbor>> neighborhoods)
    : RecModel(std::move(ratings)),
      centered_(centered),
      neighborhoods_(std::move(neighborhoods)),
      by_idx_(SortRowsByIdx(neighborhoods_)) {}

std::unique_ptr<ItemCFModel> ItemCFModel::Build(
    std::shared_ptr<RatingMatrix> ratings, bool centered,
    const SimilarityOptions& opts) {
  SimilarityOptions o = opts;
  o.centered = centered;
  ratings->Freeze();
  auto neighborhoods = BuildItemNeighborhoods(*ratings, o);
  return std::unique_ptr<ItemCFModel>(
      new ItemCFModel(std::move(ratings), centered, std::move(neighborhoods)));
}

void ItemCFModel::DoPredictBatch(int64_t user_id, std::span<const int64_t> items,
                               std::span<double> out) const {
  RECDB_DCHECK(items.size() == out.size());
  auto u = ratings_->UserIndex(user_id);
  if (!u) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  // Resolve the user once: scatter their rated items into a dense
  // accumulator, then gather per candidate. Addition order per candidate is
  // the candidate's neighborhood order — the same order the per-pair scalar
  // path always used, so results are bit-identical at any batch size.
  //
  // When the matrix has been updated since the model froze it, the CSR
  // snapshot is stale; fall back to the mutable row — same entries in the
  // same idx order, so the accumulation (and the result) is unchanged.
  DenseScratch& scratch = TlsScratch();
  scratch.Reset(ratings_->NumItems());
  size_t num_rated = 0;
  if (ratings_->frozen()) {
    const CsrRow rated = ratings_->UserCsrRow(*u);
    for (size_t k = 0; k < rated.n; ++k) {
      scratch.Set(rated.idx[k], rated.rating[k]);
    }
    num_rated = rated.n;
  } else {
    const auto& rated = ratings_->UserVector(*u);
    for (const auto& e : rated) scratch.Set(e.idx, e.rating);
    num_rated = rated.size();
  }
  for (size_t c = 0; c < items.size(); ++c) {
    auto i = ratings_->ItemIndex(items[c]);
    if (!i || num_rated == 0 ||
        static_cast<size_t>(*i) >= neighborhoods_.size()) {
      // Unknown candidate, nothing rated, or an item interned after this
      // model was built (no neighborhood yet).
      out[c] = 0;
      continue;
    }
    // CandItems = ItemNeighbors(i) ∩ UserItems(u)  (Algorithm 1, line 10).
    double num = 0, den = 0;
    for (const auto& nb : neighborhoods_[*i]) {
      double r;
      if (!scratch.Get(nb.idx, &r)) continue;
      num += static_cast<double>(nb.sim) * r;
      den += std::fabs(static_cast<double>(nb.sim));
    }
    out[c] = den == 0 ? 0 : num / den;  // empty overlap -> 0 (line 14)
  }
}

double ItemCFModel::Similarity(int64_t item_a, int64_t item_b) const {
  auto a = ratings_->ItemIndex(item_a);
  auto b = ratings_->ItemIndex(item_b);
  if (!a || !b) return 0;
  return SimilarityLookup(by_idx_, *a, *b);
}

size_t ItemCFModel::ApproxBytes() const {
  return NeighborhoodBytes(neighborhoods_) + NeighborhoodBytes(by_idx_) +
         ratings_->CsrApproxBytes();
}

size_t ItemCFModel::NumNeighborEntries() const {
  return NeighborhoodEntries(neighborhoods_);
}

UserCFModel::UserCFModel(std::shared_ptr<const RatingMatrix> ratings,
                         bool centered,
                         std::vector<std::vector<Neighbor>> neighborhoods)
    : RecModel(std::move(ratings)),
      centered_(centered),
      neighborhoods_(std::move(neighborhoods)),
      by_idx_(SortRowsByIdx(neighborhoods_)) {}

std::unique_ptr<UserCFModel> UserCFModel::Build(
    std::shared_ptr<RatingMatrix> ratings, bool centered,
    const SimilarityOptions& opts) {
  SimilarityOptions o = opts;
  o.centered = centered;
  ratings->Freeze();
  auto neighborhoods = BuildUserNeighborhoods(*ratings, o);
  return std::unique_ptr<UserCFModel>(
      new UserCFModel(std::move(ratings), centered, std::move(neighborhoods)));
}

void UserCFModel::DoPredictBatch(int64_t user_id, std::span<const int64_t> items,
                               std::span<double> out) const {
  RECDB_DCHECK(items.size() == out.size());
  auto u = ratings_->UserIndex(user_id);
  if (!u) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  // Symmetric to ItemCF: the user's neighbor similarities are scattered
  // once, then each candidate item's contiguous rater row is gathered.
  // Addition order per candidate is the item's rater order (user-idx
  // ascending) — fixed per candidate, so independent of batch composition.
  if (static_cast<size_t>(*u) >= neighborhoods_.size()) {
    // A user interned after this model was built has no neighborhood yet.
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  const auto& neighbors = neighborhoods_[*u];
  DenseScratch& scratch = TlsScratch();
  scratch.Reset(ratings_->NumUsers());
  for (const auto& nb : neighbors) {
    scratch.Set(nb.idx, static_cast<double>(nb.sim));
  }
  // As in ItemCF, an unfrozen matrix routes through the mutable rows; the
  // per-candidate accumulation order (user-idx ascending) is identical.
  const bool frozen = ratings_->frozen();
  for (size_t c = 0; c < items.size(); ++c) {
    auto i = ratings_->ItemIndex(items[c]);
    if (!i) {
      out[c] = 0;
      continue;
    }
    double num = 0, den = 0;
    auto accumulate = [&](int32_t rater_idx, double rating) {
      double sim;
      if (!scratch.Get(rater_idx, &sim)) return;
      num += sim * rating;
      den += std::fabs(sim);
    };
    if (frozen) {
      const CsrRow raters = ratings_->ItemCsrRow(*i);
      for (size_t k = 0; k < raters.n; ++k) {
        accumulate(raters.idx[k], raters.rating[k]);
      }
    } else {
      for (const auto& e : ratings_->ItemVector(*i)) {
        accumulate(e.idx, e.rating);
      }
    }
    out[c] = den == 0 ? 0 : num / den;
  }
}

double UserCFModel::Similarity(int64_t user_a, int64_t user_b) const {
  auto a = ratings_->UserIndex(user_a);
  auto b = ratings_->UserIndex(user_b);
  if (!a || !b) return 0;
  return SimilarityLookup(by_idx_, *a, *b);
}

size_t UserCFModel::ApproxBytes() const {
  return NeighborhoodBytes(neighborhoods_) + NeighborhoodBytes(by_idx_) +
         ratings_->CsrApproxBytes();
}

size_t UserCFModel::NumNeighborEntries() const {
  return NeighborhoodEntries(neighborhoods_);
}

}  // namespace recdb
