// Neighborhood-based collaborative filtering models.
//
// ItemCFModel keeps the paper's Item Neighborhood Table (per-item similarity
// lists); prediction follows Eq. (2): similarity-weighted average of the
// user's ratings over the intersection of the item's neighborhood and the
// user's rated items, normalized by Σ|sim|. UserCFModel is the symmetric
// user-user variant (paper Section IV-A.2).
#pragma once

#include <memory>
#include <vector>

#include "recommender/model.h"
#include "recommender/similarity.h"

namespace recdb {

class ItemCFModel : public RecModel {
 public:
  /// Build from a ratings snapshot (frozen to flat CSR as a side effect).
  /// `centered` selects Pearson (ItemPearCF) vs plain cosine (ItemCosCF).
  static std::unique_ptr<ItemCFModel> Build(
      std::shared_ptr<RatingMatrix> ratings, bool centered,
      const SimilarityOptions& opts = {});

  RecAlgorithm algorithm() const override {
    return centered_ ? RecAlgorithm::kItemPearCF : RecAlgorithm::kItemCosCF;
  }

  /// Eq. (2) for every candidate: the user's rated items are scattered once
  /// into a dense thread-local accumulator, then each candidate's
  /// neighborhood is gathered against it (no per-neighbor binary search).
  void DoPredictBatch(int64_t user_id, std::span<const int64_t> items,
                      std::span<double> out) const override;

  /// Similarity of two items by external id (0 when either is unknown or
  /// the pair is not in the neighborhood list). Binary search over an
  /// idx-sorted view of the row, not a linear scan of the sim-sorted list.
  double Similarity(int64_t item_a, int64_t item_b) const;

  /// The neighborhood list of an item (dense indices), test/inspection aid.
  const std::vector<Neighbor>& NeighborhoodAt(int32_t item_idx) const {
    return neighborhoods_[item_idx];
  }

  size_t ApproxBytes() const override;

  /// Total neighbor entries across all lists (model-size ablations).
  size_t NumNeighborEntries() const;

  /// Incremental maintenance: recompute only the neighborhood rows whose
  /// similarity terms a delta op can reach — the op's item, every item
  /// sharing a rater with it (its norm changed, so every nonzero pair did),
  /// and the op user's rated items (their dot products gained/lost the
  /// shared dimension). Rows come back bit-identical to a full rebuild.
  bool SupportsIncrementalUpdate() const override { return true; }
  Result<ModelUpdate> PrepareDeltaUpdate(
      const std::vector<DeltaOp>& ops) const override;
  void ApplyDeltaUpdate(ModelUpdate&& update) override;

  /// Eq. (2) is a |sim|-weighted average of the user's own ratings, so
  /// score(u, i) <= max |r_uj| over u's (merged) row, and an item with an
  /// empty neighborhood scores exactly 0: item_scale is {0, 1}, the user
  /// scale is the live row maximum (DESIGN.md §13).
  bool ComputePruneBounds(PruneBoundTable* out) const override;
  double PruneUserScale(int32_t user_idx) const override;

 private:
  ItemCFModel(std::shared_ptr<const RatingMatrix> ratings, bool centered,
              const SimilarityOptions& opts,
              std::vector<std::vector<Neighbor>> neighborhoods);

  bool centered_;
  SimilarityOptions opts_;  // as resolved at build time (centered included)
  std::vector<std::vector<Neighbor>> neighborhoods_;  // [item_idx], sim-sorted
  std::vector<std::vector<Neighbor>> by_idx_;         // [item_idx], idx-sorted
};

class UserCFModel : public RecModel {
 public:
  static std::unique_ptr<UserCFModel> Build(
      std::shared_ptr<RatingMatrix> ratings, bool centered,
      const SimilarityOptions& opts = {});

  RecAlgorithm algorithm() const override {
    return centered_ ? RecAlgorithm::kUserPearCF : RecAlgorithm::kUserCosCF;
  }

  /// Symmetric to ItemCF over the user side: the user's neighbor sims are
  /// scattered once into a dense accumulator, then each candidate item's
  /// contiguous rater row (flat CSR) is gathered against it.
  void DoPredictBatch(int64_t user_id, std::span<const int64_t> items,
                      std::span<double> out) const override;

  double Similarity(int64_t user_a, int64_t user_b) const;

  const std::vector<Neighbor>& NeighborhoodAt(int32_t user_idx) const {
    return neighborhoods_[user_idx];
  }

  size_t ApproxBytes() const override;
  size_t NumNeighborEntries() const;

  /// User-side counterpart of ItemCFModel::PrepareDeltaUpdate.
  bool SupportsIncrementalUpdate() const override { return true; }
  Result<ModelUpdate> PrepareDeltaUpdate(
      const std::vector<DeltaOp>& ops) const override;
  void ApplyDeltaUpdate(ModelUpdate&& update) override;

  /// Mirror of the ItemCF bound with the sides swapped: the score is a
  /// |sim|-weighted average of the *item's rater* ratings, so item_scale is
  /// max |r_vi| over the item's rater row (rating-dependent: delta-touched
  /// item rows must be re-scored) and the user scale is {0, 1} for an
  /// empty/nonempty neighborhood.
  bool ComputePruneBounds(PruneBoundTable* out) const override;
  double PruneUserScale(int32_t user_idx) const override;

 private:
  UserCFModel(std::shared_ptr<const RatingMatrix> ratings, bool centered,
              const SimilarityOptions& opts,
              std::vector<std::vector<Neighbor>> neighborhoods);

  bool centered_;
  SimilarityOptions opts_;  // as resolved at build time (centered included)
  std::vector<std::vector<Neighbor>> neighborhoods_;  // [user_idx], sim-sorted
  std::vector<std::vector<Neighbor>> by_idx_;         // [user_idx], idx-sorted
};

}  // namespace recdb
