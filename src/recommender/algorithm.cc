#include "recommender/algorithm.h"

#include "common/string_util.h"

namespace recdb {

const char* RecAlgorithmToString(RecAlgorithm a) {
  switch (a) {
    case RecAlgorithm::kItemCosCF:
      return "ItemCosCF";
    case RecAlgorithm::kItemPearCF:
      return "ItemPearCF";
    case RecAlgorithm::kUserCosCF:
      return "UserCosCF";
    case RecAlgorithm::kUserPearCF:
      return "UserPearCF";
    case RecAlgorithm::kSVD:
      return "SVD";
  }
  return "?";
}

Result<RecAlgorithm> RecAlgorithmFromString(const std::string& s) {
  if (EqualsIgnoreCase(s, "ItemCosCF")) return RecAlgorithm::kItemCosCF;
  if (EqualsIgnoreCase(s, "ItemPearCF")) return RecAlgorithm::kItemPearCF;
  if (EqualsIgnoreCase(s, "UserCosCF")) return RecAlgorithm::kUserCosCF;
  if (EqualsIgnoreCase(s, "UserPearCF")) return RecAlgorithm::kUserPearCF;
  if (EqualsIgnoreCase(s, "SVD")) return RecAlgorithm::kSVD;
  return Status::ParseError("unknown recommendation algorithm: " + s);
}

bool IsItemBased(RecAlgorithm a) {
  return a == RecAlgorithm::kItemCosCF || a == RecAlgorithm::kItemPearCF;
}

bool IsUserBased(RecAlgorithm a) {
  return a == RecAlgorithm::kUserCosCF || a == RecAlgorithm::kUserPearCF;
}

}  // namespace recdb
