#include "recommender/similarity.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace recdb {

namespace {

/// Sparse co-occurrence accumulation.
///
/// `vectors[v]` is the sparse vector of entity v (items for item-based CF,
/// users for user-based), `dims[d]` lists which vectors contain dimension d
/// together with the (possibly centered) value. For every dimension we
/// accumulate all pairwise products into a dense dot-product matrix, then
/// normalize by vector norms — one pass over Σ_d nnz(d)² products, the
/// standard way to build full similarity lists.
std::vector<std::vector<Neighbor>> BuildNeighborhoods(
    size_t num_vectors, const std::vector<std::vector<RatingEntry>>& dims,
    const std::vector<double>& means, const SimilarityOptions& opts) {
  const size_t n = num_vectors;
  std::vector<double> norms(n, 0.0);
  // Dense accumulators. n is at most a few thousand for the paper's
  // datasets; n^2 floats stay well under typical memory budgets.
  std::vector<float> dot(n * n, 0.0f);
  std::vector<int32_t> overlap;
  const bool need_overlap = opts.min_overlap > 1;
  if (need_overlap) overlap.assign(n * n, 0);

  std::vector<RatingEntry> centered;
  for (const auto& dim : dims) {
    centered.clear();
    centered.reserve(dim.size());
    for (const auto& e : dim) {
      double v = e.rating - (opts.centered ? means[e.idx] : 0.0);
      centered.push_back(RatingEntry{e.idx, v});
      norms[e.idx] += v * v;
    }
    for (size_t a = 0; a < centered.size(); ++a) {
      const auto& ea = centered[a];
      float* row = dot.data() + static_cast<size_t>(ea.idx) * n;
      for (size_t b = a + 1; b < centered.size(); ++b) {
        const auto& eb = centered[b];
        row[eb.idx] += static_cast<float>(ea.rating * eb.rating);
        if (need_overlap) overlap[static_cast<size_t>(ea.idx) * n + eb.idx]++;
      }
    }
  }
  for (auto& v : norms) v = std::sqrt(v);

  std::vector<std::vector<Neighbor>> result(n);
  std::vector<Neighbor> row;
  for (size_t p = 0; p < n; ++p) {
    row.clear();
    for (size_t q = 0; q < n; ++q) {
      if (p == q) continue;
      size_t idx = p < q ? p * n + q : q * n + p;
      float d = dot[idx];
      if (d == 0.0f) continue;
      if (need_overlap && overlap[idx] < opts.min_overlap) continue;
      double denom = norms[p] * norms[q];
      if (denom <= 0) continue;
      float sim = static_cast<float>(d / denom);
      if (sim == 0.0f) continue;
      row.push_back(Neighbor{static_cast<int32_t>(q), sim});
    }
    std::sort(row.begin(), row.end(), [](const Neighbor& a, const Neighbor& b) {
      if (a.sim != b.sim) return a.sim > b.sim;
      return a.idx < b.idx;
    });
    if (opts.top_k > 0 && row.size() > static_cast<size_t>(opts.top_k)) {
      // Keep the k strongest by |sim| (negative correlations carry signal
      // for Pearson), then restore descending-sim order.
      std::partial_sort(
          row.begin(), row.begin() + opts.top_k, row.end(),
          [](const Neighbor& a, const Neighbor& b) {
            return std::fabs(a.sim) > std::fabs(b.sim);
          });
      row.resize(opts.top_k);
      std::sort(row.begin(), row.end(),
                [](const Neighbor& a, const Neighbor& b) {
                  if (a.sim != b.sim) return a.sim > b.sim;
                  return a.idx < b.idx;
                });
    }
    result[p] = row;
  }
  return result;
}

}  // namespace

std::vector<std::vector<Neighbor>> BuildItemNeighborhoods(
    const RatingMatrix& ratings, const SimilarityOptions& opts) {
  // Item vectors live in user-rating space: dimensions are users.
  std::vector<std::vector<RatingEntry>> dims;
  dims.reserve(ratings.NumUsers());
  for (size_t u = 0; u < ratings.NumUsers(); ++u) {
    dims.push_back(ratings.UserVector(static_cast<int32_t>(u)));
  }
  std::vector<double> means(ratings.NumItems(), 0.0);
  if (opts.centered) {
    for (size_t i = 0; i < ratings.NumItems(); ++i) {
      means[i] = ratings.ItemMean(static_cast<int32_t>(i));
    }
  }
  return BuildNeighborhoods(ratings.NumItems(), dims, means, opts);
}

std::vector<std::vector<Neighbor>> BuildUserNeighborhoods(
    const RatingMatrix& ratings, const SimilarityOptions& opts) {
  std::vector<std::vector<RatingEntry>> dims;
  dims.reserve(ratings.NumItems());
  for (size_t i = 0; i < ratings.NumItems(); ++i) {
    dims.push_back(ratings.ItemVector(static_cast<int32_t>(i)));
  }
  std::vector<double> means(ratings.NumUsers(), 0.0);
  if (opts.centered) {
    for (size_t u = 0; u < ratings.NumUsers(); ++u) {
      means[u] = ratings.UserMean(static_cast<int32_t>(u));
    }
  }
  return BuildNeighborhoods(ratings.NumUsers(), dims, means, opts);
}

double PairwiseCosine(const std::vector<RatingEntry>& a,
                      const std::vector<RatingEntry>& b) {
  double dot = 0, na = 0, nb = 0;
  for (const auto& e : a) na += e.rating * e.rating;
  for (const auto& e : b) nb += e.rating * e.rating;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].idx < b[j].idx) {
      ++i;
    } else if (a[i].idx > b[j].idx) {
      ++j;
    } else {
      dot += a[i].rating * b[j].rating;
      ++i;
      ++j;
    }
  }
  double denom = std::sqrt(na) * std::sqrt(nb);
  if (denom <= 0) return 0;
  return dot / denom;
}

}  // namespace recdb
