#include "recommender/similarity.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"
#include "common/task_scheduler.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace recdb {

namespace {

/// Sparse co-occurrence accumulation.
///
/// `vectors[v]` is the sparse vector of entity v (items for item-based CF,
/// users for user-based), `dims[d]` lists which vectors contain dimension d
/// together with the (possibly centered) value. For every dimension we
/// accumulate all pairwise products into a dense dot-product matrix, then
/// normalize by vector norms — one pass over Σ_d nnz(d)² products, the
/// standard way to build full similarity lists.
///
/// The Σ_d nnz(d)² pass is morsel-parallel over *output rows*: entries
/// within a dimension are idx-sorted, so every product of dimension d lands
/// in row min(ea.idx, eb.idx) and each worker owns a disjoint row range —
/// no write conflicts. A serial prologue builds the per-row occurrence
/// lists in ascending dimension order, so each cell accumulates its float
/// products in exactly the serial order and the result is bit-identical
/// under any thread count.
std::vector<std::vector<Neighbor>> BuildNeighborhoods(
    size_t num_vectors, const std::vector<std::vector<RatingEntry>>& dims,
    const std::vector<double>& means, const SimilarityOptions& opts) {
  Stopwatch watch;
  const size_t n = num_vectors;
  std::vector<double> norms(n, 0.0);
  // Dense accumulators. n is at most a few thousand for the paper's
  // datasets; n^2 floats stay well under typical memory budgets.
  std::vector<float> dot(n * n, 0.0f);
  std::vector<int32_t> overlap;
  const bool need_overlap = opts.min_overlap > 1;
  if (need_overlap) overlap.assign(n * n, 0);

  // Serial prologue: center each dimension, accumulate norms, and record
  // where each row occurs — occ[r] lists (dim, position) pairs in ascending
  // dimension order, the order the serial accumulation visits them.
  struct Occurrence {
    uint32_t dim;
    uint32_t pos;
  };
  std::vector<std::vector<RatingEntry>> centered_dims(dims.size());
  std::vector<std::vector<Occurrence>> occ(n);
  for (size_t d = 0; d < dims.size(); ++d) {
    auto& centered = centered_dims[d];
    centered.reserve(dims[d].size());
    for (const auto& e : dims[d]) {
      double v = e.rating - (opts.centered ? means[e.idx] : 0.0);
      occ[e.idx].push_back(Occurrence{static_cast<uint32_t>(d),
                                      static_cast<uint32_t>(centered.size())});
      centered.push_back(RatingEntry{e.idx, v});
      norms[e.idx] += v * v;
    }
  }
  for (auto& v : norms) v = std::sqrt(v);

  TaskScheduler& sched = TaskScheduler::Global();
  const size_t row_morsel =
      std::clamp<size_t>(n / (sched.num_threads() * 8), 8, 1024);
  sched.ParallelFor(n, row_morsel, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      float* row = dot.data() + r * n;
      for (const Occurrence& o : occ[r]) {
        const auto& centered = centered_dims[o.dim];
        const double va = centered[o.pos].rating;
        for (size_t b = o.pos + 1; b < centered.size(); ++b) {
          const auto& eb = centered[b];
          row[eb.idx] += static_cast<float>(va * eb.rating);
          if (need_overlap) overlap[r * n + eb.idx]++;
        }
      }
    }
  });

  // Per-row neighbor lists are independent: parallel over rows, each row's
  // sort and top-k trim identical to the serial computation.
  std::vector<std::vector<Neighbor>> result(n);
  sched.ParallelFor(n, row_morsel, [&](size_t begin, size_t end) {
    std::vector<Neighbor> row;
    for (size_t p = begin; p < end; ++p) {
      row.clear();
      for (size_t q = 0; q < n; ++q) {
        if (p == q) continue;
        size_t idx = p < q ? p * n + q : q * n + p;
        float d = dot[idx];
        if (d == 0.0f) continue;
        if (need_overlap && overlap[idx] < opts.min_overlap) continue;
        double denom = norms[p] * norms[q];
        if (denom <= 0) continue;
        float sim = static_cast<float>(d / denom);
        if (sim == 0.0f) continue;
        row.push_back(Neighbor{static_cast<int32_t>(q), sim});
      }
      std::sort(row.begin(), row.end(),
                [](const Neighbor& a, const Neighbor& b) {
                  if (a.sim != b.sim) return a.sim > b.sim;
                  return a.idx < b.idx;
                });
      if (opts.top_k > 0 && row.size() > static_cast<size_t>(opts.top_k)) {
        // Keep the k strongest by |sim| (negative correlations carry signal
        // for Pearson), then restore descending-sim order.
        std::partial_sort(
            row.begin(), row.begin() + opts.top_k, row.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return std::fabs(a.sim) > std::fabs(b.sim);
            });
        row.resize(opts.top_k);
        std::sort(row.begin(), row.end(),
                  [](const Neighbor& a, const Neighbor& b) {
                    if (a.sim != b.sim) return a.sim > b.sim;
                    return a.idx < b.idx;
                  });
      }
      result[p] = row;
    }
  });
  obs::ObserveUs(obs::Histogram::kModelNeighborhoodUs,
                 static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6));
  return result;
}

}  // namespace

std::vector<std::vector<Neighbor>> BuildItemNeighborhoods(
    const RatingMatrix& ratings, const SimilarityOptions& opts) {
  // Item vectors live in user-rating space: dimensions are users.
  std::vector<std::vector<RatingEntry>> dims;
  dims.reserve(ratings.NumUsers());
  for (size_t u = 0; u < ratings.NumUsers(); ++u) {
    dims.push_back(ratings.UserVector(static_cast<int32_t>(u)));
  }
  std::vector<double> means(ratings.NumItems(), 0.0);
  if (opts.centered) {
    for (size_t i = 0; i < ratings.NumItems(); ++i) {
      means[i] = ratings.ItemMean(static_cast<int32_t>(i));
    }
  }
  return BuildNeighborhoods(ratings.NumItems(), dims, means, opts);
}

std::vector<std::vector<Neighbor>> BuildUserNeighborhoods(
    const RatingMatrix& ratings, const SimilarityOptions& opts) {
  std::vector<std::vector<RatingEntry>> dims;
  dims.reserve(ratings.NumItems());
  for (size_t i = 0; i < ratings.NumItems(); ++i) {
    dims.push_back(ratings.ItemVector(static_cast<int32_t>(i)));
  }
  std::vector<double> means(ratings.NumUsers(), 0.0);
  if (opts.centered) {
    for (size_t u = 0; u < ratings.NumUsers(); ++u) {
      means[u] = ratings.UserMean(static_cast<int32_t>(u));
    }
  }
  return BuildNeighborhoods(ratings.NumUsers(), dims, means, opts);
}

double PairwiseCosine(const std::vector<RatingEntry>& a,
                      const std::vector<RatingEntry>& b) {
  double dot = 0, na = 0, nb = 0;
  for (const auto& e : a) na += e.rating * e.rating;
  for (const auto& e : b) nb += e.rating * e.rating;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].idx < b[j].idx) {
      ++i;
    } else if (a[i].idx > b[j].idx) {
      ++j;
    } else {
      dot += a[i].rating * b[j].rating;
      ++i;
      ++j;
    }
  }
  double denom = std::sqrt(na) * std::sqrt(nb);
  if (denom <= 0) return 0;
  return dot / denom;
}

}  // namespace recdb
