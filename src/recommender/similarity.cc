#include "recommender/similarity.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"
#include "common/task_scheduler.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace recdb {

namespace {

/// Neighbor selection for one output row: filter, sort by descending
/// similarity, optional top-k trim by |sim|. Shared between the full
/// build and per-row recompute so the two paths cannot drift — the delta
/// path's bit-identity guarantee depends on this being the same code.
template <typename DotFn, typename OverlapFn>
std::vector<Neighbor> SelectRow(size_t p, size_t n,
                                const std::vector<double>& norms,
                                const SimilarityOptions& opts, DotFn dot_at,
                                OverlapFn overlap_at) {
  const bool need_overlap = opts.min_overlap > 1;
  std::vector<Neighbor> row;
  for (size_t q = 0; q < n; ++q) {
    if (p == q) continue;
    float d = dot_at(q);
    if (d == 0.0f) continue;
    if (need_overlap && overlap_at(q) < opts.min_overlap) continue;
    double denom = norms[p] * norms[q];
    if (denom <= 0) continue;
    float sim = static_cast<float>(d / denom);
    if (sim == 0.0f) continue;
    row.push_back(Neighbor{static_cast<int32_t>(q), sim});
  }
  std::sort(row.begin(), row.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.sim != b.sim) return a.sim > b.sim;
    return a.idx < b.idx;
  });
  if (opts.top_k > 0 && row.size() > static_cast<size_t>(opts.top_k)) {
    // Keep the k strongest by |sim| (negative correlations carry signal
    // for Pearson), then restore descending-sim order.
    std::partial_sort(row.begin(), row.begin() + opts.top_k, row.end(),
                      [](const Neighbor& a, const Neighbor& b) {
                        return std::fabs(a.sim) > std::fabs(b.sim);
                      });
    row.resize(opts.top_k);
    std::sort(row.begin(), row.end(),
              [](const Neighbor& a, const Neighbor& b) {
                if (a.sim != b.sim) return a.sim > b.sim;
                return a.idx < b.idx;
              });
  }
  return row;
}

/// Sparse co-occurrence accumulation.
///
/// `vectors[v]` is the sparse vector of entity v (items for item-based CF,
/// users for user-based), `dims[d]` lists which vectors contain dimension d
/// together with the (possibly centered) value. For every dimension we
/// accumulate all pairwise products into a dense dot-product matrix, then
/// normalize by vector norms — one pass over Σ_d nnz(d)² products, the
/// standard way to build full similarity lists.
///
/// The Σ_d nnz(d)² pass is morsel-parallel over *output rows*: entries
/// within a dimension are idx-sorted, so every product of dimension d lands
/// in row min(ea.idx, eb.idx) and each worker owns a disjoint row range —
/// no write conflicts. A serial prologue builds the per-row occurrence
/// lists in ascending dimension order, so each cell accumulates its float
/// products in exactly the serial order and the result is bit-identical
/// under any thread count.
std::vector<std::vector<Neighbor>> BuildNeighborhoods(
    size_t num_vectors, const std::vector<std::vector<RatingEntry>>& dims,
    const std::vector<double>& means, const SimilarityOptions& opts) {
  Stopwatch watch;
  const size_t n = num_vectors;
  std::vector<double> norms(n, 0.0);
  // Dense accumulators. n is at most a few thousand for the paper's
  // datasets; n^2 floats stay well under typical memory budgets.
  std::vector<float> dot(n * n, 0.0f);
  std::vector<int32_t> overlap;
  const bool need_overlap = opts.min_overlap > 1;
  if (need_overlap) overlap.assign(n * n, 0);

  // Serial prologue: center each dimension, accumulate norms, and record
  // where each row occurs — occ[r] lists (dim, position) pairs in ascending
  // dimension order, the order the serial accumulation visits them.
  struct Occurrence {
    uint32_t dim;
    uint32_t pos;
  };
  std::vector<std::vector<RatingEntry>> centered_dims(dims.size());
  std::vector<std::vector<Occurrence>> occ(n);
  for (size_t d = 0; d < dims.size(); ++d) {
    auto& centered = centered_dims[d];
    centered.reserve(dims[d].size());
    for (const auto& e : dims[d]) {
      double v = e.rating - (opts.centered ? means[e.idx] : 0.0);
      occ[e.idx].push_back(Occurrence{static_cast<uint32_t>(d),
                                      static_cast<uint32_t>(centered.size())});
      centered.push_back(RatingEntry{e.idx, v});
      norms[e.idx] += v * v;
    }
  }
  for (auto& v : norms) v = std::sqrt(v);

  TaskScheduler& sched = TaskScheduler::Global();
  const size_t row_morsel =
      std::clamp<size_t>(n / (sched.num_threads() * 8), 8, 1024);
  sched.ParallelFor(n, row_morsel, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      float* row = dot.data() + r * n;
      for (const Occurrence& o : occ[r]) {
        const auto& centered = centered_dims[o.dim];
        const double va = centered[o.pos].rating;
        for (size_t b = o.pos + 1; b < centered.size(); ++b) {
          const auto& eb = centered[b];
          row[eb.idx] += static_cast<float>(va * eb.rating);
          if (need_overlap) overlap[r * n + eb.idx]++;
        }
      }
    }
  });

  // Per-row neighbor lists are independent: parallel over rows, each row's
  // sort and top-k trim identical to the serial computation.
  std::vector<std::vector<Neighbor>> result(n);
  sched.ParallelFor(n, row_morsel, [&](size_t begin, size_t end) {
    for (size_t p = begin; p < end; ++p) {
      result[p] = SelectRow(
          p, n, norms, opts,
          [&](size_t q) { return dot[p < q ? p * n + q : q * n + p]; },
          [&](size_t q) {
            return overlap[p < q ? p * n + q : q * n + p];
          });
    }
  });
  obs::ObserveUs(obs::Histogram::kModelNeighborhoodUs,
                 static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6));
  return result;
}

/// Recompute a subset of output rows over the same (dims, means) input a
/// full BuildNeighborhoods would see. For a pair (p, q) the full build
/// accumulates float(v_min * v_max) into the min-row cell once per shared
/// dimension, visiting dimensions in ascending order; here we accumulate
/// float(v_p * v_q) into a dense per-row buffer while walking p's
/// occurrences in the same ascending-dimension order. The double multiply
/// is commutative, so each cell sees the identical float sequence and the
/// recomputed row is bit-identical to the full build's.
std::vector<std::pair<int32_t, std::vector<Neighbor>>> RecomputeRows(
    size_t num_vectors, const std::vector<std::vector<RatingEntry>>& dims,
    const std::vector<double>& means, const SimilarityOptions& opts,
    const std::vector<int32_t>& rows) {
  const size_t n = num_vectors;
  const bool need_overlap = opts.min_overlap > 1;
  std::vector<char> wanted(n, 0);
  std::vector<int32_t> targets;
  targets.reserve(rows.size());
  for (int32_t r : rows) {
    if (r < 0 || static_cast<size_t>(r) >= n) continue;
    if (wanted[r]) continue;
    wanted[r] = 1;
    targets.push_back(r);
  }
  std::sort(targets.begin(), targets.end());

  // Same serial prologue as the full build: centered dimensions in
  // ascending order, norms accumulated per entry in that order (norms are
  // needed for every vector, not just targets — sim(p, q) divides by both).
  struct Occurrence {
    uint32_t dim;
    uint32_t pos;
  };
  std::vector<double> norms(n, 0.0);
  std::vector<std::vector<RatingEntry>> centered_dims(dims.size());
  std::vector<std::vector<Occurrence>> occ(n);
  for (size_t d = 0; d < dims.size(); ++d) {
    auto& centered = centered_dims[d];
    centered.reserve(dims[d].size());
    for (const auto& e : dims[d]) {
      double v = e.rating - (opts.centered ? means[e.idx] : 0.0);
      if (wanted[e.idx]) {
        occ[e.idx].push_back(Occurrence{
            static_cast<uint32_t>(d), static_cast<uint32_t>(centered.size())});
      }
      centered.push_back(RatingEntry{e.idx, v});
      norms[e.idx] += v * v;
    }
  }
  for (auto& v : norms) v = std::sqrt(v);

  std::vector<std::pair<int32_t, std::vector<Neighbor>>> result(
      targets.size());
  TaskScheduler& sched = TaskScheduler::Global();
  const size_t row_morsel =
      std::clamp<size_t>(targets.size() / (sched.num_threads() * 4), 1, 256);
  sched.ParallelFor(targets.size(), row_morsel,
                    [&](size_t begin, size_t end) {
    std::vector<float> acc(n, 0.0f);
    std::vector<int32_t> ov;
    if (need_overlap) ov.assign(n, 0);
    for (size_t t = begin; t < end; ++t) {
      const size_t p = static_cast<size_t>(targets[t]);
      for (const Occurrence& o : occ[p]) {
        const auto& centered = centered_dims[o.dim];
        const double vp = centered[o.pos].rating;
        for (size_t b = 0; b < centered.size(); ++b) {
          if (b == o.pos) continue;
          const auto& eb = centered[b];
          acc[eb.idx] += static_cast<float>(vp * eb.rating);
          if (need_overlap) ov[eb.idx]++;
        }
      }
      result[t] = {targets[t],
                   SelectRow(
                       p, n, norms, opts, [&](size_t q) { return acc[q]; },
                       [&](size_t q) { return ov[q]; })};
      // Reset only what this row touched before the buffer is reused.
      for (const Occurrence& o : occ[p]) {
        const auto& centered = centered_dims[o.dim];
        for (size_t b = 0; b < centered.size(); ++b) {
          acc[centered[b].idx] = 0.0f;
          if (need_overlap) ov[centered[b].idx] = 0;
        }
      }
    }
  });
  return result;
}

}  // namespace

std::vector<std::vector<Neighbor>> BuildItemNeighborhoods(
    const RatingMatrix& ratings, const SimilarityOptions& opts) {
  // Item vectors live in user-rating space: dimensions are users.
  std::vector<std::vector<RatingEntry>> dims;
  dims.reserve(ratings.NumUsers());
  for (size_t u = 0; u < ratings.NumUsers(); ++u) {
    dims.push_back(ratings.UserVector(static_cast<int32_t>(u)));
  }
  std::vector<double> means(ratings.NumItems(), 0.0);
  if (opts.centered) {
    for (size_t i = 0; i < ratings.NumItems(); ++i) {
      means[i] = ratings.ItemMean(static_cast<int32_t>(i));
    }
  }
  return BuildNeighborhoods(ratings.NumItems(), dims, means, opts);
}

std::vector<std::vector<Neighbor>> BuildUserNeighborhoods(
    const RatingMatrix& ratings, const SimilarityOptions& opts) {
  std::vector<std::vector<RatingEntry>> dims;
  dims.reserve(ratings.NumItems());
  for (size_t i = 0; i < ratings.NumItems(); ++i) {
    dims.push_back(ratings.ItemVector(static_cast<int32_t>(i)));
  }
  std::vector<double> means(ratings.NumUsers(), 0.0);
  if (opts.centered) {
    for (size_t u = 0; u < ratings.NumUsers(); ++u) {
      means[u] = ratings.UserMean(static_cast<int32_t>(u));
    }
  }
  return BuildNeighborhoods(ratings.NumUsers(), dims, means, opts);
}

std::vector<std::pair<int32_t, std::vector<Neighbor>>>
RecomputeItemNeighborhoodRows(const RatingMatrix& ratings,
                              const SimilarityOptions& opts,
                              const std::vector<int32_t>& rows) {
  std::vector<std::vector<RatingEntry>> dims;
  dims.reserve(ratings.NumUsers());
  for (size_t u = 0; u < ratings.NumUsers(); ++u) {
    dims.push_back(ratings.UserVector(static_cast<int32_t>(u)));
  }
  std::vector<double> means(ratings.NumItems(), 0.0);
  if (opts.centered) {
    for (size_t i = 0; i < ratings.NumItems(); ++i) {
      means[i] = ratings.ItemMean(static_cast<int32_t>(i));
    }
  }
  return RecomputeRows(ratings.NumItems(), dims, means, opts, rows);
}

std::vector<std::pair<int32_t, std::vector<Neighbor>>>
RecomputeUserNeighborhoodRows(const RatingMatrix& ratings,
                              const SimilarityOptions& opts,
                              const std::vector<int32_t>& rows) {
  std::vector<std::vector<RatingEntry>> dims;
  dims.reserve(ratings.NumItems());
  for (size_t i = 0; i < ratings.NumItems(); ++i) {
    dims.push_back(ratings.ItemVector(static_cast<int32_t>(i)));
  }
  std::vector<double> means(ratings.NumUsers(), 0.0);
  if (opts.centered) {
    for (size_t u = 0; u < ratings.NumUsers(); ++u) {
      means[u] = ratings.UserMean(static_cast<int32_t>(u));
    }
  }
  return RecomputeRows(ratings.NumUsers(), dims, means, opts, rows);
}

double PairwiseCosine(const std::vector<RatingEntry>& a,
                      const std::vector<RatingEntry>& b) {
  double dot = 0, na = 0, nb = 0;
  for (const auto& e : a) na += e.rating * e.rating;
  for (const auto& e : b) nb += e.rating * e.rating;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].idx < b[j].idx) {
      ++i;
    } else if (a[i].idx > b[j].idx) {
      ++j;
    } else {
      dot += a[i].rating * b[j].rating;
      ++i;
      ++j;
    }
  }
  double denom = std::sqrt(na) * std::sqrt(nb);
  if (denom <= 0) return 0;
  return dot / denom;
}

}  // namespace recdb
