#include "storage/page_guard.h"

#include "storage/buffer_pool.h"

namespace recdb {

Status PageGuard::Drop() {
  if (page_ == nullptr) return Status::OK();
  Status st = pool_->Unpin(page_->page_id(), dirty_);
  pool_ = nullptr;
  page_ = nullptr;
  dirty_ = false;
  return st;
}

void PageGuard::Release() { (void)Drop(); }

}  // namespace recdb
