#include "storage/table_page.h"

#include <cstring>

namespace recdb {

namespace {
template <typename T>
T Load(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}
template <typename T>
void Store(char* p, T v) {
  std::memcpy(p, &v, sizeof(T));
}
}  // namespace

void TablePage::Init() {
  set_next_page_id(kInvalidPageId);
  set_num_slots(0);
  set_free_end(static_cast<uint16_t>(kPageSize));
  set_page_lsn(0);
}

page_id_t TablePage::next_page_id() const {
  return Load<page_id_t>(page_->data());
}
void TablePage::set_next_page_id(page_id_t pid) {
  Store(page_->data(), pid);
}
uint16_t TablePage::num_slots() const {
  return Load<uint16_t>(page_->data() + 4);
}
void TablePage::set_num_slots(uint16_t v) { Store(page_->data() + 4, v); }
uint16_t TablePage::free_end() const {
  uint16_t v = Load<uint16_t>(page_->data() + 6);
  // A freshly zeroed page reads free_end == 0; treat as uninitialized full
  // page end. Init() stores kPageSize truncated to uint16 (== 0 when
  // kPageSize is 4096 * n... it is 4096, fits). Guard anyway.
  return v == 0 ? static_cast<uint16_t>(kPageSize) : v;
}
void TablePage::set_free_end(uint16_t v) { Store(page_->data() + 6, v); }

uint64_t TablePage::page_lsn() const {
  return Load<uint64_t>(page_->data() + 8);
}
void TablePage::set_page_lsn(uint64_t lsn) { Store(page_->data() + 8, lsn); }

bool TablePage::initialized() const {
  // Init() stores kPageSize (4096) into free_end; a never-written device
  // page reads back as zeros.
  return Load<uint16_t>(page_->data() + 6) != 0;
}

std::pair<uint16_t, uint16_t> TablePage::slot_at(uint16_t i) const {
  const char* p = page_->data() + kHeaderSize + i * kSlotSize;
  return {Load<uint16_t>(p), Load<uint16_t>(p + 2)};
}

void TablePage::set_slot(uint16_t i, uint16_t off, uint16_t size) {
  char* p = page_->data() + kHeaderSize + i * kSlotSize;
  Store(p, off);
  Store(p + 2, size);
}

size_t TablePage::FreeSpaceForInsert() const {
  size_t slots_end = kHeaderSize + num_slots() * kSlotSize;
  size_t fe = free_end();
  if (fe < slots_end + kSlotSize) return 0;
  return fe - slots_end - kSlotSize;
}

Result<uint16_t> TablePage::Insert(const std::vector<uint8_t>& bytes) {
  if (bytes.size() > FreeSpaceForInsert()) {
    return Status::ResourceExhausted("tuple does not fit in page");
  }
  uint16_t new_end = static_cast<uint16_t>(free_end() - bytes.size());
  std::memcpy(page_->data() + new_end, bytes.data(), bytes.size());
  uint16_t slot = num_slots();
  set_num_slots(slot + 1);
  set_slot(slot, new_end, static_cast<uint16_t>(bytes.size()));
  set_free_end(new_end);
  return slot;
}

Result<std::pair<const uint8_t*, size_t>> TablePage::Get(uint16_t slot) const {
  if (slot >= num_slots()) {
    return Status::NotFound("slot out of range");
  }
  auto [off, size] = slot_at(slot);
  if (size == 0) return Status::NotFound("deleted slot");
  return std::make_pair(
      reinterpret_cast<const uint8_t*>(page_->data() + off),
      static_cast<size_t>(size));
}

Status TablePage::Delete(uint16_t slot) {
  if (slot >= num_slots()) return Status::NotFound("slot out of range");
  auto [off, size] = slot_at(slot);
  if (size == 0) return Status::NotFound("slot already deleted");
  set_slot(slot, off, 0);
  return Status::OK();
}

Status TablePage::UpdateInPlace(uint16_t slot,
                                const std::vector<uint8_t>& bytes) {
  if (slot >= num_slots()) return Status::NotFound("slot out of range");
  auto [off, size] = slot_at(slot);
  if (size == 0) return Status::NotFound("deleted slot");
  if (bytes.size() > size) {
    return Status::ResourceExhausted("new tuple larger than old slot");
  }
  std::memcpy(page_->data() + off, bytes.data(), bytes.size());
  set_slot(slot, off, static_cast<uint16_t>(bytes.size()));
  return Status::OK();
}

}  // namespace recdb
