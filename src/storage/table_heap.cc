#include "storage/table_heap.h"

namespace recdb {

Result<std::unique_ptr<TableHeap>> TableHeap::Create(BufferPool* pool) {
  auto heap = std::unique_ptr<TableHeap>(new TableHeap(pool));
  page_id_t pid;
  RECDB_ASSIGN_OR_RETURN(Page * page, pool->New(&pid));
  TablePage tp(page);
  tp.Init();
  RECDB_RETURN_NOT_OK(pool->Unpin(pid, /*dirty=*/true));
  heap->first_page_id_ = pid;
  heap->last_page_id_ = pid;
  return heap;
}

Result<Rid> TableHeap::Insert(const Tuple& tuple) {
  std::vector<uint8_t> bytes;
  tuple.SerializeTo(&bytes);
  if (bytes.size() > kPageSize - 64) {
    return Status::InvalidArgument("tuple larger than a page");
  }
  RECDB_ASSIGN_OR_RETURN(Page * page, pool_->Fetch(last_page_id_));
  TablePage tp(page);
  auto slot = tp.Insert(bytes);
  if (slot.ok()) {
    Rid rid{last_page_id_, slot.value()};
    RECDB_RETURN_NOT_OK(pool_->Unpin(last_page_id_, /*dirty=*/true));
    ++num_tuples_;
    return rid;
  }
  // Current tail is full: chain a fresh page.
  page_id_t new_pid;
  auto new_page_res = pool_->New(&new_pid);
  if (!new_page_res.ok()) {
    (void)pool_->Unpin(last_page_id_, false);
    return new_page_res.status();
  }
  TablePage new_tp(new_page_res.value());
  new_tp.Init();
  tp.set_next_page_id(new_pid);
  RECDB_RETURN_NOT_OK(pool_->Unpin(last_page_id_, /*dirty=*/true));
  last_page_id_ = new_pid;
  auto slot2 = new_tp.Insert(bytes);
  if (!slot2.ok()) {
    (void)pool_->Unpin(new_pid, true);
    return slot2.status();
  }
  Rid rid{new_pid, slot2.value()};
  RECDB_RETURN_NOT_OK(pool_->Unpin(new_pid, /*dirty=*/true));
  ++num_tuples_;
  return rid;
}

Result<Tuple> TableHeap::Get(const Rid& rid, size_t num_values) const {
  RECDB_ASSIGN_OR_RETURN(Page * page, pool_->Fetch(rid.page_id));
  TablePage tp(page);
  auto bytes = tp.Get(rid.slot);
  if (!bytes.ok()) {
    (void)pool_->Unpin(rid.page_id, false);
    return bytes.status();
  }
  auto tuple =
      Tuple::DeserializeFrom(bytes.value().first, bytes.value().second,
                             num_values);
  RECDB_RETURN_NOT_OK(pool_->Unpin(rid.page_id, false));
  return tuple;
}

Status TableHeap::Delete(const Rid& rid) {
  RECDB_ASSIGN_OR_RETURN(Page * page, pool_->Fetch(rid.page_id));
  TablePage tp(page);
  Status st = tp.Delete(rid.slot);
  RECDB_RETURN_NOT_OK(pool_->Unpin(rid.page_id, st.ok()));
  if (st.ok()) --num_tuples_;
  return st;
}

Result<Rid> TableHeap::Update(const Rid& rid, const Tuple& tuple) {
  std::vector<uint8_t> bytes;
  tuple.SerializeTo(&bytes);
  RECDB_ASSIGN_OR_RETURN(Page * page, pool_->Fetch(rid.page_id));
  TablePage tp(page);
  Status st = tp.UpdateInPlace(rid.slot, bytes);
  RECDB_RETURN_NOT_OK(pool_->Unpin(rid.page_id, st.ok()));
  if (st.ok()) return rid;
  if (st.code() != StatusCode::kResourceExhausted) return st;
  RECDB_RETURN_NOT_OK(Delete(rid));
  return Insert(tuple);
}

Result<std::optional<std::pair<Rid, Tuple>>> TableHeap::Iterator::Next() {
  while (page_id_ != kInvalidPageId) {
    RECDB_ASSIGN_OR_RETURN(Page * page, heap_->pool_->Fetch(page_id_));
    TablePage tp(page);
    uint16_t n = tp.num_slots();
    while (slot_ < n) {
      uint16_t s = slot_++;
      auto bytes = tp.Get(s);
      if (!bytes.ok()) continue;  // deleted slot
      auto tuple = Tuple::DeserializeFrom(bytes.value().first,
                                          bytes.value().second, num_values_);
      if (!tuple.ok()) {
        (void)heap_->pool_->Unpin(page_id_, false);
        return tuple.status();
      }
      Rid rid{page_id_, s};
      RECDB_RETURN_NOT_OK(heap_->pool_->Unpin(page_id_, false));
      return std::make_optional(
          std::make_pair(rid, std::move(tuple).value()));
    }
    page_id_t next = tp.next_page_id();
    RECDB_RETURN_NOT_OK(heap_->pool_->Unpin(page_id_, false));
    page_id_ = next;
    slot_ = 0;
  }
  return std::optional<std::pair<Rid, Tuple>>{};
}

}  // namespace recdb
