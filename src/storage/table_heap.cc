#include "storage/table_heap.h"

#include "common/bytes.h"
#include "storage/log_manager.h"

namespace recdb {

std::vector<uint8_t> EncodeWalTupleRecord(const std::string& table,
                                          const Rid& rid,
                                          const std::vector<uint8_t>* bytes) {
  ByteWriter w;
  w.Str(table);
  w.Num<int32_t>(rid.page_id);
  w.Num<uint16_t>(rid.slot);
  if (bytes != nullptr) {
    w.Num<uint32_t>(static_cast<uint32_t>(bytes->size()));
    w.Raw(bytes->data(), bytes->size());
  }
  return w.bytes();
}

Result<WalTupleRecord> DecodeWalTupleRecord(
    const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  WalTupleRecord rec;
  RECDB_ASSIGN_OR_RETURN(rec.table, r.Str());
  RECDB_ASSIGN_OR_RETURN(rec.rid.page_id, r.Num<int32_t>());
  RECDB_ASSIGN_OR_RETURN(rec.rid.slot, r.Num<uint16_t>());
  if (r.Remaining() > 0) {
    RECDB_ASSIGN_OR_RETURN(uint32_t n, r.Num<uint32_t>());
    rec.bytes.resize(n);
    RECDB_RETURN_NOT_OK(r.Raw(rec.bytes.data(), n));
  }
  return rec;
}

Result<std::unique_ptr<TableHeap>> TableHeap::Create(BufferPool* pool) {
  auto heap = std::unique_ptr<TableHeap>(new TableHeap(pool));
  page_id_t pid;
  RECDB_ASSIGN_OR_RETURN(PageGuard guard, pool->NewGuard(&pid));
  TablePage tp(guard.page());
  tp.Init();
  RECDB_RETURN_NOT_OK(guard.Drop());
  heap->first_page_id_ = pid;
  heap->last_page_id_ = pid;
  return heap;
}

std::unique_ptr<TableHeap> TableHeap::Attach(BufferPool* pool,
                                             page_id_t first_page_id,
                                             page_id_t last_page_id,
                                             size_t num_tuples) {
  auto heap = std::unique_ptr<TableHeap>(new TableHeap(pool));
  heap->first_page_id_ = first_page_id;
  heap->last_page_id_ = last_page_id;
  heap->num_tuples_ = num_tuples;
  return heap;
}

Result<Rid> TableHeap::Insert(const Tuple& tuple) {
  std::vector<uint8_t> bytes;
  tuple.SerializeTo(&bytes);
  if (bytes.size() > kPageSize - 64) {
    return Status::InvalidArgument("tuple larger than a page");
  }
  RECDB_ASSIGN_OR_RETURN(PageGuard tail, pool_->FetchGuard(last_page_id_));
  TablePage tp(tail.page());
  auto slot = tp.Insert(bytes);
  if (slot.ok()) {
    Rid rid{last_page_id_, slot.value()};
    if (log_ != nullptr) {
      // Log + stamp while the page is pinned: an unpinned dirty page could
      // be evicted (written back) before its record reaches the log buffer.
      Lsn lsn = log_->Append(WalRecordType::kInsert,
                             EncodeWalTupleRecord(table_name_, rid, &bytes));
      tp.set_page_lsn(lsn);
      tail.page()->set_lsn(lsn);
    }
    tail.MarkDirty();
    RECDB_RETURN_NOT_OK(tail.Drop());
    ++num_tuples_;
    return rid;
  }
  // Current tail is full: chain a fresh page. One record covers the whole
  // step; REDO re-links the old tail when it replays an insert whose rid
  // lands past the current tail.
  page_id_t new_pid;
  RECDB_ASSIGN_OR_RETURN(PageGuard fresh, pool_->NewGuard(&new_pid));
  TablePage new_tp(fresh.page());
  new_tp.Init();
  tp.set_next_page_id(new_pid);
  RECDB_ASSIGN_OR_RETURN(uint16_t slot2, new_tp.Insert(bytes));
  Rid rid{new_pid, slot2};
  if (log_ != nullptr) {
    Lsn lsn = log_->Append(WalRecordType::kInsert,
                           EncodeWalTupleRecord(table_name_, rid, &bytes));
    tp.set_page_lsn(lsn);
    tail.page()->set_lsn(lsn);
    new_tp.set_page_lsn(lsn);
    fresh.page()->set_lsn(lsn);
  }
  tail.MarkDirty();
  RECDB_RETURN_NOT_OK(tail.Drop());
  last_page_id_ = new_pid;
  RECDB_RETURN_NOT_OK(fresh.Drop());
  ++num_tuples_;
  return rid;
}

Result<Tuple> TableHeap::Get(const Rid& rid, size_t num_values) const {
  RECDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchGuard(rid.page_id));
  TablePage tp(guard.page());
  RECDB_ASSIGN_OR_RETURN(auto bytes, tp.Get(rid.slot));
  RECDB_ASSIGN_OR_RETURN(
      Tuple tuple,
      Tuple::DeserializeFrom(bytes.first, bytes.second, num_values));
  RECDB_RETURN_NOT_OK(guard.Drop());
  return tuple;
}

Status TableHeap::Delete(const Rid& rid) {
  RECDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchGuard(rid.page_id));
  TablePage tp(guard.page());
  RECDB_RETURN_NOT_OK(tp.Delete(rid.slot));
  if (log_ != nullptr) {
    Lsn lsn = log_->Append(WalRecordType::kDelete,
                           EncodeWalTupleRecord(table_name_, rid, nullptr));
    tp.set_page_lsn(lsn);
    guard.page()->set_lsn(lsn);
  }
  guard.MarkDirty();
  RECDB_RETURN_NOT_OK(guard.Drop());
  --num_tuples_;
  return Status::OK();
}

Result<Rid> TableHeap::Update(const Rid& rid, const Tuple& tuple) {
  std::vector<uint8_t> bytes;
  tuple.SerializeTo(&bytes);
  {
    RECDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchGuard(rid.page_id));
    TablePage tp(guard.page());
    Status st = tp.UpdateInPlace(rid.slot, bytes);
    if (st.ok()) {
      if (log_ != nullptr) {
        Lsn lsn = log_->Append(WalRecordType::kUpdate,
                               EncodeWalTupleRecord(table_name_, rid, &bytes));
        tp.set_page_lsn(lsn);
        guard.page()->set_lsn(lsn);
      }
      guard.MarkDirty();
      RECDB_RETURN_NOT_OK(guard.Drop());
      return rid;
    }
    if (st.code() != StatusCode::kResourceExhausted) return st;
  }
  // The displacing path logs through Delete and Insert themselves.
  RECDB_RETURN_NOT_OK(Delete(rid));
  return Insert(tuple);
}

Status TableHeap::RedoInsert(const Rid& rid, const std::vector<uint8_t>& bytes,
                             uint64_t lsn) {
  if (rid.page_id != last_page_id_) {
    // Chain extension: the record's rid lies past the current tail. Re-link
    // the tail (idempotent — the link is the same value either way) and
    // make sure the new page exists on a device that never saw its
    // allocation.
    pool_->EnsureAllocated(rid.page_id);
    RECDB_ASSIGN_OR_RETURN(PageGuard tail, pool_->FetchGuard(last_page_id_));
    TablePage tp(tail.page());
    if (tp.page_lsn() < lsn) {
      tp.set_next_page_id(rid.page_id);
      tp.set_page_lsn(lsn);
      tail.MarkDirty();
    }
    RECDB_RETURN_NOT_OK(tail.Drop());
    last_page_id_ = rid.page_id;
  }
  RECDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchGuard(rid.page_id));
  TablePage tp(guard.page());
  if (!tp.initialized()) {
    tp.Init();
    guard.MarkDirty();
  }
  if (tp.page_lsn() < lsn) {
    // Records replay in LSN order over the checkpoint image, so this
    // record's slot must be exactly the page's next free slot.
    if (tp.num_slots() != rid.slot) {
      return Status::DataLoss("REDO insert slot mismatch at " +
                              rid.ToString());
    }
    RECDB_ASSIGN_OR_RETURN(uint16_t slot, tp.Insert(bytes));
    (void)slot;
    tp.set_page_lsn(lsn);
    guard.MarkDirty();
  }
  RECDB_RETURN_NOT_OK(guard.Drop());
  ++num_tuples_;
  return Status::OK();
}

Status TableHeap::RedoDelete(const Rid& rid, uint64_t lsn) {
  RECDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchGuard(rid.page_id));
  TablePage tp(guard.page());
  if (tp.page_lsn() < lsn) {
    RECDB_RETURN_NOT_OK(tp.Delete(rid.slot));
    tp.set_page_lsn(lsn);
    guard.MarkDirty();
  }
  RECDB_RETURN_NOT_OK(guard.Drop());
  --num_tuples_;
  return Status::OK();
}

Status TableHeap::RedoUpdate(const Rid& rid, const std::vector<uint8_t>& bytes,
                             uint64_t lsn) {
  RECDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchGuard(rid.page_id));
  TablePage tp(guard.page());
  if (tp.page_lsn() < lsn) {
    // kUpdate is only logged for successful in-place updates, so the replay
    // must fit in the old slot too.
    RECDB_RETURN_NOT_OK(tp.UpdateInPlace(rid.slot, bytes));
    tp.set_page_lsn(lsn);
    guard.MarkDirty();
  }
  RECDB_RETURN_NOT_OK(guard.Drop());
  return Status::OK();
}

Status TableHeap::RepairTail(bool* repaired) {
  RECDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchGuard(last_page_id_));
  TablePage tp(guard.page());
  if (tp.next_page_id() != kInvalidPageId) {
    tp.set_next_page_id(kInvalidPageId);
    guard.MarkDirty();
    if (repaired != nullptr) *repaired = true;
  }
  RECDB_RETURN_NOT_OK(guard.Drop());
  return Status::OK();
}

Result<std::optional<std::pair<Rid, Tuple>>> TableHeap::Iterator::Next() {
  while (page_id_ != kInvalidPageId) {
    RECDB_ASSIGN_OR_RETURN(PageGuard guard,
                           heap_->pool_->FetchGuard(page_id_));
    TablePage tp(guard.page());
    uint16_t n = tp.num_slots();
    while (slot_ < n) {
      uint16_t s = slot_++;
      auto bytes = tp.Get(s);
      if (!bytes.ok()) continue;  // deleted slot
      RECDB_ASSIGN_OR_RETURN(
          Tuple tuple,
          Tuple::DeserializeFrom(bytes.value().first, bytes.value().second,
                                 num_values_));
      Rid rid{page_id_, s};
      RECDB_RETURN_NOT_OK(guard.Drop());
      return std::make_optional(std::make_pair(rid, std::move(tuple)));
    }
    page_id_t next = tp.next_page_id();
    RECDB_RETURN_NOT_OK(guard.Drop());
    page_id_ = next;
    slot_ = 0;
  }
  return std::optional<std::pair<Rid, Tuple>>{};
}

}  // namespace recdb
