#include "storage/table_heap.h"

namespace recdb {

Result<std::unique_ptr<TableHeap>> TableHeap::Create(BufferPool* pool) {
  auto heap = std::unique_ptr<TableHeap>(new TableHeap(pool));
  page_id_t pid;
  RECDB_ASSIGN_OR_RETURN(PageGuard guard, pool->NewGuard(&pid));
  TablePage tp(guard.page());
  tp.Init();
  RECDB_RETURN_NOT_OK(guard.Drop());
  heap->first_page_id_ = pid;
  heap->last_page_id_ = pid;
  return heap;
}

std::unique_ptr<TableHeap> TableHeap::Attach(BufferPool* pool,
                                             page_id_t first_page_id,
                                             page_id_t last_page_id,
                                             size_t num_tuples) {
  auto heap = std::unique_ptr<TableHeap>(new TableHeap(pool));
  heap->first_page_id_ = first_page_id;
  heap->last_page_id_ = last_page_id;
  heap->num_tuples_ = num_tuples;
  return heap;
}

Result<Rid> TableHeap::Insert(const Tuple& tuple) {
  std::vector<uint8_t> bytes;
  tuple.SerializeTo(&bytes);
  if (bytes.size() > kPageSize - 64) {
    return Status::InvalidArgument("tuple larger than a page");
  }
  RECDB_ASSIGN_OR_RETURN(PageGuard tail, pool_->FetchGuard(last_page_id_));
  TablePage tp(tail.page());
  auto slot = tp.Insert(bytes);
  if (slot.ok()) {
    tail.MarkDirty();
    Rid rid{last_page_id_, slot.value()};
    RECDB_RETURN_NOT_OK(tail.Drop());
    ++num_tuples_;
    return rid;
  }
  // Current tail is full: chain a fresh page.
  page_id_t new_pid;
  RECDB_ASSIGN_OR_RETURN(PageGuard fresh, pool_->NewGuard(&new_pid));
  TablePage new_tp(fresh.page());
  new_tp.Init();
  tp.set_next_page_id(new_pid);
  tail.MarkDirty();
  RECDB_RETURN_NOT_OK(tail.Drop());
  last_page_id_ = new_pid;
  RECDB_ASSIGN_OR_RETURN(uint16_t slot2, new_tp.Insert(bytes));
  Rid rid{new_pid, slot2};
  RECDB_RETURN_NOT_OK(fresh.Drop());
  ++num_tuples_;
  return rid;
}

Result<Tuple> TableHeap::Get(const Rid& rid, size_t num_values) const {
  RECDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchGuard(rid.page_id));
  TablePage tp(guard.page());
  RECDB_ASSIGN_OR_RETURN(auto bytes, tp.Get(rid.slot));
  RECDB_ASSIGN_OR_RETURN(
      Tuple tuple,
      Tuple::DeserializeFrom(bytes.first, bytes.second, num_values));
  RECDB_RETURN_NOT_OK(guard.Drop());
  return tuple;
}

Status TableHeap::Delete(const Rid& rid) {
  RECDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchGuard(rid.page_id));
  TablePage tp(guard.page());
  RECDB_RETURN_NOT_OK(tp.Delete(rid.slot));
  guard.MarkDirty();
  RECDB_RETURN_NOT_OK(guard.Drop());
  --num_tuples_;
  return Status::OK();
}

Result<Rid> TableHeap::Update(const Rid& rid, const Tuple& tuple) {
  std::vector<uint8_t> bytes;
  tuple.SerializeTo(&bytes);
  {
    RECDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchGuard(rid.page_id));
    TablePage tp(guard.page());
    Status st = tp.UpdateInPlace(rid.slot, bytes);
    if (st.ok()) {
      guard.MarkDirty();
      RECDB_RETURN_NOT_OK(guard.Drop());
      return rid;
    }
    if (st.code() != StatusCode::kResourceExhausted) return st;
  }
  RECDB_RETURN_NOT_OK(Delete(rid));
  return Insert(tuple);
}

Result<std::optional<std::pair<Rid, Tuple>>> TableHeap::Iterator::Next() {
  while (page_id_ != kInvalidPageId) {
    RECDB_ASSIGN_OR_RETURN(PageGuard guard,
                           heap_->pool_->FetchGuard(page_id_));
    TablePage tp(guard.page());
    uint16_t n = tp.num_slots();
    while (slot_ < n) {
      uint16_t s = slot_++;
      auto bytes = tp.Get(s);
      if (!bytes.ok()) continue;  // deleted slot
      RECDB_ASSIGN_OR_RETURN(
          Tuple tuple,
          Tuple::DeserializeFrom(bytes.value().first, bytes.value().second,
                                 num_values_));
      Rid rid{page_id_, s};
      RECDB_RETURN_NOT_OK(guard.Drop());
      return std::make_optional(std::make_pair(rid, std::move(tuple)));
    }
    page_id_t next = tp.next_page_id();
    RECDB_RETURN_NOT_OK(guard.Drop());
    page_id_ = next;
    slot_ = 0;
  }
  return std::optional<std::pair<Rid, Tuple>>{};
}

}  // namespace recdb
