#include "storage/catalog.h"

#include "common/string_util.h"

namespace recdb {

Result<TableInfo*> Catalog::CreateTable(const std::string& name,
                                        Schema schema) {
  std::string key = ToLower(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  auto info = std::make_unique<TableInfo>();
  info->name = name;
  info->schema = std::move(schema);
  info->table_id = next_table_id_++;
  RECDB_ASSIGN_OR_RETURN(info->heap, TableHeap::Create(pool_));
  TableInfo* raw = info.get();
  tables_[key] = std::move(info);
  return raw;
}

Result<TableInfo*> Catalog::AttachTable(const std::string& name, Schema schema,
                                        std::unique_ptr<TableHeap> heap) {
  std::string key = ToLower(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  auto info = std::make_unique<TableInfo>();
  info->name = name;
  info->schema = std::move(schema);
  info->table_id = next_table_id_++;
  info->heap = std::move(heap);
  TableInfo* raw = info.get();
  tables_[key] = std::move(info);
  return raw;
}

Result<TableInfo*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + name);
  }
  return it->second.get();
}

Status Catalog::DropTable(const std::string& name) {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + name);
  }
  tables_.erase(it);
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [k, v] : tables_) {
    (void)k;
    out.push_back(v->name);
  }
  return out;
}

}  // namespace recdb
