#include "storage/buffer_pool.h"

#include "obs/metrics.h"
#include "storage/log_manager.h"

namespace recdb {

BufferPool::BufferPool(size_t pool_size, DiskManager* disk) : disk_(disk) {
  RECDB_DCHECK(pool_size > 0);
  frames_.reserve(pool_size);
  for (size_t i = 0; i < pool_size; ++i) {
    frames_.push_back(std::make_unique<Page>());
    free_list_.push_back(static_cast<frame_id_t>(i));
  }
}

void BufferPool::TouchLru(frame_id_t fid) {
  EraseLru(fid);
  lru_.push_back(fid);
  lru_pos_[fid] = std::prev(lru_.end());
}

void BufferPool::EraseLru(frame_id_t fid) {
  auto it = lru_pos_.find(fid);
  if (it != lru_pos_.end()) {
    lru_.erase(it->second);
    lru_pos_.erase(it);
  }
}

Result<frame_id_t> BufferPool::GetVictim() {
  if (!free_list_.empty()) {
    frame_id_t fid = free_list_.back();
    free_list_.pop_back();
    return fid;
  }
  Status write_back_error;
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    frame_id_t fid = *it;
    if (frames_[fid]->pin_count() != 0) continue;
    Page* victim = frames_[fid].get();
    if (victim->is_dirty()) {
      // WAL rule: the log records this frame's mutations rode on must be
      // durable before the data page overwrites its on-disk image.
      Status st = log_ != nullptr ? log_->EnsureDurable(victim->lsn())
                                  : Status::OK();
      if (st.ok()) st = disk_->WritePage(victim->page_id(), victim->data());
      if (!st.ok()) {
        // The victim keeps its (dirty, resident, consistent) frame; try the
        // next candidate so one bad write-back doesn't wedge the pool.
        write_back_error = st;
        continue;
      }
      victim->is_dirty_ = false;
      obs::Count(obs::Counter::kBufferPoolFlushes);
    }
    page_table_.erase(victim->page_id());
    EraseLru(fid);
    victim->Reset();
    obs::Count(obs::Counter::kBufferPoolEvictions);
    obs::SetGauge(obs::Gauge::kBufferPoolResidentPages,
                  static_cast<int64_t>(page_table_.size()));
    return fid;
  }
  if (!write_back_error.ok()) return write_back_error;
  return Status::ResourceExhausted("all buffer-pool frames are pinned");
}

Result<Page*> BufferPool::Fetch(page_id_t pid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(pid);
  if (it != page_table_.end()) {
    ++hits_;
    obs::Count(obs::Counter::kBufferPoolHits);
    Page* page = frames_[it->second].get();
    ++page->pin_count_;
    TouchLru(it->second);
    return page;
  }
  ++misses_;
  obs::Count(obs::Counter::kBufferPoolMisses);
  RECDB_ASSIGN_OR_RETURN(frame_id_t fid, GetVictim());
  Page* page = frames_[fid].get();
  Status st = disk_->ReadPage(pid, page->data());
  if (!st.ok()) {
    free_list_.push_back(fid);
    return st;
  }
  page->page_id_ = pid;
  page->pin_count_ = 1;
  page->is_dirty_ = false;
  page_table_[pid] = fid;
  TouchLru(fid);
  obs::SetGauge(obs::Gauge::kBufferPoolResidentPages,
                static_cast<int64_t>(page_table_.size()));
  return page;
}

Result<Page*> BufferPool::New(page_id_t* pid_out) {
  std::lock_guard<std::mutex> lock(mu_);
  RECDB_ASSIGN_OR_RETURN(frame_id_t fid, GetVictim());
  page_id_t pid = disk_->AllocatePage();
  Page* page = frames_[fid].get();
  page->Reset();
  page->page_id_ = pid;
  page->pin_count_ = 1;
  page->is_dirty_ = true;  // a new page must reach disk even if untouched
  page_table_[pid] = fid;
  TouchLru(fid);
  obs::SetGauge(obs::Gauge::kBufferPoolResidentPages,
                static_cast<int64_t>(page_table_.size()));
  if (pid_out != nullptr) *pid_out = pid;
  return page;
}

Result<PageGuard> BufferPool::FetchGuard(page_id_t pid) {
  RECDB_ASSIGN_OR_RETURN(Page * page, Fetch(pid));
  return PageGuard(this, page);
}

Result<PageGuard> BufferPool::NewGuard(page_id_t* pid_out) {
  RECDB_ASSIGN_OR_RETURN(Page * page, New(pid_out));
  PageGuard guard(this, page);
  guard.MarkDirty();
  return guard;
}

Status BufferPool::Unpin(page_id_t pid, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(pid);
  if (it == page_table_.end()) {
    return Status::NotFound("unpin of non-resident page " +
                            std::to_string(pid));
  }
  Page* page = frames_[it->second].get();
  if (page->pin_count_ <= 0) {
    return Status::Internal("unpin of unpinned page " + std::to_string(pid));
  }
  --page->pin_count_;
  page->is_dirty_ = page->is_dirty_ || dirty;
  return Status::OK();
}

Status BufferPool::FlushLocked(page_id_t pid) {
  auto it = page_table_.find(pid);
  if (it == page_table_.end()) return Status::OK();
  Page* page = frames_[it->second].get();
  if (page->is_dirty_) {
    if (log_ != nullptr) {
      RECDB_RETURN_NOT_OK(log_->EnsureDurable(page->lsn()));
    }
    RECDB_RETURN_NOT_OK(disk_->WritePage(pid, page->data()));
    page->is_dirty_ = false;
    obs::Count(obs::Counter::kBufferPoolFlushes);
  }
  return Status::OK();
}

Status BufferPool::Flush(page_id_t pid) {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked(pid);
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [pid, fid] : page_table_) {
    (void)fid;
    RECDB_RETURN_NOT_OK(FlushLocked(pid));
  }
  return disk_->Sync();
}

void BufferPool::EnsureAllocated(page_id_t pid) {
  std::lock_guard<std::mutex> lock(mu_);
  while (disk_->NumPages() <= static_cast<size_t>(pid)) {
    disk_->AllocatePage();
  }
}

size_t BufferPool::NumPinned() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& f : frames_) {
    if (f->pin_count() > 0) ++n;
  }
  return n;
}

}  // namespace recdb
