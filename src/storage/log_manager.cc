#include "storage/log_manager.h"

#include <algorithm>
#include <cstring>

#include "common/timer.h"
#include "obs/metrics.h"

namespace recdb {

Result<std::unique_ptr<LogManager>> LogManager::Open(
    std::unique_ptr<DiskManager> disk) {
  auto log = std::unique_ptr<LogManager>(new LogManager(std::move(disk)));
  RECDB_RETURN_NOT_OK(log->InitOrRecover());
  return log;
}

Status LogManager::WriteHeaderPage(uint64_t epoch, Lsn base) {
  alignas(8) char buf[kPageSize];
  std::memset(buf, 0, kPageSize);
  std::memcpy(buf, &kHeaderMagic, sizeof(kHeaderMagic));
  std::memcpy(buf + 8, &epoch, sizeof(epoch));
  std::memcpy(buf + 16, &base, sizeof(base));
  return disk_->WritePage(0, buf);
}

Status LogManager::InitOrRecover() {
  if (disk_->NumPages() == 0) {
    disk_->AllocatePage();  // page 0 = header
    RECDB_RETURN_NOT_OK(WriteHeaderPage(epoch_, base_lsn_));
    return disk_->Sync();
  }

  alignas(8) char buf[kPageSize];
  Status hst = disk_->ReadPage(0, buf);
  uint32_t magic = 0;
  if (hst.ok()) std::memcpy(&magic, buf, sizeof(magic));
  bool adopt = false;
  if (hst.ok() && magic == kHeaderMagic) {
    std::memcpy(&epoch_, buf + 8, sizeof(epoch_));
    std::memcpy(&base_lsn_, buf + 16, sizeof(base_lsn_));
  } else if (!hst.ok() && hst.code() != StatusCode::kDataLoss) {
    return hst;  // failing device — do not guess
  } else {
    // Torn or foreign header (crash during create or checkpoint truncation).
    // The header is rewritten only after a completed checkpoint, so any
    // records still on disk are covered by the checkpoint image; adopt the
    // first log page's epoch so that prefix is still readable, and let the
    // caller's checkpoint-LSN filter drop what the checkpoint covered.
    adopt = true;
    if (disk_->NumPages() > 1) {
      alignas(8) char p1[kPageSize];
      Status rst = disk_->ReadPage(1, p1);
      uint32_t m1 = 0;
      if (rst.ok()) std::memcpy(&m1, p1, sizeof(m1));
      if (rst.ok() && m1 == kPageMagic) {
        std::memcpy(&epoch_, p1 + 8, sizeof(epoch_));
      }
    }
  }

  newest_lsn_.store(base_lsn_, std::memory_order_release);
  durable_lsn_.store(base_lsn_, std::memory_order_release);
  RECDB_RETURN_NOT_OK(ScanLog(adopt));
  if (adopt) {
    RECDB_RETURN_NOT_OK(WriteHeaderPage(epoch_, base_lsn_));
    RECDB_RETURN_NOT_OK(disk_->Sync());
  }
  return Status::OK();
}

Status LogManager::ScanLog(bool adopt_base) {
  // Page-level pass: concatenate the payloads of consecutive current-epoch
  // pages from page 1. A hole (never-written zeros), foreign epoch, torn
  // page (kDataLoss), or nonsense header ends the log region; a hard read
  // error aborts the open rather than silently truncating committed records.
  std::vector<uint8_t> stream;
  std::vector<size_t> page_end;  // cumulative stream size after each page
  const size_t total = disk_->NumPages();
  for (page_id_t pid = 1; static_cast<size_t>(pid) < total; ++pid) {
    alignas(8) char buf[kPageSize];
    Status st = disk_->ReadPage(pid, buf);
    if (!st.ok()) {
      if (st.code() == StatusCode::kDataLoss) break;  // torn tail
      return st;
    }
    uint32_t magic, used;
    uint64_t epoch;
    std::memcpy(&magic, buf, sizeof(magic));
    std::memcpy(&used, buf + 4, sizeof(used));
    std::memcpy(&epoch, buf + 8, sizeof(epoch));
    if (magic != kPageMagic || epoch != epoch_ || used == 0 ||
        used > kPagePayload) {
      break;
    }
    stream.insert(stream.end(), buf + kPageHeaderSize,
                  buf + kPageHeaderSize + used);
    page_end.push_back(stream.size());
    // A sealed page (used < capacity) ends one batch, but the next batch
    // starts on the following page — keep scanning.
  }

  // Frame-level pass: parse records until the first inconsistency. Bytes
  // past a failed (never-acknowledged) batch can survive as stale pages of
  // the current epoch; the CRC and LSN-continuity checks reject them, and
  // the next flush position rewinds over them so they get overwritten.
  size_t pos = 0;
  size_t last_valid_end = 0;
  Lsn last_lsn = base_lsn_;
  while (stream.size() - pos >= 8) {
    uint32_t len, crc;
    std::memcpy(&len, stream.data() + pos, sizeof(len));
    std::memcpy(&crc, stream.data() + pos + 4, sizeof(crc));
    if (len < 9 || len > stream.size() - pos - 8) break;
    const uint8_t* body = stream.data() + pos + 8;
    if (Crc32(body, len) != crc) break;
    Lsn lsn;
    std::memcpy(&lsn, body, sizeof(lsn));
    if (adopt_base && recovered_.empty()) {
      base_lsn_ = lsn - 1;
      last_lsn = base_lsn_;
    }
    if (lsn != last_lsn + 1) break;
    const uint8_t type = body[8];
    if (type < static_cast<uint8_t>(WalRecordType::kInsert) ||
        type > static_cast<uint8_t>(WalRecordType::kDropRecommender)) {
      break;
    }
    WalRecord rec;
    rec.lsn = lsn;
    rec.type = static_cast<WalRecordType>(type);
    rec.payload.assign(body + 9, body + len);
    recovered_.push_back(std::move(rec));
    last_lsn = lsn;
    pos += 8 + static_cast<size_t>(len);
    last_valid_end = pos;
  }

  // Keep the pages fully covered by valid records; the next flush starts
  // right after them. Batches are page-aligned, so the valid prefix always
  // ends exactly at a page boundary.
  size_t kept = 0;
  for (size_t k = 0; k < page_end.size(); ++k) {
    if (page_end[k] <= last_valid_end) {
      kept = k + 1;
    } else {
      break;
    }
  }
  next_log_page_ = 1 + static_cast<page_id_t>(kept);
  newest_lsn_.store(last_lsn, std::memory_order_release);
  durable_lsn_.store(last_lsn, std::memory_order_release);
  obs::SetGauge(obs::Gauge::kWalDurableLsn, static_cast<int64_t>(last_lsn));
  return Status::OK();
}

Lsn LogManager::Append(WalRecordType type, const std::vector<uint8_t>& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  const Lsn lsn = newest_lsn_.load(std::memory_order_relaxed) + 1;
  newest_lsn_.store(lsn, std::memory_order_release);
  const uint32_t len = static_cast<uint32_t>(9 + payload.size());
  const size_t base = pending_.size();
  pending_.resize(base + 8 + len);
  uint8_t* frame = pending_.data() + base;
  uint8_t* body = frame + 8;
  std::memcpy(body, &lsn, sizeof(lsn));
  body[8] = static_cast<uint8_t>(type);
  if (!payload.empty()) std::memcpy(body + 9, payload.data(), payload.size());
  const uint32_t crc = Crc32(body, len);
  std::memcpy(frame, &len, sizeof(len));
  std::memcpy(frame + 4, &crc, sizeof(crc));
  num_appended_.fetch_add(1, std::memory_order_relaxed);
  obs::Count(obs::Counter::kWalAppends);
  obs::Count(obs::Counter::kWalBytesAppended, 8 + len);
  return lsn;
}

Status LogManager::WriteBatch(page_id_t first_page,
                              const std::vector<uint8_t>& bytes,
                              size_t* pages_out) {
  const size_t n = bytes.size();
  const size_t pages = (n + kPagePayload - 1) / kPagePayload;
  for (size_t k = 0; k < pages; ++k) {
    while (disk_->NumPages() <= static_cast<size_t>(first_page) + k) {
      disk_->AllocatePage();
    }
    alignas(8) char buf[kPageSize];
    std::memset(buf, 0, kPageSize);
    const size_t off = k * kPagePayload;
    const uint32_t used = static_cast<uint32_t>(std::min(kPagePayload, n - off));
    std::memcpy(buf, &kPageMagic, sizeof(kPageMagic));
    std::memcpy(buf + 4, &used, sizeof(used));
    std::memcpy(buf + 8, &epoch_, sizeof(epoch_));
    std::memcpy(buf + kPageHeaderSize, bytes.data() + off, used);
    RECDB_RETURN_NOT_OK(
        disk_->WritePage(first_page + static_cast<page_id_t>(k), buf));
  }
  RECDB_RETURN_NOT_OK(disk_->Sync());  // the one fsync of this group commit
  num_flushes_.fetch_add(1, std::memory_order_relaxed);
  obs::Count(obs::Counter::kWalFsyncs);
  *pages_out = pages;
  return Status::OK();
}

Status LogManager::Commit(Lsn lsn) {
  Stopwatch watch;
  std::unique_lock<std::mutex> lock(mu_);
  const Lsn newest = newest_lsn_.load(std::memory_order_relaxed);
  if (lsn > newest) lsn = newest;
  while (durable_lsn_.load(std::memory_order_acquire) < lsn &&
         flush_in_progress_) {
    cv_.wait(lock);
  }
  if (durable_lsn_.load(std::memory_order_acquire) >= lsn) {
    // A concurrent leader's batch covered this commit (group commit).
    obs::Count(obs::Counter::kWalCommits);
    obs::ObserveUs(obs::Histogram::kWalCommitUs,
                   static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6));
    return Status::OK();
  }

  // Leader: flush every buffered record in one batch. The device I/O runs
  // outside the mutex so sessions keep appending while the batch syncs.
  flush_in_progress_ = true;
  const Lsn target = newest_lsn_.load(std::memory_order_relaxed);
  std::vector<uint8_t> batch = pending_;
  const page_id_t first_page = next_log_page_;
  lock.unlock();
  size_t pages = 0;
  Status st =
      batch.empty() ? Status::OK() : WriteBatch(first_page, batch, &pages);
  lock.lock();
  flush_in_progress_ = false;
  if (st.ok()) {
    // Records appended during the flush stayed behind the copied prefix.
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<ptrdiff_t>(batch.size()));
    next_log_page_ = first_page + static_cast<page_id_t>(pages);
    durable_lsn_.store(target, std::memory_order_release);
    obs::SetGauge(obs::Gauge::kWalDurableLsn, static_cast<int64_t>(target));
  }
  // On failure the buffered bytes stay pending: the pages they would have
  // occupied were never acknowledged, so a retrying Commit simply rewrites
  // them from the same position.
  cv_.notify_all();
  lock.unlock();
  if (!st.ok()) return st;
  obs::Count(obs::Counter::kWalCommits);
  obs::ObserveUs(obs::Histogram::kWalCommitUs,
                 static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6));
  return Status::OK();
}

Status LogManager::Reset(Lsn new_base) {
  std::unique_lock<std::mutex> lock(mu_);
  while (flush_in_progress_) cv_.wait(lock);
  // Persist the new epoch first; only then mutate in-memory state. If the
  // header write fails the log keeps running in the old epoch and the old
  // records stay replayable (they are harmless duplicates of the checkpoint
  // image, filtered out by the checkpoint LSN on recovery).
  const uint64_t new_epoch = epoch_ + 1;
  RECDB_RETURN_NOT_OK(WriteHeaderPage(new_epoch, new_base));
  RECDB_RETURN_NOT_OK(disk_->Sync());
  epoch_ = new_epoch;
  base_lsn_ = new_base;
  if (newest_lsn_.load(std::memory_order_relaxed) < new_base) {
    newest_lsn_.store(new_base, std::memory_order_release);
  }
  pending_.clear();
  const Lsn newest = newest_lsn_.load(std::memory_order_relaxed);
  durable_lsn_.store(newest, std::memory_order_release);
  next_log_page_ = 1;
  obs::Count(obs::Counter::kWalResets);
  obs::SetGauge(obs::Gauge::kWalDurableLsn, static_cast<int64_t>(newest));
  return Status::OK();
}

}  // namespace recdb
