// TablePage: slotted-page layout over a raw buffer-pool frame.
//
// Layout (little-endian):
//   [0..3]   next_page_id (int32)  — forward link of the heap file
//   [4..5]   num_slots    (uint16)
//   [6..7]   free_end     (uint16) — lowest byte offset used by tuple data;
//                                    data grows downward from kPageSize
//   [8..15]  page_lsn     (uint64) — LSN of the newest logged mutation
//                                    persisted on this page; REDO skips
//                                    records at or below it (idempotency)
//   [16..]   slot array: {uint16 offset, uint16 size} per slot.
//            size == 0 marks a deleted slot (offset then unused).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "storage/page.h"
#include "types/tuple.h"

namespace recdb {

/// Record id: page + slot.
struct Rid {
  page_id_t page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool operator==(const Rid& o) const {
    return page_id == o.page_id && slot == o.slot;
  }
  std::string ToString() const {
    return "(" + std::to_string(page_id) + "," + std::to_string(slot) + ")";
  }
};

/// Non-owning view interpreting a Page as a slotted table page.
class TablePage {
 public:
  explicit TablePage(Page* page) : page_(page) {}

  /// Format a freshly allocated page.
  void Init();

  page_id_t next_page_id() const;
  void set_next_page_id(page_id_t pid);

  /// On-disk REDO watermark (see layout comment). Distinct from the
  /// in-memory Page::lsn() WAL-rule watermark, which is never serialized.
  uint64_t page_lsn() const;
  void set_page_lsn(uint64_t lsn);

  /// False for a never-formatted (all-zero) page: recovery uses this to
  /// detect heap pages whose formatting write never reached the device.
  bool initialized() const;

  uint16_t num_slots() const;

  /// Bytes available for a new tuple (accounting for a possible new slot).
  size_t FreeSpaceForInsert() const;

  /// Insert serialized bytes; returns slot index, or ResourceExhausted if
  /// the tuple does not fit.
  Result<uint16_t> Insert(const std::vector<uint8_t>& bytes);

  /// Raw bytes of a live slot; NotFound for deleted/out-of-range slots.
  Result<std::pair<const uint8_t*, size_t>> Get(uint16_t slot) const;

  /// Mark a slot deleted. Space is reclaimed only by compaction (not
  /// implemented; heap files in this engine are append-mostly, as in the
  /// paper's workloads).
  Status Delete(uint16_t slot);

  /// Overwrite a slot in place if the new payload fits in the old slot's
  /// byte range; otherwise ResourceExhausted (caller re-inserts elsewhere).
  Status UpdateInPlace(uint16_t slot, const std::vector<uint8_t>& bytes);

 private:
  static constexpr size_t kHeaderSize = 16;
  static constexpr size_t kSlotSize = 4;

  uint16_t free_end() const;
  void set_free_end(uint16_t v);
  void set_num_slots(uint16_t v);
  std::pair<uint16_t, uint16_t> slot_at(uint16_t i) const;  // {offset, size}
  void set_slot(uint16_t i, uint16_t off, uint16_t size);

  Page* page_;
};

}  // namespace recdb
