// Catalog: registry of tables (name -> schema + heap file).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include <optional>

#include "common/status.h"
#include "stats/table_stats.h"
#include "storage/table_heap.h"
#include "types/schema.h"

namespace recdb {

struct TableInfo {
  std::string name;
  Schema schema;
  std::unique_ptr<TableHeap> heap;
  uint32_t table_id = 0;
  /// Optimizer statistics from the last ANALYZE (absent until then);
  /// persisted through the catalog meta page.
  std::optional<TableStats> stats;
};

class Catalog {
 public:
  explicit Catalog(BufferPool* pool) : pool_(pool) {}

  /// Create a table; AlreadyExists if the (case-insensitive) name is taken.
  Result<TableInfo*> CreateTable(const std::string& name, Schema schema);

  /// Register a table over an already-existing heap (database reopen path).
  Result<TableInfo*> AttachTable(const std::string& name, Schema schema,
                                 std::unique_ptr<TableHeap> heap);

  /// Look up by case-insensitive name.
  Result<TableInfo*> GetTable(const std::string& name) const;

  /// Drop a table and its heap.
  Status DropTable(const std::string& name);

  std::vector<std::string> TableNames() const;

  BufferPool* buffer_pool() const { return pool_; }

 private:
  BufferPool* pool_;
  // Keyed by lower-cased name.
  std::unordered_map<std::string, std::unique_ptr<TableInfo>> tables_;
  uint32_t next_table_id_ = 0;
};

}  // namespace recdb
