// BufferPool: fixed set of frames over the DiskManager with LRU replacement.
//
// Pin/unpin discipline: Fetch/New return a pinned page; callers must Unpin
// (marking dirty when they wrote). Prefer FetchGuard/NewGuard, whose RAII
// PageGuard makes a leaked pin impossible on error paths. Pinned pages are
// never evicted; evicting a dirty page writes it back.
//
// Thread safety: every public entry point takes the internal mutex, so
// concurrent sessions can fetch/unpin safely. Page *contents* are not
// guarded here — RecDB's reader-writer discipline guarantees at most one
// writer (or any number of readers) touches tuple bytes at a time.
//
// WAL rule: when a log manager is attached via SetWal, a dirty frame is
// written back only after EnsureDurable(frame.lsn()) — the log records for
// every mutation the frame carries reach the log device before the data
// page can. An eviction whose log flush fails skips that candidate, same
// as a failed write-back.
//
// Failure model: a failed write-back during eviction leaves the victim
// resident and dirty (no data is lost) and the pool tries the next LRU
// candidate; a failed read into a victim frame returns the frame to the
// free list. Either way the pool stays internally consistent and a later
// retry can succeed.
#pragma once

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "storage/page_guard.h"

namespace recdb {

class LogManager;

class BufferPool {
 public:
  BufferPool(size_t pool_size, DiskManager* disk);

  /// Attach the WAL for the flush-order rule. Call before any logged
  /// mutation; not thread-safe against in-flight operations.
  void SetWal(LogManager* log) { log_ = log; }

  /// Fetch an existing page, pinning it. IOError if unallocated; kDataLoss
  /// if corrupt on disk; ResourceExhausted if every frame is pinned.
  Result<Page*> Fetch(page_id_t pid);

  /// Allocate a new page on disk and pin a zeroed frame for it.
  Result<Page*> New(page_id_t* pid_out);

  /// Fetch, wrapped in an RAII guard that unpins on scope exit.
  Result<PageGuard> FetchGuard(page_id_t pid);

  /// New, wrapped in an RAII guard (already marked dirty: a new page must
  /// reach disk even if untouched).
  Result<PageGuard> NewGuard(page_id_t* pid_out);

  /// Drop a pin; `dirty` ORs into the frame's dirty bit.
  Status Unpin(page_id_t pid, bool dirty);

  /// Write a page back to disk if present (clears dirty bit).
  Status Flush(page_id_t pid);

  /// Flush every resident dirty page, then issue the disk's durability
  /// barrier (fsync for file-backed devices).
  Status FlushAll();

  /// Grow the device until `pid` is a valid page (REDO replays records that
  /// reference pages whose allocation never reached the data file).
  void EnsureAllocated(page_id_t pid);

  size_t pool_size() const { return frames_.size(); }
  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }
  void ResetCounters() {
    std::lock_guard<std::mutex> lock(mu_);
    hits_ = misses_ = 0;
  }

  /// Number of currently pinned frames (test/debug aid).
  size_t NumPinned() const;

 private:
  /// Pick a victim frame: free list first, else LRU among unpinned.
  /// Requires mu_ held (log flushes happen with it held; LogManager never
  /// calls back into the pool, so the ordering pool-mutex -> log-mutex is
  /// acyclic).
  Result<frame_id_t> GetVictim();
  Status FlushLocked(page_id_t pid);
  void TouchLru(frame_id_t fid);
  void EraseLru(frame_id_t fid);

  DiskManager* disk_;
  LogManager* log_ = nullptr;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Page>> frames_;
  std::unordered_map<page_id_t, frame_id_t> page_table_;
  std::list<frame_id_t> lru_;  // front = least recently used
  std::unordered_map<frame_id_t, std::list<frame_id_t>::iterator> lru_pos_;
  std::vector<frame_id_t> free_list_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace recdb
