// Page: fixed-size in-memory frame managed by the buffer pool.
#pragma once

#include <cstdint>
#include <cstring>

namespace recdb {

using page_id_t = int32_t;
using frame_id_t = int32_t;
inline constexpr page_id_t kInvalidPageId = -1;
inline constexpr size_t kPageSize = 4096;

/// A buffer-pool frame: raw bytes plus bookkeeping. The buffer pool hands out
/// pinned Page pointers; callers must unpin via BufferPool::Unpin.
class Page {
 public:
  Page() { Reset(); }

  char* data() { return data_; }
  const char* data() const { return data_; }

  page_id_t page_id() const { return page_id_; }
  int pin_count() const { return pin_count_; }
  bool is_dirty() const { return is_dirty_; }

  /// WAL watermark: LSN of the newest log record whose effect this frame
  /// carries. In-memory only (never serialized): a page read from disk
  /// restarts at 0, which is safe — its on-disk bytes got there through a
  /// write-back that already enforced the WAL rule for every earlier LSN.
  uint64_t lsn() const { return lsn_; }
  void set_lsn(uint64_t lsn) { lsn_ = lsn; }

  void Reset() {
    std::memset(data_, 0, kPageSize);
    page_id_ = kInvalidPageId;
    pin_count_ = 0;
    is_dirty_ = false;
    lsn_ = 0;
  }

 private:
  friend class BufferPool;

  char data_[kPageSize];
  page_id_t page_id_ = kInvalidPageId;
  int pin_count_ = 0;
  bool is_dirty_ = false;
  uint64_t lsn_ = 0;
};

}  // namespace recdb
