// DiskManager: the "disk" under the buffer pool.
//
// The paper's operators are described in terms of block-at-a-time I/O over
// PostgreSQL heap files, where I/O can and does fail. This layer reproduces
// both the cost model and the failure model behind one abstract interface:
//
//   - InMemoryDiskManager: a page vector that counts every read/write and can
//     optionally charge a per-page latency (the seed's behaviour).
//   - FileDiskManager: persists pages to a single database file. Every page
//     slot carries an on-disk header with a CRC32 checksum; a torn or corrupt
//     page surfaces as kDataLoss on ReadPage. Sync() is an fsync durability
//     barrier.
//   - FaultInjectingDiskManager: decorator with deterministic, seeded fault
//     schedules (fail the Nth read/write attempt, transient vs permanent
//     errors, torn writes) for testing the error paths above the disk.
//
// The public ReadPage/WritePage entry points implement a bounded
// retry-with-backoff policy: transient faults (kUnavailable) are retried up
// to RetryPolicy::max_attempts before the error escapes to the buffer pool.
// Fault counters (read/write failures, retries, checksum failures) are
// maintained here so every layer above can observe fault behaviour.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace recdb {

/// Bounded retry-with-backoff for transient I/O faults.
struct RetryPolicy {
  /// Total attempts per logical read/write (1 = no retry).
  int max_attempts = 3;
  /// Backoff before the first retry; doubles per subsequent retry.
  /// 0 disables the wait (what deterministic tests want).
  uint64_t backoff_us = 100;
};

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `len` bytes, seeded so the
/// checksum of an all-zero buffer is non-zero. Exposed for tests.
uint32_t Crc32(const void* data, size_t len);

class DiskManager {
 public:
  DiskManager() = default;
  virtual ~DiskManager() = default;

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Allocate a fresh zeroed page, returning its id.
  virtual page_id_t AllocatePage() = 0;

  /// Read page `pid` into `out` (kPageSize bytes), retrying transient
  /// faults per the retry policy. kDataLoss on checksum mismatch.
  Status ReadPage(page_id_t pid, char* out);

  /// Write kPageSize bytes from `src` to page `pid`, retrying transient
  /// faults per the retry policy.
  Status WritePage(page_id_t pid, const char* src);

  /// Durability barrier: everything written before Sync() survives a crash
  /// after it. No-op for in-memory devices; fsync for file-backed ones.
  virtual Status Sync() { return Status::OK(); }

  virtual size_t NumPages() const = 0;

  /// True when pages survive process exit (file-backed devices); layers
  /// above use this to decide whether catalog metadata must be persisted.
  virtual bool persistent() const { return false; }

  // I/O accounting. Counters are relaxed atomics: concurrent sessions read
  // them (per-script I/O deltas) while other sessions issue I/O.
  uint64_t num_reads() const {
    return num_reads_.load(std::memory_order_relaxed);
  }
  uint64_t num_writes() const {
    return num_writes_.load(std::memory_order_relaxed);
  }
  // Fault accounting (ReadPage/WritePage calls that failed after retries,
  // transient-fault retries performed, checksum verification failures).
  uint64_t num_read_failures() const {
    return num_read_failures_.load(std::memory_order_relaxed);
  }
  uint64_t num_write_failures() const {
    return num_write_failures_.load(std::memory_order_relaxed);
  }
  uint64_t num_retries() const {
    return num_retries_.load(std::memory_order_relaxed);
  }
  uint64_t num_checksum_failures() const {
    return num_checksum_failures_.load(std::memory_order_relaxed);
  }
  void ResetCounters() {
    num_reads_ = num_writes_ = 0;
    num_read_failures_ = num_write_failures_ = 0;
    num_retries_ = num_checksum_failures_ = 0;
  }

  void set_retry_policy(RetryPolicy policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// Emulated device latency charged per physical page access (busy-wait in
  /// nanoseconds; 0 = off). Lets benchmarks model magnetic-disk behaviour.
  void set_page_latency_ns(uint64_t ns) { page_latency_ns_ = ns; }

 protected:
  /// One physical read/write attempt (no retries; subclasses implement).
  virtual Status DoReadPage(page_id_t pid, char* out) = 0;
  virtual Status DoWritePage(page_id_t pid, const char* src) = 0;

  void ChargeLatency() const;
  void CountChecksumFailure() { ++num_checksum_failures_; }

 private:
  enum class OpKind { kRead, kWrite };
  Status RunWithRetry(OpKind kind, page_id_t pid, char* out, const char* src);

  RetryPolicy retry_policy_;
  std::atomic<uint64_t> num_reads_{0};
  std::atomic<uint64_t> num_writes_{0};
  std::atomic<uint64_t> num_read_failures_{0};
  std::atomic<uint64_t> num_write_failures_{0};
  std::atomic<uint64_t> num_retries_{0};
  std::atomic<uint64_t> num_checksum_failures_{0};
  uint64_t page_latency_ns_ = 0;
};

/// The seed's purely in-memory page store: never fails (beyond bounds
/// checks), zero-latency unless configured otherwise.
class InMemoryDiskManager : public DiskManager {
 public:
  page_id_t AllocatePage() override;
  size_t NumPages() const override { return pages_.size(); }

 protected:
  Status DoReadPage(page_id_t pid, char* out) override;
  Status DoWritePage(page_id_t pid, const char* src) override;

 private:
  std::vector<std::unique_ptr<char[]>> pages_;
};

/// Single-file page store with per-page CRC32 checksums.
///
/// File layout (little-endian):
///   [file header, kFileHeaderSize bytes]
///     magic "RECDBF1\0" | u32 page_count | u32 header_crc (over the above)
///   [page slot 0][page slot 1]...
/// Each page slot is kSlotHeaderSize + kPageSize bytes:
///     u32 crc (over page_id then payload) | u32 page_id | u64 reserved
///
/// A slot that is entirely zero denotes an allocated-but-never-written page
/// (a file hole) and reads back as zeroes; any other slot must pass checksum
/// and page-id verification or ReadPage returns kDataLoss.
class FileDiskManager : public DiskManager {
 public:
  static constexpr size_t kFileHeaderSize = 64;
  static constexpr size_t kSlotHeaderSize = 16;

  /// Open (or create) the database file at `path`.
  static Result<std::unique_ptr<FileDiskManager>> Open(const std::string& path);

  ~FileDiskManager() override;

  page_id_t AllocatePage() override { return next_page_id_++; }
  size_t NumPages() const override { return static_cast<size_t>(next_page_id_); }

  /// fsync barrier; also persists the allocation high-water mark in the
  /// file header so a reopened database never re-issues a live page id.
  Status Sync() override;

  bool persistent() const override { return true; }

  const std::string& path() const { return path_; }

  /// Test hook: simulate a torn write of `src` to `pid` — the slot header
  /// (with the checksum of the FULL intended payload) and only the first
  /// `valid_bytes` of payload reach the file, as when power fails between
  /// sectors. A subsequent ReadPage of `pid` must return kDataLoss.
  Status TornWrite(page_id_t pid, const char* src, size_t valid_bytes);

 protected:
  Status DoReadPage(page_id_t pid, char* out) override;
  Status DoWritePage(page_id_t pid, const char* src) override;

 private:
  FileDiskManager(std::string path, int fd, page_id_t next_page_id)
      : path_(std::move(path)), fd_(fd), next_page_id_(next_page_id) {}

  static uint64_t SlotOffset(page_id_t pid);
  Status WriteFileHeader();

  std::string path_;
  int fd_ = -1;
  page_id_t next_page_id_ = 0;
};

/// Kinds of injected faults.
enum class FaultKind {
  kTransient,  // fails with kUnavailable; a retry may succeed
  kPermanent,  // fails with kIOError; retries don't help
  kTorn,       // writes only: half the payload reaches the inner device,
               // then the write reports failure (kIOError)
};

/// Decorator that injects deterministic faults into an inner DiskManager.
///
/// Faults are scheduled against per-kind *attempt* counters (1-based; the
/// retry loop's re-attempts advance the counter too, so a transient fault at
/// read attempt N is naturally retried as attempt N+1). A seeded random
/// failure rate can be layered on top for soak testing; it is deterministic
/// for a given seed and call sequence.
class FaultInjectingDiskManager : public DiskManager {
 public:
  explicit FaultInjectingDiskManager(std::unique_ptr<DiskManager> inner)
      : inner_(std::move(inner)) {}

  /// Fail the `attempt`-th read/write attempt (1-based, counted from
  /// construction or the last ClearFaults()).
  void FailNthRead(uint64_t attempt, FaultKind kind = FaultKind::kTransient) {
    read_faults_[attempt] = kind;
  }
  void FailNthWrite(uint64_t attempt, FaultKind kind = FaultKind::kTransient) {
    write_faults_[attempt] = kind;
  }
  /// Fail the `attempt`-th Sync() call (1-based). kTorn is not meaningful
  /// for a barrier and is treated as kPermanent. Crash-recovery tests use
  /// this as the "inside the group-commit fsync" kill point.
  void FailNthSync(uint64_t attempt, FaultKind kind = FaultKind::kPermanent) {
    sync_faults_[attempt] = kind;
  }

  /// Seeded random faults: each attempt fails with probability `rate`.
  void SetRandomFaults(double read_rate, double write_rate, uint64_t seed,
                       FaultKind kind = FaultKind::kTransient) {
    read_rate_ = read_rate;
    write_rate_ = write_rate;
    rng_state_ = seed | 1;
    random_kind_ = kind;
  }

  void ClearFaults() {
    read_faults_.clear();
    write_faults_.clear();
    sync_faults_.clear();
    read_rate_ = write_rate_ = 0;
    read_attempts_ = write_attempts_ = sync_attempts_ = 0;
  }

  uint64_t num_injected_faults() const { return num_injected_; }
  uint64_t read_attempts() const { return read_attempts_; }
  uint64_t write_attempts() const { return write_attempts_; }
  uint64_t sync_attempts() const { return sync_attempts_; }

  DiskManager* inner() { return inner_.get(); }

  page_id_t AllocatePage() override { return inner_->AllocatePage(); }
  size_t NumPages() const override { return inner_->NumPages(); }
  Status Sync() override;
  bool persistent() const override { return inner_->persistent(); }

 protected:
  Status DoReadPage(page_id_t pid, char* out) override;
  Status DoWritePage(page_id_t pid, const char* src) override;

 private:
  /// Fault scheduled for this attempt, if any (consumes one-shot entries).
  std::optional<FaultKind> NextFault(std::map<uint64_t, FaultKind>* schedule,
                                     uint64_t attempt, double rate);
  double NextRandom();

  std::unique_ptr<DiskManager> inner_;
  std::map<uint64_t, FaultKind> read_faults_;
  std::map<uint64_t, FaultKind> write_faults_;
  std::map<uint64_t, FaultKind> sync_faults_;
  uint64_t read_attempts_ = 0;
  uint64_t write_attempts_ = 0;
  uint64_t sync_attempts_ = 0;
  double read_rate_ = 0;
  double write_rate_ = 0;
  FaultKind random_kind_ = FaultKind::kTransient;
  uint64_t rng_state_ = 1;
  uint64_t num_injected_ = 0;
};

}  // namespace recdb
