// DiskManager: the "disk" under the buffer pool.
//
// The paper's operators are described in terms of block-at-a-time I/O over
// PostgreSQL heap files. We reproduce that cost model with an in-memory
// page store that counts every read/write, so benchmarks and tests can
// observe I/O behaviour deterministically (and optionally charge a per-page
// latency to emulate a slow device).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace recdb {

class DiskManager {
 public:
  DiskManager() = default;

  /// Allocate a fresh zeroed page, returning its id.
  page_id_t AllocatePage();

  /// Read page `pid` into `out` (kPageSize bytes).
  Status ReadPage(page_id_t pid, char* out);

  /// Write kPageSize bytes from `src` to page `pid`.
  Status WritePage(page_id_t pid, const char* src);

  size_t NumPages() const { return pages_.size(); }

  // I/O accounting.
  uint64_t num_reads() const { return num_reads_; }
  uint64_t num_writes() const { return num_writes_; }
  void ResetCounters() { num_reads_ = num_writes_ = 0; }

  /// Emulated device latency charged per physical page access (busy-wait in
  /// nanoseconds; 0 = off). Lets benchmarks model magnetic-disk behaviour.
  void set_page_latency_ns(uint64_t ns) { page_latency_ns_ = ns; }

 private:
  void ChargeLatency() const;

  std::vector<std::unique_ptr<char[]>> pages_;
  uint64_t num_reads_ = 0;
  uint64_t num_writes_ = 0;
  uint64_t page_latency_ns_ = 0;
};

}  // namespace recdb
