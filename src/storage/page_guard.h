// PageGuard: RAII pin ownership for buffer-pool pages.
//
// BufferPool::FetchGuard/NewGuard return a move-only guard that unpins its
// page on destruction, so an early error return can never leak a pin — the
// invariant the fault-injection tests assert (NumPinned() == 0 after every
// engine operation). Callers mark the guard dirty when they wrote through it;
// the dirty bit is handed to Unpin exactly once, whether the guard is dropped
// explicitly or goes out of scope.
#pragma once

#include "common/status.h"
#include "storage/page.h"

namespace recdb {

class BufferPool;

class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, Page* page) : pool_(pool), page_(page) {}
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  PageGuard(PageGuard&& other) noexcept
      : pool_(other.pool_), page_(other.page_), dirty_(other.dirty_) {
    other.pool_ = nullptr;
    other.page_ = nullptr;
    other.dirty_ = false;
  }

  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      page_ = other.page_;
      dirty_ = other.dirty_;
      other.pool_ = nullptr;
      other.page_ = nullptr;
      other.dirty_ = false;
    }
    return *this;
  }

  /// Guard holds a pinned page.
  explicit operator bool() const { return page_ != nullptr; }

  Page* page() const { return page_; }
  char* data() const { return page_->data(); }
  page_id_t page_id() const { return page_->page_id(); }

  /// Record that the caller wrote through this guard; the frame's dirty bit
  /// is set when the pin is released.
  void MarkDirty() { dirty_ = true; }
  bool is_dirty() const { return dirty_; }

  /// Explicitly unpin now, surfacing the Unpin status (the destructor path
  /// drops it). Guard is empty afterwards; safe to call on an empty guard.
  Status Drop();

 private:
  void Release();

  BufferPool* pool_ = nullptr;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

}  // namespace recdb
