// LogManager: the write-ahead log behind RecDB's durability guarantee.
//
// The paper positions RecDB as a DBMS serving live recommendation traffic;
// continuous rating ingest needs commit durability cheaper than a full
// checkpoint per statement. The WAL provides it: every mutation appends an
// LSN-stamped logical record to an append-only log device, and a statement
// is acknowledged only after its records are fsynced. RecDB::Open replays
// the durable log suffix (REDO) over the last checkpoint image.
//
// Device layout (own DiskManager, normally `<db>.wal`):
//   page 0  — header: u32 magic | u32 reserved | u64 epoch | u64 base_lsn
//   page 1+ — log pages: u32 magic | u32 used | u64 epoch | payload
//
// Record framing inside the concatenated page payloads:
//   u32 len | u32 crc32(body) | body
//   body = u64 lsn | u8 type | type-specific payload
//
// Torn-tail safety comes from batch-aligned pages: every flush starts on a
// fresh page and seals the batch's final page (used < capacity), so a torn
// write can only corrupt pages holding bytes that were never acknowledged.
// The recovery scan stops at the first hole, foreign-epoch page, CRC
// mismatch, or LSN discontinuity — everything before that point is exactly
// the durable record prefix.
//
// Group commit: Append() only buffers (cheap, under a short mutex);
// Commit(lsn) elects one waiting thread as leader, which writes and fsyncs
// every buffered record in one batch while followers wait on a condvar —
// one fsync per batch regardless of how many sessions committed.
//
// Checkpoint truncation: Reset(lsn) bumps the epoch and rewinds to page 1.
// Old-epoch pages become unreachable without being rewritten.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "storage/disk_manager.h"

namespace recdb {

/// Log sequence number: 1-based, strictly monotonic per log, 0 = "none".
using Lsn = uint64_t;

/// Logical record types. Payload encodings are owned by the layer that
/// writes them (TableHeap for tuple records, RecDB for DDL records); the
/// LogManager treats payloads as opaque bytes.
enum class WalRecordType : uint8_t {
  kInsert = 1,             // table | rid | tuple bytes
  kDelete = 2,             // table | rid
  kUpdate = 3,             // table | rid | tuple bytes (in-place)
  kCreateTable = 4,        // name | schema | first page id
  kDropTable = 5,          // name
  kCreateRecommender = 6,  // serialized RecommenderConfig
  kDropRecommender = 7,    // name
};

/// One parsed log record, as returned by the recovery scan.
struct WalRecord {
  Lsn lsn = 0;
  WalRecordType type = WalRecordType::kInsert;
  std::vector<uint8_t> payload;
};

class LogManager {
 public:
  /// Open (or initialize) a log on `disk`. Scans the durable record prefix;
  /// retrieve it with TakeRecoveredRecords(). An unreadable header page is
  /// tolerated (it is rewritten only during checkpoint truncation, whose
  /// records are already covered by the checkpoint image): the epoch is
  /// adopted from the first log page when possible, else the log starts
  /// fresh. A hard I/O error on a log page fails the open — truncating at
  /// a failing sector would silently drop committed records.
  static Result<std::unique_ptr<LogManager>> Open(
      std::unique_ptr<DiskManager> disk);

  /// Buffer one record, assigning the next LSN. Does not touch the device;
  /// the record is durable only once Commit()/EnsureDurable() covers it.
  Lsn Append(WalRecordType type, const std::vector<uint8_t>& payload);

  /// Block until every record up to `lsn` is durable (group commit). On
  /// flush failure the buffered records stay pending, so a later Commit can
  /// retry; the in-memory database state is then ahead of the durable log.
  Status Commit(Lsn lsn);

  /// WAL rule hook for the buffer pool: make `lsn` durable before a data
  /// page stamped with it is written back. Lock-free when already durable.
  Status EnsureDurable(Lsn lsn) {
    if (lsn == 0 || durable_lsn() >= lsn) return Status::OK();
    return Commit(lsn);
  }

  /// Checkpoint truncation: records up to `new_base` are covered by the
  /// checkpoint image; drop them, bump the epoch, rewind to page 1.
  Status Reset(Lsn new_base);

  /// Records recovered by Open(), in LSN order (moved out; one shot).
  std::vector<WalRecord> TakeRecoveredRecords() {
    return std::move(recovered_);
  }

  Lsn newest_lsn() const {
    return newest_lsn_.load(std::memory_order_acquire);
  }
  Lsn durable_lsn() const {
    return durable_lsn_.load(std::memory_order_acquire);
  }
  Lsn base_lsn() const { return base_lsn_; }

  /// Flush batches executed (each is one device Sync). With group commit,
  /// flushes() <= commits served; tests assert the piggyback behaviour.
  uint64_t flushes() const {
    return num_flushes_.load(std::memory_order_relaxed);
  }
  uint64_t records_appended() const {
    return num_appended_.load(std::memory_order_relaxed);
  }

  DiskManager* disk() { return disk_.get(); }

 private:
  static constexpr uint32_t kHeaderMagic = 0x4C415752u;  // "RWAL"
  static constexpr uint32_t kPageMagic = 0x47504C57u;    // "WLPG"
  static constexpr size_t kPageHeaderSize = 16;
  static constexpr size_t kPagePayload = kPageSize - kPageHeaderSize;

  explicit LogManager(std::unique_ptr<DiskManager> disk)
      : disk_(std::move(disk)) {}

  Status InitOrRecover();
  Status WriteHeaderPage(uint64_t epoch, Lsn base);
  /// Write `bytes` as log pages starting at `first_page`, then Sync. Returns
  /// the page count through `pages_out` on success.
  Status WriteBatch(page_id_t first_page, const std::vector<uint8_t>& bytes,
                    size_t* pages_out);
  /// Scan the current epoch's pages from page 1, filling recovered_ and
  /// positioning next_log_page_ / the LSN watermarks. With `adopt_base`
  /// (unreadable header), base_lsn_ is inferred from the first record.
  Status ScanLog(bool adopt_base);

  std::unique_ptr<DiskManager> disk_;

  std::mutex mu_;
  std::condition_variable cv_;
  /// Serialized frames not yet durable (guarded by mu_).
  std::vector<uint8_t> pending_;
  bool flush_in_progress_ = false;
  /// First device page the next flush will write (guarded by mu_).
  page_id_t next_log_page_ = 1;

  uint64_t epoch_ = 1;
  Lsn base_lsn_ = 0;
  std::atomic<Lsn> newest_lsn_{0};
  std::atomic<Lsn> durable_lsn_{0};
  std::atomic<uint64_t> num_flushes_{0};
  std::atomic<uint64_t> num_appended_{0};

  std::vector<WalRecord> recovered_;
};

}  // namespace recdb
