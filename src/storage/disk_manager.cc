#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "obs/metrics.h"

namespace recdb {

namespace {

constexpr char kFileMagic[8] = {'R', 'E', 'C', 'D', 'B', 'F', '1', '\0'};

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

/// Full pread/pwrite (restarting on EINTR and short transfers).
ssize_t PreadFull(int fd, void* buf, size_t count, uint64_t offset) {
  size_t done = 0;
  while (done < count) {
    ssize_t n = ::pread(fd, static_cast<char*>(buf) + done, count - done,
                        static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) break;  // EOF: caller zero-fills the rest
    done += static_cast<size_t>(n);
  }
  return static_cast<ssize_t>(done);
}

bool PwriteFull(int fd, const void* buf, size_t count, uint64_t offset) {
  size_t done = 0;
  while (done < count) {
    ssize_t n = ::pwrite(fd, static_cast<const char*>(buf) + done,
                         count - done, static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

void EncodeU32(char* dst, uint32_t v) { std::memcpy(dst, &v, sizeof(v)); }
uint32_t DecodeU32(const char* src) {
  uint32_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}

bool AllZero(const char* buf, size_t len) {
  for (size_t i = 0; i < len; ++i) {
    if (buf[i] != 0) return false;
  }
  return true;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t c = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// --- DiskManager (retry wrapper) ---------------------------------------------

Status DiskManager::RunWithRetry(OpKind kind, page_id_t pid, char* out,
                                 const char* src) {
  const int max_attempts = retry_policy_.max_attempts < 1
                               ? 1
                               : retry_policy_.max_attempts;
  uint64_t backoff_us = retry_policy_.backoff_us;
  Status st;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      ++num_retries_;
      obs::Count(obs::Counter::kDiskRetries);
      if (backoff_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
        backoff_us *= 2;
      }
    }
    st = kind == OpKind::kRead ? DoReadPage(pid, out) : DoWritePage(pid, src);
    if (st.ok()) {
      if (kind == OpKind::kRead) {
        ++num_reads_;
        obs::Count(obs::Counter::kDiskReads);
      } else {
        ++num_writes_;
        obs::Count(obs::Counter::kDiskWrites);
      }
      return st;
    }
    if (st.code() == StatusCode::kDataLoss) {
      ++num_checksum_failures_;
      obs::Count(obs::Counter::kDiskChecksumFailures);
    }
    if (!st.IsTransient()) break;  // permanent: retrying cannot help
  }
  if (kind == OpKind::kRead) {
    ++num_read_failures_;
    obs::Count(obs::Counter::kDiskReadFailures);
  } else {
    ++num_write_failures_;
    obs::Count(obs::Counter::kDiskWriteFailures);
  }
  return st;
}

Status DiskManager::ReadPage(page_id_t pid, char* out) {
  return RunWithRetry(OpKind::kRead, pid, out, nullptr);
}

Status DiskManager::WritePage(page_id_t pid, const char* src) {
  return RunWithRetry(OpKind::kWrite, pid, nullptr, src);
}

void DiskManager::ChargeLatency() const {
  if (page_latency_ns_ == 0) return;
  auto end = std::chrono::steady_clock::now() +
             std::chrono::nanoseconds(page_latency_ns_);
  while (std::chrono::steady_clock::now() < end) {
    // busy wait: sleep granularity is too coarse for sub-microsecond charges
  }
}

// --- InMemoryDiskManager -----------------------------------------------------

page_id_t InMemoryDiskManager::AllocatePage() {
  auto buf = std::make_unique<char[]>(kPageSize);
  std::memset(buf.get(), 0, kPageSize);
  pages_.push_back(std::move(buf));
  return static_cast<page_id_t>(pages_.size() - 1);
}

Status InMemoryDiskManager::DoReadPage(page_id_t pid, char* out) {
  if (pid < 0 || static_cast<size_t>(pid) >= pages_.size()) {
    return Status::IOError("read of unallocated page " + std::to_string(pid));
  }
  ChargeLatency();
  std::memcpy(out, pages_[pid].get(), kPageSize);
  return Status::OK();
}

Status InMemoryDiskManager::DoWritePage(page_id_t pid, const char* src) {
  if (pid < 0 || static_cast<size_t>(pid) >= pages_.size()) {
    return Status::IOError("write of unallocated page " + std::to_string(pid));
  }
  ChargeLatency();
  std::memcpy(pages_[pid].get(), src, kPageSize);
  return Status::OK();
}

// --- FileDiskManager ---------------------------------------------------------

uint64_t FileDiskManager::SlotOffset(page_id_t pid) {
  return kFileHeaderSize +
         static_cast<uint64_t>(pid) * (kSlotHeaderSize + kPageSize);
}

Result<std::unique_ptr<FileDiskManager>> FileDiskManager::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  page_id_t next_page_id = 0;
  if (st.st_size == 0) {
    // Fresh database: stamp the header now so a reopen recognises the file.
    auto mgr = std::unique_ptr<FileDiskManager>(
        new FileDiskManager(path, fd, 0));
    RECDB_RETURN_NOT_OK(mgr->WriteFileHeader());
    return mgr;
  }
  char header[kFileHeaderSize] = {};
  ssize_t n = PreadFull(fd, header, kFileHeaderSize, 0);
  if (n != static_cast<ssize_t>(kFileHeaderSize) ||
      std::memcmp(header, kFileMagic, sizeof(kFileMagic)) != 0) {
    ::close(fd);
    return Status::IOError(path + " is not a recdb database file");
  }
  uint32_t stored_count = DecodeU32(header + sizeof(kFileMagic));
  uint32_t stored_crc = DecodeU32(header + sizeof(kFileMagic) + 4);
  if (stored_crc != Crc32(header, sizeof(kFileMagic) + 4)) {
    ::close(fd);
    return Status::DataLoss("corrupt file header in " + path);
  }
  // Trust the larger of the persisted high-water mark and the file extent,
  // so pages written after the last Sync() are still addressable.
  uint64_t by_size = 0;
  if (static_cast<uint64_t>(st.st_size) > kFileHeaderSize) {
    by_size = (static_cast<uint64_t>(st.st_size) - kFileHeaderSize +
               kSlotHeaderSize + kPageSize - 1) /
              (kSlotHeaderSize + kPageSize);
  }
  next_page_id = static_cast<page_id_t>(
      std::max<uint64_t>(stored_count, by_size));
  return std::unique_ptr<FileDiskManager>(
      new FileDiskManager(path, fd, next_page_id));
}

FileDiskManager::~FileDiskManager() {
  if (fd_ >= 0) {
    (void)WriteFileHeader();
    ::fsync(fd_);
    ::close(fd_);
  }
}

Status FileDiskManager::WriteFileHeader() {
  char header[kFileHeaderSize] = {};
  std::memcpy(header, kFileMagic, sizeof(kFileMagic));
  EncodeU32(header + sizeof(kFileMagic), static_cast<uint32_t>(next_page_id_));
  EncodeU32(header + sizeof(kFileMagic) + 4,
            Crc32(header, sizeof(kFileMagic) + 4));
  if (!PwriteFull(fd_, header, kFileHeaderSize, 0)) {
    return Status::IOError("header write failed for " + path_);
  }
  return Status::OK();
}

Status FileDiskManager::Sync() {
  RECDB_RETURN_NOT_OK(WriteFileHeader());
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync failed for " + path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status FileDiskManager::DoReadPage(page_id_t pid, char* out) {
  if (pid < 0 || pid >= next_page_id_) {
    return Status::IOError("read of unallocated page " + std::to_string(pid));
  }
  ChargeLatency();
  char slot[kSlotHeaderSize + kPageSize];
  ssize_t n = PreadFull(fd_, slot, sizeof(slot), SlotOffset(pid));
  if (n < 0) {
    return Status::IOError("pread failed for page " + std::to_string(pid) +
                           ": " + std::strerror(errno));
  }
  // Anything past EOF reads as zero (allocated-but-never-written tail).
  if (static_cast<size_t>(n) < sizeof(slot)) {
    std::memset(slot + n, 0, sizeof(slot) - static_cast<size_t>(n));
  }
  const char* payload = slot + kSlotHeaderSize;
  if (AllZero(slot, kSlotHeaderSize) && AllZero(payload, kPageSize)) {
    // File hole: a page that was allocated but never written back.
    std::memset(out, 0, kPageSize);
    return Status::OK();
  }
  uint32_t stored_crc = DecodeU32(slot);
  uint32_t stored_pid = DecodeU32(slot + 4);
  char crc_buf[4];
  EncodeU32(crc_buf, static_cast<uint32_t>(pid));
  uint32_t crc = Crc32(crc_buf, sizeof(crc_buf));
  crc ^= Crc32(payload, kPageSize);
  if (stored_pid != static_cast<uint32_t>(pid) || stored_crc != crc) {
    return Status::DataLoss("checksum mismatch on page " +
                            std::to_string(pid) + " of " + path_);
  }
  std::memcpy(out, payload, kPageSize);
  return Status::OK();
}

Status FileDiskManager::DoWritePage(page_id_t pid, const char* src) {
  if (pid < 0 || pid >= next_page_id_) {
    return Status::IOError("write of unallocated page " + std::to_string(pid));
  }
  ChargeLatency();
  char slot[kSlotHeaderSize + kPageSize] = {};
  char crc_buf[4];
  EncodeU32(crc_buf, static_cast<uint32_t>(pid));
  uint32_t crc = Crc32(crc_buf, sizeof(crc_buf)) ^ Crc32(src, kPageSize);
  EncodeU32(slot, crc);
  EncodeU32(slot + 4, static_cast<uint32_t>(pid));
  std::memcpy(slot + kSlotHeaderSize, src, kPageSize);
  if (!PwriteFull(fd_, slot, sizeof(slot), SlotOffset(pid))) {
    return Status::IOError("pwrite failed for page " + std::to_string(pid) +
                           ": " + std::strerror(errno));
  }
  return Status::OK();
}

Status FileDiskManager::TornWrite(page_id_t pid, const char* src,
                                  size_t valid_bytes) {
  if (pid < 0 || pid >= next_page_id_) {
    return Status::IOError("torn write of unallocated page " +
                           std::to_string(pid));
  }
  if (valid_bytes > kPageSize) valid_bytes = kPageSize;
  // Header carries the checksum of the FULL intended payload, but only the
  // first `valid_bytes` of it reach the file — the on-disk state a power
  // failure between sectors leaves behind.
  char crc_buf[4];
  EncodeU32(crc_buf, static_cast<uint32_t>(pid));
  uint32_t crc = Crc32(crc_buf, sizeof(crc_buf)) ^ Crc32(src, kPageSize);
  char header[kSlotHeaderSize] = {};
  EncodeU32(header, crc);
  EncodeU32(header + 4, static_cast<uint32_t>(pid));
  if (!PwriteFull(fd_, header, sizeof(header), SlotOffset(pid)) ||
      !PwriteFull(fd_, src, valid_bytes, SlotOffset(pid) + kSlotHeaderSize)) {
    return Status::IOError("torn write failed for page " +
                           std::to_string(pid));
  }
  // Clobber the tail with a recognisable pattern so the corruption is real
  // even if the slot previously held the same data.
  std::vector<char> junk(kPageSize - valid_bytes, '\xDE');
  if (!junk.empty() &&
      !PwriteFull(fd_, junk.data(), junk.size(),
                  SlotOffset(pid) + kSlotHeaderSize + valid_bytes)) {
    return Status::IOError("torn write failed for page " +
                           std::to_string(pid));
  }
  return Status::OK();
}

// --- FaultInjectingDiskManager -----------------------------------------------

double FaultInjectingDiskManager::NextRandom() {
  // xorshift64*: deterministic, seed-stable across platforms.
  uint64_t x = rng_state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  rng_state_ = x;
  return static_cast<double>((x * 0x2545F4914F6CDD1Dull) >> 11) /
         static_cast<double>(1ull << 53);
}

std::optional<FaultKind> FaultInjectingDiskManager::NextFault(
    std::map<uint64_t, FaultKind>* schedule, uint64_t attempt, double rate) {
  auto it = schedule->find(attempt);
  if (it != schedule->end()) {
    FaultKind kind = it->second;
    schedule->erase(it);
    return kind;
  }
  if (rate > 0 && NextRandom() < rate) return random_kind_;
  return std::nullopt;
}

Status FaultInjectingDiskManager::DoReadPage(page_id_t pid, char* out) {
  ++read_attempts_;
  auto fault = NextFault(&read_faults_, read_attempts_, read_rate_);
  if (fault.has_value()) {
    ++num_injected_;
    if (*fault == FaultKind::kTransient) {
      return Status::Unavailable("injected transient read fault (attempt " +
                                 std::to_string(read_attempts_) + ")");
    }
    return Status::IOError("injected permanent read fault (attempt " +
                           std::to_string(read_attempts_) + ")");
  }
  return inner_->ReadPage(pid, out);
}

Status FaultInjectingDiskManager::Sync() {
  ++sync_attempts_;
  auto it = sync_faults_.find(sync_attempts_);
  if (it != sync_faults_.end()) {
    FaultKind kind = it->second;
    sync_faults_.erase(it);
    ++num_injected_;
    if (kind == FaultKind::kTransient) {
      return Status::Unavailable("injected transient sync fault (attempt " +
                                 std::to_string(sync_attempts_) + ")");
    }
    // kTorn has no meaning for a barrier; treat as a hard failure. Nothing
    // written since the last successful Sync is guaranteed durable.
    return Status::IOError("injected sync fault (attempt " +
                           std::to_string(sync_attempts_) + ")");
  }
  return inner_->Sync();
}

Status FaultInjectingDiskManager::DoWritePage(page_id_t pid, const char* src) {
  ++write_attempts_;
  auto fault = NextFault(&write_faults_, write_attempts_, write_rate_);
  if (fault.has_value()) {
    ++num_injected_;
    switch (*fault) {
      case FaultKind::kTransient:
        return Status::Unavailable("injected transient write fault (attempt " +
                                   std::to_string(write_attempts_) + ")");
      case FaultKind::kPermanent:
        return Status::IOError("injected permanent write fault (attempt " +
                               std::to_string(write_attempts_) + ")");
      case FaultKind::kTorn: {
        // Half the payload reaches the device, then the write "fails".
        if (auto* file = dynamic_cast<FileDiskManager*>(inner_.get())) {
          (void)file->TornWrite(pid, src, kPageSize / 2);
        } else {
          // No checksum below us: emulate by persisting a corrupted image.
          std::vector<char> torn(src, src + kPageSize);
          std::memset(torn.data() + kPageSize / 2, '\xDE', kPageSize / 2);
          (void)inner_->WritePage(pid, torn.data());
        }
        return Status::IOError("injected torn write (attempt " +
                               std::to_string(write_attempts_) + ")");
      }
    }
  }
  return inner_->WritePage(pid, src);
}

}  // namespace recdb
