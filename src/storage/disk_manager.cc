#include "storage/disk_manager.h"

#include <chrono>
#include <cstring>

namespace recdb {

page_id_t DiskManager::AllocatePage() {
  auto buf = std::make_unique<char[]>(kPageSize);
  std::memset(buf.get(), 0, kPageSize);
  pages_.push_back(std::move(buf));
  return static_cast<page_id_t>(pages_.size() - 1);
}

Status DiskManager::ReadPage(page_id_t pid, char* out) {
  if (pid < 0 || static_cast<size_t>(pid) >= pages_.size()) {
    return Status::IOError("read of unallocated page " + std::to_string(pid));
  }
  ChargeLatency();
  std::memcpy(out, pages_[pid].get(), kPageSize);
  ++num_reads_;
  return Status::OK();
}

Status DiskManager::WritePage(page_id_t pid, const char* src) {
  if (pid < 0 || static_cast<size_t>(pid) >= pages_.size()) {
    return Status::IOError("write of unallocated page " + std::to_string(pid));
  }
  ChargeLatency();
  std::memcpy(pages_[pid].get(), src, kPageSize);
  ++num_writes_;
  return Status::OK();
}

void DiskManager::ChargeLatency() const {
  if (page_latency_ns_ == 0) return;
  auto end = std::chrono::steady_clock::now() +
             std::chrono::nanoseconds(page_latency_ns_);
  while (std::chrono::steady_clock::now() < end) {
    // busy wait: sleep granularity is too coarse for sub-microsecond charges
  }
}

}  // namespace recdb
