// TableHeap: a linked list of slotted pages storing one table's tuples.
//
// Access pattern matches the paper's operators: sequential block-at-a-time
// scans through the buffer pool, append-mostly inserts.
//
// With a LogManager attached (EnableLogging), every mutation appends a
// logical WAL record and stamps both the on-disk page_lsn (REDO idempotency
// watermark) and the in-memory Page lsn (buffer-pool WAL rule) while the
// page is still pinned, so an eviction can never write back an unstamped
// mutation. The Redo* entry points replay those records over a checkpoint
// image in LSN order.
#pragma once

#include <optional>
#include <string>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/table_page.h"
#include "types/tuple.h"

namespace recdb {

class LogManager;

/// Decoded payload of a tuple-level WAL record (kInsert/kDelete/kUpdate).
struct WalTupleRecord {
  std::string table;
  Rid rid{};
  std::vector<uint8_t> bytes;  // serialized tuple; empty for kDelete
};

/// Payload codec for tuple-level WAL records; `bytes` is null for kDelete.
std::vector<uint8_t> EncodeWalTupleRecord(const std::string& table,
                                          const Rid& rid,
                                          const std::vector<uint8_t>* bytes);
Result<WalTupleRecord> DecodeWalTupleRecord(
    const std::vector<uint8_t>& payload);

class TableHeap {
 public:
  /// Create a new heap file (allocates the first page).
  static Result<std::unique_ptr<TableHeap>> Create(BufferPool* pool);

  /// Re-attach to a heap whose pages already exist on disk (used when a
  /// file-backed database is reopened from its persisted catalog).
  static std::unique_ptr<TableHeap> Attach(BufferPool* pool,
                                           page_id_t first_page_id,
                                           page_id_t last_page_id,
                                           size_t num_tuples);

  /// Start WAL-logging mutations under `table_name` (the name REDO uses to
  /// route records back to this heap). Records are buffered; the caller
  /// owns commit timing.
  void EnableLogging(LogManager* log, std::string table_name) {
    log_ = log;
    table_name_ = std::move(table_name);
  }

  /// Insert a tuple, returning its record id.
  Result<Rid> Insert(const Tuple& tuple);

  /// Read the tuple at `rid` (`num_values` = column count of the schema).
  Result<Tuple> Get(const Rid& rid, size_t num_values) const;

  /// Delete the tuple at `rid`.
  Status Delete(const Rid& rid);

  /// Update in place when possible; otherwise delete + re-insert.
  /// Returns the (possibly new) rid.
  Result<Rid> Update(const Rid& rid, const Tuple& tuple);

  // REDO entry points: re-apply a recovered WAL record over the checkpoint
  // image. Must be called in LSN order. Page mutations are skipped when the
  // page's persisted page_lsn already covers the record, but the in-memory
  // tuple count always adjusts (catalog counts are checkpoint-time).
  Status RedoInsert(const Rid& rid, const std::vector<uint8_t>& bytes,
                    uint64_t lsn);
  Status RedoDelete(const Rid& rid, uint64_t lsn);
  Status RedoUpdate(const Rid& rid, const std::vector<uint8_t>& bytes,
                    uint64_t lsn);

  /// Clear a dangling next-page link on the tail page — left behind when a
  /// crashed run flushed the tail after chaining a fresh page whose insert
  /// never committed. Scans would otherwise walk into unformatted pages.
  Status RepairTail(bool* repaired);

  page_id_t first_page_id() const { return first_page_id_; }
  page_id_t last_page_id() const { return last_page_id_; }
  size_t num_tuples() const { return num_tuples_; }

  /// Forward iterator over live tuples, page by page. Usage:
  ///   auto it = heap.Begin(ncols);
  ///   while (true) {
  ///     auto next = it.Next();           // Result<optional<pair<Rid,Tuple>>>
  ///     if (!next.ok()) ...error...
  ///     if (!next.value()) break;        // exhausted
  ///   }
  class Iterator {
   public:
    Iterator(const TableHeap* heap, size_t num_values)
        : heap_(heap),
          num_values_(num_values),
          page_id_(heap->first_page_id_) {}

    /// Next live tuple, or nullopt at end.
    Result<std::optional<std::pair<Rid, Tuple>>> Next();

   private:
    const TableHeap* heap_;
    size_t num_values_;
    page_id_t page_id_;
    uint16_t slot_ = 0;
  };

  Iterator Begin(size_t num_values) const { return Iterator(this, num_values); }

 private:
  explicit TableHeap(BufferPool* pool) : pool_(pool) {}

  BufferPool* pool_;
  LogManager* log_ = nullptr;
  std::string table_name_;
  page_id_t first_page_id_ = kInvalidPageId;
  page_id_t last_page_id_ = kInvalidPageId;
  size_t num_tuples_ = 0;
};

}  // namespace recdb
