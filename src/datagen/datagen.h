// Synthetic dataset generators standing in for the paper's evaluation data
// (MovieLens 100K, LDOS-CoMoDa, Yelp challenge subset — see DESIGN.md's
// substitution table).
//
// Each generator reproduces the real dataset's cardinalities and gives the
// rating matrix the two properties query cost depends on: Zipf-skewed item
// popularity / user activity, and a planted low-rank preference structure so
// collaborative filtering has real signal. Yelp-style datasets additionally
// get POI locations and city polygons for the Section V case study.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "api/recdb.h"

namespace recdb::datagen {

struct DatasetSpec {
  /// Table-name prefix, e.g. "ml" -> ml_users / ml_items / ml_ratings.
  std::string prefix;
  int64_t num_users = 0;
  int64_t num_items = 0;
  int64_t num_ratings = 0;
  /// Zipf exponents for item popularity and user activity.
  double item_skew = 0.8;
  double user_skew = 0.7;
  /// Ratings are drawn on [1, 5] in 0.5 steps around a planted 2-factor
  /// preference structure.
  uint64_t seed = 42;
  /// Generate POI locations (items get a GEOMETRY point in [0,100]^2) and a
  /// <prefix>_cities table with polygonal districts.
  bool with_locations = false;

  /// The paper's three datasets (Section VI).
  static DatasetSpec MovieLens100K();
  static DatasetSpec LdosComoda();
  static DatasetSpec Yelp();

  /// Serving-scale preset for the sharded load harness: 1M users, 20K
  /// items, ~10 ratings/user. Only usable with StreamRatings — LoadDataset
  /// would materialize per-user factor arrays and giant INSERT batches.
  static DatasetSpec ServingScale();

  /// Proportionally shrunken variant (for fast unit tests): user/item
  /// counts scaled by `factor`, ratings by `factor`^2 (preserving matrix
  /// density); minimums 10/10/30.
  DatasetSpec Scaled(double factor) const;
};

struct GeneratedDataset {
  std::string users_table;
  std::string items_table;
  std::string ratings_table;
  std::string cities_table;  // empty unless with_locations
  int64_t num_ratings = 0;   // actual distinct (user, item) pairs loaded
};

/// Create the tables and load the synthetic data into `db`. Deterministic
/// for a given spec (including seed).
Result<GeneratedDataset> LoadDataset(RecDB* db, const DatasetSpec& spec);

/// One generated rating (ids are 1-based, matching LoadDataset's tables).
struct RatingRow {
  int64_t user = 0;
  int64_t item = 0;
  double rating = 0;
};

/// Streamed rating generation for serving-scale specs (millions of users):
/// emits `spec.num_ratings` planted ratings in chunks of up to `chunk_rows`
/// through `sink`, user-major (all of user u's ratings before user u+1's),
/// without materializing per-user state — user latent factors are derived
/// by hashing (spec.seed, user id), item factors are a single
/// O(num_items) precomputed table, and each user's Rng is seeded
/// independently so generation is deterministic and restartable per user.
/// Returns the sink's first error, if any.
Status StreamRatings(
    const DatasetSpec& spec, size_t chunk_rows,
    const std::function<Status(const std::vector<RatingRow>&)>& sink);

}  // namespace recdb::datagen
