#include "datagen/datagen.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_set>

#include "common/rng.h"
#include "common/shard.h"
#include "common/string_util.h"
#include "spatial/geometry.h"

namespace recdb::datagen {

DatasetSpec DatasetSpec::MovieLens100K() {
  DatasetSpec s;
  s.prefix = "ml";
  s.num_users = 943;
  s.num_items = 1682;
  s.num_ratings = 100000;
  s.seed = 101;
  return s;
}

DatasetSpec DatasetSpec::LdosComoda() {
  DatasetSpec s;
  s.prefix = "ldos";
  s.num_users = 185;
  s.num_items = 785;
  s.num_ratings = 2297;
  s.seed = 202;
  return s;
}

DatasetSpec DatasetSpec::Yelp() {
  DatasetSpec s;
  s.prefix = "yelp";
  s.num_users = 3403;
  s.num_items = 1446;
  s.num_ratings = 126747;
  s.seed = 303;
  s.with_locations = true;
  return s;
}

DatasetSpec DatasetSpec::ServingScale() {
  DatasetSpec s;
  s.prefix = "serve";
  s.num_users = 1000000;
  s.num_items = 20000;
  s.num_ratings = 10000000;
  s.seed = 404;
  return s;
}

DatasetSpec DatasetSpec::Scaled(double factor) const {
  DatasetSpec s = *this;
  s.num_users = std::max<int64_t>(10, static_cast<int64_t>(num_users * factor));
  s.num_items = std::max<int64_t>(10, static_cast<int64_t>(num_items * factor));
  // Ratings scale with factor^2: user and item counts both shrink by
  // `factor`, so keeping the same matrix *density* requires quadratic
  // scaling of the rating count.
  s.num_ratings = std::max<int64_t>(
      30, static_cast<int64_t>(num_ratings * factor * factor));
  return s;
}

namespace {

const char* kGenres[] = {"Action",  "Drama",   "Sci-Fi", "Comedy",
                         "Romance", "Horror",  "Crime",  "Suspense"};
const char* kCities[] = {"Minneapolis", "Austin", "San Diego", "Tempe",
                         "Seattle"};

/// Planted preference: each user/item carries a 2-factor latent vector;
/// rating = 3 + u·i + noise, snapped to the 1..5 half-star grid.
double PlantedRating(const std::vector<double>& uf,
                     const std::vector<double>& itf, Rng& rng) {
  double dot = uf[0] * itf[0] + uf[1] * itf[1];
  double raw = 3.0 + 1.1 * dot + rng.Gaussian(0, 0.45);
  double snapped = std::round(raw * 2.0) / 2.0;
  return std::clamp(snapped, 1.0, 5.0);
}

}  // namespace

Result<GeneratedDataset> LoadDataset(RecDB* db, const DatasetSpec& spec) {
  if (spec.num_users <= 0 || spec.num_items <= 0 || spec.num_ratings <= 0) {
    return Status::InvalidArgument("dataset spec cardinalities must be > 0");
  }
  Rng rng(spec.seed);
  GeneratedDataset out;
  out.users_table = spec.prefix + "_users";
  out.items_table = spec.prefix + "_items";
  out.ratings_table = spec.prefix + "_ratings";

  RECDB_RETURN_NOT_OK(
      db->Execute(StringFormat(
                      "CREATE TABLE %s (uid INT, name TEXT, city TEXT, age INT)",
                      out.users_table.c_str()))
          .status());
  if (spec.with_locations) {
    RECDB_RETURN_NOT_OK(
        db->Execute(StringFormat("CREATE TABLE %s (iid INT, name TEXT, "
                                 "genre TEXT, director TEXT, geom GEOMETRY)",
                                 out.items_table.c_str()))
            .status());
  } else {
    RECDB_RETURN_NOT_OK(
        db->Execute(StringFormat("CREATE TABLE %s (iid INT, name TEXT, "
                                 "genre TEXT, director TEXT)",
                                 out.items_table.c_str()))
            .status());
  }
  RECDB_RETURN_NOT_OK(
      db->Execute(StringFormat(
                      "CREATE TABLE %s (uid INT, iid INT, ratingval DOUBLE)",
                      out.ratings_table.c_str()))
          .status());

  // Latent factors drive both the rating values and mild genre clustering.
  std::vector<std::vector<double>> user_f(spec.num_users),
      item_f(spec.num_items);
  for (auto& f : user_f) f = {rng.Gaussian(0, 1), rng.Gaussian(0, 1)};
  for (auto& f : item_f) f = {rng.Gaussian(0, 1), rng.Gaussian(0, 1)};

  // Users.
  {
    std::vector<std::vector<Value>> rows;
    rows.reserve(spec.num_users);
    for (int64_t u = 0; u < spec.num_users; ++u) {
      rows.push_back({Value::Int(u + 1),
                      Value::String("user_" + std::to_string(u + 1)),
                      Value::String(kCities[u % 5]),
                      Value::Int(rng.UniformInt(18, 70))});
    }
    RECDB_RETURN_NOT_OK(db->BulkInsert(out.users_table, rows));
  }

  // Items (+ POI locations for Yelp-style datasets).
  {
    std::vector<std::vector<Value>> rows;
    rows.reserve(spec.num_items);
    for (int64_t i = 0; i < spec.num_items; ++i) {
      std::vector<Value> row = {
          Value::Int(i + 1),
          Value::String(spec.prefix + "_item_" + std::to_string(i + 1)),
          Value::String(kGenres[rng.UniformInt(0, 7)]),
          Value::String("director_" + std::to_string(i % 53))};
      if (spec.with_locations) {
        row.push_back(Value::Geometry(spatial::Geometry::MakePoint(
            rng.UniformDouble(0, 100), rng.UniformDouble(0, 100))));
      }
      rows.push_back(std::move(row));
    }
    RECDB_RETURN_NOT_OK(db->BulkInsert(out.items_table, rows));
  }

  if (spec.with_locations) {
    out.cities_table = spec.prefix + "_cities";
    RECDB_RETURN_NOT_OK(
        db->Execute(StringFormat(
                        "CREATE TABLE %s (cid INT, name TEXT, geom GEOMETRY)",
                        out.cities_table.c_str()))
            .status());
    // Four quadrant districts plus a central downtown polygon.
    std::vector<std::vector<Value>> rows = {
        {Value::Int(1), Value::String("Northwest"),
         Value::Geometry(spatial::Geometry::MakePolygon(
             {{0, 50}, {50, 50}, {50, 100}, {0, 100}}))},
        {Value::Int(2), Value::String("Northeast"),
         Value::Geometry(spatial::Geometry::MakePolygon(
             {{50, 50}, {100, 50}, {100, 100}, {50, 100}}))},
        {Value::Int(3), Value::String("Southwest"),
         Value::Geometry(spatial::Geometry::MakePolygon(
             {{0, 0}, {50, 0}, {50, 50}, {0, 50}}))},
        {Value::Int(4), Value::String("Southeast"),
         Value::Geometry(spatial::Geometry::MakePolygon(
             {{50, 0}, {100, 0}, {100, 50}, {50, 50}}))},
        {Value::Int(5), Value::String("Downtown"),
         Value::Geometry(spatial::Geometry::MakePolygon(
             {{35, 35}, {65, 35}, {65, 65}, {35, 65}}))},
    };
    RECDB_RETURN_NOT_OK(db->BulkInsert(out.cities_table, rows));
  }

  // Ratings: Zipf-skewed (user, item) draws, deduplicated, planted values.
  ZipfSampler user_sampler(spec.num_users, spec.user_skew);
  ZipfSampler item_sampler(spec.num_items, spec.item_skew);
  std::unordered_set<int64_t> seen;
  seen.reserve(spec.num_ratings * 2);
  std::vector<std::vector<Value>> rows;
  rows.reserve(4096);
  int64_t loaded = 0;
  int64_t max_attempts = spec.num_ratings * 30;
  const int64_t max_pairs = spec.num_users * spec.num_items;
  const int64_t target = std::min(spec.num_ratings, max_pairs);
  for (int64_t attempt = 0; loaded < target && attempt < max_attempts;
       ++attempt) {
    int64_t u = user_sampler.Sample(rng);
    int64_t i = item_sampler.Sample(rng);
    int64_t key = u * spec.num_items + i;
    if (!seen.insert(key).second) continue;
    double rating = PlantedRating(user_f[u], item_f[i], rng);
    rows.push_back(
        {Value::Int(u + 1), Value::Int(i + 1), Value::Double(rating)});
    ++loaded;
    if (rows.size() >= 4096) {
      RECDB_RETURN_NOT_OK(db->BulkInsert(out.ratings_table, rows));
      rows.clear();
    }
  }
  if (!rows.empty()) {
    RECDB_RETURN_NOT_OK(db->BulkInsert(out.ratings_table, rows));
  }
  out.num_ratings = loaded;
  return out;
}

Status StreamRatings(
    const DatasetSpec& spec, size_t chunk_rows,
    const std::function<Status(const std::vector<RatingRow>&)>& sink) {
  if (spec.num_users <= 0 || spec.num_items <= 0 || spec.num_ratings <= 0) {
    return Status::InvalidArgument("dataset spec cardinalities must be > 0");
  }
  if (chunk_rows == 0) chunk_rows = 4096;

  // Item factors are the only materialized table — items are the small axis
  // of a serving-scale spec. Each item's factors hash from (seed, item) so
  // they are independent of user count and generation order.
  std::vector<std::array<double, 2>> item_f(spec.num_items);
  for (int64_t i = 0; i < spec.num_items; ++i) {
    Rng ir(spec.seed ^ MixUserId(0x1157ull * 0x10001ull + i));
    item_f[i] = {ir.Gaussian(0, 1), ir.Gaussian(0, 1)};
  }
  ZipfSampler item_sampler(spec.num_items, spec.item_skew);

  const int64_t per_user = std::max<int64_t>(
      1, spec.num_ratings / std::max<int64_t>(1, spec.num_users));
  std::vector<RatingRow> chunk;
  chunk.reserve(chunk_rows);
  std::unordered_set<int64_t> seen;
  int64_t emitted = 0;
  for (int64_t u = 0; u < spec.num_users && emitted < spec.num_ratings; ++u) {
    // Per-user Rng: user u's stream is identical regardless of how many
    // users precede it, so generation is restartable and shardable.
    Rng rng(spec.seed ^ MixUserId(u + 1));
    const std::vector<double> uf = {rng.Gaussian(0, 1), rng.Gaussian(0, 1)};
    seen.clear();
    // Draw extra attempts to absorb within-user duplicate items; per-user
    // rating counts stay deterministic.
    const int64_t attempts = per_user * 3;
    int64_t taken = 0;
    for (int64_t a = 0;
         a < attempts && taken < per_user && emitted < spec.num_ratings; ++a) {
      const int64_t i = item_sampler.Sample(rng);
      if (!seen.insert(i).second) continue;
      const std::vector<double> itf = {item_f[i][0], item_f[i][1]};
      const double rating = PlantedRating(uf, itf, rng);
      chunk.push_back({u + 1, i + 1, rating});
      ++taken;
      ++emitted;
      if (chunk.size() >= chunk_rows) {
        RECDB_RETURN_NOT_OK(sink(chunk));
        chunk.clear();
      }
    }
  }
  if (!chunk.empty()) RECDB_RETURN_NOT_OK(sink(chunk));
  return Status::OK();
}

}  // namespace recdb::datagen
