// Schema: ordered list of named, typed columns.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "types/value.h"

namespace recdb {

struct Column {
  std::string name;
  TypeId type = TypeId::kNull;

  Column() = default;
  Column(std::string n, TypeId t) : name(std::move(n)), type(t) {}

  bool operator==(const Column& o) const {
    return name == o.name && type == o.type;
  }
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> cols) : cols_(std::move(cols)) {}

  size_t NumColumns() const { return cols_.size(); }
  const Column& ColumnAt(size_t i) const { return cols_[i]; }
  const std::vector<Column>& columns() const { return cols_; }

  /// Index of a column by case-insensitive name; NotFound if absent.
  Result<size_t> IndexOf(const std::string& name) const;

  /// True if a column with this name exists.
  bool Has(const std::string& name) const { return IndexOf(name).ok(); }

  /// Concatenate two schemas (join output).
  static Schema Concat(const Schema& a, const Schema& b);

  /// "name TYPE, name TYPE, ..."
  std::string ToString() const;

  bool operator==(const Schema& o) const { return cols_ == o.cols_; }

 private:
  std::vector<Column> cols_;
};

}  // namespace recdb
