#include "types/tuple.h"

#include <cstring>

namespace recdb {

namespace {

template <typename T>
void PutRaw(std::vector<uint8_t>* out, T v) {
  size_t off = out->size();
  out->resize(off + sizeof(T));
  std::memcpy(out->data() + off, &v, sizeof(T));
}

template <typename T>
bool GetRaw(const uint8_t* data, size_t len, size_t* pos, T* v) {
  if (*pos + sizeof(T) > len) return false;
  std::memcpy(v, data + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

void Tuple::SerializeTo(std::vector<uint8_t>* out) const {
  for (const auto& v : values_) {
    out->push_back(static_cast<uint8_t>(v.type()));
    switch (v.type()) {
      case TypeId::kNull:
        break;
      case TypeId::kInt64:
        PutRaw(out, v.AsInt());
        break;
      case TypeId::kDouble:
        PutRaw(out, v.AsDouble());
        break;
      case TypeId::kString: {
        const std::string& s = v.AsString();
        PutRaw(out, static_cast<uint32_t>(s.size()));
        out->insert(out->end(), s.begin(), s.end());
        break;
      }
      case TypeId::kGeometry: {
        const auto& g = v.AsGeometry();
        out->push_back(static_cast<uint8_t>(g.type()));
        PutRaw(out, static_cast<uint32_t>(g.ring().size()));
        for (const auto& p : g.ring()) {
          PutRaw(out, p.x);
          PutRaw(out, p.y);
        }
        break;
      }
    }
  }
}

size_t Tuple::SerializedSize() const {
  size_t sz = 0;
  for (const auto& v : values_) {
    sz += 1;
    switch (v.type()) {
      case TypeId::kNull:
        break;
      case TypeId::kInt64:
      case TypeId::kDouble:
        sz += 8;
        break;
      case TypeId::kString:
        sz += 4 + v.AsString().size();
        break;
      case TypeId::kGeometry:
        sz += 1 + 4 + 16 * v.AsGeometry().ring().size();
        break;
    }
  }
  return sz;
}

Result<Tuple> Tuple::DeserializeFrom(const uint8_t* data, size_t len,
                                     size_t num_values) {
  std::vector<Value> values;
  values.reserve(num_values);
  size_t pos = 0;
  for (size_t i = 0; i < num_values; ++i) {
    if (pos >= len) return Status::Internal("tuple deserialization underflow");
    TypeId t = static_cast<TypeId>(data[pos++]);
    switch (t) {
      case TypeId::kNull:
        values.push_back(Value::Null());
        break;
      case TypeId::kInt64: {
        int64_t v;
        if (!GetRaw(data, len, &pos, &v))
          return Status::Internal("tuple int underflow");
        values.push_back(Value::Int(v));
        break;
      }
      case TypeId::kDouble: {
        double v;
        if (!GetRaw(data, len, &pos, &v))
          return Status::Internal("tuple double underflow");
        values.push_back(Value::Double(v));
        break;
      }
      case TypeId::kString: {
        uint32_t n;
        if (!GetRaw(data, len, &pos, &n) || pos + n > len)
          return Status::Internal("tuple string underflow");
        values.push_back(Value::String(
            std::string(reinterpret_cast<const char*>(data + pos), n)));
        pos += n;
        break;
      }
      case TypeId::kGeometry: {
        if (pos >= len) return Status::Internal("tuple geom underflow");
        auto gt = static_cast<spatial::GeometryType>(data[pos++]);
        uint32_t n;
        if (!GetRaw(data, len, &pos, &n))
          return Status::Internal("tuple geom count underflow");
        std::vector<spatial::Point> pts(n);
        for (uint32_t k = 0; k < n; ++k) {
          if (!GetRaw(data, len, &pos, &pts[k].x) ||
              !GetRaw(data, len, &pos, &pts[k].y))
            return Status::Internal("tuple geom point underflow");
        }
        if (gt == spatial::GeometryType::kPoint) {
          if (n != 1) return Status::Internal("point with !=1 coords");
          values.push_back(
              Value::Geometry(spatial::Geometry::MakePoint(pts[0].x, pts[0].y)));
        } else {
          values.push_back(
              Value::Geometry(spatial::Geometry::MakePolygon(std::move(pts))));
        }
        break;
      }
      default:
        return Status::Internal("bad type byte in tuple");
    }
  }
  return Tuple(std::move(values));
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace recdb
