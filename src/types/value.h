// Value: the engine's runtime scalar.
//
// recdb supports NULL, 64-bit integers, doubles, variable-length strings and
// geometry (for the PostGIS-style case study). Integers and doubles compare
// and hash cross-type so that `iid IN (1,2)` works regardless of storage type.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <variant>

#include "common/status.h"
#include "spatial/geometry.h"

namespace recdb {

enum class TypeId : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
  kGeometry = 4,
};

/// Human-readable type name ("INT", "DOUBLE", ...).
const char* TypeIdToString(TypeId t);

/// Parse a SQL type name (case-insensitive): INT/INTEGER/BIGINT, DOUBLE/
/// FLOAT/REAL, TEXT/VARCHAR/STRING, GEOMETRY.
Result<TypeId> TypeIdFromName(const std::string& name);

class Value {
 public:
  /// NULL of unknown type.
  Value() : type_(TypeId::kNull), var_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(TypeId::kInt64, v); }
  static Value Double(double v) { return Value(TypeId::kDouble, v); }
  static Value String(std::string v) {
    return Value(TypeId::kString, std::move(v));
  }
  static Value Geometry(spatial::Geometry g) {
    return Value(TypeId::kGeometry,
                 std::make_shared<spatial::Geometry>(std::move(g)));
  }
  static Value Bool(bool b) { return Int(b ? 1 : 0); }

  TypeId type() const { return type_; }
  bool is_null() const { return type_ == TypeId::kNull; }

  int64_t AsInt() const {
    RECDB_DCHECK(type_ == TypeId::kInt64);
    return std::get<int64_t>(var_);
  }
  double AsDouble() const {
    RECDB_DCHECK(type_ == TypeId::kDouble);
    return std::get<double>(var_);
  }
  const std::string& AsString() const {
    RECDB_DCHECK(type_ == TypeId::kString);
    return std::get<std::string>(var_);
  }
  const spatial::Geometry& AsGeometry() const {
    RECDB_DCHECK(type_ == TypeId::kGeometry);
    return *std::get<std::shared_ptr<spatial::Geometry>>(var_);
  }

  /// Numeric view: int widened to double. DCHECKs on non-numeric.
  double AsNumeric() const {
    if (type_ == TypeId::kInt64) return static_cast<double>(AsInt());
    return AsDouble();
  }
  bool is_numeric() const {
    return type_ == TypeId::kInt64 || type_ == TypeId::kDouble;
  }

  /// SQL truthiness: non-zero numeric. NULL and non-numerics are false.
  bool IsTruthy() const {
    if (type_ == TypeId::kInt64) return AsInt() != 0;
    if (type_ == TypeId::kDouble) return AsDouble() != 0.0;
    return false;
  }

  /// Three-valued SQL equality collapsed to bool: NULL != anything.
  bool SqlEquals(const Value& o) const;

  /// Total order for sorting: NULL first, then by type group; numerics
  /// compare cross-type by value. Returns <0, 0, >0.
  int Compare(const Value& o) const;

  /// Structural equality (used by tests and hashing); numerics cross-type.
  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator!=(const Value& o) const { return !(*this == o); }

  /// Hash consistent with operator== (numerics hash by double value).
  size_t Hash() const;

  /// Display form; strings unquoted, NULL as "NULL".
  std::string ToString() const;

  /// Cast to a column type on insert. Int<->double casts allowed; string to
  /// geometry parses WKT; anything else mismatching errors.
  Result<Value> CastTo(TypeId target) const;

 private:
  template <typename T>
  Value(TypeId t, T v) : type_(t), var_(std::move(v)) {}

  TypeId type_;
  std::variant<std::monostate, int64_t, double, std::string,
               std::shared_ptr<spatial::Geometry>>
      var_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace recdb
