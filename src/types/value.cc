#include "types/value.h"

#include <cmath>
#include <sstream>

#include "common/string_util.h"

namespace recdb {

const char* TypeIdToString(TypeId t) {
  switch (t) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kInt64:
      return "INT";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kString:
      return "TEXT";
    case TypeId::kGeometry:
      return "GEOMETRY";
  }
  return "?";
}

Result<TypeId> TypeIdFromName(const std::string& name) {
  std::string n = ToUpper(name);
  if (n == "INT" || n == "INTEGER" || n == "BIGINT") return TypeId::kInt64;
  if (n == "DOUBLE" || n == "FLOAT" || n == "REAL") return TypeId::kDouble;
  if (n == "TEXT" || n == "VARCHAR" || n == "STRING") return TypeId::kString;
  if (n == "GEOMETRY" || n == "GEOM") return TypeId::kGeometry;
  return Status::ParseError("unknown type name: " + name);
}

bool Value::SqlEquals(const Value& o) const {
  if (is_null() || o.is_null()) return false;
  return Compare(o) == 0;
}

namespace {
int TypeGroup(TypeId t) {
  switch (t) {
    case TypeId::kNull:
      return 0;
    case TypeId::kInt64:
    case TypeId::kDouble:
      return 1;
    case TypeId::kString:
      return 2;
    case TypeId::kGeometry:
      return 3;
  }
  return 4;
}
}  // namespace

int Value::Compare(const Value& o) const {
  int ga = TypeGroup(type_), gb = TypeGroup(o.type_);
  if (ga != gb) return ga < gb ? -1 : 1;
  switch (ga) {
    case 0:
      return 0;  // NULL == NULL for ordering purposes
    case 1: {
      // Exact comparison when both are ints avoids double rounding.
      if (type_ == TypeId::kInt64 && o.type_ == TypeId::kInt64) {
        int64_t a = AsInt(), b = o.AsInt();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      double a = AsNumeric(), b = o.AsNumeric();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case 2: {
      int c = AsString().compare(o.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default: {
      // Geometries order by their textual form (stable, rarely used).
      std::string a = AsGeometry().ToString(), b = o.AsGeometry().ToString();
      int c = a.compare(b);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
}

size_t Value::Hash() const {
  switch (type_) {
    case TypeId::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case TypeId::kInt64:
      return std::hash<double>()(static_cast<double>(AsInt()));
    case TypeId::kDouble:
      return std::hash<double>()(AsDouble());
    case TypeId::kString:
      return std::hash<std::string>()(AsString());
    case TypeId::kGeometry:
      return std::hash<std::string>()(AsGeometry().ToString());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kInt64:
      return std::to_string(AsInt());
    case TypeId::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case TypeId::kString:
      return AsString();
    case TypeId::kGeometry:
      return AsGeometry().ToString();
  }
  return "?";
}

Result<Value> Value::CastTo(TypeId target) const {
  if (is_null()) return Null();
  if (type_ == target) return *this;
  switch (target) {
    case TypeId::kInt64:
      if (type_ == TypeId::kDouble)
        return Int(static_cast<int64_t>(std::llround(AsDouble())));
      break;
    case TypeId::kDouble:
      if (type_ == TypeId::kInt64)
        return Double(static_cast<double>(AsInt()));
      break;
    case TypeId::kGeometry:
      if (type_ == TypeId::kString) {
        RECDB_ASSIGN_OR_RETURN(auto g,
                               spatial::Geometry::FromString(AsString()));
        return Geometry(std::move(g));
      }
      break;
    case TypeId::kString:
      return String(ToString());
    default:
      break;
  }
  return Status::InvalidArgument(StringFormat(
      "cannot cast %s to %s", TypeIdToString(type_), TypeIdToString(target)));
}

}  // namespace recdb
