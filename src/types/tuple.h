// Tuple: a row of Values, with byte (de)serialization for slotted pages.
//
// Wire format, per column: 1 type byte, then
//   kNull     -> nothing
//   kInt64    -> 8 bytes little-endian
//   kDouble   -> 8 bytes IEEE-754
//   kString   -> u32 length + bytes
//   kGeometry -> u8 geom type + u32 point count + 16 bytes per point
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/schema.h"
#include "types/value.h"

namespace recdb {

class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t NumValues() const { return values_.size(); }
  const Value& At(size_t i) const {
    RECDB_DCHECK(i < values_.size());
    return values_[i];
  }
  std::vector<Value>& values() { return values_; }
  const std::vector<Value>& values() const { return values_; }

  /// Append all values of another tuple (join concatenation).
  void Append(const Tuple& o) {
    values_.insert(values_.end(), o.values_.begin(), o.values_.end());
  }

  /// Serialize to bytes; appended to `out`.
  void SerializeTo(std::vector<uint8_t>* out) const;

  /// Deserialize `num_values` values from a byte span.
  static Result<Tuple> DeserializeFrom(const uint8_t* data, size_t len,
                                       size_t num_values);

  /// Serialized size in bytes.
  size_t SerializedSize() const;

  /// "(v1, v2, ...)"
  std::string ToString() const;

  bool operator==(const Tuple& o) const { return values_ == o.values_; }

 private:
  std::vector<Value> values_;
};

}  // namespace recdb
