#include "types/schema.h"

#include "common/string_util.h"

namespace recdb {

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (EqualsIgnoreCase(cols_[i].name, name)) return i;
  }
  return Status::NotFound("no column named " + name);
}

Schema Schema::Concat(const Schema& a, const Schema& b) {
  std::vector<Column> cols = a.columns();
  cols.insert(cols.end(), b.columns().begin(), b.columns().end());
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(cols_.size());
  for (const auto& c : cols_) {
    parts.push_back(c.name + " " + TypeIdToString(c.type));
  }
  return Join(parts, ", ");
}

}  // namespace recdb
