// MetricsRegistry: lock-cheap process-wide engine telemetry.
//
// Three metric kinds, all declared in obs/metric_names.h:
//   counters   — monotonic uint64 event counts (relaxed atomic adds)
//   gauges     — instantaneous int64 values (relaxed atomic stores/adds)
//   histograms — fixed-bucket latency distributions in microseconds
//                (1-2-5 series, upper-inclusive bounds, + overflow bucket)
//
// Update paths are wait-free: one relaxed atomic RMW per counter bump, two
// per histogram observation (bucket + sum) plus a count. There is no
// per-metric allocation, no lock, and no hashing — metrics are addressed by
// enum index into fixed arrays. Snapshots read the atomics with relaxed
// loads; values observed concurrently with updates are each individually
// consistent but not a cross-metric atomic cut, which is fine for telemetry.
//
// Compiling with -DRECDB_NO_METRICS turns every update into a no-op with the
// storage kept, so read paths still link; bench_kernels uses this to ablate
// collection overhead (acceptance: <= 2%).
//
// The registry is process-global (`MetricsRegistry::Global()`), matching the
// process-global TaskScheduler and the one-RecDB-per-process usage of the
// shell and benches. Tests that assert on absolute values should either
// ResetForTest() first or assert on deltas.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metric_names.h"

namespace recdb::obs {

enum class Counter : size_t {
#define X(id, name, unit, help) id,
  RECDB_COUNTER_METRICS(X)
#undef X
      kCount
};

enum class Gauge : size_t {
#define X(id, name, unit, help) id,
  RECDB_GAUGE_METRICS(X)
#undef X
      kCount
};

enum class Histogram : size_t {
#define X(id, name, unit, help) id,
  RECDB_HISTOGRAM_METRICS(X)
#undef X
      kCount
};

constexpr size_t kNumCounters = static_cast<size_t>(Counter::kCount);
constexpr size_t kNumGauges = static_cast<size_t>(Gauge::kCount);
constexpr size_t kNumHistograms = static_cast<size_t>(Histogram::kCount);

/// Upper-inclusive bucket bounds in microseconds (1-2-5 series, 1us .. 5s);
/// one extra overflow bucket catches everything above the last bound.
inline constexpr uint64_t kHistogramBoundsUs[] = {
    1,      2,      5,      10,      20,      50,      100,
    200,    500,    1000,   2000,    5000,    10000,   20000,
    50000,  100000, 200000, 500000,  1000000, 2000000, 5000000};
constexpr size_t kNumHistogramBounds =
    sizeof(kHistogramBoundsUs) / sizeof(kHistogramBoundsUs[0]);
constexpr size_t kNumHistogramBuckets = kNumHistogramBounds + 1;

const char* CounterName(Counter c);
const char* CounterUnit(Counter c);
const char* CounterHelp(Counter c);
const char* GaugeName(Gauge g);
const char* GaugeUnit(Gauge g);
const char* GaugeHelp(Gauge g);
const char* HistogramName(Histogram h);
const char* HistogramUnit(Histogram h);
const char* HistogramHelp(Histogram h);

struct HistogramSnapshot {
  const char* name;
  uint64_t count;
  uint64_t sum_us;
  uint64_t buckets[kNumHistogramBuckets];
  /// Linear-interpolated quantile in microseconds (q in [0,1]); 0 when empty.
  double Quantile(double q) const;
};

/// A point-in-time copy of every metric, safe to format without touching the
/// live atomics again.
struct MetricsSnapshot {
  uint64_t counters[kNumCounters];
  int64_t gauges[kNumGauges];
  HistogramSnapshot histograms[kNumHistograms];
};

class MetricsRegistry {
 public:
  /// The process-wide registry every subsystem reports into.
  static MetricsRegistry& Global();

#ifdef RECDB_NO_METRICS
  void Add(Counter, uint64_t = 1) {}
  void GaugeSet(Gauge, int64_t) {}
  void GaugeAdd(Gauge, int64_t) {}
  void Observe(Histogram, uint64_t) {}
#else
  void Add(Counter c, uint64_t delta = 1) {
    counters_[static_cast<size_t>(c)].fetch_add(delta,
                                                std::memory_order_relaxed);
  }
  void GaugeSet(Gauge g, int64_t value) {
    gauges_[static_cast<size_t>(g)].store(value, std::memory_order_relaxed);
  }
  void GaugeAdd(Gauge g, int64_t delta) {
    gauges_[static_cast<size_t>(g)].fetch_add(delta,
                                              std::memory_order_relaxed);
  }
  void Observe(Histogram h, uint64_t value_us) {
    Hist& hist = hists_[static_cast<size_t>(h)];
    hist.buckets[BucketIndex(value_us)].fetch_add(1,
                                                  std::memory_order_relaxed);
    hist.count.fetch_add(1, std::memory_order_relaxed);
    hist.sum_us.fetch_add(value_us, std::memory_order_relaxed);
  }
#endif

  MetricsSnapshot Snapshot() const;
  /// Aligned text table grouped by kind — the shell's `\metrics` body.
  /// With only_nonzero, rows whose value (or count) is zero are omitted.
  std::string ToTable(bool only_nonzero = false) const;
  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum_us, p50_us, p99_us, buckets}}, plus a
  /// top-level "histogram_bounds_us" array shared by all histograms.
  std::string ToJson() const;
  /// Zeroes everything; only for tests (races with concurrent updaters).
  void ResetForTest();

  static size_t BucketIndex(uint64_t value_us) {
    size_t i = 0;
    while (i < kNumHistogramBounds && value_us > kHistogramBoundsUs[i]) ++i;
    return i;
  }

 private:
  struct Hist {
    std::atomic<uint64_t> buckets[kNumHistogramBuckets];
    std::atomic<uint64_t> count;
    std::atomic<uint64_t> sum_us;
  };

  std::atomic<uint64_t> counters_[kNumCounters] = {};
  std::atomic<int64_t> gauges_[kNumGauges] = {};
  Hist hists_[kNumHistograms] = {};
};

// Free-function shorthands used at instrumentation sites.
inline void Count(Counter c, uint64_t delta = 1) {
  MetricsRegistry::Global().Add(c, delta);
}
inline void SetGauge(Gauge g, int64_t value) {
  MetricsRegistry::Global().GaugeSet(g, value);
}
inline void AddGauge(Gauge g, int64_t delta) {
  MetricsRegistry::Global().GaugeAdd(g, delta);
}
inline void ObserveUs(Histogram h, uint64_t value_us) {
  MetricsRegistry::Global().Observe(h, value_us);
}

}  // namespace recdb::obs
