// Single source of truth for every engine metric name.
//
// Each metric is declared exactly once in one of the X-macro tables below and
// expanded into (a) the Counter/Gauge/Histogram enums in obs/metrics.h and
// (b) the name/unit/help arrays used by snapshots, `\metrics`, and
// MetricsJson(). docs/OPERATIONS.md documents every name listed here;
// tools/docs_lint.py cross-checks the two files and CI fails on drift, so a
// metric added (or renamed) here must be documented in the same change.
//
// Naming convention: "<subsystem>.<what>", lower_snake within components.
// Counters are monotonic over the process lifetime; gauges are last-writer
// instantaneous values; histograms record latency in microseconds.
#pragma once

// X(enum_id, "name", "unit", "help")
#define RECDB_COUNTER_METRICS(X)                                              \
  X(kBufferPoolHits, "bufferpool.hits", "pages",                              \
    "Fetch() served from a resident frame")                                   \
  X(kBufferPoolMisses, "bufferpool.misses", "pages",                          \
    "Fetch() that had to read the page from disk")                            \
  X(kBufferPoolEvictions, "bufferpool.evictions", "pages",                    \
    "LRU victim frames reclaimed to make room")                               \
  X(kBufferPoolFlushes, "bufferpool.flushes", "pages",                        \
    "dirty pages written back to the disk manager")                           \
  X(kDiskReads, "disk.reads", "pages", "page reads issued to the disk layer") \
  X(kDiskWrites, "disk.writes", "pages",                                      \
    "page writes issued to the disk layer")                                   \
  X(kDiskReadFailures, "disk.read_failures", "ops",                           \
    "reads that failed after retry was exhausted")                            \
  X(kDiskWriteFailures, "disk.write_failures", "ops",                         \
    "writes that failed after retry was exhausted")                           \
  X(kDiskRetries, "disk.retries", "ops",                                      \
    "transient-fault retries attempted by RunWithRetry")                      \
  X(kDiskChecksumFailures, "disk.checksum_failures", "pages",                 \
    "page reads rejected by the CRC32 checksum")                              \
  X(kRecIndexPuts, "recindex.puts", "entries",                                \
    "(user,item,score) entries inserted/overwritten in RecScoreIndex")        \
  X(kRecIndexErases, "recindex.erases", "entries",                            \
    "entries removed from RecScoreIndex (incl. user erases)")                 \
  X(kRecIndexUserHits, "recindex.user_hits", "lookups",                       \
    "IndexRecommend found the query user materialized in the index")          \
  X(kRecIndexUserMisses, "recindex.user_misses", "lookups",                   \
    "IndexRecommend fell back to the model for an un-materialized user")      \
  X(kCacheRuns, "cache.runs", "runs",                                         \
    "CacheManager::Run maintenance sweeps executed")                          \
  X(kCacheAdmissions, "cache.admissions", "users",                            \
    "users admitted (materialized) by a maintenance run")                     \
  X(kCacheEvictions, "cache.evictions", "users",                              \
    "users evicted from the index by a maintenance run")                      \
  X(kCacheHotnessCrossings, "cache.hotness_crossings", "users",              \
    "hotness-threshold crossings observed (either direction)")                \
  X(kCacheQueriesRecorded, "cache.queries_recorded", "events",                \
    "RECOMMEND demand events recorded via RecordQuery")                       \
  X(kCacheUpdatesRecorded, "cache.updates_recorded", "events",                \
    "rating-update events recorded via RecordUpdate")                         \
  X(kSchedulerLoops, "scheduler.loops", "loops",                              \
    "ParallelFor invocations dispatched to the worker pool")                  \
  X(kSchedulerTasksSpawned, "scheduler.tasks_spawned", "morsels",             \
    "morsels claimed and run by workers")                                     \
  X(kSchedulerWorkerBusyUs, "scheduler.worker_busy_us", "us",                 \
    "cumulative per-worker busy time across all loops")                       \
  X(kModelBuilds, "model.builds", "builds",                                   \
    "full model (re)builds via Recommender::Build")                           \
  X(kModelPredictCalls, "model.predict_calls", "predictions",                 \
    "individual (user,item) scores produced by PredictBatch")                 \
  X(kModelPredictBatches, "model.predict_batches", "batches",                 \
    "PredictBatch invocations (batch-of-one Predict included)")               \
  X(kPlannerRuleMergeFilters, "planner.rule_merge_filters", "hits",           \
    "MergeFilters rewrite applications")                                      \
  X(kPlannerRuleFilterPushdown, "planner.rule_filter_pushdown", "hits",       \
    "PushFilterThroughJoin rewrite applications")                             \
  X(kPlannerRuleFilterRecommend, "planner.rule_filter_recommend", "hits",     \
    "PushFilterIntoRecommend rewrite applications")                           \
  X(kPlannerRuleHashJoin, "planner.rule_hash_join", "hits",                   \
    "NljToHashJoin rewrite applications")                                     \
  X(kPlannerRuleJoinRecommend, "planner.rule_join_recommend", "hits",         \
    "JoinToJoinRecommend rewrite applications")                               \
  X(kPlannerRuleIndexRecommend, "planner.rule_index_recommend", "hits",       \
    "TopNToIndexRecommend rewrite applications")                              \
  X(kPlannerCostFlips, "planner.cost_flips", "flips",                         \
    "phase-2 cost pass decisions that undid/declined a phase-1 rewrite")      \
  X(kQueryStatements, "query.statements", "statements",                       \
    "statements executed through RecDB::Execute")                             \
  X(kQuerySelects, "query.selects", "queries",                                \
    "SELECT (incl. RECOMMEND) queries executed")                              \
  X(kQueryRowsEmitted, "query.rows_emitted", "rows",                          \
    "result rows returned to clients")                                        \
  X(kExecTuplesScanned, "exec.tuples_scanned", "tuples",                      \
    "tuples produced by table scans (promoted from ExecStats)")               \
  X(kExecPredictions, "exec.predictions", "predictions",                      \
    "candidate scores computed on the query path (promoted from ExecStats)")  \
  X(kExecJoinProbes, "exec.join_probes", "tuples",                            \
    "outer tuples probed by join operators (promoted from ExecStats)")        \
  X(kWalAppends, "wal.appends", "records",                                    \
    "log records buffered via LogManager::Append")                            \
  X(kWalBytesAppended, "wal.bytes_appended", "bytes",                         \
    "framed log bytes buffered (len+crc header included)")                    \
  X(kWalCommits, "wal.commits", "commits",                                    \
    "Commit/EnsureDurable calls that reached durability")                     \
  X(kWalFsyncs, "wal.fsyncs", "syncs",                                        \
    "group-commit flush batches (one device Sync each)")                      \
  X(kWalRecordsReplayed, "wal.records_replayed", "records",                   \
    "log records REDO-applied by RecDB::Open recovery")                       \
  X(kWalResets, "wal.resets", "resets",                                       \
    "checkpoint truncations (epoch bumps) via LogManager::Reset")             \
  X(kSessionsOpened, "session.opened", "sessions",                            \
    "Session objects handed out by RecDB::CreateSession")                     \
  X(kSessionsClosed, "session.closed", "sessions",                            \
    "Session objects destroyed")                                              \
  X(kSessionStatements, "session.statements", "statements",                   \
    "statements executed through a Session handle")                           \
  X(kIngestDeltaAdds, "ingest.delta_adds", "ops",                             \
    "new (user,item) pairs landed in a frozen matrix's delta overlay")        \
  X(kIngestDeltaOverwrites, "ingest.delta_overwrites", "ops",                 \
    "value-changing overwrites landed in the delta overlay")                  \
  X(kIngestDeltaRemoves, "ingest.delta_removes", "ops",                       \
    "removals (tombstones) landed in the delta overlay")                      \
  X(kIngestDeltaRowHits, "ingest.delta_row_hits", "rows",                     \
    "CSR row lookups resolved from a delta side row")                         \
  X(kIngestDeltaRowMisses, "ingest.delta_row_misses", "rows",                 \
    "CSR row lookups that fell through the overlay to the frozen base")       \
  X(kIngestRowUpdates, "ingest.incremental_row_updates", "rows",              \
    "neighborhood rows recomputed by incremental CF maintenance")             \
  X(kIngestSvdFoldIns, "ingest.svd_fold_ins", "rows",                         \
    "factor rows folded in for users/items new since the last train")         \
  X(kIngestRefreshes, "ingest.refreshes", "refreshes",                        \
    "delta re-freeze/merge cycles committed (incremental maintenance)")       \
  X(kIngestRefreshConflicts, "ingest.refresh_conflicts", "conflicts",         \
    "re-freeze commits aborted because the matrix version moved")             \
  X(kIngestRefreshesScheduled, "ingest.refreshes_scheduled", "jobs",          \
    "background re-freeze jobs submitted to the TaskScheduler")               \
  X(kIngestCsrBuilds, "ingest.csr_builds", "builds",                          \
    "flat-CSR construction passes (freeze, re-freeze, merged rebuild)")       \
  X(kIngestIndexInvalidations, "ingest.index_invalidations", "entries",       \
    "RecScoreIndex entries evicted because a delta op made them stale")       \
  X(kIngestBatches, "ingest.batches", "batches",                              \
    "multi-row statements applied through the batched ingest path")           \
  X(kIngestBatchOps, "ingest.batch_ops", "ops",                               \
    "rating mutations carried by batched statements (effective ops)")         \
  X(kIngestFullRebuilds, "ingest.full_rebuilds", "rebuilds",                  \
    "refresh commits that retrained a model with no incremental form")        \
  X(kPruneTopkQueries, "prune.topk_queries", "users",                         \
    "per-user Top-N loops answered by the pruned (threshold) path")           \
  X(kPruneCandidatesGenerated, "prune.candidates_generated", "items",         \
    "candidate items produced by inverted-postings generation")               \
  X(kPruneBlocksSkipped, "prune.blocks_skipped", "blocks",                    \
    "bound-table blocks skipped because their bound could not beat k-th")     \
  X(kPruneItemsPruned, "prune.items_pruned", "items",                         \
    "items never scored thanks to block skips and early termination")         \
  X(kPrunePlanChosen, "prune.plan_chosen", "plans",                           \
    "cost-pass decisions that selected a pruned Top-N plan")                  \
  X(kPrunePlanDeclined, "prune.plan_declined", "plans",                       \
    "cost-pass decisions that kept the exact path despite eligibility")       \
  X(kPruneIndexBuilds, "prune.index_builds", "builds",                        \
    "CandidateIndex lowerings (initial build and re-freeze rebuilds)")        \
  X(kServingQueries, "serving.queries", "statements",                         \
    "statements executed through the ShardedRecDB router")                    \
  X(kServingScatterQueries, "serving.scatter_queries", "queries",             \
    "SELECTs fanned out to more than one engine shard")                       \
  X(kServingSingleShardQueries, "serving.single_shard_queries", "queries",    \
    "SELECTs routed to exactly one shard (owner-targeted or shard 0)")        \
  X(kServingFanoutLegs, "serving.fanout_legs", "legs",                        \
    "per-shard scatter legs executed across all router queries")              \
  X(kServingRowsMerged, "serving.rows_merged", "rows",                        \
    "per-shard result rows consumed by the scatter-gather merge")             \
  X(kServingRowsEmitted, "serving.rows_emitted", "rows",                      \
    "merged rows returned to router clients")                                 \
  X(kServingDmlBroadcasts, "serving.dml_broadcasts", "statements",            \
    "DML/DDL statements broadcast to every shard by the router")              \
  X(kServingDmlRowsRouted, "serving.dml_rows_routed", "rows",                 \
    "partitioned-table rows landed in their owning shard's heap")             \
  X(kServingDmlRowsFiltered, "serving.dml_rows_filtered", "rows",             \
    "broadcast rows skipped by a shard's ownership filter (model-feed only)") \
  X(kServingFeedOps, "serving.feed_ops", "ops",                               \
    "cross-shard rating ops applied through ApplyRatingFeed")

#define RECDB_GAUGE_METRICS(X)                                                \
  X(kBufferPoolResidentPages, "bufferpool.resident_pages", "pages",           \
    "frames currently holding a page")                                        \
  X(kSchedulerThreads, "scheduler.threads", "threads",                        \
    "worker threads in the global TaskScheduler")                             \
  X(kSchedulerQueueDepth, "scheduler.queue_depth", "morsels",                 \
    "morsels still unclaimed in the most recent loop")                        \
  X(kRecIndexEntries, "recindex.entries", "entries",                          \
    "(user,item) pairs currently materialized in RecScoreIndex")              \
  X(kRecIndexUsers, "recindex.users", "users",                                \
    "distinct users currently materialized in RecScoreIndex")                 \
  X(kWalDurableLsn, "wal.durable_lsn", "lsn",                                 \
    "highest LSN known durable on the log device")                            \
  X(kSessionsActive, "session.active", "sessions",                            \
    "Session handles currently alive")                                        \
  X(kIngestDeltaPending, "ingest.delta_pending", "ops",                       \
    "delta ops accumulated across recommenders, not yet re-frozen")           \
  X(kServingShards, "serving.shards", "shards",                               \
    "engine shards owned by the ShardedRecDB router")                         \
  X(kServingMergeDepth, "serving.merge_depth", "rows",                        \
    "deepest per-shard stream consumed by the most recent merge")             \
  X(kServingShardSkewPct, "serving.shard_skew_pct", "percent",                \
    "(max-mean)/mean routed-row imbalance across shards, in percent")

#define RECDB_HISTOGRAM_METRICS(X)                                            \
  X(kQueryLatencyUs, "query.latency_us", "us",                                \
    "end-to-end SELECT latency (plan + execute)")                             \
  X(kModelTrainUs, "model.train_us", "us",                                    \
    "Recommender::Build wall-clock per build")                                \
  X(kModelNeighborhoodUs, "model.neighborhood_us", "us",                      \
    "BuildNeighborhoods wall-clock per similarity build")                     \
  X(kCacheRunUs, "cache.run_us", "us",                                        \
    "CacheManager::Run wall-clock per maintenance sweep")                     \
  X(kCacheMaterializeUs, "cache.materialize_us", "us",                        \
    "MaterializeUser wall-clock per admitted user")                           \
  X(kWalCommitUs, "wal.commit_us", "us",                                      \
    "Commit wall-clock per caller (incl. group-commit waits)")                \
  X(kIngestRefreshUs, "ingest.refresh_us", "us",                              \
    "re-freeze preparation (merged CSR + model row updates) per cycle")       \
  X(kIngestSwapUs, "ingest.swap_us", "us",                                    \
    "re-freeze commit/swap under the writer lock per cycle")                  \
  X(kPruneIndexBuildUs, "prune.index_build_us", "us",                         \
    "CandidateIndex postings lowering wall-clock per build")                  \
  X(kPruneGenUs, "prune.gen_us", "us",                                        \
    "candidate generation wall-clock per pruned Top-N user")                  \
  X(kServingQueryUs, "serving.query_us", "us",                                \
    "end-to-end router statement latency (route + scatter + merge)")          \
  X(kServingScatterUs, "serving.scatter_us", "us",                            \
    "scatter-phase wall-clock per fanned-out SELECT (slowest leg)")           \
  X(kServingMergeUs, "serving.merge_us", "us",                                \
    "merge-phase wall-clock per fanned-out SELECT")
