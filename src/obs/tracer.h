// Per-query tracer: records a span tree (parse -> plan -> execute, with one
// span per executor node) when `SET trace = on` is active.
//
// Spans are explicit begin/end pairs over a monotonic clock and nest via a
// stack, so the tree mirrors call structure. Executor spans are not opened
// per Next() call — that would allocate on the hot path; instead the
// Executor::Next wrapper accumulates per-node inclusive time into the tracer
// (RecordNode), and AttachPlan() materializes one span per plan node under
// the currently open span after the query drains. Durations on executor
// spans are therefore *inclusive*: a parent operator's time contains its
// children's, exactly like the call stack it mirrors.
//
// A Tracer is owned by one query execution on one thread (morsel workers run
// inside an operator's Next, so only the coordinating thread touches the
// tracer); it is not thread-safe and needs no atomics. When tracing is off
// no Tracer exists and ExecContext::tracer is null — the Next wrapper takes
// the untimed branch and allocates nothing.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace recdb {
struct PlanNode;
}  // namespace recdb

namespace recdb::obs {

class Tracer {
 public:
  /// Starts the root span immediately.
  explicit Tracer(std::string root_name);

  /// Open a child span of the innermost open span. Returns its id.
  int BeginSpan(std::string name);
  /// Close span `id`; must be the innermost open span.
  void EndSpan(int id);

  /// RAII helper: `auto s = tracer.Span("plan");`
  class Scope {
   public:
    Scope(Tracer* t, int id) : t_(t), id_(id) {}
    ~Scope() { t_->EndSpan(id_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Tracer* t_;
    int id_;
  };
  Scope Span(std::string name) { return Scope(this, BeginSpan(std::move(name))); }

  /// Accumulate one Next() call's inclusive time for a plan node.
  void RecordNode(const recdb::PlanNode* node, uint64_t dur_ns,
                  bool produced_row);

  /// Append one span per plan node (pre-order, children nested) under the
  /// innermost open span, carrying the durations/row counts accumulated via
  /// RecordNode. Call after the executor tree has drained.
  void AttachPlan(const recdb::PlanNode& plan);

  /// Close every still-open span, root last. Idempotent.
  void Finish();

  uint64_t RootDurationNs() const;
  /// Indented span tree with wall-clock per span; executor spans carry
  /// rows= / next= annotations.
  std::string Render() const;

  static uint64_t NowNs();

 private:
  struct SpanRec {
    std::string name;
    int parent;          // index into spans_, -1 for root
    uint64_t start_ns;   // absolute, monotonic
    uint64_t dur_ns = 0;
    bool open = true;
    bool exec_node = false;
    uint64_t rows = 0;       // exec_node only
    uint64_t next_calls = 0;  // exec_node only
  };
  struct NodeStat {
    uint64_t ns = 0;
    uint64_t next_calls = 0;
    uint64_t rows = 0;
  };

  void AttachPlanNode(const recdb::PlanNode& node, int parent);
  std::string RenderSpan(int id, int depth) const;

  std::vector<SpanRec> spans_;
  std::vector<int> stack_;  // ids of open spans, innermost last
  std::unordered_map<const recdb::PlanNode*, NodeStat> node_stats_;
};

}  // namespace recdb::obs
