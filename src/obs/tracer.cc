#include "obs/tracer.h"

#include <chrono>

#include "common/string_util.h"
#include "planner/plan_node.h"

namespace recdb::obs {

uint64_t Tracer::NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Tracer::Tracer(std::string root_name) {
  spans_.push_back(SpanRec{std::move(root_name), -1, NowNs()});
  stack_.push_back(0);
}

int Tracer::BeginSpan(std::string name) {
  const int parent = stack_.empty() ? -1 : stack_.back();
  const int id = static_cast<int>(spans_.size());
  spans_.push_back(SpanRec{std::move(name), parent, NowNs()});
  stack_.push_back(id);
  return id;
}

void Tracer::EndSpan(int id) {
  if (id < 0 || static_cast<size_t>(id) >= spans_.size()) return;
  SpanRec& s = spans_[id];
  if (!s.open) return;
  s.dur_ns = NowNs() - s.start_ns;
  s.open = false;
  // Pop through id; spans are well-nested so anything above it on the stack
  // is an unclosed child — close those too (error-path robustness).
  while (!stack_.empty()) {
    const int top = stack_.back();
    stack_.pop_back();
    if (top == id) break;
    SpanRec& child = spans_[top];
    if (child.open) {
      child.dur_ns = s.start_ns + s.dur_ns - child.start_ns;
      child.open = false;
    }
  }
}

void Tracer::RecordNode(const recdb::PlanNode* node, uint64_t dur_ns,
                        bool produced_row) {
  NodeStat& stat = node_stats_[node];
  stat.ns += dur_ns;
  ++stat.next_calls;
  if (produced_row) ++stat.rows;
}

void Tracer::AttachPlanNode(const recdb::PlanNode& node, int parent) {
  const int id = static_cast<int>(spans_.size());
  SpanRec rec;
  rec.name = node.Describe();
  rec.parent = parent;
  rec.exec_node = true;
  auto it = node_stats_.find(&node);
  if (it != node_stats_.end()) {
    rec.dur_ns = it->second.ns;
    rec.rows = it->second.rows;
    rec.next_calls = it->second.next_calls;
  }
  // Synthesized after the fact: give it the parent's start so ordering by
  // tree position stays stable, and mark it closed.
  rec.start_ns = spans_[parent].start_ns;
  rec.open = false;
  spans_.push_back(std::move(rec));
  for (const auto& child : node.children) AttachPlanNode(*child, id);
}

void Tracer::AttachPlan(const recdb::PlanNode& plan) {
  const int parent = stack_.empty() ? 0 : stack_.back();
  AttachPlanNode(plan, parent);
}

void Tracer::Finish() {
  while (!stack_.empty()) {
    const int top = stack_.back();
    stack_.pop_back();
    SpanRec& s = spans_[top];
    if (s.open) {
      s.dur_ns = NowNs() - s.start_ns;
      s.open = false;
    }
  }
}

uint64_t Tracer::RootDurationNs() const {
  if (spans_.empty()) return 0;
  const SpanRec& root = spans_[0];
  return root.open ? NowNs() - root.start_ns : root.dur_ns;
}

std::string Tracer::RenderSpan(int id, int depth) const {
  const SpanRec& s = spans_[id];
  std::string name = s.name;
  // Executor Describe() strings can be long; keep the table readable.
  if (name.size() > 48) name = name.substr(0, 45) + "...";
  std::string out =
      StringFormat("  %*s%-*s %10.3f ms", depth * 2, "",
                   48 - depth * 2 > 0 ? 48 - depth * 2 : 0, name.c_str(),
                   static_cast<double>(s.dur_ns) / 1e6);
  if (s.exec_node) {
    out += StringFormat("  rows=%llu next=%llu",
                        static_cast<unsigned long long>(s.rows),
                        static_cast<unsigned long long>(s.next_calls));
  }
  out += "\n";
  for (size_t i = 0; i < spans_.size(); ++i) {
    if (spans_[i].parent == id) out += RenderSpan(static_cast<int>(i), depth + 1);
  }
  return out;
}

std::string Tracer::Render() const {
  if (spans_.empty()) return "(empty trace)\n";
  std::string out =
      "span tree (wall-clock per span; executor spans are inclusive of "
      "their children):\n";
  out += RenderSpan(0, 0);
  return out;
}

}  // namespace recdb::obs
