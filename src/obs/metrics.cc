#include "obs/metrics.h"

#include <algorithm>
#include <cstring>

#include "common/string_util.h"

namespace recdb::obs {
namespace {

constexpr const char* kCounterNames[] = {
#define X(id, name, unit, help) name,
    RECDB_COUNTER_METRICS(X)
#undef X
};
constexpr const char* kCounterUnits[] = {
#define X(id, name, unit, help) unit,
    RECDB_COUNTER_METRICS(X)
#undef X
};
constexpr const char* kCounterHelp[] = {
#define X(id, name, unit, help) help,
    RECDB_COUNTER_METRICS(X)
#undef X
};
constexpr const char* kGaugeNames[] = {
#define X(id, name, unit, help) name,
    RECDB_GAUGE_METRICS(X)
#undef X
};
constexpr const char* kGaugeUnits[] = {
#define X(id, name, unit, help) unit,
    RECDB_GAUGE_METRICS(X)
#undef X
};
constexpr const char* kGaugeHelp[] = {
#define X(id, name, unit, help) help,
    RECDB_GAUGE_METRICS(X)
#undef X
};
constexpr const char* kHistogramNames[] = {
#define X(id, name, unit, help) name,
    RECDB_HISTOGRAM_METRICS(X)
#undef X
};
constexpr const char* kHistogramUnits[] = {
#define X(id, name, unit, help) unit,
    RECDB_HISTOGRAM_METRICS(X)
#undef X
};
constexpr const char* kHistogramHelp[] = {
#define X(id, name, unit, help) help,
    RECDB_HISTOGRAM_METRICS(X)
#undef X
};

}  // namespace

const char* CounterName(Counter c) {
  return kCounterNames[static_cast<size_t>(c)];
}
const char* CounterUnit(Counter c) {
  return kCounterUnits[static_cast<size_t>(c)];
}
const char* CounterHelp(Counter c) {
  return kCounterHelp[static_cast<size_t>(c)];
}
const char* GaugeName(Gauge g) { return kGaugeNames[static_cast<size_t>(g)]; }
const char* GaugeUnit(Gauge g) { return kGaugeUnits[static_cast<size_t>(g)]; }
const char* GaugeHelp(Gauge g) { return kGaugeHelp[static_cast<size_t>(g)]; }
const char* HistogramName(Histogram h) {
  return kHistogramNames[static_cast<size_t>(h)];
}
const char* HistogramUnit(Histogram h) {
  return kHistogramUnits[static_cast<size_t>(h)];
}
const char* HistogramHelp(Histogram h) {
  return kHistogramHelp[static_cast<size_t>(h)];
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumHistogramBuckets; ++i) {
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      // Interpolate within [lower, upper] by the fraction of the bucket's
      // population below the target rank.
      const double lower = i == 0 ? 0.0
                                  : static_cast<double>(
                                        kHistogramBoundsUs[i - 1]);
      const double upper = i < kNumHistogramBounds
                               ? static_cast<double>(kHistogramBoundsUs[i])
                               : lower * 2.0;
      const double frac =
          (target - static_cast<double>(cumulative)) / in_bucket;
      return lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(kHistogramBoundsUs[kNumHistogramBounds - 1]);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  for (size_t i = 0; i < kNumCounters; ++i) {
    snap.counters[i] = counters_[i].load(std::memory_order_relaxed);
  }
  for (size_t i = 0; i < kNumGauges; ++i) {
    snap.gauges[i] = gauges_[i].load(std::memory_order_relaxed);
  }
  for (size_t i = 0; i < kNumHistograms; ++i) {
    HistogramSnapshot& h = snap.histograms[i];
    h.name = kHistogramNames[i];
    h.count = hists_[i].count.load(std::memory_order_relaxed);
    h.sum_us = hists_[i].sum_us.load(std::memory_order_relaxed);
    for (size_t b = 0; b < kNumHistogramBuckets; ++b) {
      h.buckets[b] = hists_[i].buckets[b].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

std::string MetricsRegistry::ToTable(bool only_nonzero) const {
  const MetricsSnapshot snap = Snapshot();
  std::string out;
  out += "counters:\n";
  for (size_t i = 0; i < kNumCounters; ++i) {
    if (only_nonzero && snap.counters[i] == 0) continue;
    out += StringFormat("  %-32s %12llu %s\n", kCounterNames[i],
                        static_cast<unsigned long long>(snap.counters[i]),
                        kCounterUnits[i]);
  }
  out += "gauges:\n";
  for (size_t i = 0; i < kNumGauges; ++i) {
    if (only_nonzero && snap.gauges[i] == 0) continue;
    out += StringFormat("  %-32s %12lld %s\n", kGaugeNames[i],
                        static_cast<long long>(snap.gauges[i]),
                        kGaugeUnits[i]);
  }
  out += "histograms (us):\n";
  for (size_t i = 0; i < kNumHistograms; ++i) {
    const HistogramSnapshot& h = snap.histograms[i];
    if (only_nonzero && h.count == 0) continue;
    const double mean =
        h.count > 0 ? static_cast<double>(h.sum_us) / h.count : 0.0;
    out += StringFormat(
        "  %-32s count=%-8llu mean=%-10.1f p50=%-10.1f p99=%.1f\n",
        kHistogramNames[i], static_cast<unsigned long long>(h.count), mean,
        h.Quantile(0.5), h.Quantile(0.99));
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  const MetricsSnapshot snap = Snapshot();
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < kNumCounters; ++i) {
    out += StringFormat("%s\n    \"%s\": %llu", i == 0 ? "" : ",",
                        kCounterNames[i],
                        static_cast<unsigned long long>(snap.counters[i]));
  }
  out += "\n  },\n  \"gauges\": {";
  for (size_t i = 0; i < kNumGauges; ++i) {
    out += StringFormat("%s\n    \"%s\": %lld", i == 0 ? "" : ",",
                        kGaugeNames[i],
                        static_cast<long long>(snap.gauges[i]));
  }
  out += "\n  },\n  \"histogram_bounds_us\": [";
  for (size_t b = 0; b < kNumHistogramBounds; ++b) {
    out += StringFormat("%s%llu", b == 0 ? "" : ", ",
                        static_cast<unsigned long long>(
                            kHistogramBoundsUs[b]));
  }
  out += "],\n  \"histograms\": {";
  for (size_t i = 0; i < kNumHistograms; ++i) {
    const HistogramSnapshot& h = snap.histograms[i];
    out += StringFormat(
        "%s\n    \"%s\": {\"count\": %llu, \"sum_us\": %llu, "
        "\"p50_us\": %.1f, \"p99_us\": %.1f, \"buckets\": [",
        i == 0 ? "" : ",", kHistogramNames[i],
        static_cast<unsigned long long>(h.count),
        static_cast<unsigned long long>(h.sum_us), h.Quantile(0.5),
        h.Quantile(0.99));
    for (size_t b = 0; b < kNumHistogramBuckets; ++b) {
      out += StringFormat("%s%llu", b == 0 ? "" : ", ",
                          static_cast<unsigned long long>(h.buckets[b]));
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

void MetricsRegistry::ResetForTest() {
  for (auto& c : counters_) c.store(0, std::memory_order_relaxed);
  for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
  for (auto& h : hists_) {
    for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    h.count.store(0, std::memory_order_relaxed);
    h.sum_us.store(0, std::memory_order_relaxed);
  }
}

}  // namespace recdb::obs
