// Abstract syntax tree for the recdb SQL dialect, including the paper's
// extensions: CREATE/DROP RECOMMENDER and the RECOMMEND..TO..ON..USING
// clause inside SELECT.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "types/value.h"

namespace recdb {

// ----------------------------------------------------------------------
// Expressions
// ----------------------------------------------------------------------

enum class BinaryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kAdd,
  kSub,
  kMul,
  kDiv,
};

const char* BinaryOpToString(BinaryOp op);

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kBinary,
  kNot,
  kNegate,        // unary minus
  kFunctionCall,  // ST_Contains, ST_DWithin, ST_Distance, CScore, ABS, ...
  kInList,        // expr [NOT] IN (literal, ...)
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;

  // kLiteral
  Value literal;

  // kColumnRef: optional qualifier ("R" in R.uid) and the column name.
  std::string qualifier;
  std::string column;

  // kBinary
  BinaryOp op = BinaryOp::kEq;
  ExprPtr left;
  ExprPtr right;  // also the operand of kNot / kNegate (in `left`)

  // kFunctionCall
  std::string func_name;  // lower-cased
  std::vector<ExprPtr> args;

  // kInList: `left` IN `args`
  bool negated = false;

  static ExprPtr MakeLiteral(Value v);
  static ExprPtr MakeColumnRef(std::string qualifier, std::string column);
  static ExprPtr MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r);
  static ExprPtr MakeNot(ExprPtr operand);
  static ExprPtr MakeNegate(ExprPtr operand);
  static ExprPtr MakeFunctionCall(std::string name, std::vector<ExprPtr> args);
  static ExprPtr MakeInList(ExprPtr needle, std::vector<ExprPtr> list,
                            bool negated);

  /// Deep copy (the optimizer clones predicates when splitting them).
  ExprPtr Clone() const;

  /// SQL-ish rendering for diagnostics.
  std::string ToString() const;
};

// ----------------------------------------------------------------------
// Statements
// ----------------------------------------------------------------------

enum class StatementKind {
  kSelect,
  kCreateTable,
  kDropTable,
  kInsert,
  kDelete,
  kUpdate,
  kCreateRecommender,
  kDropRecommender,
  kExplain,
  kSet,
  kAnalyze,
};

struct Statement {
  virtual ~Statement() = default;
  explicit Statement(StatementKind k) : kind(k) {}
  StatementKind kind;
};
using StatementPtr = std::unique_ptr<Statement>;

struct SelectItem {
  bool is_star = false;
  ExprPtr expr;        // null when is_star
  std::string alias;   // optional output name
};

struct TableRef {
  std::string table_name;
  std::string alias;  // empty -> table name is the alias
  const std::string& EffectiveAlias() const {
    return alias.empty() ? table_name : alias;
  }
};

/// RECOMMEND <item col> TO <user col> ON <rating col> USING <algorithm>
/// (paper Section III-B; the USING algorithm defaults to ItemCosCF).
struct RecommendClause {
  ExprPtr item_col;    // column ref
  ExprPtr user_col;    // column ref
  ExprPtr rating_col;  // column ref
  std::optional<std::string> algorithm;
};

struct OrderByItem {
  ExprPtr expr;
  bool desc = false;
};

struct SelectStatement : Statement {
  SelectStatement() : Statement(StatementKind::kSelect) {}
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  std::optional<RecommendClause> recommend;
  ExprPtr where;  // may be null
  std::vector<ExprPtr> group_by;
  ExprPtr having;  // may be null; requires aggregation
  std::vector<OrderByItem> order_by;
  std::optional<int64_t> limit;
};

struct CreateTableStatement : Statement {
  CreateTableStatement() : Statement(StatementKind::kCreateTable) {}
  std::string table_name;
  std::vector<std::pair<std::string, std::string>> columns;  // (name, type)
};

struct DropTableStatement : Statement {
  DropTableStatement() : Statement(StatementKind::kDropTable) {}
  std::string table_name;
};

struct InsertStatement : Statement {
  InsertStatement() : Statement(StatementKind::kInsert) {}
  std::string table_name;
  std::vector<std::vector<ExprPtr>> rows;  // literal (or constant) tuples
};

/// DELETE FROM t [WHERE expr]
struct DeleteStatement : Statement {
  DeleteStatement() : Statement(StatementKind::kDelete) {}
  std::string table_name;
  ExprPtr where;  // null = delete all rows
};

/// UPDATE t SET col = expr [, col = expr ...] [WHERE expr]
struct UpdateStatement : Statement {
  UpdateStatement() : Statement(StatementKind::kUpdate) {}
  std::string table_name;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // null = update all rows
};

/// EXPLAIN [ANALYZE] <select>
struct ExplainStatement : Statement {
  ExplainStatement() : Statement(StatementKind::kExplain) {}
  StatementPtr inner;  // a SelectStatement
  /// EXPLAIN ANALYZE: execute the query and annotate the plan with actual
  /// per-node row counts next to the estimates.
  bool analyze = false;
};

/// ANALYZE [table] — collect optimizer statistics for one or all tables.
struct AnalyzeStatement : Statement {
  AnalyzeStatement() : Statement(StatementKind::kAnalyze) {}
  std::string table_name;  // empty = every table in the catalog
};

/// CREATE RECOMMENDER name ON table USERS FROM c ITEMS FROM c RATINGS FROM c
/// USING algo  (paper Section III-A).
struct CreateRecommenderStatement : Statement {
  CreateRecommenderStatement() : Statement(StatementKind::kCreateRecommender) {}
  std::string name;
  std::string ratings_table;
  std::string user_col;
  std::string item_col;
  std::string rating_col;
  std::optional<std::string> algorithm;
};

struct DropRecommenderStatement : Statement {
  DropRecommenderStatement() : Statement(StatementKind::kDropRecommender) {}
  std::string name;
};

/// SET <option> = <literal>  (session options, e.g. SET parallelism = 4).
struct SetStatement : Statement {
  SetStatement() : Statement(StatementKind::kSet) {}
  std::string option;  // lower-cased option name
  Value value;
};

}  // namespace recdb
