// Hand-written SQL lexer.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "parser/token.h"

namespace recdb {

/// Tokenize a SQL string. Keywords are recognized case-insensitively and
/// normalized to upper-case; identifiers keep their original spelling.
Result<std::vector<Token>> Tokenize(const std::string& sql);

/// True if `word` (upper-case) is a reserved SQL keyword of this dialect.
bool IsReservedKeyword(const std::string& upper);

}  // namespace recdb
