#include "parser/lexer.h"

#include <cctype>
#include <unordered_set>

#include "common/string_util.h"

namespace recdb {

bool IsReservedKeyword(const std::string& upper) {
  static const std::unordered_set<std::string> kKeywords = {
      "SELECT", "FROM",   "WHERE",       "AND",    "OR",     "NOT",
      "IN",     "AS",     "ORDER",       "BY",     "ASC",    "DESC",
      "LIMIT",  "CREATE", "DROP",        "TABLE",  "INSERT", "INTO",
      "VALUES", "NULL",   "TRUE",        "FALSE",  "RECOMMEND",
      "RECOMMENDER",      "TO",          "ON",     "USING",  "BETWEEN",
      "IS",     "LIKE",   "DELETE",      "UPDATE", "SET",
      "EXPLAIN", "GROUP", "HAVING",  "DISTINCT", "ANALYZE",
      // Note: USERS / ITEMS / RATINGS are deliberately NOT reserved — the
      // paper's own example tables are named Users/Movies/Ratings. The
      // CREATE RECOMMENDER parser matches them context-sensitively.
  };
  return kKeywords.count(upper) > 0;
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  auto make = [&](TokenType t, std::string text, size_t pos) {
    Token tok;
    tok.type = t;
    tok.text = std::move(text);
    tok.pos = pos;
    return tok;
  };

  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    // Line comments: -- to end of line.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_')) {
        ++j;
      }
      std::string word = sql.substr(i, j - i);
      std::string upper = ToUpper(word);
      if (IsReservedKeyword(upper)) {
        tokens.push_back(make(TokenType::kKeyword, upper, start));
      } else {
        tokens.push_back(make(TokenType::kIdentifier, word, start));
      }
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i;
      bool has_dot = false, has_exp = false;
      while (j < n) {
        char d = sql[j];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++j;
        } else if (d == '.' && !has_dot && !has_exp) {
          has_dot = true;
          ++j;
        } else if ((d == 'e' || d == 'E') && !has_exp && j > i) {
          has_exp = true;
          ++j;
          if (j < n && (sql[j] == '+' || sql[j] == '-')) ++j;
        } else {
          break;
        }
      }
      std::string num = sql.substr(i, j - i);
      Token tok;
      tok.pos = start;
      tok.text = num;
      try {
        if (has_dot || has_exp) {
          tok.type = TokenType::kDoubleLiteral;
          tok.double_val = std::stod(num);
        } else {
          tok.type = TokenType::kIntLiteral;
          tok.int_val = std::stoll(num);
        }
      } catch (const std::exception&) {
        return Status::ParseError("bad numeric literal '" + num + "'");
      }
      tokens.push_back(tok);
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string text;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {  // escaped quote ''
            text += '\'';
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        text += sql[j++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      Token tok = make(TokenType::kStringLiteral, std::move(text), start);
      tokens.push_back(std::move(tok));
      i = j;
      continue;
    }
    switch (c) {
      case ',':
        tokens.push_back(make(TokenType::kComma, ",", start));
        ++i;
        break;
      case '.':
        tokens.push_back(make(TokenType::kDot, ".", start));
        ++i;
        break;
      case ';':
        tokens.push_back(make(TokenType::kSemicolon, ";", start));
        ++i;
        break;
      case '(':
        tokens.push_back(make(TokenType::kLParen, "(", start));
        ++i;
        break;
      case ')':
        tokens.push_back(make(TokenType::kRParen, ")", start));
        ++i;
        break;
      case '*':
        tokens.push_back(make(TokenType::kStar, "*", start));
        ++i;
        break;
      case '+':
        tokens.push_back(make(TokenType::kPlus, "+", start));
        ++i;
        break;
      case '-':
        tokens.push_back(make(TokenType::kMinus, "-", start));
        ++i;
        break;
      case '/':
        tokens.push_back(make(TokenType::kSlash, "/", start));
        ++i;
        break;
      case '=':
        tokens.push_back(make(TokenType::kEq, "=", start));
        ++i;
        break;
      case '!':
        if (i + 1 < n && sql[i + 1] == '=') {
          tokens.push_back(make(TokenType::kNe, "!=", start));
          i += 2;
        } else {
          return Status::ParseError("unexpected '!' at offset " +
                                    std::to_string(start));
        }
        break;
      case '<':
        if (i + 1 < n && sql[i + 1] == '=') {
          tokens.push_back(make(TokenType::kLe, "<=", start));
          i += 2;
        } else if (i + 1 < n && sql[i + 1] == '>') {
          tokens.push_back(make(TokenType::kNe, "<>", start));
          i += 2;
        } else {
          tokens.push_back(make(TokenType::kLt, "<", start));
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && sql[i + 1] == '=') {
          tokens.push_back(make(TokenType::kGe, ">=", start));
          i += 2;
        } else {
          tokens.push_back(make(TokenType::kGt, ">", start));
          ++i;
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
    }
  }
  tokens.push_back(make(TokenType::kEof, "", n));
  return tokens;
}

}  // namespace recdb
