#include "parser/ast.h"

#include "common/status.h"

namespace recdb {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
  }
  return "?";
}

ExprPtr Expr::MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::MakeColumnRef(std::string qualifier, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

ExprPtr Expr::MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

ExprPtr Expr::MakeNot(ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNot;
  e->left = std::move(operand);
  return e;
}

ExprPtr Expr::MakeNegate(ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNegate;
  e->left = std::move(operand);
  return e;
}

ExprPtr Expr::MakeFunctionCall(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunctionCall;
  e->func_name = std::move(name);
  e->args = std::move(args);
  return e;
}

ExprPtr Expr::MakeInList(ExprPtr needle, std::vector<ExprPtr> list,
                         bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kInList;
  e->left = std::move(needle);
  e->args = std::move(list);
  e->negated = negated;
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->qualifier = qualifier;
  e->column = column;
  e->op = op;
  e->func_name = func_name;
  e->negated = negated;
  if (left) e->left = left->Clone();
  if (right) e->right = right->Clone();
  e->args.reserve(args.size());
  for (const auto& a : args) e->args.push_back(a->Clone());
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.type() == TypeId::kString ? "'" + literal.ToString() + "'"
                                               : literal.ToString();
    case ExprKind::kColumnRef:
      return qualifier.empty() ? column : qualifier + "." + column;
    case ExprKind::kBinary:
      return "(" + left->ToString() + " " + BinaryOpToString(op) + " " +
             right->ToString() + ")";
    case ExprKind::kNot:
      return "NOT " + left->ToString();
    case ExprKind::kNegate:
      return "-" + left->ToString();
    case ExprKind::kFunctionCall: {
      std::string out = func_name + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kInList: {
      std::string out = left->ToString() + (negated ? " NOT IN (" : " IN (");
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace recdb
