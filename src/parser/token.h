// SQL token definitions.
#pragma once

#include <cstdint>
#include <string>

namespace recdb {

enum class TokenType {
  kEof,
  kIdentifier,   // table, column, function names (case-insensitive)
  kKeyword,      // reserved words, normalized upper-case in `text`
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,  // quoted with ' ', quotes stripped
  // punctuation / operators
  kComma,
  kDot,
  kSemicolon,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kEq,     // =
  kNe,     // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;      // normalized: keywords upper-case
  int64_t int_val = 0;
  double double_val = 0;
  size_t pos = 0;        // byte offset in the input, for error messages

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
};

}  // namespace recdb
