// Recursive-descent parser for the recdb SQL dialect.
//
// Supported statements:
//   SELECT <items> FROM <tables>
//       [RECOMMEND <col> TO <col> ON <col> [USING <algo>]]
//       [WHERE <expr>] [ORDER BY <expr> [ASC|DESC], ...] [LIMIT n]
//   CREATE TABLE t (col TYPE, ...)
//   DROP TABLE t
//   INSERT INTO t VALUES (v, ...), (v, ...)
//   CREATE RECOMMENDER r ON ratings USERS FROM c ITEMS FROM c
//       RATINGS FROM c [USING <algo>]
//   DROP RECOMMENDER r
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "parser/ast.h"
#include "parser/token.h"

namespace recdb {

class Parser {
 public:
  /// Parse a script of one or more ';'-separated statements.
  static Result<std::vector<StatementPtr>> Parse(const std::string& sql);

  /// Parse exactly one statement.
  static Result<StatementPtr> ParseSingle(const std::string& sql);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::vector<StatementPtr>> ParseScript();
  Result<StatementPtr> ParseStatement();
  Result<StatementPtr> ParseSelect();
  Result<StatementPtr> ParseCreate();
  Result<StatementPtr> ParseDrop();
  Result<StatementPtr> ParseInsert();
  Result<StatementPtr> ParseDelete();
  Result<StatementPtr> ParseUpdate();
  Result<StatementPtr> ParseExplain();
  Result<StatementPtr> ParseSet();
  Result<StatementPtr> ParseAnalyze();

  Result<RecommendClause> ParseRecommendClause();

  Result<ExprPtr> ParseExpr();
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();
  Result<ExprPtr> ParseColumnRef();

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekAt(size_t off) const {
    size_t i = pos_ + off;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  Token Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Match(TokenType t);
  bool MatchKeyword(const char* kw);
  Status Expect(TokenType t, const char* what);
  Status ExpectKeyword(const char* kw);
  Result<std::string> ExpectIdentifier(const char* what);
  Status Error(const std::string& msg) const;

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace recdb
