#include "parser/parser.h"

#include "common/string_util.h"
#include "parser/lexer.h"

namespace recdb {

Result<std::vector<StatementPtr>> Parser::Parse(const std::string& sql) {
  RECDB_ASSIGN_OR_RETURN(auto tokens, Tokenize(sql));
  Parser p(std::move(tokens));
  return p.ParseScript();
}

Result<StatementPtr> Parser::ParseSingle(const std::string& sql) {
  RECDB_ASSIGN_OR_RETURN(auto stmts, Parse(sql));
  if (stmts.size() != 1) {
    return Status::ParseError("expected exactly one statement, got " +
                              std::to_string(stmts.size()));
  }
  return std::move(stmts[0]);
}

bool Parser::Match(TokenType t) {
  if (Peek().type == t) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::MatchKeyword(const char* kw) {
  if (Peek().IsKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::Expect(TokenType t, const char* what) {
  if (Peek().type == t) {
    Advance();
    return Status::OK();
  }
  return Error(std::string("expected ") + what);
}

Status Parser::ExpectKeyword(const char* kw) {
  if (Peek().IsKeyword(kw)) {
    Advance();
    return Status::OK();
  }
  return Error(std::string("expected keyword ") + kw);
}

Result<std::string> Parser::ExpectIdentifier(const char* what) {
  if (Peek().type == TokenType::kIdentifier) {
    return Advance().text;
  }
  return Error(std::string("expected ") + what);
}

Status Parser::Error(const std::string& msg) const {
  const Token& t = Peek();
  std::string got = t.type == TokenType::kEof ? "end of input"
                                              : "'" + t.text + "'";
  return Status::ParseError(msg + ", got " + got + " at offset " +
                            std::to_string(t.pos));
}

Result<std::vector<StatementPtr>> Parser::ParseScript() {
  std::vector<StatementPtr> stmts;
  while (Peek().type != TokenType::kEof) {
    if (Match(TokenType::kSemicolon)) continue;
    RECDB_ASSIGN_OR_RETURN(auto stmt, ParseStatement());
    stmts.push_back(std::move(stmt));
    if (Peek().type != TokenType::kEof) {
      RECDB_RETURN_NOT_OK(Expect(TokenType::kSemicolon, "';'"));
    }
  }
  if (stmts.empty()) return Status::ParseError("empty statement");
  return stmts;
}

Result<StatementPtr> Parser::ParseStatement() {
  const Token& t = Peek();
  if (t.IsKeyword("SELECT")) return ParseSelect();
  if (t.IsKeyword("CREATE")) return ParseCreate();
  if (t.IsKeyword("DROP")) return ParseDrop();
  if (t.IsKeyword("INSERT")) return ParseInsert();
  if (t.IsKeyword("DELETE")) return ParseDelete();
  if (t.IsKeyword("UPDATE")) return ParseUpdate();
  if (t.IsKeyword("EXPLAIN")) return ParseExplain();
  if (t.IsKeyword("SET")) return ParseSet();
  if (t.IsKeyword("ANALYZE")) return ParseAnalyze();
  return Error(
      "expected SELECT, CREATE, DROP, INSERT, DELETE, UPDATE, EXPLAIN, "
      "ANALYZE or SET");
}

Result<StatementPtr> Parser::ParseSelect() {
  RECDB_RETURN_NOT_OK(ExpectKeyword("SELECT"));
  auto stmt = std::make_unique<SelectStatement>();
  stmt->distinct = MatchKeyword("DISTINCT");

  // Select list.
  do {
    SelectItem item;
    if (Match(TokenType::kStar)) {
      item.is_star = true;
    } else {
      RECDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("AS")) {
        RECDB_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
      } else if (Peek().type == TokenType::kIdentifier) {
        item.alias = Advance().text;
      }
    }
    stmt->items.push_back(std::move(item));
  } while (Match(TokenType::kComma));

  RECDB_RETURN_NOT_OK(ExpectKeyword("FROM"));
  do {
    TableRef ref;
    RECDB_ASSIGN_OR_RETURN(ref.table_name, ExpectIdentifier("table name"));
    if (MatchKeyword("AS")) {
      RECDB_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier("table alias"));
    } else if (Peek().type == TokenType::kIdentifier) {
      ref.alias = Advance().text;
    }
    stmt->from.push_back(std::move(ref));
  } while (Match(TokenType::kComma));

  if (Peek().IsKeyword("RECOMMEND")) {
    RECDB_ASSIGN_OR_RETURN(auto clause, ParseRecommendClause());
    stmt->recommend = std::move(clause);
  }

  if (MatchKeyword("WHERE")) {
    RECDB_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }

  if (MatchKeyword("GROUP")) {
    RECDB_RETURN_NOT_OK(ExpectKeyword("BY"));
    do {
      RECDB_ASSIGN_OR_RETURN(auto e, ParseExpr());
      stmt->group_by.push_back(std::move(e));
    } while (Match(TokenType::kComma));
  }

  if (MatchKeyword("HAVING")) {
    RECDB_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
  }

  if (MatchKeyword("ORDER")) {
    RECDB_RETURN_NOT_OK(ExpectKeyword("BY"));
    do {
      OrderByItem item;
      RECDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("DESC")) {
        item.desc = true;
      } else {
        (void)MatchKeyword("ASC");
      }
      stmt->order_by.push_back(std::move(item));
    } while (Match(TokenType::kComma));
  }

  if (MatchKeyword("LIMIT")) {
    if (Peek().type != TokenType::kIntLiteral) {
      return Error("expected integer after LIMIT");
    }
    stmt->limit = Advance().int_val;
    if (stmt->limit.value() < 0) {
      return Status::ParseError("LIMIT must be non-negative");
    }
  }

  return StatementPtr(std::move(stmt));
}

Result<RecommendClause> Parser::ParseRecommendClause() {
  RECDB_RETURN_NOT_OK(ExpectKeyword("RECOMMEND"));
  RecommendClause clause;
  RECDB_ASSIGN_OR_RETURN(clause.item_col, ParseColumnRef());
  RECDB_RETURN_NOT_OK(ExpectKeyword("TO"));
  RECDB_ASSIGN_OR_RETURN(clause.user_col, ParseColumnRef());
  RECDB_RETURN_NOT_OK(ExpectKeyword("ON"));
  RECDB_ASSIGN_OR_RETURN(clause.rating_col, ParseColumnRef());
  if (MatchKeyword("USING")) {
    RECDB_ASSIGN_OR_RETURN(auto algo, ExpectIdentifier("algorithm name"));
    clause.algorithm = algo;
  }
  return clause;
}

Result<StatementPtr> Parser::ParseCreate() {
  RECDB_RETURN_NOT_OK(ExpectKeyword("CREATE"));
  if (MatchKeyword("TABLE")) {
    auto stmt = std::make_unique<CreateTableStatement>();
    RECDB_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier("table name"));
    RECDB_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
    do {
      RECDB_ASSIGN_OR_RETURN(auto col, ExpectIdentifier("column name"));
      RECDB_ASSIGN_OR_RETURN(auto type, ExpectIdentifier("column type"));
      stmt->columns.emplace_back(std::move(col), std::move(type));
    } while (Match(TokenType::kComma));
    RECDB_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    return StatementPtr(std::move(stmt));
  }
  if (MatchKeyword("RECOMMENDER")) {
    auto stmt = std::make_unique<CreateRecommenderStatement>();
    RECDB_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("recommender name"));
    RECDB_RETURN_NOT_OK(ExpectKeyword("ON"));
    RECDB_ASSIGN_OR_RETURN(stmt->ratings_table,
                           ExpectIdentifier("ratings table"));
    // USERS / ITEMS / RATINGS are context-sensitive (not reserved) so that
    // tables may carry those names, as the paper's examples do. The paper
    // also writes both "ITEMS FROM" and "ITEM FROM"; accept either.
    auto match_word = [this](std::initializer_list<const char*> words) {
      if (Peek().type != TokenType::kIdentifier) return false;
      for (const char* w : words) {
        if (EqualsIgnoreCase(Peek().text, w)) {
          Advance();
          return true;
        }
      }
      return false;
    };
    if (!match_word({"users", "user"})) return Error("expected USERS");
    RECDB_RETURN_NOT_OK(ExpectKeyword("FROM"));
    RECDB_ASSIGN_OR_RETURN(stmt->user_col, ExpectIdentifier("user id column"));
    if (!match_word({"items", "item"})) return Error("expected ITEMS");
    RECDB_RETURN_NOT_OK(ExpectKeyword("FROM"));
    RECDB_ASSIGN_OR_RETURN(stmt->item_col, ExpectIdentifier("item id column"));
    if (!match_word({"ratings", "rating"})) return Error("expected RATINGS");
    RECDB_RETURN_NOT_OK(ExpectKeyword("FROM"));
    RECDB_ASSIGN_OR_RETURN(stmt->rating_col,
                           ExpectIdentifier("rating value column"));
    if (MatchKeyword("USING")) {
      RECDB_ASSIGN_OR_RETURN(auto algo, ExpectIdentifier("algorithm name"));
      stmt->algorithm = algo;
    }
    return StatementPtr(std::move(stmt));
  }
  return Error("expected TABLE or RECOMMENDER after CREATE");
}

Result<StatementPtr> Parser::ParseDrop() {
  RECDB_RETURN_NOT_OK(ExpectKeyword("DROP"));
  if (MatchKeyword("TABLE")) {
    auto stmt = std::make_unique<DropTableStatement>();
    RECDB_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier("table name"));
    return StatementPtr(std::move(stmt));
  }
  if (MatchKeyword("RECOMMENDER")) {
    auto stmt = std::make_unique<DropRecommenderStatement>();
    RECDB_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("recommender name"));
    return StatementPtr(std::move(stmt));
  }
  return Error("expected TABLE or RECOMMENDER after DROP");
}

Result<StatementPtr> Parser::ParseInsert() {
  RECDB_RETURN_NOT_OK(ExpectKeyword("INSERT"));
  RECDB_RETURN_NOT_OK(ExpectKeyword("INTO"));
  auto stmt = std::make_unique<InsertStatement>();
  RECDB_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier("table name"));
  RECDB_RETURN_NOT_OK(ExpectKeyword("VALUES"));
  do {
    RECDB_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
    std::vector<ExprPtr> row;
    do {
      RECDB_ASSIGN_OR_RETURN(auto expr, ParseExpr());
      row.push_back(std::move(expr));
    } while (Match(TokenType::kComma));
    RECDB_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    stmt->rows.push_back(std::move(row));
  } while (Match(TokenType::kComma));
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseDelete() {
  RECDB_RETURN_NOT_OK(ExpectKeyword("DELETE"));
  RECDB_RETURN_NOT_OK(ExpectKeyword("FROM"));
  auto stmt = std::make_unique<DeleteStatement>();
  RECDB_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier("table name"));
  if (MatchKeyword("WHERE")) {
    RECDB_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseUpdate() {
  RECDB_RETURN_NOT_OK(ExpectKeyword("UPDATE"));
  auto stmt = std::make_unique<UpdateStatement>();
  RECDB_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier("table name"));
  RECDB_RETURN_NOT_OK(ExpectKeyword("SET"));
  do {
    RECDB_ASSIGN_OR_RETURN(auto col, ExpectIdentifier("column name"));
    RECDB_RETURN_NOT_OK(Expect(TokenType::kEq, "'='"));
    RECDB_ASSIGN_OR_RETURN(auto value, ParseExpr());
    stmt->assignments.emplace_back(std::move(col), std::move(value));
  } while (Match(TokenType::kComma));
  if (MatchKeyword("WHERE")) {
    RECDB_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseExplain() {
  RECDB_RETURN_NOT_OK(ExpectKeyword("EXPLAIN"));
  auto stmt = std::make_unique<ExplainStatement>();
  stmt->analyze = MatchKeyword("ANALYZE");
  if (!Peek().IsKeyword("SELECT")) {
    return Error(stmt->analyze ? "EXPLAIN ANALYZE supports SELECT only"
                               : "EXPLAIN supports SELECT only");
  }
  RECDB_ASSIGN_OR_RETURN(stmt->inner, ParseSelect());
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseAnalyze() {
  RECDB_RETURN_NOT_OK(ExpectKeyword("ANALYZE"));
  auto stmt = std::make_unique<AnalyzeStatement>();
  if (Peek().type == TokenType::kIdentifier) {
    RECDB_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier("table name"));
  }
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseSet() {
  RECDB_RETURN_NOT_OK(ExpectKeyword("SET"));
  auto stmt = std::make_unique<SetStatement>();
  RECDB_ASSIGN_OR_RETURN(auto name, ExpectIdentifier("option name"));
  stmt->option = ToLower(name);
  RECDB_RETURN_NOT_OK(Expect(TokenType::kEq, "'='"));
  bool negative = Match(TokenType::kMinus);
  const Token& t = Peek();
  if (t.type == TokenType::kIntLiteral) {
    int64_t v = Advance().int_val;
    stmt->value = Value::Int(negative ? -v : v);
  } else if (t.type == TokenType::kDoubleLiteral) {
    double v = Advance().double_val;
    stmt->value = Value::Double(negative ? -v : v);
  } else if (t.type == TokenType::kStringLiteral && !negative) {
    stmt->value = Value::String(Advance().text);
  } else if (t.type == TokenType::kIdentifier && !negative) {
    // Bare words as option values (`SET trace = off`); carried as strings.
    stmt->value = Value::String(Advance().text);
  } else if (t.type == TokenType::kKeyword && !negative &&
             (t.text == "ON" || t.text == "TRUE" || t.text == "FALSE")) {
    // ON / TRUE / FALSE are reserved words but legal option values
    // (`SET trace = on`); carried as strings like any bare word.
    stmt->value = Value::String(Advance().text);
  } else {
    return Error("expected a number, string, or bare word after SET " +
                 stmt->option + " =");
  }
  return StatementPtr(std::move(stmt));
}

// ---------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------

Result<ExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<ExprPtr> Parser::ParseOr() {
  RECDB_ASSIGN_OR_RETURN(auto lhs, ParseAnd());
  while (MatchKeyword("OR")) {
    RECDB_ASSIGN_OR_RETURN(auto rhs, ParseAnd());
    lhs = Expr::MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAnd() {
  RECDB_ASSIGN_OR_RETURN(auto lhs, ParseNot());
  while (MatchKeyword("AND")) {
    RECDB_ASSIGN_OR_RETURN(auto rhs, ParseNot());
    lhs = Expr::MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    RECDB_ASSIGN_OR_RETURN(auto operand, ParseNot());
    return Expr::MakeNot(std::move(operand));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  RECDB_ASSIGN_OR_RETURN(auto lhs, ParseAdditive());
  // expr [NOT] IN (list)
  bool negated = false;
  if (Peek().IsKeyword("NOT") && PeekAt(1).IsKeyword("IN")) {
    Advance();
    negated = true;
  }
  if (MatchKeyword("IN")) {
    RECDB_RETURN_NOT_OK(Expect(TokenType::kLParen, "'(' after IN"));
    std::vector<ExprPtr> list;
    do {
      RECDB_ASSIGN_OR_RETURN(auto e, ParseExpr());
      list.push_back(std::move(e));
    } while (Match(TokenType::kComma));
    RECDB_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    return Expr::MakeInList(std::move(lhs), std::move(list), negated);
  }
  // expr BETWEEN a AND b  ->  expr >= a AND expr <= b
  if (MatchKeyword("BETWEEN")) {
    RECDB_ASSIGN_OR_RETURN(auto lo, ParseAdditive());
    RECDB_RETURN_NOT_OK(ExpectKeyword("AND"));
    RECDB_ASSIGN_OR_RETURN(auto hi, ParseAdditive());
    auto ge = Expr::MakeBinary(BinaryOp::kGe, lhs->Clone(), std::move(lo));
    auto le = Expr::MakeBinary(BinaryOp::kLe, std::move(lhs), std::move(hi));
    return Expr::MakeBinary(BinaryOp::kAnd, std::move(ge), std::move(le));
  }
  BinaryOp op;
  switch (Peek().type) {
    case TokenType::kEq:
      op = BinaryOp::kEq;
      break;
    case TokenType::kNe:
      op = BinaryOp::kNe;
      break;
    case TokenType::kLt:
      op = BinaryOp::kLt;
      break;
    case TokenType::kLe:
      op = BinaryOp::kLe;
      break;
    case TokenType::kGt:
      op = BinaryOp::kGt;
      break;
    case TokenType::kGe:
      op = BinaryOp::kGe;
      break;
    default:
      return lhs;
  }
  Advance();
  RECDB_ASSIGN_OR_RETURN(auto rhs, ParseAdditive());
  return Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
}

Result<ExprPtr> Parser::ParseAdditive() {
  RECDB_ASSIGN_OR_RETURN(auto lhs, ParseMultiplicative());
  while (true) {
    BinaryOp op;
    if (Peek().type == TokenType::kPlus) {
      op = BinaryOp::kAdd;
    } else if (Peek().type == TokenType::kMinus) {
      op = BinaryOp::kSub;
    } else {
      return lhs;
    }
    Advance();
    RECDB_ASSIGN_OR_RETURN(auto rhs, ParseMultiplicative());
    lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
  }
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  RECDB_ASSIGN_OR_RETURN(auto lhs, ParseUnary());
  while (true) {
    BinaryOp op;
    if (Peek().type == TokenType::kStar) {
      op = BinaryOp::kMul;
    } else if (Peek().type == TokenType::kSlash) {
      op = BinaryOp::kDiv;
    } else {
      return lhs;
    }
    Advance();
    RECDB_ASSIGN_OR_RETURN(auto rhs, ParseUnary());
    lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
  }
}

Result<ExprPtr> Parser::ParseUnary() {
  if (Match(TokenType::kMinus)) {
    RECDB_ASSIGN_OR_RETURN(auto operand, ParseUnary());
    // Fold negation of numeric literals immediately.
    if (operand->kind == ExprKind::kLiteral &&
        operand->literal.type() == TypeId::kInt64) {
      return Expr::MakeLiteral(Value::Int(-operand->literal.AsInt()));
    }
    if (operand->kind == ExprKind::kLiteral &&
        operand->literal.type() == TypeId::kDouble) {
      return Expr::MakeLiteral(Value::Double(-operand->literal.AsDouble()));
    }
    return Expr::MakeNegate(std::move(operand));
  }
  (void)Match(TokenType::kPlus);  // unary plus is a no-op
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.type) {
    case TokenType::kIntLiteral: {
      int64_t v = Advance().int_val;
      return Expr::MakeLiteral(Value::Int(v));
    }
    case TokenType::kDoubleLiteral: {
      double v = Advance().double_val;
      return Expr::MakeLiteral(Value::Double(v));
    }
    case TokenType::kStringLiteral: {
      std::string v = Advance().text;
      return Expr::MakeLiteral(Value::String(std::move(v)));
    }
    case TokenType::kKeyword: {
      if (MatchKeyword("NULL")) return Expr::MakeLiteral(Value::Null());
      if (MatchKeyword("TRUE")) return Expr::MakeLiteral(Value::Bool(true));
      if (MatchKeyword("FALSE")) return Expr::MakeLiteral(Value::Bool(false));
      return Error("unexpected keyword in expression");
    }
    case TokenType::kLParen: {
      Advance();
      RECDB_ASSIGN_OR_RETURN(auto e, ParseExpr());
      RECDB_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      return e;
    }
    case TokenType::kIdentifier: {
      // Function call?
      if (PeekAt(1).type == TokenType::kLParen) {
        std::string name = ToLower(Advance().text);
        Advance();  // '('
        std::vector<ExprPtr> args;
        if (Peek().type != TokenType::kRParen) {
          // COUNT(*): the star becomes a sentinel column ref "*".
          if (Peek().type == TokenType::kStar) {
            Advance();
            args.push_back(Expr::MakeColumnRef("", "*"));
          } else {
            do {
              RECDB_ASSIGN_OR_RETURN(auto a, ParseExpr());
              args.push_back(std::move(a));
            } while (Match(TokenType::kComma));
          }
        }
        RECDB_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
        return Expr::MakeFunctionCall(std::move(name), std::move(args));
      }
      return ParseColumnRef();
    }
    default:
      return Error("unexpected token in expression");
  }
}

Result<ExprPtr> Parser::ParseColumnRef() {
  RECDB_ASSIGN_OR_RETURN(auto first, ExpectIdentifier("column reference"));
  if (Match(TokenType::kDot)) {
    RECDB_ASSIGN_OR_RETURN(auto second, ExpectIdentifier("column name"));
    return Expr::MakeColumnRef(std::move(first), std::move(second));
  }
  return Expr::MakeColumnRef("", std::move(first));
}

}  // namespace recdb
