// Crash-recovery fault matrix: seeded kill points around the WAL group
// commit and inside recovery itself, each followed by a reopen that must
//  - recover exactly the committed prefix of the workload (durability), and
//  - answer RECOMMEND queries bit-identically to a database that executed
//    the same committed prefix and was closed cleanly (training is
//    deterministic, so recovery must reconstruct the same ratings heap).
//
// A "kill" is simulated by failing every subsequent read/write on both the
// data and the WAL device (FaultInjectingDiskManager with a 100% permanent
// fault rate) and then destroying the RecDB: the destructor's best-effort
// checkpoint fails, so nothing beyond the already-acknowledged log suffix
// reaches either file — exactly the state a power cut leaves behind.
#include <gtest/gtest.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/recdb.h"
#include "obs/metrics.h"
#include "storage/disk_manager.h"
#include "test_util.h"

namespace recdb {
namespace {

RetryPolicy FastRetry(int max_attempts) {
  RetryPolicy p;
  p.max_attempts = max_attempts;
  p.backoff_us = 0;
  return p;
}

std::string TempDbPath(const std::string& name) {
  std::string path = ::testing::TempDir() + name;
  ::unlink(path.c_str());
  ::unlink((path + ".wal").c_str());
  return path;
}

/// A file-backed database whose data and WAL devices are both wrapped in
/// fault injectors, with the raw wrapper pointers kept for kill injection.
struct FaultDb {
  std::unique_ptr<RecDB> db;
  FaultInjectingDiskManager* data = nullptr;
  FaultInjectingDiskManager* wal = nullptr;
};

FaultDb OpenFaultDb(const std::string& path) {
  FaultDb out;
  auto data_file = FileDiskManager::Open(path);
  EXPECT_TRUE(data_file.ok()) << data_file.status();
  auto wal_file = FileDiskManager::Open(path + ".wal");
  EXPECT_TRUE(wal_file.ok()) << wal_file.status();
  if (!data_file.ok() || !wal_file.ok()) return out;
  auto data = std::make_unique<FaultInjectingDiskManager>(
      std::move(data_file).value());
  auto wal =
      std::make_unique<FaultInjectingDiskManager>(std::move(wal_file).value());
  data->set_retry_policy(FastRetry(1));
  wal->set_retry_policy(FastRetry(1));
  out.data = data.get();
  out.wal = wal.get();
  auto db = RecDB::OpenWithDisks(std::move(data), std::move(wal));
  EXPECT_TRUE(db.ok()) << db.status();
  if (db.ok()) out.db = std::move(db).value();
  return out;
}

/// Power cut: every further I/O on both devices fails, then the process
/// "exits" (the RecDB is destroyed; its best-effort close cannot write).
void Kill(FaultDb* f) {
  f->data->SetRandomFaults(1.0, 1.0, /*seed=*/7, FaultKind::kPermanent);
  f->wal->SetRandomFaults(1.0, 1.0, /*seed=*/7, FaultKind::kPermanent);
  f->db.reset();
}

using Recommendation = std::pair<int64_t, double>;

std::vector<Recommendation> RecommendationsFor(RecDB* db, int uid) {
  auto r = db->Execute(
      "SELECT R.iid, R.ratingval FROM Ratings AS R "
      "RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF "
      "WHERE R.uid = " +
      std::to_string(uid) + " ORDER BY R.ratingval DESC, R.iid LIMIT 5");
  EXPECT_TRUE(r.ok()) << r.status();
  std::vector<Recommendation> out;
  if (!r.ok()) return out;
  for (const auto& row : r.value().rows) {
    out.push_back({row.At(0).AsInt(), row.At(1).AsDouble()});
  }
  return out;
}

std::vector<std::vector<Value>> BaseRatings() {
  std::vector<std::vector<Value>> ratings;
  for (int u = 1; u <= 12; ++u) {
    for (int i = 1; i <= 10; ++i) {
      if ((u + i) % 3 == 0) continue;
      ratings.push_back({Value::Int(u), Value::Int(i),
                         Value::Double(1.0 + (u * 7 + i * 3) % 5)});
    }
  }
  return ratings;
}

std::string IncrementalInsert(int k) {
  // Distinct (user, item) pairs outside the base grid.
  return "INSERT INTO Ratings VALUES (" + std::to_string(1 + k % 12) + ", " +
         std::to_string(11 + k) + ", " + std::to_string(1 + k % 5) + ".5)";
}

/// Runs the workload prefix: schema + base ratings + recommender, then k
/// committed single-row inserts. Returns the base row count.
size_t RunCommittedPrefix(RecDB* db, int k) {
  EXPECT_TRUE(
      db->Execute("CREATE TABLE Ratings (uid INT, iid INT, ratingval DOUBLE)")
          .ok());
  std::vector<std::vector<Value>> base = BaseRatings();
  EXPECT_TRUE(db->BulkInsert("Ratings", base).ok());
  EXPECT_TRUE(db->Execute("CREATE RECOMMENDER Rec ON Ratings USERS FROM uid "
                          "ITEMS FROM iid RATINGS FROM ratingval "
                          "USING ItemCosCF")
                  .ok());
  for (int j = 0; j < k; ++j) {
    auto r = db->Execute(IncrementalInsert(j));
    EXPECT_TRUE(r.ok()) << r.status();
  }
  return base.size();
}

size_t CountRatings(RecDB* db) {
  auto r = db->Execute("SELECT uid FROM Ratings");
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? r.value().NumRows() : 0;
}

// --- kill after commit: the whole acknowledged prefix survives ---------------

TEST(RecoveryFaultTest, KilledDatabaseRecoversCommittedPrefixExactly) {
  for (int k : {0, 1, 3, 7}) {
    SCOPED_TRACE("k=" + std::to_string(k));

    // Reference: same committed prefix, clean close + reopen. Both sides
    // re-train at open over identical heaps, so answers must match bit for
    // bit — not approximately.
    std::string ref_path = TempDbPath("recdb_ref_" + std::to_string(k) + ".db");
    std::vector<std::vector<Recommendation>> expected;
    size_t base_rows = 0;
    {
      auto ref = std::move(RecDB::Open(ref_path)).value();
      base_rows = RunCommittedPrefix(ref.get(), k);
      ASSERT_TRUE(ref->Close().ok());
    }
    auto ref = std::move(RecDB::Open(ref_path)).value();
    for (int uid : {1, 5, 9}) {
      expected.push_back(RecommendationsFor(ref.get(), uid));
    }
    ASSERT_FALSE(expected[0].empty());

    // Victim: same prefix, then a power cut instead of a close.
    std::string path = TempDbPath("recdb_kill_" + std::to_string(k) + ".db");
    FaultDb f = OpenFaultDb(path);
    ASSERT_NE(f.db, nullptr);
    ASSERT_EQ(RunCommittedPrefix(f.db.get(), k), base_rows);
    Kill(&f);

    auto db_or = RecDB::Open(path);
    ASSERT_TRUE(db_or.ok()) << db_or.status();
    auto db = std::move(db_or).value();
    EXPECT_EQ(CountRatings(db.get()), base_rows + static_cast<size_t>(k));
    EXPECT_TRUE(db->registry()->Get("Rec").ok());
    size_t idx = 0;
    for (int uid : {1, 5, 9}) {
      EXPECT_EQ(RecommendationsFor(db.get(), uid), expected[idx++])
          << "uid " << uid;
    }
    EXPECT_TRUE(NoPinsLeaked(db->buffer_pool()));

    // The recovered database keeps accepting writes.
    ASSERT_TRUE(db->Execute("INSERT INTO Ratings VALUES (99, 1, 3.0)").ok());
    ASSERT_TRUE(db->Close().ok());
    ::unlink(path.c_str());
    ::unlink((path + ".wal").c_str());
    ::unlink(ref_path.c_str());
    ::unlink((ref_path + ".wal").c_str());
  }
}

// --- kill before the group-commit fsync --------------------------------------

TEST(RecoveryFaultTest, KillBeforeGroupCommitFsyncLosesOnlyTheUnacknowledged) {
  std::string path = TempDbPath("recdb_kill_prefsync.db");
  const int kCommitted = 4;
  size_t base_rows = 0;
  {
    FaultDb f = OpenFaultDb(path);
    ASSERT_NE(f.db, nullptr);
    base_rows = RunCommittedPrefix(f.db.get(), kCommitted);

    // The next commit's batch write never reaches the log device — the
    // "crash before fsync" kill point. The statement must NOT be
    // acknowledged.
    f.wal->FailNthWrite(f.wal->write_attempts() + 1, FaultKind::kPermanent);
    auto r = f.db->Execute(IncrementalInsert(kCommitted));
    EXPECT_FALSE(r.ok());
    Kill(&f);
  }

  auto db = std::move(RecDB::Open(path)).value();
  EXPECT_EQ(CountRatings(db.get()), base_rows + kCommitted);
  ASSERT_TRUE(db->Close().ok());
}

// --- kill inside the group-commit fsync --------------------------------------

TEST(RecoveryFaultTest, KillInsideGroupCommitFsyncIsNotAcknowledged) {
  std::string path = TempDbPath("recdb_kill_infsync.db");
  const int kCommitted = 4;
  size_t base_rows = 0;
  {
    FaultDb f = OpenFaultDb(path);
    ASSERT_NE(f.db, nullptr);
    base_rows = RunCommittedPrefix(f.db.get(), kCommitted);

    // The batch reaches the log file but the durability barrier fails —
    // the "crash inside fsync" kill point. The statement is not
    // acknowledged; whether its record survives is the device's choice.
    // Here the page writes did land, so recovery may legitimately replay
    // it — the invariant is that everything ACKNOWLEDGED survives.
    f.wal->FailNthSync(f.wal->sync_attempts() + 1, FaultKind::kPermanent);
    auto r = f.db->Execute(IncrementalInsert(kCommitted));
    EXPECT_FALSE(r.ok());
    Kill(&f);
  }

  auto db = std::move(RecDB::Open(path)).value();
  size_t recovered = CountRatings(db.get());
  EXPECT_GE(recovered, base_rows + kCommitted);
  EXPECT_LE(recovered, base_rows + kCommitted + 1);
  EXPECT_TRUE(db->registry()->Get("Rec").ok());
  ASSERT_TRUE(db->Close().ok());
}

// --- kill during recovery itself ---------------------------------------------

TEST(RecoveryFaultTest, CrashDuringRecoveryCheckpointIsRestartable) {
  std::string path = TempDbPath("recdb_kill_midredo.db");
  const int kCommitted = 5;
  size_t base_rows = 0;
  {
    FaultDb f = OpenFaultDb(path);
    ASSERT_NE(f.db, nullptr);
    base_rows = RunCommittedPrefix(f.db.get(), kCommitted);
    Kill(&f);
  }

  // First reopen crashes mid-recovery: REDO replays into the pool, but the
  // post-recovery checkpoint cannot write the data file. The open must fail
  // cleanly — and must NOT have truncated the log before the replayed state
  // was durable.
  {
    auto data_file = std::move(FileDiskManager::Open(path)).value();
    auto wal_file = std::move(FileDiskManager::Open(path + ".wal")).value();
    auto data =
        std::make_unique<FaultInjectingDiskManager>(std::move(data_file));
    auto wal = std::make_unique<FaultInjectingDiskManager>(std::move(wal_file));
    data->set_retry_policy(FastRetry(1));
    wal->set_retry_policy(FastRetry(1));
    data->FailNthWrite(1, FaultKind::kPermanent);
    auto db_or = RecDB::OpenWithDisks(std::move(data), std::move(wal));
    EXPECT_FALSE(db_or.ok());
  }

  // Second, clean reopen: REDO is idempotent (page-LSN guards), so replaying
  // over whatever the interrupted recovery managed to flush reconstructs the
  // full committed prefix.
  auto db = std::move(RecDB::Open(path)).value();
  EXPECT_EQ(CountRatings(db.get()), base_rows + kCommitted);
  EXPECT_TRUE(db->registry()->Get("Rec").ok());
  EXPECT_FALSE(RecommendationsFor(db.get(), 1).empty());
  ASSERT_TRUE(db->Close().ok());
}

// --- Close() failure leaves the database open for retry (regression) ---------

TEST(RecoveryFaultTest, FailedCloseLeavesDatabaseOpenForRetry) {
  std::string path = TempDbPath("recdb_close_retry.db");
  FaultDb f = OpenFaultDb(path);
  ASSERT_NE(f.db, nullptr);
  size_t base_rows = RunCommittedPrefix(f.db.get(), 2);

  // First Close(): the checkpoint's first data write fails. Close used to
  // mark the handle closed anyway, so the retry below would have returned
  // OK without ever persisting the un-checkpointed state.
  f.data->ClearFaults();
  f.data->FailNthWrite(1, FaultKind::kPermanent);
  Status st = f.db->Close();
  EXPECT_FALSE(st.ok());

  // Still open: statements keep working.
  EXPECT_EQ(CountRatings(f.db.get()), base_rows + 2);

  // Retry succeeds once the device recovers, and the state is durable.
  f.data->ClearFaults();
  ASSERT_TRUE(f.db->Close().ok());
  f.db.reset();

  auto db = std::move(RecDB::Open(path)).value();
  EXPECT_EQ(CountRatings(db.get()), base_rows + 2);
  ASSERT_TRUE(db->Close().ok());
}

// --- checkpoints bound replay: reopen after checkpoint skips old records -----

TEST(RecoveryFaultTest, CheckpointedStateRecoversWithoutReplayingOldLog) {
  std::string path = TempDbPath("recdb_cp_bound.db");
  size_t base_rows = 0;
  {
    FaultDb f = OpenFaultDb(path);
    ASSERT_NE(f.db, nullptr);
    base_rows = RunCommittedPrefix(f.db.get(), 3);
    ASSERT_TRUE(f.db->Checkpoint().ok());
    // Two more committed inserts after the checkpoint, then a power cut:
    // recovery replays exactly the post-checkpoint suffix.
    ASSERT_TRUE(f.db->Execute(IncrementalInsert(3)).ok());
    ASSERT_TRUE(f.db->Execute(IncrementalInsert(4)).ok());
    Kill(&f);
  }

  auto db = std::move(RecDB::Open(path)).value();
  EXPECT_EQ(CountRatings(db.get()), base_rows + 5);
  EXPECT_TRUE(db->registry()->Get("Rec").ok());
  ASSERT_TRUE(db->Close().ok());
}

// --- recovery shares one ratings load across recommenders on a table --------

TEST(RecoveryFaultTest, RecoveryLoadsSharedRatingsTableOnce) {
  std::string path = TempDbPath("recdb_shared_load.db");
  {
    FaultDb f = OpenFaultDb(path);
    ASSERT_NE(f.db, nullptr);
    (void)RunCommittedPrefix(f.db.get(), 2);  // creates recommender "Rec"
    // A second recommender over the *same* ratings table/columns.
    ASSERT_TRUE(f.db->Execute("CREATE RECOMMENDER RecUser ON Ratings "
                              "USERS FROM uid ITEMS FROM iid RATINGS FROM "
                              "ratingval USING UserCosCF")
                    .ok());
    ASSERT_TRUE(f.db->Close().ok());
  }

  // Regression (PR 7 bugfix): recovery used to re-scan the ratings heap and
  // re-freeze a CSR once per recommender; configs sharing a table template
  // must now share one loaded matrix. One heap load == one CSR build; each
  // recommender still trains its own model.
  obs::MetricsRegistry::Global().ResetForTest();
  auto db = std::move(RecDB::Open(path)).value();
  auto snap = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(
      snap.counters[static_cast<size_t>(obs::Counter::kIngestCsrBuilds)], 1u);
  EXPECT_EQ(snap.counters[static_cast<size_t>(obs::Counter::kModelBuilds)],
            2u);

  // Both recommenders are live and trained against the recovered heap.
  auto rec_a = db->registry()->Get("Rec");
  auto rec_b = db->registry()->Get("RecUser");
  ASSERT_TRUE(rec_a.ok());
  ASSERT_TRUE(rec_b.ok());
  EXPECT_NE(rec_a.value()->model(), nullptr);
  EXPECT_NE(rec_b.value()->model(), nullptr);
  EXPECT_EQ(rec_a.value()->snapshot()->NumRatings(),
            rec_b.value()->snapshot()->NumRatings());
  EXPECT_FALSE(RecommendationsFor(db.get(), 1).empty());
  ASSERT_TRUE(db->Close().ok());
}

}  // namespace
}  // namespace recdb
