// Parser tests: every statement form in the paper's SQL listings
// (Recommenders 1-3, Queries 1-8), expression precedence, error paths.
#include <gtest/gtest.h>

#include "parser/lexer.h"
#include "parser/parser.h"

namespace recdb {
namespace {

SelectStatement* AsSelect(const StatementPtr& s) {
  EXPECT_EQ(s->kind, StatementKind::kSelect);
  return static_cast<SelectStatement*>(s.get());
}

TEST(LexerTest, BasicTokens) {
  auto r = Tokenize("SELECT a.b, 'hi ''you''' FROM t WHERE x >= 1.5e2");
  ASSERT_TRUE(r.ok());
  const auto& toks = r.value();
  EXPECT_TRUE(toks[0].IsKeyword("SELECT"));
  EXPECT_EQ(toks[1].text, "a");
  EXPECT_EQ(toks[2].type, TokenType::kDot);
  EXPECT_EQ(toks[4].type, TokenType::kComma);
  EXPECT_EQ(toks[5].type, TokenType::kStringLiteral);
  EXPECT_EQ(toks[5].text, "hi 'you'");
  EXPECT_TRUE(toks[6].IsKeyword("FROM"));
  EXPECT_EQ(toks[10].type, TokenType::kGe);
  EXPECT_EQ(toks[11].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(toks[11].double_val, 150.0);
}

TEST(LexerTest, CommentsAndCaseInsensitiveKeywords) {
  auto r = Tokenize("select -- a comment\n1");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value()[0].IsKeyword("SELECT"));
  EXPECT_EQ(r.value()[1].type, TokenType::kIntLiteral);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("select 'unterminated").ok());
  EXPECT_FALSE(Tokenize("select #").ok());
  EXPECT_FALSE(Tokenize("select !x").ok());
}

TEST(ParserTest, Query1TopTenMovies) {
  // Paper Query 1.
  auto r = Parser::ParseSingle(
      "Select R.uid, R.iid, R.ratingval From Ratings as R "
      "Recommend R.iid To R.uid On R.ratingVal Using ItemCosCF "
      "Where R.uid=1 Order By R.ratingVal Desc Limit 10");
  ASSERT_TRUE(r.ok()) << r.status();
  auto* sel = AsSelect(r.value());
  ASSERT_EQ(sel->items.size(), 3u);
  EXPECT_EQ(sel->items[0].expr->qualifier, "R");
  EXPECT_EQ(sel->items[0].expr->column, "uid");
  ASSERT_EQ(sel->from.size(), 1u);
  EXPECT_EQ(sel->from[0].table_name, "Ratings");
  EXPECT_EQ(sel->from[0].EffectiveAlias(), "R");
  ASSERT_TRUE(sel->recommend.has_value());
  EXPECT_EQ(sel->recommend->item_col->column, "iid");
  EXPECT_EQ(sel->recommend->user_col->column, "uid");
  EXPECT_EQ(sel->recommend->rating_col->column, "ratingVal");
  EXPECT_EQ(sel->recommend->algorithm.value(), "ItemCosCF");
  ASSERT_NE(sel->where, nullptr);
  ASSERT_EQ(sel->order_by.size(), 1u);
  EXPECT_TRUE(sel->order_by[0].desc);
  EXPECT_EQ(sel->limit.value(), 10);
}

TEST(ParserTest, Query3SelectionWithInList) {
  // Paper Query 3.
  auto r = Parser::ParseSingle(
      "Select R.iid, R.ratingval From Ratings as R "
      "Recommend R.iid To R.uid On R.ratingval Using ItemCosCF "
      "Where R.uid=1 And R.iid In (1,2,3,4,5)");
  ASSERT_TRUE(r.ok()) << r.status();
  auto* sel = AsSelect(r.value());
  ASSERT_NE(sel->where, nullptr);
  EXPECT_EQ(sel->where->kind, ExprKind::kBinary);
  EXPECT_EQ(sel->where->op, BinaryOp::kAnd);
  EXPECT_EQ(sel->where->right->kind, ExprKind::kInList);
  EXPECT_EQ(sel->where->right->args.size(), 5u);
}

TEST(ParserTest, Query4JoinWithGenreFilter) {
  // Paper Query 4.
  auto r = Parser::ParseSingle(
      "Select R.uid, M.name, R.ratingval From Ratings as R, Movies as M "
      "Recommend R.iid To R.uid On R.ratingval Using ItemCosCF "
      "Where R.uid=1 And M.iid = R.iid And M.genre='Action'");
  ASSERT_TRUE(r.ok()) << r.status();
  auto* sel = AsSelect(r.value());
  ASSERT_EQ(sel->from.size(), 2u);
  EXPECT_EQ(sel->from[1].EffectiveAlias(), "M");
}

TEST(ParserTest, Query6SpatialContains) {
  // Paper Query 6 (ULoc replaced by a WKT literal; see DESIGN.md).
  auto r = Parser::ParseSingle(
      "Select H.name, R.ratingval "
      "From HotelRatings as R, Hotels as H, City as C "
      "Recommend R.iid To R.uid On R.ratingVal Using ItemCosCF "
      "Where R.uid=1 AND R.iid=H.vid AND C.name = 'San Diego' "
      "AND ST_Contains(C.geom, H.geom)");
  ASSERT_TRUE(r.ok()) << r.status();
  auto* sel = AsSelect(r.value());
  ASSERT_EQ(sel->from.size(), 3u);
  // Find the function call in the AND chain.
  const Expr* e = sel->where.get();
  ASSERT_EQ(e->kind, ExprKind::kBinary);
  EXPECT_EQ(e->right->kind, ExprKind::kFunctionCall);
  EXPECT_EQ(e->right->func_name, "st_contains");
  EXPECT_EQ(e->right->args.size(), 2u);
}

TEST(ParserTest, Query8CScoreRanking) {
  // Paper Query 8.
  auto r = Parser::ParseSingle(
      "Select V.name, V.address From Ratings as R, Restaurants as V "
      "Recommend R.iid To R.uid On R.ratingVal Using UserPearCF "
      "Where R.uid=1 AND R.iid=V.vid "
      "Order By CScore(R.ratingVal, ST_Distance(V.geom, ST_Point(3.0, 4.0))) "
      "Desc Limit 3");
  ASSERT_TRUE(r.ok()) << r.status();
  auto* sel = AsSelect(r.value());
  ASSERT_EQ(sel->order_by.size(), 1u);
  EXPECT_EQ(sel->order_by[0].expr->kind, ExprKind::kFunctionCall);
  EXPECT_EQ(sel->order_by[0].expr->func_name, "cscore");
  EXPECT_TRUE(sel->order_by[0].desc);
  EXPECT_EQ(sel->limit.value(), 3);
}

TEST(ParserTest, CreateRecommenderFullForm) {
  // Paper Recommender 1 (note the paper's singular "Item From").
  auto r = Parser::ParseSingle(
      "Create Recommender GeneralRec On Ratings "
      "Users From uid Item From iid Ratings From ratingval Using ItemCosCF");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r.value()->kind, StatementKind::kCreateRecommender);
  auto* stmt = static_cast<CreateRecommenderStatement*>(r.value().get());
  EXPECT_EQ(stmt->name, "GeneralRec");
  EXPECT_EQ(stmt->ratings_table, "Ratings");
  EXPECT_EQ(stmt->user_col, "uid");
  EXPECT_EQ(stmt->item_col, "iid");
  EXPECT_EQ(stmt->rating_col, "ratingval");
  EXPECT_EQ(stmt->algorithm.value(), "ItemCosCF");
}

TEST(ParserTest, CreateRecommenderPluralItemsAndDefaultAlgo) {
  auto r = Parser::ParseSingle(
      "CREATE RECOMMENDER r ON t USERS FROM u ITEMS FROM i RATINGS FROM v");
  ASSERT_TRUE(r.ok()) << r.status();
  auto* stmt = static_cast<CreateRecommenderStatement*>(r.value().get());
  EXPECT_FALSE(stmt->algorithm.has_value());  // defaults to ItemCosCF later
}

TEST(ParserTest, DropStatements) {
  auto r1 = Parser::ParseSingle("DROP RECOMMENDER GeneralRec");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.value()->kind, StatementKind::kDropRecommender);
  auto r2 = Parser::ParseSingle("DROP TABLE movies");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value()->kind, StatementKind::kDropTable);
}

TEST(ParserTest, CreateTableAndInsert) {
  auto r = Parser::ParseSingle(
      "CREATE TABLE Movies (mid INT, name TEXT, score DOUBLE, loc GEOMETRY)");
  ASSERT_TRUE(r.ok()) << r.status();
  auto* ct = static_cast<CreateTableStatement*>(r.value().get());
  ASSERT_EQ(ct->columns.size(), 4u);
  EXPECT_EQ(ct->columns[0].first, "mid");
  EXPECT_EQ(ct->columns[3].second, "GEOMETRY");

  auto ri = Parser::ParseSingle(
      "INSERT INTO Movies VALUES (1, 'Spartacus', 4.5, 'POINT(1 2)'), "
      "(2, 'Inception', -3.5, 'POINT(0 0)')");
  ASSERT_TRUE(ri.ok()) << ri.status();
  auto* ins = static_cast<InsertStatement*>(ri.value().get());
  ASSERT_EQ(ins->rows.size(), 2u);
  ASSERT_EQ(ins->rows[0].size(), 4u);
  EXPECT_EQ(ins->rows[1][2]->literal.AsDouble(), -3.5);  // folded negation
}

TEST(ParserTest, MultiStatementScript) {
  auto r = Parser::Parse(
      "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT a FROM t;");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().size(), 3u);
}

TEST(ParserTest, ExpressionPrecedence) {
  auto r = Parser::ParseSingle("SELECT a FROM t WHERE a + 2 * 3 = 7 OR "
                               "b = 1 AND c = 2");
  ASSERT_TRUE(r.ok()) << r.status();
  auto* sel = AsSelect(r.value());
  const Expr* w = sel->where.get();
  // OR at the top; AND binds tighter.
  EXPECT_EQ(w->op, BinaryOp::kOr);
  EXPECT_EQ(w->right->op, BinaryOp::kAnd);
  // a + (2*3) on the left of '='.
  const Expr* eq = w->left.get();
  EXPECT_EQ(eq->op, BinaryOp::kEq);
  EXPECT_EQ(eq->left->op, BinaryOp::kAdd);
  EXPECT_EQ(eq->left->right->op, BinaryOp::kMul);
}

TEST(ParserTest, BetweenDesugarsToRange) {
  auto r = Parser::ParseSingle("SELECT a FROM t WHERE a BETWEEN 2 AND 5");
  ASSERT_TRUE(r.ok()) << r.status();
  const Expr* w = AsSelect(r.value())->where.get();
  EXPECT_EQ(w->op, BinaryOp::kAnd);
  EXPECT_EQ(w->left->op, BinaryOp::kGe);
  EXPECT_EQ(w->right->op, BinaryOp::kLe);
}

TEST(ParserTest, NotInList) {
  auto r = Parser::ParseSingle("SELECT a FROM t WHERE a NOT IN (1, 2)");
  ASSERT_TRUE(r.ok()) << r.status();
  const Expr* w = AsSelect(r.value())->where.get();
  EXPECT_EQ(w->kind, ExprKind::kInList);
  EXPECT_TRUE(w->negated);
}

TEST(ParserTest, StarSelect) {
  auto r = Parser::ParseSingle("SELECT * FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(AsSelect(r.value())->items[0].is_star);
}

TEST(ParserTest, ErrorPaths) {
  EXPECT_FALSE(Parser::ParseSingle("SELECT").ok());
  EXPECT_FALSE(Parser::ParseSingle("SELECT a").ok());          // missing FROM
  EXPECT_FALSE(Parser::ParseSingle("SELECT a FROM").ok());
  EXPECT_FALSE(Parser::ParseSingle("BANANA").ok());
  EXPECT_FALSE(Parser::ParseSingle("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(Parser::ParseSingle("CREATE VIEW v").ok());
  EXPECT_FALSE(Parser::ParseSingle("SELECT a FROM t WHERE a IN ()").ok());
  EXPECT_FALSE(
      Parser::ParseSingle("SELECT a FROM t RECOMMEND a TO b").ok());  // no ON
  EXPECT_FALSE(Parser::ParseSingle("").ok());
  EXPECT_FALSE(Parser::ParseSingle(";;").ok());
  // Two statements through ParseSingle must fail.
  EXPECT_FALSE(Parser::ParseSingle("SELECT a FROM t; SELECT b FROM t").ok());
}

TEST(ParserTest, ExprCloneAndToString) {
  auto r = Parser::ParseSingle(
      "SELECT a FROM t WHERE NOT (a.x IN (1, 2)) AND f(y, 'z') > -1.5");
  ASSERT_TRUE(r.ok()) << r.status();
  const Expr* w = AsSelect(r.value())->where.get();
  auto clone = w->Clone();
  EXPECT_EQ(clone->ToString(), w->ToString());
  EXPECT_NE(clone->ToString().find("IN"), std::string::npos);
  EXPECT_NE(clone->ToString().find("f(y, 'z')"), std::string::npos);
}

}  // namespace
}  // namespace recdb
