// Cache-manager tests: Algorithm 4 mechanics with a manual clock, the
// paper's Table I worked example, threshold extremes, and interaction with
// the RecScoreIndex / IndexRecommend path.
#include <gtest/gtest.h>

#include "api/recdb.h"
#include "cache/cache_manager.h"
#include "common/timer.h"

namespace recdb {
namespace {

std::unique_ptr<Recommender> MakeRec() {
  RecommenderConfig cfg;
  cfg.name = "rec";
  auto rec = std::make_unique<Recommender>(cfg);
  // 3 users x 4 items with overlap so predictions are nonzero.
  rec->AddRating(1, 1, 4);
  rec->AddRating(1, 2, 3);
  rec->AddRating(2, 1, 5);
  rec->AddRating(2, 3, 4);
  rec->AddRating(3, 2, 2);
  rec->AddRating(3, 3, 3);
  rec->AddRating(3, 4, 4);
  RECDB_DCHECK(rec->Build().ok());
  return rec;
}

TEST(CacheManagerTest, RatesAndMaximaAfterRun) {
  ManualClock clock(10);
  auto rec = MakeRec();
  CacheManager mgr(rec.get(), &clock, 0.5);

  for (int k = 0; k < 100; ++k) mgr.RecordQuery(1);
  for (int k = 0; k < 10; ++k) mgr.RecordQuery(2);
  for (int k = 0; k < 1000; ++k) mgr.RecordUpdate(4);
  for (int k = 0; k < 10; ++k) mgr.RecordUpdate(2);

  clock.Set(15);  // elapsed since init = 5
  auto d = mgr.Run();
  ASSERT_TRUE(d.ok());

  EXPECT_DOUBLE_EQ(mgr.GetUserStats(1)->demand_rate, 20.0);   // 100/5
  EXPECT_DOUBLE_EQ(mgr.GetUserStats(2)->demand_rate, 2.0);    // 10/5
  EXPECT_DOUBLE_EQ(mgr.GetItemStats(4)->consumption_rate, 200.0);
  EXPECT_DOUBLE_EQ(mgr.GetItemStats(2)->consumption_rate, 2.0);
  EXPECT_DOUBLE_EQ(mgr.max_demand(), 20.0);
  EXPECT_DOUBLE_EQ(mgr.max_consumption(), 200.0);
}

TEST(CacheManagerTest, TableIWorkedExample) {
  // Paper Table I: Alice(QC=100) & Bob(QC=10) over Spartacus(UC=1000),
  // Inception(UC=10), The Matrix(UC=100); threshold 0.5. Only
  // (Alice, Spartacus) has hotness 1 >= 0.5.
  ManualClock clock(10);
  RecommenderConfig cfg;
  cfg.name = "movies";
  Recommender rec(cfg);
  // Users 1=Alice, 2=Bob; items 1=Spartacus, 2=Inception, 3=The Matrix.
  // Seed co-ratings through a third user so predictions exist, and keep
  // all three movies unseen by Alice and Bob (as the example assumes).
  rec.AddRating(9, 1, 4);
  rec.AddRating(9, 2, 3);
  rec.AddRating(9, 3, 5);
  rec.AddRating(8, 1, 2);
  rec.AddRating(8, 2, 4);
  rec.AddRating(1, 4, 3);  // Alice rated some other movie
  rec.AddRating(2, 4, 4);  // Bob too
  ASSERT_TRUE(rec.Build().ok());

  CacheManager mgr(&rec, &clock, 0.5);
  for (int k = 0; k < 100; ++k) mgr.RecordQuery(1);   // Alice
  for (int k = 0; k < 10; ++k) mgr.RecordQuery(2);    // Bob
  for (int k = 0; k < 1000; ++k) mgr.RecordUpdate(1);  // Spartacus
  for (int k = 0; k < 10; ++k) mgr.RecordUpdate(2);    // Inception
  for (int k = 0; k < 100; ++k) mgr.RecordUpdate(3);   // The Matrix

  clock.Set(15);
  auto d = mgr.Run();
  ASSERT_TRUE(d.ok());

  // Hotness ratios from the paper's table.
  EXPECT_NEAR(mgr.Hotness(1, 1), 1.0, 1e-9);     // Alice x Spartacus
  EXPECT_NEAR(mgr.Hotness(1, 2), 0.01, 1e-9);    // Alice x Inception
  EXPECT_NEAR(mgr.Hotness(1, 3), 0.1, 1e-9);     // Alice x The Matrix
  EXPECT_NEAR(mgr.Hotness(2, 1), 0.1, 1e-9);     // Bob x Spartacus
  EXPECT_NEAR(mgr.Hotness(2, 2), 0.001, 1e-9);   // Bob x Inception
  EXPECT_NEAR(mgr.Hotness(2, 3), 0.01, 1e-9);    // Bob x The Matrix

  // Only (Alice, Spartacus) crosses the 0.5 threshold.
  ASSERT_EQ(d.value().admitted.size(), 1u);
  EXPECT_EQ(d.value().admitted[0], (std::pair<int64_t, int64_t>{1, 1}));
  EXPECT_TRUE(rec.score_index()->GetScore(1, 1).has_value());
  EXPECT_FALSE(rec.score_index()->GetScore(2, 2).has_value());
}

TEST(CacheManagerTest, ThresholdZeroMaterializesAllActivePairs) {
  ManualClock clock(0);
  auto rec = MakeRec();
  CacheManager mgr(rec.get(), &clock, 0.0);
  mgr.RecordQuery(1);
  mgr.RecordQuery(2);
  mgr.RecordUpdate(3);
  mgr.RecordUpdate(4);
  clock.Advance(5);
  auto d = mgr.Run();
  ASSERT_TRUE(d.ok());
  // User 1 hasn't rated 3 or 4; user 2 hasn't rated 4 (has rated 3).
  EXPECT_EQ(d.value().admitted.size(), 3u);
  EXPECT_TRUE(rec->score_index()->GetScore(1, 3).has_value());
  EXPECT_TRUE(rec->score_index()->GetScore(1, 4).has_value());
  EXPECT_TRUE(rec->score_index()->GetScore(2, 4).has_value());
}

TEST(CacheManagerTest, ThresholdOneEvictsEverything) {
  ManualClock clock(0);
  auto rec = MakeRec();
  rec->score_index()->Put(1, 3, 3.3);  // pre-materialized entry
  CacheManager mgr(rec.get(), &clock, 1.0001);
  mgr.RecordQuery(1);
  mgr.RecordUpdate(3);
  clock.Advance(5);
  auto d = mgr.Run();
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d.value().admitted.empty());
  ASSERT_EQ(d.value().evicted.size(), 1u);
  EXPECT_FALSE(rec->score_index()->GetScore(1, 3).has_value());
}

TEST(CacheManagerTest, SeenItemsAreNeverMaterialized) {
  ManualClock clock(0);
  auto rec = MakeRec();
  CacheManager mgr(rec.get(), &clock, 0.0);
  mgr.RecordQuery(2);
  mgr.RecordUpdate(1);  // user 2 HAS rated item 1
  clock.Advance(1);
  auto d = mgr.Run();
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(rec->score_index()->GetScore(2, 1).has_value());
}

TEST(CacheManagerTest, MaterializedScoreMatchesModel) {
  ManualClock clock(0);
  auto rec = MakeRec();
  CacheManager mgr(rec.get(), &clock, 0.0);
  mgr.RecordQuery(1);
  mgr.RecordUpdate(3);
  clock.Advance(1);
  ASSERT_TRUE(mgr.Run().ok());
  auto cached = rec->score_index()->GetScore(1, 3);
  ASSERT_TRUE(cached.has_value());
  EXPECT_DOUBLE_EQ(*cached, rec->model()->Predict(1, 3));
}

TEST(CacheManagerTest, FormerlyHotPairCoolsBelowThresholdAndIsEvicted) {
  // Lifetime-counter rates could only decay while maxima never decreased,
  // so a pair that was hot once stayed materialized forever. With windowed
  // rates a quiet user drops to zero demand and the stale sweep evicts the
  // pair, while the maxima track the *current* peak.
  ManualClock clock(0);
  auto rec = MakeRec();
  CacheManager mgr(rec.get(), &clock, 0.5);

  // Window 1: user 1 and item 4 are the only activity — hotness(1,4) = 1.
  for (int k = 0; k < 100; ++k) mgr.RecordQuery(1);
  for (int k = 0; k < 50; ++k) mgr.RecordUpdate(4);
  clock.Advance(5);
  auto d1 = mgr.Run();
  ASSERT_TRUE(d1.ok());
  ASSERT_EQ(d1.value().admitted.size(), 1u);
  EXPECT_EQ(d1.value().admitted[0], (std::pair<int64_t, int64_t>{1, 4}));
  ASSERT_TRUE(rec->score_index()->GetScore(1, 4).has_value());
  EXPECT_DOUBLE_EQ(mgr.max_demand(), 20.0);       // 100 / 5
  EXPECT_DOUBLE_EQ(mgr.max_consumption(), 10.0);  // 50 / 5

  // Window 2: user 1 and item 4 go silent; user 2 / item 3 take over.
  for (int k = 0; k < 10; ++k) mgr.RecordQuery(2);
  for (int k = 0; k < 5; ++k) mgr.RecordUpdate(3);
  clock.Advance(5);
  auto d2 = mgr.Run();
  ASSERT_TRUE(d2.ok());

  // The maxima now reflect the current window, not the all-time peak.
  EXPECT_DOUBLE_EQ(mgr.max_demand(), 2.0);       // 10 / 5
  EXPECT_DOUBLE_EQ(mgr.max_consumption(), 1.0);  // 5 / 5
  EXPECT_DOUBLE_EQ(mgr.GetUserStats(1)->demand_rate, 0.0);
  EXPECT_DOUBLE_EQ(mgr.GetItemStats(4)->consumption_rate, 0.0);

  // (1, 4) was not in the active x active pass this window, but the stale
  // sweep re-examined it under the fresh rates and evicted it.
  EXPECT_FALSE(rec->score_index()->GetScore(1, 4).has_value());
  bool evicted_1_4 = false;
  for (const auto& p : d2.value().evicted) {
    if (p == std::pair<int64_t, int64_t>(1, 4)) evicted_1_4 = true;
  }
  EXPECT_TRUE(evicted_1_4);
}

TEST(CacheManagerTest, FullyIdleWindowEvictsNothing) {
  ManualClock clock(0);
  auto rec = MakeRec();
  CacheManager mgr(rec.get(), &clock, 0.5);
  for (int k = 0; k < 10; ++k) mgr.RecordQuery(1);
  for (int k = 0; k < 10; ++k) mgr.RecordUpdate(4);
  clock.Advance(5);
  ASSERT_TRUE(mgr.Run().ok());
  ASSERT_TRUE(rec->score_index()->GetScore(1, 4).has_value());

  // Nothing at all happened in this window: no evidence, no eviction.
  clock.Advance(5);
  auto d = mgr.Run();
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d.value().evicted.empty());
  EXPECT_TRUE(rec->score_index()->GetScore(1, 4).has_value());
}

TEST(CacheManagerTest, EndToEndThroughRecDB) {
  // Queries through SQL populate the demand histogram; inserts populate the
  // consumption histogram; Run() then materializes and IndexRecommend hits.
  ManualClock clock(0);
  RecDB db;
  db.set_clock(&clock);
  ASSERT_TRUE(
      db.Execute("CREATE TABLE Ratings (uid INT, iid INT, ratingval DOUBLE)")
          .ok());
  // Deterministic ratings: user u rates items u .. u+5 (within 1..15), so
  // user 1 rates items 1-6 and is guaranteed not to have rated item 10.
  std::vector<std::vector<Value>> rows;
  for (int u = 1; u <= 10; ++u) {
    for (int k = 0; k < 6; ++k) {
      int item = (u + k - 1) % 15 + 1;
      rows.push_back({Value::Int(u), Value::Int(item),
                      Value::Double((u + k) % 5 + 1)});
    }
  }
  ASSERT_TRUE(db.BulkInsert("Ratings", rows).ok());
  ASSERT_TRUE(db.Execute("CREATE RECOMMENDER r ON Ratings USERS FROM uid "
                         "ITEMS FROM iid RATINGS FROM ratingval")
                  .ok());
  auto mgr = db.GetCacheManager("r", /*hotness_threshold=*/0.0);
  ASSERT_TRUE(mgr.ok());

  // Materialize an unrelated user so the IndexRecommend rewrite fires
  // (empty index suppresses it), and force the operator past the cost pass
  // so the first query for the still-uncached user 1 records a miss.
  {
    auto r = db.GetRecommender("r");
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.value()->MaterializeUser(5).ok());
  }
  db.mutable_planner_options()->enable_cost_based = false;

  const std::string q =
      "SELECT R.iid, R.ratingval FROM Ratings AS R "
      "RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF "
      "WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 5";
  auto before = db.Execute(q);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().stats.index_misses, 1u);  // nothing cached yet
  ASSERT_TRUE(db.Execute("INSERT INTO Ratings VALUES (9, 10, 4.0)").ok());

  clock.Advance(10);
  ASSERT_TRUE(mgr.value()->Run().ok());

  auto rec = db.GetRecommender("r");
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(rec.value()->score_index()->HasUser(1));

  auto after = db.Execute(q);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().stats.index_hits, 1u);
}

}  // namespace
}  // namespace recdb
