// Statistics subsystem tests: histogram construction and interpolation,
// selectivity estimation edge cases (empty table, single-value column,
// NULL-heavy column), ANALYZE staleness behaviour, serialization
// round-trips, and persistence of statistics across Close/Open.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "api/recdb.h"
#include "stats/analyzer.h"
#include "stats/table_stats.h"

namespace recdb {
namespace {

// --- Histogram ---

TEST(HistogramTest, EmptyInputYieldsEmptyHistogram) {
  Histogram h = Histogram::Build({});
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.FractionBelow(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.FractionEqual(0.0), 0.0);
}

TEST(HistogramTest, SingleValueColumnUsesOneBucket) {
  Histogram h = Histogram::Build({5.0, 5.0, 5.0, 5.0});
  ASSERT_FALSE(h.empty());
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  ASSERT_EQ(h.buckets().size(), 1u);
  EXPECT_EQ(h.buckets()[0], 4u);
  // No division by the zero-width range.
  EXPECT_DOUBLE_EQ(h.FractionBelow(5.0), 0.0);
  EXPECT_DOUBLE_EQ(h.FractionBelow(6.0), 1.0);
  EXPECT_DOUBLE_EQ(h.FractionEqual(5.0), 1.0);
  EXPECT_DOUBLE_EQ(h.FractionEqual(4.0), 0.0);
}

TEST(HistogramTest, UniformValuesInterpolateLinearly) {
  std::vector<double> vals;
  for (int i = 0; i < 1000; ++i) vals.push_back(static_cast<double>(i));
  Histogram h = Histogram::Build(vals);
  EXPECT_EQ(h.total(), 1000u);
  EXPECT_NEAR(h.FractionBelow(250.0), 0.25, 0.05);
  EXPECT_NEAR(h.FractionBelow(750.0), 0.75, 0.05);
  EXPECT_DOUBLE_EQ(h.FractionBelow(-10.0), 0.0);
  EXPECT_DOUBLE_EQ(h.FractionBelow(5000.0), 1.0);
}

TEST(HistogramTest, SerializeRoundTrips) {
  Histogram h = Histogram::Build({1.0, 2.0, 2.0, 3.0, 9.0});
  ByteWriter w;
  h.Serialize(&w);
  ByteReader r(w.bytes());
  auto back = Histogram::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back.value().min(), h.min());
  EXPECT_DOUBLE_EQ(back.value().max(), h.max());
  EXPECT_EQ(back.value().total(), h.total());
  EXPECT_EQ(back.value().buckets(), h.buckets());
}

// --- ColumnStats selectivities ---

TEST(ColumnStatsTest, EmptyTableNeverDividesByZero) {
  ColumnStats c;  // num_rows == 0
  EXPECT_DOUBLE_EQ(c.NonNullFraction(), 1.0);
  // Any selectivity is fine on 0 rows (0 * anything == 0); it must just be
  // finite and in range.
  for (double s : {c.EqSelectivity(), c.InListSelectivity(5),
                   c.RangeSelectivity(BinaryOp::kLt, 3.0)}) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(ColumnStatsTest, SingleValueColumnSelectivities) {
  ColumnStats c;
  c.num_rows = 100;
  c.distinct_count = 1;
  c.has_range = true;
  c.min = c.max = 7.0;
  c.histogram = Histogram::Build(std::vector<double>(100, 7.0));
  EXPECT_DOUBLE_EQ(c.EqSelectivity(), 1.0);
  EXPECT_DOUBLE_EQ(c.RangeSelectivity(BinaryOp::kLt, 7.0), 0.0);
  EXPECT_DOUBLE_EQ(c.RangeSelectivity(BinaryOp::kLe, 7.0), 1.0);
  EXPECT_DOUBLE_EQ(c.RangeSelectivity(BinaryOp::kGt, 7.0), 0.0);
  EXPECT_DOUBLE_EQ(c.RangeSelectivity(BinaryOp::kGe, 7.0), 1.0);
}

TEST(ColumnStatsTest, NullHeavyColumnScalesByNonNullFraction) {
  ColumnStats c;
  c.num_rows = 100;
  c.null_count = 90;
  c.distinct_count = 10;
  EXPECT_DOUBLE_EQ(c.NonNullFraction(), 0.1);
  // = over 10 distinct among the 10% non-null rows.
  EXPECT_DOUBLE_EQ(c.EqSelectivity(), 0.01);
  EXPECT_LE(c.InListSelectivity(1000), 1.0);  // capped
  // All-null column: estimators stay finite with distinct_count == 0.
  ColumnStats all_null;
  all_null.num_rows = 50;
  all_null.null_count = 50;
  EXPECT_TRUE(std::isfinite(all_null.EqSelectivity()));
  EXPECT_TRUE(
      std::isfinite(all_null.RangeSelectivity(BinaryOp::kGt, 1.0)));
}

TEST(ColumnStatsTest, SerializeRoundTrips) {
  ColumnStats c;
  c.num_rows = 42;
  c.null_count = 7;
  c.distinct_count = 12;
  c.has_range = true;
  c.min = -3.5;
  c.max = 19.25;
  c.histogram = Histogram::Build({-3.5, 0.0, 1.0, 19.25});
  ByteWriter w;
  c.Serialize(&w);
  ByteReader r(w.bytes());
  auto back = ColumnStats::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_rows, c.num_rows);
  EXPECT_EQ(back.value().null_count, c.null_count);
  EXPECT_EQ(back.value().distinct_count, c.distinct_count);
  EXPECT_TRUE(back.value().has_range);
  EXPECT_DOUBLE_EQ(back.value().min, c.min);
  EXPECT_DOUBLE_EQ(back.value().max, c.max);
  ASSERT_TRUE(back.value().histogram.has_value());
  EXPECT_EQ(back.value().histogram->total(), 4u);
}

// --- ANALYZE through the engine ---

class AnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<RecDB>();
    Exec("CREATE TABLE T (a INT, b DOUBLE, c TEXT)");
  }

  ResultSet Exec(const std::string& sql) {
    auto r = db_->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    if (!r.ok()) return ResultSet{};
    return std::move(r).value();
  }

  const TableStats& Stats() {
    auto t = db_->catalog()->GetTable("T");
    EXPECT_TRUE(t.ok());
    EXPECT_TRUE(t.value()->stats.has_value());
    return *t.value()->stats;
  }

  std::unique_ptr<RecDB> db_;
};

TEST_F(AnalyzeTest, EmptyTableAnalyzesCleanly) {
  Exec("ANALYZE T");
  EXPECT_EQ(Stats().row_count, 0u);
  ASSERT_EQ(Stats().columns.size(), 3u);
  EXPECT_EQ(Stats().columns[0].distinct_count, 0u);
  EXPECT_FALSE(Stats().columns[0].has_range);
}

TEST_F(AnalyzeTest, CollectsNullsDistinctsAndRanges) {
  std::vector<std::vector<Value>> rows;
  for (int i = 1; i <= 10; ++i) {
    rows.push_back({Value::Int(i % 3),
                    i % 2 == 0 ? Value::Null() : Value::Double(i * 0.5),
                    Value::String(i <= 5 ? "x" : "y")});
  }
  ASSERT_TRUE(db_->BulkInsert("T", rows).ok());
  Exec("ANALYZE T");
  const TableStats& s = Stats();
  EXPECT_EQ(s.row_count, 10u);
  EXPECT_EQ(s.columns[0].distinct_count, 3u);  // 0, 1, 2
  EXPECT_EQ(s.columns[1].null_count, 5u);
  EXPECT_TRUE(s.columns[1].has_range);
  EXPECT_DOUBLE_EQ(s.columns[1].min, 0.5);
  EXPECT_DOUBLE_EQ(s.columns[1].max, 4.5);
  // TEXT column: distinct count but no numeric range or histogram.
  EXPECT_EQ(s.columns[2].distinct_count, 2u);
  EXPECT_FALSE(s.columns[2].has_range);
  EXPECT_FALSE(s.columns[2].histogram.has_value());
}

TEST_F(AnalyzeTest, StatsAreStaleUntilReanalyzed) {
  Exec("INSERT INTO T VALUES (1, 1.0, 'a')");
  Exec("ANALYZE T");
  EXPECT_EQ(Stats().row_count, 1u);
  // New inserts do not touch the snapshot until the next ANALYZE; the
  // planner keeps working off the stale (but internally consistent) stats.
  Exec("INSERT INTO T VALUES (2, 2.0, 'b')");
  Exec("INSERT INTO T VALUES (3, 3.0, 'c')");
  EXPECT_EQ(Stats().row_count, 1u);
  EXPECT_EQ(Stats().columns[0].distinct_count, 1u);
  Exec("ANALYZE");  // bare ANALYZE covers every table
  EXPECT_EQ(Stats().row_count, 3u);
  EXPECT_EQ(Stats().columns[0].distinct_count, 3u);
}

TEST_F(AnalyzeTest, AnalyzeUnknownTableFails) {
  auto r = db_->Execute("ANALYZE NoSuchTable");
  EXPECT_FALSE(r.ok());
}

TEST(StatsPersistenceTest, StatsSurviveCloseAndReopen) {
  std::string path = ::testing::TempDir() + "recdb_stats_persist.db";
  std::remove(path.c_str());
  {
    auto db_or = RecDB::Open(path);
    ASSERT_TRUE(db_or.ok()) << db_or.status();
    auto db = std::move(db_or).value();
    ASSERT_TRUE(
        db->Execute("CREATE TABLE S (k INT, v DOUBLE)").ok());
    std::vector<std::vector<Value>> rows;
    for (int i = 0; i < 25; ++i) {
      rows.push_back({Value::Int(i % 5), Value::Double(i)});
    }
    ASSERT_TRUE(db->BulkInsert("S", rows).ok());
    ASSERT_TRUE(db->Execute("ANALYZE S").ok());
    Status st = db->Close();
    ASSERT_TRUE(st.ok()) << st;
  }
  auto db_or = RecDB::Open(path);
  ASSERT_TRUE(db_or.ok()) << db_or.status();
  auto db = std::move(db_or).value();
  auto table = db->catalog()->GetTable("S");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(table.value()->stats.has_value());
  const TableStats& s = *table.value()->stats;
  EXPECT_EQ(s.row_count, 25u);
  ASSERT_EQ(s.columns.size(), 2u);
  EXPECT_EQ(s.columns[0].distinct_count, 5u);
  EXPECT_DOUBLE_EQ(s.columns[1].min, 0.0);
  EXPECT_DOUBLE_EQ(s.columns[1].max, 24.0);
  ASSERT_TRUE(s.columns[1].histogram.has_value());
  EXPECT_EQ(s.columns[1].histogram->total(), 25u);
  ASSERT_TRUE(db->Close().ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace recdb
