// End-to-end SQL tests through the RecDB facade: DDL/DML, the paper's
// query shapes (Queries 1-8), operator-equivalence oracles (FilterRecommend
// vs Recommend+Filter, IndexRecommend vs Sort+Limit, JoinRecommend vs join).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "api/recdb.h"
#include "common/rng.h"

namespace recdb {
namespace {

/// Fixture with the movie schema of paper Figure 1 plus a synthetic rating
/// workload large enough for neighborhoods to be meaningful.
class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<RecDB>();
    Exec("CREATE TABLE Users (uid INT, name TEXT, city TEXT, age INT)");
    Exec(
        "CREATE TABLE Movies (mid INT, name TEXT, director TEXT, genre "
        "TEXT)");
    Exec("CREATE TABLE Ratings (uid INT, iid INT, ratingval DOUBLE)");

    // 30 users x 40 movies, ~12 ratings per user, deterministic.
    Rng rng(123);
    std::vector<std::vector<Value>> users, movies, ratings;
    for (int u = 1; u <= 30; ++u) {
      users.push_back({Value::Int(u), Value::String("user" + std::to_string(u)),
                       Value::String(u % 2 ? "Minneapolis" : "Austin"),
                       Value::Int(18 + u)});
    }
    for (int m = 1; m <= 40; ++m) {
      movies.push_back(
          {Value::Int(m), Value::String("movie" + std::to_string(m)),
           Value::String("director" + std::to_string(m % 7)),
           Value::String(m % 3 == 0 ? "Action" : (m % 3 == 1 ? "Drama"
                                                             : "Sci-Fi"))});
    }
    std::set<std::pair<int, int>> seen;
    for (int u = 1; u <= 30; ++u) {
      for (int k = 0; k < 12; ++k) {
        int m = static_cast<int>(rng.UniformInt(1, 40));
        if (!seen.insert({u, m}).second) continue;
        ratings.push_back({Value::Int(u), Value::Int(m),
                           Value::Double(rng.UniformInt(1, 5))});
      }
    }
    ASSERT_TRUE(db_->BulkInsert("Users", users).ok());
    ASSERT_TRUE(db_->BulkInsert("Movies", movies).ok());
    ASSERT_TRUE(db_->BulkInsert("Ratings", ratings).ok());

    Exec(
        "CREATE RECOMMENDER GeneralRec ON Ratings USERS FROM uid "
        "ITEMS FROM iid RATINGS FROM ratingval USING ItemCosCF");
  }

  ResultSet Exec(const std::string& sql) {
    auto r = db_->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    if (!r.ok()) return ResultSet{};
    return std::move(r).value();
  }

  std::unique_ptr<RecDB> db_;
};

TEST_F(EngineTest, BasicSelectFilterProject) {
  auto rs = Exec("SELECT name, age FROM Users WHERE age > 40 ORDER BY age");
  ASSERT_EQ(rs.columns, (std::vector<std::string>{"name", "age"}));
  ASSERT_FALSE(rs.rows.empty());
  int64_t prev = 0;
  for (const auto& row : rs.rows) {
    EXPECT_GT(row.At(1).AsInt(), 40);
    EXPECT_GE(row.At(1).AsInt(), prev);
    prev = row.At(1).AsInt();
  }
}

TEST_F(EngineTest, SelectStar) {
  auto rs = Exec("SELECT * FROM Movies WHERE mid = 7");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.columns.size(), 4u);
  EXPECT_EQ(rs.At(0, 1).AsString(), "movie7");
}

TEST_F(EngineTest, JoinTwoTables) {
  auto rs = Exec(
      "SELECT U.name, R.iid FROM Users U, Ratings R "
      "WHERE U.uid = R.uid AND U.uid = 3");
  ASSERT_FALSE(rs.rows.empty());
  for (const auto& row : rs.rows) {
    EXPECT_EQ(row.At(0).AsString(), "user3");
  }
  // Count must equal user 3's rating count.
  auto direct = Exec("SELECT uid FROM Ratings WHERE uid = 3");
  EXPECT_EQ(rs.NumRows(), direct.NumRows());
}

TEST_F(EngineTest, RecommendQueryReturnsUnseenItemsOnly) {
  auto rs = Exec(
      "SELECT R.uid, R.iid, R.ratingval FROM Ratings AS R "
      "RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF "
      "WHERE R.uid = 1");
  ASSERT_FALSE(rs.rows.empty());
  auto rated = Exec("SELECT iid FROM Ratings WHERE uid = 1");
  std::set<int64_t> rated_items;
  for (const auto& row : rated.rows) rated_items.insert(row.At(0).AsInt());
  for (const auto& row : rs.rows) {
    EXPECT_EQ(row.At(0).AsInt(), 1);
    EXPECT_EQ(rated_items.count(row.At(1).AsInt()), 0u)
        << "rated item leaked into recommendations";
  }
  EXPECT_EQ(rs.NumRows(), 40 - rated_items.size());
}

TEST_F(EngineTest, RecommendScoresMatchModelOracle) {
  auto rs = Exec(
      "SELECT R.iid, R.ratingval FROM Ratings AS R "
      "RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF "
      "WHERE R.uid = 5");
  auto rec = db_->GetRecommender("GeneralRec");
  ASSERT_TRUE(rec.ok());
  const RecModel* model = rec.value()->model();
  ASSERT_NE(model, nullptr);
  ASSERT_FALSE(rs.rows.empty());
  for (const auto& row : rs.rows) {
    double oracle = model->Predict(5, row.At(0).AsInt());
    EXPECT_DOUBLE_EQ(row.At(1).AsDouble(), oracle);
  }
}

TEST_F(EngineTest, Query1TopTen) {
  auto rs = Exec(
      "SELECT R.uid, R.iid, R.ratingval FROM Ratings AS R "
      "RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF "
      "WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 10");
  ASSERT_EQ(rs.NumRows(), 10u);
  for (size_t i = 1; i < rs.NumRows(); ++i) {
    EXPECT_GE(rs.At(i - 1, 2).AsDouble(), rs.At(i, 2).AsDouble());
  }
}

TEST_F(EngineTest, FilterRecommendEquivalentToPostFilter) {
  // The optimizer's pushdown must not change results: compare against a run
  // with FilterRecommend disabled.
  const std::string sql =
      "SELECT R.iid, R.ratingval FROM Ratings AS R "
      "RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF "
      "WHERE R.uid = 2 AND R.iid IN (1,2,3,4,5,6,7,8) "
      "ORDER BY R.iid";
  auto optimized = Exec(sql);
  db_->mutable_planner_options()->enable_filter_recommend = false;
  db_->mutable_planner_options()->enable_index_recommend = false;
  auto naive = Exec(sql);
  db_->mutable_planner_options()->enable_filter_recommend = true;
  db_->mutable_planner_options()->enable_index_recommend = true;
  ASSERT_EQ(optimized.NumRows(), naive.NumRows());
  for (size_t i = 0; i < optimized.NumRows(); ++i) {
    EXPECT_EQ(optimized.At(i, 0).AsInt(), naive.At(i, 0).AsInt());
    EXPECT_DOUBLE_EQ(optimized.At(i, 1).AsDouble(),
                     naive.At(i, 1).AsDouble());
  }
  // And it must actually prune work.
  EXPECT_LT(optimized.stats.predictions, naive.stats.predictions);
}

TEST_F(EngineTest, FilterRecommendPlanIsChosen) {
  auto plan = db_->Explain(
      "SELECT R.iid FROM Ratings AS R "
      "RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF "
      "WHERE R.uid = 1 AND R.iid IN (1,2,3)");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan.value().find("FilterRecommend"), std::string::npos)
      << plan.value();
}

TEST_F(EngineTest, Query4JoinRecommendMatchesNaiveJoin) {
  const std::string sql =
      "SELECT R.uid, M.name, R.ratingval FROM Ratings AS R, Movies AS M "
      "RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF "
      "WHERE R.uid = 1 AND M.mid = R.iid AND M.genre = 'Action' "
      "ORDER BY M.name";
  auto optimized = Exec(sql);
  auto plan = db_->Explain(sql);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan.value().find("JoinRecommend"), std::string::npos)
      << plan.value();

  db_->mutable_planner_options()->enable_join_recommend = false;
  auto naive = Exec(sql);
  db_->mutable_planner_options()->enable_join_recommend = true;

  ASSERT_EQ(optimized.NumRows(), naive.NumRows());
  ASSERT_FALSE(optimized.rows.empty());
  for (size_t i = 0; i < optimized.NumRows(); ++i) {
    EXPECT_EQ(optimized.At(i, 1).AsString(), naive.At(i, 1).AsString());
    EXPECT_DOUBLE_EQ(optimized.At(i, 2).AsDouble(),
                     naive.At(i, 2).AsDouble());
  }
  EXPECT_LE(optimized.stats.predictions, naive.stats.predictions);
}

TEST_F(EngineTest, IndexRecommendServesMaterializedScores) {
  auto rec = db_->GetRecommender("GeneralRec");
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(rec.value()->MaterializeAll().ok());

  const std::string sql =
      "SELECT R.iid, R.ratingval FROM Ratings AS R "
      "RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF "
      "WHERE R.uid = 7 ORDER BY R.ratingval DESC LIMIT 5";
  auto plan = db_->Explain(sql);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan.value().find("IndexRecommend"), std::string::npos)
      << plan.value();

  auto indexed = Exec(sql);
  EXPECT_EQ(indexed.stats.index_hits, 1u);
  EXPECT_EQ(indexed.stats.predictions, 0u);  // no model work at query time

  db_->mutable_planner_options()->enable_index_recommend = false;
  auto computed = Exec(sql);
  db_->mutable_planner_options()->enable_index_recommend = true;

  ASSERT_EQ(indexed.NumRows(), computed.NumRows());
  for (size_t i = 0; i < indexed.NumRows(); ++i) {
    EXPECT_EQ(indexed.At(i, 0).AsInt(), computed.At(i, 0).AsInt());
    EXPECT_DOUBLE_EQ(indexed.At(i, 1).AsDouble(),
                     computed.At(i, 1).AsDouble());
  }
}

TEST_F(EngineTest, IndexRecommendFallsBackOnCacheMiss) {
  // The queried user is NOT materialized: IndexRecommend must fall back to
  // the model and still answer correctly. Materialize a different user so
  // the index is non-empty (an empty index suppresses the rewrite) and
  // force the operator past the cost pass, which would otherwise decline
  // it at zero coverage of user 9.
  auto rec = db_->GetRecommender("GeneralRec");
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(rec.value()->MaterializeUser(3).ok());
  db_->mutable_planner_options()->enable_cost_based = false;

  const std::string sql =
      "SELECT R.iid, R.ratingval FROM Ratings AS R "
      "RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF "
      "WHERE R.uid = 9 ORDER BY R.ratingval DESC LIMIT 5";
  auto indexed = Exec(sql);
  db_->mutable_planner_options()->enable_cost_based = true;
  EXPECT_EQ(indexed.stats.index_misses, 1u);
  EXPECT_GT(indexed.stats.predictions, 0u);
  ASSERT_EQ(indexed.NumRows(), 5u);
  for (size_t i = 1; i < indexed.NumRows(); ++i) {
    EXPECT_GE(indexed.At(i - 1, 1).AsDouble(), indexed.At(i, 1).AsDouble());
  }
}

TEST_F(EngineTest, MultipleAlgorithmsCoexist) {
  Exec(
      "CREATE RECOMMENDER SvdRec ON Ratings USERS FROM uid ITEMS FROM iid "
      "RATINGS FROM ratingval USING SVD");
  auto cos = Exec(
      "SELECT R.iid, R.ratingval FROM Ratings AS R "
      "RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF "
      "WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 3");
  auto svd = Exec(
      "SELECT R.iid, R.ratingval FROM Ratings AS R "
      "RECOMMEND R.iid TO R.uid ON R.ratingval USING SVD "
      "WHERE R.uid = 1 ORDER BY R.ratingval DESC LIMIT 3");
  ASSERT_EQ(cos.NumRows(), 3u);
  ASSERT_EQ(svd.NumRows(), 3u);
}

TEST_F(EngineTest, RecommendWithoutRecommenderFails) {
  auto r = db_->Execute(
      "SELECT R.iid FROM Ratings AS R "
      "RECOMMEND R.iid TO R.uid ON R.ratingval USING UserPearCF");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(EngineTest, DropRecommender) {
  Exec("DROP RECOMMENDER GeneralRec");
  auto r = db_->Execute(
      "SELECT R.iid FROM Ratings AS R "
      "RECOMMEND R.iid TO R.uid ON R.ratingval USING ItemCosCF");
  EXPECT_FALSE(r.ok());
}

TEST_F(EngineTest, InsertFeedsRecommenderPendingUpdates) {
  auto rec = db_->GetRecommender("GeneralRec");
  ASSERT_TRUE(rec.ok());
  size_t before = rec.value()->pending_updates();
  Exec("INSERT INTO Ratings VALUES (1, 40, 5.0)");
  EXPECT_EQ(rec.value()->pending_updates(), before + 1);
}

TEST_F(EngineTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(db_->Execute("SELECT nope FROM Users").ok());
  EXPECT_FALSE(db_->Execute("SELECT name FROM NoSuchTable").ok());
  EXPECT_FALSE(db_->Execute("INSERT INTO Users VALUES (1)").ok());
  EXPECT_FALSE(
      db_->Execute("CREATE TABLE Users (uid INT)").ok());  // duplicate
  EXPECT_FALSE(db_->Execute(
                     "CREATE RECOMMENDER R2 ON Ratings USERS FROM bogus "
                     "ITEMS FROM iid RATINGS FROM ratingval")
                   .ok());
  // Ambiguous unqualified column across a join.
  EXPECT_FALSE(
      db_->Execute("SELECT uid FROM Users U, Ratings R WHERE U.uid = R.uid")
          .ok());
}

TEST_F(EngineTest, LimitZeroAndLargeLimit) {
  auto zero = Exec("SELECT name FROM Users ORDER BY uid LIMIT 0");
  EXPECT_EQ(zero.NumRows(), 0u);
  auto large = Exec("SELECT name FROM Users ORDER BY uid LIMIT 10000");
  EXPECT_EQ(large.NumRows(), 30u);
}

TEST_F(EngineTest, ArithmeticAndFunctionsInProjection) {
  auto rs = Exec("SELECT age + 2, age * 2, ABS(0 - age) FROM Users "
                 "WHERE uid = 1");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.At(0, 0).AsInt(), 21);
  EXPECT_EQ(rs.At(0, 1).AsInt(), 38);
  EXPECT_EQ(rs.At(0, 2).AsInt(), 19);
}

}  // namespace
}  // namespace recdb
