// Observability tests:
//  - MetricsRegistry: counter/gauge/histogram updates are exact under
//    8-thread concurrent hammering (snapshot totals equal the sums).
//  - Histogram bucket boundaries are upper-inclusive on the 1-2-5 series
//    with a trailing overflow bucket; quantiles interpolate sanely.
//  - Tracer spans nest via the begin/end stack, AttachPlan materializes one
//    span per plan node, and Finish() closes unbalanced spans.
//  - MetricsJson() round-trips through a strict JSON parse and carries the
//    full metric inventory of obs/metric_names.h.
//  - The trace-off executor path and metric update paths allocate nothing
//    (global operator new is instrumented below).
//  - ExecStats commit-on-success: a JoinRecommend outer error mid-window
//    must not leave partially-counted probes behind (re-Init + re-run ends
//    with the same stats as a clean run).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "api/recdb.h"
#include "execution/recommend_executors.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "planner/plan_node.h"

// ------------------------------------------------- allocation instrumentation
//
// Counts every global operator new so the trace-off hot path can assert it
// allocates nothing. Deletes intentionally uncounted — only news matter.

static std::atomic<uint64_t> g_news{0};

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace recdb {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;

// ------------------------------------------------------------ MetricsRegistry

TEST(MetricsRegistryTest, CountersGaugesHistogramsSnapshot) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.ResetForTest();
  reg.Add(Counter::kQueryStatements);
  reg.Add(Counter::kQueryStatements, 4);
  reg.GaugeSet(Gauge::kSchedulerThreads, 7);
  reg.GaugeAdd(Gauge::kSchedulerThreads, -2);
  reg.Observe(Histogram::kQueryLatencyUs, 15);
  auto snap = reg.Snapshot();
  EXPECT_EQ(snap.counters[static_cast<size_t>(Counter::kQueryStatements)], 5u);
  EXPECT_EQ(snap.gauges[static_cast<size_t>(Gauge::kSchedulerThreads)], 5);
  const auto& h =
      snap.histograms[static_cast<size_t>(Histogram::kQueryLatencyUs)];
  EXPECT_EQ(h.count, 1u);
  EXPECT_EQ(h.sum_us, 15u);
}

TEST(MetricsRegistryTest, SnapshotIsExactUnderEightThreads) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.ResetForTest();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        reg.Add(Counter::kExecPredictions);
        reg.GaugeAdd(Gauge::kRecIndexEntries, 1);
        reg.Observe(Histogram::kCacheRunUs, i % 7);
      }
    });
  }
  for (auto& t : threads) t.join();
  auto snap = reg.Snapshot();
  constexpr uint64_t kTotal = kThreads * kPerThread;
  EXPECT_EQ(snap.counters[static_cast<size_t>(Counter::kExecPredictions)],
            kTotal);
  EXPECT_EQ(snap.gauges[static_cast<size_t>(Gauge::kRecIndexEntries)],
            static_cast<int64_t>(kTotal));
  const auto& h = snap.histograms[static_cast<size_t>(Histogram::kCacheRunUs)];
  EXPECT_EQ(h.count, kTotal);
  uint64_t bucket_sum = 0;
  for (uint64_t b : h.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, kTotal) << "every observation must land in a bucket";
}

TEST(MetricsRegistryTest, HistogramBucketBoundsAreUpperInclusive) {
  // Exact bound values stay in their bucket; bound+1 rolls into the next.
  for (size_t i = 0; i < obs::kNumHistogramBounds; ++i) {
    EXPECT_EQ(MetricsRegistry::BucketIndex(obs::kHistogramBoundsUs[i]), i)
        << "value " << obs::kHistogramBoundsUs[i]
        << " must land in its own bucket (upper-inclusive)";
    EXPECT_EQ(MetricsRegistry::BucketIndex(obs::kHistogramBoundsUs[i] + 1),
              i + 1);
  }
  EXPECT_EQ(MetricsRegistry::BucketIndex(0), 0u);
  // Everything past the last bound falls into the overflow bucket.
  EXPECT_EQ(MetricsRegistry::BucketIndex(UINT64_MAX),
            obs::kNumHistogramBounds);
}

TEST(MetricsRegistryTest, HistogramQuantilesInterpolate) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.ResetForTest();
  // 100 observations of 8us each land in the (5, 10] bucket.
  for (int i = 0; i < 100; ++i) reg.Observe(Histogram::kModelTrainUs, 8);
  auto snap = reg.Snapshot();
  const auto& h = snap.histograms[static_cast<size_t>(Histogram::kModelTrainUs)];
  EXPECT_EQ(h.count, 100u);
  double p50 = h.Quantile(0.5);
  EXPECT_GT(p50, 5.0);
  EXPECT_LE(p50, 10.0);
  EXPECT_LE(h.Quantile(0.1), h.Quantile(0.9));
  // Empty histogram: quantiles degrade to 0.
  EXPECT_EQ(snap.histograms[static_cast<size_t>(Histogram::kQueryLatencyUs)]
                .Quantile(0.5),
            0.0);
}

// ------------------------------------------------------- minimal JSON parser
//
// Just enough JSON (objects, arrays, strings, numbers, bools, null) to prove
// MetricsJson() emits strictly parseable output, with a DOM small enough to
// assert on. Not for production use.

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<std::pair<std::string, JsonValue>> obj;
  std::vector<JsonValue> arr;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool Parse(JsonValue* out) {
    bool ok = ParseValue(out);
    SkipWs();
    return ok && pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                                s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (++pos_ >= s_.size()) return false;
      }
      out->push_back(s_[pos_++]);
    }
    return pos_ < s_.size() && s_[pos_++] == '"';
  }
  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::kObject;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        std::string key;
        SkipWs();
        if (!ParseString(&key) || !Consume(':')) return false;
        JsonValue v;
        if (!ParseValue(&v)) return false;
        out->obj.emplace_back(std::move(key), std::move(v));
        if (Consume(',')) continue;
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::kArray;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue v;
        if (!ParseValue(&v)) return false;
        out->arr.push_back(std::move(v));
        if (Consume(',')) continue;
        return Consume(']');
      }
    }
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->str);
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::kBool;
      out->b = true;
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::kBool;
      pos_ += 5;
      return true;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    out->kind = JsonValue::kNumber;
    size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->num = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST(MetricsRegistryTest, MetricsJsonRoundTripsThroughParse) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.ResetForTest();
  reg.Add(Counter::kBufferPoolHits, 42);
  reg.GaugeSet(Gauge::kBufferPoolResidentPages, 17);
  reg.Observe(Histogram::kQueryLatencyUs, 1234);

  std::string json = RecDB::MetricsJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << "MetricsJson is not valid "
                                             << "JSON:\n"
                                             << json;
  ASSERT_EQ(root.kind, JsonValue::kObject);

  const JsonValue* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->obj.size(), obs::kNumCounters)
      << "every counter in metric_names.h must appear";
  const JsonValue* hits = counters->Find("bufferpool.hits");
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->num, 42.0);

  const JsonValue* gauges = root.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->obj.size(), obs::kNumGauges);
  const JsonValue* resident = gauges->Find("bufferpool.resident_pages");
  ASSERT_NE(resident, nullptr);
  EXPECT_EQ(resident->num, 17.0);

  const JsonValue* bounds = root.Find("histogram_bounds_us");
  ASSERT_NE(bounds, nullptr);
  EXPECT_EQ(bounds->arr.size(), obs::kNumHistogramBounds);

  const JsonValue* hists = root.Find("histograms");
  ASSERT_NE(hists, nullptr);
  EXPECT_EQ(hists->obj.size(), obs::kNumHistograms);
  const JsonValue* lat = hists->Find("query.latency_us");
  ASSERT_NE(lat, nullptr);
  const JsonValue* count = lat->Find("count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->num, 1.0);
  const JsonValue* buckets = lat->Find("buckets");
  ASSERT_NE(buckets, nullptr);
  EXPECT_EQ(buckets->arr.size(), obs::kNumHistogramBuckets);
}

// --------------------------------------------------------------------- Tracer

TEST(TracerTest, SpansNestAndRenderInOrder) {
  obs::Tracer tracer("query");
  int parse = tracer.BeginSpan("parse");
  tracer.EndSpan(parse);
  int exec = tracer.BeginSpan("execute");
  int child = tracer.BeginSpan("child");
  tracer.EndSpan(child);
  tracer.EndSpan(exec);
  tracer.Finish();

  EXPECT_GT(tracer.RootDurationNs(), 0u);
  std::string rendered = tracer.Render();
  // The header line mentions "executor spans" / "children"; search the span
  // body only so those words don't shadow the span names.
  const size_t body = rendered.find('\n');
  ASSERT_NE(body, std::string::npos);
  size_t at_query = rendered.find("query", body);
  size_t at_parse = rendered.find("parse", body);
  size_t at_exec = rendered.find("execute", body);
  size_t at_child = rendered.find("child", body);
  ASSERT_NE(at_query, std::string::npos);
  ASSERT_NE(at_parse, std::string::npos);
  ASSERT_NE(at_exec, std::string::npos);
  ASSERT_NE(at_child, std::string::npos);
  EXPECT_LT(at_query, at_parse);
  EXPECT_LT(at_parse, at_exec);
  EXPECT_LT(at_exec, at_child) << "children render under their parent";
}

TEST(TracerTest, FinishClosesUnbalancedSpans) {
  obs::Tracer tracer("query");
  (void)tracer.BeginSpan("outer");
  (void)tracer.BeginSpan("inner");  // never ended explicitly
  tracer.Finish();
  tracer.Finish();  // idempotent
  EXPECT_GT(tracer.RootDurationNs(), 0u);
  std::string rendered = tracer.Render();
  EXPECT_NE(rendered.find("outer"), std::string::npos);
  EXPECT_NE(rendered.find("inner"), std::string::npos);
}

TEST(TracerTest, AttachPlanMaterializesExecutorSpans) {
  FilterPlan parent;
  auto child_owned = std::make_unique<FilterPlan>();
  FilterPlan* child = child_owned.get();
  parent.children.push_back(std::move(child_owned));

  obs::Tracer tracer("query");
  int exec = tracer.BeginSpan("execute");
  // Simulate the Next wrapper: parent inclusive time covers the child's.
  tracer.RecordNode(&parent, 3000, true);
  tracer.RecordNode(&parent, 2000, false);
  tracer.RecordNode(child, 1500, true);
  tracer.AttachPlan(parent);
  tracer.EndSpan(exec);
  tracer.Finish();

  std::string rendered = tracer.Render();
  // Both plan nodes render (Describe() == "Filter"), annotated with the
  // accumulated rows= / next= counts.
  EXPECT_NE(rendered.find("Filter"), std::string::npos);
  EXPECT_NE(rendered.find("rows=1 next=2"), std::string::npos)
      << "parent: two Next calls, one row:\n"
      << rendered;
  EXPECT_NE(rendered.find("rows=1 next=1"), std::string::npos)
      << "child: one Next call, one row:\n"
      << rendered;
}

// --------------------------------------------- trace-off path: no allocation

/// Exhausted source: Next() always reports end-of-stream.
class EmptySourceExecutor : public Executor {
 public:
  using Executor::Executor;
  Status Init() override { return Status::OK(); }

 protected:
  Result<std::optional<Tuple>> NextImpl() override {
    return std::optional<Tuple>{};
  }
};

TEST(TracerTest, DisabledTracingAllocatesNothingOnNextPath) {
  FilterPlan node;
  ExecContext ctx;  // ctx.tracer == nullptr: the trace-off fast path
  EmptySourceExecutor exec(node, &ctx);
  ASSERT_TRUE(exec.Init().ok());
  ASSERT_TRUE(exec.Next().ok());  // warm up any one-time lazy state

  uint64_t before = g_news.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    auto r = exec.Next();
    ASSERT_TRUE(r.ok());
    obs::Count(Counter::kExecTuplesScanned);
    obs::ObserveUs(Histogram::kQueryLatencyUs, 5);
  }
  uint64_t after = g_news.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "Next() with tracing off and metric updates must not allocate";
}

// ------------------------------------- ExecStats commit-on-success (bugfix)

/// Scripted outer relation: emits single-column item-id tuples, failing
/// exactly once at a chosen Next() call; a re-Init retries cleanly.
class FlakyOuterExecutor : public Executor {
 public:
  FlakyOuterExecutor(const PlanNode& node, ExecContext* ctx,
                     std::vector<int64_t> items, int fail_at_call)
      : Executor(node, ctx),
        items_(std::move(items)),
        fail_at_call_(fail_at_call) {}

  Status Init() override {
    pos_ = 0;
    calls_ = 0;
    return Status::OK();
  }

 protected:
  Result<std::optional<Tuple>> NextImpl() override {
    if (fail_at_call_ >= 0 && calls_++ == fail_at_call_) {
      fail_at_call_ = -1;  // fail once; succeed for the rest of the test
      return Status::ExecutionError("injected outer failure");
    }
    if (pos_ >= items_.size()) return std::optional<Tuple>{};
    return std::make_optional(Tuple({Value::Int(items_[pos_++])}));
  }

 private:
  std::vector<int64_t> items_;
  int fail_at_call_;
  size_t pos_ = 0;
  int calls_ = 0;
};

std::unique_ptr<Recommender> MakeJoinRec() {
  RecommenderConfig cfg;
  cfg.name = "rec";
  auto rec = std::make_unique<Recommender>(cfg);
  rec->AddRating(1, 1, 4);
  rec->AddRating(1, 2, 3);
  rec->AddRating(2, 1, 5);
  rec->AddRating(2, 3, 4);
  rec->AddRating(3, 2, 2);
  rec->AddRating(3, 3, 3);
  rec->AddRating(3, 4, 4);
  RECDB_DCHECK(rec->Build().ok());
  return rec;
}

void InitJoinPlan(JoinRecommendPlan* plan, Recommender* rec) {
  plan->rec = rec;
  plan->alias = "R";
  plan->schema = ExecSchema({{"R", "uid", TypeId::kInt64},
                             {"R", "iid", TypeId::kInt64},
                             {"R", "ratingval", TypeId::kDouble},
                             {"O", "iid", TypeId::kInt64}});
  plan->user_col_idx = 0;
  plan->item_col_idx = 1;
  plan->rating_col_idx = 2;
  plan->outer_item_col = 0;
  plan->include_rated = true;  // every known-item probe emits, per user
  plan->user_ids = {1, 2, 3};
}

/// Drain to completion; returns emitted (uid, iid) pairs.
std::vector<std::pair<int64_t, int64_t>> Drain(Executor* exec) {
  std::vector<std::pair<int64_t, int64_t>> out;
  while (true) {
    auto next = exec->Next();
    EXPECT_TRUE(next.ok());
    if (!next.ok() || !next.value().has_value()) break;
    out.emplace_back(next.value()->At(0).AsInt(), next.value()->At(1).AsInt());
  }
  return out;
}

TEST(ExecStatsTest, JoinRecommendRerunAfterMidWindowErrorMatchesCleanRun) {
  auto rec = MakeJoinRec();
  // 70 probes: more than one kJoinProbeWindow (64), so the clean run fills
  // two windows and the second attempt exercises a refill after the error.
  std::vector<int64_t> items;
  for (int i = 0; i < 70; ++i) items.push_back(1 + i % 4);

  // Reference: a clean single run.
  JoinRecommendPlan clean_plan;
  InitJoinPlan(&clean_plan, rec.get());
  FilterPlan clean_outer_node;
  ExecContext clean_ctx;
  JoinRecommendExecutor clean_exec(
      clean_plan,
      std::make_unique<FlakyOuterExecutor>(clean_outer_node, &clean_ctx, items,
                                           -1),
      &clean_ctx);
  ASSERT_TRUE(clean_exec.Init().ok());
  auto clean_rows = Drain(&clean_exec);
  ASSERT_EQ(clean_ctx.stats.join_probes, 70u);
  ASSERT_EQ(clean_rows.size(), 70u * 3u);  // include_rated: 3 users per probe

  // Faulty run: the outer fails on its 4th Next() call, mid-way through the
  // first window fill. The fill must commit neither probes nor window state.
  JoinRecommendPlan plan;
  InitJoinPlan(&plan, rec.get());
  FilterPlan outer_node;
  ExecContext ctx;
  JoinRecommendExecutor exec(
      plan,
      std::make_unique<FlakyOuterExecutor>(outer_node, &ctx, items, 3), &ctx);
  ASSERT_TRUE(exec.Init().ok());
  auto first = exec.Next();
  ASSERT_FALSE(first.ok()) << "the injected outer failure must surface";
  EXPECT_EQ(ctx.stats.join_probes, 0u)
      << "probes pulled before the error must not be counted (commit-on-"
         "success)";

  // Statement retry: re-Init and drain sharing the same ExecContext — the
  // paper-engine's EXPLAIN ANALYZE re-run shape. Totals must equal the
  // clean run exactly; before the fix the aborted fill's probes leaked in.
  ASSERT_TRUE(exec.Init().ok());
  auto rows = Drain(&exec);
  EXPECT_EQ(rows, clean_rows);
  EXPECT_EQ(ctx.stats.join_probes, clean_ctx.stats.join_probes);
  EXPECT_EQ(ctx.stats.predictions, clean_ctx.stats.predictions);
  EXPECT_EQ(ctx.stats.predict_calls, clean_ctx.stats.predict_calls);
  EXPECT_EQ(ctx.stats.predict_batches, clean_ctx.stats.predict_batches);
}

// ------------------------------------------------------- end-to-end via SQL

TEST(ObservabilityEndToEndTest, MetricsAndTraceFlowThroughSql) {
  obs::MetricsRegistry::Global().ResetForTest();
  RecDB db;
  ASSERT_TRUE(
      db.Execute("CREATE TABLE Ratings (uid INT, iid INT, ratingval DOUBLE)")
          .ok());
  ASSERT_TRUE(db.Execute("INSERT INTO Ratings VALUES (1,1,4),(1,2,3),(2,1,5),"
                         "(2,3,4),(3,2,2),(3,3,3),(3,4,4)")
                  .ok());
  ASSERT_TRUE(db.Execute("CREATE RECOMMENDER rec ON Ratings USERS FROM uid "
                         "ITEMS FROM iid RATINGS FROM ratingval USING "
                         "ItemCosCF")
                  .ok());

  auto set = db.Execute("SET trace = on");
  ASSERT_TRUE(set.ok()) << set.status().ToString();

  auto rs = db.Execute(
      "SELECT R.uid, R.iid, R.ratingval FROM Ratings AS R RECOMMEND R.iid TO "
      "R.uid ON R.ratingval USING ItemCosCF WHERE R.uid = 1 ORDER BY "
      "R.ratingval DESC LIMIT 3");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_GT(rs.value().NumRows(), 0u);

  // The trace carries the fixed pipeline spans and at least one executor
  // span, and its root covers the query's own reported elapsed time.
  const std::string& trace = rs.value().trace;
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace, db.last_trace());
  EXPECT_NE(trace.find("query"), std::string::npos);
  EXPECT_NE(trace.find("parse"), std::string::npos);
  EXPECT_NE(trace.find("plan"), std::string::npos);
  EXPECT_NE(trace.find("execute"), std::string::npos);
  EXPECT_NE(trace.find("rows="), std::string::npos);

  // Engine counters accumulated through the SQL path.
  auto snap = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_GT(snap.counters[static_cast<size_t>(Counter::kModelBuilds)], 0u);
  EXPECT_GT(snap.counters[static_cast<size_t>(Counter::kModelPredictBatches)],
            0u);
  EXPECT_GT(snap.counters[static_cast<size_t>(Counter::kQuerySelects)], 0u);
  EXPECT_GT(snap.counters[static_cast<size_t>(Counter::kQueryRowsEmitted)],
            0u);
  EXPECT_GT(
      snap.histograms[static_cast<size_t>(Histogram::kQueryLatencyUs)].count,
      0u);

  // SET trace = off silences tracing again.
  ASSERT_TRUE(db.Execute("SET trace = off").ok());
  auto quiet = db.Execute("SELECT uid FROM Ratings WHERE uid = 1");
  ASSERT_TRUE(quiet.ok());
  EXPECT_TRUE(quiet.value().trace.empty());
}

}  // namespace
}  // namespace recdb
